// h2sim — the config-file-driven simulator front end, mirroring the paper
// artifact's T2 stage (`sims/build/opt/zsim sims/<design>/zsim.cfg`).
//
//   h2sim <config.cfg> [more.cfg ...] [--out results.csv] [--print-config]
//         [--jobs <n>] [--check <n>] [--run-timeout <sec>] [--retries <n>]
//         [--strict] [--fault <spec>] [--journal <path>] [--resume]
//         [--journal-fsync] [--checkpoint <path>] [--checkpoint-every <n>]
//         [--restore <path>] [--warmup-epochs <n>] [--timeline <path>]
//         [--compiled-check-level] [--backend fast|ddr]
//         [--shards <n>] [--shard-threads <n>]
//
// --backend overrides the mem.backend config key for every config on the
// command line (per-channel timing model; see mem/ddr_backend.h).
// --shards / --shard-threads override sim.shards / sim.shard_threads for
// every config: N > 1 partitions each simulated system into N address-space
// shards behind a ShardGroup (harness/shard_group.h), driven by the given
// number of worker threads (0 = one per shard). Results are bit-identical
// for every thread count.
// --warmup-epochs and --timeline override the corresponding config keys for
// every config on the command line (sim.warmup_epochs / sim.timeline); with
// multiple configs, each run's timeline lands at `<path>.<index>` so parallel
// runs never share a file. --compiled-check-level prints the H2_CHECK level
// this binary was compiled with and exits — CI uses it to prove that
// recorded-number binaries were built with checks off.
//
// --checkpoint <path> snapshots the complete simulator state at every
// --checkpoint-every'th epoch boundary (harness/checkpoint.h); --restore
// <path> resumes a run from such a snapshot, bit-identically to never having
// been interrupted. With multiple configs both paths gain the same
// `.<index>` suffix as --timeline. Note the distinction from --resume:
// --resume skips *finished* runs recorded in the journal, --restore resumes
// an *interrupted* run mid-flight. --journal-fsync (or H2_JOURNAL_FSYNC=1)
// fsyncs the journal after every record, hardening it against power loss.
//
// Each config file describes one experiment (see configs/*.cfg and
// harness/config_loader.h for the key reference). Multiple configs run in
// parallel through the sweep runner (--jobs / H2_JOBS, default: all hardware
// threads) with their explicit sim.seed values honoured, and results are
// printed — and optionally appended to an h2report-compatible CSV — in
// command-line order regardless of completion order. Failed or timed-out
// runs are appended to the CSV as explicit status!=ok rows (empty metric
// cells) instead of silently dropping the slot; the crash-safety flags map
// straight onto SweepOptions (see harness/sweep.h).
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "check/check.h"
#include "harness/config_loader.h"
#include "harness/report.h"
#include "harness/sweep.h"

using namespace h2;

namespace {

void usage() {
  std::cerr << "usage: h2sim <config.cfg> [more.cfg ...] [--out results.csv]"
               " [--print-config] [--jobs <n>] [--check <n>]"
               " [--run-timeout <sec>] [--retries <n>] [--strict]"
               " [--fault <spec>] [--journal <path>] [--resume]"
               " [--journal-fsync] [--checkpoint <path>]"
               " [--checkpoint-every <n>] [--restore <path>]"
               " [--warmup-epochs <n>] [--timeline <path>]"
               " [--compiled-check-level] [--backend fast|ddr]"
               " [--shards <n>] [--shard-threads <n>]\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> config_paths;
  std::string out_path;
  bool print_config = false;
  u32 jobs = 0;
  double run_timeout = 0.0;
  u32 retries = 0;
  bool strict = false;
  std::string fault_spec;
  std::string journal_path;
  bool resume = false;
  bool journal_fsync = false;
  std::string checkpoint_path;
  u32 checkpoint_every = 1;
  std::string restore_path;
  bool have_warmup = false;
  u32 warmup_epochs = 0;
  std::string timeline_path;
  bool have_backend = false;
  ChannelBackendKind backend = ChannelBackendKind::Fast;
  bool have_shards = false;
  u32 shards = 1;
  bool have_shard_threads = false;
  u32 shard_threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--print-config") {
      print_config = true;
    } else if (a == "--compiled-check-level") {
      std::cout << check::compiled_level() << "\n";
      return 0;
    } else if (a == "--warmup-epochs" && i + 1 < argc) {
      const std::string v = argv[++i];
      char* end = nullptr;
      const long n = std::strtol(v.c_str(), &end, 10);
      if (!end || *end != '\0' || v.empty() || n < 0) {
        std::cerr << "--warmup-epochs expects a non-negative integer, got '" << v << "'\n";
        return 2;
      }
      have_warmup = true;
      warmup_epochs = static_cast<u32>(n);
    } else if (a == "--timeline" && i + 1 < argc) {
      timeline_path = argv[++i];
    } else if (a == "--backend" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (!parse_backend_kind(v, &backend)) {
        std::cerr << "--backend expects fast or ddr, got '" << v << "'\n";
        return 2;
      }
      have_backend = true;
    } else if (a == "--shards" && i + 1 < argc) {
      const std::string v = argv[++i];
      char* end = nullptr;
      const long n = std::strtol(v.c_str(), &end, 10);
      if (!end || *end != '\0' || v.empty() || n < 1) {
        std::cerr << "--shards expects a positive integer, got '" << v << "'\n";
        return 2;
      }
      have_shards = true;
      shards = static_cast<u32>(n);
    } else if (a == "--shard-threads" && i + 1 < argc) {
      const std::string v = argv[++i];
      char* end = nullptr;
      const long n = std::strtol(v.c_str(), &end, 10);
      if (!end || *end != '\0' || v.empty() || n < 0) {
        std::cerr << "--shard-threads expects a non-negative integer, got '" << v << "'\n";
        return 2;
      }
      have_shard_threads = true;
      shard_threads = static_cast<u32>(n);
    } else if (a == "--run-timeout" && i + 1 < argc) {
      const std::string v = argv[++i];
      char* end = nullptr;
      const double s = std::strtod(v.c_str(), &end);
      if (!end || *end != '\0' || v.empty() || s < 0) {
        std::cerr << "--run-timeout expects seconds >= 0, got '" << v << "'\n";
        return 2;
      }
      run_timeout = s;
    } else if (a == "--retries" && i + 1 < argc) {
      const std::string v = argv[++i];
      char* end = nullptr;
      const long n = std::strtol(v.c_str(), &end, 10);
      if (!end || *end != '\0' || v.empty() || n < 0) {
        std::cerr << "--retries expects a non-negative integer, got '" << v << "'\n";
        return 2;
      }
      retries = static_cast<u32>(n);
    } else if (a == "--strict") {
      strict = true;
    } else if (a == "--fault" && i + 1 < argc) {
      fault_spec = argv[++i];
    } else if (a == "--journal" && i + 1 < argc) {
      journal_path = argv[++i];
    } else if (a == "--resume") {
      resume = true;
    } else if (a == "--journal-fsync") {
      journal_fsync = true;
    } else if (a == "--checkpoint" && i + 1 < argc) {
      checkpoint_path = argv[++i];
    } else if (a == "--checkpoint-every" && i + 1 < argc) {
      const std::string v = argv[++i];
      char* end = nullptr;
      const long n = std::strtol(v.c_str(), &end, 10);
      if (!end || *end != '\0' || v.empty() || n <= 0) {
        std::cerr << "--checkpoint-every expects a positive integer, got '" << v << "'\n";
        return 2;
      }
      checkpoint_every = static_cast<u32>(n);
    } else if (a == "--restore" && i + 1 < argc) {
      restore_path = argv[++i];
    } else if (a == "--jobs" && i + 1 < argc) {
      const std::string v = argv[++i];
      char* end = nullptr;
      const long n = std::strtol(v.c_str(), &end, 10);
      if (!end || *end != '\0' || n <= 0) {
        std::cerr << "--jobs expects a positive integer, got '" << v << "'\n";
        return 2;
      }
      jobs = static_cast<u32>(n);
    } else if (a == "--check" && i + 1 < argc) {
      const std::string v = argv[++i];
      char* end = nullptr;
      const long n = std::strtol(v.c_str(), &end, 10);
      if (!end || *end != '\0' || n < 0) {
        std::cerr << "--check expects a non-negative integer, got '" << v << "'\n";
        return 2;
      }
      check::set_runtime_level(static_cast<int>(n));
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else {
      config_paths.push_back(a);
    }
  }
  if (config_paths.empty()) {
    usage();
    return 2;
  }

  std::vector<ExperimentConfig> cfgs;
  cfgs.reserve(config_paths.size());
  for (const auto& path : config_paths) {
    cfgs.push_back(experiment_from_file(path));
    if (have_warmup) cfgs.back().warmup_epochs = warmup_epochs;
    if (have_backend) cfgs.back().backend = backend;
    if (have_shards) cfgs.back().shards = shards;
    if (have_shard_threads) cfgs.back().shard_threads = shard_threads;
    if (!timeline_path.empty()) {
      cfgs.back().timeline_path =
          config_paths.size() == 1
              ? timeline_path
              : timeline_path + "." + std::to_string(cfgs.size() - 1);
    }
    const std::string run_suffix =
        config_paths.size() == 1 ? "" : "." + std::to_string(cfgs.size() - 1);
    if (!checkpoint_path.empty()) {
      cfgs.back().checkpoint_path = checkpoint_path + run_suffix;
      cfgs.back().checkpoint_every = checkpoint_every;
    }
    if (!restore_path.empty()) {
      cfgs.back().restore_path = restore_path + run_suffix;
    }
    const ExperimentConfig& cfg = cfgs.back();
    if (print_config) {
      std::cout << "# " << path << ": combo=" << cfg.combo
                << " design=" << cfg.design.label
                << " mode=" << (cfg.mode == HybridMode::Cache ? "cache" : "flat")
                << " assoc=" << cfg.assoc << " block=" << cfg.block_bytes
                << " backend=" << to_string(cfg.backend) << "\n";
      cfg.sys.print(std::cout);
    }
  }

  SweepOptions opts;
  opts.jobs = jobs;
  opts.verbose = true;
  // Config files carry explicit sim.seed values; run with exactly those.
  opts.derive_seeds = false;
  opts.run_timeout_seconds = run_timeout;
  opts.max_retries = retries;
  opts.fault_spec = fault_spec;
  opts.journal_path = journal_path;
  if (opts.journal_path.empty() && !out_path.empty()) {
    opts.journal_path = out_path + ".journal";  // journal rides with the CSV
  }
  opts.resume = resume;
  opts.journal_fsync = journal_fsync;
  if (opts.resume && opts.journal_path.empty()) {
    std::cerr << "error: --resume needs --journal <path> or --out <path>\n";
    return 2;
  }
  const std::vector<SweepRun> runs = run_sweep(cfgs, opts);

  int failures = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    const std::string& path = config_paths[i];
    const SweepRun& run = runs[i];
    const ExperimentConfig& cfg = cfgs[i];
    if (!run.ok) {
      std::cerr << "error: " << path << " (" << run.combo << " / " << run.design
                << ") " << to_string(run.status) << " after " << run.attempts
                << " attempt(s): " << run.error << "\n";
      // The lost slot still lands in the CSV as an explicit status row.
      if (!out_path.empty()) append_result_csv(out_path, run, cfg);
      ++failures;
      continue;
    }
    const ExperimentResult& r = run.result;

    TablePrinter t(path, {"metric", "value"});
    t.row({"combo", r.combo});
    t.row({"design", r.design});
    t.row({"cpu cycles", std::to_string(r.cpu_cycles)});
    t.row({"gpu cycles", std::to_string(r.gpu_cycles)});
    t.row({"cpu IPC", fmt(r.cpu_ipc, 3)});
    t.row({"gpu IPC", fmt(r.gpu_ipc, 3)});
    t.row({"weighted IPC", fmt(r.weighted_ipc, 3)});
    t.row({"cpu fast hit rate", fmt_pct(r.fast_hit_rate[0])});
    t.row({"gpu fast hit rate", fmt_pct(r.fast_hit_rate[1])});
    t.row({"gpu migrations", std::to_string(r.hmstats[1].migrations)});
    t.row({"slow amplification", fmt(r.slow_amplification)});
    t.row({"memory energy (mJ)", fmt(r.energy_pj / 1e9, 3)});
    t.row({"epochs", std::to_string(r.epochs)});
    t.row({"reconfigurations", std::to_string(r.reconfigurations)});
    t.print(std::cout);

    if (!out_path.empty()) append_result_csv(out_path, run, cfg);
  }
  if (!out_path.empty()) std::cerr << "appended results to " << out_path << "\n";
  if (failures) {
    std::cerr << "h2sim: " << failures << "/" << runs.size() << " run(s) failed"
              << (out_path.empty() ? "" : "; lost slots recorded as status rows")
              << "\n";
    // Graceful by default (the CSV tells the whole story); --strict makes a
    // lost slot fail the invocation, matching the bench binaries.
    return strict ? 1 : 0;
  }
  return 0;
}
