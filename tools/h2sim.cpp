// h2sim — the config-file-driven simulator front end, mirroring the paper
// artifact's T2 stage (`sims/build/opt/zsim sims/<design>/zsim.cfg`).
//
//   h2sim <config.cfg> [more.cfg ...] [--out results.csv] [--print-config]
//         [--jobs <n>] [--check <n>]
//
// Each config file describes one experiment (see configs/*.cfg and
// harness/config_loader.h for the key reference). Multiple configs run in
// parallel through the sweep runner (--jobs / H2_JOBS, default: all hardware
// threads) with their explicit sim.seed values honoured, and results are
// printed — and optionally appended to an h2report-compatible CSV — in
// command-line order regardless of completion order.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "check/check.h"
#include "common/stats.h"
#include "harness/config_loader.h"
#include "harness/report.h"
#include "harness/sweep.h"

using namespace h2;

namespace {

void usage() {
  std::cerr << "usage: h2sim <config.cfg> [more.cfg ...] [--out results.csv]"
               " [--print-config] [--jobs <n>] [--check <n>]\n";
}

void append_csv(const std::string& path, const ExperimentResult& r,
                const ExperimentConfig& cfg) {
  const bool fresh = !std::ifstream(path).good();
  std::ofstream f(path, std::ios::app);
  if (!f.good()) {
    std::cerr << "cannot open " << path << " for writing\n";
    std::exit(1);
  }
  CsvWriter csv(f);
  if (fresh) {
    for (const char* col :
         {"combo", "design", "mode", "cpu_cycles", "gpu_cycles", "cpu_instructions",
          "gpu_instructions", "cpu_ipc", "gpu_ipc", "weighted_ipc", "energy_pj",
          "fast_bytes", "slow_bytes", "cpu_hit_rate", "gpu_hit_rate",
          "slow_amplification", "gpu_migrations", "reconfigurations"}) {
      csv.cell(std::string(col));
    }
    csv.end_row();
  }
  csv.cell(r.combo)
      .cell(r.design)
      .cell(std::string(cfg.mode == HybridMode::Cache ? "cache" : "flat"))
      .cell(r.cpu_cycles)
      .cell(r.gpu_cycles)
      .cell(r.cpu_instructions)
      .cell(r.gpu_instructions)
      .cell(r.cpu_ipc)
      .cell(r.gpu_ipc)
      .cell(r.weighted_ipc)
      .cell(r.energy_pj)
      .cell(r.fast_bytes)
      .cell(r.slow_bytes)
      .cell(r.fast_hit_rate[0])
      .cell(r.fast_hit_rate[1])
      .cell(r.slow_amplification)
      .cell(r.hmstats[1].migrations)
      .cell(r.reconfigurations);
  csv.end_row();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> config_paths;
  std::string out_path;
  bool print_config = false;
  u32 jobs = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--print-config") {
      print_config = true;
    } else if (a == "--jobs" && i + 1 < argc) {
      const std::string v = argv[++i];
      char* end = nullptr;
      const long n = std::strtol(v.c_str(), &end, 10);
      if (!end || *end != '\0' || n <= 0) {
        std::cerr << "--jobs expects a positive integer, got '" << v << "'\n";
        return 2;
      }
      jobs = static_cast<u32>(n);
    } else if (a == "--check" && i + 1 < argc) {
      const std::string v = argv[++i];
      char* end = nullptr;
      const long n = std::strtol(v.c_str(), &end, 10);
      if (!end || *end != '\0' || n < 0) {
        std::cerr << "--check expects a non-negative integer, got '" << v << "'\n";
        return 2;
      }
      check::set_runtime_level(static_cast<int>(n));
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else {
      config_paths.push_back(a);
    }
  }
  if (config_paths.empty()) {
    usage();
    return 2;
  }

  std::vector<ExperimentConfig> cfgs;
  cfgs.reserve(config_paths.size());
  for (const auto& path : config_paths) {
    cfgs.push_back(experiment_from_file(path));
    const ExperimentConfig& cfg = cfgs.back();
    if (print_config) {
      std::cout << "# " << path << ": combo=" << cfg.combo
                << " design=" << cfg.design.label
                << " mode=" << (cfg.mode == HybridMode::Cache ? "cache" : "flat")
                << " assoc=" << cfg.assoc << " block=" << cfg.block_bytes << "\n";
      cfg.sys.print(std::cout);
    }
  }

  SweepOptions opts;
  opts.jobs = jobs;
  opts.verbose = true;
  // Config files carry explicit sim.seed values; run with exactly those.
  opts.derive_seeds = false;
  const std::vector<SweepRun> runs = run_sweep(cfgs, opts);

  int failures = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    const std::string& path = config_paths[i];
    const SweepRun& run = runs[i];
    if (!run.ok) {
      std::cerr << "error: " << path << " (" << run.combo << " / " << run.design
                << ") failed: " << run.error << "\n";
      ++failures;
      continue;
    }
    const ExperimentResult& r = run.result;
    const ExperimentConfig& cfg = cfgs[i];

    TablePrinter t(path, {"metric", "value"});
    t.row({"combo", r.combo});
    t.row({"design", r.design});
    t.row({"cpu cycles", std::to_string(r.cpu_cycles)});
    t.row({"gpu cycles", std::to_string(r.gpu_cycles)});
    t.row({"cpu IPC", fmt(r.cpu_ipc, 3)});
    t.row({"gpu IPC", fmt(r.gpu_ipc, 3)});
    t.row({"weighted IPC", fmt(r.weighted_ipc, 3)});
    t.row({"cpu fast hit rate", fmt_pct(r.fast_hit_rate[0])});
    t.row({"gpu fast hit rate", fmt_pct(r.fast_hit_rate[1])});
    t.row({"gpu migrations", std::to_string(r.hmstats[1].migrations)});
    t.row({"slow amplification", fmt(r.slow_amplification)});
    t.row({"memory energy (mJ)", fmt(r.energy_pj / 1e9, 3)});
    t.row({"epochs", std::to_string(r.epochs)});
    t.row({"reconfigurations", std::to_string(r.reconfigurations)});
    t.print(std::cout);

    if (!out_path.empty()) append_csv(out_path, r, cfg);
  }
  if (!out_path.empty()) std::cerr << "appended results to " << out_path << "\n";
  return failures ? 1 : 0;
}
