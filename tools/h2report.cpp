// h2report — aggregates h2sim result CSVs into the paper's perf.csv-style
// summary (artifact T3 / extract_performance.py): per (combo, design) rows
// plus weighted speedups against a chosen baseline design.
//
//   h2report <results.csv> [--baseline baseline] [--wc 12] [--wg 1]
//
// CSVs with a `status` column (written by h2sim) may carry explicit
// status=failed/timeout rows for lost runs; those are excluded from the
// aggregation and reported on stderr.
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "harness/report.h"

using namespace h2;

namespace {

struct Row {
  std::string combo;
  std::string design;
  double cpu_cycles = 0;
  double gpu_cycles = 0;
  double energy_pj = 0;
};

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (char c : line) {
    if (c == '"') {
      quoted = !quoted;
    } else if (c == ',' && !quoted) {
      cells.push_back(cell);
      cell.clear();
    } else {
      cell += c;
    }
  }
  cells.push_back(cell);
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string baseline = "baseline";
  double wc = 12.0, wg = 1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--baseline" && i + 1 < argc) {
      baseline = argv[++i];
    } else if (a == "--wc" && i + 1 < argc) {
      wc = std::stod(argv[++i]);
    } else if (a == "--wg" && i + 1 < argc) {
      wg = std::stod(argv[++i]);
    } else {
      path = a;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: h2report <results.csv> [--baseline <design>] [--wc N] [--wg N]\n";
    return 2;
  }

  std::ifstream f(path);
  if (!f.good()) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::string line;
  std::getline(f, line);
  const auto header = split_csv_line(line);
  std::map<std::string, size_t> col;
  for (size_t i = 0; i < header.size(); ++i) col[header[i]] = i;
  for (const char* need : {"combo", "design", "cpu_cycles", "gpu_cycles", "energy_pj"}) {
    if (!col.count(need)) {
      std::cerr << path << ": missing column '" << need << "'\n";
      return 1;
    }
  }

  // h2sim records failed/timed-out runs as explicit status!=ok rows with
  // empty metric cells; aggregate only the ok rows and say what was skipped.
  const bool has_status = col.count("status") > 0;
  std::vector<Row> rows;
  size_t skipped = 0;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    if (has_status && cells[col["status"]] != "ok") {
      std::cerr << "skipping " << cells[col["combo"]] << " / "
                << cells[col["design"]] << ": status=" << cells[col["status"]]
                << "\n";
      ++skipped;
      continue;
    }
    Row r;
    r.combo = cells[col["combo"]];
    r.design = cells[col["design"]];
    r.cpu_cycles = std::stod(cells[col["cpu_cycles"]]);
    r.gpu_cycles = std::stod(cells[col["gpu_cycles"]]);
    r.energy_pj = std::stod(cells[col["energy_pj"]]);
    rows.push_back(r);
  }
  if (skipped > 0) {
    std::cerr << path << ": " << skipped << " non-ok row(s) excluded from the"
              << " summary (re-run those cells, e.g. h2sim --resume)\n";
  }

  // Index baselines per combo.
  std::map<std::string, Row> base;
  for (const auto& r : rows) {
    if (r.design == baseline) base[r.combo] = r;
  }

  TablePrinter t("perf summary (weighted speedups vs '" + baseline + "', CPU:GPU = " +
                     fmt(wc, 0) + ":" + fmt(wg, 0) + ")",
                 {"combo", "design", "cpu speedup", "gpu speedup", "weighted",
                  "energy vs base"});
  std::map<std::string, std::vector<double>> per_design;
  for (const auto& r : rows) {
    auto it = base.find(r.combo);
    if (it == base.end() || r.design == baseline) continue;
    const Row& b = it->second;
    const double sc = b.cpu_cycles > 0 && r.cpu_cycles > 0 ? b.cpu_cycles / r.cpu_cycles : 1.0;
    const double sg = b.gpu_cycles > 0 && r.gpu_cycles > 0 ? b.gpu_cycles / r.gpu_cycles : 1.0;
    const double weighted = (wc * sc + wg * sg) / (wc + wg);
    per_design[r.design].push_back(weighted);
    t.row({r.combo, r.design, fmt(sc), fmt(sg), fmt(weighted),
           fmt(r.energy_pj / b.energy_pj)});
  }
  for (const auto& [design, sus] : per_design) {
    t.row({"geomean", design, "-", "-", fmt(geomean(sus)), "-"});
  }
  t.print(std::cout);
  return 0;
}
