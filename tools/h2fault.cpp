// h2fault — the fault-injection self-test matrix (see src/check/fault.h).
//
//   h2fault [--accesses <n>] [--seed <n>]
//
// The invariant layer (H2_CHECK), the differential oracle (h2check) and the
// sweep runner's failure capture all claim to catch model corruption; this
// binary proves it by arming every fault class in turn and asserting that
// its designated detector actually fires:
//
//   remap-flip, dup-tag, drop-writeback  -> oracle divergence (any build)
//   lazy-skip, alloc-stuck               -> epoch-driven oracle divergence
//                                           (any build; armed with --epochs
//                                           so lazy fixups are actually due)
//   refresh-skip                         -> oracle refresh-window law
//                                           (any build; proven against BOTH
//                                           channel backends)
//   migrate-lost, counter-stuck          -> integrated-design oracle laws
//                                           (residency/migration conservation
//                                           and the counter-table identity;
//                                           proven against BOTH backends)
//   sched-starve                         -> DDR FR-FCFS max_bypass_run()
//                                           property on a direct backend
//                                           drive (any build; H2_CHECK >= 1
//                                           additionally fires in-model)
//   time-skew                            -> H2_CHECK level 1 (skipped below)
//   cursor-skew                          -> H2_CHECK level 2 (skipped below)
//   throw                                -> sweep failure capture, no retry
//   throw-transient                      -> sweep retry succeeds
//   stall                                -> sweep watchdog timeout
//   throw@epoch-observer                 -> capture of a throw fired from an
//                                           epoch observer during warmup
//   ckpt-corrupt, ckpt-truncate          -> checkpoint restore rejects the
//                                           perturbed file with an error
//                                           naming file, section and offset
//                                           (any build)
//   kill-at-epoch                        -> a self-re-exec child dies with
//                                           status 137 mid-run; the restored
//                                           run finishes with the counters of
//                                           an uninterrupted one (any build)
//
// Each line reports PASS / FAIL / SKIP; exit status is 0 iff no class
// FAILed, which makes this binary a ctest entry (see tools/CMakeLists.txt).
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "check/check.h"
#include "check/fault.h"
#include "check/oracle.h"
#include "common/ckpt_io.h"
#include "common/rng.h"
#include "harness/checkpoint.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "mem/ddr_backend.h"

using namespace h2;

namespace {

int g_failures = 0;

void report(const char* verdict, const std::string& klass, const std::string& detail) {
  std::printf("%-4s %-16s %s\n", verdict, klass.c_str(), detail.c_str());
  if (std::strcmp(verdict, "FAIL") == 0) g_failures++;
}

/// Arms `spec` around a differential-oracle replay and classifies the result.
/// Detection = the oracle report diverging or an H2_CHECK firing (the
/// throwing handler turns either into something observable).
void expect_oracle_detects(const std::string& spec, const OracleConfig& ocfg,
                           const std::string& label_suffix = "") {
  const std::string label = spec + label_suffix;
  check::ScopedThrowingHandler handler;
  check::set_runtime_level(check::compiled_level());
  fault::Injector injector(spec);
  std::string how;
  bool detected = false;
  try {
    fault::Scope scope(injector);
    const OracleReport rep = run_oracle(ocfg);
    if (!rep.ok()) {
      detected = true;
      how = "oracle: " + std::to_string(rep.diffs.size()) + " quantity diff(s), e.g. " +
            rep.diffs.front();
    }
  } catch (const check::CheckError& e) {
    detected = true;
    how = std::string("H2_CHECK: ") + e.what();
  }
  if (injector.fired() == 0) {
    report("FAIL", label, "fault site never fired (seen " +
                              std::to_string(injector.seen()) + " visits)");
    return;
  }
  if (!detected) {
    report("FAIL", label, "fault fired " + std::to_string(injector.fired()) +
                              " time(s) but no detector noticed");
    return;
  }
  if (how.size() > 140) how = how.substr(0, 137) + "...";
  report("PASS", label, how);
}

/// sched-starve lives inside the DDR backend's FR-FCFS arbitration, so it is
/// proven on a direct backend drive: a saturating row-hit stream whose every
/// request is a bypass candidate. Detection needs no H2_CHECK level — the
/// armed fault pushes max_bypass_run() past the cap, which is exactly the
/// property tests/test_ddr_backend.cpp pins; at compiled level >= 1 the
/// in-model H2_CHECK fires first and counts as detection too.
void expect_ddr_starve_detected(const std::string& spec) {
  check::ScopedThrowingHandler handler;
  check::set_runtime_level(check::compiled_level());
  fault::Injector injector(spec);
  DdrParams params;
  params.frfcfs_cap = 2;
  const DramTiming t = ddr4_3200_timing();
  DdrBackend be(t, /*core_ghz=*/3.2, /*id=*/0, params);
  std::string how;
  bool detected = false;
  try {
    fault::Scope scope(injector);
    Rng rng(9);
    Cycle now = 0;
    for (u32 i = 0; i < 3000 && !detected; ++i) {
      now += 1 + rng.next_below(3);
      // Row 0 of bank i%N: every access after the first lap is a row hit on
      // an idle bank behind a saturated bus — a bypass candidate each time.
      const Addr addr =
          (i % t.total_banks()) * t.row_bytes + rng.next_below(8) * 64;
      be.request(now, addr, 256, false, false, 0);
      if (be.max_bypass_run() > params.frfcfs_cap) {
        detected = true;
        how = "property: max_bypass_run=" +
              std::to_string(be.max_bypass_run()) + " > cap " +
              std::to_string(params.frfcfs_cap);
      }
    }
  } catch (const check::CheckError& e) {
    detected = true;
    how = std::string("H2_CHECK: ") + e.what();
  }
  if (injector.fired() == 0) {
    report("FAIL", spec, "fault site never fired (seen " +
                             std::to_string(injector.seen()) + " visits)");
    return;
  }
  if (!detected) {
    report("FAIL", spec, "fault fired " + std::to_string(injector.fired()) +
                             " time(s) but no detector noticed");
    return;
  }
  if (how.size() > 140) how = how.substr(0, 137) + "...";
  report("PASS", spec, how);
}

/// A deliberately tiny experiment: big enough to cross several epoch
/// boundaries (where the harness fault sites live), small enough that the
/// whole matrix runs in seconds.
ExperimentConfig tiny_config(u64 seed) {
  ExperimentConfig cfg;
  cfg.combo = "C1";
  cfg.design = DesignSpec::hydrogen_full();
  cfg.cpu_target_instructions = 30'000;
  cfg.gpu_target_instructions = 20'000;
  cfg.epoch_cycles = 10'000;
  cfg.max_cycles = 50'000'000;
  cfg.seed = seed;
  return cfg;
}

void expect_engine_check_detects(const std::string& spec, u64 seed) {
  if (check::compiled_level() < 1) {
    report("SKIP", spec, "needs H2_CHECK_LEVEL >= 1 (compiled level 0)");
    return;
  }
  check::ScopedThrowingHandler handler;
  check::set_runtime_level(check::compiled_level());
  fault::Injector injector(spec);
  try {
    fault::Scope scope(injector);
    (void)run_experiment(tiny_config(seed));
  } catch (const check::CheckError& e) {
    std::string how = std::string("H2_CHECK: ") + e.what();
    if (how.size() > 140) how = how.substr(0, 137) + "...";
    report(injector.fired() > 0 ? "PASS" : "FAIL", spec, how);
    return;
  }
  report("FAIL", spec, injector.fired() > 0
                           ? "fault fired but the run completed cleanly"
                           : "fault site never fired");
}

/// ckpt-corrupt / ckpt-truncate: arm the fault so every checkpoint written
/// during a tiny run is perturbed just before publication, then prove the
/// restore path rejects the damaged file with a CheckpointError that names
/// the file, a section, and an offset — never UB or a silent wrong-state
/// resume.
void expect_ckpt_rejected(const std::string& spec, const ExperimentConfig& base,
                          const std::string& path) {
  fault::Injector injector(spec);
  ExperimentConfig cfg = base;
  cfg.checkpoint_path = path;
  try {
    fault::Scope scope(injector);
    (void)run_experiment(cfg);
  } catch (const std::exception& e) {
    report("FAIL", spec, std::string("checkpointed run itself failed: ") + e.what());
    return;
  }
  if (injector.fired() == 0) {
    report("FAIL", spec, "fault site never fired (seen " +
                             std::to_string(injector.seen()) + " visits)");
    return;
  }
  ExperimentConfig rcfg = base;
  rcfg.restore_path = path;
  try {
    (void)run_experiment(rcfg);
    report("FAIL", spec, "perturbed checkpoint restored without complaint");
  } catch (const ckpt::CheckpointError& e) {
    std::string what = e.what();
    const bool names_file = what.find(path) != std::string::npos;
    const bool names_offset = what.find("offset") != std::string::npos;
    if (!names_file || !names_offset) {
      report("FAIL", spec, "rejection does not name file+offset: " + what);
      return;
    }
    std::string how = "rejected: " + what;
    if (how.size() > 140) how = how.substr(0, 137) + "...";
    report("PASS", spec, how);
  } catch (const std::exception& e) {
    report("FAIL", spec,
           std::string("rejected, but not with a CheckpointError: ") + e.what());
  }
  std::remove(path.c_str());
}

/// kill-at-epoch: re-exec ourselves as a child that arms the fault around a
/// checkpointed run and dies mid-flight with _Exit(137) — no unwinding, no
/// flushes, exactly a SIGKILL. The parent then restores the child's last
/// checkpoint and requires the resumed run to finish with the counters of an
/// uninterrupted one.
void expect_kill_restore(const char* self, const ExperimentConfig& base,
                         const std::string& path) {
  const std::string klass = "kill-at-epoch";
  std::remove(path.c_str());
  const std::string cmd = std::string(self) + " --kill-child " + path;
  const int rc = std::system(cmd.c_str());
  if (!WIFEXITED(rc) || WEXITSTATUS(rc) != 137) {
    report("FAIL", klass,
           "child was expected to die with status 137, got raw status " +
               std::to_string(rc));
    return;
  }
  ExperimentResult expect;
  try {
    expect = run_experiment(base);
  } catch (const std::exception& e) {
    report("FAIL", klass, std::string("uninterrupted reference failed: ") + e.what());
    return;
  }
  ExperimentConfig rcfg = base;
  rcfg.restore_path = path;
  ExperimentResult got;
  try {
    got = run_experiment(rcfg);
  } catch (const std::exception& e) {
    report("FAIL", klass, std::string("restore of the killed run failed: ") + e.what());
    return;
  }
  std::remove(path.c_str());
  if (got.cpu_cycles != expect.cpu_cycles || got.gpu_cycles != expect.gpu_cycles ||
      got.epochs != expect.epochs ||
      got.hmstats[1].migrations != expect.hmstats[1].migrations ||
      got.reconfigurations != expect.reconfigurations) {
    report("FAIL", klass,
           "restored run diverged: cycles " + std::to_string(got.cpu_cycles) + "/" +
               std::to_string(got.gpu_cycles) + " vs " +
               std::to_string(expect.cpu_cycles) + "/" +
               std::to_string(expect.gpu_cycles));
    return;
  }
  report("PASS", klass,
         "child died 137 mid-run; restored run matches uninterrupted (" +
             std::to_string(got.epochs) + " epochs, " +
             std::to_string(got.cpu_cycles) + " cpu cycles)");
}

void expect_sweep_captures(const std::string& klass, const SweepOptions& opts,
                           RunStatus want_status, u32 want_attempts,
                           const ExperimentConfig& cfg) {
  std::vector<ExperimentConfig> cfgs = {cfg};
  std::vector<SweepRun> runs;
  try {
    runs = run_sweep(cfgs, opts);
  } catch (const std::exception& e) {
    report("FAIL", klass, std::string("run_sweep itself threw: ") + e.what());
    return;
  }
  const SweepRun& r = runs.at(0);
  if (r.status != want_status) {
    report("FAIL", klass, std::string("expected status ") + to_string(want_status) +
                              ", got " + to_string(r.status) +
                              (r.error.empty() ? "" : " (" + r.error + ")"));
    return;
  }
  if (r.attempts != want_attempts) {
    report("FAIL", klass, "expected " + std::to_string(want_attempts) +
                              " attempt(s), took " + std::to_string(r.attempts));
    return;
  }
  std::string how = "sweep: status=" + std::string(to_string(r.status)) +
                    " attempts=" + std::to_string(r.attempts);
  if (!r.error.empty()) how += " error=\"" + r.error + "\"";
  if (how.size() > 140) how = how.substr(0, 137) + "...";
  report("PASS", klass, how);
}

}  // namespace

int main(int argc, char** argv) {
  // Hidden child mode for the kill-at-epoch row: run a checkpointed tiny
  // experiment with the kill fault armed and die mid-flight. Reaching the
  // return statements below means the fault never fired — the parent treats
  // any status other than 137 as a FAIL.
  if (argc == 3 && std::strcmp(argv[1], "--kill-child") == 0) {
    fault::Injector injector("kill-at-epoch:after=3");
    ExperimentConfig cfg = tiny_config(7);
    cfg.checkpoint_path = argv[2];
    try {
      fault::Scope scope(injector);
      (void)run_experiment(cfg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "kill-child run failed: %s\n", e.what());
      return 3;
    }
    return 0;
  }

  OracleConfig ocfg;
  ocfg.design = "hydrogen";  // exercises fills, writebacks, swaps
  ocfg.accesses = 60'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: h2fault [--accesses <n>] [--seed <n>]\n");
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--accesses") {
      ocfg.accesses = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      ocfg.seed = std::strtoull(value(), nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: h2fault [--accesses <n>] [--seed <n>]\n");
      return 2;
    }
  }

  std::printf("fault-injection matrix (compiled H2_CHECK_LEVEL=%d)\n",
              check::compiled_level());

  // State-corruption classes: the oracle must see the sim diverge from the
  // reference. after= skips the cold-start fills so the table has history.
  expect_oracle_detects("remap-flip:after=50", ocfg);
  expect_oracle_detects("dup-tag:count=0", ocfg);
  expect_oracle_detects("drop-writeback:count=0", ocfg);

  // Lazy-reconfiguration classes: their sites only go live once an epoch
  // schedule actually moves the partition, so they run against the
  // epoch-driven oracle (default schedule, several boundaries). Detection
  // needs no H2_CHECK level — the reference model stays clean and the
  // conserved quantities diverge in any build.
  {
    OracleConfig ecfg = ocfg;
    ecfg.epochs = 6;
    expect_oracle_detects("lazy-skip:count=0", ecfg);
    expect_oracle_detects("alloc-stuck:count=0", ecfg);
  }

  // Channel-backend classes. refresh-skip drops due tREFI windows; the
  // refresh-window conservation law (refresh_windows() must equal the
  // elapsed-window arithmetic) catches it in any build, and the site lives
  // in both backends, so both are proven. sched-starve uncaps FR-FCFS
  // row-hit bypassing and is proven on a direct DDR backend drive.
  expect_oracle_detects("refresh-skip:count=0", ocfg, "@fast");
  {
    OracleConfig dcfg = ocfg;
    dcfg.backend = ChannelBackendKind::Ddr;
    expect_oracle_detects("refresh-skip:count=0", dcfg, "@ddr");
  }
  expect_ddr_starve_detected("sched-starve");

  // Integrated-design migration classes. migrate-lost charges a migration's
  // four transfers and evicts the victim's identity but never installs the
  // migrated block (sim-only site in serve_miss_flat) — the residency and
  // migration-conservation laws diverge. counter-stuck freezes a
  // PageStatsTable::record() call; the site is shared code, but count=1
  // fires exactly once, on the sim side's first record (the sim model is
  // always stepped before the reference), so the counter-table identity
  // catches the one-sided freeze. Both proven against both backends.
  {
    OracleConfig icfg = ocfg;
    icfg.design = "integrated";
    expect_oracle_detects("migrate-lost:count=0", icfg, "@fast");
    expect_oracle_detects("counter-stuck:count=1", icfg, "@fast");
    OracleConfig idcfg = icfg;
    idcfg.backend = ChannelBackendKind::Ddr;
    expect_oracle_detects("migrate-lost:count=0", idcfg, "@ddr");
    expect_oracle_detects("counter-stuck:count=1", idcfg, "@ddr");
  }

  // Timing-corruption classes: only an H2_CHECK level can see these (the
  // oracle deliberately ignores timing), so they skip below their level.
  expect_engine_check_detects("time-skew:after=50", ocfg.seed);
  if (check::compiled_level() < 2) {
    report("SKIP", "cursor-skew", "needs H2_CHECK_LEVEL >= 2 (compiled level " +
                                      std::to_string(check::compiled_level()) + ")");
  } else {
    expect_oracle_detects("cursor-skew:after=20", ocfg);
  }

  // Harness-failure classes: the sweep runner must capture, retry or cancel.
  {
    SweepOptions opts;
    opts.jobs = 1;
    opts.fault_spec = "throw";
    opts.max_retries = 1;  // must NOT be used: permanent failures don't retry
    expect_sweep_captures("throw", opts, RunStatus::Failed, 1, tiny_config(ocfg.seed));
  }
  {
    SweepOptions opts;
    opts.jobs = 1;
    opts.fault_spec = "throw-transient:count=1";
    opts.max_retries = 1;
    opts.retry_backoff_ms = 1;
    expect_sweep_captures("throw-transient", opts, RunStatus::Ok, 2,
                          tiny_config(ocfg.seed));
  }
  {
    SweepOptions opts;
    opts.jobs = 1;
    opts.fault_spec = "stall:for=30000";
    opts.run_timeout_seconds = 0.3;
    expect_sweep_captures("stall", opts, RunStatus::TimedOut, 1, tiny_config(ocfg.seed));
  }
  {
    // Same throw class, but armed so it fires inside a *warmup* epoch — the
    // fault sites now live in an EpochObserver (harness/sim_system.cpp), and
    // this entry proves the observer path still routes failures into the
    // sweep's capture machinery after the lifecycle refactor.
    SweepOptions opts;
    opts.jobs = 1;
    opts.fault_spec = "throw";
    ExperimentConfig cfg = tiny_config(ocfg.seed);
    cfg.warmup_epochs = 2;
    expect_sweep_captures("throw@epoch-observer", opts, RunStatus::Failed, 1, cfg);
  }

  // Checkpoint classes: a perturbed file must be rejected loudly, and a
  // hard-killed run must resume to the same counters. count=0 perturbs every
  // snapshot (each boundary overwrites the last), so the surviving file is
  // guaranteed damaged; the corrupt seed lands the bit flip mid-payload
  // rather than in the magic.
  expect_ckpt_rejected("ckpt-corrupt:count=0,seed=70001", tiny_config(ocfg.seed),
                       "h2fault-corrupt.ckpt");
  expect_ckpt_rejected("ckpt-truncate:count=0", tiny_config(ocfg.seed),
                       "h2fault-truncate.ckpt");
  expect_kill_restore(argv[0], tiny_config(7), "h2fault-kill.ckpt");

  if (g_failures > 0) {
    std::fprintf(stderr, "h2fault: %d fault class(es) escaped detection\n", g_failures);
    return 1;
  }
  std::printf("h2fault: every armed fault class was detected\n");
  return 0;
}
