// h2perf: diff two perfbench BENCH_<n>.json files.
//
//   h2perf --compare <baseline> <current> [--threshold <frac>] [--warn-only]
//   h2perf --print <file>
//
// Rates are classified against the fractional noise band `--threshold`
// (default 0.10 = ±10 %): above it is an improvement, below a regression,
// inside is noise. Deterministic counters (micro checksums, engine events,
// demand accesses) must match exactly; a counter mismatch means behaviour
// changed, and it fails the run even under --warn-only — that flag only
// downgrades *rate* regressions (for noisy shared CI runners).
//
// Exit codes: 0 ok, 1 regression/counter mismatch, 2 usage or parse error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "harness/perfbench.h"

namespace h2 {
namespace {

int usage() {
  std::cerr << "usage: h2perf --compare <baseline> <current>"
               " [--threshold <frac>] [--warn-only]\n"
               "       h2perf --print <file>\n";
  return 2;
}

PerfReport load_or_die(const std::string& path) {
  std::optional<PerfReport> r = load_report(path);
  if (!r.has_value()) {
    std::cerr << "h2perf: cannot load '" << path
              << "' (missing file or schema mismatch)\n";
    std::exit(2);
  }
  return std::move(*r);
}

int print_file(const std::string& path) {
  const PerfReport r = load_or_die(path);
  for (const auto& [k, v] : r.meta) std::cout << k << ": " << v << "\n";
  std::printf("%-24s %6s %14s %14s %20s\n", "benchmark", "kind", "rate/s",
              "wall_s", "counter(events)");
  for (const PerfEntry& e : r.entries) {
    std::printf("%-24s %6s %14.4e %14.6f %20llu\n", e.name.c_str(),
                e.kind.c_str(), e.rate, e.wall_seconds,
                static_cast<unsigned long long>(e.events));
  }
  return 0;
}

int compare_files(const std::string& base_path, const std::string& cur_path,
                  double threshold, bool warn_only) {
  const PerfReport base = load_or_die(base_path);
  const PerfReport cur = load_or_die(cur_path);

  const std::string* bh = base.find_meta("host");
  const std::string* ch = cur.find_meta("host");
  if (bh != nullptr && ch != nullptr && *bh != *ch) {
    std::cerr << "note: reports come from different hosts (" << *bh << " vs "
              << *ch << "); rate deltas include hardware differences\n";
  }

  const CompareReport cmp = compare_reports(base, cur, threshold);
  std::printf("%-24s %12s %12s %8s  %s\n", "benchmark", "base rate/s",
              "cur rate/s", "ratio", "class");
  for (const PerfComparison& row : cmp.rows) {
    std::printf("%-24s %12.4e %12.4e %8.3f  %s%s%s\n", row.name.c_str(),
                row.base_rate, row.cur_rate, row.ratio, to_string(row.cls),
                row.detail.empty() ? "" : ": ", row.detail.c_str());
  }
  std::printf("summary: %u improvement(s), %u regression(s), "
              "%u counter mismatch(es), threshold ±%.0f%%\n",
              cmp.improvements, cmp.regressions, cmp.counter_mismatches,
              threshold * 100.0);

  if (cmp.counter_mismatches > 0) {
    std::cerr << "h2perf: deterministic counters drifted — behaviour changed "
                 "(never downgraded by --warn-only)\n";
    return 1;
  }
  if (cmp.regressions > 0) {
    if (warn_only) {
      std::cerr << "h2perf: rate regressions present (ignored: --warn-only)\n";
      return 0;
    }
    return 1;
  }
  return 0;
}

int run(int argc, char** argv) {
  std::string mode, base_path, cur_path;
  double threshold = 0.10;
  bool warn_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--compare" && i + 2 < argc) {
      mode = "compare";
      base_path = argv[++i];
      cur_path = argv[++i];
    } else if (a == "--print" && i + 1 < argc) {
      mode = "print";
      base_path = argv[++i];
    } else if (a == "--threshold" && i + 1 < argc) {
      char* end = nullptr;
      threshold = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || threshold < 0.0) return usage();
    } else if (a == "--warn-only") {
      warn_only = true;
    } else {
      return usage();
    }
  }
  if (mode == "print") return print_file(base_path);
  if (mode == "compare") {
    return compare_files(base_path, cur_path, threshold, warn_only);
  }
  return usage();
}

}  // namespace
}  // namespace h2

int main(int argc, char** argv) { return h2::run(argc, argv); }
