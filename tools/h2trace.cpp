// h2trace — workload trace generation and inspection, mirroring the paper
// artifact's T1 stage (traces/generate_overall_*_workload).
//
//   h2trace generate <workload> <count> <out.trace> [--seed N] [--scale N]
//   h2trace generate-all <count> <out-dir> [--seed N] [--scale N]
//   h2trace info <trace-file>
//   h2trace list
//
// Traces are the binary format of trace/trace_io.h and can be replayed with
// ReplayGenerator (see examples and tests).
#include <filesystem>
#include <iostream>
#include <map>
#include <set>
#include <string>

#include "harness/report.h"
#include "trace/trace_io.h"
#include "trace/workloads.h"

using namespace h2;

namespace {

int usage() {
  std::cerr << "usage:\n"
               "  h2trace generate <workload> <count> <out.trace> [--seed N] [--scale N]\n"
               "  h2trace generate-all <count> <out-dir> [--seed N] [--scale N]\n"
               "  h2trace info <trace-file>\n"
               "  h2trace list\n";
  return 2;
}

const WorkloadSpec* find_spec(const std::string& name) {
  for (const auto& n : cpu_workload_names()) {
    if (n == name) return &cpu_workload_spec(name);
  }
  for (const auto& n : gpu_workload_names()) {
    if (n == name) return &gpu_workload_spec(name);
  }
  return nullptr;
}

u64 write_one(const WorkloadSpec& spec, u64 count, const std::string& path, u64 seed,
              u32 scale) {
  SyntheticGenerator gen(with_scaled_footprint(spec, 1, scale), seed);
  const u64 bytes = record_trace(gen, count, path);
  std::cerr << "wrote " << path << " (" << count << " accesses, " << bytes
            << " bytes)\n";
  return bytes;
}

int cmd_info(const std::string& path) {
  u64 footprint = 0;
  const auto accesses = load_trace(path, &footprint);
  u64 writes = 0, dependent = 0, gap_sum = 0;
  std::set<Addr> lines, blocks;
  for (const auto& a : accesses) {
    writes += a.write;
    dependent += a.dependent;
    gap_sum += a.gap;
    lines.insert(a.addr / 64);
    blocks.insert(a.addr / 256);
  }
  TablePrinter t("trace " + path, {"metric", "value"});
  t.row({"accesses", std::to_string(accesses.size())});
  t.row({"footprint (declared)", fmt(footprint / 1048576.0, 2) + " MB"});
  t.row({"distinct 64B lines", std::to_string(lines.size())});
  t.row({"distinct 256B blocks", std::to_string(blocks.size())});
  t.row({"write fraction", fmt_pct(writes / static_cast<double>(accesses.size()))});
  t.row({"dependent fraction", fmt_pct(dependent / static_cast<double>(accesses.size()))});
  t.row({"mean gap (instructions)", fmt(gap_sum / static_cast<double>(accesses.size()), 1)});
  t.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  u64 seed = 42;
  u32 scale = 8;
  std::vector<std::string> pos;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (a == "--scale" && i + 1 < argc) {
      scale = static_cast<u32>(std::stoul(argv[++i]));
    } else {
      pos.push_back(a);
    }
  }

  if (cmd == "list") {
    TablePrinter t("available workload models", {"name", "side", "footprint MB"});
    for (const auto& n : cpu_workload_names()) {
      t.row({n, "cpu", fmt(cpu_workload_spec(n).footprint_bytes / 1048576.0, 0)});
    }
    for (const auto& n : gpu_workload_names()) {
      t.row({n, "gpu", fmt(gpu_workload_spec(n).footprint_bytes / 1048576.0, 0)});
    }
    t.print(std::cout);
    return 0;
  }

  if (cmd == "info") {
    if (pos.size() != 1) return usage();
    try {
      return cmd_info(pos[0]);
    } catch (const TraceError& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  if (cmd == "generate") {
    if (pos.size() != 3) return usage();
    const WorkloadSpec* spec = find_spec(pos[0]);
    if (!spec) {
      std::cerr << "unknown workload '" << pos[0] << "' (try: h2trace list)\n";
      return 1;
    }
    try {
      write_one(*spec, std::stoull(pos[1]), pos[2], seed, scale);
    } catch (const TraceError& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
    return 0;
  }

  if (cmd == "generate-all") {
    if (pos.size() != 2) return usage();
    const u64 count = std::stoull(pos[0]);
    const std::filesystem::path dir = pos[1];
    std::filesystem::create_directories(dir);
    try {
      for (const auto& n : cpu_workload_names()) {
        write_one(cpu_workload_spec(n), count, (dir / (n + ".trace")).string(), seed, scale);
      }
      for (const auto& n : gpu_workload_names()) {
        write_one(gpu_workload_spec(n), count, (dir / (n + ".trace")).string(), seed, scale);
      }
    } catch (const TraceError& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
    return 0;
  }

  return usage();
}
