// h2check — the differential-oracle front end (see src/check/oracle.h).
//
//   h2check [--workloads a,b,c] [--gpu <name>]
//           [--designs baseline,waypart,hydrogen-setpart,hashcache,profess,
//            hydrogen,integrated]
//           [--design <name>] [--accesses <n>] [--seed <n>] [--check <level>]
//           [--epochs <n>] [--schedule <ops>] [--restore-at <epoch>]
//           [--quick] [--backend fast|ddr|both] [--shards <n>]
//
// Replays each (backend, CPU workload, design) triple through the full
// simulator and the independent reference model, and reports per-triple
// conservation diffs. With --epochs N the replay is cut into N+1 slices and
// a scripted reconfiguration schedule (--schedule, check/epoch_schedule.h
// grammar; default "shrink,bw+,grow,bw-") is driven through both sides,
// exercising the lazy-fixup machinery. --restore-at K checkpoints the full
// side to memory at epoch boundary K, destroys it, rebuilds it from
// configuration and loads the checkpoint back mid-replay — the reference
// model never notices, so the remaining conserved quantities prove the
// checkpoint/restore seam is lossless. --quick shrinks the replay for smoke
// runs. --backend selects the channel timing model on the full side (the
// reference model is timing-free, so every conserved count must agree under
// either backend); "both" runs every pair under fast then ddr. --shards N
// splits the SAME materialised stream page-granularly across N independent
// replay pairs (mirroring the ShardGroup harness partition) and additionally
// prints a per-triple "demand cpu=<n> gpu=<n>" summary — a conserved global
// quantity CI diffs between --shards N and --shards 1 runs.
// Exit status is 0 iff every pair matches on every conserved quantity, which
// makes this binary a ctest entry (see tools/CMakeLists.txt).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "check/check.h"
#include "check/oracle.h"

using namespace h2;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: h2check [--workloads a,b,c] [--gpu <name>]\n"
      "               [--designs baseline,waypart,hydrogen-setpart,hashcache,"
      "profess,hydrogen,integrated]\n"
      "               [--design <name>] [--accesses <n>] [--seed <n>]\n"
      "               [--check <level>] [--epochs <n>] [--schedule <ops>]\n"
      "               [--restore-at <epoch>] [--quick]\n"
      "               [--backend fast|ddr|both] [--shards <n>]\n");
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  size_t from = 0;
  while (from <= s.size()) {
    const size_t comma = s.find(',', from);
    const std::string item = s.substr(from, comma - from);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    from = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> workloads = {"gcc", "mcf", "lbm"};
  std::vector<std::string> designs = {"baseline",  "waypart", "hydrogen-setpart",
                                      "hashcache", "profess", "hydrogen",
                                      "integrated"};
  std::vector<ChannelBackendKind> backends = {ChannelBackendKind::Fast};
  OracleConfig base;
  bool accesses_set = false;
  bool quick = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workloads") {
      workloads = split_csv(value());
    } else if (arg == "--gpu") {
      base.gpu_workload = value();
    } else if (arg == "--designs") {
      designs = split_csv(value());
    } else if (arg == "--design") {
      designs = {value()};
    } else if (arg == "--accesses") {
      base.accesses = std::strtoull(value(), nullptr, 10);
      accesses_set = true;
    } else if (arg == "--seed") {
      base.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--check") {
      check::set_runtime_level(std::atoi(value()));
    } else if (arg == "--epochs") {
      base.epochs = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--schedule") {
      base.schedule = value();
    } else if (arg == "--restore-at") {
      base.restore_at_epoch = std::strtoll(value(), nullptr, 10);
    } else if (arg == "--shards") {
      base.shards = static_cast<u32>(std::strtoul(value(), nullptr, 10));
      if (base.shards == 0) {
        std::fprintf(stderr, "--shards expects a positive count\n");
        return 2;
      }
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--backend") {
      const std::string v = value();
      ChannelBackendKind k;
      if (v == "both") {
        backends = {ChannelBackendKind::Fast, ChannelBackendKind::Ddr};
      } else if (parse_backend_kind(v, &k)) {
        backends = {k};
      } else {
        std::fprintf(stderr, "--backend expects fast, ddr or both, got '%s'\n",
                     v.c_str());
        return 2;
      }
    } else {
      usage();
      return 2;
    }
  }
  if (quick && !accesses_set) base.accesses = 30'000;
  if (workloads.empty() || designs.empty() || base.accesses == 0) {
    usage();
    return 2;
  }

  int failures = 0;
  for (const ChannelBackendKind backend : backends) {
    for (const std::string& design : designs) {
      for (const std::string& wl : workloads) {
        OracleConfig cfg = base;
        cfg.cpu_workload = wl;
        cfg.design = design;
        cfg.backend = backend;
        OracleReport rep;
        try {
          rep = run_oracle(cfg);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "FAIL %-4s %-16s %-18s error: %s\n",
                       to_string(backend), design.c_str(), wl.c_str(), e.what());
          failures++;
          continue;
        }
        if (rep.ok()) {
          std::printf(
              "PASS %-4s %-16s %-18s %llu accesses, %llu epochs, %llu "
              "quantities conserved\n",
              to_string(backend), design.c_str(), wl.c_str(),
              static_cast<unsigned long long>(rep.accesses),
              static_cast<unsigned long long>(rep.epochs),
              static_cast<unsigned long long>(rep.quantities));
          // Shard-count-invariant conserved summary (grep-stable format:
          // CI diffs these lines between --shards N and --shards 1 runs).
          std::printf("  demand %-4s %-16s %-18s cpu=%llu gpu=%llu\n",
                      to_string(backend), design.c_str(), wl.c_str(),
                      static_cast<unsigned long long>(rep.cpu_demand),
                      static_cast<unsigned long long>(rep.gpu_demand));
        } else {
          failures++;
          std::printf("FAIL %-4s %-16s %-18s %zu of %llu quantities differ:\n",
                      to_string(backend), design.c_str(), wl.c_str(),
                      rep.diffs.size(),
                      static_cast<unsigned long long>(rep.quantities));
          for (const std::string& d : rep.diffs) std::printf("  %s\n", d.c_str());
        }
      }
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "h2check: %d pair(s) diverged\n", failures);
    return 1;
  }
  return 0;
}
