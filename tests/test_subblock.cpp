// Footprint-cache-style sub-blocking (HybridMemConfig::subblock): migrations
// fetch only the demanded sub-blocks, absent sub-blocks fill on demand, and
// dirty writebacks transfer only resident data. The paper cites this as an
// orthogonal migration-cost optimisation (Section IV-B, refs [33][41]).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "hybridmem/hybrid_memory.h"
#include "policies/baseline.h"

namespace h2 {
namespace {

HybridMemConfig sb_cfg(bool subblock) {
  HybridMemConfig h;
  h.fast_capacity_bytes = 64 * 1024;
  h.slow_capacity_bytes = 1 << 20;
  h.subblock = subblock;
  h.subblock_fetch = 2;
  return h;
}

TEST(Subblock, MigrationFetchesOnlyRequestedSubBlocks) {
  MemorySystem mem(MemSystemConfig::table1_default());
  BaselinePolicy pol;
  HybridMemory hm(sb_cfg(true), &mem, &pol);
  hm.access(0, Requestor::Gpu, 0x1000, false);  // miss -> migrate
  // Slow read = 2 sub-blocks (128 B) instead of the full 256 B block.
  EXPECT_EQ(mem.tier_bytes(Tier::Slow), 128u);
  EXPECT_EQ(hm.stats(Requestor::Gpu).migrations, 1u);
}

TEST(Subblock, FullBlockFetchWithoutSubblocking) {
  MemorySystem mem(MemSystemConfig::table1_default());
  BaselinePolicy pol;
  HybridMemory hm(sb_cfg(false), &mem, &pol);
  hm.access(0, Requestor::Gpu, 0x1000, false);
  EXPECT_EQ(mem.tier_bytes(Tier::Slow), 256u);
}

TEST(Subblock, AbsentSubBlockFillsOnDemand) {
  MemorySystem mem(MemSystemConfig::table1_default());
  BaselinePolicy pol;
  HybridMemory hm(sb_cfg(true), &mem, &pol);
  // Migrate on sub-block 0 -> sub-blocks {0,1} present.
  Cycle t = hm.access(0, Requestor::Cpu, 0x1000, false);
  // Touch sub-block 1: pure fast hit, no new slow traffic.
  const u64 slow_a = mem.tier_bytes(Tier::Slow);
  t = hm.access(t, Requestor::Cpu, 0x1040, false);
  EXPECT_EQ(mem.tier_bytes(Tier::Slow), slow_a);
  EXPECT_EQ(hm.stats(Requestor::Cpu).subfills, 0u);
  // Touch sub-block 3: absent -> 64 B demand fill from the slow tier.
  t = hm.access(t, Requestor::Cpu, 0x10C0, false);
  EXPECT_EQ(mem.tier_bytes(Tier::Slow), slow_a + 64);
  EXPECT_EQ(hm.stats(Requestor::Cpu).subfills, 1u);
  // Re-touch sub-block 3: now resident.
  t = hm.access(t, Requestor::Cpu, 0x10C0, false);
  EXPECT_EQ(hm.stats(Requestor::Cpu).subfills, 1u);
}

TEST(Subblock, SubfillsStillCountAsHits) {
  MemorySystem mem(MemSystemConfig::table1_default());
  BaselinePolicy pol;
  HybridMemory hm(sb_cfg(true), &mem, &pol);
  Cycle t = hm.access(0, Requestor::Cpu, 0x2000, false);
  hm.access(t, Requestor::Cpu, 0x20C0, false);  // absent sub-block
  EXPECT_EQ(hm.stats(Requestor::Cpu).fast_hits, 1u);
  EXPECT_EQ(hm.stats(Requestor::Cpu).misses, 1u);
}

TEST(Subblock, DirtyWritebackTransfersOnlyResidentData) {
  MemorySystem mem(MemSystemConfig::table1_default());
  BaselinePolicy pol;
  HybridMemory hm(sb_cfg(true), &mem, &pol);
  const u64 set_stride = 256ull * hm.num_sets();
  // Dirty block with 2 resident sub-blocks.
  Cycle t = hm.access(0, Requestor::Cpu, 0, true);
  // Evict it by filling the set.
  const u64 slow_before = mem.tier_bytes(Tier::Slow);
  for (u64 i = 1; i <= 4; ++i) t = hm.access(t, Requestor::Cpu, i * set_stride, false);
  // 4 migrations x 128 B refill + one dirty writeback of 128 B (2 sub-blocks).
  EXPECT_EQ(mem.tier_bytes(Tier::Slow) - slow_before, 4 * 128u + 128u);
}

TEST(Subblock, StreamingTrafficDropsMissesRise) {
  // The classic Footprint trade-off: less refill traffic, more demand fills.
  auto run = [](bool subblock) {
    MemorySystem mem(MemSystemConfig::table1_default());
    BaselinePolicy pol;
    HybridMemory hm(sb_cfg(subblock), &mem, &pol);
    Rng rng(9);
    Cycle t = 0;
    for (int i = 0; i < 6000; ++i) {
      // Random single-line touches: poor spatial locality.
      t = hm.access(t, Requestor::Gpu,
                    rng.next_below((1 << 20) / 64) * 64, false) + 1;
    }
    return mem.tier_bytes(Tier::Slow);
  };
  EXPECT_LT(run(true), run(false));
}

TEST(Subblock, FullMaskForLargeBlocks) {
  // 2 kB blocks have 32 sub-blocks: the mask arithmetic must not overflow.
  MemorySystem mem(MemSystemConfig::table1_default());
  BaselinePolicy pol;
  HybridMemConfig cfg = sb_cfg(true);
  cfg.block_bytes = 2048;
  HybridMemory hm(cfg, &mem, &pol);
  Cycle t = hm.access(0, Requestor::Cpu, 31 * 64, false);  // last sub-block
  hm.access(t, Requestor::Cpu, 31 * 64, false);
  EXPECT_EQ(hm.stats(Requestor::Cpu).fast_hits, 1u);
}

}  // namespace
}  // namespace h2
