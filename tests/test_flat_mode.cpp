#include <gtest/gtest.h>

#include "hybridmem/hybrid_memory.h"
#include "hydrogen/hydrogen_policy.h"
#include "policies/baseline.h"

namespace h2 {
namespace {

HybridMemConfig flat_cfg() {
  HybridMemConfig h;
  h.mode = HybridMode::Flat;
  h.fast_capacity_bytes = 64 * 1024;
  h.slow_capacity_bytes = 1 << 20;
  h.remap_cache_bytes = 16 * 1024;
  return h;
}

TEST(FlatMode, FirstTouchFillsFastForFree) {
  MemorySystem mem(MemSystemConfig::table1_default());
  BaselinePolicy pol;
  HybridMemory hm(flat_cfg(), &mem, &pol);
  // First touch: no slow-tier traffic at all (the block materialises fast).
  hm.access(0, Requestor::Cpu, 0x1000, false);
  EXPECT_EQ(mem.tier_bytes(Tier::Slow), 0u);
  EXPECT_EQ(hm.stats(Requestor::Cpu).misses, 1u);
  // Re-access hits.
  hm.access(1000, Requestor::Cpu, 0x1000, false);
  EXPECT_EQ(hm.stats(Requestor::Cpu).fast_hits, 1u);
}

TEST(FlatMode, OverflowGoesToSlowTier) {
  MemorySystem mem(MemSystemConfig::table1_default());
  BaselinePolicy pol;
  HybridMemory hm(flat_cfg(), &mem, &pol);
  const u64 set_stride = 256ull * hm.num_sets();
  Cycle t = 0;
  // Fill all 4 ways of set 0, then access a 5th conflicting block.
  for (u64 i = 0; i < 4; ++i) t = hm.access(t, Requestor::Cpu, i * set_stride, false);
  EXPECT_EQ(mem.tier_bytes(Tier::Slow), 0u);
  t = hm.access(t, Requestor::Cpu, 4 * set_stride, false);
  EXPECT_GT(mem.tier_bytes(Tier::Slow), 0u);  // served (and swapped) from slow
}

TEST(FlatMode, SwapMovesTwoBlocksBothTiers) {
  MemorySystem mem(MemSystemConfig::table1_default());
  BaselinePolicy pol;
  HybridMemory hm(flat_cfg(), &mem, &pol);
  const u64 set_stride = 256ull * hm.num_sets();
  Cycle t = 0;
  for (u64 i = 0; i < 4; ++i) t = hm.access(t, Requestor::Cpu, i * set_stride, false);
  const u64 slow_before = mem.tier_bytes(Tier::Slow);
  const u64 fast_before = mem.tier_bytes(Tier::Fast);
  t = hm.access(t, Requestor::Cpu, 4 * set_stride, false);
  // Swap: 64 B demand + 256 B block in from slow, 256 B victim out to slow;
  // 256 B victim read + 256 B fill in fast.
  EXPECT_EQ(mem.tier_bytes(Tier::Slow) - slow_before, 64u + 256u + 256u);
  EXPECT_GE(mem.tier_bytes(Tier::Fast) - fast_before, 512u);
  // First touches are free placements, not migrations; only the swap counts.
  EXPECT_EQ(hm.stats(Requestor::Cpu).migrations, 1u);
  // The swapped-in block now hits.
  const u64 hits_before = hm.stats(Requestor::Cpu).fast_hits;
  hm.access(t, Requestor::Cpu, 4 * set_stride, false);
  EXPECT_EQ(hm.stats(Requestor::Cpu).fast_hits, hits_before + 1);
}

TEST(FlatMode, TokensChargeTwoPerSwap) {
  // Section IV-F: flat-mode migrations always decrement the counter by 2.
  MemorySystem mem(MemSystemConfig::table1_default());
  HydrogenConfig hc;
  hc.decoupled = true;
  hc.token = true;
  hc.search = false;
  hc.faucet_period = 1'000'000;
  HydrogenPolicy pol(hc);
  HybridMemory hm(flat_cfg(), &mem, &pol);

  // Prime the miss-rate estimate: budget = 15% x 200 = 30 tokens/period.
  EpochFeedback fb;
  fb.epoch_cycles = 1'000'000;
  fb.gpu_misses = 200;
  pol.on_epoch(fb);

  const u64 set_stride = 256ull * hm.num_sets();
  Cycle t = 1;
  // Fill set 0's GPU way (first touch is free of tokens? it passes through
  // allow_migration only when swapping; first touches land in free ways).
  for (u64 i = 0; i < 8; ++i) t = hm.access(t, Requestor::Gpu, i * set_stride, false);
  // Stream conflicting GPU blocks: each swap costs 2 tokens -> at most ~15
  // swaps this period.
  const u64 migr_before = hm.stats(Requestor::Gpu).migrations;
  for (u64 i = 8; i < 100; ++i) t = hm.access(t, Requestor::Gpu, i * set_stride, false);
  const u64 swaps = hm.stats(Requestor::Gpu).migrations - migr_before;
  EXPECT_LE(swaps, 16u);
}

TEST(FlatMode, WritebackWritesResidentTier) {
  MemorySystem mem(MemSystemConfig::table1_default());
  BaselinePolicy pol;
  HybridMemory hm(flat_cfg(), &mem, &pol);
  hm.access(0, Requestor::Cpu, 0x2000, false);  // fast-resident
  const u64 fast_before = mem.tier_bytes(Tier::Fast);
  hm.writeback(100, Requestor::Cpu, 0x2000);
  EXPECT_EQ(mem.tier_bytes(Tier::Fast) - fast_before, 64u);
}

}  // namespace
}  // namespace h2
