// Determinism-regression harness for the parallel sweep runner: a parallel
// sweep must be bit-identical to a serial one, run-for-run, or parallel
// regeneration of the paper's figures cannot be trusted.
#include "harness/sweep.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>

namespace h2 {
namespace {

/// Small, fast experiment configuration (mirrors test_experiment.cpp).
ExperimentConfig quick(const std::string& combo, DesignSpec design) {
  ExperimentConfig cfg;
  cfg.combo = combo;
  cfg.design = std::move(design);
  cfg.sys = SystemConfig::table1(/*scale=*/16);
  cfg.cpu_target_instructions = 150'000;
  cfg.gpu_target_instructions = 120'000;
  cfg.epoch_cycles = 50'000;
  cfg.max_cycles = 60'000'000;
  return cfg;
}

/// The 6-config sweep used by the determinism tests: 2 combos x 3 designs.
std::vector<ExperimentConfig> six_configs() {
  std::vector<ExperimentConfig> cfgs;
  for (const char* combo : {"C1", "C3"}) {
    cfgs.push_back(quick(combo, DesignSpec::baseline()));
    cfgs.push_back(quick(combo, DesignSpec::profess()));
    cfgs.push_back(quick(combo, DesignSpec::hydrogen_full()));
  }
  return cfgs;
}

/// A no-simulation runner for tests of sweep mechanics (ordering, seeds,
/// failure capture) where real experiment results are irrelevant.
ExperimentResult stub_runner(const ExperimentConfig& cfg) {
  ExperimentResult r;
  r.combo = cfg.combo;
  r.design = cfg.design.label;
  r.end_cycle = cfg.seed;  // lets tests observe the seed the runner saw
  return r;
}

/// Bit-exact comparison of every metric the figures are built from.
void expect_identical(const SweepRun& a, const SweepRun& b) {
  ASSERT_TRUE(a.ok) << a.combo << "/" << a.design << ": " << a.error;
  ASSERT_TRUE(b.ok) << b.combo << "/" << b.design << ": " << b.error;
  EXPECT_EQ(a.combo, b.combo);
  EXPECT_EQ(a.design, b.design);
  EXPECT_EQ(a.seed, b.seed);
  const ExperimentResult& x = a.result;
  const ExperimentResult& y = b.result;
  EXPECT_EQ(x.cpu_cycles, y.cpu_cycles);
  EXPECT_EQ(x.gpu_cycles, y.gpu_cycles);
  EXPECT_EQ(x.end_cycle, y.end_cycle);
  EXPECT_EQ(x.cpu_instructions, y.cpu_instructions);
  EXPECT_EQ(x.gpu_instructions, y.gpu_instructions);
  EXPECT_EQ(x.cpu_ipc, y.cpu_ipc);  // exact ==, not near: bit-identical
  EXPECT_EQ(x.gpu_ipc, y.gpu_ipc);
  EXPECT_EQ(x.weighted_ipc, y.weighted_ipc);
  EXPECT_EQ(x.energy_pj, y.energy_pj);
  EXPECT_EQ(x.fast_bytes, y.fast_bytes);
  EXPECT_EQ(x.slow_bytes, y.slow_bytes);
  EXPECT_EQ(x.remap_cache_hit_rate, y.remap_cache_hit_rate);
  EXPECT_EQ(x.slow_amplification, y.slow_amplification);
  EXPECT_EQ(x.reconfigurations, y.reconfigurations);
  EXPECT_EQ(x.epochs, y.epochs);
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(x.fast_hit_rate[s], y.fast_hit_rate[s]);
    EXPECT_EQ(x.llc_hit_rate[s], y.llc_hit_rate[s]);
    EXPECT_EQ(x.read_latency_mean[s], y.read_latency_mean[s]);
    EXPECT_EQ(x.read_latency_p99[s], y.read_latency_p99[s]);
    EXPECT_EQ(x.hmstats[s].demand, y.hmstats[s].demand);
    EXPECT_EQ(x.hmstats[s].fast_hits, y.hmstats[s].fast_hits);
    EXPECT_EQ(x.hmstats[s].misses, y.hmstats[s].misses);
    EXPECT_EQ(x.hmstats[s].migrations, y.hmstats[s].migrations);
    EXPECT_EQ(x.hmstats[s].fast_swaps, y.hmstats[s].fast_swaps);
    EXPECT_EQ(x.hmstats[s].dirty_writebacks, y.hmstats[s].dirty_writebacks);
  }
}

TEST(Sweep, ParallelMatchesSerialBitForBit) {
  const std::vector<ExperimentConfig> cfgs = six_configs();

  SweepOptions serial;
  serial.jobs = 1;
  const std::vector<SweepRun> a = run_sweep(cfgs, serial);

  SweepOptions parallel;
  parallel.jobs = 4;
  const std::vector<SweepRun> b = run_sweep(cfgs, parallel);

  ASSERT_EQ(a.size(), cfgs.size());
  ASSERT_EQ(b.size(), cfgs.size());
  for (size_t i = 0; i < cfgs.size(); ++i) expect_identical(a[i], b[i]);
}

TEST(Sweep, ResultsComeBackInSubmissionOrder) {
  const std::vector<ExperimentConfig> cfgs = six_configs();
  SweepOptions opts;
  opts.jobs = 4;
  const std::vector<SweepRun> runs = run_sweep(cfgs, opts, stub_runner);
  ASSERT_EQ(runs.size(), cfgs.size());
  for (size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(runs[i].combo, cfgs[i].combo);
    EXPECT_EQ(runs[i].design, cfgs[i].design.label);
    EXPECT_GE(runs[i].wall_seconds, 0.0);
  }
}

TEST(Sweep, SeedDerivationIsPureAndPerRun) {
  // Scheduling independence rests on the seed being a function of the config
  // alone: same inputs always give the same seed, distinct (combo, design)
  // pairs get distinct streams, and the base seed still matters.
  EXPECT_EQ(derive_seed(42, "C1", "baseline"), derive_seed(42, "C1", "baseline"));
  EXPECT_NE(derive_seed(42, "C1", "baseline"), derive_seed(42, "C2", "baseline"));
  EXPECT_NE(derive_seed(42, "C1", "baseline"), derive_seed(42, "C1", "hydrogen"));
  EXPECT_NE(derive_seed(42, "C1", "baseline"), derive_seed(43, "C1", "baseline"));

  const std::vector<ExperimentConfig> cfgs = six_configs();
  SweepOptions opts;
  opts.jobs = 2;
  const std::vector<SweepRun> runs = run_sweep(cfgs, opts, stub_runner);
  std::set<u64> seeds;
  for (size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(runs[i].seed,
              derive_seed(cfgs[i].seed, cfgs[i].combo, cfgs[i].design.label));
    EXPECT_EQ(runs[i].result.end_cycle, runs[i].seed);  // runner saw the derived seed
    seeds.insert(runs[i].seed);
  }
  EXPECT_EQ(seeds.size(), cfgs.size());  // all six streams distinct
}

TEST(Sweep, SeedDerivationCanBeDisabled) {
  std::vector<ExperimentConfig> cfgs = {quick("C1", DesignSpec::baseline())};
  cfgs[0].seed = 777;
  SweepOptions opts;
  opts.jobs = 1;
  opts.derive_seeds = false;
  const std::vector<SweepRun> runs = run_sweep(cfgs, opts, stub_runner);
  EXPECT_EQ(runs[0].seed, 777u);
  EXPECT_EQ(runs[0].result.end_cycle, 777u);
}

TEST(Sweep, FailedRunIsCapturedWithoutAbortingTheSweep) {
  const std::vector<ExperimentConfig> cfgs = six_configs();
  SweepOptions opts;
  opts.jobs = 3;
  // Inject a runner that fails for one combo: its slot must carry the error,
  // every other slot must still complete.
  const std::vector<SweepRun> runs =
      run_sweep(cfgs, opts, [](const ExperimentConfig& cfg) -> ExperimentResult {
        if (cfg.combo == "C3" && cfg.design.label == "profess") {
          throw std::runtime_error("injected failure");
        }
        ExperimentResult r;
        r.combo = cfg.combo;
        r.design = cfg.design.label;
        return r;
      });
  ASSERT_EQ(runs.size(), cfgs.size());
  int failed = 0;
  for (const SweepRun& run : runs) {
    if (!run.ok) {
      ++failed;
      EXPECT_EQ(run.combo, "C3");
      EXPECT_EQ(run.design, "profess");
      EXPECT_EQ(run.error, "injected failure");
    }
  }
  EXPECT_EQ(failed, 1);
}

TEST(Sweep, ResolveJobsPrefersExplicitThenEnvThenHardware) {
  EXPECT_EQ(resolve_jobs(3), 3u);

  ASSERT_EQ(setenv("H2_JOBS", "5", /*overwrite=*/1), 0);
  EXPECT_EQ(resolve_jobs(0), 5u);
  EXPECT_EQ(resolve_jobs(2), 2u);  // explicit wins over the env

  ASSERT_EQ(setenv("H2_JOBS", "garbage", 1), 0);
  EXPECT_GE(resolve_jobs(0), 1u);  // invalid env falls through to hardware

  ASSERT_EQ(unsetenv("H2_JOBS"), 0);
  const u32 hw = std::thread::hardware_concurrency();
  EXPECT_EQ(resolve_jobs(0), hw > 0 ? hw : 1u);
}

TEST(Sweep, HashStrIsStableAndSensitive) {
  EXPECT_EQ(hash_str("hydrogen"), hash_str("hydrogen"));
  EXPECT_NE(hash_str("hydrogen"), hash_str("hydrogen-dp"));
  EXPECT_NE(hash_str(""), hash_str("C1"));
}

TEST(Sweep, EmptySweepReturnsEmpty) {
  EXPECT_TRUE(run_sweep({}, SweepOptions{}).empty());
}

}  // namespace
}  // namespace h2
