// Determinism-regression harness for the parallel sweep runner: a parallel
// sweep must be bit-identical to a serial one, run-for-run, or parallel
// regeneration of the paper's figures cannot be trusted.
#include "harness/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <thread>

#include "check/fault.h"
#include "common/cancel.h"
#include "harness/journal.h"

namespace h2 {
namespace {

/// Small, fast experiment configuration (mirrors test_experiment.cpp).
ExperimentConfig quick(const std::string& combo, DesignSpec design) {
  ExperimentConfig cfg;
  cfg.combo = combo;
  cfg.design = std::move(design);
  cfg.sys = SystemConfig::table1(/*scale=*/16);
  cfg.cpu_target_instructions = 150'000;
  cfg.gpu_target_instructions = 120'000;
  cfg.epoch_cycles = 50'000;
  cfg.max_cycles = 60'000'000;
  return cfg;
}

/// The 6-config sweep used by the determinism tests: 2 combos x 3 designs.
std::vector<ExperimentConfig> six_configs() {
  std::vector<ExperimentConfig> cfgs;
  for (const char* combo : {"C1", "C3"}) {
    cfgs.push_back(quick(combo, DesignSpec::baseline()));
    cfgs.push_back(quick(combo, DesignSpec::profess()));
    cfgs.push_back(quick(combo, DesignSpec::hydrogen_full()));
  }
  return cfgs;
}

/// A no-simulation runner for tests of sweep mechanics (ordering, seeds,
/// failure capture) where real experiment results are irrelevant.
ExperimentResult stub_runner(const ExperimentConfig& cfg) {
  ExperimentResult r;
  r.combo = cfg.combo;
  r.design = cfg.design.label;
  r.end_cycle = cfg.seed;  // lets tests observe the seed the runner saw
  return r;
}

/// Bit-exact comparison of every metric the figures are built from.
void expect_identical(const SweepRun& a, const SweepRun& b) {
  ASSERT_TRUE(a.ok) << a.combo << "/" << a.design << ": " << a.error;
  ASSERT_TRUE(b.ok) << b.combo << "/" << b.design << ": " << b.error;
  EXPECT_EQ(a.combo, b.combo);
  EXPECT_EQ(a.design, b.design);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.attempts, b.attempts);
  const ExperimentResult& x = a.result;
  const ExperimentResult& y = b.result;
  EXPECT_EQ(x.cpu_cycles, y.cpu_cycles);
  EXPECT_EQ(x.gpu_cycles, y.gpu_cycles);
  EXPECT_EQ(x.end_cycle, y.end_cycle);
  EXPECT_EQ(x.cpu_instructions, y.cpu_instructions);
  EXPECT_EQ(x.gpu_instructions, y.gpu_instructions);
  EXPECT_EQ(x.cpu_ipc, y.cpu_ipc);  // exact ==, not near: bit-identical
  EXPECT_EQ(x.gpu_ipc, y.gpu_ipc);
  EXPECT_EQ(x.weighted_ipc, y.weighted_ipc);
  EXPECT_EQ(x.energy_pj, y.energy_pj);
  EXPECT_EQ(x.fast_bytes, y.fast_bytes);
  EXPECT_EQ(x.slow_bytes, y.slow_bytes);
  EXPECT_EQ(x.remap_cache_hit_rate, y.remap_cache_hit_rate);
  EXPECT_EQ(x.slow_amplification, y.slow_amplification);
  EXPECT_EQ(x.reconfigurations, y.reconfigurations);
  EXPECT_EQ(x.epochs, y.epochs);
  EXPECT_EQ(x.engine_steps, y.engine_steps);
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(x.fast_hit_rate[s], y.fast_hit_rate[s]);
    EXPECT_EQ(x.llc_hit_rate[s], y.llc_hit_rate[s]);
    EXPECT_EQ(x.read_latency_mean[s], y.read_latency_mean[s]);
    EXPECT_EQ(x.read_latency_p99[s], y.read_latency_p99[s]);
    EXPECT_EQ(x.hmstats[s].demand, y.hmstats[s].demand);
    EXPECT_EQ(x.hmstats[s].fast_hits, y.hmstats[s].fast_hits);
    EXPECT_EQ(x.hmstats[s].misses, y.hmstats[s].misses);
    EXPECT_EQ(x.hmstats[s].migrations, y.hmstats[s].migrations);
    EXPECT_EQ(x.hmstats[s].fast_swaps, y.hmstats[s].fast_swaps);
    EXPECT_EQ(x.hmstats[s].dirty_writebacks, y.hmstats[s].dirty_writebacks);
    EXPECT_EQ(x.hmstats[s].lazy_invalidations, y.hmstats[s].lazy_invalidations);
    EXPECT_EQ(x.hmstats[s].lazy_moves, y.hmstats[s].lazy_moves);
    EXPECT_EQ(x.hmstats[s].flush_invalidations, y.hmstats[s].flush_invalidations);
  }
}

TEST(Sweep, ParallelMatchesSerialBitForBit) {
  const std::vector<ExperimentConfig> cfgs = six_configs();

  SweepOptions serial;
  serial.jobs = 1;
  const std::vector<SweepRun> a = run_sweep(cfgs, serial);

  SweepOptions parallel;
  parallel.jobs = 4;
  const std::vector<SweepRun> b = run_sweep(cfgs, parallel);

  ASSERT_EQ(a.size(), cfgs.size());
  ASSERT_EQ(b.size(), cfgs.size());
  for (size_t i = 0; i < cfgs.size(); ++i) expect_identical(a[i], b[i]);
}

TEST(Sweep, ReconfiguringScheduleIsBitIdenticalAcrossJobCounts) {
  // The epoch-driven extension of the determinism contract: a scripted
  // reconfiguration schedule (lazy invalidations, lazy moves, setpart's
  // eager flush sweep all live) replayed under --jobs 4 must match the
  // serial run byte for byte, including the new lazy/flush counters.
  std::vector<ExperimentConfig> cfgs;
  for (DesignSpec design : {DesignSpec::hydrogen_full(), DesignSpec::waypart(),
                            DesignSpec::hydrogen_setpart()}) {
    ExperimentConfig cfg = quick("C1", std::move(design));
    cfg.reconfig_schedule = "shrink,bw+,grow,bw-";
    cfg.warmup_epochs = 2;
    cfgs.push_back(std::move(cfg));
  }

  SweepOptions serial;
  serial.jobs = 1;
  const std::vector<SweepRun> a = run_sweep(cfgs, serial);

  SweepOptions parallel;
  parallel.jobs = 4;
  const std::vector<SweepRun> b = run_sweep(cfgs, parallel);

  ASSERT_EQ(a.size(), cfgs.size());
  ASSERT_EQ(b.size(), cfgs.size());
  bool any_reconfig_traffic = false;
  for (size_t i = 0; i < cfgs.size(); ++i) {
    expect_identical(a[i], b[i]);
    for (int s = 0; s < 2; ++s) {
      any_reconfig_traffic |= a[i].result.hmstats[s].lazy_invalidations > 0 ||
                              a[i].result.hmstats[s].lazy_moves > 0 ||
                              a[i].result.hmstats[s].flush_invalidations > 0;
    }
  }
  // The schedule must actually have moved partitions — a vacuous pass (no
  // reconfiguration traffic anywhere) would mean the observer never ran.
  EXPECT_TRUE(any_reconfig_traffic);
}

TEST(Sweep, ResultsComeBackInSubmissionOrder) {
  const std::vector<ExperimentConfig> cfgs = six_configs();
  SweepOptions opts;
  opts.jobs = 4;
  const std::vector<SweepRun> runs = run_sweep(cfgs, opts, stub_runner);
  ASSERT_EQ(runs.size(), cfgs.size());
  for (size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(runs[i].combo, cfgs[i].combo);
    EXPECT_EQ(runs[i].design, cfgs[i].design.label);
    EXPECT_GE(runs[i].wall_seconds, 0.0);
  }
}

TEST(Sweep, SeedDerivationIsPureAndPerRun) {
  // Scheduling independence rests on the seed being a function of the config
  // alone: same inputs always give the same seed, distinct (combo, design)
  // pairs get distinct streams, and the base seed still matters.
  EXPECT_EQ(derive_seed(42, "C1", "baseline"), derive_seed(42, "C1", "baseline"));
  EXPECT_NE(derive_seed(42, "C1", "baseline"), derive_seed(42, "C2", "baseline"));
  EXPECT_NE(derive_seed(42, "C1", "baseline"), derive_seed(42, "C1", "hydrogen"));
  EXPECT_NE(derive_seed(42, "C1", "baseline"), derive_seed(43, "C1", "baseline"));

  const std::vector<ExperimentConfig> cfgs = six_configs();
  SweepOptions opts;
  opts.jobs = 2;
  const std::vector<SweepRun> runs = run_sweep(cfgs, opts, stub_runner);
  std::set<u64> seeds;
  for (size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(runs[i].seed,
              derive_seed(cfgs[i].seed, cfgs[i].combo, cfgs[i].design.label));
    EXPECT_EQ(runs[i].result.end_cycle, runs[i].seed);  // runner saw the derived seed
    seeds.insert(runs[i].seed);
  }
  EXPECT_EQ(seeds.size(), cfgs.size());  // all six streams distinct
}

TEST(Sweep, SeedDerivationCanBeDisabled) {
  std::vector<ExperimentConfig> cfgs = {quick("C1", DesignSpec::baseline())};
  cfgs[0].seed = 777;
  SweepOptions opts;
  opts.jobs = 1;
  opts.derive_seeds = false;
  const std::vector<SweepRun> runs = run_sweep(cfgs, opts, stub_runner);
  EXPECT_EQ(runs[0].seed, 777u);
  EXPECT_EQ(runs[0].result.end_cycle, 777u);
}

TEST(Sweep, FailedRunIsCapturedWithoutAbortingTheSweep) {
  const std::vector<ExperimentConfig> cfgs = six_configs();
  SweepOptions opts;
  opts.jobs = 3;
  // Inject a runner that fails for one combo: its slot must carry the error,
  // every other slot must still complete.
  const std::vector<SweepRun> runs =
      run_sweep(cfgs, opts, [](const ExperimentConfig& cfg) -> ExperimentResult {
        if (cfg.combo == "C3" && cfg.design.label == "profess") {
          throw std::runtime_error("injected failure");
        }
        ExperimentResult r;
        r.combo = cfg.combo;
        r.design = cfg.design.label;
        return r;
      });
  ASSERT_EQ(runs.size(), cfgs.size());
  int failed = 0;
  for (const SweepRun& run : runs) {
    if (!run.ok) {
      ++failed;
      EXPECT_EQ(run.combo, "C3");
      EXPECT_EQ(run.design, "profess");
      EXPECT_EQ(run.error, "injected failure");
    }
  }
  EXPECT_EQ(failed, 1);
}

TEST(Sweep, ResolveJobsPrefersExplicitThenEnvThenHardware) {
  EXPECT_EQ(resolve_jobs(3), 3u);

  ASSERT_EQ(setenv("H2_JOBS", "5", /*overwrite=*/1), 0);
  EXPECT_EQ(resolve_jobs(0), 5u);
  EXPECT_EQ(resolve_jobs(2), 2u);  // explicit wins over the env

  ASSERT_EQ(setenv("H2_JOBS", "garbage", 1), 0);
  EXPECT_GE(resolve_jobs(0), 1u);  // invalid env falls through to hardware

  ASSERT_EQ(unsetenv("H2_JOBS"), 0);
  const u32 hw = std::thread::hardware_concurrency();
  EXPECT_EQ(resolve_jobs(0), hw > 0 ? hw : 1u);
}

TEST(Sweep, HashStrIsStableAndSensitive) {
  EXPECT_EQ(hash_str("hydrogen"), hash_str("hydrogen"));
  EXPECT_NE(hash_str("hydrogen"), hash_str("hydrogen-dp"));
  EXPECT_NE(hash_str(""), hash_str("C1"));
}

TEST(Sweep, EmptySweepReturnsEmpty) {
  EXPECT_TRUE(run_sweep({}, SweepOptions{}).empty());
}

// ---------------------------------------------------------------------------
// Crash-safety: timeouts, retries and journal-based resume. All of these use
// injectable fake runners, so they exercise the sweep machinery in
// milliseconds without real simulations.
// ---------------------------------------------------------------------------

/// Sleeps in small slices, polling cooperative cancellation like the engine
/// loop does — the watchdog can only cut short a runner that polls.
void sleep_polling(double seconds) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < until) {
    cancel::poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  cancel::poll();
}

/// A runner whose results exercise the journal's lossless serialisation:
/// non-terminating binary fractions, tiny/huge magnitudes, a denormal.
ExperimentResult fancy_runner(const ExperimentConfig& cfg) {
  ExperimentResult r = stub_runner(cfg);
  const double salt = static_cast<double>(cfg.seed % 1024);
  r.cpu_cycles = cfg.seed * 3 + 1;
  r.cpu_ipc = 0.1 + 0.2 + salt;               // classic non-representable sum
  r.gpu_ipc = 1.0 / 3.0 + salt;
  r.weighted_ipc = 5e-324;                    // smallest positive denormal
  r.energy_pj = 6.02214076e23 + salt;
  r.slow_amplification = 1.0 + 1.0 / 7.0;
  r.fast_hit_rate[0] = salt / 1023.0;
  return r;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SweepTimeout, OverlongRunIsCancelledAndReported) {
  SweepOptions opts;
  opts.jobs = 1;
  opts.run_timeout_seconds = 0.05;
  const std::vector<SweepRun> runs =
      run_sweep({quick("C1", DesignSpec::baseline())}, opts,
                [](const ExperimentConfig& cfg) {
                  sleep_polling(10.0);  // far beyond the budget; cancel unwinds
                  return stub_runner(cfg);
                });
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_FALSE(runs[0].ok);
  EXPECT_EQ(runs[0].status, RunStatus::TimedOut);
  EXPECT_EQ(runs[0].attempts, 1u);
  EXPECT_NE(runs[0].error.find("exceeded run timeout"), std::string::npos);
}

TEST(SweepTimeout, TimedOutRunIsRetriedAndCanSucceed) {
  std::atomic<int> calls{0};
  SweepOptions opts;
  opts.jobs = 1;
  opts.run_timeout_seconds = 0.05;
  opts.max_retries = 1;
  opts.retry_backoff_ms = 1;
  const std::vector<SweepRun> runs =
      run_sweep({quick("C1", DesignSpec::baseline())}, opts,
                [&](const ExperimentConfig& cfg) {
                  if (calls.fetch_add(1) == 0) sleep_polling(10.0);
                  return stub_runner(cfg);
                });
  EXPECT_EQ(calls.load(), 2);
  EXPECT_TRUE(runs[0].ok);
  EXPECT_EQ(runs[0].status, RunStatus::Ok);
  EXPECT_EQ(runs[0].attempts, 2u);
}

TEST(SweepRetry, TransientFailureRetriesUntilSuccess) {
  std::atomic<int> calls{0};
  SweepOptions opts;
  opts.jobs = 1;
  opts.max_retries = 2;
  opts.retry_backoff_ms = 1;
  const std::vector<SweepRun> runs =
      run_sweep({quick("C1", DesignSpec::baseline())}, opts,
                [&](const ExperimentConfig& cfg) -> ExperimentResult {
                  if (calls.fetch_add(1) < 2) {
                    throw fault::TransientError("flaky backend");
                  }
                  return stub_runner(cfg);
                });
  EXPECT_EQ(calls.load(), 3);
  EXPECT_TRUE(runs[0].ok);
  EXPECT_EQ(runs[0].attempts, 3u);
}

TEST(SweepRetry, TransientRetriesExhaust) {
  SweepOptions opts;
  opts.jobs = 1;
  opts.max_retries = 2;
  opts.retry_backoff_ms = 1;
  const std::vector<SweepRun> runs =
      run_sweep({quick("C1", DesignSpec::baseline())}, opts,
                [](const ExperimentConfig&) -> ExperimentResult {
                  throw fault::TransientError("never recovers");
                });
  EXPECT_FALSE(runs[0].ok);
  EXPECT_EQ(runs[0].status, RunStatus::Failed);
  EXPECT_EQ(runs[0].attempts, 3u);  // 1 try + 2 retries, all consumed
  EXPECT_EQ(runs[0].error, "never recovers");
}

TEST(SweepRetry, PermanentFailureDoesNotRetry) {
  std::atomic<int> calls{0};
  SweepOptions opts;
  opts.jobs = 1;
  opts.max_retries = 3;
  opts.retry_backoff_ms = 1;
  const std::vector<SweepRun> runs =
      run_sweep({quick("C1", DesignSpec::baseline())}, opts,
                [&](const ExperimentConfig&) -> ExperimentResult {
                  calls.fetch_add(1);
                  throw std::runtime_error("deterministic bug");
                });
  EXPECT_EQ(calls.load(), 1);  // retrying a permanent failure would waste hours
  EXPECT_FALSE(runs[0].ok);
  EXPECT_EQ(runs[0].status, RunStatus::Failed);
  EXPECT_EQ(runs[0].attempts, 1u);
}

TEST(SweepFault, MalformedFaultSpecAbortsUpFront) {
  std::atomic<int> calls{0};
  SweepOptions opts;
  opts.jobs = 1;
  opts.fault_spec = "flip-remap";  // typo'd kind: fail before any run starts
  EXPECT_THROW((void)run_sweep({quick("C1", DesignSpec::baseline())}, opts,
                               [&](const ExperimentConfig& cfg) {
                                 calls.fetch_add(1);
                                 return stub_runner(cfg);
                               }),
               std::invalid_argument);
  EXPECT_EQ(calls.load(), 0);
}

TEST(SweepJournal, ResumeRestoresBitIdenticalResultsWithoutRerunning) {
  const std::string path = temp_path("h2_sweep_resume_test.journal");
  std::remove(path.c_str());
  const std::vector<ExperimentConfig> cfgs = six_configs();

  SweepOptions first;
  first.jobs = 4;
  first.journal_path = path;
  const std::vector<SweepRun> a = run_sweep(cfgs, first, fancy_runner);
  for (const SweepRun& r : a) ASSERT_TRUE(r.ok);

  SweepOptions second = first;
  second.resume = true;
  const std::vector<SweepRun> b =
      run_sweep(cfgs, second, [](const ExperimentConfig& cfg) {
        ADD_FAILURE() << "resume re-ran " << cfg.combo << "/" << cfg.design.label;
        return stub_runner(cfg);
      });

  ASSERT_EQ(b.size(), a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FALSE(a[i].from_journal);
    EXPECT_TRUE(b[i].from_journal);
    expect_identical(a[i], b[i]);  // exact ==, incl. the denormal/hex-float path
  }
  std::remove(path.c_str());
}

TEST(SweepJournal, FailedEntriesAreReRunOnResume) {
  const std::string path = temp_path("h2_sweep_rerun_test.journal");
  std::remove(path.c_str());
  const std::vector<ExperimentConfig> cfgs = six_configs();

  SweepOptions first;
  first.jobs = 2;
  first.journal_path = path;
  const std::vector<SweepRun> a =
      run_sweep(cfgs, first, [](const ExperimentConfig& cfg) -> ExperimentResult {
        if (cfg.combo == "C3" && cfg.design.label == "profess") {
          throw std::runtime_error("lost this one");
        }
        return fancy_runner(cfg);
      });

  std::atomic<int> reruns{0};
  SweepOptions second = first;
  second.resume = true;
  const std::vector<SweepRun> b =
      run_sweep(cfgs, second, [&](const ExperimentConfig& cfg) {
        reruns.fetch_add(1);
        return fancy_runner(cfg);
      });

  EXPECT_EQ(reruns.load(), 1);  // only the failed slot is re-run
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_TRUE(b[i].ok) << b[i].combo << "/" << b[i].design;
    const bool was_failed = !a[i].ok;
    EXPECT_EQ(b[i].from_journal, !was_failed);
  }
  std::remove(path.c_str());
}

TEST(SweepJournal, CorruptJournalLinesAreTolerated) {
  const std::string path = temp_path("h2_sweep_corrupt_test.journal");
  std::remove(path.c_str());
  const std::vector<ExperimentConfig> cfgs = six_configs();

  SweepOptions first;
  first.jobs = 2;
  first.journal_path = path;
  const std::vector<SweepRun> a = run_sweep(cfgs, first, fancy_runner);
  for (const SweepRun& r : a) ASSERT_TRUE(r.ok);

  {
    // A crash can leave a truncated tail; an editor can leave junk. Neither
    // may poison the readable records.
    std::ofstream f(path, std::ios::app);
    f << "not json at all\n";
    f << "\n";
    f << R"({"key":"0123456789abcdef","status":"ok","resu)";  // truncated, no \n
  }

  SweepOptions second = first;
  second.resume = true;
  const std::vector<SweepRun> b =
      run_sweep(cfgs, second, [](const ExperimentConfig& cfg) {
        ADD_FAILURE() << "corrupt lines invalidated the good records";
        return stub_runner(cfg);
      });
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_TRUE(b[i].from_journal);
    expect_identical(a[i], b[i]);
  }
  std::remove(path.c_str());
}

TEST(SweepJournal, ConfigKeyIsStableAndSensitive) {
  const ExperimentConfig base = quick("C1", DesignSpec::baseline());
  EXPECT_EQ(config_key(base), config_key(base));
  EXPECT_EQ(config_key(base), config_key(quick("C1", DesignSpec::baseline())));

  ExperimentConfig c = base;
  c.seed = base.seed + 1;
  EXPECT_NE(config_key(c), config_key(base));
  c = base;
  c.combo = "C2";
  EXPECT_NE(config_key(c), config_key(base));
  EXPECT_NE(config_key(quick("C1", DesignSpec::hydrogen_full())), config_key(base));
  c = base;
  c.cpu_target_instructions += 1;
  EXPECT_NE(config_key(c), config_key(base));
  c = base;
  c.reconfig_schedule = "shrink,grow";
  EXPECT_NE(config_key(c), config_key(base));
}

TEST(SweepJournal, EntrySerialisationRoundTripsDoublesExactly) {
  JournalEntry e;
  e.key = "0011223344556677";
  e.combo = "C5";
  e.design = R"(we"ird\label)";  // escaping must survive the round trip
  e.seed = ~0ull;
  e.status = "ok";
  e.attempts = 3;
  e.wall_seconds = 0.1 + 0.2;
  e.result.cpu_cycles = 123456789012345ull;
  e.result.cpu_ipc = 1.0 / 3.0;
  e.result.weighted_ipc = 5e-324;
  e.result.energy_pj = 1.7976931348623157e308;
  e.result.slow_amplification = -0.0;

  const std::optional<JournalEntry> back = parse_entry(serialize_entry(e));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->key, e.key);
  EXPECT_EQ(back->design, e.design);
  EXPECT_EQ(back->seed, e.seed);
  EXPECT_EQ(back->attempts, e.attempts);
  auto bits = [](double v) {
    u64 u;
    std::memcpy(&u, &v, sizeof u);
    return u;
  };
  EXPECT_EQ(bits(back->wall_seconds), bits(e.wall_seconds));
  EXPECT_EQ(back->result.cpu_cycles, e.result.cpu_cycles);
  EXPECT_EQ(bits(back->result.cpu_ipc), bits(e.result.cpu_ipc));
  EXPECT_EQ(bits(back->result.weighted_ipc), bits(e.result.weighted_ipc));
  EXPECT_EQ(bits(back->result.energy_pj), bits(e.result.energy_pj));
  EXPECT_EQ(bits(back->result.slow_amplification), bits(e.result.slow_amplification));

  EXPECT_FALSE(parse_entry("").has_value());
  EXPECT_FALSE(parse_entry("garbage").has_value());
  EXPECT_FALSE(parse_entry(R"({"combo":"C1"})").has_value());  // record w/o key
}

}  // namespace
}  // namespace h2
