// Decoupled set-partitioning (paper Section IV-F): ownership is a property
// of whole sets, page colouring steers each side into its own sets, and
// repartitioning moves whole sets (the variant's documented drawback).
#include <gtest/gtest.h>

#include <set>

#include "hybridmem/hybrid_memory.h"
#include "common/rng.h"
#include "hydrogen/setpart_policy.h"

namespace h2 {
namespace {

SetPartConfig no_token() {
  SetPartConfig c;
  c.token = false;
  return c;
}

TEST(SetPart, SetOwnershipFractionMatchesConfig) {
  SetPartPolicy p(no_token());
  p.bind(4, 4, 4096);
  u32 cpu = 0;
  for (u32 s = 0; s < 4096; ++s) cpu += p.set_owner(s) == Requestor::Cpu;
  EXPECT_NEAR(cpu / 4096.0, 0.75, 0.05);
}

TEST(SetPart, DedicatedChannelSetsAreAlwaysCpu) {
  SetPartPolicy p(no_token());
  p.bind(4, 4, 1024);
  u32 ded_channel = 5;  // find the dedicated channel via a CPU-only channel scan
  std::set<u32> gpu_channels;
  for (u32 s = 0; s < 1024; ++s) {
    if (p.set_owner(s) == Requestor::Gpu) gpu_channels.insert(p.channel_of_way(s, 0));
  }
  for (u32 ch = 0; ch < 4; ++ch) {
    if (!gpu_channels.count(ch)) ded_channel = ch;
  }
  ASSERT_LT(ded_channel, 4u) << "exactly one channel must be GPU-free at bw=0.25";
  for (u32 s = ded_channel; s < 1024; s += 4) {
    EXPECT_EQ(p.set_owner(s), Requestor::Cpu) << "set " << s;
  }
}

TEST(SetPart, RemapSendsEachSideToOwnSets) {
  SetPartPolicy p(no_token());
  p.bind(4, 4, 2048);
  for (u32 s = 0; s < 2048; s += 7) {
    const u32 cpu_set = p.remap_set(s, Requestor::Cpu);
    const u32 gpu_set = p.remap_set(s, Requestor::Gpu);
    EXPECT_EQ(p.set_owner(cpu_set), Requestor::Cpu);
    EXPECT_EQ(p.set_owner(gpu_set), Requestor::Gpu);
    // Identity when the natural set already belongs to the requestor.
    EXPECT_EQ(p.remap_set(cpu_set, Requestor::Cpu), cpu_set);
    EXPECT_EQ(p.remap_set(gpu_set, Requestor::Gpu), gpu_set);
  }
}

TEST(SetPart, WholeSetSharedByAllWays) {
  SetPartPolicy p(no_token());
  p.bind(4, 4, 512);
  for (u32 s = 0; s < 512; ++s) {
    const Requestor owner = p.set_owner(s);
    for (u32 w = 0; w < 4; ++w) {
      EXPECT_EQ(p.way_owner(s, w), owner);
      EXPECT_TRUE(p.way_allowed(s, w, owner));
      EXPECT_FALSE(p.way_allowed(s, w, owner == Requestor::Cpu ? Requestor::Gpu
                                                               : Requestor::Cpu));
      // Coupled channel mapping: all ways of a set on the set's channel.
      EXPECT_EQ(p.channel_of_way(s, w), s % 4);
    }
  }
}

TEST(SetPart, RepartitionIsConsistent) {
  // Raising the CPU fraction only converts GPU sets to CPU sets, never the
  // reverse (threshold-hash consistency, analogous to Fig. 3(c)).
  SetPartPolicy p(no_token());
  p.bind(4, 4, 2048);
  std::set<u32> cpu_before;
  for (u32 s = 0; s < 2048; ++s) {
    if (p.set_owner(s) == Requestor::Cpu) cpu_before.insert(s);
  }
  EXPECT_TRUE(p.set_partition(0.85));
  for (u32 s : cpu_before) EXPECT_EQ(p.set_owner(s), Requestor::Cpu);
  u32 cpu_after = 0;
  for (u32 s = 0; s < 2048; ++s) cpu_after += p.set_owner(s) == Requestor::Cpu;
  EXPECT_GT(cpu_after, cpu_before.size());
}

TEST(SetPart, EndToEndIsolationInHybridMemory) {
  MemorySystem mem(MemSystemConfig::table1_default());
  SetPartPolicy pol(no_token());
  HybridMemConfig cfg;
  cfg.fast_capacity_bytes = 64 * 1024;
  cfg.slow_capacity_bytes = 1 << 20;
  HybridMemory hm(cfg, &mem, &pol);

  Rng rng(3);
  Cycle t = 0;
  for (int i = 0; i < 4000; ++i) {
    const Requestor cls = rng.chance(0.5) ? Requestor::Cpu : Requestor::Gpu;
    t = hm.access(t, cls, rng.next_below(cfg.slow_capacity_bytes / 64) * 64,
                  rng.chance(0.3)) + 1;
  }
  // Every resident block must live in a set owned by the side that uses it.
  for (u32 s = 0; s < hm.num_sets(); ++s) {
    for (u32 w = 0; w < hm.assoc(); ++w) {
      const RemapWay& rw = hm.table().way(s, w);
      if (rw.valid) {
        EXPECT_EQ(rw.owner_cpu, pol.set_owner(s) == Requestor::Cpu)
            << "set " << s << " way " << w;
      }
    }
  }
  // Both sides made progress.
  EXPECT_GT(hm.stats(Requestor::Cpu).fast_hits, 0u);
  EXPECT_GT(hm.stats(Requestor::Gpu).fast_hits, 0u);
}

TEST(SetPart, TokensThrottleGpuMigrations) {
  MemorySystem mem(MemSystemConfig::table1_default());
  SetPartConfig cfg;
  cfg.token = true;
  cfg.tok_frac = 0.1;
  cfg.faucet_period = 10'000;
  SetPartPolicy pol(cfg);
  HybridMemConfig hcfg;
  hcfg.fast_capacity_bytes = 64 * 1024;
  hcfg.slow_capacity_bytes = 1 << 20;
  HybridMemory hm(hcfg, &mem, &pol);
  // Prime the miss-rate estimate.
  EpochFeedback fb;
  fb.epoch_cycles = 10'000;
  fb.gpu_misses = 10'000;
  pol.on_epoch(fb);
  // One period of GPU streaming.
  Rng rng(5);
  Cycle t = 10'000;
  for (int i = 0; i < 2000; ++i) {
    hm.access(t, Requestor::Gpu, rng.next_below(hcfg.slow_capacity_bytes / 256) * 256,
              false);
    t += 4;
  }
  EXPECT_LE(hm.stats(Requestor::Gpu).migrations, 0.1 * 10'000 + 2);
}

}  // namespace
}  // namespace h2
