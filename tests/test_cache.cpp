#include "cache/cache.h"
#include "cache/hierarchy.h"

#include <gtest/gtest.h>

namespace h2 {
namespace {

CacheConfig small_cache() {
  return CacheConfig{.name = "t", .size_bytes = 4096, .ways = 4, .line_bytes = 64, .latency = 3};
}

TEST(Cache, MissThenHit) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x13F, false).hit);   // same line
  EXPECT_FALSE(c.access(0x140, false).hit);  // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction) {
  Cache c(small_cache());  // 16 sets, 4 ways
  const u32 sets = c.config().num_sets();
  // Fill one set with 4 distinct tags.
  for (u64 t = 0; t < 4; ++t) c.access(t * sets * 64, false);
  // Touch tag 0 so tag 1 becomes LRU.
  c.access(0, false);
  // Insert a 5th tag; tag 1 must be the victim.
  const auto r = c.access(4 * sets * 64, false);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.victim_valid);
  EXPECT_EQ(r.victim_addr, 1 * sets * 64);
  EXPECT_TRUE(c.access(0, false).hit);        // still resident
  EXPECT_FALSE(c.access(1 * sets * 64, false).hit);  // evicted
}

TEST(Cache, DirtyVictimReported) {
  Cache c(small_cache());
  const u32 sets = c.config().num_sets();
  c.access(0, true);  // dirty
  for (u64 t = 1; t < 5; ++t) c.access(t * sets * 64, false);
  // tag 0 was LRU and dirty
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, InvalidateReturnsDirtiness) {
  Cache c(small_cache());
  c.access(0x200, true);
  EXPECT_TRUE(c.invalidate(0x200));
  EXPECT_FALSE(c.probe(0x200));
  c.access(0x200, false);
  EXPECT_FALSE(c.invalidate(0x200));
  EXPECT_FALSE(c.invalidate(0x999000));  // absent
}

TEST(Cache, ProbeDoesNotAllocate) {
  Cache c(small_cache());
  EXPECT_FALSE(c.probe(0x300));
  EXPECT_FALSE(c.access(0x300, false).hit);  // still a miss
}

TEST(Cache, HitRate) {
  Cache c(small_cache());
  c.access(0, false);
  c.access(0, false);
  c.access(0, false);
  c.access(64, false);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.5);
}

TEST(Hierarchy, ScaledPreservesGeometry) {
  const HierarchyConfig base;
  const HierarchyConfig s = base.scaled(8);
  EXPECT_EQ(s.llc.size_bytes, base.llc.size_bytes / 8);
  EXPECT_EQ(s.llc.ways, base.llc.ways);
  EXPECT_EQ(s.cpu_l1.line_bytes, 64u);
}

TEST(Hierarchy, CpuPathFiltersThroughLevels) {
  CacheHierarchy h(HierarchyConfig{}.scaled(16));
  // First touch: miss everywhere -> memory needed, latency = L1+L2+LLC.
  const auto r1 = h.cpu_access(0, 0x10000, false);
  EXPECT_TRUE(r1.memory_needed);
  const u32 full = HierarchyConfig{}.cpu_l1.latency + HierarchyConfig{}.cpu_l2.latency +
                   HierarchyConfig{}.llc.latency;
  EXPECT_EQ(r1.latency, full);
  // Second touch: L1 hit.
  const auto r2 = h.cpu_access(0, 0x10000, false);
  EXPECT_FALSE(r2.memory_needed);
  EXPECT_EQ(r2.latency, HierarchyConfig{}.cpu_l1.latency);
}

TEST(Hierarchy, PrivateCachesAreIsolatedPerCore) {
  CacheHierarchy h(HierarchyConfig{}.scaled(16));
  h.cpu_access(0, 0x20000, false);
  // Another core touching the same line misses its private levels but hits
  // the shared LLC.
  const auto r = h.cpu_access(1, 0x20000, false);
  EXPECT_FALSE(r.memory_needed);
  EXPECT_GT(r.latency, HierarchyConfig{}.cpu_l1.latency);
}

TEST(Hierarchy, GpuPathSkipsL2) {
  CacheHierarchy h(HierarchyConfig{}.scaled(16));
  const auto r1 = h.gpu_access(0, 0x30000, false);
  EXPECT_TRUE(r1.memory_needed);
  EXPECT_EQ(r1.latency, HierarchyConfig{}.gpu_l1.latency + HierarchyConfig{}.llc.latency);
  const auto r2 = h.gpu_access(0, 0x30000, false);
  EXPECT_EQ(r2.latency, HierarchyConfig{}.gpu_l1.latency);
}

TEST(Hierarchy, DirtyLlcVictimTriggersWriteback) {
  HierarchyConfig cfg = HierarchyConfig{}.scaled(16);
  // Shrink the LLC so evictions are easy to force.
  cfg.llc.size_bytes = 16 * 1024;
  cfg.cpu_l1.size_bytes = 1024;
  cfg.cpu_l2.size_bytes = 2048;
  CacheHierarchy h(cfg);
  h.cpu_access(0, 0, true);  // dirty line in LLC path
  bool saw_writeback = false;
  // Stream enough lines through the same LLC set to evict line 0.
  const u32 llc_sets = cfg.llc.num_sets();
  for (u64 i = 1; i <= cfg.llc.ways + 4; ++i) {
    const auto r = h.cpu_access(0, i * llc_sets * 64, true);
    if (r.writeback && r.writeback_addr == 0) saw_writeback = true;
  }
  EXPECT_TRUE(saw_writeback);
}

TEST(Hierarchy, LlcHitRateSplitByRequestor) {
  CacheHierarchy h(HierarchyConfig{}.scaled(16));
  h.cpu_access(0, 0x40000, false);
  h.cpu_access(1, 0x40000, false);  // LLC hit for CPU
  h.gpu_access(0, 0x50000, false);  // LLC miss for GPU
  EXPECT_DOUBLE_EQ(h.llc_hit_rate(Requestor::Cpu), 0.5);
  EXPECT_DOUBLE_EQ(h.llc_hit_rate(Requestor::Gpu), 0.0);
}

}  // namespace
}  // namespace h2
