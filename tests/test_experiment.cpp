#include "harness/experiment.h"

#include <gtest/gtest.h>

namespace h2 {
namespace {

/// Small, fast experiment configuration for tests.
ExperimentConfig quick(const std::string& combo, DesignSpec design) {
  ExperimentConfig cfg;
  cfg.combo = combo;
  cfg.design = std::move(design);
  cfg.sys = SystemConfig::table1(/*scale=*/16);
  cfg.cpu_target_instructions = 150'000;
  cfg.gpu_target_instructions = 120'000;
  cfg.epoch_cycles = 50'000;
  cfg.max_cycles = 60'000'000;
  return cfg;
}

TEST(Experiment, BaselineRunsToCompletion) {
  const ExperimentResult r = run_experiment(quick("C1", DesignSpec::baseline()));
  EXPECT_TRUE(r.cpu_finished);
  EXPECT_TRUE(r.gpu_finished);
  EXPECT_GT(r.cpu_cycles, 0u);
  EXPECT_GT(r.gpu_cycles, 0u);
  EXPECT_GT(r.cpu_ipc, 0.0);
  EXPECT_GT(r.gpu_ipc, 0.0);
  EXPECT_GT(r.energy_pj, 0.0);
  EXPECT_GT(r.slow_bytes, 0u);
  EXPECT_GT(r.epochs, 0u);
}

TEST(Experiment, DeterministicAcrossRuns) {
  const ExperimentResult a = run_experiment(quick("C3", DesignSpec::baseline()));
  const ExperimentResult b = run_experiment(quick("C3", DesignSpec::baseline()));
  EXPECT_EQ(a.cpu_cycles, b.cpu_cycles);
  EXPECT_EQ(a.gpu_cycles, b.gpu_cycles);
  EXPECT_EQ(a.slow_bytes, b.slow_bytes);
  EXPECT_DOUBLE_EQ(a.energy_pj, b.energy_pj);
}

TEST(Experiment, SeedStability) {
  // Guards the sweep runner's per-run seed derivation: whatever seed a config
  // carries, two runs of that exact config must agree on every metric.
  ExperimentConfig cfg = quick("C2", DesignSpec::hydrogen_full());
  cfg.seed = 0xfeedface;
  const ExperimentResult a = run_experiment(cfg);
  const ExperimentResult b = run_experiment(cfg);
  EXPECT_EQ(a.cpu_cycles, b.cpu_cycles);
  EXPECT_EQ(a.gpu_cycles, b.gpu_cycles);
  EXPECT_EQ(a.end_cycle, b.end_cycle);
  EXPECT_EQ(a.cpu_instructions, b.cpu_instructions);
  EXPECT_EQ(a.gpu_instructions, b.gpu_instructions);
  EXPECT_EQ(a.weighted_ipc, b.weighted_ipc);  // exact ==: bit-identical
  EXPECT_EQ(a.energy_pj, b.energy_pj);
  EXPECT_EQ(a.hmstats[0].migrations, b.hmstats[0].migrations);
  EXPECT_EQ(a.hmstats[1].migrations, b.hmstats[1].migrations);
  EXPECT_EQ(a.reconfigurations, b.reconfigurations);

  // A different seed must actually reach the workload generators.
  ExperimentConfig other = cfg;
  other.seed = 0xdeadbeef;
  const ExperimentResult c = run_experiment(other);
  EXPECT_TRUE(a.cpu_cycles != c.cpu_cycles || a.gpu_cycles != c.gpu_cycles ||
              a.energy_pj != c.energy_pj);
}

TEST(Experiment, SoloRunsOnlyExerciseOneSide) {
  ExperimentConfig cfg = quick("C1", DesignSpec::baseline());
  cfg.cpu_only = true;
  const ExperimentResult cpu = run_experiment(cfg);
  EXPECT_GT(cpu.cpu_cycles, 0u);
  EXPECT_EQ(cpu.gpu_cycles, 0u);
  EXPECT_EQ(cpu.gpu_instructions, 0u);

  ExperimentConfig gcfg = quick("C1", DesignSpec::baseline());
  gcfg.gpu_only = true;
  const ExperimentResult gpu = run_experiment(gcfg);
  EXPECT_EQ(gpu.cpu_cycles, 0u);
  EXPECT_GT(gpu.gpu_cycles, 0u);
}

TEST(Experiment, ContentionSlowsBothSides) {
  // Fig. 2(a): running together is slower than running alone.
  ExperimentConfig together = quick("C1", DesignSpec::baseline());
  ExperimentConfig cpu_solo = together;
  cpu_solo.cpu_only = true;
  ExperimentConfig gpu_solo = together;
  gpu_solo.gpu_only = true;
  const ExperimentResult rt = run_experiment(together);
  const ExperimentResult rc = run_experiment(cpu_solo);
  const ExperimentResult rg = run_experiment(gpu_solo);
  // The CPU suffers clearly; the GPU (latency-tolerant) may be unaffected at
  // this small test scale but must never speed up from contention.
  EXPECT_GT(side_slowdown(rc, rt, Requestor::Cpu), 1.05);
  EXPECT_GE(side_slowdown(rg, rt, Requestor::Gpu), 1.0);
}

TEST(Experiment, AllDesignsRun) {
  for (const DesignSpec& d :
       {DesignSpec::baseline(), DesignSpec::waypart(), DesignSpec::hashcache(),
        DesignSpec::profess(), DesignSpec::hydrogen_dp(),
        DesignSpec::hydrogen_dp_token(), DesignSpec::hydrogen_full()}) {
    const ExperimentResult r = run_experiment(quick("C2", d));
    EXPECT_TRUE(r.cpu_finished) << d.label;
    EXPECT_TRUE(r.gpu_finished) << d.label;
  }
}

TEST(Experiment, WeightedSpeedupIdentityAndOrdering) {
  const ExperimentResult base = run_experiment(quick("C1", DesignSpec::baseline()));
  EXPECT_DOUBLE_EQ(weighted_speedup(base, base), 1.0);
  // A result with half the CPU cycles at equal GPU cycles must win.
  ExperimentResult faster = base;
  faster.cpu_cycles = base.cpu_cycles / 2;
  EXPECT_GT(weighted_speedup(base, faster), 1.0);
  EXPECT_LT(weighted_speedup(faster, base), 1.0);
}

TEST(Experiment, WeightsShiftTheObjective) {
  ExperimentResult base;
  base.cpu_cycles = 1000;
  base.gpu_cycles = 1000;
  ExperimentResult x;
  x.cpu_cycles = 500;   // CPU 2x faster
  x.gpu_cycles = 2000;  // GPU 2x slower
  EXPECT_GT(weighted_speedup(base, x, 12, 1), 1.5);  // CPU-heavy weights
  EXPECT_LT(weighted_speedup(base, x, 1, 12), 0.8);  // GPU-heavy weights
}

TEST(Experiment, FlatModeRuns) {
  ExperimentConfig cfg = quick("C4", DesignSpec::hydrogen_full());
  cfg.mode = HybridMode::Flat;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.cpu_finished);
  EXPECT_TRUE(r.gpu_finished);
}

TEST(Experiment, HBM3SpeedsUpTheBaseline) {
  ExperimentConfig hbm2 = quick("C1", DesignSpec::baseline());
  ExperimentConfig hbm3 = hbm2;
  hbm3.sys = SystemConfig::table1_hbm3(/*scale=*/16);
  const ExperimentResult r2 = run_experiment(hbm2);
  const ExperimentResult r3 = run_experiment(hbm3);
  // HBM3 never hurts; whether it helps depends on how fast-bandwidth-bound
  // the mix is (paper Fig. 5(b) reports shrinking, not vanishing, gains).
  EXPECT_GE(weighted_speedup(r2, r3), 0.97);
}

TEST(Experiment, HydrogenReportsSearchState) {
  const ExperimentResult r = run_experiment(quick("C5", DesignSpec::hydrogen_full()));
  EXPECT_GE(r.final_point.cap, 1u);
  EXPECT_LE(r.final_point.cap, 3u);
  EXPECT_GE(r.final_point.bw, 1u);
  EXPECT_LE(r.final_point.bw, 3u);
}

TEST(Experiment, HashcacheUsesDirectMappedNativeGeometry) {
  const ExperimentResult r = run_experiment(quick("C1", DesignSpec::hashcache()));
  // Direct-mapped organisation has lower hit rates than 4-way designs
  // (the paper's main criticism of HAShCache).
  const ExperimentResult b = run_experiment(quick("C1", DesignSpec::baseline()));
  EXPECT_LT(r.fast_hit_rate[0] + r.fast_hit_rate[1],
            b.fast_hit_rate[0] + b.fast_hit_rate[1] + 0.05);
}

}  // namespace
}  // namespace h2
