// ShardRouter properties (harness/shard_router.h): the partition contract
// the sharded harness and the sharded oracle both lean on —
//   - totality: every region / page maps to exactly one shard in [0, N);
//   - exact headroom: per-shard loads are floor(R/N) or floor(R/N)+1, which
//     bounds the max/min load ratio by 2.0 whenever R >= N;
//   - consistency: the assignment is a pure function of (salt, R, N), and
//     invalidate() + lazy rebuild reproduces it bit for bit.
#include "harness/shard_router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace h2 {
namespace {

TEST(ShardRouter, EveryRegionMapsToExactlyOneShard) {
  // shard_of_region returns one value per region; totality means it is in
  // range for every region, and summing the loads recovers every region
  // exactly once (no region is dropped or double-assigned).
  Rng rng(20260807);
  for (int trial = 0; trial < 40; ++trial) {
    const u32 n = 1 + static_cast<u32>(rng.next_below(8));
    const u32 regions = n + static_cast<u32>(rng.next_below(64));
    ShardRouter router(n, regions, rng.next());
    std::vector<u32> counted(n, 0);
    for (u32 r = 0; r < regions; ++r) {
      const u32 s = router.shard_of_region(r);
      ASSERT_LT(s, n) << "n=" << n << " regions=" << regions << " r=" << r;
      counted[s]++;
    }
    const auto loads = router.region_loads();
    ASSERT_EQ(loads.size(), n);
    EXPECT_EQ(loads, counted);
    u32 total = 0;
    for (u32 l : loads) total += l;
    EXPECT_EQ(total, regions);
  }
}

TEST(ShardRouter, EveryPageMapsToExactlyOneShard) {
  // Address routing: bind a span, walk every page, and require the page ->
  // shard map to be total, in range, and consistent with the region map
  // (pages of the same region never split across shards).
  ShardRouter router(4, 32, /*salt=*/0x5eedull);
  const u64 span = 32 * 64 * ShardRouter::kPageBytes + 123;  // ragged tail
  router.bind_span(span);
  const u64 pages = (span + ShardRouter::kPageBytes - 1) / ShardRouter::kPageBytes;
  for (u64 page = 0; page < pages; ++page) {
    const u32 s = router.shard_of_page(page);
    ASSERT_LT(s, 4u) << "page=" << page;
    const u64 region =
        std::min<u64>(page * ShardRouter::kPageBytes / router.region_bytes(),
                      router.num_regions() - 1);
    ASSERT_EQ(s, router.shard_of_region(static_cast<u32>(region)))
        << "page=" << page;
    ASSERT_EQ(s, router.shard_of_addr(page * ShardRouter::kPageBytes));
    ASSERT_EQ(s, router.shard_of_addr(page * ShardRouter::kPageBytes +
                                      ShardRouter::kPageBytes - 1));
  }
}

TEST(ShardRouter, LoadsHaveExactHeadroom) {
  // The assignment pass promises loads in {floor(R/N), floor(R/N)+1} — a
  // stronger property than the 2.0 ratio bound, pinned directly.
  Rng rng(987654);
  for (int trial = 0; trial < 60; ++trial) {
    const u32 n = 2 + static_cast<u32>(rng.next_below(7));
    const u32 regions = n * (1 + static_cast<u32>(rng.next_below(40)));
    ShardRouter router(n, regions, rng.next());
    const auto loads = router.region_loads();
    const u32 floor_load = regions / n;
    for (u32 i = 0; i < n; ++i) {
      EXPECT_GE(loads[i], floor_load) << "n=" << n << " R=" << regions;
      EXPECT_LE(loads[i], floor_load + 1) << "n=" << n << " R=" << regions;
    }
  }
}

TEST(ShardRouter, LoadRatioBoundedByTwo) {
  // The ISSUE-level contract (a consequence of exact headroom when R >= N):
  // most-loaded / least-loaded <= 2.0.
  Rng rng(13579);
  for (int trial = 0; trial < 40; ++trial) {
    const u32 n = 2 + static_cast<u32>(rng.next_below(7));
    const u32 regions = n + static_cast<u32>(rng.next_below(96));
    ShardRouter router(n, regions, rng.next());
    const auto loads = router.region_loads();
    const u32 max_load = *std::max_element(loads.begin(), loads.end());
    const u32 min_load = *std::min_element(loads.begin(), loads.end());
    ASSERT_GT(min_load, 0u) << "starved shard: n=" << n << " R=" << regions;
    EXPECT_LE(max_load, 2 * min_load) << "n=" << n << " R=" << regions;
  }
}

TEST(ShardRouter, InvalidateRebuildsTheSameAssignment) {
  // invalidate() drops the memoised HRW rank rows and the assignment; both
  // rebuild lazily and must land on the identical partition (the sharded
  // reconfigure paths rely on this instead of reconstructing the router).
  ShardRouter router(3, 25, /*salt=*/0xabcdefull);
  router.bind_span(25 * ShardRouter::kPageBytes * 7);
  std::vector<u32> before;
  for (u32 r = 0; r < 25; ++r) before.push_back(router.shard_of_region(r));
  router.invalidate();
  for (u32 r = 0; r < 25; ++r) {
    EXPECT_EQ(router.shard_of_region(r), before[r]) << "r=" << r;
  }
  // Address routing survives invalidation too (bind_span is not dropped).
  EXPECT_EQ(router.shard_of_addr(0), before[0]);
}

TEST(ShardRouter, AssignmentIsAPureFunctionOfSaltAndShape) {
  ShardRouter a(4, 31, /*salt=*/42), b(4, 31, /*salt=*/42);
  for (u32 r = 0; r < 31; ++r) {
    EXPECT_EQ(a.shard_of_region(r), b.shard_of_region(r)) << "r=" << r;
  }
  // A different salt must actually reach the rendezvous scores.
  ShardRouter c(4, 31, /*salt=*/43);
  u32 differs = 0;
  for (u32 r = 0; r < 31; ++r) {
    differs += a.shard_of_region(r) != c.shard_of_region(r) ? 1 : 0;
  }
  EXPECT_GT(differs, 0u);
}

TEST(ShardRouter, SingleShardOwnsEverything) {
  ShardRouter router(1, 16);
  router.bind_span(1 << 20);
  for (u32 r = 0; r < 16; ++r) EXPECT_EQ(router.shard_of_region(r), 0u);
  EXPECT_EQ(router.shard_of_addr(12345), 0u);
}

}  // namespace
}  // namespace h2
