// The checkpoint bit-identity contract (harness/checkpoint.h):
//   - writing checkpoints must not perturb a run at all;
//   - a run restored from a mid-flight checkpoint finishes with exactly the
//     results of the uninterrupted run;
//   - every single-byte mutation and every truncation of a checkpoint file
//     is detected at restore (the ckpt_io FNV-1a / framing guarantee);
//   - a checkpoint never restores into a different configuration;
// plus the journal-side crash regression: load_journal() tolerates a
// crash-truncated trailing partial line.
#include "harness/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/ckpt_io.h"
#include "common/rng.h"
#include "harness/experiment.h"
#include "harness/journal.h"
#include "harness/sim_system.h"

namespace h2 {
namespace {

/// Small, fast experiment (mirrors test_experiment.cpp): crosses enough
/// epoch boundaries for a genuinely mid-flight snapshot in well under a
/// second.
ExperimentConfig quick(DesignSpec design) {
  ExperimentConfig cfg;
  cfg.combo = "C1";
  cfg.design = std::move(design);
  cfg.sys = SystemConfig::table1(/*scale=*/16);
  cfg.cpu_target_instructions = 150'000;
  cfg.gpu_target_instructions = 120'000;
  cfg.epoch_cycles = 50'000;
  cfg.max_cycles = 60'000'000;
  return cfg;
}

/// Lossless render of a full result via the journal serialiser (u64 decimal,
/// doubles as hex-floats), so comparing two runs compares every field bit
/// for bit.
std::string dump(const ExperimentResult& r) {
  JournalEntry e;
  e.key = "k";
  e.combo = r.combo;
  e.design = r.design;
  e.status = "ok";
  e.result = r;
  return serialize_entry(e);
}

struct TempPath {
  explicit TempPath(const std::string& name)
      : path(::testing::TempDir() + name) {
    std::remove(path.c_str());
  }
  ~TempPath() { std::remove(path.c_str()); }
  const std::string path;
};

TEST(CkptIo, PrimitivesRoundTrip) {
  ckpt::CkptWriter w;
  w.begin_section("prims");
  w.put_u8(0xab);
  w.put_u32(0xdeadbeefu);
  w.put_u64(0x0123456789abcdefull);
  w.put_i32(-42);
  w.put_i64(-1234567890123ll);
  w.put_bool(true);
  w.put_f64(0x1.fffffffffffffp+1023);
  w.put_str("hello\0world");
  w.put_pod_vec(std::vector<u32>{1, 2, 3});
  w.put_bool_vec(std::vector<bool>{true, false, true});
  w.end_section();

  ckpt::CkptReader r(w.finish(), "<memory>");
  r.enter_section("prims");
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.get_i32(), -42);
  EXPECT_EQ(r.get_i64(), -1234567890123ll);
  EXPECT_TRUE(r.get_bool());
  EXPECT_EQ(r.get_f64(), 0x1.fffffffffffffp+1023);
  EXPECT_EQ(r.get_str(), std::string("hello\0world"));
  std::vector<u32> v(3);
  r.get_pod_vec_exact(v);
  EXPECT_EQ(v, (std::vector<u32>{1, 2, 3}));
  std::vector<bool> b(3);
  r.get_bool_vec(b);
  EXPECT_EQ(b, (std::vector<bool>{true, false, true}));
  r.leave_section();
  r.finish();
}

/// Exhaustive single-byte fuzz on a small container: flipping any one bit of
/// any one byte must make the reader throw — payload flips fail the FNV-1a
/// checksum (xor/odd-multiply steps are bijections, so a one-byte change can
/// never collide), framing flips fail the magic/version/bounds/name checks.
TEST(CkptIo, EverySingleByteFlipIsDetected) {
  ckpt::CkptWriter w;
  w.begin_section("alpha");
  w.put_u64(0x1122334455667788ull);
  w.put_str("payload bytes");
  w.end_section();
  w.begin_section("beta");
  w.put_pod_vec(std::vector<u64>{5, 6, 7, 8});
  w.end_section();
  const std::string good = w.finish();

  // The restore-path oracle: parse the frame AND enter every section by its
  // expected name, exactly as load_checkpoint does. Section names are framing
  // (not checksummed), so a name flip is caught here, not in the constructor.
  const auto walk = [](const std::string& bytes) {
    ckpt::CkptReader r(bytes, "<memory>");
    for (const char* name : {"alpha", "beta"}) {
      r.enter_section(name);
      std::vector<char> sink(r.remaining());
      r.get_bytes(sink.data(), sink.size());
      r.leave_section();
    }
    r.finish();
  };
  EXPECT_NO_THROW(walk(good));

  Rng rng(0xf022);
  for (size_t pos = 0; pos < good.size(); ++pos) {
    std::string bad = good;
    const unsigned bit = static_cast<unsigned>(rng.next_below(8));
    bad[pos] = static_cast<char>(static_cast<unsigned char>(bad[pos]) ^ (1u << bit));
    EXPECT_THROW(walk(bad), ckpt::CheckpointError)
        << "flip of bit " << bit << " at byte " << pos << " went undetected";
  }
}

/// Every proper prefix of a container must be rejected (crash-truncated
/// checkpoint file).
TEST(CkptIo, EveryTruncationIsDetected) {
  ckpt::CkptWriter w;
  w.begin_section("only");
  w.put_str("some payload so the file has framing, data and a checksum");
  w.end_section();
  const std::string good = w.finish();

  for (size_t len = 0; len < good.size(); ++len) {
    EXPECT_THROW(ckpt::CkptReader(good.substr(0, len), "<memory>"),
                 ckpt::CheckpointError)
        << "truncation to " << len << " of " << good.size() << " went undetected";
  }
}

TEST(Checkpoint, WritingCheckpointsDoesNotPerturbTheRun) {
  const ExperimentConfig base = quick(DesignSpec::hydrogen_full());
  const ExperimentResult plain = run_experiment(base);

  TempPath ckpt("test_checkpoint_pure.ckpt");
  ExperimentConfig with = base;
  with.checkpoint_path = ckpt.path;
  EXPECT_EQ(dump(run_experiment(with)), dump(plain));
}

TEST(Checkpoint, MidRunRestoreIsBitIdentical) {
  const ExperimentConfig base = quick(DesignSpec::hydrogen_full());
  const ExperimentResult plain = run_experiment(base);
  ASSERT_GE(plain.epochs, 4u) << "config too small to snapshot mid-run";

  // Stride so exactly one snapshot lands strictly inside the run: the sole
  // multiple of (epochs/2 + 1) below the epoch count.
  TempPath ckpt("test_checkpoint_midrun.ckpt");
  ExperimentConfig with = base;
  with.checkpoint_path = ckpt.path;
  with.checkpoint_every = static_cast<u32>(plain.epochs / 2 + 1);
  EXPECT_EQ(dump(run_experiment(with)), dump(plain));

  const auto info = peek_checkpoint(ckpt.path);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->epoch, with.checkpoint_every);
  EXPECT_LT(info->epoch, plain.epochs);

  ExperimentConfig resumed = base;
  resumed.restore_path = ckpt.path;
  EXPECT_EQ(dump(run_experiment(resumed)), dump(plain));
}

TEST(Checkpoint, EveryDesignRestoresBitIdentically) {
  const DesignSpec designs[] = {
      DesignSpec::baseline(),     DesignSpec::waypart(),
      DesignSpec::hashcache(),    DesignSpec::profess(),
      DesignSpec::hydrogen_full(), DesignSpec::hydrogen_setpart()};
  for (const DesignSpec& d : designs) {
    const ExperimentConfig base = quick(d);
    const ExperimentResult plain = run_experiment(base);
    ASSERT_GE(plain.epochs, 4u) << base.design.label;

    TempPath ckpt("test_checkpoint_design.ckpt");
    ExperimentConfig with = base;
    with.checkpoint_path = ckpt.path;
    with.checkpoint_every = static_cast<u32>(plain.epochs / 2 + 1);
    (void)run_experiment(with);

    ExperimentConfig resumed = base;
    resumed.restore_path = ckpt.path;
    EXPECT_EQ(dump(run_experiment(resumed)), dump(plain)) << base.design.label;
  }
}

TEST(Checkpoint, RefusesARestoreIntoADifferentConfig) {
  TempPath ckpt("test_checkpoint_mismatch.ckpt");
  ExperimentConfig writer = quick(DesignSpec::hydrogen_full());
  writer.checkpoint_path = ckpt.path;
  (void)run_experiment(writer);

  ExperimentConfig other = quick(DesignSpec::baseline());
  other.restore_path = ckpt.path;
  try {
    (void)run_experiment(other);
    FAIL() << "restore into a different config was accepted";
  } catch (const ckpt::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("config mismatch"), std::string::npos)
        << e.what();
  }
}

/// Seeded one-byte fuzz over a *real* full-simulator checkpoint: the file is
/// two orders of magnitude larger than the unit-sized container above, so
/// sample positions instead of sweeping all of them. Every sampled mutation
/// must be rejected by the restore path.
TEST(Checkpoint, FuzzedRealCheckpointNeverRestores) {
  TempPath ckpt("test_checkpoint_fuzz.ckpt");
  ExperimentConfig writer = quick(DesignSpec::hydrogen_full());
  writer.checkpoint_path = ckpt.path;
  (void)run_experiment(writer);
  const std::string good = ckpt::read_file(ckpt.path);
  ASSERT_GT(good.size(), 1000u);

  TempPath badfile("test_checkpoint_fuzz_bad.ckpt");
  Rng rng(0xc0ffee);
  for (int trial = 0; trial < 400; ++trial) {
    std::string bad = good;
    const size_t pos = static_cast<size_t>(rng.next_below(good.size()));
    const unsigned bit = static_cast<unsigned>(rng.next_below(8));
    bad[pos] = static_cast<char>(static_cast<unsigned char>(bad[pos]) ^ (1u << bit));
    bool detected = false;
    try {
      ckpt::CkptReader probe(bad, ckpt.path);
    } catch (const ckpt::CheckpointError&) {
      detected = true;
    }
    if (detected) continue;
    // The frame still parses (e.g. a section-name flip: names are framing,
    // not checksummed) — the full restore must reject it instead when it
    // enters sections by name.
    ckpt::write_file_atomic(badfile.path, bad);
    SimSystem sys(quick(DesignSpec::hydrogen_full()));
    sys.build();
    EXPECT_THROW(load_checkpoint(sys, badfile.path), ckpt::CheckpointError)
        << "flip of bit " << bit << " at byte " << pos << " went undetected";
  }
}

/// A crash can leave the journal with a half-written final line; load must
/// drop exactly that line and keep everything before it.
TEST(Journal, LoadToleratesACrashTruncatedTrailingLine) {
  TempPath journal("test_checkpoint_journal.jsonl");
  JournalEntry a;
  a.key = "aaaa";
  a.combo = "C1";
  a.design = "hydrogen";
  a.status = "ok";
  JournalEntry b = a;
  b.key = "bbbb";

  const std::string line_a = serialize_entry(a);
  const std::string line_b = serialize_entry(b);
  {
    std::ofstream f(journal.path, std::ios::binary);
    f << line_a << "\n";
    // Crash mid-append: no newline, record cut in half.
    f << line_b.substr(0, line_b.size() / 2);
  }
  const auto loaded = load_journal(journal.path);
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded.count("aaaa"));
  EXPECT_FALSE(loaded.count("bbbb"));
}

}  // namespace
}  // namespace h2
