#include "mem/channel.h"
#include "mem/memory_system.h"

#include <gtest/gtest.h>

#include <cmath>

namespace h2 {
namespace {

constexpr double kGhz = 3.2;

TEST(DramTiming, PresetBandwidths) {
  // Table I: HBM2E channel 51.2 GB/s, DDR4-3200 channel 25.6 GB/s.
  EXPECT_NEAR(hbm2e_timing().peak_gbps(), 51.2, 0.01);
  EXPECT_NEAR(ddr4_3200_timing().peak_gbps(), 25.6, 0.01);
  // HBM3 doubles channel bandwidth (paper Section VI-A).
  EXPECT_NEAR(hbm3_timing().peak_gbps(), 2 * hbm2e_timing().peak_gbps(), 0.01);
}

TEST(DramTiming, GroupingScalesBandwidthAndBanks) {
  const DramTiming base = hbm2e_timing();
  const DramTiming g = grouped(base, 4);
  EXPECT_EQ(g.bus_bytes_per_device_cycle, base.bus_bytes_per_device_cycle * 4);
  EXPECT_EQ(g.banks_per_rank, base.banks_per_rank * 4);
  EXPECT_EQ(g.t_cas, base.t_cas);  // latency unchanged
}

TEST(Channel, RowHitIsFasterThanRowMiss) {
  Channel ch(ddr4_3200_timing(), kGhz, 0);
  const auto first = ch.request(0, 0x1000, 64, false);   // row miss (cold)
  const auto hit = ch.request(first.done, 0x1040, 64, false);  // same row
  const auto miss = ch.request(hit.done, 0x1000 + (1 << 24), 64, false);
  const Cycle hit_lat = hit.done - hit.start;
  const Cycle miss_lat = miss.done - miss.start;
  EXPECT_LT(hit_lat, miss_lat);
  EXPECT_EQ(ch.row_hits(), 1u);
  EXPECT_EQ(ch.row_misses(), 2u);
}

TEST(Channel, BackToBackRequestsQueueOnBus) {
  Channel ch(ddr4_3200_timing(), kGhz, 0);
  // Saturate: many same-cycle requests to different banks must serialise on
  // the shared data bus.
  Cycle last_done = 0;
  for (int i = 0; i < 32; ++i) {
    const auto r = ch.request(0, static_cast<Addr>(i) * 8192, 64, false);
    EXPECT_GE(r.done, last_done);  // bus slots are handed out in order
    last_done = r.done;
  }
  // 32 x 64 B at 8 B/core-cycle = 256 cycles of pure transfer minimum.
  EXPECT_GE(last_done, 256u);
}

TEST(Channel, SustainedBandwidthApproachesPeak) {
  Channel ch(ddr4_3200_timing(), kGhz, 0);
  // Stream sequentially (row hits) and measure achieved bandwidth.
  Cycle t = 0;
  const u32 n = 2000;
  Cycle done = 0;
  for (u32 i = 0; i < n; ++i) {
    done = ch.request(t, static_cast<Addr>(i) * 64, 64, false).done;
  }
  const double bytes = 64.0 * n;
  const double cycles = static_cast<double>(done);
  const double gbps = bytes / cycles * kGhz;  // bytes per ns
  EXPECT_GT(gbps, 0.80 * ddr4_3200_timing().peak_gbps());
}

TEST(Channel, EnergyAccumulatesPerBitAndActivation) {
  Channel ch(ddr4_3200_timing(), kGhz, 0);
  ch.request(0, 0, 64, false);  // one activation + 64 B read
  const double expected_min = 33.0 * 8 * 64;  // rd pJ/bit
  EXPECT_GE(ch.dynamic_energy_pj(), expected_min);
  EXPECT_GE(ch.dynamic_energy_pj(), expected_min + 15000.0);  // + ACT 15 nJ
}

TEST(Channel, StaticEnergyGrowsWithTime) {
  Channel ch(hbm2e_timing(), kGhz, 0);
  EXPECT_DOUBLE_EQ(ch.static_energy_pj(0), 0.0);
  EXPECT_GT(ch.static_energy_pj(1000), 0.0);
  EXPECT_NEAR(ch.static_energy_pj(2000), 2 * ch.static_energy_pj(1000), 1e-6);
}

TEST(Channel, PriorityGrantsQueueJumpCredit) {
  Channel hi(ddr4_3200_timing(), kGhz, 0);
  Channel lo(ddr4_3200_timing(), kGhz, 1);
  hi.set_priority_enabled(true);
  lo.set_priority_enabled(true);
  // Build identical bus backlog spread over many banks so the data bus (not
  // a single bank) is the queueing bottleneck.
  for (int i = 0; i < 64; ++i) {
    hi.request(0, static_cast<Addr>(i) * 8192, 64, false, true);
    lo.request(0, static_cast<Addr>(i) * 8192, 64, false, true);
  }
  const auto hi_req = hi.request(0, 200 << 20, 64, false, /*high_priority=*/true);
  const auto lo_req = lo.request(0, 200 << 20, 64, false, /*high_priority=*/false);
  EXPECT_LT(hi_req.done, lo_req.done);
}

TEST(Channel, WorkConservingCursorIgnoresFutureHoles) {
  // A request whose data is only ready far in the future (chained after a
  // metadata read, say) must not block later requests that are ready now.
  Channel ch(ddr4_3200_timing(), kGhz, 0);
  const auto chained = ch.request(0, 0, 64, false, true, /*earliest=*/100'000);
  EXPECT_GE(chained.first_data, 100'000u);
  // Different bank (bank state legitimately carries per-bank occupancy).
  const auto r = ch.request(0, 5 * 8192, 64, false);
  EXPECT_LT(r.done, 1'000u);
}

TEST(Channel, ReadsDoNotQueueBehindBulkWrites) {
  Channel ch(ddr4_3200_timing(), kGhz, 0);
  // Bulk writes (fills) occupy the write queue.
  for (int i = 0; i < 64; ++i) {
    ch.request(0, static_cast<Addr>(i) * 8192, 256, true);
  }
  // A demand read pays bounded drain interference, not the full write queue.
  const auto rd = ch.request(0, 300 << 20, 64, false);
  const auto wr = ch.request(0, 301 << 20, 64, true);
  EXPECT_LT(rd.done, wr.done);
}

TEST(Channel, RequestorByteAccounting) {
  Channel ch(hbm2e_timing(), kGhz, 0);
  ch.set_requestor(Requestor::Cpu);
  ch.request(0, 0, 64, false);
  ch.set_requestor(Requestor::Gpu);
  ch.request(0, 4096, 256, true);
  EXPECT_EQ(ch.bytes_transferred(Requestor::Cpu), 64u);
  EXPECT_EQ(ch.bytes_transferred(Requestor::Gpu), 256u);
  EXPECT_EQ(ch.total_bytes(), 320u);
}

TEST(MemorySystem, Table1Geometry) {
  MemorySystem mem(MemSystemConfig::table1_default());
  EXPECT_EQ(mem.num_fast_superchannels(), 4u);  // 16 channels grouped by 4
  EXPECT_EQ(mem.num_slow_channels(), 4u);
  // ~819 GB/s HBM2E vs ~102 GB/s DDR4 -> the 8:1 ratio the paper relies on.
  EXPECT_NEAR(mem.fast_peak_gbps() / mem.slow_peak_gbps(), 8.0, 0.1);
}

TEST(MemorySystem, SlowChannelInterleavesByBlock) {
  MemorySystem mem(MemSystemConfig::table1_default());
  EXPECT_EQ(mem.slow_channel_of(0), 0u);
  EXPECT_EQ(mem.slow_channel_of(256), 1u);
  EXPECT_EQ(mem.slow_channel_of(512), 2u);
  EXPECT_EQ(mem.slow_channel_of(768), 3u);
  EXPECT_EQ(mem.slow_channel_of(1024), 0u);
}

TEST(MemorySystem, TierTrafficAndEnergySplit) {
  MemorySystem mem(MemSystemConfig::table1_default());
  mem.fast_access(0, 0, 0, 64, false, Requestor::Gpu);
  mem.slow_access(0, 0, 256, true, Requestor::Cpu);
  EXPECT_EQ(mem.tier_bytes(Tier::Fast), 64u);
  EXPECT_EQ(mem.tier_bytes(Tier::Slow), 256u);
  EXPECT_EQ(mem.tier_bytes(Tier::Fast, Requestor::Gpu), 64u);
  EXPECT_EQ(mem.tier_bytes(Tier::Slow, Requestor::Cpu), 256u);
  EXPECT_GT(mem.dynamic_energy_pj(Tier::Slow), mem.dynamic_energy_pj(Tier::Fast));
  mem.reset_stats();
  EXPECT_EQ(mem.tier_bytes(Tier::Fast), 0u);
}

TEST(MemorySystem, FastChannelCountFollowsConfig) {
  MemSystemConfig cfg = MemSystemConfig::table1_default();
  cfg.fast_channels = 8;  // half the channels -> 2 superchannels
  MemorySystem mem(cfg);
  EXPECT_EQ(mem.num_fast_superchannels(), 2u);
  EXPECT_NEAR(mem.fast_peak_gbps(), 8 * 51.2, 0.5);
}

}  // namespace
}  // namespace h2
