// End-to-end trace replay: record traces for a combo's workloads (the
// artifact's T1), run the experiment from those traces (T2), and verify the
// pipeline is coherent — replayed runs complete, are deterministic, and
// their traffic stays within the recorded footprints.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "harness/experiment.h"
#include "trace/trace_io.h"
#include "trace/workloads.h"

namespace h2 {
namespace {

class ReplayExperiment : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process directory: ctest runs each test case as its own process,
    // possibly in parallel, and TearDown's remove_all must never yank traces
    // out from under a sibling test.
    dir_ = (std::filesystem::temp_directory_path() /
            ("h2_replay_traces." + std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
    // Record every workload C2 needs, at the scale the experiment will use.
    const ComboSpec& cb = combo("C2");
    for (const auto& name : cb.cpu) {
      record(with_scaled_footprint(cpu_workload_spec(name), 1, 16));
    }
    WorkloadSpec slice = with_scaled_footprint(gpu_workload_spec(cb.gpu), 1, 16);
    slice.footprint_bytes = std::max<u64>(256 * 1024, slice.footprint_bytes / 6);
    record(slice);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  void record(const WorkloadSpec& spec) {
    SyntheticGenerator gen(spec, 99);
    record_trace(gen, 40'000, dir_ + "/" + spec.name + ".trace");
  }

  ExperimentConfig config() {
    ExperimentConfig cfg;
    cfg.combo = "C2";
    cfg.design = DesignSpec::hydrogen_full();
    cfg.sys = SystemConfig::table1(16);
    cfg.cpu_target_instructions = 100'000;
    cfg.gpu_target_instructions = 80'000;
    cfg.epoch_cycles = 50'000;
    cfg.max_cycles = 100'000'000;
    cfg.trace_dir = dir_;
    return cfg;
  }

  std::string dir_;
};

TEST_F(ReplayExperiment, RunsToCompletionFromTraces) {
  const ExperimentResult r = run_experiment(config());
  EXPECT_TRUE(r.cpu_finished);
  EXPECT_TRUE(r.gpu_finished);
  EXPECT_GT(r.cpu_instructions, 0u);
  EXPECT_GT(r.slow_bytes, 0u);
}

TEST_F(ReplayExperiment, ReplayIsDeterministic) {
  const ExperimentResult a = run_experiment(config());
  const ExperimentResult b = run_experiment(config());
  EXPECT_EQ(a.cpu_cycles, b.cpu_cycles);
  EXPECT_EQ(a.gpu_cycles, b.gpu_cycles);
  EXPECT_EQ(a.slow_bytes, b.slow_bytes);
}

TEST_F(ReplayExperiment, WorksAcrossDesigns) {
  for (const DesignSpec& d :
       {DesignSpec::baseline(), DesignSpec::profess(), DesignSpec::hydrogen_setpart()}) {
    ExperimentConfig cfg = config();
    cfg.design = d;
    const ExperimentResult r = run_experiment(cfg);
    EXPECT_TRUE(r.cpu_finished) << d.label;
  }
}

}  // namespace
}  // namespace h2
