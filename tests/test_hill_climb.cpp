#include "hydrogen/hill_climb.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

namespace h2 {
namespace {

ParamRanges default_ranges() {
  ParamRanges r;
  r.cap_min = 1;
  r.cap_max = 3;
  r.bw_min = 1;
  r.bw_max = 3;
  r.tok_min = 0;
  r.tok_max = 7;
  return r;
}

/// Drives the climber against a closed-form objective until convergence.
ParamPoint run_to_convergence(HillClimber& hc,
                              const std::function<double(const ParamPoint&)>& f,
                              u32 max_steps = 200) {
  for (u32 i = 0; i < max_steps && !hc.converged(); ++i) {
    hc.observe(f(hc.current()));
  }
  return hc.best();
}

TEST(HillClimb, FindsUnimodalOptimum) {
  // Concave separable objective with optimum at (2, 3, 5).
  auto f = [](const ParamPoint& p) {
    auto d = [](double x, double opt) { return -(x - opt) * (x - opt); };
    return 100.0 + d(p.cap, 2) + d(p.bw, 3) + d(p.tok, 5);
  };
  HillClimber hc(ParamPoint{1, 1, 0}, default_ranges());
  const ParamPoint best = run_to_convergence(hc, f);
  EXPECT_EQ(best.cap, 2u);
  EXPECT_EQ(best.bw, 3u);
  EXPECT_EQ(best.tok, 5u);
  EXPECT_TRUE(hc.converged());
}

TEST(HillClimb, ConvergesWithinTensOfSteps) {
  // Paper Section VI-C: ~20 optimisation steps to convergence.
  auto f = [](const ParamPoint& p) {
    return -std::abs(static_cast<double>(p.cap) - 3) -
           std::abs(static_cast<double>(p.bw) - 1) -
           std::abs(static_cast<double>(p.tok) - 3) + 10.0;
  };
  HillClimber hc(ParamPoint{2, 2, 4}, default_ranges());
  run_to_convergence(hc, f);
  EXPECT_TRUE(hc.converged());
  EXPECT_LE(hc.steps(), 30u);
}

TEST(HillClimb, StaysAtOptimumWhenStartedThere) {
  auto f = [](const ParamPoint& p) {
    return -(std::abs(static_cast<double>(p.cap) - 2.0) +
             std::abs(static_cast<double>(p.bw) - 2.0) +
             std::abs(static_cast<double>(p.tok) - 2.0));
  };
  HillClimber hc(ParamPoint{2, 2, 2}, default_ranges());
  const ParamPoint best = run_to_convergence(hc, f);
  EXPECT_EQ(best, (ParamPoint{2, 2, 2}));
}

TEST(HillClimb, RespectsRangeBounds) {
  // Objective pushes toward larger values; the best point must clamp at the
  // range maxima and proposals must never leave the ranges.
  auto f = [](const ParamPoint& p) {
    return static_cast<double>(p.cap + p.bw + p.tok);
  };
  const ParamRanges r = default_ranges();
  HillClimber hc(ParamPoint{1, 1, 0}, r);
  for (u32 i = 0; i < 300 && !hc.converged(); ++i) {
    const ParamPoint& c = hc.current();
    EXPECT_GE(c.cap, r.cap_min);
    EXPECT_LE(c.cap, r.cap_max);
    EXPECT_GE(c.bw, r.bw_min);
    EXPECT_LE(c.bw, r.bw_max);
    EXPECT_LE(c.tok, r.tok_max);
    hc.observe(f(c));
  }
  EXPECT_EQ(hc.best().cap, 3u);
  EXPECT_EQ(hc.best().bw, 3u);
  EXPECT_EQ(hc.best().tok, 7u);
}

TEST(HillClimb, IgnoresSubThresholdNoise) {
  // Tiny fluctuations below eps must not be chased.
  HillClimber hc(ParamPoint{2, 2, 4}, default_ranges(), /*eps=*/0.01);
  double base = 100.0;
  int flips = 0;
  for (u32 i = 0; i < 40 && !hc.converged(); ++i) {
    const ParamPoint before = hc.best();
    hc.observe(base * (1.0 + ((i % 2) ? 0.004 : -0.004)));
    if (!(hc.best() == before)) flips++;
  }
  EXPECT_EQ(flips, 0);
  EXPECT_TRUE(hc.converged());
}

TEST(HillClimb, RestartReopensSearch) {
  auto f1 = [](const ParamPoint& p) { return -std::abs(static_cast<double>(p.cap) - 1.0); };
  auto f2 = [](const ParamPoint& p) { return -std::abs(static_cast<double>(p.cap) - 3.0); };
  HillClimber hc(ParamPoint{2, 2, 4}, default_ranges());
  run_to_convergence(hc, f1);
  EXPECT_EQ(hc.best().cap, 1u);
  // Phase change: the optimum moved; restart must rediscover it.
  hc.restart();
  EXPECT_FALSE(hc.converged());
  run_to_convergence(hc, f2);
  EXPECT_EQ(hc.best().cap, 3u);
}

TEST(HillClimb, SingletonRangesConvergeImmediately) {
  ParamRanges r;
  r.cap_min = r.cap_max = 2;
  r.bw_min = r.bw_max = 1;
  r.tok_min = r.tok_max = 3;
  HillClimber hc(ParamPoint{2, 1, 3}, r);
  for (u32 i = 0; i < 10 && !hc.converged(); ++i) hc.observe(1.0);
  EXPECT_TRUE(hc.converged());
  EXPECT_EQ(hc.best(), (ParamPoint{2, 1, 3}));
}

}  // namespace
}  // namespace h2
