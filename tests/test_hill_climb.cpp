#include "hydrogen/hill_climb.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "common/rng.h"

namespace h2 {
namespace {

ParamRanges default_ranges() {
  ParamRanges r;
  r.cap_min = 1;
  r.cap_max = 3;
  r.bw_min = 1;
  r.bw_max = 3;
  r.tok_min = 0;
  r.tok_max = 7;
  return r;
}

/// Worst-case observe() count for a unimodal objective over `r`, derived
/// from the search shape instead of a magic constant: a greedy ascent makes
/// at most one improving move per unit of range extent, each improving move
/// costs at most one full neighbourhood sweep (2 directions x 3 dims), and
/// convergence needs one final sweep with no improvement.
u32 convergence_bound(const ParamRanges& r) {
  const u32 extent = (r.cap_max - r.cap_min) + (r.bw_max - r.bw_min) +
                     (r.tok_max - r.tok_min);
  const u32 neighbourhood = 2 * 3;
  return (extent + 1) * neighbourhood + 1;  // +1 for the baseline observation
}

/// Drives the climber against a closed-form objective until convergence.
ParamPoint run_to_convergence(HillClimber& hc,
                              const std::function<double(const ParamPoint&)>& f,
                              u32 max_steps = 200) {
  for (u32 i = 0; i < max_steps && !hc.converged(); ++i) {
    hc.observe(f(hc.current()));
  }
  return hc.best();
}

TEST(HillClimb, FindsUnimodalOptimum) {
  // Concave separable objective with optimum at (2, 3, 5).
  auto f = [](const ParamPoint& p) {
    auto d = [](double x, double opt) { return -(x - opt) * (x - opt); };
    return 100.0 + d(p.cap, 2) + d(p.bw, 3) + d(p.tok, 5);
  };
  HillClimber hc(ParamPoint{1, 1, 0}, default_ranges());
  const ParamPoint best = run_to_convergence(hc, f);
  EXPECT_EQ(best.cap, 2u);
  EXPECT_EQ(best.bw, 3u);
  EXPECT_EQ(best.tok, 5u);
  EXPECT_TRUE(hc.converged());
}

TEST(HillClimb, ConvergesWithinTensOfSteps) {
  // Paper Section VI-C: ~20 optimisation steps to convergence. The bound is
  // derived from the neighbourhood geometry (see convergence_bound), not a
  // tuned constant that drifts out of date when ranges change.
  auto f = [](const ParamPoint& p) {
    return -std::abs(static_cast<double>(p.cap) - 3) -
           std::abs(static_cast<double>(p.bw) - 1) -
           std::abs(static_cast<double>(p.tok) - 3) + 10.0;
  };
  HillClimber hc(ParamPoint{2, 2, 4}, default_ranges());
  run_to_convergence(hc, f, convergence_bound(default_ranges()));
  EXPECT_TRUE(hc.converged());
  EXPECT_LE(hc.steps(), convergence_bound(default_ranges()));
}

TEST(HillClimb, StaysAtOptimumWhenStartedThere) {
  auto f = [](const ParamPoint& p) {
    return -(std::abs(static_cast<double>(p.cap) - 2.0) +
             std::abs(static_cast<double>(p.bw) - 2.0) +
             std::abs(static_cast<double>(p.tok) - 2.0));
  };
  HillClimber hc(ParamPoint{2, 2, 2}, default_ranges());
  const ParamPoint best = run_to_convergence(hc, f);
  EXPECT_EQ(best, (ParamPoint{2, 2, 2}));
}

TEST(HillClimb, RespectsRangeBounds) {
  // Objective pushes toward larger values; the best point must clamp at the
  // range maxima and proposals must never leave the ranges.
  auto f = [](const ParamPoint& p) {
    return static_cast<double>(p.cap + p.bw + p.tok);
  };
  const ParamRanges r = default_ranges();
  HillClimber hc(ParamPoint{1, 1, 0}, r);
  for (u32 i = 0; i < 300 && !hc.converged(); ++i) {
    const ParamPoint& c = hc.current();
    EXPECT_GE(c.cap, r.cap_min);
    EXPECT_LE(c.cap, r.cap_max);
    EXPECT_GE(c.bw, r.bw_min);
    EXPECT_LE(c.bw, r.bw_max);
    EXPECT_LE(c.tok, r.tok_max);
    hc.observe(f(c));
  }
  EXPECT_EQ(hc.best().cap, 3u);
  EXPECT_EQ(hc.best().bw, 3u);
  EXPECT_EQ(hc.best().tok, 7u);
}

TEST(HillClimb, IgnoresSubThresholdNoise) {
  // Tiny fluctuations below eps must not be chased.
  HillClimber hc(ParamPoint{2, 2, 4}, default_ranges(), /*eps=*/0.01);
  double base = 100.0;
  int flips = 0;
  for (u32 i = 0; i < 40 && !hc.converged(); ++i) {
    const ParamPoint before = hc.best();
    hc.observe(base * (1.0 + ((i % 2) ? 0.004 : -0.004)));
    if (!(hc.best() == before)) flips++;
  }
  EXPECT_EQ(flips, 0);
  EXPECT_TRUE(hc.converged());
}

TEST(HillClimb, RestartReopensSearch) {
  auto f1 = [](const ParamPoint& p) { return -std::abs(static_cast<double>(p.cap) - 1.0); };
  auto f2 = [](const ParamPoint& p) { return -std::abs(static_cast<double>(p.cap) - 3.0); };
  HillClimber hc(ParamPoint{2, 2, 4}, default_ranges());
  run_to_convergence(hc, f1);
  EXPECT_EQ(hc.best().cap, 1u);
  // Phase change: the optimum moved; restart must rediscover it.
  hc.restart();
  EXPECT_FALSE(hc.converged());
  run_to_convergence(hc, f2);
  EXPECT_EQ(hc.best().cap, 3u);
}

TEST(HillClimbProperty, NoisyObjectiveTrajectoriesAreSeedDeterministic) {
  // Measurement noise is modelled off an explicit Rng seed (same style as
  // test_sweep.cpp): two climbers fed identical seeded noise must follow
  // bit-identical trajectories, so any failure replays exactly.
  auto base = [](const ParamPoint& p) {
    auto d = [](double x, double opt) { return -(x - opt) * (x - opt); };
    return 100.0 + d(p.cap, 2) + d(p.bw, 3) + d(p.tok, 5);
  };
  for (u64 seed : {1ull, 7ull, 20260805ull}) {
    Rng noise_a(seed), noise_b(seed);
    HillClimber a(ParamPoint{1, 1, 0}, default_ranges());
    HillClimber b(ParamPoint{1, 1, 0}, default_ranges());
    const u32 bound = convergence_bound(default_ranges());
    for (u32 i = 0; i < bound && !(a.converged() && b.converged()); ++i) {
      ASSERT_EQ(a.current(), b.current()) << "seed=" << seed << " step=" << i;
      const double na = (noise_a.next_double() - 0.5) * 0.002;  // below eps
      const double nb = (noise_b.next_double() - 0.5) * 0.002;
      ASSERT_EQ(na, nb);
      a.observe(base(a.current()) * (1.0 + na));
      b.observe(base(b.current()) * (1.0 + nb));
    }
    EXPECT_EQ(a.best(), b.best()) << "seed=" << seed;
    EXPECT_EQ(a.steps(), b.steps()) << "seed=" << seed;
  }
}

TEST(HillClimbProperty, RandomUnimodalObjectivesConvergeWithinBound) {
  // Random optima drawn from a seeded Rng: convergence within the derived
  // bound must hold everywhere in the range box, not just at hand-picked
  // corners.
  Rng rng(424242);
  const ParamRanges r = default_ranges();
  for (int trial = 0; trial < 50; ++trial) {
    const double oc = r.cap_min + rng.next_below(r.cap_max - r.cap_min + 1);
    const double ob = r.bw_min + rng.next_below(r.bw_max - r.bw_min + 1);
    const double ot = r.tok_min + rng.next_below(r.tok_max - r.tok_min + 1);
    auto f = [&](const ParamPoint& p) {
      auto d = [](double x, double opt) { return -(x - opt) * (x - opt); };
      return 100.0 + d(p.cap, oc) + d(p.bw, ob) + d(p.tok, ot);
    };
    ParamPoint start{
        static_cast<u32>(r.cap_min + rng.next_below(r.cap_max - r.cap_min + 1)),
        static_cast<u32>(r.bw_min + rng.next_below(r.bw_max - r.bw_min + 1)),
        static_cast<u32>(r.tok_min + rng.next_below(r.tok_max - r.tok_min + 1))};
    HillClimber hc(start, r);
    const ParamPoint best = run_to_convergence(hc, f, convergence_bound(r));
    EXPECT_TRUE(hc.converged()) << "trial=" << trial;
    EXPECT_EQ(best.cap, static_cast<u32>(oc)) << "trial=" << trial;
    EXPECT_EQ(best.bw, static_cast<u32>(ob)) << "trial=" << trial;
    EXPECT_EQ(best.tok, static_cast<u32>(ot)) << "trial=" << trial;
  }
}

TEST(HillClimb, SingletonRangesConvergeImmediately) {
  ParamRanges r;
  r.cap_min = r.cap_max = 2;
  r.bw_min = r.bw_max = 1;
  r.tok_min = r.tok_max = 3;
  HillClimber hc(ParamPoint{2, 1, 3}, r);
  for (u32 i = 0; i < 10 && !hc.converged(); ++i) hc.observe(1.0);
  EXPECT_TRUE(hc.converged());
  EXPECT_EQ(hc.best(), (ParamPoint{2, 1, 3}));
}

}  // namespace
}  // namespace h2
