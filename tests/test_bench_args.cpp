// Coverage for BenchArgs::try_parse, the non-exiting flag parser every bench
// binary (and the ctest smoke entry) goes through.
#include "bench_common.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace h2::bench {
namespace {

/// Builds an argv-shaped view over string literals ("bench" + flags).
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    storage.insert(storage.begin(), "bench");
    for (auto& s : storage) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }

  std::vector<std::string> storage;
  std::vector<char*> ptrs;
};

BenchArgs parse_ok(std::vector<std::string> args) {
  Argv a(std::move(args));
  BenchArgs out;
  std::string error;
  EXPECT_TRUE(BenchArgs::try_parse(a.argc(), a.argv(), &out, &error)) << error;
  return out;
}

std::string parse_error(std::vector<std::string> args) {
  Argv a(std::move(args));
  BenchArgs out;
  std::string error;
  EXPECT_FALSE(BenchArgs::try_parse(a.argc(), a.argv(), &out, &error));
  return error;
}

TEST(BenchArgs, DefaultsWithNoFlags) {
  const BenchArgs args = parse_ok({});
  EXPECT_FALSE(args.quick);
  EXPECT_FALSE(args.full);
  EXPECT_FALSE(args.hbm3);
  EXPECT_TRUE(args.csv_path.empty());
  EXPECT_EQ(args.jobs, 0u);  // 0 = auto (H2_JOBS / hardware threads)
  EXPECT_EQ(args.check_level, -1);  // -1 = leave the compiled default
}

TEST(BenchArgs, AcceptsEveryFlag) {
  const BenchArgs args = parse_ok({"--quick", "--full", "--hbm3", "--csv",
                                   "out.csv", "--jobs", "4", "--check", "0"});
  EXPECT_TRUE(args.quick);
  EXPECT_TRUE(args.full);
  EXPECT_TRUE(args.hbm3);
  EXPECT_EQ(args.csv_path, "out.csv");
  EXPECT_EQ(args.jobs, 4u);
  EXPECT_EQ(args.check_level, 0);
}

TEST(BenchArgs, RejectsNegativeCheckLevel) {
  EXPECT_NE(parse_error({"--check", "-1"}).find("--check"), std::string::npos);
}

TEST(BenchArgs, RejectsNonNumericCheckLevel) {
  EXPECT_NE(parse_error({"--check", "full"}).find("full"), std::string::npos);
}

TEST(BenchArgs, CapturesCsvPath) {
  EXPECT_EQ(parse_ok({"--csv", "/tmp/fig05.csv"}).csv_path, "/tmp/fig05.csv");
}

TEST(BenchArgs, RejectsJobsZero) {
  EXPECT_NE(parse_error({"--jobs", "0"}).find("--jobs"), std::string::npos);
}

TEST(BenchArgs, RejectsNegativeJobs) {
  EXPECT_NE(parse_error({"--jobs", "-2"}).find("positive"), std::string::npos);
}

TEST(BenchArgs, RejectsNonNumericJobs) {
  EXPECT_NE(parse_error({"--jobs", "many"}).find("many"), std::string::npos);
}

TEST(BenchArgs, RejectsTrailingGarbageInJobs) {
  EXPECT_FALSE(parse_error({"--jobs", "4x"}).empty());
}

TEST(BenchArgs, JobsWithoutValueIsAnError) {
  // A bare trailing --jobs falls through to the unknown-argument branch.
  EXPECT_NE(parse_error({"--jobs"}).find("unknown argument"), std::string::npos);
}

TEST(BenchArgs, CsvWithoutValueIsAnError) {
  EXPECT_NE(parse_error({"--csv"}).find("unknown argument"), std::string::npos);
}

TEST(BenchArgs, UnknownFlagReturnsErrorInsteadOfExiting) {
  const std::string error = parse_error({"--frobnicate"});
  EXPECT_NE(error.find("--frobnicate"), std::string::npos);
  EXPECT_NE(error.find("--jobs"), std::string::npos);  // usage names the new flag
}

TEST(BenchArgs, LaterFlagsAccumulate) {
  const BenchArgs args = parse_ok({"--jobs", "2", "--jobs", "8"});
  EXPECT_EQ(args.jobs, 8u);  // last assignment wins, like the config loader
}

TEST(BenchArgs, ParsesLifecycleFlags) {
  const BenchArgs args =
      parse_ok({"--warmup-epochs", "3", "--timeline", "tl-", "--compiled-check-level"});
  EXPECT_EQ(args.warmup_epochs, 3u);
  EXPECT_EQ(args.timeline_prefix, "tl-");
  EXPECT_TRUE(args.print_compiled_check_level);
}

TEST(BenchArgs, LifecycleFlagDefaults) {
  const BenchArgs args = parse_ok({});
  EXPECT_EQ(args.warmup_epochs, 0u);  // 0 = historical cold start
  EXPECT_TRUE(args.timeline_prefix.empty());
  EXPECT_FALSE(args.print_compiled_check_level);
}

TEST(BenchArgs, RejectsNegativeWarmupEpochs) {
  EXPECT_NE(parse_error({"--warmup-epochs", "-1"}).find("--warmup-epochs"),
            std::string::npos);
}

TEST(BenchArgs, WarmupAndTimelineReachTheConfig) {
  BenchArgs args = parse_ok({"--warmup-epochs", "2", "--timeline", "tl-"});
  const ExperimentConfig cfg = bench_config("C1", DesignSpec::hydrogen_full(), args);
  EXPECT_EQ(cfg.warmup_epochs, 2u);
  EXPECT_EQ(cfg.timeline_path, "tl-C1-hydrogen.csv");
}

}  // namespace
}  // namespace h2::bench
