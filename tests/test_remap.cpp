#include "hybridmem/remap_cache.h"
#include "hybridmem/remap_table.h"

#include <gtest/gtest.h>

namespace h2 {
namespace {

TEST(RemapTable, FindAndTouch) {
  RemapTable t(16, 4);
  EXPECT_EQ(t.find(3, 100), -1);
  t.way(3, 2).tag = 100;
  t.way(3, 2).valid = true;
  EXPECT_EQ(t.find(3, 100), 2);
  EXPECT_EQ(t.find(4, 100), -1);  // other set

  const u64 s1 = t.touch(3, 2);
  const u64 s2 = t.touch(3, 1);
  EXPECT_GT(s2, s1);  // stamps increase
}

TEST(RemapTable, OccupancyCountsValidWays) {
  RemapTable t(4, 4);
  EXPECT_EQ(t.occupancy(0), 0u);
  t.way(0, 0).valid = true;
  t.way(0, 3).valid = true;
  EXPECT_EQ(t.occupancy(0), 2u);
  EXPECT_EQ(t.occupancy(1), 0u);
}

TEST(RemapTable, InvalidTagNeverMatches) {
  RemapTable t(4, 2);
  t.way(0, 0).tag = kInvalidTag;
  t.way(0, 0).valid = false;
  EXPECT_EQ(t.find(0, kInvalidTag), -1);
}

TEST(RemapTable, AllocBitOverheadMatchesPaper) {
  RemapTable t(1024, 4);
  // Paper Section IV-F: ~0.049% metadata storage overhead for 256 B blocks.
  EXPECT_NEAR(t.alloc_bit_overhead(256) * 100.0, 0.049, 0.001);
}

TEST(RemapCache, MissThenHit) {
  RemapCache rc(64 * 1024, 32);
  EXPECT_FALSE(rc.probe(5));
  EXPECT_TRUE(rc.probe(5));
  EXPECT_EQ(rc.hits(), 1u);
  EXPECT_EQ(rc.misses(), 1u);
}

TEST(RemapCache, CapacityBoundsCoverage) {
  // 4 kB cache with 32 B per set covers 128 sets; streaming 10k distinct
  // cache lines (stride 2 sets = one 64 B line each) must keep missing.
  RemapCache rc(4 * 1024, 32);
  for (u32 s = 0; s < 10'000; ++s) rc.probe(s * 2);
  EXPECT_LT(rc.hit_rate(), 0.1);
  // A tiny working set fits entirely.
  RemapCache rc2(4 * 1024, 32);
  for (int round = 0; round < 100; ++round) {
    for (u32 s = 0; s < 16; ++s) rc2.probe(s);
  }
  EXPECT_GT(rc2.hit_rate(), 0.95);
}

TEST(RemapCache, InvalidateForcesMiss) {
  RemapCache rc(64 * 1024, 32);
  rc.probe(7);
  EXPECT_TRUE(rc.probe(7));
  rc.invalidate(7);
  EXPECT_FALSE(rc.probe(7));
}

}  // namespace
}  // namespace h2
