// PageStatsTable (hybridmem/page_stats.h): the two-level per-page access
// counter behind the integrated design's migration threshold. Pins the
// promotion/demotion rules, saturation caps, the population identity, and
// the checkpoint round-trip (including single-bit-flip rejection).
#include "hybridmem/page_stats.h"

#include <gtest/gtest.h>

#include "common/ckpt_io.h"
#include "common/rng.h"

namespace h2 {
namespace {

/// One hot slot, one coarse bucket: every tag shares both, so promotion and
/// demotion decisions are a pure function of counts — no hash placement can
/// perturb the expectations.
PageStatsConfig tiny_cfg() {
  PageStatsConfig cfg;
  cfg.coarse_slots = 1;
  cfg.hot_slots = 1;
  cfg.probe_window = 1;
  cfg.promote_threshold = 1;
  return cfg;
}

TEST(PageStats, ColdTagsReadZero) {
  PageStatsTable t;
  EXPECT_EQ(t.value(42), 0u);
  EXPECT_EQ(t.tracked(), 0u);
  EXPECT_TRUE(t.audit());
}

TEST(PageStats, PromotionCarriesTheCoarseCount) {
  PageStatsConfig cfg;
  cfg.promote_threshold = 2;
  PageStatsTable t(cfg);
  // First record: coarse only — still cold.
  EXPECT_EQ(t.record(7, 10), 0u);
  EXPECT_EQ(t.value(7), 0u);
  // Second record reaches the threshold: the tag earns a hot slot seeded
  // with the carried count.
  EXPECT_EQ(t.record(7, 11), 2u);
  EXPECT_EQ(t.value(7), 2u);
  EXPECT_EQ(t.tracked(), 1u);
  // Hot records are exact from here on.
  EXPECT_EQ(t.record(7, 12), 3u);
  EXPECT_TRUE(t.audit());
}

TEST(PageStats, HotCountSaturatesAtCap) {
  PageStatsConfig cfg = tiny_cfg();
  cfg.hot_max = 5;
  PageStatsTable t(cfg);
  for (u32 i = 0; i < 20; ++i) t.record(9, i);
  EXPECT_EQ(t.value(9), 5u);
  EXPECT_EQ(t.total_hot_count(), 5u);
  EXPECT_TRUE(t.audit());
}

TEST(PageStats, DemotionNeverEvictsAHotterPage) {
  PageStatsTable t(tiny_cfg());
  // A claims the single slot and heats up to 2.
  EXPECT_EQ(t.record(1, 1), 1u);
  EXPECT_EQ(t.record(1, 2), 2u);
  // B's first promotion attempt carries count 1 < A's 2: refused, and B
  // stays cold (the coarse bucket keeps its progress).
  EXPECT_EQ(t.record(2, 3), 0u);
  EXPECT_EQ(t.value(2), 0u);
  EXPECT_EQ(t.value(1), 2u);
  // B's next record carries 2 == A's 2: now A (no hotter) is demoted.
  EXPECT_EQ(t.record(2, 4), 2u);
  EXPECT_EQ(t.value(2), 2u);
  EXPECT_EQ(t.value(1), 0u);
  EXPECT_EQ(t.tracked(), 1u);
  EXPECT_TRUE(t.audit());
}

TEST(PageStats, ClearForcesRePromotion) {
  PageStatsTable t(tiny_cfg());
  t.record(5, 1);
  t.record(5, 2);
  ASSERT_EQ(t.value(5), 2u);
  t.clear(5);
  EXPECT_EQ(t.value(5), 0u);
  EXPECT_EQ(t.tracked(), 0u);
  // The coarse bucket was zeroed too: the next record starts from scratch
  // (promote_threshold=1 here, so one record re-promotes with count 1, not
  // a stale carried count).
  EXPECT_EQ(t.record(5, 3), 1u);
  EXPECT_TRUE(t.audit());
}

TEST(PageStats, IdenticalStreamsBuildIdenticalTables) {
  PageStatsConfig cfg;
  cfg.coarse_slots = 64;
  cfg.hot_slots = 16;
  cfg.probe_window = 4;
  PageStatsTable a(cfg), b(cfg);
  Rng rng(99);
  for (u32 i = 0; i < 5000; ++i) {
    const u64 tag = rng.next_below(200);
    a.record(tag, i);
    b.record(tag, i);
    if ((i % 97) == 0) {
      a.clear(tag);
      b.clear(tag);
    }
  }
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a.audit());
  EXPECT_EQ(a.tracked(), b.tracked());
  EXPECT_EQ(a.total_hot_count(), b.total_hot_count());
}

TEST(PageStats, PopulationIdentityHoldsUnderChurn) {
  PageStatsConfig cfg;
  cfg.coarse_slots = 32;
  cfg.hot_slots = 8;
  cfg.probe_window = 8;  // whole-table window: maximum demotion pressure
  PageStatsTable t(cfg);
  Rng rng(7);
  for (u32 i = 0; i < 20'000; ++i) {
    const u64 tag = rng.next_below(500);
    t.record(tag, i);
    if ((i & 63) == 0) t.clear(rng.next_below(500));
    if ((i & 1023) == 0) ASSERT_TRUE(t.audit()) << "at step " << i;
  }
  EXPECT_TRUE(t.audit());
  EXPECT_LE(t.tracked(), 8u);
}

std::string save_to_bytes(const PageStatsTable& t) {
  ckpt::CkptWriter w;
  w.begin_section("page-stats");
  t.save(w);
  w.end_section();
  return w.finish();
}

void load_from_bytes(PageStatsTable& t, const std::string& bytes) {
  ckpt::CkptReader r(bytes, "<memory>");
  r.enter_section("page-stats");
  t.load(r);
  r.leave_section();
  r.finish();
}

TEST(PageStats, CheckpointRoundTripIsBitIdentical) {
  PageStatsConfig cfg;
  cfg.coarse_slots = 64;
  cfg.hot_slots = 16;
  cfg.probe_window = 4;
  PageStatsTable t(cfg);
  Rng rng(3);
  for (u32 i = 0; i < 4000; ++i) t.record(rng.next_below(300), i);

  PageStatsTable restored(cfg);
  load_from_bytes(restored, save_to_bytes(t));
  EXPECT_TRUE(t == restored);
  EXPECT_TRUE(restored.audit());

  // The restored table keeps evolving identically to the original.
  for (u32 i = 0; i < 500; ++i) {
    const u64 tag = rng.next_below(300);
    t.record(tag, 4000 + i);
    restored.record(tag, 4000 + i);
  }
  EXPECT_TRUE(t == restored);
}

TEST(PageStats, SingleBitFlipIsRejected) {
  PageStatsTable t(tiny_cfg());
  t.record(1, 1);
  t.record(2, 2);
  const std::string bytes = save_to_bytes(t);
  // Flip one bit in the middle of the payload: the section checksum must
  // reject the container before any field is parsed.
  std::string corrupt = bytes;
  corrupt[bytes.size() / 2] ^= 0x10;
  EXPECT_THROW(
      { ckpt::CkptReader r(corrupt, "<memory>"); }, ckpt::CheckpointError);
}

TEST(PageStats, GeometryMismatchIsRejected) {
  PageStatsConfig big;
  big.coarse_slots = 64;
  big.hot_slots = 16;
  big.probe_window = 4;
  PageStatsTable t(big);
  t.record(1, 1);
  const std::string bytes = save_to_bytes(t);
  PageStatsTable other(tiny_cfg());
  EXPECT_THROW(load_from_bytes(other, bytes), ckpt::CheckpointError);
}

}  // namespace
}  // namespace h2
