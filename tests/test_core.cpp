#include "proc/core.h"

#include <gtest/gtest.h>

#include "sim/engine.h"
#include "trace/generators.h"

namespace h2 {
namespace {

/// Memory with a fixed latency and unlimited bandwidth.
class FixedLatencyPort final : public MemoryPort {
 public:
  explicit FixedLatencyPort(Cycle latency) : latency_(latency) {}
  Cycle access(Cycle now, Requestor, u32, Addr addr, bool write) override {
    accesses++;
    last_addr = addr;
    writes += write;
    return now + latency_;
  }
  Cycle latency_;
  u64 accesses = 0;
  u64 writes = 0;
  Addr last_addr = 0;
};

WorkloadSpec simple_spec(double gap, double dep = 0.0, double wf = 0.0) {
  WorkloadSpec s;
  s.name = "t";
  s.footprint_bytes = 1 << 20;
  s.mix = {1.0, 0.0, 0.0, 0.0, 0.0};
  s.mean_gap = gap;
  s.dep_prob = dep;
  s.write_frac = wf;
  return s;
}

CoreParams cpu_params(u64 target) {
  CoreParams p;
  p.cls = Requestor::Cpu;
  p.base_ipc = 2.0;
  p.mlp = 8;
  p.target_instructions = target;
  return p;
}

TEST(Core, RetiresTargetInstructions) {
  SyntheticGenerator gen(simple_spec(10), 1);
  FixedLatencyPort port(50);
  Core core(cpu_params(10'000), &gen, &port);
  Engine e;
  e.add_actor(&core, 0);
  e.run(1'000'000);
  EXPECT_TRUE(core.finished());
  EXPECT_GE(core.retired_instructions(), 10'000u);
  EXPECT_GT(core.done_cycle(), 0u);
}

TEST(Core, HigherLatencyLowersIpcWhenDependent) {
  // With heavy dependence, the core serialises on memory latency.
  auto run_with = [](Cycle lat) {
    SyntheticGenerator gen(simple_spec(10, /*dep=*/1.0), 1);
    FixedLatencyPort port(lat);
    Core core(cpu_params(20'000), &gen, &port);
    Engine e;
    e.add_actor(&core, 0);
    e.run(10'000'000);
    return core.done_cycle();
  };
  const Cycle fast = run_with(20);
  const Cycle slow = run_with(200);
  EXPECT_GT(slow, fast * 3);
}

TEST(Core, LatencyToleranceWithHighMlp) {
  // Independent accesses + many MSHRs: latency barely matters (the GPU
  // property of Insight 1).
  auto run_with = [](Cycle lat, u32 mlp) {
    SyntheticGenerator gen(simple_spec(5), 1);
    FixedLatencyPort port(lat);
    CoreParams p = cpu_params(20'000);
    p.mlp = mlp;
    Core core(p, &gen, &port);
    Engine e;
    e.add_actor(&core, 0);
    e.run(10'000'000);
    return core.done_cycle();
  };
  const Cycle fast = run_with(20, 48);
  const Cycle slow = run_with(200, 48);
  EXPECT_LT(static_cast<double>(slow) / fast, 1.8);
  // With a single MSHR the same latency increase is devastating.
  const Cycle fast1 = run_with(20, 1);
  const Cycle slow1 = run_with(200, 1);
  EXPECT_GT(static_cast<double>(slow1) / fast1, 3.0);
}

TEST(Core, AppliesAddressBase) {
  SyntheticGenerator gen(simple_spec(10), 1);
  FixedLatencyPort port(10);
  CoreParams p = cpu_params(100);
  p.addr_base = 1ull << 32;
  Core core(p, &gen, &port);
  Engine e;
  e.add_actor(&core, 0);
  e.run(100'000);
  EXPECT_GE(port.last_addr, 1ull << 32);
}

TEST(Core, WritesGoThroughWriteBuffer) {
  SyntheticGenerator gen(simple_spec(10, 0.0, /*writes=*/1.0), 1);
  FixedLatencyPort port(50);
  Core core(cpu_params(5'000), &gen, &port);
  Engine e;
  e.add_actor(&core, 0);
  e.run(1'000'000);
  EXPECT_EQ(port.writes, port.accesses);
  EXPECT_EQ(core.writes_issued(), port.writes);
  EXPECT_EQ(core.reads_issued(), 0u);
}

TEST(Core, KeepsRunningAfterTarget) {
  SyntheticGenerator gen(simple_spec(10), 1);
  FixedLatencyPort port(10);
  Core core(cpu_params(1'000), &gen, &port);
  Engine e;
  e.add_actor(&core, 0);
  e.run(50'000);
  // The core preserves contention by continuing past its target.
  EXPECT_GT(core.retired_instructions(), 2'000u);
  EXPECT_LT(core.done_cycle(), e.now());
}

TEST(Core, MlpBoundsOutstandingRequests) {
  // A port that records the max number of in-flight requests.
  class TrackingPort final : public MemoryPort {
   public:
    Cycle access(Cycle now, Requestor, u32, Addr, bool) override {
      // Requests complete 1000 cycles later; count overlap by arrival time.
      inflight_ends.push_back(now + 1000);
      u32 live = 0;
      for (Cycle end : inflight_ends) live += end > now;
      max_live = std::max(max_live, live);
      return now + 1000;
    }
    std::vector<Cycle> inflight_ends;
    u32 max_live = 0;
  };
  SyntheticGenerator gen(simple_spec(2), 1);
  TrackingPort port;
  CoreParams p = cpu_params(50'000);
  p.mlp = 4;
  p.write_buffer = 1;
  Core core(p, &gen, &port);
  Engine e;
  e.add_actor(&core, 0);
  e.run(2'000'000);
  EXPECT_LE(port.max_live, 5u + 1u);  // mlp reads + 1 write slot
}

}  // namespace
}  // namespace h2
