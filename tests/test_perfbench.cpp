// The perf-regression test layer (harness/perfbench.h): BENCH_<n>.json
// schema round-trips, comparator threshold classification, and the
// determinism of the counter fields that make perf baselines trustworthy —
// engine events and demand accesses must be pure functions of the config,
// bit-stable across --jobs 1 vs --jobs 4 and across process lifetimes.
#include "harness/perfbench.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "harness/journal.h"
#include "harness/sweep.h"

namespace h2 {
namespace {

u64 bits(double v) {
  u64 u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

PerfReport sample_report() {
  PerfReport r;
  r.set_meta("host", "testhost Linux x86_64");
  r.set_meta("compiler", R"(g++ "12" \ test)");  // escaping must survive
  r.set_meta("jobs", "4");

  PerfEntry micro;
  micro.name = "micro/rng_next";
  micro.kind = "micro";
  micro.iters = 1u << 20;
  micro.wall_seconds = 0.1 + 0.2;  // not exactly representable: hex round-trip
  micro.rate = 1.0 / 3.0;
  micro.events = 0xdeadbeefcafef00dull;
  r.entries.push_back(micro);

  PerfEntry sweep;
  sweep.name = "fig05_quick";
  sweep.kind = "sweep";
  sweep.iters = 21;
  sweep.wall_seconds = 12.75;
  sweep.rate = 5e-324;  // denormal extreme
  sweep.events = ~0ull;
  sweep.accesses = 123456789;
  sweep.accesses_per_sec = 1.7976931348623157e308;
  r.entries.push_back(sweep);
  return r;
}

TEST(PerfBenchSchema, RoundTripsBitExactly) {
  const PerfReport r = sample_report();
  const std::string text = serialize_report(r);
  const std::optional<PerfReport> back = parse_report(text);
  ASSERT_TRUE(back.has_value());

  ASSERT_EQ(back->meta.size(), r.meta.size());
  for (size_t i = 0; i < r.meta.size(); ++i) {
    EXPECT_EQ(back->meta[i].first, r.meta[i].first);
    EXPECT_EQ(back->meta[i].second, r.meta[i].second);
  }
  ASSERT_EQ(back->entries.size(), r.entries.size());
  for (size_t i = 0; i < r.entries.size(); ++i) {
    const PerfEntry& a = r.entries[i];
    const PerfEntry& b = back->entries[i];
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.kind, a.kind);
    EXPECT_EQ(b.iters, a.iters);
    EXPECT_EQ(bits(b.wall_seconds), bits(a.wall_seconds));
    EXPECT_EQ(bits(b.rate), bits(a.rate));
    EXPECT_EQ(b.events, a.events);
    EXPECT_EQ(b.accesses, a.accesses);
    EXPECT_EQ(bits(b.accesses_per_sec), bits(a.accesses_per_sec));
  }

  // A second serialize of the parsed report must be byte-identical: the
  // format has one canonical rendering per report.
  EXPECT_EQ(serialize_report(*back), text);
}

TEST(PerfBenchSchema, SaveAndLoadRoundTrip) {
  const PerfReport r = sample_report();
  const std::string path =
      std::string(::testing::TempDir()) + "perfbench_roundtrip.json";
  ASSERT_TRUE(save_report(r, path));
  const std::optional<PerfReport> back = load_report(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(serialize_report(*back), serialize_report(r));
  std::remove(path.c_str());
}

TEST(PerfBenchSchema, RejectsMalformedInput) {
  EXPECT_FALSE(parse_report("").has_value());
  EXPECT_FALSE(parse_report("garbage").has_value());
  EXPECT_FALSE(parse_report("{}").has_value());  // missing required sections
  EXPECT_FALSE(load_report("/nonexistent/path/B.json").has_value());

  const std::string good = serialize_report(sample_report());
  // Wrong schema string.
  std::string bad = good;
  bad.replace(bad.find("h2-perfbench-v1"), std::strlen("h2-perfbench-v1"),
              "h2-perfbench-v9");
  EXPECT_FALSE(parse_report(bad).has_value());
  // A missing per-entry field invalidates the entry.
  bad = good;
  bad.replace(bad.find("\"events\""), std::strlen("\"events\""), "\"evts\"");
  EXPECT_FALSE(parse_report(bad).has_value());
  // Truncation anywhere must fail, never mis-parse.
  for (size_t cut : {good.size() / 4, good.size() / 2, good.size() - 2}) {
    EXPECT_FALSE(parse_report(good.substr(0, cut)).has_value());
  }
}

PerfEntry entry(const std::string& name, double rate, u64 events, u64 accesses) {
  PerfEntry e;
  e.name = name;
  e.kind = "micro";
  e.iters = 100;
  e.wall_seconds = 1.0;
  e.rate = rate;
  e.events = events;
  e.accesses = accesses;
  return e;
}

TEST(PerfBenchCompare, ClassifiesAgainstNoiseBand) {
  PerfReport base, cur;
  base.entries = {entry("up", 100.0, 1, 2), entry("down", 100.0, 1, 2),
                  entry("flat", 100.0, 1, 2)};
  cur.entries = {entry("up", 125.0, 1, 2), entry("down", 80.0, 1, 2),
                 entry("flat", 104.0, 1, 2)};

  const CompareReport cmp = compare_reports(base, cur, /*threshold=*/0.10);
  ASSERT_EQ(cmp.rows.size(), 3u);
  EXPECT_EQ(cmp.rows[0].cls, PerfDelta::Improvement);
  EXPECT_EQ(cmp.rows[1].cls, PerfDelta::Regression);
  EXPECT_EQ(cmp.rows[2].cls, PerfDelta::Noise);
  EXPECT_EQ(cmp.improvements, 1u);
  EXPECT_EQ(cmp.regressions, 1u);
  EXPECT_EQ(cmp.counter_mismatches, 0u);
  EXPECT_DOUBLE_EQ(cmp.rows[0].ratio, 1.25);
  EXPECT_DOUBLE_EQ(cmp.rows[1].ratio, 0.80);
}

TEST(PerfBenchCompare, BandEdgesAreInclusive) {
  // ratio == 1 ± threshold is already outside the noise band.
  PerfReport base, cur;
  base.entries = {entry("a", 100.0, 0, 0), entry("b", 100.0, 0, 0)};
  cur.entries = {entry("a", 110.0, 0, 0), entry("b", 90.0, 0, 0)};
  const CompareReport cmp = compare_reports(base, cur, 0.10);
  EXPECT_EQ(cmp.rows[0].cls, PerfDelta::Improvement);
  EXPECT_EQ(cmp.rows[1].cls, PerfDelta::Regression);
}

TEST(PerfBenchCompare, CounterDriftTrumpsRateClassification) {
  PerfReport base, cur;
  base.entries = {entry("a", 100.0, 42, 7)};
  cur.entries = {entry("a", 250.0, 43, 7)};  // "faster", but different work
  const CompareReport cmp = compare_reports(base, cur, 0.10);
  ASSERT_EQ(cmp.rows.size(), 1u);
  EXPECT_EQ(cmp.rows[0].cls, PerfDelta::CounterMismatch);
  EXPECT_EQ(cmp.counter_mismatches, 1u);
  EXPECT_EQ(cmp.improvements, 0u);
  EXPECT_NE(cmp.rows[0].detail.find("42 -> 43"), std::string::npos);

  cur.entries = {entry("a", 100.0, 42, 8)};  // accesses drift alone fails too
  EXPECT_EQ(compare_reports(base, cur, 0.10).counter_mismatches, 1u);
}

TEST(PerfBenchCompare, HandlesDisjointEntrySets) {
  PerfReport base, cur;
  base.entries = {entry("gone", 100.0, 1, 1), entry("kept", 100.0, 1, 1)};
  cur.entries = {entry("kept", 100.0, 1, 1), entry("new", 50.0, 2, 2)};
  const CompareReport cmp = compare_reports(base, cur, 0.10);
  ASSERT_EQ(cmp.rows.size(), 3u);
  EXPECT_EQ(cmp.rows[0].cls, PerfDelta::OnlyInBaseline);
  EXPECT_EQ(cmp.rows[1].cls, PerfDelta::Noise);
  EXPECT_EQ(cmp.rows[2].cls, PerfDelta::OnlyInCurrent);
  // A vanished benchmark counts as a regression; a new one does not.
  EXPECT_EQ(cmp.regressions, 1u);
}

/// Small, fast experiment configuration (mirrors test_sweep.cpp).
ExperimentConfig quick(const std::string& combo, DesignSpec design) {
  ExperimentConfig cfg;
  cfg.combo = combo;
  cfg.design = std::move(design);
  cfg.sys = SystemConfig::table1(/*scale=*/16);
  cfg.cpu_target_instructions = 150'000;
  cfg.gpu_target_instructions = 120'000;
  cfg.epoch_cycles = 50'000;
  cfg.max_cycles = 60'000'000;
  return cfg;
}

struct SliceCounters {
  u64 events = 0;
  u64 accesses = 0;
};

SliceCounters run_slice(u32 jobs) {
  std::vector<ExperimentConfig> cfgs;
  for (const char* combo : {"C1", "C3"}) {
    cfgs.push_back(quick(combo, DesignSpec::baseline()));
    cfgs.push_back(quick(combo, DesignSpec::hydrogen_full()));
  }
  SweepOptions opts;
  opts.jobs = jobs;
  SliceCounters out;
  for (const SweepRun& r : run_sweep(cfgs, opts)) {
    EXPECT_TRUE(r.ok) << r.combo << "/" << r.design << ": " << r.error;
    EXPECT_GT(r.result.engine_steps, 0u);
    out.events += r.result.engine_steps;
    out.accesses += r.result.hmstats[0].demand + r.result.hmstats[1].demand;
  }
  return out;
}

TEST(PerfBenchCounters, BitStableAcrossJobCountsAndReruns) {
  // The counters perfbench records for its sweep entry — summed engine steps
  // and demand accesses — must not depend on worker count or scheduling.
  const SliceCounters serial = run_slice(1);
  const SliceCounters parallel = run_slice(4);
  EXPECT_GT(serial.events, 0u);
  EXPECT_GT(serial.accesses, 0u);
  EXPECT_EQ(serial.events, parallel.events);
  EXPECT_EQ(serial.accesses, parallel.accesses);

  const SliceCounters again = run_slice(4);
  EXPECT_EQ(parallel.events, again.events);
  EXPECT_EQ(parallel.accesses, again.accesses);
}

TEST(PerfBenchCounters, EngineStepsRoundTripThroughJournal) {
  // engine_steps is a result field: it must survive the sweep journal so
  // --resume restores perfbench-relevant counters bit-exactly.
  JournalEntry e;
  e.key = "00112233'4455'6677";
  e.combo = "C1";
  e.design = "baseline";
  e.status = "ok";
  e.result.engine_steps = 0x123456789abcdefull;
  const std::optional<JournalEntry> back = parse_entry(serialize_entry(e));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->result.engine_steps, e.result.engine_steps);
}

}  // namespace
}  // namespace h2
