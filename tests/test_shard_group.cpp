// The sharded-harness contract (harness/shard_group.h):
//   - plan_slices() partitions every CPU core, GPU cluster and channel across
//     the shards exactly once, with unit counts per shard within one of each
//     other and fast channels in whole superchannel groups;
//   - results are bit-identical for every --shard-threads value (0 = one
//     thread per shard, 1 = sequential, any in between) — thread assignment
//     decides when a member reaches its barrier, never what it computes;
//   - cfg.shards is part of config_key (the partition changes every simulated
//     address) while cfg.shard_threads is not (pure execution detail);
//   - a sharded run checkpointed mid-flight restores bit-identically, and a
//     sharded checkpoint never restores into a different shard count.
#include "harness/shard_group.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>

#include "common/ckpt_io.h"
#include "harness/checkpoint.h"
#include "harness/experiment.h"
#include "harness/journal.h"

namespace h2 {
namespace {

/// Small, fast sharded experiment (mirrors test_experiment.cpp's quick()).
/// Table I at scale 16 has 8 CPU cores, 6 GPU clusters, 16 fast channels in
/// groups of 4 and 4 slow channels, so it splits cleanly up to 4 shards.
ExperimentConfig quick(u32 shards, DesignSpec design = DesignSpec::hydrogen_full()) {
  ExperimentConfig cfg;
  cfg.combo = "C1";
  cfg.design = std::move(design);
  cfg.sys = SystemConfig::table1(/*scale=*/16);
  cfg.cpu_target_instructions = 150'000;
  cfg.gpu_target_instructions = 120'000;
  cfg.epoch_cycles = 50'000;
  cfg.max_cycles = 60'000'000;
  cfg.shards = shards;
  return cfg;
}

/// Lossless render via the journal serialiser (u64 decimal, doubles as
/// hex-floats): comparing two dumps compares every result field bit for bit.
std::string dump(const ExperimentResult& r) {
  JournalEntry e;
  e.key = "k";
  e.combo = r.combo;
  e.design = r.design;
  e.status = "ok";
  e.result = r;
  return serialize_entry(e);
}

struct TempPath {
  explicit TempPath(const std::string& name)
      : path(::testing::TempDir() + name) {
    std::remove(path.c_str());
  }
  ~TempPath() { std::remove(path.c_str()); }
  const std::string path;
};

TEST(ShardGroupPlan, SlicesPartitionEveryUnitExactlyOnce) {
  for (u32 n : {2u, 3u, 4u}) {
    const ExperimentConfig cfg = quick(n);
    const auto slices = ShardGroup::plan_slices(cfg);
    ASSERT_EQ(slices.size(), n);

    std::set<u32> cpus, gpus;
    u32 fast = 0, slow = 0;
    for (u32 i = 0; i < n; ++i) {
      EXPECT_EQ(slices[i].shard, i);
      EXPECT_EQ(slices[i].num_shards, n);
      for (u32 c : slices[i].cpu_cores) {
        EXPECT_TRUE(cpus.insert(c).second) << "core " << c << " owned twice";
        EXPECT_LT(c, cfg.sys.cpu_cores);
      }
      for (u32 g : slices[i].gpu_clusters) {
        EXPECT_TRUE(gpus.insert(g).second) << "cluster " << g << " owned twice";
        EXPECT_LT(g, cfg.sys.gpu_clusters());
      }
      fast += slices[i].fast_channels;
      slow += slices[i].slow_channels;
      // Whole superchannel groups only: the decoupled partition's channel
      // ring is built per member in group units.
      EXPECT_EQ(slices[i].fast_channels % cfg.sys.mem.fast_group, 0u) << i;
      EXPECT_GT(slices[i].fast_channels, 0u) << i;
      EXPECT_GT(slices[i].slow_channels, 0u) << i;
    }
    EXPECT_EQ(cpus.size(), cfg.sys.cpu_cores) << "n=" << n;
    EXPECT_EQ(gpus.size(), cfg.sys.gpu_clusters()) << "n=" << n;
    EXPECT_EQ(fast, cfg.sys.mem.fast_channels) << "n=" << n;
    EXPECT_EQ(slow, cfg.sys.mem.slow_channels) << "n=" << n;
  }
}

TEST(ShardGroupPlan, UnitCountsBalancedWithinOne) {
  for (u32 n : {2u, 3u, 4u}) {
    const auto slices = ShardGroup::plan_slices(quick(n));
    u32 cpu_min = ~0u, cpu_max = 0, gpu_min = ~0u, gpu_max = 0;
    for (const auto& s : slices) {
      cpu_min = std::min(cpu_min, static_cast<u32>(s.cpu_cores.size()));
      cpu_max = std::max(cpu_max, static_cast<u32>(s.cpu_cores.size()));
      gpu_min = std::min(gpu_min, static_cast<u32>(s.gpu_clusters.size()));
      gpu_max = std::max(gpu_max, static_cast<u32>(s.gpu_clusters.size()));
    }
    EXPECT_LE(cpu_max, cpu_min + 1) << "n=" << n;
    EXPECT_LE(gpu_max, gpu_min + 1) << "n=" << n;
  }
}

TEST(ShardGroup, BitIdenticalAtEveryThreadCount) {
  // The headline contract: one group barrier protocol, any worker count.
  // T=1 runs members inline and sequentially; T=2 interleaves; T=0 gives
  // every member its own thread. All must produce the same bytes.
  ExperimentConfig cfg = quick(/*shards=*/2);
  cfg.shard_threads = 1;
  const std::string sequential = dump(run_experiment(cfg));

  for (u32 threads : {2u, 0u}) {
    cfg.shard_threads = threads;
    EXPECT_EQ(dump(run_experiment(cfg)), sequential)
        << "shard_threads=" << threads;
  }
}

TEST(ShardGroup, ShardsInConfigKeyButThreadsNot) {
  const ExperimentConfig one = quick(1);
  ExperimentConfig two = quick(2);
  EXPECT_NE(config_key(one), config_key(two));

  ExperimentConfig threaded = two;
  threaded.shard_threads = 4;
  EXPECT_EQ(config_key(two), config_key(threaded));
}

TEST(ShardGroup, MidRunRestoreIsBitIdentical) {
  const ExperimentConfig base = quick(/*shards=*/2);
  const ExperimentResult plain = run_experiment(base);
  ASSERT_GE(plain.epochs, 4u) << "config too small to snapshot mid-run";

  // Stride so exactly one snapshot lands strictly inside the run (the sole
  // multiple of (epochs/2 + 1) below the group epoch count).
  TempPath ckpt("test_shard_group_midrun.ckpt");
  ExperimentConfig with = base;
  with.checkpoint_path = ckpt.path;
  with.checkpoint_every = static_cast<u32>(plain.epochs / 2 + 1);
  EXPECT_EQ(dump(run_experiment(with)), dump(plain))
      << "writing group checkpoints perturbed the run";

  const auto info = peek_checkpoint(ckpt.path);
  ASSERT_TRUE(info.has_value());
  EXPECT_LT(info->epoch, plain.epochs);

  ExperimentConfig resumed = base;
  resumed.restore_path = ckpt.path;
  EXPECT_EQ(dump(run_experiment(resumed)), dump(plain));
}

TEST(ShardGroup, RefusesARestoreIntoADifferentShardCount) {
  // cfg.shards rides in config_key, so a monolithic checkpoint can never be
  // resumed sharded (or vice versa) — the partition changes every address.
  TempPath ckpt("test_shard_group_mismatch.ckpt");
  ExperimentConfig writer = quick(/*shards=*/2);
  writer.checkpoint_path = ckpt.path;
  (void)run_experiment(writer);

  ExperimentConfig other = quick(/*shards=*/1);
  other.restore_path = ckpt.path;
  try {
    (void)run_experiment(other);
    FAIL() << "sharded checkpoint restored into a monolithic config";
  } catch (const ckpt::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("config mismatch"), std::string::npos)
        << e.what();
  }
}

TEST(ShardGroup, EveryDesignRunsSharded) {
  // Smoke across the design matrix: the member build path must support every
  // policy the monolithic system does, and both sides must finish.
  const DesignSpec designs[] = {
      DesignSpec::baseline(), DesignSpec::waypart(), DesignSpec::hashcache(),
      DesignSpec::profess(),  DesignSpec::hydrogen_full()};
  for (const DesignSpec& d : designs) {
    const ExperimentResult r = run_experiment(quick(/*shards=*/2, d));
    EXPECT_TRUE(r.cpu_finished) << r.design;
    EXPECT_TRUE(r.gpu_finished) << r.design;
    EXPECT_GT(r.cpu_instructions, 0u) << r.design;
    EXPECT_GT(r.gpu_instructions, 0u) << r.design;
    EXPECT_GT(r.epochs, 0u) << r.design;
  }
}

}  // namespace
}  // namespace h2
