// Fault-spec grammar and injector mechanics (check/fault.h). The end-to-end
// detector-coverage matrix lives in tools/h2fault; these tests pin the parts
// the matrix builds on: spec parsing (including every malformed shape), the
// deterministic firing window, and per-thread arming.
#include "check/fault.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace h2::fault {
namespace {

TEST(FaultSpec, BareKindParsesWithDefaults) {
  const FaultSpec s = parse_spec("remap-flip");
  EXPECT_EQ(s.kind, Kind::RemapFlip);
  EXPECT_EQ(s.after, 0u);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.seed, 0u);
  EXPECT_EQ(s.stall_ms, 50u);
}

TEST(FaultSpec, EveryKindNameRoundTrips) {
  for (int i = 0; i < kNumKinds; ++i) {
    const Kind k = static_cast<Kind>(i);
    EXPECT_EQ(parse_spec(kind_name(k)).kind, k) << kind_name(k);
  }
}

TEST(FaultSpec, OptionsParse) {
  const FaultSpec s = parse_spec("dup-tag:after=100,count=2,seed=7");
  EXPECT_EQ(s.kind, Kind::DupTag);
  EXPECT_EQ(s.after, 100u);
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.seed, 7u);
  EXPECT_EQ(parse_spec("stall:for=250").stall_ms, 250u);
  EXPECT_EQ(parse_spec("throw:count=0").count, 0u);  // 0 = unlimited
}

TEST(FaultSpec, MalformedSpecsThrow) {
  // Every rejection names the offending token via std::invalid_argument.
  const std::vector<std::string> bad = {
      "",                      // no kind
      "flip-remap",            // unknown kind
      "remap-flip:",           // empty option list
      "throw:bogus=1",         // unknown key
      "throw:after",           // option without '='
      "throw:after=",          // empty number
      "throw:after=abc",       // non-digit number
      "stall:for=1x",          // trailing junk in number
      "throw:after=1,,",       // empty option between commas
      "throw:after=99999999999999999999",  // u64 overflow
  };
  for (const std::string& spec : bad) {
    EXPECT_THROW((void)parse_spec(spec), std::invalid_argument) << "'" << spec << "'";
  }
}

TEST(Injector, FiringWindowIsDeterministic) {
  // after=2,count=2: visits 0,1 skipped; 2,3 fire; 4+ exhausted. Twice over,
  // two injectors from the same spec behave identically.
  for (int rep = 0; rep < 2; ++rep) {
    Injector inj("time-skew:after=2,count=2");
    std::vector<bool> fires;
    for (int i = 0; i < 6; ++i) fires.push_back(inj.should_fire(Kind::TimeSkew));
    EXPECT_EQ(fires, (std::vector<bool>{false, false, true, true, false, false}));
    EXPECT_EQ(inj.seen(), 6u);
    EXPECT_EQ(inj.fired(), 2u);
  }
}

TEST(Injector, OtherKindsNeitherFireNorAdvanceTheWindow) {
  Injector inj("remap-flip:count=1");
  EXPECT_FALSE(inj.should_fire(Kind::DupTag));
  EXPECT_FALSE(inj.should_fire(Kind::Stall));
  EXPECT_EQ(inj.seen(), 0u);  // non-matching visits don't consume after=
  EXPECT_TRUE(inj.should_fire(Kind::RemapFlip));
}

TEST(Injector, CountZeroFiresForever) {
  Injector inj("drop-writeback:count=0");
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(inj.should_fire(Kind::DropWriteback));
  EXPECT_EQ(inj.fired(), 100u);
}

TEST(Scope, ArmsPerThreadAndNests) {
  EXPECT_EQ(current(), nullptr);
  EXPECT_FALSE(at(Kind::Throw));  // unarmed: the null test, nothing fires
  Injector outer("throw:count=0");
  {
    Scope s1(outer);
    EXPECT_EQ(current(), &outer);
    EXPECT_TRUE(at(Kind::Throw));
    Injector inner("stall");
    {
      Scope s2(inner);
      EXPECT_EQ(current(), &inner);
      EXPECT_FALSE(at(Kind::Throw));  // inner spec shadows the outer one
      EXPECT_TRUE(at(Kind::Stall));
    }
    EXPECT_EQ(current(), &outer);  // nesting restores the previous injector
  }
  EXPECT_EQ(current(), nullptr);
}

TEST(ThrowSynthetic, NamesTheArmedSpec) {
  Injector inj("throw-transient:seed=9");
  Scope s(inj);
  try {
    throw_synthetic(/*transient=*/true);
    FAIL() << "throw_synthetic returned";
  } catch (const TransientError& e) {
    EXPECT_NE(std::string(e.what()).find("throw-transient"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("seed=9"), std::string::npos);
  }
  // TransientError is a FaultError; permanent is a FaultError but not transient.
  try {
    throw_synthetic(/*transient=*/false);
    FAIL() << "throw_synthetic returned";
  } catch (const TransientError&) {
    FAIL() << "permanent fault threw the transient type";
  } catch (const FaultError&) {
  }
}

}  // namespace
}  // namespace h2::fault
