// Property battery for the DDR channel backend (mem/ddr_backend.h), driven
// by seeded random request streams and verified from the recorded command
// trace:
//  - JEDEC command legality: per-bank tRC (ACT->ACT), tRAS (ACT->PRE),
//    tRP (PRE->ACT), tRCD (ACT->column) and the bank-group tCCD_S/tCCD_L
//    separation between consecutive column commands;
//  - FR-FCFS: the consecutive row-hit bypass run never exceeds frfcfs_cap,
//    even under a saturating row-hit stream crafted to invite starvation;
//  - refresh: under saturating load every tREFI window is applied — the
//    per-rank REF count in the trace equals the elapsed-window arithmetic
//    exactly, never one short;
//  - posted-write watermarks: the queue drains exactly when occupancy
//    reaches wq_high and stops exactly at wq_low, never in between;
//  - command conservation: activations == precharges + open banks, and
//    every request produces exactly one column command.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "mem/ddr_backend.h"

namespace h2 {
namespace {

constexpr double kGhz = 3.2;

struct DdrCase {
  std::string name;
  DramTiming timing;
  DdrParams params;
  u64 seed;
};

/// Core-cycle conversions mirroring ChannelBackend::to_core, so the trace
/// checks compare in the same unit the backend schedules in.
u32 core_cycles(const DramTiming& t, u32 dev) {
  return static_cast<u32>(
      std::lround(dev * (kGhz * 1000.0 / t.device_mhz)));
}

std::vector<DdrCase> legality_cases() {
  std::vector<DdrCase> cases;
  for (const u64 seed : {11ull, 222ull, 3333ull}) {
    cases.push_back({"ddr4_s" + std::to_string(seed), ddr4_3200_timing(), {},
                     seed});
    cases.push_back({"hbm2e_s" + std::to_string(seed), hbm2e_timing(), {},
                     seed});
  }
  // A deliberately cramped variant: tiny refresh interval and a single bank
  // group force every legality window to actually bind.
  DramTiming cramped = ddr4_3200_timing();
  cramped.t_refi = 2000;
  cramped.bank_groups = 1;
  DdrParams tight;
  tight.frfcfs_cap = 2;
  tight.wq_depth = 8;
  tight.wq_high = 6;
  tight.wq_low = 2;
  cases.push_back({"cramped", cramped, tight, 77});
  return cases;
}

class DdrBackendProperty : public ::testing::TestWithParam<DdrCase> {};

/// Replays `iters` mixed requests with an advancing clock and returns the
/// recorded command trace. Addresses are drawn from a few rows per bank so
/// hits, misses, conflicts and refresh windows all occur.
std::vector<DdrCommand> run_stream(DdrBackend& be, const DramTiming& t,
                                   u64 seed, u32 iters, Cycle* end_out) {
  std::vector<DdrCommand> log;
  be.set_trace(&log);
  Rng rng(seed);
  Cycle now = 0;
  for (u32 i = 0; i < iters; ++i) {
    now += 1 + rng.next_below(40);
    const u64 bank = rng.next_below(t.total_banks());
    const u64 row = rng.next_below(6);
    const Addr addr =
        (row * t.total_banks() + bank) * t.row_bytes + rng.next_below(32) * 64;
    const u32 bytes = rng.chance(0.5) ? 64 : 256;
    be.request(now, addr, bytes, rng.chance(0.35), rng.chance(0.5), 0);
  }
  be.drain(now);
  be.set_trace(nullptr);
  if (end_out) *end_out = now;
  return log;
}

TEST_P(DdrBackendProperty, CommandLegalityFromTrace) {
  const DdrCase& c = GetParam();
  DdrBackend be(c.timing, kGhz, 0, c.params);
  Cycle end = 0;
  const std::vector<DdrCommand> log = run_stream(be, c.timing, c.seed, 2000, &end);
  ASSERT_GT(log.size(), 2000u);

  const u32 c_rcd = core_cycles(c.timing, c.timing.t_rcd);
  const u32 c_rp = core_cycles(c.timing, c.timing.t_rp);
  const u32 c_ras = core_cycles(c.timing, c.timing.t_ras);
  const u32 c_rc = c_ras + c_rp;
  const u32 c_rfc = core_cycles(c.timing, c.timing.t_rfc);
  const u32 c_ccd_s = core_cycles(c.timing, c.timing.t_ccd_s);
  const u32 c_ccd_l = core_cycles(c.timing, c.timing.t_ccd_l);

  struct BankState {
    Cycle last_act = 0;
    Cycle last_pre = 0;
    i64 open_row = -1;
    bool acted = false, pred = false;
  };
  std::map<u32, BankState> banks;
  std::map<u32, Cycle> rank_refresh;  // latest REF per rank
  bool have_col = false;
  Cycle last_col = 0;
  u32 last_col_rank = 0, last_col_group = 0;

  for (const DdrCommand& cmd : log) {
    if (cmd.kind == DdrCommand::kRefresh) {
      rank_refresh[cmd.rank] = cmd.at;
      // Refresh closes every row in the rank (implicit precharge-all).
      for (auto& [idx, st] : banks) {
        if (idx / c.timing.banks_per_rank == cmd.rank) st.open_row = -1;
      }
      continue;
    }
    BankState& st = banks[cmd.bank];
    switch (cmd.kind) {
      case DdrCommand::kAct:
        if (st.acted)
          EXPECT_GE(cmd.at, st.last_act + c_rc)
              << c.name << ": tRC violated on bank " << cmd.bank;
        if (st.pred)
          EXPECT_GE(cmd.at, st.last_pre + c_rp)
              << c.name << ": tRP violated on bank " << cmd.bank;
        if (auto it = rank_refresh.find(cmd.rank); it != rank_refresh.end())
          EXPECT_GE(cmd.at, it->second + c_rfc)
              << c.name << ": ACT during tRFC on rank " << cmd.rank;
        st.last_act = cmd.at;
        st.acted = true;
        st.open_row = cmd.row;
        break;
      case DdrCommand::kPre:
        ASSERT_TRUE(st.acted) << c.name << ": PRE before any ACT";
        EXPECT_GE(cmd.at, st.last_act + c_ras)
            << c.name << ": tRAS violated on bank " << cmd.bank;
        st.last_pre = cmd.at;
        st.pred = true;
        st.open_row = -1;
        break;
      case DdrCommand::kRead:
      case DdrCommand::kWrite: {
        ASSERT_TRUE(st.acted) << c.name << ": column command before any ACT";
        EXPECT_EQ(st.open_row, cmd.row)
            << c.name << ": column command to a row that is not open";
        EXPECT_GE(cmd.at, st.last_act + c_rcd)
            << c.name << ": tRCD violated on bank " << cmd.bank;
        if (have_col) {
          const u32 sep = (cmd.rank == last_col_rank &&
                           cmd.bank_group == last_col_group)
                              ? c_ccd_l
                              : c_ccd_s;
          EXPECT_GE(cmd.at, last_col + sep)
              << c.name << ": tCCD violated between column commands";
        }
        have_col = true;
        last_col = cmd.at;
        last_col_rank = cmd.rank;
        last_col_group = cmd.bank_group;
        break;
      }
      case DdrCommand::kRefresh:
        break;
    }
  }
}

TEST_P(DdrBackendProperty, ActivationPrechargePairing) {
  const DdrCase& c = GetParam();
  DdrBackend be(c.timing, kGhz, 0, c.params);
  Cycle end = 0;
  run_stream(be, c.timing, c.seed, 2000, &end);
  EXPECT_EQ(be.activations(), be.precharges() + be.open_banks());
  EXPECT_EQ(be.pending(), 0u) << "drain must empty the posted-write queue";
  EXPECT_EQ(be.refresh_windows(), be.expected_refresh_windows(end));
}

INSTANTIATE_TEST_SUITE_P(Cases, DdrBackendProperty,
                         ::testing::ValuesIn(legality_cases()),
                         [](const auto& info) { return info.param.name; });

// --- FR-FCFS starvation cap -------------------------------------------------

TEST(DdrFrFcfs, ConsecutiveBypassRunNeverExceedsCap) {
  // A stream engineered to invite unbounded bypassing: round-robin row hits
  // across every bank, so bank data is ready long before the saturated bus
  // queue tail — each request is a bypass candidate, across 3000 rounds.
  for (const u32 cap : {1u, 2u, 4u, 8u}) {
    DdrParams p;
    p.frfcfs_cap = cap;
    const DramTiming t = ddr4_3200_timing();
    DdrBackend be(t, kGhz, 0, p);
    Rng rng(cap * 1000 + 13);
    Cycle now = 0;
    for (u32 i = 0; i < 3000; ++i) {
      now += 1 + rng.next_below(3);
      // Row 0 of bank i%N: after each bank's first activation every access
      // is a row hit whose bank is idle while the bus backlog grows.
      const Addr addr = (i % t.total_banks()) * t.row_bytes +
                        rng.next_below(8) * 64;
      be.request(now, addr, 256, false, false, 0);
    }
    EXPECT_LE(be.max_bypass_run(), cap) << "cap=" << cap;
    EXPECT_GT(be.frfcfs_bypasses(), 0u)
        << "the stream must actually exercise the bypass path (cap=" << cap
        << ")";
  }
}

TEST(DdrFrFcfs, SeededSwarmRespectsCap) {
  for (const u64 seed : {1ull, 7ull, 42ull, 1234ull}) {
    DdrParams p;
    p.frfcfs_cap = 3;
    DdrBackend be(hbm2e_timing(), kGhz, 0, p);
    Rng rng(seed);
    Cycle now = 0;
    for (u32 i = 0; i < 1500; ++i) {
      now += rng.next_below(10);
      const Addr addr = rng.next_below(1u << 24) & ~63ull;
      be.request(now, addr, rng.chance(0.5) ? 64 : 256, rng.chance(0.3),
                 rng.chance(0.5), 0);
      ASSERT_LE(be.max_bypass_run(), p.frfcfs_cap) << "seed=" << seed;
    }
  }
}

// --- refresh under saturating load ------------------------------------------

TEST(DdrRefresh, NeverSkippedUnderSaturatingLoad) {
  DramTiming t = ddr4_3200_timing();
  t.t_refi = 400;  // many windows inside the replay
  t.ranks = 2;
  DdrBackend be(t, kGhz, 0, {});
  std::vector<DdrCommand> log;
  be.set_trace(&log);
  Rng rng(99);
  Cycle now = 0;
  for (u32 i = 0; i < 4000; ++i) {
    now += 1 + rng.next_below(8);  // saturating: requests outpace the bus
    be.request(now, rng.next_below(1u << 22) & ~63ull, 256, rng.chance(0.4),
               false, 0);
  }
  be.drain(now);

  const u64 expected = be.expected_refresh_windows(now);
  ASSERT_GT(expected, 10u) << "the stream must span many tREFI windows";
  EXPECT_EQ(be.refresh_windows(), expected);

  // Every window must appear once per rank in the command stream.
  std::map<u32, u64> refs_per_rank;
  for (const DdrCommand& cmd : log) {
    if (cmd.kind == DdrCommand::kRefresh) refs_per_rank[cmd.rank]++;
  }
  ASSERT_EQ(refs_per_rank.size(), t.ranks);
  for (const auto& [rank, n] : refs_per_rank) {
    EXPECT_EQ(n, expected) << "rank " << rank << " missed a refresh window";
  }
}

// --- posted-write watermarks ------------------------------------------------

TEST(DdrWriteDrain, WatermarksAreExact) {
  DdrParams p;
  p.wq_depth = 32;
  p.wq_high = 24;
  p.wq_low = 8;
  DramTiming t = ddr4_3200_timing();
  t.t_refi = 0;  // isolate the write path from refresh catch-up
  DdrBackend be(t, kGhz, 0, p);
  Rng rng(5);
  Cycle now = 0;
  u64 drains_seen = 0;
  u32 prev_depth = 0;
  for (u32 i = 0; i < 2000; ++i) {
    now += 1 + rng.next_below(6);
    be.request(now, rng.next_below(1u << 22) & ~63ull, 256, /*is_write=*/true,
               false, 0);
    const u32 depth = be.write_queue_depth();
    ASSERT_LT(depth, p.wq_high)
        << "occupancy must never be observed at/above the high watermark";
    if (be.write_drains() > drains_seen) {
      // The burst fired on this request: entry exactly at wq_high (the push
      // hit the mark), exit exactly at wq_low.
      ASSERT_EQ(prev_depth + 1, p.wq_high);
      ASSERT_EQ(depth, p.wq_low);
      drains_seen = be.write_drains();
    } else {
      ASSERT_EQ(depth, prev_depth + 1) << "no drain: the push must be the only change";
    }
    prev_depth = depth;
  }
  EXPECT_GT(drains_seen, 10u) << "the stream must trigger many drain bursts";
  be.drain(now);
  EXPECT_EQ(be.write_queue_depth(), 0u);
}

// --- per-request column conservation ----------------------------------------

TEST(DdrConservation, EveryRequestProducesOneColumnCommand) {
  DdrBackend be(ddr4_3200_timing(), kGhz, 0, {});
  std::vector<DdrCommand> log;
  be.set_trace(&log);
  Rng rng(31);
  Cycle now = 0;
  const u32 n = 1200;
  for (u32 i = 0; i < n; ++i) {
    now += 1 + rng.next_below(25);
    be.request(now, rng.next_below(1u << 24) & ~63ull, 64, rng.chance(0.5),
               false, 0);
  }
  be.drain(now);
  u64 cols = 0;
  for (const DdrCommand& cmd : log) {
    if (cmd.kind == DdrCommand::kRead || cmd.kind == DdrCommand::kWrite) cols++;
  }
  EXPECT_EQ(cols, n);
}

}  // namespace
}  // namespace h2
