// Parameterised per-workload property suite: every named workload model must
// be a well-formed, deterministic generator whose measured character matches
// its spec. One instantiation per Table II workload (19 total).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "trace/workloads.h"

namespace h2 {
namespace {

struct WorkloadCase {
  std::string name;
  bool gpu;
};

const WorkloadSpec& spec_of(const WorkloadCase& wc) {
  return wc.gpu ? gpu_workload_spec(wc.name) : cpu_workload_spec(wc.name);
}

class WorkloadProperty : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(WorkloadProperty, AddressesInFootprint) {
  const WorkloadSpec& s = spec_of(GetParam());
  SyntheticGenerator g(s, 11);
  for (int i = 0; i < 20'000; ++i) {
    const Access a = g.next();
    ASSERT_LT(a.addr, s.footprint_bytes);
    ASSERT_EQ(a.addr % 64, 0u) << "accesses are line-aligned";
  }
}

TEST_P(WorkloadProperty, DeterministicAndResettable) {
  const WorkloadSpec& s = spec_of(GetParam());
  SyntheticGenerator a(s, 5), b(s, 5);
  std::vector<Access> first;
  for (int i = 0; i < 512; ++i) {
    const Access x = a.next();
    const Access y = b.next();
    ASSERT_EQ(x.addr, y.addr);
    ASSERT_EQ(x.gap, y.gap);
    first.push_back(x);
  }
  a.reset();
  for (int i = 0; i < 512; ++i) ASSERT_EQ(a.next().addr, first[i].addr);
}

TEST_P(WorkloadProperty, MeasuredWriteFractionMatchesSpec) {
  const WorkloadSpec& s = spec_of(GetParam());
  SyntheticGenerator g(s, 23);
  const int n = 30'000;
  int writes = 0;
  for (int i = 0; i < n; ++i) writes += g.next().write;
  EXPECT_NEAR(writes / static_cast<double>(n), s.write_frac, 0.02) << s.name;
}

TEST_P(WorkloadProperty, MeasuredGapMatchesSpec) {
  const WorkloadSpec& s = spec_of(GetParam());
  SyntheticGenerator g(s, 29);
  const int n = 30'000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += g.next().gap;
  EXPECT_NEAR(sum / n, s.mean_gap, s.mean_gap * 0.1) << s.name;
}

TEST_P(WorkloadProperty, GpuModelsAreLatencyTolerant) {
  const WorkloadCase& wc = GetParam();
  if (!wc.gpu) GTEST_SKIP();
  SyntheticGenerator g(spec_of(wc), 31);
  int dependent = 0;
  for (int i = 0; i < 10'000; ++i) dependent += g.next().dependent;
  EXPECT_EQ(dependent, 0) << "GPU kernels must not serialise on loads";
}

TEST_P(WorkloadProperty, ReuseExists) {
  // Every workload model must show *some* block-level reuse (otherwise the
  // fast tier would be useless and the design space degenerate).
  const WorkloadSpec& s = spec_of(GetParam());
  SyntheticGenerator g(s, 37);
  std::set<Addr> blocks;
  const int n = 30'000;
  for (int i = 0; i < n; ++i) blocks.insert(g.next().addr / 256);
  EXPECT_LT(blocks.size(), static_cast<size_t>(n)) << s.name;
}

std::vector<WorkloadCase> all_cases() {
  std::vector<WorkloadCase> cases;
  for (const auto& n : cpu_workload_names()) cases.push_back({n, false});
  for (const auto& n : gpu_workload_names()) cases.push_back({n, true});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadProperty,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace h2
