#include "config/config_file.h"
#include "harness/config_loader.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

namespace h2 {
namespace {

/// Writes config text to a file under the gtest temp dir and returns its path.
std::string write_config(const std::string& name, const std::string& text) {
  const std::string path = testing::TempDir() + name;
  std::ofstream f(path);
  f << text;
  EXPECT_TRUE(f.good());
  return path;
}

TEST(ConfigFile, ParsesSectionsAndTypes) {
  ConfigFile cfg;
  cfg.parse(
      "# comment\n"
      "top = 1\n"
      "[sim]\n"
      "combo = C3        ; trailing comment\n"
      "epoch_cycles = 40000\n"
      "weight_cpu = 12.5\n"
      "cpu_only = true\n"
      "label = \"with spaces # not a comment\"\n");
  EXPECT_EQ(cfg.get_int("top"), 1);
  EXPECT_EQ(cfg.get_string("sim.combo"), "C3");
  EXPECT_EQ(cfg.get_u64("sim.epoch_cycles"), 40'000u);
  EXPECT_DOUBLE_EQ(cfg.get_double("sim.weight_cpu"), 12.5);
  EXPECT_TRUE(cfg.get_bool("sim.cpu_only"));
  EXPECT_EQ(cfg.get_string("sim.label"), "with spaces # not a comment");
}

TEST(ConfigFile, DefaultsForMissingKeys) {
  ConfigFile cfg;
  cfg.parse("[a]\nx = 1\n");
  EXPECT_EQ(cfg.get_int("a.missing", 7), 7);
  EXPECT_EQ(cfg.get_string("b.y", "dflt"), "dflt");
  EXPECT_FALSE(cfg.has("a.missing"));
  EXPECT_TRUE(cfg.has("a.x"));
}

TEST(ConfigFile, LaterAssignmentsWin) {
  ConfigFile cfg;
  cfg.parse("[s]\nk = 1\nk = 2\n");
  EXPECT_EQ(cfg.get_int("s.k"), 2);
}

TEST(ConfigFile, UnusedKeysDetected) {
  ConfigFile cfg;
  cfg.parse("[s]\nused = 1\ntypo_key = 2\n");
  (void)cfg.get_int("s.used");
  const auto unused = cfg.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "s.typo_key");
}

TEST(ConfigFile, SizeSuffixes) {
  EXPECT_EQ(ConfigFile::parse_size("1024"), 1024u);
  EXPECT_EQ(ConfigFile::parse_size("4kB"), 4096u);
  EXPECT_EQ(ConfigFile::parse_size("2MB"), 2u << 20);
  EXPECT_EQ(ConfigFile::parse_size("1GB"), 1ull << 30);
  EXPECT_EQ(ConfigFile::parse_size("1.5kb"), 1536u);
}

TEST(ConfigFile, BooleanSpellings) {
  ConfigFile cfg;
  cfg.parse("a = yes\nb = off\nc = 1\nd = FALSE\n");
  EXPECT_TRUE(cfg.get_bool("a"));
  EXPECT_FALSE(cfg.get_bool("b"));
  EXPECT_TRUE(cfg.get_bool("c"));
  EXPECT_FALSE(cfg.get_bool("d"));
}

TEST(ConfigLoader, BuildsExperimentFromText) {
  ConfigFile cfg;
  cfg.parse(
      "[sim]\n"
      "combo = C5\n"
      "design = hydrogen-dp+token\n"
      "mode = flat\n"
      "weight_cpu = 4\n"
      "[system]\n"
      "scale = 16\n"
      "[hybrid]\n"
      "assoc = 8\n"
      "block_bytes = 128\n"
      "[hydrogen]\n"
      "tok_frac = 0.25\n");
  const ExperimentConfig ec = experiment_from_config(cfg);
  EXPECT_EQ(ec.combo, "C5");
  EXPECT_EQ(ec.design.label, "hydrogen-dp+token");
  EXPECT_EQ(ec.mode, HybridMode::Flat);
  EXPECT_EQ(ec.assoc, 8u);
  EXPECT_EQ(ec.block_bytes, 128u);
  EXPECT_DOUBLE_EQ(ec.weight_cpu, 4.0);
  EXPECT_EQ(ec.sys.scale, 16u);
  EXPECT_DOUBLE_EQ(ec.design.hydrogen.fixed_tok_frac, 0.25);
}

TEST(ConfigLoader, AllDesignNamesResolve) {
  for (const char* name : {"baseline", "waypart", "hashcache", "profess", "hydrogen",
                           "hydrogen-dp", "hydrogen-dp+token", "hydrogen-setpart"}) {
    const DesignSpec d = design_from_name(name);
    EXPECT_EQ(d.label, name);
  }
}

// A typo'd key ("hybrid.asoc" instead of "hybrid.assoc") must abort a strict
// load — silently ignoring it would run a different experiment than the file
// describes — and must be tolerated when strict=false.
using ConfigLoaderStrictDeathTest = ::testing::Test;

TEST(ConfigLoaderStrictDeathTest, TypoKeyAbortsInStrictMode) {
  const std::string path = write_config(
      "typo_strict.cfg",
      "[sim]\ncombo = C2\n[hybrid]\nasoc = 8\n");
  EXPECT_DEATH(experiment_from_file(path, /*strict=*/true), "hybrid.asoc");
}

TEST(ConfigLoader, TypoKeyToleratedWhenNotStrict) {
  const std::string path = write_config(
      "typo_lenient.cfg",
      "[sim]\ncombo = C2\n[hybrid]\nasoc = 8\n");
  const ExperimentConfig ec = experiment_from_file(path, /*strict=*/false);
  EXPECT_EQ(ec.combo, "C2");
  EXPECT_EQ(ec.assoc, 4u);  // the typo'd key never reached hybrid.assoc
}

TEST(ConfigLoader, SetpartConsumesHydrogenKeys) {
  // hydrogen-setpart builds its policy from the same HydrogenConfig fields,
  // so hydrogen.* keys must be read (not rejected as unknown) for it too.
  ConfigFile cfg;
  cfg.parse(
      "[sim]\n"
      "design = hydrogen-setpart\n"
      "[hydrogen]\n"
      "cpu_capacity_frac = 0.5\n"
      "tok_frac = 0.25\n"
      "token = true\n");
  const ExperimentConfig ec = experiment_from_config(cfg);
  EXPECT_EQ(ec.design.kind, DesignSpec::Kind::SetPart);
  EXPECT_DOUBLE_EQ(ec.design.hydrogen.fixed_cpu_capacity_frac, 0.5);
  EXPECT_DOUBLE_EQ(ec.design.hydrogen.fixed_tok_frac, 0.25);
  EXPECT_TRUE(ec.design.hydrogen.token);
  EXPECT_TRUE(cfg.unused_keys().empty());
}

TEST(ConfigLoader, WayPartReadsItsOwnSectionWithHydrogenAlias) {
  // The dedicated [waypart] key is canonical...
  ConfigFile cfg;
  cfg.parse(
      "[sim]\n"
      "design = waypart\n"
      "[waypart]\n"
      "cpu_way_fraction = 0.5\n");
  const ExperimentConfig ec = experiment_from_config(cfg);
  EXPECT_EQ(ec.design.kind, DesignSpec::Kind::WayPart);
  EXPECT_DOUBLE_EQ(ec.design.cpu_way_fraction, 0.5);
  EXPECT_DOUBLE_EQ(ec.design.hydrogen.fixed_cpu_capacity_frac, 0.75);  // untouched
  EXPECT_TRUE(cfg.unused_keys().empty());

  // ... while hydrogen.cpu_capacity_frac stays readable as an alias (WayPart
  // historically piggybacked on that field), with the waypart key winning.
  ConfigFile alias;
  alias.parse(
      "[sim]\n"
      "design = waypart\n"
      "[hydrogen]\n"
      "cpu_capacity_frac = 0.25\n");
  EXPECT_DOUBLE_EQ(experiment_from_config(alias).design.cpu_way_fraction, 0.25);
  EXPECT_TRUE(alias.unused_keys().empty());

  ConfigFile both;
  both.parse(
      "[sim]\n"
      "design = waypart\n"
      "[hydrogen]\n"
      "cpu_capacity_frac = 0.25\n"
      "[waypart]\n"
      "cpu_way_fraction = 0.625\n");
  EXPECT_DOUBLE_EQ(experiment_from_config(both).design.cpu_way_fraction, 0.625);
}

TEST(ConfigLoader, WarmupAndTimelineKeysParse) {
  ConfigFile cfg;
  cfg.parse(
      "[sim]\n"
      "warmup_epochs = 3\n"
      "timeline = /tmp/epochs.csv\n");
  const ExperimentConfig ec = experiment_from_config(cfg);
  EXPECT_EQ(ec.warmup_epochs, 3u);
  EXPECT_EQ(ec.timeline_path, "/tmp/epochs.csv");
  EXPECT_TRUE(cfg.unused_keys().empty());
}

TEST(ConfigFile, WhereReportsOriginAndLine) {
  ConfigFile cfg;
  cfg.parse(
      "# comment\n"
      "[sim]\n"
      "combo = C3\n"
      "\n"
      "combo = C4\n",
      "demo.cfg");
  // Later assignments win, and where() tracks the winning one.
  EXPECT_EQ(cfg.where("sim.combo"), "demo.cfg:5");
  EXPECT_EQ(cfg.where("sim.missing"), "<unknown>");
  EXPECT_EQ(cfg.section_of("sim.combo"), "sim");
}

TEST(ConfigFile, SectionOfDisambiguatesDottedKeyNames) {
  // Key names may contain dots, so the section cannot be recovered from the
  // full key string; section_of() must come from the parse.
  ConfigFile cfg;
  cfg.parse("[sim]\nsub.key = 1\ntop.level = 2\n", "d.cfg");
  EXPECT_EQ(cfg.section_of("sim.sub.key"), "sim");
  cfg.parse("orphan = 3\n", "e.cfg");
  EXPECT_EQ(cfg.section_of("orphan"), "");
}

using ConfigFileDeathTest = ::testing::Test;

TEST(ConfigFileDeathTest, GetterErrorsNameFileAndLine) {
  ConfigFile cfg;
  cfg.parse("[sim]\nseed = banana\nweight_cpu = soup\nflag = maybe\n", "bad.cfg");
  EXPECT_DEATH((void)cfg.get_int("sim.seed"), "bad.cfg:2");
  EXPECT_DEATH((void)cfg.get_u64("sim.seed"), "bad.cfg:2");
  EXPECT_DEATH((void)cfg.get_double("sim.weight_cpu"), "bad.cfg:3");
  EXPECT_DEATH((void)cfg.get_bool("sim.flag"), "bad.cfg:4");
}

TEST(ConfigFileDeathTest, ParseErrorsNameFileAndLine) {
  ConfigFile broken_section, keyless;
  EXPECT_DEATH(broken_section.parse("[sim\ncombo = C1\n", "p.cfg"), "p.cfg:1");
  EXPECT_DEATH(keyless.parse("[sim]\njust words\n", "q.cfg"), "q.cfg:2");
}

TEST(ConfigLoaderStrictDeathTest, UnknownSectionAbortsWithLocation) {
  // [hydrgen] (typo'd section): every key under it would be silently dropped
  // as merely "unused" unless the section itself is rejected.
  const std::string path = write_config(
      "bad_section.cfg",
      "[sim]\ncombo = C2\n[hydrgen]\ntoken = true\n");
  EXPECT_DEATH(experiment_from_file(path, /*strict=*/true),
               "cfg:4: unknown section ..hydrgen");
}

TEST(ConfigLoaderStrictDeathTest, TopLevelKeyOutsideSectionAborts) {
  const std::string path = write_config(
      "no_section.cfg", "combo = C2\n[sim]\ndesign = baseline\n");
  EXPECT_DEATH(experiment_from_file(path, /*strict=*/true), "outside any section");
}

TEST(ConfigLoader, CheckedInConfigsAreValidAndStrict) {
  for (const char* path :
       {"configs/baseline.cfg", "configs/hydrogen.cfg", "configs/hashcache.cfg",
        "configs/profess.cfg", "configs/hydrogen_flat.cfg",
        "configs/waypart.cfg"}) {
    ConfigFile cfg;
    // ctest may run from build/ or build/tests/; probe upward.
    if (!cfg.load(path) && !cfg.load(std::string("../") + path) &&
        !cfg.load(std::string("../../") + path)) {
      GTEST_SKIP() << "configs/ not reachable from the test cwd";
    }
    const ExperimentConfig ec = experiment_from_config(cfg);
    EXPECT_FALSE(ec.combo.empty());
    EXPECT_TRUE(cfg.unused_keys().empty()) << path;
  }
}

}  // namespace
}  // namespace h2
