// Reconfiguration mechanics (paper Section IV-D): consistent-hashing way
// selection bounds the number of relocated blocks; lazy fixups and instant
// reconfiguration reach the same steady state; the alloc-bit bookkeeping
// stays coherent through arbitrary parameter changes.
#include <gtest/gtest.h>

#include <set>

#include "hybridmem/hybrid_memory.h"
#include "hydrogen/hydrogen_policy.h"

namespace h2 {
namespace {

HybridMemConfig small_cfg() {
  HybridMemConfig h;
  h.fast_capacity_bytes = 32 * 1024;  // 32 sets
  h.slow_capacity_bytes = 512 * 1024;
  h.remap_cache_bytes = 16 * 1024;
  return h;
}

HydrogenConfig static_cfg() {
  HydrogenConfig c;
  c.decoupled = true;
  c.token = false;
  c.search = false;
  return c;
}

/// Fills all CPU ways of every set with CPU blocks.
Cycle warm_cpu(HybridMemory& hm, Cycle t) {
  const u64 stride = 256ull * hm.num_sets();
  for (u32 set = 0; set < hm.num_sets(); ++set) {
    for (u64 blk = 0; blk < 3; ++blk) {
      t = hm.access(t, Requestor::Cpu, set * 256 + blk * stride, false) + 1;
    }
  }
  return t;
}

TEST(Reconfiguration, CapStepInvalidatesAtMostOneWayPerSet) {
  MemorySystem mem(MemSystemConfig::table1_default());
  HydrogenPolicy pol(static_cfg());
  HybridMemory hm(small_cfg(), &mem, &pol);
  Cycle t = warm_cpu(hm, 0);

  // cap 3 -> 2: exactly one way per set changes owner (HRW consistency).
  pol.apply_point(ParamPoint{2, 1, 0});
  u32 mismatched_total = 0;
  for (u32 set = 0; set < hm.num_sets(); ++set) {
    u32 mismatched = 0;
    for (u32 w = 0; w < hm.assoc(); ++w) {
      const RemapWay& rw = hm.table().way(set, w);
      if (rw.valid &&
          rw.owner_cpu != (pol.way_owner(set, w) == Requestor::Cpu)) {
        mismatched++;
      }
    }
    EXPECT_LE(mismatched, 1u) << "set " << set;
    mismatched_total += mismatched;
  }
  EXPECT_GT(mismatched_total, 0u);  // something must actually change
  (void)t;
}

TEST(Reconfiguration, LazyAndInstantConvergeToSameOwnership) {
  MemorySystem mem_a(MemSystemConfig::table1_default());
  MemorySystem mem_b(MemSystemConfig::table1_default());
  HydrogenPolicy pol_a(static_cfg());
  HydrogenPolicy pol_b(static_cfg());
  HybridMemory lazy(small_cfg(), &mem_a, &pol_a);
  HybridMemory instant(small_cfg(), &mem_b, &pol_b);

  Cycle t = warm_cpu(lazy, 0);
  warm_cpu(instant, 0);

  pol_a.apply_point(ParamPoint{2, 2, 0});
  pol_b.apply_point(ParamPoint{2, 2, 0});
  instant.run_instant_reconfig();

  // Touch every (set, way 0..3) block once in the lazy copy to trigger the
  // fixups, then ownership bits must agree everywhere with the instant copy.
  for (u32 set = 0; set < lazy.num_sets(); ++set) {
    for (u32 w = 0; w < lazy.assoc(); ++w) {
      const RemapWay rw = lazy.table().way(set, w);
      if (rw.valid) {
        t = lazy.access(t, rw.owner_cpu ? Requestor::Cpu : Requestor::Gpu,
                        rw.tag * 256, false) + 1;
      }
    }
  }
  for (u32 set = 0; set < lazy.num_sets(); ++set) {
    for (u32 w = 0; w < lazy.assoc(); ++w) {
      EXPECT_EQ(lazy.table().way(set, w).owner_cpu,
                instant.table().way(set, w).owner_cpu)
          << "set " << set << " way " << w;
    }
  }
}

TEST(Reconfiguration, LazyInvalidationWritesBackDirtyBlocks) {
  MemorySystem mem(MemSystemConfig::table1_default());
  HydrogenPolicy pol(static_cfg());
  HybridMemory hm(small_cfg(), &mem, &pol);
  // Fill CPU ways with dirty blocks.
  const u64 stride = 256ull * hm.num_sets();
  Cycle t = 0;
  for (u64 blk = 0; blk < 3; ++blk) t = hm.access(t, Requestor::Cpu, blk * stride, true) + 1;

  pol.apply_point(ParamPoint{1, 1, 0});  // shrink CPU share: 2 ways flip to GPU
  const u64 wb_before = hm.stats(Requestor::Cpu).dirty_writebacks +
                        hm.stats(Requestor::Gpu).dirty_writebacks;
  // GPU touches its newly-owned ways' blocks: misplaced dirty CPU blocks must
  // be written back before invalidation.
  for (u64 blk = 0; blk < 3; ++blk) t = hm.access(t, Requestor::Gpu, blk * stride, false) + 1;
  const u64 wb_after = hm.stats(Requestor::Cpu).dirty_writebacks +
                       hm.stats(Requestor::Gpu).dirty_writebacks;
  EXPECT_GT(wb_after, wb_before);
  EXPECT_GT(hm.stats(Requestor::Gpu).lazy_invalidations, 0u);
}

TEST(Reconfiguration, BwChangeRelocatesViaLazyMoves) {
  MemorySystem mem(MemSystemConfig::table1_default());
  HydrogenPolicy pol(static_cfg());
  HybridMemory hm(small_cfg(), &mem, &pol);
  Cycle t = warm_cpu(hm, 0);

  // Changing bw remaps some CPU ways to different channels; owners stay CPU,
  // so re-touching the blocks must use lazy *moves*, not invalidations.
  pol.apply_point(ParamPoint{3, 2, 0});
  const u64 moves_before = hm.stats(Requestor::Cpu).lazy_moves;
  for (u32 set = 0; set < hm.num_sets(); ++set) {
    for (u32 w = 0; w < hm.assoc(); ++w) {
      const RemapWay rw = hm.table().way(set, w);
      if (rw.valid && rw.owner_cpu) {
        t = hm.access(t, Requestor::Cpu, rw.tag * 256, false) + 1;
      }
    }
  }
  EXPECT_GT(hm.stats(Requestor::Cpu).lazy_moves, moves_before);
  // After the touches, every valid entry sits on its configured channel.
  for (u32 set = 0; set < hm.num_sets(); ++set) {
    for (u32 w = 0; w < hm.assoc(); ++w) {
      const RemapWay& rw = hm.table().way(set, w);
      if (rw.valid) EXPECT_EQ(rw.channel, pol.channel_of_way(set, w));
    }
  }
}

TEST(Reconfiguration, InstantReconfigIsIdempotent) {
  MemorySystem mem(MemSystemConfig::table1_default());
  HydrogenPolicy pol(static_cfg());
  HybridMemory hm(small_cfg(), &mem, &pol);
  warm_cpu(hm, 0);
  pol.apply_point(ParamPoint{2, 2, 0});
  hm.run_instant_reconfig();
  // Snapshot, run again, compare: nothing should change.
  std::vector<RemapWay> snap;
  for (u32 s = 0; s < hm.num_sets(); ++s) {
    for (u32 w = 0; w < hm.assoc(); ++w) snap.push_back(hm.table().way(s, w));
  }
  hm.run_instant_reconfig();
  size_t i = 0;
  for (u32 s = 0; s < hm.num_sets(); ++s) {
    for (u32 w = 0; w < hm.assoc(); ++w, ++i) {
      EXPECT_EQ(hm.table().way(s, w).valid, snap[i].valid);
      EXPECT_EQ(hm.table().way(s, w).tag, snap[i].tag);
      EXPECT_EQ(hm.table().way(s, w).channel, snap[i].channel);
    }
  }
}

TEST(Reconfiguration, TokenOnlyChangesNeedNoDataMovement) {
  // Paper IV-D: applying a new tok value is free — no lazy fixups follow.
  MemorySystem mem(MemSystemConfig::table1_default());
  HydrogenConfig cfg = static_cfg();
  cfg.token = true;
  HydrogenPolicy pol(cfg);
  HybridMemory hm(small_cfg(), &mem, &pol);
  Cycle t = warm_cpu(hm, 0);

  const ParamPoint p = pol.active_point();
  pol.apply_point(ParamPoint{p.cap, p.bw, (p.tok + 1) % 8});
  for (u32 set = 0; set < hm.num_sets(); ++set) {
    for (u32 w = 0; w < hm.assoc(); ++w) {
      const RemapWay rw = hm.table().way(set, w);
      if (rw.valid && rw.owner_cpu) {
        t = hm.access(t, Requestor::Cpu, rw.tag * 256, false) + 1;
      }
    }
  }
  EXPECT_EQ(hm.stats(Requestor::Cpu).lazy_invalidations, 0u);
  EXPECT_EQ(hm.stats(Requestor::Cpu).lazy_moves, 0u);
}

}  // namespace
}  // namespace h2
