// Reconfiguration mechanics (paper Section IV-D): consistent-hashing way
// selection bounds the number of relocated blocks; lazy fixups and instant
// reconfiguration reach the same steady state; the alloc-bit bookkeeping
// stays coherent through arbitrary parameter changes.
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <string>
#include <vector>

#include "check/epoch_schedule.h"
#include "common/rng.h"
#include "hybridmem/hybrid_memory.h"
#include "hydrogen/hydrogen_policy.h"

namespace h2 {
namespace {

HybridMemConfig small_cfg() {
  HybridMemConfig h;
  h.fast_capacity_bytes = 32 * 1024;  // 32 sets
  h.slow_capacity_bytes = 512 * 1024;
  h.remap_cache_bytes = 16 * 1024;
  return h;
}

HydrogenConfig static_cfg() {
  HydrogenConfig c;
  c.decoupled = true;
  c.token = false;
  c.search = false;
  return c;
}

/// Fills all CPU ways of every set with CPU blocks.
Cycle warm_cpu(HybridMemory& hm, Cycle t) {
  const u64 stride = 256ull * hm.num_sets();
  for (u32 set = 0; set < hm.num_sets(); ++set) {
    for (u64 blk = 0; blk < 3; ++blk) {
      t = hm.access(t, Requestor::Cpu, set * 256 + blk * stride, false) + 1;
    }
  }
  return t;
}

TEST(Reconfiguration, CapStepInvalidatesAtMostOneWayPerSet) {
  MemorySystem mem(MemSystemConfig::table1_default());
  HydrogenPolicy pol(static_cfg());
  HybridMemory hm(small_cfg(), &mem, &pol);
  Cycle t = warm_cpu(hm, 0);

  // cap 3 -> 2: exactly one way per set changes owner (HRW consistency).
  pol.apply_point(ParamPoint{2, 1, 0});
  u32 mismatched_total = 0;
  for (u32 set = 0; set < hm.num_sets(); ++set) {
    u32 mismatched = 0;
    for (u32 w = 0; w < hm.assoc(); ++w) {
      const RemapWay& rw = hm.table().way(set, w);
      if (rw.valid &&
          rw.owner_cpu != (pol.way_owner(set, w) == Requestor::Cpu)) {
        mismatched++;
      }
    }
    EXPECT_LE(mismatched, 1u) << "set " << set;
    mismatched_total += mismatched;
  }
  EXPECT_GT(mismatched_total, 0u);  // something must actually change
  (void)t;
}

TEST(Reconfiguration, LazyAndInstantConvergeToSameOwnership) {
  MemorySystem mem_a(MemSystemConfig::table1_default());
  MemorySystem mem_b(MemSystemConfig::table1_default());
  HydrogenPolicy pol_a(static_cfg());
  HydrogenPolicy pol_b(static_cfg());
  HybridMemory lazy(small_cfg(), &mem_a, &pol_a);
  HybridMemory instant(small_cfg(), &mem_b, &pol_b);

  Cycle t = warm_cpu(lazy, 0);
  warm_cpu(instant, 0);

  pol_a.apply_point(ParamPoint{2, 2, 0});
  pol_b.apply_point(ParamPoint{2, 2, 0});
  instant.run_instant_reconfig();

  // Touch every (set, way 0..3) block once in the lazy copy to trigger the
  // fixups, then ownership bits must agree everywhere with the instant copy.
  for (u32 set = 0; set < lazy.num_sets(); ++set) {
    for (u32 w = 0; w < lazy.assoc(); ++w) {
      const RemapWay rw = lazy.table().way(set, w);
      if (rw.valid) {
        t = lazy.access(t, rw.owner_cpu ? Requestor::Cpu : Requestor::Gpu,
                        rw.tag * 256, false) + 1;
      }
    }
  }
  for (u32 set = 0; set < lazy.num_sets(); ++set) {
    for (u32 w = 0; w < lazy.assoc(); ++w) {
      EXPECT_EQ(lazy.table().way(set, w).owner_cpu,
                instant.table().way(set, w).owner_cpu)
          << "set " << set << " way " << w;
    }
  }
}

TEST(Reconfiguration, LazyInvalidationWritesBackDirtyBlocks) {
  MemorySystem mem(MemSystemConfig::table1_default());
  HydrogenPolicy pol(static_cfg());
  HybridMemory hm(small_cfg(), &mem, &pol);
  // Fill CPU ways with dirty blocks.
  const u64 stride = 256ull * hm.num_sets();
  Cycle t = 0;
  for (u64 blk = 0; blk < 3; ++blk) t = hm.access(t, Requestor::Cpu, blk * stride, true) + 1;

  pol.apply_point(ParamPoint{1, 1, 0});  // shrink CPU share: 2 ways flip to GPU
  const u64 wb_before = hm.stats(Requestor::Cpu).dirty_writebacks +
                        hm.stats(Requestor::Gpu).dirty_writebacks;
  // GPU touches its newly-owned ways' blocks: misplaced dirty CPU blocks must
  // be written back before invalidation.
  for (u64 blk = 0; blk < 3; ++blk) t = hm.access(t, Requestor::Gpu, blk * stride, false) + 1;
  const u64 wb_after = hm.stats(Requestor::Cpu).dirty_writebacks +
                       hm.stats(Requestor::Gpu).dirty_writebacks;
  EXPECT_GT(wb_after, wb_before);
  EXPECT_GT(hm.stats(Requestor::Gpu).lazy_invalidations, 0u);
}

TEST(Reconfiguration, BwChangeRelocatesViaLazyMoves) {
  MemorySystem mem(MemSystemConfig::table1_default());
  HydrogenPolicy pol(static_cfg());
  HybridMemory hm(small_cfg(), &mem, &pol);
  Cycle t = warm_cpu(hm, 0);

  // Changing bw remaps some CPU ways to different channels; owners stay CPU,
  // so re-touching the blocks must use lazy *moves*, not invalidations.
  pol.apply_point(ParamPoint{3, 2, 0});
  const u64 moves_before = hm.stats(Requestor::Cpu).lazy_moves;
  for (u32 set = 0; set < hm.num_sets(); ++set) {
    for (u32 w = 0; w < hm.assoc(); ++w) {
      const RemapWay rw = hm.table().way(set, w);
      if (rw.valid && rw.owner_cpu) {
        t = hm.access(t, Requestor::Cpu, rw.tag * 256, false) + 1;
      }
    }
  }
  EXPECT_GT(hm.stats(Requestor::Cpu).lazy_moves, moves_before);
  // After the touches, every valid entry sits on its configured channel.
  for (u32 set = 0; set < hm.num_sets(); ++set) {
    for (u32 w = 0; w < hm.assoc(); ++w) {
      const RemapWay& rw = hm.table().way(set, w);
      if (rw.valid) EXPECT_EQ(rw.channel, pol.channel_of_way(set, w));
    }
  }
}

TEST(Reconfiguration, InstantReconfigIsIdempotent) {
  MemorySystem mem(MemSystemConfig::table1_default());
  HydrogenPolicy pol(static_cfg());
  HybridMemory hm(small_cfg(), &mem, &pol);
  warm_cpu(hm, 0);
  pol.apply_point(ParamPoint{2, 2, 0});
  hm.run_instant_reconfig();
  // Snapshot, run again, compare: nothing should change.
  std::vector<RemapWay> snap;
  for (u32 s = 0; s < hm.num_sets(); ++s) {
    for (u32 w = 0; w < hm.assoc(); ++w) snap.push_back(hm.table().way(s, w));
  }
  hm.run_instant_reconfig();
  size_t i = 0;
  for (u32 s = 0; s < hm.num_sets(); ++s) {
    for (u32 w = 0; w < hm.assoc(); ++w, ++i) {
      EXPECT_EQ(hm.table().way(s, w).valid, snap[i].valid);
      EXPECT_EQ(hm.table().way(s, w).tag, snap[i].tag);
      EXPECT_EQ(hm.table().way(s, w).channel, snap[i].channel);
    }
  }
}

TEST(Reconfiguration, TokenOnlyChangesNeedNoDataMovement) {
  // Paper IV-D: applying a new tok value is free — no lazy fixups follow.
  MemorySystem mem(MemSystemConfig::table1_default());
  HydrogenConfig cfg = static_cfg();
  cfg.token = true;
  HydrogenPolicy pol(cfg);
  HybridMemory hm(small_cfg(), &mem, &pol);
  Cycle t = warm_cpu(hm, 0);

  const ParamPoint p = pol.active_point();
  pol.apply_point(ParamPoint{p.cap, p.bw, (p.tok + 1) % 8});
  for (u32 set = 0; set < hm.num_sets(); ++set) {
    for (u32 w = 0; w < hm.assoc(); ++w) {
      const RemapWay rw = hm.table().way(set, w);
      if (rw.valid && rw.owner_cpu) {
        t = hm.access(t, Requestor::Cpu, rw.tag * 256, false) + 1;
      }
    }
  }
  EXPECT_EQ(hm.stats(Requestor::Cpu).lazy_invalidations, 0u);
  EXPECT_EQ(hm.stats(Requestor::Cpu).lazy_moves, 0u);
}

// --- lazy_fixups decision matrix -----------------------------------------
//
// The fixup has three outcomes — invalidate (owner flipped), move (owner
// kept, channel moved), no-op — chosen from four input bits: the way's
// recorded alloc bit, the side the new configuration assigns, the dirty
// bit, and whether the configured channel moved. A scripted policy stages
// each of the 16 states directly, so every branch and counter is pinned.

/// A policy test double whose owner/channel answers are plain settable
/// fields. All ways are allowed to both sides and migrations always pass,
/// so a single access stages exactly the table state the test asks for.
class ScriptedPolicy final : public PartitionPolicy {
 public:
  const char* name() const override { return "scripted"; }
  u32 channel_of_way(u32 set, u32 way) const override {
    (void)set;
    return channel_[way];
  }
  bool way_allowed(u32, u32, Requestor) const override { return true; }
  Requestor way_owner(u32 set, u32 way) const override {
    (void)set;
    return owner_cpu_[way] ? Requestor::Cpu : Requestor::Gpu;
  }
  bool allow_migration(const PolicyContext&, bool) override { return true; }
  i32 pick_swap_way(const PolicyContext&, u32) override {
    const i32 w = swap_with_;
    swap_with_ = -1;  // one-shot: only the next hit swaps
    return w;
  }
  // Rewiring the scripted answers is this double's "reconfiguration", so it
  // must honour the PartitionPolicy contract and invalidate the flat
  // mapping cache like the real policies do.
  void set_owner(u32 way, bool cpu) { owner_cpu_[way] = cpu; invalidate_mapping(); }
  void set_channel(u32 way, u32 ch) { channel_[way] = ch; invalidate_mapping(); }
  void arm_swap(i32 way) { swap_with_ = way; }

 private:
  std::array<bool, 8> owner_cpu_{true, true, true, true, true, true, true, true};
  std::array<u32, 8> channel_{};
  i32 swap_with_ = -1;
};

/// Finds the way in set 0 holding `tag`, or -1.
i32 find_way(const HybridMemory& hm, u64 tag) {
  for (u32 w = 0; w < hm.assoc(); ++w) {
    const RemapWay& rw = hm.table().way(0, w);
    if (rw.valid && rw.tag == tag) return static_cast<i32>(w);
  }
  return -1;
}

void run_fixup_combo(bool old_cpu, bool want_cpu, bool dirty, bool ch_moved) {
  MemorySystem mem(MemSystemConfig::table1_default());
  ScriptedPolicy pol;
  for (u32 w = 0; w < 8; ++w) {
    pol.set_owner(w, old_cpu);
    pol.set_channel(w, 0);
  }
  HybridMemory hm(small_cfg(), &mem, &pol);
  const Requestor old_cls = old_cpu ? Requestor::Cpu : Requestor::Gpu;
  const Requestor new_cls = want_cpu ? Requestor::Cpu : Requestor::Gpu;

  // One miss stages the block: tag 0 in set 0, owner/channel from the
  // scripted policy, dirty iff the staging access was a write.
  Cycle t = hm.access(0, old_cls, 0, dirty) + 1;
  const i32 way = find_way(hm, 0);
  ASSERT_GE(way, 0);
  ASSERT_EQ(hm.table().way(0, way).owner_cpu, old_cpu);
  ASSERT_EQ(hm.table().way(0, way).dirty, dirty);

  // "Reconfigure": rewire the scripted answers, then let the next hit fix up.
  for (u32 w = 0; w < 8; ++w) {
    pol.set_owner(w, want_cpu);
    if (ch_moved) pol.set_channel(w, 1);
  }
  const u64 inv0 = hm.stats(new_cls).lazy_invalidations;
  const u64 mov0 = hm.stats(new_cls).lazy_moves;
  const u64 wb0 = hm.stats(Requestor::Cpu).dirty_writebacks +
                  hm.stats(Requestor::Gpu).dirty_writebacks;
  t = hm.access(t, new_cls, 0, false) + 1;

  const RemapWay& rw = hm.table().way(0, static_cast<u32>(way));
  const u64 wb1 = hm.stats(Requestor::Cpu).dirty_writebacks +
                  hm.stats(Requestor::Gpu).dirty_writebacks;
  if (old_cpu != want_cpu) {
    // Owner flipped: invalidate after the access; dirty data is written back
    // first. The channel question is moot — the way is empty afterwards.
    EXPECT_EQ(hm.stats(new_cls).lazy_invalidations, inv0 + 1);
    EXPECT_EQ(hm.stats(new_cls).lazy_moves, mov0);
    EXPECT_EQ(wb1, wb0 + (dirty ? 1 : 0));
    EXPECT_FALSE(rw.valid);
    EXPECT_EQ(rw.tag, kInvalidTag);
    EXPECT_EQ(rw.owner_cpu, want_cpu);  // alloc bit refreshed, not stuck
  } else if (ch_moved) {
    // Same owner, way re-homed: relocate, keep the block (and its dirt).
    EXPECT_EQ(hm.stats(new_cls).lazy_invalidations, inv0);
    EXPECT_EQ(hm.stats(new_cls).lazy_moves, mov0 + 1);
    EXPECT_EQ(wb1, wb0);
    EXPECT_TRUE(rw.valid);
    EXPECT_EQ(rw.channel, 1u);
    EXPECT_EQ(rw.dirty, dirty);
  } else {
    // Configuration unchanged: the fixup must be a strict no-op.
    EXPECT_EQ(hm.stats(new_cls).lazy_invalidations, inv0);
    EXPECT_EQ(hm.stats(new_cls).lazy_moves, mov0);
    EXPECT_EQ(wb1, wb0);
    EXPECT_TRUE(rw.valid);
    EXPECT_EQ(rw.channel, 0u);
    EXPECT_EQ(rw.dirty, dirty);
  }
}

TEST(LazyFixupMatrix, EveryOwnerDirtyChannelCombination) {
  for (int old_cpu = 0; old_cpu < 2; ++old_cpu) {
    for (int want_cpu = 0; want_cpu < 2; ++want_cpu) {
      for (int dirty = 0; dirty < 2; ++dirty) {
        for (int ch_moved = 0; ch_moved < 2; ++ch_moved) {
          SCOPED_TRACE("old_cpu=" + std::to_string(old_cpu) +
                       " want_cpu=" + std::to_string(want_cpu) +
                       " dirty=" + std::to_string(dirty) +
                       " ch_moved=" + std::to_string(ch_moved));
          run_fixup_combo(old_cpu, want_cpu, dirty, ch_moved);
        }
      }
    }
  }
}

TEST(LazyFixupMatrix, SwapIntoNeverFilledWayRefreshesAllocBit) {
  // Regression (see do_fast_swap): a never-filled way carries the
  // default-constructed alloc bit (GPU). Swapping a CPU block into it must
  // refresh the bit, or the very next hit "fixes up" the freshly promoted
  // block with a spurious invalidation.
  MemorySystem mem(MemSystemConfig::table1_default());
  ScriptedPolicy pol;  // all ways CPU-owned, channel 0
  HybridMemory hm(small_cfg(), &mem, &pol);
  Cycle t = hm.access(0, Requestor::Cpu, 0, false) + 1;
  const i32 w0 = find_way(hm, 0);
  ASSERT_GE(w0, 0);
  const u32 target = (static_cast<u32>(w0) + 1) % hm.assoc();
  ASSERT_FALSE(hm.table().way(0, target).valid);
  ASSERT_FALSE(hm.table().way(0, target).owner_cpu);  // stale default bit

  pol.arm_swap(static_cast<i32>(target));
  t = hm.access(t, Requestor::Cpu, 0, false) + 1;  // hit -> swap into target
  ASSERT_EQ(find_way(hm, 0), static_cast<i32>(target));
  EXPECT_TRUE(hm.table().way(0, target).owner_cpu);

  const u64 inv0 = hm.stats(Requestor::Cpu).lazy_invalidations;
  t = hm.access(t, Requestor::Cpu, 0, false) + 1;  // hit in the swapped way
  EXPECT_EQ(hm.stats(Requestor::Cpu).lazy_invalidations, inv0);
  EXPECT_TRUE(hm.table().way(0, target).valid);
}

// --- property/fuzz: random schedules -------------------------------------

u64 resident_count(const HybridMemory& hm) {
  u64 n = 0;
  for (u32 s = 0; s < hm.num_sets(); ++s) {
    for (u32 w = 0; w < hm.assoc(); ++w) n += hm.table().way(s, w).valid;
  }
  return n;
}

/// Returns the first tag resident in two table entries, or kInvalidTag.
u64 first_duplicate_tag(const HybridMemory& hm) {
  std::set<u64> seen;
  for (u32 s = 0; s < hm.num_sets(); ++s) {
    for (u32 w = 0; w < hm.assoc(); ++w) {
      const RemapWay& rw = hm.table().way(s, w);
      if (rw.valid && !seen.insert(rw.tag).second) return rw.tag;
    }
  }
  return kInvalidTag;
}

/// Runs `sched` one step per "epoch" against a warmed hybrid memory,
/// touching every resident block after each step (the lazy-fixup trigger).
/// Deterministic given the schedule, so failures shrink cleanly. Returns ""
/// on success, else a description of the violated invariant.
std::string run_schedule_property(const EpochSchedule& sched) {
  MemorySystem mem(MemSystemConfig::table1_default());
  HydrogenPolicy pol(static_cfg());
  HybridMemory hm(small_cfg(), &mem, &pol);
  Cycle t = warm_cpu(hm, 0);

  for (size_t i = 0; i < sched.steps.size(); ++i) {
    const std::string at = "step " + std::to_string(i) + " (" +
                           to_string(sched.steps[i]) + "): ";
    // Applying a step touches only policy state; data moves lazily.
    std::vector<RemapWay> snap;
    for (u32 s = 0; s < hm.num_sets(); ++s) {
      for (u32 w = 0; w < hm.assoc(); ++w) snap.push_back(hm.table().way(s, w));
    }
    (void)apply_schedule_step(sched.steps[i], pol);
    size_t k = 0;
    for (u32 s = 0; s < hm.num_sets(); ++s) {
      for (u32 w = 0; w < hm.assoc(); ++w, ++k) {
        const RemapWay& rw = hm.table().way(s, w);
        if (rw.valid != snap[k].valid || rw.tag != snap[k].tag ||
            rw.channel != snap[k].channel || rw.owner_cpu != snap[k].owner_cpu) {
          return at + "apply_schedule_step mutated the remap table";
        }
      }
    }

    // Touch every resident block once (by its recorded side, so each access
    // hits); residency may only fall, and exactly by the invalidations.
    const u64 before = resident_count(hm);
    const u64 inv_before = hm.stats(Requestor::Cpu).lazy_invalidations +
                           hm.stats(Requestor::Gpu).lazy_invalidations;
    for (const RemapWay& rw : snap) {
      if (!rw.valid) continue;
      t = hm.access(t, rw.owner_cpu ? Requestor::Cpu : Requestor::Gpu,
                    rw.tag * 256, false) + 1;
    }
    const u64 after = resident_count(hm);
    const u64 invalidated = hm.stats(Requestor::Cpu).lazy_invalidations +
                            hm.stats(Requestor::Gpu).lazy_invalidations -
                            inv_before;
    if (before - after != invalidated) {
      return at + "resident blocks not conserved: " + std::to_string(before) +
             " -> " + std::to_string(after) + " with " +
             std::to_string(invalidated) + " lazy invalidation(s)";
    }
    const u64 dup = first_duplicate_tag(hm);
    if (dup != kInvalidTag) {
      return at + "remap table not a bijection (tag " + std::to_string(dup) +
             " resident twice)";
    }
    // After the touches every surviving entry is coherent with the active
    // configuration: correct alloc bit, correct channel.
    for (u32 s = 0; s < hm.num_sets(); ++s) {
      for (u32 w = 0; w < hm.assoc(); ++w) {
        const RemapWay& rw = hm.table().way(s, w);
        if (!rw.valid) continue;
        if (rw.owner_cpu != (pol.way_owner(s, w) == Requestor::Cpu)) {
          return at + "stale alloc bit survives at set " + std::to_string(s) +
                 " way " + std::to_string(w);
        }
        if (rw.channel != pol.channel_of_way(s, w)) {
          return at + "stale channel survives at set " + std::to_string(s) +
                 " way " + std::to_string(w);
        }
      }
    }
  }
  return "";
}

TEST(ReconfigurationFuzz, RandomSchedulesConserveResidencyAndBijection) {
  const char* pool[] = {"grow",      "shrink",    "bw+",         "bw-",
                        "hold",      "tok+",      "tok-",        "frac=0.25",
                        "frac=0.75", "point=2/1/0", "point=3/3/0", "frac=0.5"};
  constexpr size_t kPool = sizeof(pool) / sizeof(pool[0]);
  Rng rng(0xC0FFEEull);
  for (int iter = 0; iter < 24; ++iter) {
    std::string text;
    const u64 len = 3 + rng.next_below(6);
    for (u64 i = 0; i < len; ++i) {
      if (i) text += ',';
      text += pool[rng.next_below(kPool)];
    }
    const EpochSchedule sched = parse_schedule(text);
    const std::string why = run_schedule_property(sched);
    if (why.empty()) continue;

    // Shrink-on-fail: greedily drop ops while the property still fails, then
    // report the minimal schedule string so the failure replays by hand.
    EpochSchedule minimal = sched;
    bool shrunk = true;
    while (shrunk && minimal.steps.size() > 1) {
      shrunk = false;
      for (size_t i = 0; i < minimal.steps.size(); ++i) {
        EpochSchedule cand = minimal;
        cand.steps.erase(cand.steps.begin() + static_cast<long>(i));
        if (!run_schedule_property(cand).empty()) {
          minimal = cand;
          shrunk = true;
          break;
        }
      }
    }
    FAIL() << "schedule \"" << to_string(sched) << "\" violates: " << why
           << "\n  minimal reproducer: \"" << to_string(minimal) << "\" ("
           << run_schedule_property(minimal) << ")";
  }
}

}  // namespace
}  // namespace h2
