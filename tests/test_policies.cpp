#include "policies/baseline.h"
#include "policies/hashcache.h"
#include "policies/profess.h"
#include "policies/waypart.h"

#include <gtest/gtest.h>

namespace h2 {
namespace {

PolicyContext ctx(Requestor cls, u32 set = 0, u64 tag = 0) {
  PolicyContext c;
  c.cls = cls;
  c.set = set;
  c.tag = tag;
  return c;
}

TEST(Baseline, SharesEverything) {
  BaselinePolicy p;
  p.bind(4, 4, 64);
  for (u32 s = 0; s < 8; ++s) {
    for (u32 w = 0; w < 4; ++w) {
      EXPECT_TRUE(p.way_allowed(s, w, Requestor::Cpu));
      EXPECT_TRUE(p.way_allowed(s, w, Requestor::Gpu));
      EXPECT_LT(p.channel_of_way(s, w), 4u);
    }
  }
  EXPECT_TRUE(p.allow_migration(ctx(Requestor::Gpu), true));
}

TEST(Baseline, InterleavesWaysAcrossChannels) {
  BaselinePolicy p;
  p.bind(4, 4, 64);
  // Within a set, the 4 ways cover all 4 channels.
  for (u32 s = 0; s < 8; ++s) {
    u32 mask = 0;
    for (u32 w = 0; w < 4; ++w) mask |= 1u << p.channel_of_way(s, w);
    EXPECT_EQ(mask, 0xFu);
  }
}

TEST(WayPart, SplitsWays75_25) {
  WayPartPolicy p(0.75);
  p.bind(4, 4, 64);
  EXPECT_EQ(p.cpu_ways(), 3u);
  for (u32 w = 0; w < 3; ++w) {
    EXPECT_TRUE(p.way_allowed(0, w, Requestor::Cpu));
    EXPECT_FALSE(p.way_allowed(0, w, Requestor::Gpu));
    EXPECT_EQ(p.way_owner(0, w), Requestor::Cpu);
  }
  EXPECT_TRUE(p.way_allowed(0, 3, Requestor::Gpu));
  EXPECT_FALSE(p.way_allowed(0, 3, Requestor::Cpu));
  EXPECT_EQ(p.way_owner(0, 3), Requestor::Gpu);
}

TEST(WayPart, CoupledMappingStarvesGpuBandwidth) {
  // The defining drawback (Fig. 3(a)): the GPU's single way always maps to a
  // single channel, i.e. 25% of the bandwidth for 25% of the capacity.
  WayPartPolicy p(0.75);
  p.bind(4, 4, 64);
  std::set<u32> gpu_channels;
  for (u32 s = 0; s < 64; ++s) gpu_channels.insert(p.channel_of_way(s, 3));
  EXPECT_EQ(gpu_channels.size(), 1u);
}

TEST(WayPart, AlwaysLeavesOneWayPerSide) {
  WayPartPolicy hi(0.99), lo(0.01);
  hi.bind(4, 4, 64);
  lo.bind(4, 4, 64);
  EXPECT_EQ(hi.cpu_ways(), 3u);
  EXPECT_EQ(lo.cpu_ways(), 1u);
  WayPartPolicy direct(0.75);
  direct.bind(4, 1, 64);  // direct-mapped degenerates to shared
  EXPECT_TRUE(direct.way_allowed(0, 0, Requestor::Gpu));
}

TEST(HAShCache, CpuAlwaysMigrates) {
  HAShCachePolicy p;
  p.bind(4, 1, 64);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(p.allow_migration(ctx(Requestor::Cpu, 0, i), false));
  }
}

TEST(HAShCache, GpuMigratesOnlyOnRepeatedMiss) {
  HAShCachePolicy p;
  p.bind(4, 1, 64);
  // First miss of a streaming tag: bypass. Second miss of the same tag:
  // migrate (reuse detected).
  EXPECT_FALSE(p.allow_migration(ctx(Requestor::Gpu, 0, 1234), false));
  EXPECT_TRUE(p.allow_migration(ctx(Requestor::Gpu, 0, 1234), false));
  EXPECT_EQ(p.filter_hits(), 1u);
  // Pure streaming (all distinct tags) never migrates.
  u32 migrated = 0;
  for (u64 t = 100'000; t < 100'200; ++t) {
    migrated += p.allow_migration(ctx(Requestor::Gpu, 0, t), false);
  }
  EXPECT_LT(migrated, 4u);  // only accidental filter collisions
}

TEST(Profess, ProbabilityGatesMigrations) {
  ProfessConfig cfg;
  cfg.p_init = 0.5;
  ProfessPolicy p(cfg);
  p.bind(4, 4, 64);
  u32 allowed = 0;
  const u32 n = 4000;
  for (u32 i = 0; i < n; ++i) allowed += p.allow_migration(ctx(Requestor::Gpu, 0, i), false);
  EXPECT_NEAR(allowed / static_cast<double>(n), 0.5, 0.05);
}

TEST(Profess, CongestionWithoutBenefitLowersProbability) {
  ProfessPolicy p;
  p.bind(4, 4, 64);
  const double before = p.probability(Requestor::Gpu);
  // Feed epochs: heavy slow backlog, falling hit rate, GPU ahead on weighted
  // throughput (so fairness also pushes GPU down).
  for (int e = 0; e < 10; ++e) {
    // Declining hit-rate signal: many misses, no hits.
    for (int i = 0; i < 100; ++i) p.note_miss(ctx(Requestor::Gpu, 0, i), true);
    for (int i = 0; i < 100; ++i) p.note_hit(ctx(Requestor::Cpu, 0, i), 0);
    EpochFeedback fb;
    fb.epoch_cycles = 100'000;
    fb.cpu_instructions = 1'000;     // weighted 12k
    fb.gpu_instructions = 1'000'000; // weighted 1M -> GPU is the "winner"
    fb.slow_backlog = 1'000'000;     // congested
    p.on_epoch(fb);
  }
  EXPECT_LT(p.probability(Requestor::Gpu), before);
}

TEST(Profess, FairnessBoostsTheLoser) {
  ProfessConfig cfg;
  cfg.p_init = 0.5;
  ProfessPolicy p(cfg);
  p.bind(4, 4, 64);
  for (int e = 0; e < 6; ++e) {
    for (int i = 0; i < 50; ++i) p.note_hit(ctx(Requestor::Cpu, 0, i), 0);
    EpochFeedback fb;
    fb.epoch_cycles = 100'000;
    fb.cpu_instructions = 100;       // CPU weighted share is tiny: the loser
    fb.gpu_instructions = 1'000'000;
    fb.slow_backlog = 0;
    p.on_epoch(fb);
  }
  EXPECT_GT(p.probability(Requestor::Cpu), p.probability(Requestor::Gpu));
}

TEST(Profess, NeverChangesMapping) {
  ProfessPolicy p;
  p.bind(4, 4, 64);
  EpochFeedback fb;
  fb.epoch_cycles = 1000;
  EXPECT_FALSE(p.on_epoch(fb));  // no reconfiguration ever
  for (u32 s = 0; s < 8; ++s) {
    for (u32 w = 0; w < 4; ++w) EXPECT_EQ(p.way_owner(s, w), Requestor::Cpu);
  }
}

}  // namespace
}  // namespace h2
