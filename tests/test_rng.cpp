#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace h2 {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedResetsStream) {
  Rng a(7);
  std::vector<u64> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(99);
  for (u64 bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 500; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(5);
  std::set<u64> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(4);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng r(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GapMeanApproximatesRequest) {
  Rng r(21);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.next_gap(20.0, 1));
  EXPECT_NEAR(sum / n, 20.0, 1.0);
}

TEST(Rng, GapRespectsMinimum) {
  Rng r(22);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.next_gap(3.0, 2), 2u);
  // mean below the minimum collapses to the minimum
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next_gap(1.0, 5), 5u);
}

TEST(Rng, ZipfInRangeAndSkewed) {
  Rng r(33);
  const u64 n = 1000;
  std::vector<u64> counts(n, 0);
  for (int i = 0; i < 50000; ++i) {
    const u64 v = r.next_zipf(n, 1.0);
    ASSERT_LT(v, n);
    counts[v]++;
  }
  // rank 0 should be much more popular than rank 100
  EXPECT_GT(counts[0], counts[100] * 3);
}

TEST(Rng, ZipfSingleElement) {
  Rng r(44);
  EXPECT_EQ(r.next_zipf(1, 0.9), 0u);
}

TEST(SplitMix, MixHashSpreadsBits) {
  std::set<u64> seen;
  for (u32 i = 0; i < 1000; ++i) seen.insert(mix_hash(i, 42));
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace h2
