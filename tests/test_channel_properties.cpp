// Parameterised DRAM channel properties across all device presets: the
// timing model must conserve bandwidth, respect bank-level parallelism and
// row-buffer locality, and keep its scheduling invariants under load.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "common/rng.h"
#include "mem/channel.h"

namespace h2 {
namespace {

constexpr double kGhz = 3.2;

struct PresetCase {
  std::string name;
  std::function<DramTiming()> make;
};

class ChannelProperty : public ::testing::TestWithParam<PresetCase> {};

TEST_P(ChannelProperty, StreamingApproachesPeakBandwidth) {
  const DramTiming t = GetParam().make();
  Channel ch(t, kGhz, 0);
  const u32 n = 4000;
  Cycle done = 0;
  for (u32 i = 0; i < n; ++i) {
    done = ch.request(0, static_cast<Addr>(i) * 64, 64, false).done;
  }
  const double gbps = 64.0 * n / static_cast<double>(done) * kGhz;
  EXPECT_GT(gbps, 0.75 * t.peak_gbps()) << t.name;
  EXPECT_LT(gbps, 1.05 * t.peak_gbps()) << "cannot exceed peak";
}

TEST_P(ChannelProperty, RandomTrafficCannotExceedPeak) {
  const DramTiming t = GetParam().make();
  Channel ch(t, kGhz, 0);
  Rng rng(3);
  const u32 n = 4000;
  Cycle done = 0;
  u64 bytes = 0;
  for (u32 i = 0; i < n; ++i) {
    const u32 sz = rng.chance(0.5) ? 64 : 256;
    done = std::max(done, ch.request(0, rng.next_below(1u << 28) & ~63ull, sz,
                                     rng.chance(0.3))
                              .done);
    bytes += sz;
  }
  const double gbps = static_cast<double>(bytes) / static_cast<double>(done) * kGhz;
  EXPECT_LT(gbps, 1.6 * t.peak_gbps())
      << "read+write overcommit must stay bounded (" << t.name << ")";
}

TEST_P(ChannelProperty, BankParallelismBeatsBankConflicts) {
  const DramTiming t = GetParam().make();
  // Same number of random-row requests: spread over banks vs single bank.
  Channel spread(t, kGhz, 0);
  Channel conflict(t, kGhz, 1);
  const u32 n = 256;
  Cycle spread_done = 0, conflict_done = 0;
  const u64 bank_stride = t.row_bytes;       // next bank
  const u64 row_stride = t.row_bytes * t.total_banks();  // same bank, next row
  for (u32 i = 0; i < n; ++i) {
    spread_done = std::max(spread_done,
                           spread.request(0, (i % t.total_banks()) * bank_stride +
                                                 (i / t.total_banks()) * row_stride * 7,
                                          64, false)
                               .done);
    conflict_done =
        std::max(conflict_done, conflict.request(0, i * row_stride, 64, false).done);
  }
  EXPECT_LT(spread_done, conflict_done) << t.name;
  EXPECT_GT(conflict.row_misses(), spread.row_misses() / 2) << "both pay activations";
}

TEST_P(ChannelProperty, RowHitRateReflectsLocality) {
  const DramTiming t = GetParam().make();
  Channel seq(t, kGhz, 0);
  Channel rnd(t, kGhz, 1);
  Rng rng(17);
  Cycle ts = 0, tr = 0;
  for (u32 i = 0; i < 2000; ++i) {
    ts = seq.request(ts, static_cast<Addr>(i) * 64, 64, false).done;
    tr = rnd.request(tr, rng.next_below(1u << 28) & ~63ull, 64, false).done;
  }
  const double seq_hits = static_cast<double>(seq.row_hits()) /
                          static_cast<double>(seq.row_hits() + seq.row_misses());
  const double rnd_hits = static_cast<double>(rnd.row_hits()) /
                          static_cast<double>(rnd.row_hits() + rnd.row_misses());
  EXPECT_GT(seq_hits, rnd_hits + 0.3) << t.name;
}

TEST_P(ChannelProperty, EnergyScalesWithTraffic) {
  const DramTiming t = GetParam().make();
  Channel a(t, kGhz, 0), b(t, kGhz, 1);
  for (u32 i = 0; i < 100; ++i) a.request(0, i * 64, 64, false);
  for (u32 i = 0; i < 400; ++i) b.request(0, i * 64, 64, false);
  EXPECT_GT(b.dynamic_energy_pj(), 2.0 * a.dynamic_energy_pj()) << t.name;
}

TEST_P(ChannelProperty, CompletionNeverBeforeIssue) {
  const DramTiming t = GetParam().make();
  Channel ch(t, kGhz, 0);
  Rng rng(7);
  Cycle now = 0;
  for (u32 i = 0; i < 2000; ++i) {
    now += rng.next_below(20);
    const auto r = ch.request(now, rng.next_below(1u << 26) & ~63ull,
                              rng.chance(0.5) ? 64 : 256, rng.chance(0.4));
    ASSERT_GE(r.first_data, now);
    ASSERT_GE(r.done, r.first_data);
    ASSERT_GE(r.done_sched, r.first_data);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Presets, ChannelProperty,
    ::testing::Values(PresetCase{"hbm2e", hbm2e_timing},
                      PresetCase{"hbm3", hbm3_timing},
                      PresetCase{"ddr4", ddr4_3200_timing},
                      PresetCase{"hbm2e_super", [] { return grouped(hbm2e_timing(), 4); }}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace h2
