// Parameterised DRAM channel properties across all device presets: the
// timing model must conserve bandwidth, respect bank-level parallelism and
// row-buffer locality, and keep its scheduling invariants under load.
//
// The LegacyChannelReference swarm at the bottom pins the backend refactor:
// FastBackend behind the Channel facade must be bit-identical — every Result
// field, every counter, the exact energy double — to an independent
// transcription of the pre-refactor Channel::request algorithm.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "mem/channel.h"

namespace h2 {
namespace {

constexpr double kGhz = 3.2;

struct PresetCase {
  std::string name;
  std::function<DramTiming()> make;
};

class ChannelProperty : public ::testing::TestWithParam<PresetCase> {};

TEST_P(ChannelProperty, StreamingApproachesPeakBandwidth) {
  const DramTiming t = GetParam().make();
  Channel ch(t, kGhz, 0);
  const u32 n = 4000;
  Cycle done = 0;
  for (u32 i = 0; i < n; ++i) {
    done = ch.request(0, static_cast<Addr>(i) * 64, 64, false).done;
  }
  const double gbps = 64.0 * n / static_cast<double>(done) * kGhz;
  EXPECT_GT(gbps, 0.75 * t.peak_gbps()) << t.name;
  EXPECT_LT(gbps, 1.05 * t.peak_gbps()) << "cannot exceed peak";
}

TEST_P(ChannelProperty, RandomTrafficCannotExceedPeak) {
  const DramTiming t = GetParam().make();
  Channel ch(t, kGhz, 0);
  Rng rng(3);
  const u32 n = 4000;
  Cycle done = 0;
  u64 bytes = 0;
  for (u32 i = 0; i < n; ++i) {
    const u32 sz = rng.chance(0.5) ? 64 : 256;
    done = std::max(done, ch.request(0, rng.next_below(1u << 28) & ~63ull, sz,
                                     rng.chance(0.3))
                              .done);
    bytes += sz;
  }
  const double gbps = static_cast<double>(bytes) / static_cast<double>(done) * kGhz;
  EXPECT_LT(gbps, 1.6 * t.peak_gbps())
      << "read+write overcommit must stay bounded (" << t.name << ")";
}

TEST_P(ChannelProperty, BankParallelismBeatsBankConflicts) {
  const DramTiming t = GetParam().make();
  // Same number of random-row requests: spread over banks vs single bank.
  Channel spread(t, kGhz, 0);
  Channel conflict(t, kGhz, 1);
  const u32 n = 256;
  Cycle spread_done = 0, conflict_done = 0;
  const u64 bank_stride = t.row_bytes;       // next bank
  const u64 row_stride = t.row_bytes * t.total_banks();  // same bank, next row
  for (u32 i = 0; i < n; ++i) {
    spread_done = std::max(spread_done,
                           spread.request(0, (i % t.total_banks()) * bank_stride +
                                                 (i / t.total_banks()) * row_stride * 7,
                                          64, false)
                               .done);
    conflict_done =
        std::max(conflict_done, conflict.request(0, i * row_stride, 64, false).done);
  }
  EXPECT_LT(spread_done, conflict_done) << t.name;
  EXPECT_GT(conflict.row_misses(), spread.row_misses() / 2) << "both pay activations";
}

TEST_P(ChannelProperty, RowHitRateReflectsLocality) {
  const DramTiming t = GetParam().make();
  Channel seq(t, kGhz, 0);
  Channel rnd(t, kGhz, 1);
  Rng rng(17);
  Cycle ts = 0, tr = 0;
  for (u32 i = 0; i < 2000; ++i) {
    ts = seq.request(ts, static_cast<Addr>(i) * 64, 64, false).done;
    tr = rnd.request(tr, rng.next_below(1u << 28) & ~63ull, 64, false).done;
  }
  const double seq_hits = static_cast<double>(seq.row_hits()) /
                          static_cast<double>(seq.row_hits() + seq.row_misses());
  const double rnd_hits = static_cast<double>(rnd.row_hits()) /
                          static_cast<double>(rnd.row_hits() + rnd.row_misses());
  EXPECT_GT(seq_hits, rnd_hits + 0.3) << t.name;
}

TEST_P(ChannelProperty, EnergyScalesWithTraffic) {
  const DramTiming t = GetParam().make();
  Channel a(t, kGhz, 0), b(t, kGhz, 1);
  for (u32 i = 0; i < 100; ++i) a.request(0, i * 64, 64, false);
  for (u32 i = 0; i < 400; ++i) b.request(0, i * 64, 64, false);
  EXPECT_GT(b.dynamic_energy_pj(), 2.0 * a.dynamic_energy_pj()) << t.name;
}

TEST_P(ChannelProperty, CompletionNeverBeforeIssue) {
  const DramTiming t = GetParam().make();
  Channel ch(t, kGhz, 0);
  Rng rng(7);
  Cycle now = 0;
  for (u32 i = 0; i < 2000; ++i) {
    now += rng.next_below(20);
    const auto r = ch.request(now, rng.next_below(1u << 26) & ~63ull,
                              rng.chance(0.5) ? 64 : 256, rng.chance(0.4));
    ASSERT_GE(r.first_data, now);
    ASSERT_GE(r.done, r.first_data);
    ASSERT_GE(r.done_sched, r.first_data);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Presets, ChannelProperty,
    ::testing::Values(PresetCase{"hbm2e", hbm2e_timing},
                      PresetCase{"hbm3", hbm3_timing},
                      PresetCase{"ddr4", ddr4_3200_timing},
                      PresetCase{"hbm2e_super", [] { return grouped(hbm2e_timing(), 4); }}),
    [](const auto& info) { return info.param.name; });

// --- backend bit-identity swarm ----------------------------------------------

/// Independent transcription of the pre-refactor Channel::request algorithm
/// (the monolithic stats+timing class this file's history tested), kept as
/// the reference the FastBackend facade must match bit-for-bit: same Result
/// cycles, same counters, same floating-point accumulation order for energy.
/// Deliberately NOT a call into src/mem — a shared bug could not hide here.
class LegacyChannelReference {
 public:
  LegacyChannelReference(const DramTiming& timing, double core_ghz)
      : timing_(timing) {
    const double core_per_dev = core_ghz * 1000.0 / timing.device_mhz;
    bytes_per_core_cycle_ = timing.bus_bytes_per_device_cycle / core_per_dev;
    auto to_core = [&](u32 dev) {
      return static_cast<u32>(std::lround(dev * core_per_dev));
    };
    c_rcd_ = to_core(timing.t_rcd);
    c_cas_ = to_core(timing.t_cas);
    c_rp_ = to_core(timing.t_rp);
    c_refi_ = to_core(timing.t_refi);
    c_rfc_ = to_core(timing.t_rfc);
    banks_.resize(timing.total_banks());
    next_refresh_ = c_refi_;
    if (std::has_single_bit(timing_.row_bytes) &&
        std::has_single_bit(banks_.size())) {
      pow2_geometry_ = true;
      row_shift_ = static_cast<u32>(std::countr_zero(timing_.row_bytes));
      bank_shift_ = static_cast<u32>(std::countr_zero(banks_.size()));
    }
  }

  void set_priority_enabled(bool on) { priority_enabled_ = on; }

  MemResult request(Cycle now, Addr addr, u32 bytes, bool is_write,
                    bool high_priority, Cycle earliest) {
    requests_++;
    if (c_refi_ > 0) apply_refresh(now);

    u64 row_global;
    u32 bank_idx;
    i64 row;
    if (pow2_geometry_) {
      row_global = addr >> row_shift_;
      bank_idx = static_cast<u32>(row_global & (banks_.size() - 1));
      row = static_cast<i64>(row_global >> bank_shift_);
    } else {
      row_global = addr / timing_.row_bytes;
      bank_idx = static_cast<u32>(row_global % banks_.size());
      row = static_cast<i64>(row_global / banks_.size());
    }
    Bank& bank = banks_[bank_idx];

    const Cycle issue = std::max(now, earliest);
    Cycle t = std::max<Cycle>(issue + 16, bank.busy_until);

    const u32 transfer = transfer_cycles(bytes);
    const u32 critical = transfer_cycles(std::min<u32>(bytes, 64));

    u32 cmd_lat;
    if (bank.open_row == row) {
      cmd_lat = c_cas_;
      row_hits_++;
      bank.busy_until = t + transfer;
    } else {
      cmd_lat = (bank.open_row >= 0 ? c_rp_ : 0) + c_rcd_ + c_cas_;
      row_misses_++;
      dynamic_energy_pj_ += timing_.act_nj * 1000.0;
      bank.open_row = row;
      bank.busy_until = t + cmd_lat - c_cas_ + transfer;
    }

    const Cycle data_ready = t + cmd_lat;
    const Cycle read_base = std::max(read_busy_until_, now);
    const Cycle write_base = std::max({write_busy_until_, read_base, now});
    Cycle queue_from = is_write ? write_base : read_base;
    if (priority_enabled_ && high_priority) {
      const Cycle backlog = read_busy_until_ > now ? read_busy_until_ - now : 0;
      const Cycle credit = std::min<Cycle>(backlog / 2, 150);
      queue_from = queue_from > now + credit ? queue_from - credit
                                             : std::min(queue_from, now);
    }
    const Cycle data_start = std::max(data_ready, queue_from);
    if (is_write) {
      write_busy_until_ = write_base + transfer;
      read_busy_until_ = read_base + transfer / 2;
    } else {
      read_busy_until_ = read_base + transfer;
    }

    const double pj_per_bit =
        is_write ? timing_.wr_pj_per_bit : timing_.rd_pj_per_bit;
    dynamic_energy_pj_ += pj_per_bit * 8.0 * bytes;

    return MemResult{t, data_start + critical, data_start + transfer,
                     data_start + transfer};
  }

  u64 requests() const { return requests_; }
  u64 row_hits() const { return row_hits_; }
  u64 row_misses() const { return row_misses_; }
  u64 refreshes() const { return refreshes_; }
  double dynamic_energy_pj() const { return dynamic_energy_pj_; }

 private:
  struct Bank {
    Cycle busy_until = 0;
    i64 open_row = -1;
  };

  u32 transfer_cycles(u32 bytes) const {
    return std::max<u32>(
        1, static_cast<u32>(std::ceil(bytes / bytes_per_core_cycle_)));
  }

  void apply_refresh(Cycle now) {
    while (now >= next_refresh_) {
      read_busy_until_ = std::max(read_busy_until_, next_refresh_) + c_rfc_;
      write_busy_until_ = std::max(write_busy_until_, next_refresh_) + c_rfc_;
      next_refresh_ += c_refi_;
      refreshes_++;
      dynamic_energy_pj_ += timing_.act_nj * 1000.0 * banks_.size() / 4.0;
    }
  }

  DramTiming timing_;
  double bytes_per_core_cycle_ = 0.0;
  u32 c_rcd_ = 0, c_cas_ = 0, c_rp_ = 0, c_refi_ = 0, c_rfc_ = 0;
  u32 row_shift_ = 0, bank_shift_ = 0;
  bool pow2_geometry_ = false;
  bool priority_enabled_ = false;
  std::vector<Bank> banks_;
  Cycle read_busy_until_ = 0;
  Cycle write_busy_until_ = 0;
  Cycle next_refresh_ = 0;
  u64 requests_ = 0, row_hits_ = 0, row_misses_ = 0, refreshes_ = 0;
  double dynamic_energy_pj_ = 0.0;
};

struct SwarmCase {
  std::string name;
  std::function<DramTiming()> make;
  u64 seed;
  bool priority;
};

class FastBackendBitIdentity : public ::testing::TestWithParam<SwarmCase> {};

TEST_P(FastBackendBitIdentity, MatchesLegacyChannelExactly) {
  const SwarmCase& c = GetParam();
  const DramTiming t = c.make();
  Channel ch(t, kGhz, 0, ChannelBackendKind::Fast);
  LegacyChannelReference ref(t, kGhz);
  ch.set_priority_enabled(c.priority);
  ref.set_priority_enabled(c.priority);

  Rng rng(c.seed);
  Cycle now = 0;
  for (u32 i = 0; i < 2000; ++i) {
    now += rng.next_below(30);
    const Addr addr = rng.next_below(1u << 28) & ~63ull;
    const u32 bytes = rng.chance(0.3) ? 64 : (rng.chance(0.5) ? 256 : 2048);
    const bool is_write = rng.chance(0.35);
    const bool high = rng.chance(0.5);
    const Cycle earliest = rng.chance(0.2) ? now + rng.next_below(500) : 0;

    const MemResult got = ch.request(now, addr, bytes, is_write, high, earliest);
    const MemResult want = ref.request(now, addr, bytes, is_write, high, earliest);
    ASSERT_EQ(got.start, want.start) << c.name << " step " << i;
    ASSERT_EQ(got.first_data, want.first_data) << c.name << " step " << i;
    ASSERT_EQ(got.done, want.done) << c.name << " step " << i;
    ASSERT_EQ(got.done_sched, want.done_sched) << c.name << " step " << i;
  }
  EXPECT_EQ(ch.requests(), ref.requests());
  EXPECT_EQ(ch.row_hits(), ref.row_hits());
  EXPECT_EQ(ch.row_misses(), ref.row_misses());
  EXPECT_EQ(ch.refreshes(), ref.refreshes());
  // Bit-identical floating point: same adds in the same order, so == holds.
  EXPECT_EQ(ch.dynamic_energy_pj(), ref.dynamic_energy_pj()) << c.name;
}

std::vector<SwarmCase> swarm_cases() {
  std::vector<SwarmCase> cases;
  const std::pair<const char*, std::function<DramTiming()>> presets[] = {
      {"hbm2e", hbm2e_timing},
      {"ddr4", ddr4_3200_timing},
      {"hbm2e_super", [] { return grouped(hbm2e_timing(), 4); }},
  };
  for (const auto& [pname, make] : presets) {
    for (const u64 seed : {2ull, 29ull, 404ull}) {
      for (const bool prio : {false, true}) {
        cases.push_back({std::string(pname) + "_s" + std::to_string(seed) +
                             (prio ? "_prio" : "_noprio"),
                         make, seed, prio});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Swarm, FastBackendBitIdentity,
                         ::testing::ValuesIn(swarm_cases()),
                         [](const auto& info) { return info.param.name; });

// --- cross-backend conservation ----------------------------------------------

class BackendConservation
    : public ::testing::TestWithParam<ChannelBackendKind> {};

TEST_P(BackendConservation, IssuedEqualsCompletedAfterDrain) {
  const ChannelBackendKind kind = GetParam();
  const DramTiming t = ddr4_3200_timing();
  Channel ch(t, kGhz, 0, kind);
  Rng rng(61);
  Cycle now = 0;
  const u32 n = 3000;
  for (u32 i = 0; i < n; ++i) {
    now += 1 + rng.next_below(25);
    ch.request(now, rng.next_below(1u << 26) & ~63ull,
               rng.chance(0.5) ? 64 : 256, rng.chance(0.4));
    // At any instant the facade's L2 law holds: every accepted request is a
    // completed column command or still buffered in the backend.
    ASSERT_EQ(ch.requests(), ch.row_hits() + ch.row_misses() + ch.pending());
  }
  ch.drain(now);
  EXPECT_EQ(ch.pending(), 0u);
  EXPECT_EQ(ch.requests(), n);
  EXPECT_EQ(ch.row_hits() + ch.row_misses(), n);
  EXPECT_EQ(ch.activations(), ch.precharges() + ch.open_banks());
  EXPECT_EQ(ch.refresh_windows(), ch.expected_refresh_windows(now));
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendConservation,
                         ::testing::Values(ChannelBackendKind::Fast,
                                           ChannelBackendKind::Ddr),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace h2
