#include "common/stats.h"

#include <gtest/gtest.h>

#include <sstream>

namespace h2 {
namespace {

TEST(Counter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, MeanAndCount) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_EQ(h.max(), 30u);
}

TEST(Histogram, PercentileMonotonic) {
  Histogram h;
  for (u64 i = 1; i <= 1000; ++i) h.record(i);
  const u64 p50 = h.percentile(50);
  const u64 p90 = h.percentile(90);
  const u64 p99 = h.percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GT(p99, 500u);
}

TEST(Histogram, ZeroValueGoesToFirstBucket) {
  Histogram h;
  h.record(0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.percentile(100), 0u);
}

TEST(Histogram, Reset) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.total(), 0u);
}

TEST(StatGroup, CountersAndGauges) {
  StatGroup g("mem");
  g.counter("reads").inc(3);
  g.set_gauge("bw", 12.5);
  EXPECT_EQ(g.counter_value("reads"), 3u);
  EXPECT_EQ(g.counter_value("missing"), 0u);
  EXPECT_DOUBLE_EQ(g.gauge("bw"), 12.5);
  EXPECT_DOUBLE_EQ(g.gauge("missing"), 0.0);
  EXPECT_TRUE(g.has_counter("reads"));
  EXPECT_FALSE(g.has_counter("writes"));
}

TEST(StatGroup, PrintContainsEntries) {
  StatGroup g("grp");
  g.counter("x").inc(7);
  std::ostringstream os;
  g.print(os);
  EXPECT_NE(os.str().find("grp"), std::string::npos);
  EXPECT_NE(os.str().find("x = 7"), std::string::npos);
}

TEST(CsvWriter, QuotesOnlyWhenNeeded) {
  std::ostringstream os;
  CsvWriter w(os);
  w.cell(std::string("plain")).cell(std::string("with,comma")).cell(std::string("with\"quote"));
  w.end_row();
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(CsvWriter, NumericCells) {
  std::ostringstream os;
  CsvWriter w(os);
  w.cell(1.5).cell(static_cast<u64>(42));
  w.end_row();
  EXPECT_EQ(os.str(), "1.5,42\n");
}

TEST(Geomean, KnownValues) {
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-9);
  EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-9);
  EXPECT_NEAR(geomean({0.5, 2.0}), 1.0, 1e-9);
}

}  // namespace
}  // namespace h2
