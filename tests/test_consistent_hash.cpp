#include "hydrogen/consistent_hash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"

namespace h2 {
namespace {

constexpr u64 kSalt = 0xabcdef;

TEST(ConsistentHash, TopKHasKDistinctItems) {
  for (u32 k = 1; k <= 8; ++k) {
    const auto top = hrw_top(kSalt, 17, k, 8);
    EXPECT_EQ(top.size(), k);
    std::set<u32> uniq(top.begin(), top.end());
    EXPECT_EQ(uniq.size(), k);
    for (u32 item : top) EXPECT_LT(item, 8u);
  }
}

TEST(ConsistentHash, IncrementalGrowthAddsExactlyOne) {
  // The heart of Section IV-D: growing the selection by one changes exactly
  // one element, so reconfiguration relocates minimal data.
  for (u32 set = 0; set < 200; ++set) {
    for (u32 k = 1; k < 8; ++k) {
      const auto a = hrw_top(kSalt, set, k, 8);
      const auto b = hrw_top(kSalt, set, k + 1, 8);
      std::set<u32> sa(a.begin(), a.end()), sb(b.begin(), b.end());
      // a must be a strict subset of b.
      for (u32 x : sa) EXPECT_TRUE(sb.count(x)) << "set=" << set << " k=" << k;
      EXPECT_EQ(sb.size(), sa.size() + 1);
    }
  }
}

TEST(ConsistentHash, RankConsistentWithTop) {
  for (u32 set = 0; set < 50; ++set) {
    const auto order = hrw_top(kSalt, set, 8, 8);
    for (u32 pos = 0; pos < 8; ++pos) {
      EXPECT_EQ(hrw_rank(kSalt, set, order[pos], 8), pos);
    }
  }
}

TEST(ConsistentHash, SelectedMatchesRank) {
  for (u32 set = 0; set < 50; ++set) {
    for (u32 item = 0; item < 8; ++item) {
      for (u32 k = 0; k <= 8; ++k) {
        EXPECT_EQ(hrw_selected(kSalt, set, item, k, 8),
                  hrw_rank(kSalt, set, item, 8) < k);
      }
    }
  }
}

TEST(ConsistentHash, SelectionsDifferAcrossSets) {
  // Section IV-A requires diverse way selection across sets so GPU accesses
  // spread over channels. Verify the top-1 pick is not constant.
  std::set<u32> picks;
  for (u32 set = 0; set < 64; ++set) picks.insert(hrw_top(kSalt, set, 1, 4)[0]);
  EXPECT_GE(picks.size(), 3u);
}

TEST(ConsistentHash, SelectionsRoughlyBalanced) {
  // Each item should be picked as top-1 for roughly 1/n of the sets.
  constexpr u32 kN = 4;
  u32 counts[kN] = {};
  const u32 sets = 4000;
  for (u32 set = 0; set < sets; ++set) counts[hrw_top(kSalt, set, 1, kN)[0]]++;
  for (u32 i = 0; i < kN; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(sets), 0.25, 0.05);
  }
}

TEST(ConsistentHash, DifferentSaltsGiveDifferentSelections) {
  u32 differs = 0;
  for (u32 set = 0; set < 100; ++set) {
    if (hrw_top(1, set, 2, 8) != hrw_top(2, set, 2, 8)) differs++;
  }
  EXPECT_GT(differs, 50u);
}

TEST(ConsistentHash, ScoreIsDeterministic) {
  EXPECT_EQ(hrw_score(1, 2, 3), hrw_score(1, 2, 3));
  EXPECT_NE(hrw_score(1, 2, 3), hrw_score(1, 2, 4));
}

// ---- property tests over random rings -------------------------------------

TEST(ConsistentHashProperty, EverySetMapsToExactlyOnePartition) {
  // Random ring shapes (salt, n): for every set the ranks of the n items
  // form a permutation of [0, n), so each set has exactly one rank-r owner
  // for each r — in particular exactly one top-1 partition.
  Rng rng(20260805);
  for (int trial = 0; trial < 50; ++trial) {
    const u64 salt = rng.next();
    const u32 n = 2 + static_cast<u32>(rng.next_below(15));
    const u32 sets = 128 * (1 + static_cast<u32>(rng.next_below(4)));
    for (u32 set = 0; set < sets; ++set) {
      std::vector<bool> rank_seen(n, false);
      u32 owners = 0;
      for (u32 item = 0; item < n; ++item) {
        const u32 r = hrw_rank(salt, set, item, n);
        ASSERT_LT(r, n) << "salt=" << salt << " set=" << set;
        ASSERT_FALSE(rank_seen[r])
            << "two items share rank " << r << " (salt=" << salt
            << " set=" << set << " n=" << n << ")";
        rank_seen[r] = true;
        owners += hrw_selected(salt, set, item, 1, n) ? 1 : 0;
      }
      ASSERT_EQ(owners, 1u) << "salt=" << salt << " set=" << set << " n=" << n;
    }
  }
}

TEST(ConsistentHashProperty, LoadRatioBounded) {
  // With sets >> n the rendezvous assignment is near-uniform. For
  // sets = 512 * n, the most- and least-loaded partitions stay within a
  // factor of 2 of each other (empirically ~1.3; 2.0 leaves headroom so the
  // test only fails if the hash quality regresses, not on unlucky salts).
  constexpr double kMaxLoadRatio = 2.0;
  Rng rng(987654321);
  for (int trial = 0; trial < 20; ++trial) {
    const u64 salt = rng.next();
    const u32 n = 2 + static_cast<u32>(rng.next_below(7));
    const u32 sets = 512 * n;
    std::vector<u32> load(n, 0);
    for (u32 set = 0; set < sets; ++set) load[hrw_top(salt, set, 1, n)[0]]++;
    const u32 max_load = *std::max_element(load.begin(), load.end());
    const u32 min_load = *std::min_element(load.begin(), load.end());
    ASSERT_GT(min_load, 0u) << "starved partition (salt=" << salt << " n=" << n << ")";
    EXPECT_LE(max_load, static_cast<u32>(kMaxLoadRatio * min_load))
        << "salt=" << salt << " n=" << n << " max=" << max_load
        << " min=" << min_load;
  }
}

// ---- rank-table hoist (satellite: memoised per-set rank rows) --------------

TEST(ConsistentHashRankAll, MatchesPairwiseRankForEveryItem) {
  Rng rng(0x5a17);
  for (int trial = 0; trial < 30; ++trial) {
    const u64 salt = rng.next();
    const u32 n = 1 + static_cast<u32>(rng.next_below(12));
    for (u32 set = 0; set < 64; ++set) {
      const auto all = hrw_rank_all(salt, set, n);
      ASSERT_EQ(all.size(), n);
      for (u32 item = 0; item < n; ++item) {
        ASSERT_EQ(all[item], hrw_rank(salt, set, item, n))
            << "salt=" << salt << " set=" << set << " item=" << item;
      }
    }
  }
}

TEST(ConsistentHashRankTable, CachedRowsMatchAndSurviveInvalidate) {
  HrwRankTable table;
  table.configure(kSalt, 8);
  EXPECT_EQ(table.items(), 8u);
  EXPECT_EQ(table.salt(), kSalt);
  for (u32 set = 0; set < 32; ++set) {
    const std::vector<u32> expected = hrw_rank_all(kSalt, set, 8);
    // First call builds the row, second serves the cached copy; both must
    // equal the uncached computation.
    EXPECT_EQ(table.ranks(set), expected) << "set=" << set;
    EXPECT_EQ(table.ranks(set), expected) << "set=" << set;
    for (u32 item = 0; item < 8; ++item) {
      EXPECT_EQ(table.rank(set, item), expected[item]);
    }
  }
  // invalidate() drops every row; lazy rebuild reproduces them bit for bit.
  table.invalidate();
  for (u32 set = 0; set < 32; ++set) {
    EXPECT_EQ(table.ranks(set), hrw_rank_all(kSalt, set, 8)) << "set=" << set;
  }
  // Reconfiguring to a new universe serves the new universe's rows.
  table.configure(kSalt + 1, 5);
  EXPECT_EQ(table.items(), 5u);
  EXPECT_EQ(table.ranks(7), hrw_rank_all(kSalt + 1, 7, 5));
}

TEST(ConsistentHashProperty, RegressionPinnedAssignment) {
  // Pins the concrete top-2-of-8 assignment for the first 16 sets under a
  // fixed salt. hrw_score feeds the remap tables of every recorded result:
  // if this changes, goldens and published numbers silently shift, so any
  // intentional hash change must update this table knowingly.
  const std::vector<std::vector<u32>> expected = {
      {6, 5}, {6, 7}, {7, 5}, {5, 2}, {0, 4}, {0, 1}, {1, 0}, {5, 6},
      {5, 3}, {2, 6}, {0, 3}, {5, 0}, {1, 6}, {2, 1}, {3, 5}, {3, 5},
  };
  for (u32 set = 0; set < expected.size(); ++set) {
    EXPECT_EQ(hrw_top(kSalt, set, 2, 8), expected[set]) << "set=" << set;
  }
}

}  // namespace
}  // namespace h2
