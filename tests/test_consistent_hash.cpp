#include "hydrogen/consistent_hash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace h2 {
namespace {

constexpr u64 kSalt = 0xabcdef;

TEST(ConsistentHash, TopKHasKDistinctItems) {
  for (u32 k = 1; k <= 8; ++k) {
    const auto top = hrw_top(kSalt, 17, k, 8);
    EXPECT_EQ(top.size(), k);
    std::set<u32> uniq(top.begin(), top.end());
    EXPECT_EQ(uniq.size(), k);
    for (u32 item : top) EXPECT_LT(item, 8u);
  }
}

TEST(ConsistentHash, IncrementalGrowthAddsExactlyOne) {
  // The heart of Section IV-D: growing the selection by one changes exactly
  // one element, so reconfiguration relocates minimal data.
  for (u32 set = 0; set < 200; ++set) {
    for (u32 k = 1; k < 8; ++k) {
      const auto a = hrw_top(kSalt, set, k, 8);
      const auto b = hrw_top(kSalt, set, k + 1, 8);
      std::set<u32> sa(a.begin(), a.end()), sb(b.begin(), b.end());
      // a must be a strict subset of b.
      for (u32 x : sa) EXPECT_TRUE(sb.count(x)) << "set=" << set << " k=" << k;
      EXPECT_EQ(sb.size(), sa.size() + 1);
    }
  }
}

TEST(ConsistentHash, RankConsistentWithTop) {
  for (u32 set = 0; set < 50; ++set) {
    const auto order = hrw_top(kSalt, set, 8, 8);
    for (u32 pos = 0; pos < 8; ++pos) {
      EXPECT_EQ(hrw_rank(kSalt, set, order[pos], 8), pos);
    }
  }
}

TEST(ConsistentHash, SelectedMatchesRank) {
  for (u32 set = 0; set < 50; ++set) {
    for (u32 item = 0; item < 8; ++item) {
      for (u32 k = 0; k <= 8; ++k) {
        EXPECT_EQ(hrw_selected(kSalt, set, item, k, 8),
                  hrw_rank(kSalt, set, item, 8) < k);
      }
    }
  }
}

TEST(ConsistentHash, SelectionsDifferAcrossSets) {
  // Section IV-A requires diverse way selection across sets so GPU accesses
  // spread over channels. Verify the top-1 pick is not constant.
  std::set<u32> picks;
  for (u32 set = 0; set < 64; ++set) picks.insert(hrw_top(kSalt, set, 1, 4)[0]);
  EXPECT_GE(picks.size(), 3u);
}

TEST(ConsistentHash, SelectionsRoughlyBalanced) {
  // Each item should be picked as top-1 for roughly 1/n of the sets.
  constexpr u32 kN = 4;
  u32 counts[kN] = {};
  const u32 sets = 4000;
  for (u32 set = 0; set < sets; ++set) counts[hrw_top(kSalt, set, 1, kN)[0]]++;
  for (u32 i = 0; i < kN; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(sets), 0.25, 0.05);
  }
}

TEST(ConsistentHash, DifferentSaltsGiveDifferentSelections) {
  u32 differs = 0;
  for (u32 set = 0; set < 100; ++set) {
    if (hrw_top(1, set, 2, 8) != hrw_top(2, set, 2, 8)) differs++;
  }
  EXPECT_GT(differs, 50u);
}

TEST(ConsistentHash, ScoreIsDeterministic) {
  EXPECT_EQ(hrw_score(1, 2, 3), hrw_score(1, 2, 3));
  EXPECT_NE(hrw_score(1, 2, 3), hrw_score(1, 2, 4));
}

}  // namespace
}  // namespace h2
