// The scripted-schedule grammar (check/epoch_schedule.h): parsing, wrap-around
// indexing, canonical round-trips, and the design-dispatched applier that the
// differential oracle and the harness ScheduleObserver share.
#include "check/epoch_schedule.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "hydrogen/hydrogen_policy.h"
#include "hydrogen/setpart_policy.h"
#include "policies/baseline.h"
#include "policies/hashcache.h"
#include "policies/waypart.h"

namespace h2 {
namespace {

TEST(EpochSchedule, ParsesEveryOpKind) {
  const EpochSchedule s =
      parse_schedule("hold,grow,shrink,bw+,bw-,tok+,tok-,point=2/1/3,frac=0.25");
  ASSERT_EQ(s.steps.size(), 9u);
  EXPECT_EQ(s.steps[0].op, ScheduleOp::Hold);
  EXPECT_EQ(s.steps[1].op, ScheduleOp::Grow);
  EXPECT_EQ(s.steps[2].op, ScheduleOp::Shrink);
  EXPECT_EQ(s.steps[3].op, ScheduleOp::BwUp);
  EXPECT_EQ(s.steps[4].op, ScheduleOp::BwDown);
  EXPECT_EQ(s.steps[5].op, ScheduleOp::TokUp);
  EXPECT_EQ(s.steps[6].op, ScheduleOp::TokDown);
  EXPECT_EQ(s.steps[7].op, ScheduleOp::Point);
  EXPECT_EQ(s.steps[7].cap, 2u);
  EXPECT_EQ(s.steps[7].bw, 1u);
  EXPECT_EQ(s.steps[7].tok, 3u);
  EXPECT_EQ(s.steps[8].op, ScheduleOp::Frac);
  EXPECT_DOUBLE_EQ(s.steps[8].frac, 0.25);
}

TEST(EpochSchedule, IndexWrapsAndEmptyHoldsForever) {
  const EpochSchedule s = parse_schedule("shrink,grow");
  EXPECT_EQ(s.at(0).op, ScheduleOp::Shrink);
  EXPECT_EQ(s.at(1).op, ScheduleOp::Grow);
  EXPECT_EQ(s.at(2).op, ScheduleOp::Shrink);  // wraps modulo length
  EXPECT_EQ(s.at(101).op, ScheduleOp::Grow);

  const EpochSchedule none;
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.at(0).op, ScheduleOp::Hold);
  EXPECT_EQ(none.at(999).op, ScheduleOp::Hold);
}

TEST(EpochSchedule, ToStringRoundTrips) {
  const char* canon = "shrink,bw+,grow,bw-,point=3/2/1,frac=0.5,hold";
  const EpochSchedule s = parse_schedule(canon);
  const std::string text = to_string(s);
  const EpochSchedule back = parse_schedule(text);
  ASSERT_EQ(back.steps.size(), s.steps.size());
  for (size_t i = 0; i < s.steps.size(); ++i) {
    EXPECT_EQ(back.steps[i].op, s.steps[i].op) << "op " << i;
    EXPECT_EQ(back.steps[i].cap, s.steps[i].cap);
    EXPECT_EQ(back.steps[i].bw, s.steps[i].bw);
    EXPECT_EQ(back.steps[i].tok, s.steps[i].tok);
    EXPECT_DOUBLE_EQ(back.steps[i].frac, s.steps[i].frac);
  }
  // The canonical form is a fixed point: printing it again changes nothing.
  EXPECT_EQ(to_string(back), text);
}

TEST(EpochSchedule, RejectsMalformedText) {
  EXPECT_THROW(parse_schedule(""), std::invalid_argument);
  EXPECT_THROW(parse_schedule("grow,,shrink"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("wiggle"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("point=1/2"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("point=a/b/c"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("frac=1.5"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("frac=-0.1"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("frac=abc"), std::invalid_argument);
}

TEST(EpochSchedule, HydrogenStepsClampToLegalRange) {
  HydrogenConfig cfg;
  cfg.decoupled = true;
  cfg.token = false;
  cfg.search = false;
  HydrogenPolicy pol(cfg);
  pol.bind(/*num_channels=*/4, /*assoc=*/4, /*num_sets=*/32);

  // Shrink to the floor, then keep shrinking: the partition must pin at
  // cap_min and report "no change".
  for (int i = 0; i < 8; ++i) {
    (void)apply_schedule_step(ScheduleStep{ScheduleOp::Shrink}, pol);
  }
  const u32 floor_cap = pol.active_point().cap;
  EXPECT_FALSE(apply_schedule_step(ScheduleStep{ScheduleOp::Shrink}, pol));
  EXPECT_EQ(pol.active_point().cap, floor_cap);

  // Grow to the ceiling symmetrically.
  for (int i = 0; i < 8; ++i) {
    (void)apply_schedule_step(ScheduleStep{ScheduleOp::Grow}, pol);
  }
  const u32 ceil_cap = pol.active_point().cap;
  EXPECT_FALSE(apply_schedule_step(ScheduleStep{ScheduleOp::Grow}, pol));
  EXPECT_EQ(pol.active_point().cap, ceil_cap);
  EXPECT_GT(ceil_cap, floor_cap);

  // An absolute point lands exactly; frac maps through the associativity.
  ScheduleStep point{ScheduleOp::Point};
  point.cap = 2;
  point.bw = 1;
  point.tok = 0;
  (void)apply_schedule_step(point, pol);
  EXPECT_EQ(pol.active_point().cap, 2u);
  EXPECT_EQ(pol.active_point().bw, 1u);
  ScheduleStep frac{ScheduleOp::Frac};
  frac.frac = 0.75;
  (void)apply_schedule_step(frac, pol);
  EXPECT_EQ(pol.active_point().cap, 3u);  // 0.75 * assoc 4
}

TEST(EpochSchedule, WayPartStepsMoveTheBoundary) {
  WayPartPolicy pol(0.5);
  pol.bind(/*num_channels=*/4, /*assoc=*/4, /*num_sets=*/32);
  const u32 before = pol.cpu_ways();
  EXPECT_TRUE(apply_schedule_step(ScheduleStep{ScheduleOp::Grow}, pol));
  EXPECT_EQ(pol.cpu_ways(), before + 1);
  EXPECT_TRUE(apply_schedule_step(ScheduleStep{ScheduleOp::Shrink}, pol));
  EXPECT_EQ(pol.cpu_ways(), before);
  // Each side always keeps one way: shrinking to the floor pins there.
  for (int i = 0; i < 8; ++i) {
    (void)apply_schedule_step(ScheduleStep{ScheduleOp::Shrink}, pol);
  }
  EXPECT_EQ(pol.cpu_ways(), 1u);
  EXPECT_FALSE(apply_schedule_step(ScheduleStep{ScheduleOp::Shrink}, pol));
}

TEST(EpochSchedule, SetPartStepsMoveTheFraction) {
  SetPartConfig cfg;
  cfg.cpu_set_frac = 0.5;
  SetPartPolicy pol(cfg);
  pol.bind(/*num_channels=*/4, /*assoc=*/4, /*num_sets=*/64);
  const double before = pol.cpu_set_frac();
  EXPECT_TRUE(apply_schedule_step(ScheduleStep{ScheduleOp::Grow}, pol));
  EXPECT_GT(pol.cpu_set_frac(), before);
  EXPECT_TRUE(apply_schedule_step(ScheduleStep{ScheduleOp::Shrink}, pol));
  EXPECT_DOUBLE_EQ(pol.cpu_set_frac(), before);
}

TEST(EpochSchedule, StaticDesignsTreatEveryOpAsHold) {
  BaselinePolicy base;
  base.bind(4, 4, 32);
  HAShCachePolicy hash;
  hash.bind(4, 1, 128);
  for (ScheduleOp op : {ScheduleOp::Grow, ScheduleOp::Shrink, ScheduleOp::BwUp,
                        ScheduleOp::Point, ScheduleOp::Frac}) {
    ScheduleStep step{op};
    step.cap = 2;
    step.bw = 1;
    step.frac = 0.5;
    EXPECT_FALSE(apply_schedule_step(step, base));
    EXPECT_FALSE(apply_schedule_step(step, hash));
  }
}

}  // namespace
}  // namespace h2
