// PhasedGenerator: cyclic behaviour changes for the phase-adaptation story
// (paper Section IV-C), plus DRAM refresh (tREFI/tRFC) checks.
#include <gtest/gtest.h>

#include "mem/channel.h"
#include "trace/generators.h"
#include "trace/workloads.h"

namespace h2 {
namespace {

WorkloadSpec stream_like() {
  WorkloadSpec s;
  s.name = "p-stream";
  s.footprint_bytes = 1 << 20;
  s.mix = {1.0, 0.0, 0.0, 0.0, 0.0};
  s.mean_gap = 5;
  s.dep_prob = 0.0;
  return s;
}

WorkloadSpec chase_like() {
  WorkloadSpec s;
  s.name = "p-chase";
  s.footprint_bytes = 2 << 20;
  s.mix = {0.0, 0.0, 0.0, 1.0, 0.0};
  s.mean_gap = 20;
  s.dep_prob = 0.5;
  return s;
}

TEST(PhasedGenerator, SwitchesAtPhaseBoundaries) {
  PhasedGenerator g("p", {{stream_like(), 100}, {chase_like(), 50}}, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(g.current_phase(), 0u);
    g.next();
  }
  g.next();
  EXPECT_EQ(g.current_phase(), 1u);
  for (int i = 0; i < 49; ++i) g.next();
  g.next();
  EXPECT_EQ(g.current_phase(), 0u);  // wrapped
  EXPECT_EQ(g.phase_switches(), 2u);
}

TEST(PhasedGenerator, PhaseBehaviourMatchesSpecs) {
  PhasedGenerator g("p", {{stream_like(), 1000}, {chase_like(), 1000}}, 3);
  int dep_first = 0, dep_second = 0;
  for (int i = 0; i < 1000; ++i) dep_first += g.next().dependent;
  for (int i = 0; i < 1000; ++i) dep_second += g.next().dependent;
  EXPECT_EQ(dep_first, 0);
  EXPECT_GT(dep_second, 900);  // chase accesses are dependent
}

TEST(PhasedGenerator, FootprintIsMaxOverPhases) {
  PhasedGenerator g("p", {{stream_like(), 10}, {chase_like(), 10}}, 5);
  EXPECT_EQ(g.footprint_bytes(), 2u << 20);
}

TEST(PhasedGenerator, ResetRestartsEverything) {
  PhasedGenerator g("p", {{stream_like(), 64}, {chase_like(), 64}}, 7);
  std::vector<Addr> first;
  for (int i = 0; i < 200; ++i) first.push_back(g.next().addr);
  g.reset();
  EXPECT_EQ(g.current_phase(), 0u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(g.next().addr, first[i]);
}

TEST(PhasedGenerator, DeterministicForSeed) {
  PhasedGenerator a("p", {{stream_like(), 32}, {chase_like(), 32}}, 9);
  PhasedGenerator b("p", {{stream_like(), 32}, {chase_like(), 32}}, 9);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(a.next().addr, b.next().addr);
}

// --- DRAM refresh ---------------------------------------------------------

TEST(Refresh, PeriodicRefreshAddsStallTime) {
  DramTiming with = ddr4_3200_timing();
  DramTiming without = ddr4_3200_timing();
  without.t_refi = 0;  // disables refresh
  Channel a(with, 3.2, 0), b(without, 3.2, 1);
  // Stream for a while; the refreshing channel must finish later.
  Cycle ta = 0, tb = 0;
  for (u32 i = 0; i < 20'000; ++i) {
    ta = a.request(ta, static_cast<Addr>(i) * 64, 64, false).done;
    tb = b.request(tb, static_cast<Addr>(i) * 64, 64, false).done;
  }
  EXPECT_GT(a.refreshes(), 0u);
  EXPECT_EQ(b.refreshes(), 0u);
  EXPECT_GT(ta, tb);
  // tRFC/tREFI = 560/12480 ~ 4.5%: the slowdown must be in that ballpark.
  const double overhead = static_cast<double>(ta - tb) / static_cast<double>(tb);
  EXPECT_GT(overhead, 0.01);
  EXPECT_LT(overhead, 0.12);
}

TEST(Refresh, RefreshCountTracksElapsedTime) {
  DramTiming t = ddr4_3200_timing();
  Channel ch(t, 3.2, 0);
  // One request far in the future: all overdue refreshes are applied.
  const Cycle now = 1'000'000;
  ch.request(now, 0, 64, false);
  const u64 c_refi = static_cast<u64>(t.t_refi * 2);  // 1600 MHz -> x2 core cycles
  EXPECT_NEAR(static_cast<double>(ch.refreshes()), now / static_cast<double>(c_refi), 2.0);
}

}  // namespace
}  // namespace h2
