#include "hydrogen/hydrogen_policy.h"

#include <gtest/gtest.h>

#include <set>

#include "hybridmem/hybrid_memory.h"

namespace h2 {
namespace {

PolicyContext gctx(Requestor cls, Cycle now = 0, u32 set = 0, u64 tag = 0) {
  PolicyContext c;
  c.cls = cls;
  c.now = now;
  c.set = set;
  c.tag = tag;
  return c;
}

HydrogenConfig dp_only() {
  HydrogenConfig c;
  c.decoupled = true;
  c.token = false;
  c.search = false;
  return c;
}

TEST(HydrogenPolicy, FixedHeuristicPoint) {
  // DP default: 75% capacity and 25% of the channels to the CPU.
  HydrogenPolicy p(dp_only());
  p.bind(4, 4, 256);
  EXPECT_EQ(p.partition().cap(), 3u);
  EXPECT_EQ(p.partition().bw(), 1u);
}

TEST(HydrogenPolicy, WayRightsFollowPartition) {
  HydrogenPolicy p(dp_only());
  p.bind(4, 4, 256);
  for (u32 s = 0; s < 64; ++s) {
    u32 cpu_ways = 0;
    for (u32 w = 0; w < 4; ++w) {
      const bool cpu = p.way_allowed(s, w, Requestor::Cpu);
      const bool gpu = p.way_allowed(s, w, Requestor::Gpu);
      EXPECT_NE(cpu, gpu);  // exactly one side owns each way
      EXPECT_EQ(p.way_owner(s, w), cpu ? Requestor::Cpu : Requestor::Gpu);
      cpu_ways += cpu;
    }
    EXPECT_EQ(cpu_ways, 3u);
  }
}

TEST(HydrogenPolicy, DecoupledVsCoupledMapping) {
  HydrogenConfig coupled = dp_only();
  coupled.decoupled = false;
  HydrogenPolicy pc(coupled);
  pc.bind(4, 4, 256);
  // Coupled: way w -> channel w regardless of set.
  for (u32 s = 0; s < 16; ++s) {
    for (u32 w = 0; w < 4; ++w) EXPECT_EQ(pc.channel_of_way(s, w), w);
  }
  // Decoupled: GPU ways spread across the shared channels over sets.
  HydrogenPolicy pd(dp_only());
  pd.bind(4, 4, 256);
  std::set<u32> gpu_channels;
  for (u32 s = 0; s < 64; ++s) {
    for (u32 w = 0; w < 4; ++w) {
      if (pd.way_owner(s, w) == Requestor::Gpu) gpu_channels.insert(pd.channel_of_way(s, w));
    }
  }
  EXPECT_EQ(gpu_channels.size(), 3u);
}

TEST(HydrogenPolicy, TokensThrottleGpuOnly) {
  HydrogenConfig c = dp_only();
  c.token = true;
  c.faucet_period = 1000;
  HydrogenPolicy p(c);
  p.bind(4, 4, 256);
  // Establish a miss rate so the budget becomes finite.
  EpochFeedback fb;
  fb.epoch_cycles = 1000;
  fb.gpu_misses = 1000;  // 1 miss/cycle
  fb.now = 1000;
  p.on_epoch(fb);
  // Budget = 15% x 1000 = 150 tokens per 1000-cycle period.
  u32 allowed = 0;
  for (u32 i = 0; i < 1000; ++i) {
    allowed += p.allow_migration(gctx(Requestor::Gpu, 2000, 0, i), false);
  }
  EXPECT_LE(allowed, 160u);
  EXPECT_GE(allowed, 100u);
  // CPU is never throttled.
  for (u32 i = 0; i < 100; ++i) {
    EXPECT_TRUE(p.allow_migration(gctx(Requestor::Cpu, 2000, 0, i), true));
  }
}

TEST(HydrogenPolicy, DirtyMigrationCostsTwoTokens) {
  HydrogenConfig c = dp_only();
  c.token = true;
  c.faucet_period = 1000;
  HydrogenPolicy p(c);
  p.bind(4, 4, 256);
  EpochFeedback fb;
  fb.epoch_cycles = 1000;
  fb.gpu_misses = 100;
  p.on_epoch(fb);  // budget = 15 tokens
  u32 clean = 0, dirty = 0;
  HydrogenPolicy q(c);
  q.bind(4, 4, 256);
  q.on_epoch(fb);
  for (u32 i = 0; i < 100; ++i) clean += p.allow_migration(gctx(Requestor::Gpu, 2000), false);
  for (u32 i = 0; i < 100; ++i) dirty += q.allow_migration(gctx(Requestor::Gpu, 2000), true);
  EXPECT_NEAR(clean, 2 * dirty, 2);
}

TEST(HydrogenPolicy, SearchMovesTheActivePoint) {
  HydrogenConfig c;
  c.search = true;
  HydrogenPolicy p(c);
  p.bind(4, 4, 256);
  const ParamPoint start = p.active_point();
  // Feed an objective that grows with cap: the climber must move cap.
  for (int e = 0; e < 10; ++e) {
    EpochFeedback fb;
    fb.epoch_cycles = 1000;
    fb.now = 1000 * (e + 1);
    fb.weighted_ipc = 1.0 + 0.1 * p.active_point().cap - 0.01 * p.active_point().bw;
    p.on_epoch(fb);
  }
  EXPECT_GT(p.reconfigurations(), 0u);
  (void)start;
}

TEST(HydrogenPolicy, ApplyPointReconfiguresPartition) {
  HydrogenPolicy p(dp_only());
  p.bind(4, 4, 256);
  EXPECT_TRUE(p.apply_point(ParamPoint{2, 2, 0}));
  EXPECT_EQ(p.partition().cap(), 2u);
  EXPECT_EQ(p.partition().bw(), 2u);
  EXPECT_FALSE(p.apply_point(ParamPoint{2, 2, 0}));  // no change
}

TEST(HydrogenPolicy, SwapPromotesReReferencedSpillBlocks) {
  // Drive real CPU traffic with reuse through the hybrid memory: blocks that
  // hit repeatedly in spill ways must get promoted into dedicated channels
  // via fast-memory swaps; blocks touched once must not.
  MemSystemConfig mcfg = MemSystemConfig::table1_default();
  MemorySystem mem(mcfg);
  HydrogenConfig c = dp_only();
  c.swap = SwapMode::On;
  HydrogenPolicy p(c);
  HybridMemConfig hcfg;
  hcfg.fast_capacity_bytes = 64 * 1024;
  hcfg.slow_capacity_bytes = 1 << 20;
  HybridMemory hm(hcfg, &mem, &p);

  const u64 set_stride = 256ull * hm.num_sets();
  Cycle t = 0;
  // Fill set 0's three CPU ways, then re-reference all blocks repeatedly:
  // whichever landed in a spill way becomes hot and must be swapped inward.
  for (int round = 0; round < 6; ++round) {
    for (u64 i = 0; i < 3; ++i) {
      t = hm.access(t, Requestor::Cpu, i * set_stride, false) + 1;
    }
  }
  EXPECT_GT(hm.stats(Requestor::Cpu).fast_swaps, 0u);
  // After promotion, every resident CPU block with high reuse should sit on
  // its way's configured channel (swap maintained the mapping invariant).
  for (u32 w = 0; w < hm.assoc(); ++w) {
    const RemapWay& rw = hm.table().way(0, w);
    if (rw.valid) EXPECT_EQ(rw.channel, p.channel_of_way(0, w));
  }
}

TEST(HydrogenPolicy, NoSwapWithoutReReference) {
  MemSystemConfig mcfg = MemSystemConfig::table1_default();
  MemorySystem mem(mcfg);
  HydrogenConfig c = dp_only();
  HydrogenPolicy p(c);
  HybridMemConfig hcfg;
  hcfg.fast_capacity_bytes = 64 * 1024;
  hcfg.slow_capacity_bytes = 1 << 20;
  HybridMemory hm(hcfg, &mem, &p);
  // Stream CPU blocks touched exactly once: no block earns a promotion.
  Cycle t = 0;
  for (u64 i = 0; i < 256; ++i) {
    t = hm.access(t, Requestor::Cpu, i * 256, false) + 1;
  }
  EXPECT_EQ(hm.stats(Requestor::Cpu).fast_swaps, 0u);
}

TEST(HydrogenPolicy, NoSwapForGpuOrNonSpillWays) {
  MemSystemConfig mcfg = MemSystemConfig::table1_default();
  MemorySystem mem(mcfg);
  HydrogenConfig c = dp_only();
  HydrogenPolicy p(c);
  HybridMemConfig hcfg;
  hcfg.fast_capacity_bytes = 64 * 1024;
  hcfg.slow_capacity_bytes = 1 << 20;
  HybridMemory hm(hcfg, &mem, &p);

  for (u32 w = 0; w < 4; ++w) {
    if (!p.partition().is_cpu_spill_way(0, w)) {
      EXPECT_EQ(p.pick_swap_way(gctx(Requestor::Cpu, 0, 0), w), -1);
    }
    EXPECT_EQ(p.pick_swap_way(gctx(Requestor::Gpu, 0, 0), w), -1);
  }
}

TEST(HydrogenPolicy, SwapModeOffDisablesSwaps) {
  MemSystemConfig mcfg = MemSystemConfig::table1_default();
  MemorySystem mem(mcfg);
  HydrogenConfig c = dp_only();
  c.swap = SwapMode::Off;
  HydrogenPolicy p(c);
  HybridMemConfig hcfg;
  hcfg.fast_capacity_bytes = 64 * 1024;
  hcfg.slow_capacity_bytes = 1 << 20;
  HybridMemory hm(hcfg, &mem, &p);
  for (u32 s = 0; s < 8; ++s) {
    for (u32 w = 0; w < 4; ++w) {
      EXPECT_EQ(p.pick_swap_way(gctx(Requestor::Cpu, 0, s), w), -1);
    }
  }
}

TEST(HydrogenPolicy, PhaseRestartReopensConvergedSearch) {
  HydrogenConfig c;
  c.search = true;
  c.phase_length = 50'000;
  HydrogenPolicy p(c);
  p.bind(4, 4, 256);
  // Flat objective -> converges quickly.
  for (int e = 0; e < 12; ++e) {
    EpochFeedback fb;
    fb.epoch_cycles = 1000;
    fb.now = 1000 * (e + 1);
    fb.weighted_ipc = 1.0;
    p.on_epoch(fb);
  }
  ASSERT_NE(p.climber(), nullptr);
  EXPECT_TRUE(p.climber()->converged());
  // Cross the phase boundary: search must reopen.
  EpochFeedback fb;
  fb.epoch_cycles = 1000;
  fb.now = 60'000;
  fb.weighted_ipc = 1.0;
  p.on_epoch(fb);
  EXPECT_FALSE(p.climber()->converged());
}

}  // namespace
}  // namespace h2
