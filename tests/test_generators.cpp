#include "trace/generators.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace h2 {
namespace {

WorkloadSpec stream_spec() {
  WorkloadSpec s;
  s.name = "stream";
  s.footprint_bytes = 1 << 20;
  s.mix = {1.0, 0.0, 0.0, 0.0, 0.0};
  s.mean_gap = 10;
  s.write_frac = 0.0;
  s.dep_prob = 0.0;
  return s;
}

TEST(SyntheticGenerator, DeterministicForSameSeed) {
  SyntheticGenerator a(stream_spec(), 7), b(stream_spec(), 7);
  for (int i = 0; i < 1000; ++i) {
    const Access x = a.next(), y = b.next();
    EXPECT_EQ(x.addr, y.addr);
    EXPECT_EQ(x.gap, y.gap);
    EXPECT_EQ(x.write, y.write);
  }
}

TEST(SyntheticGenerator, ResetReplaysStream) {
  SyntheticGenerator g(stream_spec(), 9);
  std::vector<Addr> first;
  for (int i = 0; i < 64; ++i) first.push_back(g.next().addr);
  g.reset();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(g.next().addr, first[i]);
}

TEST(SyntheticGenerator, AddressesStayInFootprint) {
  WorkloadSpec s = stream_spec();
  s.mix = {0.2, 0.2, 0.2, 0.2, 0.2};
  SyntheticGenerator g(s, 3);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LT(g.next().addr, s.footprint_bytes);
  }
}

TEST(SyntheticGenerator, StreamIsSequential) {
  SyntheticGenerator g(stream_spec(), 5);
  Addr prev = g.next().addr;
  int sequential = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const Addr a = g.next().addr;
    if (a == (prev + 64) % stream_spec().footprint_bytes) sequential++;
    prev = a;
  }
  EXPECT_EQ(sequential, n);
}

TEST(SyntheticGenerator, ChaseMarksDependent) {
  WorkloadSpec s = stream_spec();
  s.name = "chase";
  s.mix = {0.0, 0.0, 0.0, 1.0, 0.0};
  SyntheticGenerator g(s, 2);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(g.next().dependent);
}

TEST(SyntheticGenerator, WriteFractionHonoured) {
  WorkloadSpec s = stream_spec();
  s.write_frac = 0.4;
  SyntheticGenerator g(s, 11);
  int writes = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) writes += g.next().write;
  EXPECT_NEAR(writes / static_cast<double>(n), 0.4, 0.02);
}

TEST(SyntheticGenerator, MeanGapHonoured) {
  WorkloadSpec s = stream_spec();
  s.mean_gap = 25.0;
  SyntheticGenerator g(s, 13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += g.next().gap;
  EXPECT_NEAR(sum / n, 25.0, 1.5);
}

TEST(SyntheticGenerator, HotRegionConcentratesRandomAccesses) {
  WorkloadSpec s = stream_spec();
  s.name = "rand";
  s.mix = {0.0, 0.0, 1.0, 0.0, 0.0};
  s.hot_frac = 0.05;
  s.hot_prob = 0.9;
  s.zipf_s = 0.9;
  SyntheticGenerator g(s, 17);
  // The hot region is a scrambled 5% subset; measure distinct-line coverage:
  // with 90% of accesses in 5% of lines, distinct lines must be far below a
  // uniform draw.
  std::set<Addr> lines;
  const int n = 20000;
  for (int i = 0; i < n; ++i) lines.insert(g.next().addr / 64);
  EXPECT_LT(lines.size(), 6000u);  // uniform over 16k lines would give ~11k
}

TEST(SyntheticGenerator, StencilUsesMultipleStreams) {
  WorkloadSpec s = stream_spec();
  s.name = "stencil";
  s.mix = {0.0, 0.0, 0.0, 0.0, 1.0};
  s.stencil_streams = 4;
  SyntheticGenerator g(s, 19);
  // Consecutive accesses rotate over 4 lanes; collect the first 4 addresses
  // and verify they sit in distinct quarters of the footprint.
  std::set<u64> quarters;
  for (int i = 0; i < 4; ++i) {
    quarters.insert(g.next().addr / (s.footprint_bytes / 4));
  }
  EXPECT_EQ(quarters.size(), 4u);
}

TEST(SyntheticGenerator, SeedChangesStreamPhase) {
  SyntheticGenerator a(stream_spec(), 100), b(stream_spec(), 200);
  EXPECT_NE(a.next().addr, b.next().addr);
}

TEST(ReplayGenerator, LoopsOverTrace) {
  std::vector<Access> trace = {{0, 1, false, false}, {64, 2, true, false}};
  ReplayGenerator g("replay", trace, 128);
  EXPECT_EQ(g.next().addr, 0u);
  EXPECT_EQ(g.next().addr, 64u);
  EXPECT_EQ(g.next().addr, 0u);  // wrapped
  EXPECT_EQ(g.footprint_bytes(), 128u);
  EXPECT_EQ(g.size(), 2u);
}

}  // namespace
}  // namespace h2
