#include "trace/workloads.h"

#include <gtest/gtest.h>

#include <set>

namespace h2 {
namespace {

TEST(Workloads, AllTable2NamesResolve) {
  for (const auto& c : table2_combos()) {
    EXPECT_EQ(c.cpu.size(), 4u) << c.name;
    for (const auto& w : c.cpu) {
      EXPECT_NO_FATAL_FAILURE(cpu_workload_spec(w)) << w;
    }
    EXPECT_NO_FATAL_FAILURE(gpu_workload_spec(c.gpu)) << c.gpu;
  }
}

TEST(Workloads, TwelveCombosWithPaperNames) {
  const auto& combos = table2_combos();
  ASSERT_EQ(combos.size(), 12u);
  EXPECT_EQ(combos[0].name, "C1");
  EXPECT_EQ(combos[11].name, "C12");
  // Spot-check Table II rows.
  EXPECT_EQ(combos[0].gpu, "backprop");
  EXPECT_EQ(combos[4].gpu, "streamcluster");
  EXPECT_EQ(combos[10].gpu, "bert");
  EXPECT_EQ(combos[2].cpu[3], "cactusBSSN");
}

TEST(Workloads, ComboLookupByName) {
  EXPECT_EQ(combo("C5").gpu, "streamcluster");
  EXPECT_EQ(combo("C7").cpu[0], "bwaves");
}

TEST(Workloads, TenCpuAndNineGpuWorkloads) {
  EXPECT_EQ(cpu_workload_names().size(), 10u);
  EXPECT_EQ(gpu_workload_names().size(), 9u);
}

TEST(Workloads, CpuWorkloadsAreLatencySensitive) {
  // CPU workloads have dependence; GPU kernels essentially none (Insight 1/2
  // prerequisites).
  double cpu_dep = 0, gpu_dep = 0;
  for (const auto& n : cpu_workload_names()) {
    const auto& s = cpu_workload_spec(n);
    cpu_dep += s.dep_prob + s.mix.chase;
  }
  for (const auto& n : gpu_workload_names()) gpu_dep += gpu_workload_spec(n).dep_prob;
  EXPECT_GT(cpu_dep / 10.0, 0.1);
  EXPECT_LT(gpu_dep / 9.0, 0.01);
}

TEST(Workloads, GpuSideIssuesMoreAggregateTraffic) {
  // Memory intensity is a property of the whole side: 6 GPU clusters at
  // high MLP vs 8 latency-bound CPU cores. Compare aggregate issue
  // potential: units * base_ipc / mean_gap (accesses per cycle at full tilt).
  double cpu_rate = 0, gpu_rate = 0;
  for (const auto& n : cpu_workload_names()) {
    cpu_rate += 2.0 / cpu_workload_spec(n).mean_gap;  // per core
  }
  cpu_rate = cpu_rate / 10.0 * 8;  // average workload x 8 cores
  for (const auto& n : gpu_workload_names()) {
    gpu_rate += 2.0 / gpu_workload_spec(n).mean_gap;  // per cluster
  }
  gpu_rate = gpu_rate / 9.0 * 6;  // average kernel x 6 clusters
  // The GPU side's issue potential is comparable; what makes it the
  // bandwidth hog is its MLP (latency tolerance), covered by proc tests.
  EXPECT_GT(gpu_rate, 0.2);
  EXPECT_GT(cpu_rate, 0.2);
}

TEST(Workloads, SpecsAreValidGeneratorInputs) {
  for (const auto& n : cpu_workload_names()) {
    const auto& s = cpu_workload_spec(n);
    SyntheticGenerator g(s, 1);
    for (int i = 0; i < 256; ++i) {
      EXPECT_LT(g.next().addr, s.footprint_bytes) << n;
    }
  }
  for (const auto& n : gpu_workload_names()) {
    const auto& s = gpu_workload_spec(n);
    SyntheticGenerator g(s, 1);
    for (int i = 0; i < 256; ++i) {
      EXPECT_LT(g.next().addr, s.footprint_bytes) << n;
    }
  }
}

TEST(Workloads, ScaledFootprint) {
  const auto& s = cpu_workload_spec("mcf");
  const WorkloadSpec half = with_scaled_footprint(s, 1, 2);
  EXPECT_EQ(half.footprint_bytes, s.footprint_bytes / 2);
  const WorkloadSpec floor = with_scaled_footprint(s, 1, 1 << 30);
  EXPECT_GE(floor.footprint_bytes, 64u * 1024);  // clamped
}

}  // namespace
}  // namespace h2
