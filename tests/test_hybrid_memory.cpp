#include "hybridmem/hybrid_memory.h"

#include <gtest/gtest.h>

#include "policies/baseline.h"
#include "policies/waypart.h"

namespace h2 {
namespace {

MemSystemConfig small_mem() {
  MemSystemConfig m = MemSystemConfig::table1_default();
  return m;
}

HybridMemConfig small_hybrid() {
  HybridMemConfig h;
  h.fast_capacity_bytes = 64 * 1024;   // 64 sets of 4x256 B
  h.slow_capacity_bytes = 1 << 20;
  h.remap_cache_bytes = 16 * 1024;
  return h;
}

TEST(HybridMemory, GeometryFromConfig) {
  MemorySystem mem(small_mem());
  BaselinePolicy pol;
  HybridMemory hm(small_hybrid(), &mem, &pol);
  EXPECT_EQ(hm.num_sets(), 64u);
  EXPECT_EQ(hm.assoc(), 4u);
  EXPECT_EQ(hm.set_of(0), 0u);
  EXPECT_EQ(hm.set_of(256), 1u);
  EXPECT_EQ(hm.set_of(64u * 256), 0u);  // wraps at num_sets
}

TEST(HybridMemory, MissMigratesThenHits) {
  MemorySystem mem(small_mem());
  BaselinePolicy pol;
  HybridMemory hm(small_hybrid(), &mem, &pol);

  const Cycle t1 = hm.access(0, Requestor::Cpu, 0x1000, false);
  EXPECT_GT(t1, 0u);
  EXPECT_EQ(hm.stats(Requestor::Cpu).misses, 1u);
  EXPECT_EQ(hm.stats(Requestor::Cpu).migrations, 1u);

  const Cycle t2 = hm.access(t1, Requestor::Cpu, 0x1000, false);
  EXPECT_EQ(hm.stats(Requestor::Cpu).fast_hits, 1u);
  // A fast hit must be served faster than the cold miss took.
  EXPECT_LT(t2 - t1, t1);
}

TEST(HybridMemory, MigrationAmplifiesSlowTraffic) {
  // Fig. 4: a miss refill moves a whole 256 B block from the slow tier for a
  // 64 B demand.
  MemorySystem mem(small_mem());
  BaselinePolicy pol;
  HybridMemory hm(small_hybrid(), &mem, &pol);
  hm.access(0, Requestor::Gpu, 0x2000, false);
  EXPECT_EQ(mem.tier_bytes(Tier::Slow), 256u);
  EXPECT_GE(mem.tier_bytes(Tier::Fast), 256u);  // fill write (+ metadata)
}

TEST(HybridMemory, DirtyVictimCausesWriteback) {
  MemorySystem mem(small_mem());
  BaselinePolicy pol;
  HybridMemConfig cfg = small_hybrid();
  HybridMemory hm(cfg, &mem, &pol);
  const u32 sets = hm.num_sets();
  const u64 set_stride = 256ull * sets;

  // Fill set 0's four ways with dirty blocks.
  Cycle t = 0;
  for (u64 i = 0; i < 4; ++i) t = hm.access(t, Requestor::Cpu, i * set_stride, true);
  // Fifth block in the same set evicts a dirty victim.
  const u64 slow_before = mem.tier_bytes(Tier::Slow);
  hm.access(t, Requestor::Cpu, 4 * set_stride, false);
  EXPECT_EQ(hm.stats(Requestor::Cpu).dirty_writebacks, 1u);
  // Refill read (256) + dirty writeback (256).
  EXPECT_EQ(mem.tier_bytes(Tier::Slow) - slow_before, 512u);
}

TEST(HybridMemory, LruVictimSelection) {
  MemorySystem mem(small_mem());
  BaselinePolicy pol;
  HybridMemory hm(small_hybrid(), &mem, &pol);
  const u64 set_stride = 256ull * hm.num_sets();
  Cycle t = 0;
  for (u64 i = 0; i < 4; ++i) t = hm.access(t, Requestor::Cpu, i * set_stride, false);
  // Touch block 0 so block 1 is LRU.
  t = hm.access(t, Requestor::Cpu, 0, false);
  t = hm.access(t, Requestor::Cpu, 4 * set_stride, false);  // evicts block 1
  t = hm.access(t, Requestor::Cpu, 0, false);               // still a hit
  EXPECT_EQ(hm.stats(Requestor::Cpu).fast_hits, 2u);
  hm.access(t, Requestor::Cpu, 1 * set_stride, false);  // miss again
  EXPECT_EQ(hm.stats(Requestor::Cpu).misses, 6u);
}

TEST(HybridMemory, WritebackHitsFastOrSlow) {
  MemorySystem mem(small_mem());
  BaselinePolicy pol;
  HybridMemory hm(small_hybrid(), &mem, &pol);
  const Cycle t = hm.access(0, Requestor::Cpu, 0x4000, false);
  const u64 fast_before = mem.tier_bytes(Tier::Fast);
  hm.writeback(t, Requestor::Cpu, 0x4000);  // resident -> fast write
  EXPECT_EQ(mem.tier_bytes(Tier::Fast) - fast_before, 64u);
  const u64 slow_before = mem.tier_bytes(Tier::Slow);
  hm.writeback(t, Requestor::Cpu, 0x90000);  // absent -> slow write
  EXPECT_EQ(mem.tier_bytes(Tier::Slow) - slow_before, 64u);
  EXPECT_EQ(hm.stats(Requestor::Cpu).llc_writebacks, 2u);
}

TEST(HybridMemory, RemapCacheMissChargesFastRead) {
  MemorySystem mem(small_mem());
  BaselinePolicy pol;
  HybridMemConfig cfg = small_hybrid();
  cfg.remap_cache_bytes = 1024;  // tiny: most probes miss
  HybridMemory hm(cfg, &mem, &pol);
  // Stream across many sets (stride 2 so each probe is a fresh metadata
  // line); metadata misses add fast-tier reads.
  Cycle t = 0;
  for (u64 i = 0; i < 32; ++i) t = hm.access(t, Requestor::Cpu, i * 2 * 256, false);
  EXPECT_LT(hm.remap_cache().hit_rate(), 0.5);
  EXPECT_GT(mem.tier_bytes(Tier::Fast), 32u * 256u);  // fills + metadata reads
}

TEST(HybridMemory, ChainingFindsPartnerSetBlock) {
  MemorySystem mem(small_mem());
  BaselinePolicy pol;
  HybridMemConfig cfg = small_hybrid();
  cfg.assoc = 1;
  cfg.chaining = true;
  HybridMemory hm(cfg, &mem, &pol);
  const u32 sets = hm.num_sets();
  const u64 set_stride = 256;

  // Two blocks mapping to sets 2 and 3 (chain partners 2^1=3).
  Cycle t = hm.access(0, Requestor::Cpu, 2 * set_stride, false);
  t = hm.access(t, Requestor::Cpu, 3 * set_stride, false);
  // A block that maps to set 2 but was displaced... instead verify a lookup
  // in set 2 for the block resident in set 3 reports a chained hit: displace
  // set 2's block with a conflicting one, then re-access the original.
  t = hm.access(t, Requestor::Cpu, (2 + sets) * set_stride, false);  // evicts set 2
  const HybridStats before = hm.stats(Requestor::Cpu);
  t = hm.access(t, Requestor::Cpu, 3 * set_stride, false);  // still in set 3
  EXPECT_EQ(hm.stats(Requestor::Cpu).fast_hits, before.fast_hits + 1);
}

TEST(HybridMemory, WayPartKeepsSidesApart) {
  MemorySystem mem(small_mem());
  WayPartPolicy pol(0.75);
  HybridMemory hm(small_hybrid(), &mem, &pol);
  const u64 set_stride = 256ull * hm.num_sets();
  Cycle t = 0;
  // CPU fills its 3 ways; GPU fills its 1 way; neither evicts the other.
  for (u64 i = 0; i < 3; ++i) t = hm.access(t, Requestor::Cpu, i * set_stride, false);
  t = hm.access(t, Requestor::Gpu, 10 * set_stride, false);
  // All four still resident:
  for (u64 i = 0; i < 3; ++i) t = hm.access(t, Requestor::Cpu, i * set_stride, false);
  t = hm.access(t, Requestor::Gpu, 10 * set_stride, false);
  EXPECT_EQ(hm.stats(Requestor::Cpu).fast_hits, 3u);
  EXPECT_EQ(hm.stats(Requestor::Gpu).fast_hits, 1u);
  // GPU streaming through many blocks cannot displace CPU blocks.
  for (u64 i = 0; i < 32; ++i) t = hm.access(t, Requestor::Gpu, (20 + i) * set_stride, false);
  for (u64 i = 0; i < 3; ++i) t = hm.access(t, Requestor::Cpu, i * set_stride, false);
  EXPECT_EQ(hm.stats(Requestor::Cpu).fast_hits, 6u);
}

TEST(HybridMemory, InstantReconfigRewritesOwnership) {
  MemorySystem mem(small_mem());
  WayPartPolicy pol(0.75);
  HybridMemory hm(small_hybrid(), &mem, &pol);
  hm.access(0, Requestor::Cpu, 0, false);
  hm.run_instant_reconfig();
  // Owners must match the policy everywhere after the sweep.
  for (u32 s = 0; s < hm.num_sets(); ++s) {
    for (u32 w = 0; w < hm.assoc(); ++w) {
      EXPECT_EQ(hm.table().way(s, w).owner_cpu,
                pol.way_owner(s, w) == Requestor::Cpu);
    }
  }
}

// --- bit-identity of the flattened layouts --------------------------------
//
// The mechanism's hot loops read the remap table through a struct-of-arrays
// layout and the policy mapping through a generation-stamped flat cache
// (policy.h). Both are caches OF the authoritative representations, so
// their contract is exact agreement — pinned here across reconfigurations
// and by the level-2 structural audit.

TEST(HybridMemory, FlatMappingMatchesVirtualsAcrossReconfiguration) {
  MemorySystem mem(small_mem());
  WayPartPolicy pol(0.75);
  HybridMemory hm(small_hybrid(), &mem, &pol);
  const auto expect_flat_matches_virtuals = [&] {
    for (u32 s = 0; s < hm.num_sets(); ++s) {
      for (u32 w = 0; w < hm.assoc(); ++w) {
        EXPECT_EQ(pol.flat_channel_of_way(s, w), pol.channel_of_way(s, w));
        EXPECT_EQ(pol.flat_owner_is_cpu(s, w),
                  pol.way_owner(s, w) == Requestor::Cpu);
        for (const Requestor cls : {Requestor::Cpu, Requestor::Gpu}) {
          EXPECT_EQ(pol.flat_way_allowed(s, w, cls), pol.way_allowed(s, w, cls));
        }
      }
    }
  };
  expect_flat_matches_virtuals();  // cold rows refresh on first read

  // Warm every row, reconfigure, and re-check: set_cpu_ways must invalidate
  // the cached rows, not leave stale masks behind.
  Cycle t = 0;
  for (u64 i = 0; i < 16; ++i) t = hm.access(t, Requestor::Cpu, i * 256, false);
  ASSERT_TRUE(pol.set_cpu_ways(1));
  expect_flat_matches_virtuals();
  ASSERT_TRUE(pol.set_cpu_ways(3));
  expect_flat_matches_virtuals();
}

TEST(HybridMemory, VictimChoiceMatchesVirtualWalkUnderPartitioning) {
  // pick_victim consumes the flat permission masks and the SoA valid/lru
  // rows; an independent walk over the virtual interface plus way() proxies
  // must name the same victim for every (set, class) — first invalid
  // allowed way, else minimum-lru allowed way (strict <).
  MemorySystem mem(small_mem());
  WayPartPolicy pol(0.5);
  HybridMemory hm(small_hybrid(), &mem, &pol);
  const u64 set_stride = 256ull * hm.num_sets();
  Cycle t = 0;
  for (u64 i = 0; i < 48; ++i) {
    const Requestor cls = (i % 3) ? Requestor::Gpu : Requestor::Cpu;
    t = hm.access(t, cls, (i * 7) % 24 * set_stride + (i % 4) * 256, i % 5 == 0);
  }
  for (u32 s = 0; s < hm.num_sets(); ++s) {
    for (const Requestor cls : {Requestor::Cpu, Requestor::Gpu}) {
      i32 want = -1;
      u64 want_lru = ~0ull;
      for (u32 w = 0; w < hm.assoc(); ++w) {
        if (!pol.way_allowed(s, w, cls)) continue;
        const RemapWay rw = hm.table().way(s, w);
        if (!rw.valid) {
          want = static_cast<i32>(w);
          break;
        }
        if (rw.lru < want_lru) {
          want_lru = rw.lru;
          want = static_cast<i32>(w);
        }
      }
      EXPECT_EQ(hm.pick_victim(s, cls), want) << "set " << s;
    }
  }
}

TEST(HybridMemory, FullAuditPassesOverNewLayoutsAfterMixedWorkload) {
  // Drives hits, misses, evictions, writebacks and a reconfiguration over
  // the SoA table and flat policy cache, then runs the full structural
  // audit — at H2_CHECK level 2 this cross-checks the flat cache against
  // the virtuals and the residency bijection over the SoA arrays; at lower
  // levels it degrades to the same no-op as before.
  MemorySystem mem(small_mem());
  WayPartPolicy pol(0.75);
  HybridMemory hm(small_hybrid(), &mem, &pol);
  const u64 set_stride = 256ull * hm.num_sets();
  Cycle t = 0;
  for (u64 i = 0; i < 96; ++i) {
    const Requestor cls = (i % 2) ? Requestor::Gpu : Requestor::Cpu;
    t = hm.access(t, cls, (i * 13) % 40 * set_stride + (i % 8) * 256, i % 3 == 0);
  }
  hm.audit(t, "test mixed workload");
  pol.set_cpu_ways(2);
  for (u64 i = 0; i < 32; ++i) t = hm.access(t, Requestor::Cpu, i * 256, false);
  hm.audit(t, "test after reconfig");
}

}  // namespace
}  // namespace h2
