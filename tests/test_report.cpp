#include "harness/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace h2 {
namespace {

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(1.2345), "1.23");
  EXPECT_EQ(fmt(1.2345, 3), "1.234");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Fmt, Percent) {
  EXPECT_EQ(fmt_pct(0.317), "31.7%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
  EXPECT_EQ(fmt_pct(0.0), "0.0%");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t("title", {"a", "longer"});
  t.row({"xxxx", "y"});
  t.row({"z", "ww"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== title =="), std::string::npos);
  // Header and both rows present; rows retain order.
  EXPECT_LT(out.find("xxxx"), out.find("ww"));
}

TEST(TablePrinter, RowWidthMismatchAborts) {
  TablePrinter t("t", {"a", "b"});
  EXPECT_DEATH(t.row({"only-one"}), "row width");
}

TEST(TablePrinter, CsvRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "h2_report_test.csv").string();
  TablePrinter t("t", {"col1", "col,2"});
  t.row({"v1", "v,2"});
  t.write_csv(path);
  std::ifstream f(path);
  std::string line1, line2;
  std::getline(f, line1);
  std::getline(f, line2);
  EXPECT_EQ(line1, "col1,\"col,2\"");
  EXPECT_EQ(line2, "v1,\"v,2\"");
  std::remove(path.c_str());
}

TEST(PrintCheck, FormatsBothValues) {
  std::ostringstream os;
  print_check(os, "speedup", 1.24, 1.15);
  EXPECT_NE(os.str().find("paper=1.24"), std::string::npos);
  EXPECT_NE(os.str().find("measured=1.15"), std::string::npos);
}

}  // namespace
}  // namespace h2
