#include "harness/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "harness/experiment.h"
#include "harness/sweep.h"

namespace h2 {
namespace {

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(1.2345), "1.23");
  EXPECT_EQ(fmt(1.2345, 3), "1.234");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Fmt, Percent) {
  EXPECT_EQ(fmt_pct(0.317), "31.7%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
  EXPECT_EQ(fmt_pct(0.0), "0.0%");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t("title", {"a", "longer"});
  t.row({"xxxx", "y"});
  t.row({"z", "ww"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== title =="), std::string::npos);
  // Header and both rows present; rows retain order.
  EXPECT_LT(out.find("xxxx"), out.find("ww"));
}

TEST(TablePrinter, RowWidthMismatchAborts) {
  TablePrinter t("t", {"a", "b"});
  EXPECT_DEATH(t.row({"only-one"}), "row width");
}

TEST(TablePrinter, CsvRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "h2_report_test.csv").string();
  TablePrinter t("t", {"col1", "col,2"});
  t.row({"v1", "v,2"});
  t.write_csv(path);
  std::ifstream f(path);
  std::string line1, line2;
  std::getline(f, line1);
  std::getline(f, line2);
  EXPECT_EQ(line1, "col1,\"col,2\"");
  EXPECT_EQ(line2, "v1,\"v,2\"");
  std::remove(path.c_str());
}

TEST(PrintCheck, FormatsBothValues) {
  std::ostringstream os;
  print_check(os, "speedup", 1.24, 1.15);
  EXPECT_NE(os.str().find("paper=1.24"), std::string::npos);
  EXPECT_NE(os.str().find("measured=1.15"), std::string::npos);
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream f(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(f, line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> split_cells(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else {
      cell += c;
    }
  }
  cells.push_back(cell);
  return cells;
}

TEST(AppendResultCsv, OkAndFailedSlotsRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "h2_result_rows_test.csv").string();
  std::remove(path.c_str());

  ExperimentConfig cfg;
  cfg.combo = "C1";

  SweepRun ok;
  ok.combo = "C1";
  ok.design = "hydrogen";
  ok.ok = true;
  ok.status = RunStatus::Ok;
  ok.attempts = 1;
  ok.result.cpu_cycles = 1000;
  ok.result.gpu_cycles = 2000;
  ok.result.weighted_ipc = 1.5;

  SweepRun failed;
  failed.combo = "C1";
  failed.design = "profess";
  failed.status = RunStatus::TimedOut;
  failed.attempts = 3;
  failed.error = "exceeded run timeout on attempt 3";  // comma-free: the naive
                                                       // splitter below has no
                                                       // quote handling

  append_result_csv(path, ok, cfg);
  append_result_csv(path, failed, cfg);  // header must not repeat

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  const std::vector<std::string> header = split_cells(lines[0]);
  const std::vector<std::string> row_ok = split_cells(lines[1]);
  const std::vector<std::string> row_bad = split_cells(lines[2]);
  ASSERT_EQ(row_ok.size(), header.size());
  ASSERT_EQ(row_bad.size(), header.size());  // failed rows keep the full width

  auto col = [&](const std::vector<std::string>& row, const std::string& name) {
    for (size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return row[i];
    }
    ADD_FAILURE() << "no column " << name;
    return std::string();
  };
  EXPECT_EQ(col(row_ok, "status"), "ok");
  EXPECT_EQ(col(row_ok, "design"), "hydrogen");
  EXPECT_EQ(col(row_ok, "cpu_cycles"), "1000");
  EXPECT_EQ(col(row_bad, "status"), "timeout");
  EXPECT_EQ(col(row_bad, "attempts"), "3");
  EXPECT_EQ(col(row_bad, "cpu_cycles"), "");  // lost cell, explicit and empty
  EXPECT_NE(col(row_bad, "error").find("exceeded run timeout"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace h2
