#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/workloads.h"

namespace h2 {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(TraceIo, RoundTripPreservesAccesses) {
  const std::string path = temp_path("h2_trace_roundtrip.bin");
  WorkloadSpec s = cpu_workload_spec("gcc");
  SyntheticGenerator gen(s, 42);
  const u64 n = 5000;
  const u64 bytes = record_trace(gen, n, path);
  EXPECT_GT(bytes, n * 12);

  u64 footprint = 0;
  const auto loaded = load_trace(path, &footprint);
  ASSERT_EQ(loaded.size(), n);
  EXPECT_EQ(footprint, s.footprint_bytes);

  gen.reset();
  for (u64 i = 0; i < n; ++i) {
    const Access a = gen.next();
    EXPECT_EQ(loaded[i].addr, a.addr);
    EXPECT_EQ(loaded[i].gap, a.gap);
    EXPECT_EQ(loaded[i].write, a.write);
    EXPECT_EQ(loaded[i].dependent, a.dependent);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, ReplayFromFileUsesHeaderFootprint) {
  const std::string path = temp_path("h2_trace_replay.bin");
  WorkloadSpec s = gpu_workload_spec("bfs");
  SyntheticGenerator gen(s, 7);
  record_trace(gen, 100, path);

  ReplayGenerator replay = replay_from_file("bfs-replay", path);
  EXPECT_EQ(replay.footprint_bytes(), s.footprint_bytes);
  EXPECT_EQ(replay.size(), 100u);

  gen.reset();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(replay.next().addr, gen.next().addr);
  // wraps around
  gen.reset();
  EXPECT_EQ(replay.next().addr, gen.next().addr);
  std::remove(path.c_str());
}

TEST(TraceIo, FlagsPackBothBits) {
  const std::string path = temp_path("h2_trace_flags.bin");
  std::vector<Access> t = {{0, 1, true, true}, {64, 1, false, true}, {128, 1, true, false}};
  ReplayGenerator src("flags", t, 256);
  record_trace(src, 3, path);
  const auto loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_TRUE(loaded[0].write);
  EXPECT_TRUE(loaded[0].dependent);
  EXPECT_FALSE(loaded[1].write);
  EXPECT_TRUE(loaded[1].dependent);
  EXPECT_TRUE(loaded[2].write);
  EXPECT_FALSE(loaded[2].dependent);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace h2
