#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "trace/workloads.h"

namespace h2 {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Writes a small valid trace and returns its path (caller removes it).
std::string write_valid_trace(const std::string& name, u64 count) {
  const std::string path = temp_path(name);
  WorkloadSpec s = cpu_workload_spec("gcc");
  SyntheticGenerator gen(s, 42);
  record_trace(gen, count, path);
  return path;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(TraceIo, RoundTripPreservesAccesses) {
  const std::string path = temp_path("h2_trace_roundtrip.bin");
  WorkloadSpec s = cpu_workload_spec("gcc");
  SyntheticGenerator gen(s, 42);
  const u64 n = 5000;
  const u64 bytes = record_trace(gen, n, path);
  EXPECT_GT(bytes, n * 12);

  u64 footprint = 0;
  const auto loaded = load_trace(path, &footprint);
  ASSERT_EQ(loaded.size(), n);
  EXPECT_EQ(footprint, s.footprint_bytes);

  gen.reset();
  for (u64 i = 0; i < n; ++i) {
    const Access a = gen.next();
    EXPECT_EQ(loaded[i].addr, a.addr);
    EXPECT_EQ(loaded[i].gap, a.gap);
    EXPECT_EQ(loaded[i].write, a.write);
    EXPECT_EQ(loaded[i].dependent, a.dependent);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, ReplayFromFileUsesHeaderFootprint) {
  const std::string path = temp_path("h2_trace_replay.bin");
  WorkloadSpec s = gpu_workload_spec("bfs");
  SyntheticGenerator gen(s, 7);
  record_trace(gen, 100, path);

  ReplayGenerator replay = replay_from_file("bfs-replay", path);
  EXPECT_EQ(replay.footprint_bytes(), s.footprint_bytes);
  EXPECT_EQ(replay.size(), 100u);

  gen.reset();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(replay.next().addr, gen.next().addr);
  // wraps around
  gen.reset();
  EXPECT_EQ(replay.next().addr, gen.next().addr);
  std::remove(path.c_str());
}

TEST(TraceIo, FlagsPackBothBits) {
  const std::string path = temp_path("h2_trace_flags.bin");
  std::vector<Access> t = {{0, 1, true, true}, {64, 1, false, true}, {128, 1, true, false}};
  ReplayGenerator src("flags", t, 256);
  record_trace(src, 3, path);
  const auto loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_TRUE(loaded[0].write);
  EXPECT_TRUE(loaded[0].dependent);
  EXPECT_FALSE(loaded[1].write);
  EXPECT_TRUE(loaded[1].dependent);
  EXPECT_TRUE(loaded[2].write);
  EXPECT_FALSE(loaded[2].dependent);
  std::remove(path.c_str());
}

// ---- negative paths: every malformed input must throw TraceError with a ----
// ---- useful message, never crash or silently misparse.                  ----

TEST(TraceIoNegative, MissingFileThrows) {
  EXPECT_THROW(load_trace(temp_path("h2_trace_does_not_exist.bin")), TraceError);
}

TEST(TraceIoNegative, EmptyFileThrows) {
  const std::string path = temp_path("h2_trace_empty.bin");
  dump(path, {});
  EXPECT_THROW(load_trace(path), TraceError);
  std::remove(path.c_str());
}

TEST(TraceIoNegative, TruncatedHeaderThrows) {
  const std::string path = write_valid_trace("h2_trace_short_header.bin", 10);
  auto bytes = slurp(path);
  bytes.resize(7);  // mid-header
  dump(path, bytes);
  try {
    load_trace(path);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated header"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(TraceIoNegative, BadMagicThrows) {
  const std::string path = write_valid_trace("h2_trace_bad_magic.bin", 10);
  auto bytes = slurp(path);
  bytes[0] = 'X';
  dump(path, bytes);
  try {
    load_trace(path);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

TEST(TraceIoNegative, UnsupportedVersionThrows) {
  const std::string path = write_valid_trace("h2_trace_bad_version.bin", 10);
  auto bytes = slurp(path);
  bytes[4] = 99;  // version field follows the 4-byte magic
  dump(path, bytes);
  try {
    load_trace(path);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

TEST(TraceIoNegative, TruncatedRecordsThrow) {
  const std::string path = write_valid_trace("h2_trace_truncated.bin", 100);
  auto bytes = slurp(path);
  // Chop off the last 4 records exactly (13 bytes each, packed).
  bytes.resize(bytes.size() - 4 * 13);
  dump(path, bytes);
  try {
    load_trace(path);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

TEST(TraceIoNegative, TrailingPartialRecordThrows) {
  const std::string path = write_valid_trace("h2_trace_partial.bin", 100);
  auto bytes = slurp(path);
  bytes.resize(bytes.size() - 5);  // tear the final record in half
  dump(path, bytes);
  try {
    load_trace(path);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("partial record"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(TraceIoNegative, HugeCountDoesNotAllocate) {
  // A corrupted count must be rejected against the file size before
  // reserve() — not after a multi-GiB allocation attempt.
  const std::string path = write_valid_trace("h2_trace_huge_count.bin", 10);
  auto bytes = slurp(path);
  for (int i = 8; i < 16; ++i) bytes[i] = static_cast<char>(0xff);  // count = ~0
  dump(path, bytes);
  EXPECT_THROW(load_trace(path), TraceError);
  std::remove(path.c_str());
}

TEST(TraceIoNegative, GarbageFlagBitsThrow) {
  const std::string path = write_valid_trace("h2_trace_garbage.bin", 10);
  auto bytes = slurp(path);
  bytes.back() = static_cast<char>(0xf4);  // last record's flag byte: undefined bits
  dump(path, bytes);
  try {
    load_trace(path);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("undefined flag bits"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(TraceIoNegative, UnwritablePathThrows) {
  WorkloadSpec s = cpu_workload_spec("gcc");
  SyntheticGenerator gen(s, 42);
  EXPECT_THROW(record_trace(gen, 10, "/nonexistent-dir/out.trace"), TraceError);
}

}  // namespace
}  // namespace h2
