#include "hydrogen/token_bucket.h"

#include <gtest/gtest.h>

namespace h2 {
namespace {

TEST(TokenBucket, ConsumesUntilEmpty) {
  TokenBucket tb(3, 1000);
  tb.advance(0);
  EXPECT_TRUE(tb.try_consume(1));
  EXPECT_TRUE(tb.try_consume(2));
  EXPECT_FALSE(tb.try_consume(1));  // empty
  EXPECT_EQ(tb.consumed(), 3u);
  EXPECT_EQ(tb.suppressed(), 1u);
}

TEST(TokenBucket, FaucetRefillsEachPeriod) {
  TokenBucket tb(2, 1000);
  EXPECT_TRUE(tb.try_consume(0, 2));
  EXPECT_FALSE(tb.try_consume(500, 1));   // still inside the period
  EXPECT_TRUE(tb.try_consume(1000, 1));   // refilled
  EXPECT_TRUE(tb.try_consume(1999, 1));
  EXPECT_FALSE(tb.try_consume(1999, 1));
}

TEST(TokenBucket, RefillDoesNotAccumulate) {
  TokenBucket tb(5, 100);
  tb.advance(0);
  tb.advance(10'000);  // many idle periods
  EXPECT_EQ(tb.tokens(), 5u);  // capped at the budget, not 100x5
}

TEST(TokenBucket, DirtyMigrationCostsTwo) {
  // Convention from Section IV-B: refill = 1 token, +1 with writeback/swap.
  TokenBucket tb(2, 1000);
  tb.advance(0);
  EXPECT_TRUE(tb.try_consume(2));   // one dirty migration
  EXPECT_FALSE(tb.try_consume(1));  // budget gone
}

TEST(TokenBucket, BudgetChangeTakesEffectOnNextRefill) {
  TokenBucket tb(1, 100);
  tb.advance(0);
  EXPECT_TRUE(tb.try_consume(1));
  tb.set_budget(4);
  EXPECT_FALSE(tb.try_consume(1));  // still the old fill
  tb.advance(100);
  EXPECT_EQ(tb.tokens(), 4u);
}

TEST(TokenBucket, CountsRefills) {
  TokenBucket tb(1, 10);
  tb.advance(95);
  EXPECT_EQ(tb.refills(), 10u);  // periods 0,10,...,90
}

}  // namespace
}  // namespace h2
