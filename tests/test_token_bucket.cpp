#include "hydrogen/token_bucket.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace h2 {
namespace {

TEST(TokenBucket, ConsumesUntilEmpty) {
  TokenBucket tb(3, 1000);
  tb.advance(0);
  EXPECT_TRUE(tb.try_consume(1));
  EXPECT_TRUE(tb.try_consume(2));
  EXPECT_FALSE(tb.try_consume(1));  // empty
  EXPECT_EQ(tb.consumed(), 3u);
  EXPECT_EQ(tb.suppressed(), 1u);
}

TEST(TokenBucket, FaucetRefillsEachPeriod) {
  TokenBucket tb(2, 1000);
  EXPECT_TRUE(tb.try_consume(0, 2));
  EXPECT_FALSE(tb.try_consume(500, 1));   // still inside the period
  EXPECT_TRUE(tb.try_consume(1000, 1));   // refilled
  EXPECT_TRUE(tb.try_consume(1999, 1));
  EXPECT_FALSE(tb.try_consume(1999, 1));
}

TEST(TokenBucket, RefillDoesNotAccumulate) {
  TokenBucket tb(5, 100);
  tb.advance(0);
  tb.advance(10'000);  // many idle periods
  EXPECT_EQ(tb.tokens(), 5u);  // capped at the budget, not 100x5
}

TEST(TokenBucket, DirtyMigrationCostsTwo) {
  // Convention from Section IV-B: refill = 1 token, +1 with writeback/swap.
  TokenBucket tb(2, 1000);
  tb.advance(0);
  EXPECT_TRUE(tb.try_consume(2));   // one dirty migration
  EXPECT_FALSE(tb.try_consume(1));  // budget gone
}

TEST(TokenBucket, BudgetChangeTakesEffectOnNextRefill) {
  TokenBucket tb(1, 100);
  tb.advance(0);
  EXPECT_TRUE(tb.try_consume(1));
  tb.set_budget(4);
  EXPECT_FALSE(tb.try_consume(1));  // still the old fill
  tb.advance(100);
  EXPECT_EQ(tb.tokens(), 4u);
}

TEST(TokenBucket, CountsRefills) {
  TokenBucket tb(1, 10);
  tb.advance(95);
  EXPECT_EQ(tb.refills(), 10u);  // periods 0,10,...,90
}

// ---- seeded property tests ------------------------------------------------
// Deterministic off an explicit Rng seed (same style as test_sweep.cpp):
// every run replays the identical traffic pattern, so a failure is
// reproducible by seed rather than an unlucky scheduling artefact.

TEST(TokenBucketProperty, TokensNeverExceedBudgetUnderRandomTraffic) {
  Rng rng(20260805);
  for (int trial = 0; trial < 20; ++trial) {
    const u64 budget = 1 + rng.next_below(16);
    const Cycle period = 10 + rng.next_below(1000);
    TokenBucket tb(budget, period);
    Cycle now = 0;
    for (int i = 0; i < 2000; ++i) {
      now += rng.next_below(period * 2);  // sometimes skips whole periods
      tb.try_consume(now, 1 + rng.next_below(3));
      EXPECT_LE(tb.tokens(), budget)
          << "trial=" << trial << " now=" << now << " budget=" << budget;
    }
  }
}

TEST(TokenBucketProperty, ConsumedBoundedByRefilledSupply) {
  // Conservation: everything consumed came from the initial fill or a
  // faucet refill, so consumed <= (refills + 1) * budget.
  Rng rng(123456789);
  for (int trial = 0; trial < 20; ++trial) {
    const u64 budget = 1 + rng.next_below(8);
    const Cycle period = 50 + rng.next_below(500);
    TokenBucket tb(budget, period);
    Cycle now = 0;
    for (int i = 0; i < 2000; ++i) {
      now += rng.next_below(period);
      tb.try_consume(now, 1 + rng.next_below(2));
    }
    EXPECT_LE(tb.consumed(), (tb.refills() + 1) * budget) << "trial=" << trial;
  }
}

TEST(TokenBucketProperty, BudgetChangesUnderRandomTrafficStayBounded) {
  // set_budget mid-period legitimately leaves tokens > new budget until the
  // next refill; after any refill the count must be under the budget then
  // in force. Exercised with random budget changes and random consumption.
  Rng rng(42);
  TokenBucket tb(8, 100);
  Cycle now = 0;
  u64 current_budget = 8;
  for (int i = 0; i < 5000; ++i) {
    if (rng.chance(0.05)) {
      current_budget = 1 + rng.next_below(16);
      tb.set_budget(current_budget);
    }
    now += rng.next_below(30);
    tb.try_consume(now, 1);
    EXPECT_LE(tb.tokens(), std::max<u64>(current_budget, 16)) << "i=" << i;
  }
  // The faucet itself audits tokens <= burst at every advance (H2_CHECK);
  // reaching here without a check failure is the real assertion.
  SUCCEED();
}

}  // namespace
}  // namespace h2
