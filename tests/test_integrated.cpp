// The integrated coherent-NUMA design (policies/integrated.h): first-touch
// placement, counter-threshold migration, cooldown hysteresis, and the
// migration bandwidth accounting — driven directly through HybridMemory in
// flat mode, then end to end through run_experiment and the sweep/shard
// harnesses for bit-identity.
#include "policies/integrated.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/epoch_schedule.h"
#include "common/rng.h"
#include "harness/experiment.h"
#include "harness/journal.h"
#include "harness/sweep.h"
#include "hybridmem/hybrid_memory.h"

namespace h2 {
namespace {

HybridMemConfig flat_cfg() {
  HybridMemConfig h;
  h.mode = HybridMode::Flat;
  h.fast_capacity_bytes = 64 * 1024;
  h.slow_capacity_bytes = 1 << 20;
  h.remap_cache_bytes = 16 * 1024;
  return h;
}

IntegratedConfig small_icfg(u32 threshold = 4, u64 cooldown = 512) {
  IntegratedConfig ic;
  ic.threshold = threshold;
  ic.cooldown = cooldown;
  ic.block_bytes = 256;
  ic.stats.coarse_slots = 4096;
  ic.stats.hot_slots = 256;
  ic.stats.probe_window = 4;
  return ic;
}

TEST(Integrated, FirstTouchPlacesFastWithoutMigrating) {
  MemorySystem mem(MemSystemConfig::table1_default());
  IntegratedPolicy pol(small_icfg());
  HybridMemory hm(flat_cfg(), &mem, &pol);
  const u64 set_stride = 256ull * hm.num_sets();
  Cycle t = 0;
  for (u64 i = 0; i < 4; ++i) t = hm.access(t, Requestor::Cpu, i * set_stride, false);
  const HybridStats& s = hm.stats(Requestor::Cpu);
  EXPECT_EQ(s.first_touches, 4u);
  EXPECT_EQ(s.migrations, 0u);
  EXPECT_EQ(pol.migrations_up(), 0u);
  EXPECT_EQ(mem.tier_bytes(Tier::Slow), 0u);  // placement is free
  // First touches feed the counter table too: block 0's bucket already holds
  // one count, so its first re-access (a hit) crosses the promote threshold
  // and the tag reads an exact value.
  t = hm.access(t, Requestor::Cpu, 0, false);
  EXPECT_GE(pol.stats().value(0), 2u);
}

TEST(Integrated, ThresholdCrossingMigratesExactlyOnce) {
  MemorySystem mem(MemSystemConfig::table1_default());
  IntegratedPolicy pol(small_icfg(/*threshold=*/4, /*cooldown=*/512));
  HybridMemory hm(flat_cfg(), &mem, &pol);
  const u64 set_stride = 256ull * hm.num_sets();
  Cycle t = 0;
  // Fill set 0's four ways by first touch, then hammer a fifth conflicting
  // block: it bypasses to slow while its counter climbs, crosses the
  // threshold, migrates exactly once, and every later access hits fast.
  for (u64 i = 0; i < 4; ++i) t = hm.access(t, Requestor::Cpu, i * set_stride, false);
  const Addr hot = 4 * set_stride;
  for (u32 i = 0; i < 8; ++i) t = hm.access(t, Requestor::Cpu, hot, false);

  const HybridStats& s = hm.stats(Requestor::Cpu);
  EXPECT_EQ(s.migrations, 1u);
  EXPECT_EQ(pol.migrations_up(), 1u);
  EXPECT_EQ(pol.migrations_down(), 1u);
  EXPECT_EQ(pol.migration_bytes(), 2u * 256u);
  // Before the migration every access bypassed; after it, every one hits.
  EXPECT_GE(s.fast_hits, 3u);
  EXPECT_LE(s.bypasses, 4u);
  EXPECT_EQ(s.misses, s.first_touches + s.migrations + s.bypasses);
  // The migrated page's counter was cleared: whatever it re-earned from the
  // post-migration hits is still below the threshold.
  EXPECT_LT(pol.stats().value(hot / 256), pol.threshold());
}

TEST(Integrated, CooldownPreventsPingPong) {
  MemorySystem mem(MemSystemConfig::table1_default());
  IntegratedPolicy pol(small_icfg(/*threshold=*/2, /*cooldown=*/100'000));
  HybridMemory hm(flat_cfg(), &mem, &pol);
  const u64 set_stride = 256ull * hm.num_sets();
  Cycle t = 0;
  for (u64 i = 0; i < 4; ++i) t = hm.access(t, Requestor::Cpu, i * set_stride, false);
  // Adversarial stream: six blocks cycling through a four-way set, so
  // admitting every hot page means pages forever evicting each other. The
  // clock is driven explicitly (10 cycles per access) to stay far inside
  // the cooldown window: exactly one migration may happen.
  for (u32 i = 0; i < 300; ++i) {
    hm.access(t, Requestor::Cpu, (4 + (i % 6)) * set_stride, false);
    t += 10;
  }
  EXPECT_EQ(hm.stats(Requestor::Cpu).migrations, 1u);
  EXPECT_EQ(pol.migrations_up(), 1u);
}

TEST(Integrated, ZeroCooldownAllowsThePingPongTheCooldownPrevents) {
  MemorySystem mem(MemSystemConfig::table1_default());
  IntegratedPolicy pol(small_icfg(/*threshold=*/2, /*cooldown=*/0));
  HybridMemory hm(flat_cfg(), &mem, &pol);
  const u64 set_stride = 256ull * hm.num_sets();
  Cycle t = 0;
  for (u64 i = 0; i < 4; ++i) t = hm.access(t, Requestor::Cpu, i * set_stride, false);
  for (u32 i = 0; i < 300; ++i) {
    hm.access(t, Requestor::Cpu, (4 + (i % 6)) * set_stride, false);
    t += 10;
  }
  // The control for the test above: the identical stream with no hysteresis
  // churns — the six blocks keep migrating over each other.
  EXPECT_GE(hm.stats(Requestor::Cpu).migrations, 4u);
}

TEST(Integrated, MigrationBandwidthIsConserved) {
  MemorySystem mem(MemSystemConfig::table1_default());
  IntegratedPolicy pol(small_icfg(/*threshold=*/3, /*cooldown=*/64));
  HybridMemory hm(flat_cfg(), &mem, &pol);
  Rng rng(11);
  Cycle t = 0;
  for (u32 i = 0; i < 20'000; ++i) {
    const Addr addr = (rng.next_below(512 * 1024)) & ~255ull;
    const Requestor cls = (i & 3) == 0 ? Requestor::Gpu : Requestor::Cpu;
    t = hm.access(t, cls, addr, (i & 7) == 0);
  }
  const HybridStats& c = hm.stats(Requestor::Cpu);
  const HybridStats& g = hm.stats(Requestor::Gpu);
  const u64 moved = c.migrations + g.migrations;
  ASSERT_GT(moved, 0u);  // the stream must actually exercise migration
  // Every migration swaps one page up and one down; the bytes the policy
  // charged equal pages moved x page size, and the mechanism's count agrees
  // with the policy's.
  EXPECT_EQ(pol.migrations_up(), moved);
  EXPECT_EQ(pol.migrations_down(), moved);
  EXPECT_EQ(pol.migration_bytes(), 2u * 256u * moved);
  EXPECT_EQ(c.misses, c.first_touches + c.migrations + c.bypasses);
  EXPECT_EQ(g.misses, g.first_touches + g.migrations + g.bypasses);
  EXPECT_TRUE(pol.stats().audit());
}

TEST(Integrated, ScheduleStepsMoveTheMigrationKnobs) {
  IntegratedPolicy pol(small_icfg(/*threshold=*/4, /*cooldown=*/512));
  const EpochSchedule sched =
      parse_schedule("grow,shrink,bw+,bw-,frac=0.5,point=2/3/0");
  // grow eases the threshold; shrink tightens it back.
  EXPECT_TRUE(apply_schedule_step(sched.at(0), pol));
  EXPECT_EQ(pol.threshold(), 3u);
  EXPECT_TRUE(apply_schedule_step(sched.at(1), pol));
  EXPECT_EQ(pol.threshold(), 4u);
  // bw+ shortens the cooldown by one step; bw- restores it.
  EXPECT_TRUE(apply_schedule_step(sched.at(2), pol));
  EXPECT_EQ(pol.cooldown(), 512u - IntegratedPolicy::kCooldownStep);
  EXPECT_TRUE(apply_schedule_step(sched.at(3), pol));
  EXPECT_EQ(pol.cooldown(), 512u);
  // frac rescales from the *initial* threshold, clamped to >= 1.
  EXPECT_TRUE(apply_schedule_step(sched.at(4), pol));
  EXPECT_EQ(pol.threshold(), 2u);
  // point pins both knobs absolutely (the threshold already sits at 2, so
  // the cooldown move is what reports the change).
  EXPECT_TRUE(apply_schedule_step(sched.at(5), pol));
  EXPECT_EQ(pol.threshold(), 2u);
  EXPECT_EQ(pol.cooldown(), 3u * IntegratedPolicy::kCooldownStep);
  // The threshold never reaches 0, however hard grow pushes.
  for (u32 i = 0; i < 5; ++i) apply_schedule_step(sched.at(0), pol);
  EXPECT_EQ(pol.threshold(), 1u);
}

/// Small, fast experiment (mirrors tools/h2fault's tiny_config, integrated
/// design). Scale-16 Table I splits cleanly up to 4 shards.
ExperimentConfig quick(u32 shards = 1) {
  ExperimentConfig cfg;
  cfg.combo = "C1";
  cfg.design = DesignSpec::integrated();
  cfg.sys = SystemConfig::table1(/*scale=*/16);
  cfg.cpu_target_instructions = 60'000;
  cfg.gpu_target_instructions = 60'000;
  cfg.epoch_cycles = 20'000;
  cfg.max_cycles = 60'000'000;
  cfg.shards = shards;
  return cfg;
}

/// Lossless render via the journal serialiser: comparing two dumps compares
/// every result field bit for bit.
std::string dump(const ExperimentResult& r) {
  JournalEntry e;
  e.key = "k";
  e.combo = r.combo;
  e.design = r.design;
  e.status = "ok";
  e.result = r;
  return serialize_entry(e);
}

TEST(IntegratedExperiment, RunsAreDeterministic) {
  const ExperimentResult a = run_experiment(quick());
  const ExperimentResult b = run_experiment(quick());
  EXPECT_EQ(dump(a), dump(b));
  // The design actually migrated pages (the flat tier filled up) — the
  // determinism above is not vacuous.
  EXPECT_GT(a.hmstats[0].first_touches + a.hmstats[1].first_touches, 0u);
}

TEST(IntegratedExperiment, SweepIsBitIdenticalAcrossJobs) {
  std::vector<ExperimentConfig> cfgs;
  cfgs.push_back(quick());
  {
    ExperimentConfig c5 = quick();
    c5.combo = "C5";
    cfgs.push_back(c5);
  }
  SweepOptions seq;
  seq.jobs = 1;
  SweepOptions par;
  par.jobs = 4;
  const std::vector<SweepRun> a = run_sweep(cfgs, seq);
  const std::vector<SweepRun> b = run_sweep(cfgs, par);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok) << a[i].error;
    ASSERT_TRUE(b[i].ok) << b[i].error;
    EXPECT_EQ(dump(a[i].result), dump(b[i].result)) << "slot " << i;
  }
}

TEST(IntegratedExperiment, ShardedRunIsBitIdenticalAcrossThreadCounts) {
  // 0 = one thread per shard; thread assignment must never leak into
  // results (the ShardGroup barrier contract, now including the integrated
  // policy's counter table and migration state).
  const ExperimentConfig base = quick(/*shards=*/4);
  std::string ref;
  for (u32 threads : {1u, 2u, 0u}) {
    ExperimentConfig cfg = base;
    cfg.shard_threads = threads;
    const std::string d = dump(run_experiment(cfg));
    if (ref.empty()) {
      ref = d;
    } else {
      EXPECT_EQ(d, ref) << "shard_threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace h2
