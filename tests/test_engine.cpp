#include "sim/engine.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace h2 {
namespace {

/// Records its step cycles; steps `count` times with the given stride.
class RecordingActor final : public Actor {
 public:
  RecordingActor(Cycle stride, u32 count) : stride_(stride), remaining_(count) {}

  Cycle step(Engine&, Cycle now) override {
    visits.push_back(now);
    if (--remaining_ == 0) return kNever;
    return now + stride_;
  }

  std::vector<Cycle> visits;

 private:
  Cycle stride_;
  u32 remaining_;
};

TEST(Engine, RunsActorAtScheduledTimes) {
  Engine e;
  RecordingActor a(10, 4);
  e.add_actor(&a, 5);
  e.run();
  EXPECT_EQ(a.visits, (std::vector<Cycle>{5, 15, 25, 35}));
  EXPECT_EQ(e.now(), 35u);
  EXPECT_EQ(e.steps_executed(), 4u);
}

TEST(Engine, InterleavesActorsInTimeOrder) {
  Engine e;
  RecordingActor a(10, 3);  // 0, 10, 20
  RecordingActor b(7, 3);   // 3, 10, 17
  e.add_actor(&a, 0);
  e.add_actor(&b, 3);
  std::vector<std::pair<Cycle, char>> order;
  e.run();
  // Merge expectation: time never goes backwards.
  Cycle prev = 0;
  for (Cycle c : a.visits) EXPECT_GE(c, 0u);
  for (size_t i = 1; i < b.visits.size(); ++i) EXPECT_GT(b.visits[i], b.visits[i - 1]);
  (void)prev;
  (void)order;
}

TEST(Engine, DeterministicTieBreakBySubmissionOrder) {
  Engine e;
  std::vector<int> log;
  class TieActor final : public Actor {
   public:
    TieActor(std::vector<int>* log, int id) : log_(log), id_(id) {}
    Cycle step(Engine&, Cycle) override {
      log_->push_back(id_);
      return kNever;
    }
   private:
    std::vector<int>* log_;
    int id_;
  };
  TieActor a(&log, 1), b(&log, 2), c(&log, 3);
  e.add_actor(&a, 10);
  e.add_actor(&b, 10);
  e.add_actor(&c, 10);
  e.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, StopsAtMaxCycles) {
  Engine e;
  RecordingActor a(100, 1000);
  e.add_actor(&a, 0);
  e.run(450);
  EXPECT_LE(e.now(), 450u);
  EXPECT_EQ(a.visits.size(), 5u);  // 0,100,200,300,400
}

TEST(Engine, PeriodicHookFiresOnSchedule) {
  Engine e;
  RecordingActor a(10, 20);  // runs to cycle 190
  e.add_actor(&a, 0);
  std::vector<Cycle> fires;
  e.add_periodic(50, [&](Cycle now) { fires.push_back(now); });
  e.run();
  EXPECT_EQ(fires, (std::vector<Cycle>{50, 100, 150}));
}

TEST(Engine, StopFromHookTerminatesRun) {
  Engine e;
  RecordingActor a(1, 100000);
  e.add_actor(&a, 0);
  e.add_periodic(100, [&](Cycle now) {
    if (now >= 300) e.stop();
  });
  e.run();
  EXPECT_LE(e.now(), 301u);
}

TEST(Engine, StopFromHookPreservesPendingActorForResume) {
  // The SimSystem warmup/measure split pauses the engine from an epoch hook
  // and later calls run() again: the event the hook pre-empted must not be
  // lost, and the resumed schedule must be bit-identical to an uninterrupted
  // run (same visit cycles, no double-fired hook boundaries).
  std::vector<Cycle> straight_fires, paused_fires;
  RecordingActor straight(10, 50);  // 0..490
  {
    Engine e;
    e.add_actor(&straight, 0);
    e.add_periodic(100, [&](Cycle now) { straight_fires.push_back(now); });
    e.run();
  }
  RecordingActor paused(10, 50);
  {
    Engine e;
    e.add_actor(&paused, 0);
    e.add_periodic(100, [&](Cycle now) {
      paused_fires.push_back(now);
      if (now == 200) e.stop();  // pause mid-run ...
    });
    e.run();
    EXPECT_EQ(e.now(), 200u);
    e.run();  // ... and resume
  }
  EXPECT_EQ(paused.visits, straight.visits);
  EXPECT_EQ(paused_fires, straight_fires);
}

TEST(Engine, HorizonStopPreservesPendingActorForResume) {
  RecordingActor a(100, 10);  // 0..900
  Engine e;
  e.add_actor(&a, 0);
  e.run(450);
  EXPECT_EQ(a.visits.size(), 5u);  // 0,100,200,300,400
  e.run();                         // resume past the horizon
  EXPECT_EQ(a.visits.size(), 10u);
  EXPECT_EQ(a.visits.back(), 900u);
}

TEST(Engine, WakeReschedulesIdleActor) {
  // Wake's contract is to re-arm an *idle registered* actor (a level-2 check
  // rejects wake targets that were never add_actor()ed).
  class Rearmable final : public Actor {
   public:
    Cycle step(Engine&, Cycle now) override {
      visits.push_back(now);
      return kNever;  // idles after every step; only wake() re-arms it
    }
    std::vector<Cycle> visits;
  };
  class OneShot final : public Actor {
   public:
    explicit OneShot(Actor* target) : target_(target) {}
    Cycle step(Engine& e, Cycle now) override {
      e.wake(target_, now + 5);
      return kNever;
    }
   private:
    Actor* target_;
  };
  Rearmable sleeper;
  OneShot shot(&sleeper);
  Engine e;
  e.add_actor(&sleeper, 0);  // steps at 0, then idles
  e.add_actor(&shot, 7);     // re-arms the sleeper for cycle 12
  e.run();
  EXPECT_EQ(sleeper.visits, (std::vector<Cycle>{0, 12}));
}

// --- bit-identity of the hand-rolled event heap ---------------------------
//
// The engine's event queue is a hand-rolled binary min-heap with a
// deferred-pop fast path (engine.h). Its observable contract is unchanged
// from the std::priority_queue it replaced: events execute in exact
// (when, seq) order. A naive reference scheduler pins that order on a
// randomized actor swarm, ties included.

/// Deterministic xorshift64* stream, one per swarm actor.
u64 swarm_rng(u64& s) {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return s * 0x2545F4914F6CDD1Dull;
}

TEST(EngineBitIdentity, MatchesReferenceSchedulerOnRandomSwarm) {
  constexpr u32 kActors = 13;
  constexpr u32 kStepsEach = 400;

  // Engine run: every actor draws its strides from its own deterministic
  // stream; small strides force frequent same-cycle ties across actors.
  std::vector<std::pair<u32, Cycle>> engine_log;
  class SwarmActor final : public Actor {
   public:
    SwarmActor(u32 id, u32 steps, std::vector<std::pair<u32, Cycle>>* log)
        : id_(id), remaining_(steps), rng_(0x9E3779B97F4A7C15ull * (id + 1)), log_(log) {}
    Cycle step(Engine&, Cycle now) override {
      log_->emplace_back(id_, now);
      if (--remaining_ == 0) return kNever;
      return now + 1 + swarm_rng(rng_) % 7;
    }
   private:
    u32 id_;
    u32 remaining_;
    u64 rng_;
    std::vector<std::pair<u32, Cycle>>* log_;
  };
  std::vector<SwarmActor> actors;
  actors.reserve(kActors);
  Engine e;
  for (u32 i = 0; i < kActors; ++i) actors.emplace_back(i, kStepsEach, &engine_log);
  for (u32 i = 0; i < kActors; ++i) e.add_actor(&actors[i], i % 3);
  e.run();

  // Reference: identical per-actor stride streams scheduled by an O(n) scan
  // for the (when, seq)-minimum entry — the specification order, written
  // without any heap at all.
  std::vector<std::pair<u32, Cycle>> ref_log;
  struct RefEntry {
    Cycle when;
    u64 seq;
    u32 idx;
  };
  std::vector<RefEntry> pending;
  std::vector<u64> rng(kActors);
  std::vector<u32> remaining(kActors, kStepsEach);
  u64 seq = 0;
  for (u32 i = 0; i < kActors; ++i) {
    rng[i] = 0x9E3779B97F4A7C15ull * (i + 1);
    pending.push_back(RefEntry{i % 3, seq++, i});
  }
  while (!pending.empty()) {
    size_t min = 0;
    for (size_t j = 1; j < pending.size(); ++j) {
      const RefEntry& a = pending[j];
      const RefEntry& b = pending[min];
      if (a.when < b.when || (a.when == b.when && a.seq < b.seq)) min = j;
    }
    const RefEntry cur = pending[min];
    pending.erase(pending.begin() + min);
    ref_log.emplace_back(cur.idx, cur.when);
    if (--remaining[cur.idx] > 0) {
      pending.push_back(
          RefEntry{cur.when + 1 + swarm_rng(rng[cur.idx]) % 7, seq++, cur.idx});
    }
  }

  ASSERT_EQ(engine_log.size(), ref_log.size());
  EXPECT_EQ(engine_log, ref_log);
}

TEST(EngineBitIdentity, HookWakeInterleavesWithPendingEvents) {
  // A periodic hook re-arms an idle actor while another event is already
  // pending. The hook path takes a real pop (the woken entry enters the
  // heap while no stale root is deferred), and the wake must then execute
  // in exact time order relative to the pending events.
  class Idler final : public Actor {
   public:
    Cycle step(Engine&, Cycle now) override {
      visits.push_back(now);
      return kNever;
    }
    std::vector<Cycle> visits;
  };
  Idler sleeper;
  RecordingActor walker(40, 5);  // 20, 60, 100, 140, 180
  Engine e;
  e.add_actor(&sleeper, 0);  // steps at 0, then idles until the hook's wake
  e.add_actor(&walker, 20);
  e.add_periodic(50, [&](Cycle now) {
    if (now == 50) e.wake(&sleeper, 70);  // lands between walker's 60 and 100
  });
  e.run(200);
  EXPECT_EQ(sleeper.visits, (std::vector<Cycle>{0, 70}));
  EXPECT_EQ(walker.visits, (std::vector<Cycle>{20, 60, 100, 140, 180}));
}

TEST(EngineBitIdentity, SameCycleWakeDuringStepRunsAfterCurrentActor) {
  // wake(now) from inside a step is legal (when >= now). The woken entry
  // carries a larger seq than the stepping actor's, so it executes at the
  // same cycle but strictly after — also the proof obligation for pushing
  // over the deferred root.
  class Idler final : public Actor {
   public:
    Cycle step(Engine&, Cycle now) override {
      visits.push_back(now);
      return kNever;
    }
    std::vector<Cycle> visits;
  };
  class Waker final : public Actor {
   public:
    explicit Waker(Actor* target) : target_(target) {}
    Cycle step(Engine& e, Cycle now) override {
      e.wake(target_, now);  // same-cycle wake
      return kNever;
    }
   private:
    Actor* target_;
  };
  Idler b;
  Waker a(&b);
  Engine e;
  e.add_actor(&b, 0);  // registered; idles after cycle 0
  e.add_actor(&a, 5);
  e.run();
  EXPECT_EQ(b.visits, (std::vector<Cycle>{0, 5}));
  EXPECT_EQ(e.now(), 5u);
}

}  // namespace
}  // namespace h2
