#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace h2 {
namespace {

/// Records its step cycles; steps `count` times with the given stride.
class RecordingActor final : public Actor {
 public:
  RecordingActor(Cycle stride, u32 count) : stride_(stride), remaining_(count) {}

  Cycle step(Engine&, Cycle now) override {
    visits.push_back(now);
    if (--remaining_ == 0) return kNever;
    return now + stride_;
  }

  std::vector<Cycle> visits;

 private:
  Cycle stride_;
  u32 remaining_;
};

TEST(Engine, RunsActorAtScheduledTimes) {
  Engine e;
  RecordingActor a(10, 4);
  e.add_actor(&a, 5);
  e.run();
  EXPECT_EQ(a.visits, (std::vector<Cycle>{5, 15, 25, 35}));
  EXPECT_EQ(e.now(), 35u);
  EXPECT_EQ(e.steps_executed(), 4u);
}

TEST(Engine, InterleavesActorsInTimeOrder) {
  Engine e;
  RecordingActor a(10, 3);  // 0, 10, 20
  RecordingActor b(7, 3);   // 3, 10, 17
  e.add_actor(&a, 0);
  e.add_actor(&b, 3);
  std::vector<std::pair<Cycle, char>> order;
  e.run();
  // Merge expectation: time never goes backwards.
  Cycle prev = 0;
  for (Cycle c : a.visits) EXPECT_GE(c, 0u);
  for (size_t i = 1; i < b.visits.size(); ++i) EXPECT_GT(b.visits[i], b.visits[i - 1]);
  (void)prev;
  (void)order;
}

TEST(Engine, DeterministicTieBreakBySubmissionOrder) {
  Engine e;
  std::vector<int> log;
  class TieActor final : public Actor {
   public:
    TieActor(std::vector<int>* log, int id) : log_(log), id_(id) {}
    Cycle step(Engine&, Cycle) override {
      log_->push_back(id_);
      return kNever;
    }
   private:
    std::vector<int>* log_;
    int id_;
  };
  TieActor a(&log, 1), b(&log, 2), c(&log, 3);
  e.add_actor(&a, 10);
  e.add_actor(&b, 10);
  e.add_actor(&c, 10);
  e.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, StopsAtMaxCycles) {
  Engine e;
  RecordingActor a(100, 1000);
  e.add_actor(&a, 0);
  e.run(450);
  EXPECT_LE(e.now(), 450u);
  EXPECT_EQ(a.visits.size(), 5u);  // 0,100,200,300,400
}

TEST(Engine, PeriodicHookFiresOnSchedule) {
  Engine e;
  RecordingActor a(10, 20);  // runs to cycle 190
  e.add_actor(&a, 0);
  std::vector<Cycle> fires;
  e.add_periodic(50, [&](Cycle now) { fires.push_back(now); });
  e.run();
  EXPECT_EQ(fires, (std::vector<Cycle>{50, 100, 150}));
}

TEST(Engine, StopFromHookTerminatesRun) {
  Engine e;
  RecordingActor a(1, 100000);
  e.add_actor(&a, 0);
  e.add_periodic(100, [&](Cycle now) {
    if (now >= 300) e.stop();
  });
  e.run();
  EXPECT_LE(e.now(), 301u);
}

TEST(Engine, StopFromHookPreservesPendingActorForResume) {
  // The SimSystem warmup/measure split pauses the engine from an epoch hook
  // and later calls run() again: the event the hook pre-empted must not be
  // lost, and the resumed schedule must be bit-identical to an uninterrupted
  // run (same visit cycles, no double-fired hook boundaries).
  std::vector<Cycle> straight_fires, paused_fires;
  RecordingActor straight(10, 50);  // 0..490
  {
    Engine e;
    e.add_actor(&straight, 0);
    e.add_periodic(100, [&](Cycle now) { straight_fires.push_back(now); });
    e.run();
  }
  RecordingActor paused(10, 50);
  {
    Engine e;
    e.add_actor(&paused, 0);
    e.add_periodic(100, [&](Cycle now) {
      paused_fires.push_back(now);
      if (now == 200) e.stop();  // pause mid-run ...
    });
    e.run();
    EXPECT_EQ(e.now(), 200u);
    e.run();  // ... and resume
  }
  EXPECT_EQ(paused.visits, straight.visits);
  EXPECT_EQ(paused_fires, straight_fires);
}

TEST(Engine, HorizonStopPreservesPendingActorForResume) {
  RecordingActor a(100, 10);  // 0..900
  Engine e;
  e.add_actor(&a, 0);
  e.run(450);
  EXPECT_EQ(a.visits.size(), 5u);  // 0,100,200,300,400
  e.run();                         // resume past the horizon
  EXPECT_EQ(a.visits.size(), 10u);
  EXPECT_EQ(a.visits.back(), 900u);
}

TEST(Engine, WakeReschedulesIdleActor) {
  // Wake's contract is to re-arm an *idle registered* actor (a level-2 check
  // rejects wake targets that were never add_actor()ed).
  class Rearmable final : public Actor {
   public:
    Cycle step(Engine&, Cycle now) override {
      visits.push_back(now);
      return kNever;  // idles after every step; only wake() re-arms it
    }
    std::vector<Cycle> visits;
  };
  class OneShot final : public Actor {
   public:
    explicit OneShot(Actor* target) : target_(target) {}
    Cycle step(Engine& e, Cycle now) override {
      e.wake(target_, now + 5);
      return kNever;
    }
   private:
    Actor* target_;
  };
  Rearmable sleeper;
  OneShot shot(&sleeper);
  Engine e;
  e.add_actor(&sleeper, 0);  // steps at 0, then idles
  e.add_actor(&shot, 7);     // re-arms the sleeper for cycle 12
  e.run();
  EXPECT_EQ(sleeper.visits, (std::vector<Cycle>{0, 12}));
}

}  // namespace
}  // namespace h2
