// Parameterised property suites: invariants that must hold across the whole
// configuration space (geometries, policies, modes), in the spirit of
// property-based testing with explicit sweeps.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "hybridmem/hybrid_memory.h"
#include "hydrogen/decoupled_partition.h"
#include "hydrogen/hydrogen_policy.h"
#include "policies/baseline.h"
#include "policies/profess.h"
#include "policies/waypart.h"

namespace h2 {
namespace {

// ---------------------------------------------------------------------------
// Property: for every (channels, assoc, cap, bw), the decoupled partition is
// a well-formed mapping — counts match, channels in range, dedication
// respected, and consistency under single-step changes.
// ---------------------------------------------------------------------------
class PartitionProperty
    : public ::testing::TestWithParam<std::tuple<u32 /*channels*/, u32 /*assoc*/>> {};

TEST_P(PartitionProperty, MappingIsWellFormed) {
  const auto [channels, assoc] = GetParam();
  DecoupledPartition p(channels, assoc);
  for (u32 cap = p.cap_min(); cap <= p.cap_max(); ++cap) {
    for (u32 bw = p.bw_min(); bw <= p.bw_max(); ++bw) {
      p.set_config(cap, bw);
      u32 ded = 0;
      for (u32 ch = 0; ch < channels; ++ch) ded += p.is_dedicated_channel(ch);
      if (channels >= 2) EXPECT_EQ(ded, bw);
      for (u32 set = 0; set < 97; ++set) {
        u32 cpu_ways = 0;
        for (u32 w = 0; w < assoc; ++w) {
          const u32 ch = p.channel_of_way(set, w);
          EXPECT_LT(ch, channels);
          if (p.is_cpu_way(set, w)) {
            cpu_ways++;
          } else if (channels >= 2 && bw < channels) {
            EXPECT_FALSE(p.is_dedicated_channel(ch))
                << "GPU way on dedicated channel: ch=" << channels << " a=" << assoc
                << " cap=" << cap << " bw=" << bw;
          }
        }
        if (assoc >= 2) EXPECT_EQ(cpu_ways, cap);
      }
    }
  }
}

TEST_P(PartitionProperty, SingleStepChangesAreMinimal) {
  const auto [channels, assoc] = GetParam();
  if (assoc < 3) GTEST_SKIP() << "needs at least two cap values";
  DecoupledPartition p(channels, assoc);
  for (u32 cap = p.cap_min(); cap < p.cap_max(); ++cap) {
    for (u32 set = 0; set < 64; ++set) {
      p.set_config(cap, p.bw_min());
      std::set<u32> before;
      for (u32 w = 0; w < assoc; ++w) {
        if (p.is_cpu_way(set, w)) before.insert(w);
      }
      p.set_config(cap + 1, p.bw_min());
      u32 added = 0;
      for (u32 w = 0; w < assoc; ++w) {
        if (p.is_cpu_way(set, w) && !before.count(w)) added++;
        if (!p.is_cpu_way(set, w)) EXPECT_FALSE(before.count(w));
      }
      EXPECT_EQ(added, 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PartitionProperty,
    ::testing::Values(std::make_tuple(4u, 4u), std::make_tuple(4u, 8u),
                      std::make_tuple(4u, 16u), std::make_tuple(2u, 4u),
                      std::make_tuple(8u, 4u), std::make_tuple(4u, 2u),
                      std::make_tuple(1u, 4u), std::make_tuple(4u, 1u)),
    [](const auto& info) {
      return "ch" + std::to_string(std::get<0>(info.param)) + "_a" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Property: under every policy and both modes, the hybrid memory conserves
// blocks — a migrated block hits until evicted, stats balance, and the
// mechanism never serves stale ways after reconfiguration.
// ---------------------------------------------------------------------------
struct PolicyCase {
  const char* name;
  std::function<std::unique_ptr<PartitionPolicy>()> make;
  HybridMode mode;
};

class HybridProperty : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(HybridProperty, StatsBalanceUnderRandomTraffic) {
  const PolicyCase& pc = GetParam();
  MemorySystem mem(MemSystemConfig::table1_default());
  auto pol = pc.make();
  HybridMemConfig cfg;
  cfg.mode = pc.mode;
  cfg.fast_capacity_bytes = 32 * 1024;
  cfg.slow_capacity_bytes = 512 * 1024;
  cfg.remap_cache_bytes = 8 * 1024;
  HybridMemory hm(cfg, &mem, pol.get());

  Rng rng(99);
  Cycle t = 0;
  for (int i = 0; i < 5000; ++i) {
    const Requestor cls = rng.chance(0.5) ? Requestor::Cpu : Requestor::Gpu;
    const Addr a = rng.next_below(cfg.slow_capacity_bytes / 64) * 64;
    const Cycle done = hm.access(t, cls, a, rng.chance(0.3));
    EXPECT_GT(done, t);
    t += 1 + rng.next_below(20);
  }
  for (u32 r = 0; r < 2; ++r) {
    const HybridStats& s = hm.stats(static_cast<Requestor>(r));
    EXPECT_EQ(s.demand, s.fast_hits + s.misses) << pc.name;
    EXPECT_EQ(s.misses, s.migrations + s.bypasses + s.first_touches) << pc.name;
    if (pc.mode == HybridMode::Cache) EXPECT_EQ(s.first_touches, 0u) << pc.name;
  }
  // Every valid remap entry must reference a channel inside the geometry and
  // hold a unique tag within its set.
  for (u32 set = 0; set < hm.num_sets(); ++set) {
    std::set<u64> tags;
    for (u32 w = 0; w < hm.assoc(); ++w) {
      const RemapWay& rw = hm.table().way(set, w);
      if (!rw.valid) continue;
      EXPECT_LT(rw.channel, mem.num_fast_superchannels());
      EXPECT_TRUE(tags.insert(rw.tag).second) << "duplicate tag in set " << set;
      EXPECT_EQ(hm.set_of(rw.tag * 256), set) << "tag in wrong set";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndModes, HybridProperty,
    ::testing::Values(
        PolicyCase{"baseline_cache", [] { return std::make_unique<BaselinePolicy>(); },
                   HybridMode::Cache},
        PolicyCase{"baseline_flat", [] { return std::make_unique<BaselinePolicy>(); },
                   HybridMode::Flat},
        PolicyCase{"waypart_cache", [] { return std::make_unique<WayPartPolicy>(); },
                   HybridMode::Cache},
        PolicyCase{"profess_cache", [] { return std::make_unique<ProfessPolicy>(); },
                   HybridMode::Cache},
        PolicyCase{"hydrogen_cache",
                   [] { return std::make_unique<HydrogenPolicy>(); }, HybridMode::Cache},
        PolicyCase{"hydrogen_flat",
                   [] { return std::make_unique<HydrogenPolicy>(); }, HybridMode::Flat}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------------------
// Property: reconfiguration safety. After arbitrary sequences of parameter
// points, lazily-fixed state converges to the active configuration and no
// access ever fails.
// ---------------------------------------------------------------------------
class ReconfigProperty : public ::testing::TestWithParam<u64 /*seed*/> {};

TEST_P(ReconfigProperty, LazyFixupsConvergeToActiveConfig) {
  MemorySystem mem(MemSystemConfig::table1_default());
  HydrogenConfig hc;
  hc.decoupled = true;
  hc.token = false;
  hc.search = false;
  HydrogenPolicy pol(hc);
  HybridMemConfig cfg;
  cfg.fast_capacity_bytes = 16 * 1024;  // 16 sets
  cfg.slow_capacity_bytes = 256 * 1024;
  HybridMemory hm(cfg, &mem, &pol);

  Rng rng(GetParam());
  Cycle t = 0;
  for (int round = 0; round < 8; ++round) {
    pol.apply_point(ParamPoint{1 + static_cast<u32>(rng.next_below(3)),
                               1 + static_cast<u32>(rng.next_below(3)), 0});
    for (int i = 0; i < 2000; ++i) {
      const Requestor cls = rng.chance(0.5) ? Requestor::Cpu : Requestor::Gpu;
      const Addr a = rng.next_below(cfg.slow_capacity_bytes / 64) * 64;
      t = hm.access(t, cls, a, rng.chance(0.3)) + 1;
    }
  }
  // After sustained traffic under the final config, touch every resident
  // block once more; afterwards every valid entry's owner bit and channel
  // match the active configuration.
  for (u32 set = 0; set < hm.num_sets(); ++set) {
    for (u32 w = 0; w < hm.assoc(); ++w) {
      const RemapWay rw = hm.table().way(set, w);
      if (rw.valid) t = hm.access(t, rw.owner_cpu ? Requestor::Cpu : Requestor::Gpu,
                                  rw.tag * 256, false) + 1;
    }
  }
  for (u32 set = 0; set < hm.num_sets(); ++set) {
    for (u32 w = 0; w < hm.assoc(); ++w) {
      const RemapWay& rw = hm.table().way(set, w);
      if (!rw.valid) continue;
      EXPECT_EQ(rw.owner_cpu, pol.way_owner(set, w) == Requestor::Cpu);
      EXPECT_EQ(rw.channel, pol.channel_of_way(set, w));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconfigProperty, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Property: token accounting. Migration counts never exceed the token budget
// across a sweep of budgets.
// ---------------------------------------------------------------------------
class TokenProperty : public ::testing::TestWithParam<u32 /*tok level idx*/> {};

TEST_P(TokenProperty, GpuMigrationsBoundedByBudget) {
  MemorySystem mem(MemSystemConfig::table1_default());
  HydrogenConfig hc;
  hc.token = true;
  hc.search = false;
  hc.faucet_period = 10'000;
  HydrogenPolicy pol(hc);
  HybridMemConfig cfg;
  cfg.fast_capacity_bytes = 32 * 1024;
  cfg.slow_capacity_bytes = 512 * 1024;
  HybridMemory hm(cfg, &mem, &pol);

  // Establish a miss-rate estimate, then pin the token level via apply_point.
  EpochFeedback fb;
  fb.epoch_cycles = 10'000;
  fb.gpu_misses = 10'000;  // 1/cycle -> budget = level * 10'000
  pol.on_epoch(fb);
  const u32 level = GetParam();
  pol.apply_point(ParamPoint{3, 1, level});

  // One faucet period of pure GPU streaming misses.
  Rng rng(7);
  Cycle t = 20'000;  // aligned after refills
  const u64 migr_before = hm.stats(Requestor::Gpu).migrations;
  for (int i = 0; i < 3000; ++i) {
    const Addr a = rng.next_below(cfg.slow_capacity_bytes / 256) * 256;
    hm.access(t, Requestor::Gpu, a, false);
    t += 3;  // stays within one period
  }
  const u64 migrations = hm.stats(Requestor::Gpu).migrations - migr_before;
  const double frac = pol.config().tok_levels[level];
  const u64 budget = static_cast<u64>(frac * 10'000);
  EXPECT_LE(migrations, budget + 1);
}

INSTANTIATE_TEST_SUITE_P(Levels, TokenProperty, ::testing::Values(0u, 1u, 3u, 5u, 7u));

}  // namespace
}  // namespace h2
