// Tests for the SimSystem lifecycle (build/warmup/measure/drain), the
// cross-layer reset_measurement cascade, and the EpochObserver machinery.
#include "harness/sim_system.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/check.h"
#include "harness/sweep.h"

namespace h2 {
namespace {

/// Small, fast experiment configuration (mirrors test_experiment.cpp).
ExperimentConfig quick(const std::string& combo, DesignSpec design) {
  ExperimentConfig cfg;
  cfg.combo = combo;
  cfg.design = std::move(design);
  cfg.sys = SystemConfig::table1(/*scale=*/16);
  cfg.cpu_target_instructions = 150'000;
  cfg.gpu_target_instructions = 120'000;
  cfg.epoch_cycles = 50'000;
  cfg.max_cycles = 60'000'000;
  return cfg;
}

void expect_bit_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.cpu_cycles, b.cpu_cycles);
  EXPECT_EQ(a.gpu_cycles, b.gpu_cycles);
  EXPECT_EQ(a.end_cycle, b.end_cycle);
  EXPECT_EQ(a.cpu_instructions, b.cpu_instructions);
  EXPECT_EQ(a.gpu_instructions, b.gpu_instructions);
  EXPECT_EQ(a.weighted_ipc, b.weighted_ipc);  // exact ==: bit-identical
  EXPECT_EQ(a.energy_pj, b.energy_pj);
  EXPECT_EQ(a.fast_bytes, b.fast_bytes);
  EXPECT_EQ(a.slow_bytes, b.slow_bytes);
  EXPECT_EQ(a.hmstats[0].demand, b.hmstats[0].demand);
  EXPECT_EQ(a.hmstats[1].demand, b.hmstats[1].demand);
  EXPECT_EQ(a.hmstats[0].migrations, b.hmstats[0].migrations);
  EXPECT_EQ(a.hmstats[1].migrations, b.hmstats[1].migrations);
  EXPECT_EQ(a.reconfigurations, b.reconfigurations);
  EXPECT_EQ(a.epochs, b.epochs);
}

TEST(SimSystem, ManualLifecycleMatchesRunExperiment) {
  // Driving the phases by hand is exactly run_experiment — the convenience
  // wrapper adds nothing beyond the four calls.
  const ExperimentConfig cfg = quick("C1", DesignSpec::hydrogen_full());
  SimSystem sys(cfg);
  EXPECT_EQ(sys.phase(), SimSystem::Phase::Unbuilt);
  sys.build();
  EXPECT_EQ(sys.phase(), SimSystem::Phase::Built);
  sys.warmup(0);
  EXPECT_EQ(sys.phase(), SimSystem::Phase::Measure);
  EXPECT_EQ(sys.measure_start(), 0u);
  sys.measure();
  const ExperimentResult a = sys.drain();
  EXPECT_EQ(sys.phase(), SimSystem::Phase::Drained);

  const ExperimentResult b = run_experiment(cfg);
  expect_bit_identical(a, b);
}

TEST(SimSystem, WarmupIsDeterministicAndWindowRelative) {
  ExperimentConfig warm = quick("C2", DesignSpec::hydrogen_full());
  warm.warmup_epochs = 2;
  const ExperimentResult a = run_experiment(warm);
  const ExperimentResult b = run_experiment(warm);
  expect_bit_identical(a, b);
  EXPECT_TRUE(a.cpu_finished);
  EXPECT_TRUE(a.gpu_finished);
  EXPECT_GT(a.cpu_ipc, 0.0);
  EXPECT_GT(a.gpu_ipc, 0.0);

  // Manual drive agrees with the config-driven wrapper, and exposes the
  // window bookkeeping: the measurement window opened two epochs in, epoch
  // counts exclude warmup, and every recorded cycle is window-relative
  // (drain's end_cycle + measure_start is the absolute engine clock).
  SimSystem sys(warm);
  sys.build();
  sys.warmup(2);
  EXPECT_EQ(sys.measure_start(), 2 * warm.epoch_cycles);
  EXPECT_EQ(sys.total_epochs(), 2u);
  EXPECT_EQ(sys.epochs_this_phase(), 0u);
  sys.measure();
  const Cycle absolute_end = sys.engine().now();
  const ExperimentResult m = sys.drain();
  expect_bit_identical(m, a);
  EXPECT_EQ(m.end_cycle + sys.measure_start(), absolute_end);
  EXPECT_EQ(sys.total_epochs(), 2 + m.epochs);
}

TEST(SimSystem, ResetMeasurementZeroesCountersAndPreservesState) {
  const ExperimentConfig cfg = quick("C1", DesignSpec::hydrogen_full());
  SimSystem sys(cfg);
  sys.build();
  sys.warmup(2);  // runs two epochs, then resets into the measure phase

  // Measurement counters are zero at the window start...
  for (const auto& c : sys.cores()) {
    EXPECT_EQ(c->retired_instructions(), 0u);
    EXPECT_EQ(c->read_latency().count(), 0u);
    EXPECT_FALSE(c->finished());
  }
  for (Requestor side : {Requestor::Cpu, Requestor::Gpu}) {
    const HybridStats& st = sys.hybrid().stats(side);
    EXPECT_EQ(st.demand, 0u);
    EXPECT_EQ(st.fast_hits, 0u);
    EXPECT_EQ(st.misses, 0u);
    EXPECT_EQ(st.migrations, 0u);
  }
  // ... total_energy_pj(0) is the dynamic term alone, which must be zero.
  EXPECT_EQ(sys.memory().total_energy_pj(0), 0.0);

  // ... but architectural state survived: two epochs of demand left blocks
  // resident in the remap table.
  const RemapTable& table = sys.hybrid().table();
  u32 resident = 0;
  for (u32 s = 0; s < table.num_sets(); ++s) resident += table.occupancy(s);
  EXPECT_GT(resident, 0u);
  EXPECT_GT(sys.measure_start(), 0u);

  // The conservation audits must hold right at the reset point: both sides
  // of every invariant were cleared together.
  if (check::compiled_level() >= 2) {
    check::ScopedThrowingHandler handler;
    check::set_runtime_level(check::compiled_level());
    EXPECT_NO_THROW(sys.hybrid().audit_counters(sys.engine().now()));
    EXPECT_NO_THROW(sys.hybrid().audit(sys.engine().now(), "post-reset"));
  }

  // The system is still runnable to completion from here.
  sys.measure();
  const ExperimentResult r = sys.drain();
  EXPECT_TRUE(r.cpu_finished);
  EXPECT_TRUE(r.gpu_finished);
  EXPECT_GT(r.epochs, 0u);
}

TEST(SimSystem, WarmupRunPassesFullAudits) {
  // A warmed run under throwing invariants: every per-epoch audit_counters
  // and the end-of-run structural audit must hold across the reset.
  if (check::compiled_level() < 2) {
    GTEST_SKIP() << "needs H2_CHECK_LEVEL >= 2 (compiled level "
                 << check::compiled_level() << ")";
  }
  check::ScopedThrowingHandler handler;
  check::set_runtime_level(check::compiled_level());
  ExperimentConfig cfg = quick("C3", DesignSpec::hydrogen_full());
  cfg.warmup_epochs = 2;
  ExperimentResult r;
  EXPECT_NO_THROW(r = run_experiment(cfg));
  EXPECT_TRUE(r.cpu_finished);
  EXPECT_TRUE(r.gpu_finished);
}

TEST(SimSystem, TimelineCsvIsParseableAndPhaseTagged) {
  const std::string path = ::testing::TempDir() + "h2_timeline_test.csv";
  ExperimentConfig cfg = quick("C1", DesignSpec::hydrogen_full());
  cfg.warmup_epochs = 2;
  cfg.timeline_path = path;
  const ExperimentResult r = run_experiment(cfg);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "epoch,phase,cycle,cpu_instructions,gpu_instructions,weighted_ipc,"
            "cpu_misses,gpu_misses,gpu_migrations,slow_backlog,"
            "reconfigurations,cap,bw,tok");
  const size_t columns = 14;
  u64 warmup_rows = 0, measure_rows = 0, prev_epoch = 0;
  while (std::getline(in, line)) {
    std::stringstream row(line);
    std::vector<std::string> cells;
    std::string cell;
    while (std::getline(row, cell, ',')) cells.push_back(cell);
    ASSERT_EQ(cells.size(), columns) << line;
    const u64 epoch = std::stoull(cells[0]);
    EXPECT_EQ(epoch, prev_epoch + 1);  // every boundary recorded, in order
    prev_epoch = epoch;
    if (cells[1] == "warmup") {
      warmup_rows++;
      EXPECT_EQ(measure_rows, 0u) << "warmup row after a measure row";
    } else {
      ASSERT_EQ(cells[1], "measure") << line;
      measure_rows++;
    }
    // Hydrogen runs report a live search point.
    EXPECT_GE(std::stoull(cells[11]), 1u) << "cap: " << line;
    EXPECT_GE(std::stoull(cells[12]), 1u) << "bw: " << line;
  }
  EXPECT_EQ(warmup_rows, 2u);
  EXPECT_EQ(measure_rows, r.epochs);
  std::remove(path.c_str());
}

/// Observer that logs "<tag>@<epoch>" into a shared journal.
class TaggingObserver final : public EpochObserver {
 public:
  TaggingObserver(std::string tag, std::vector<std::string>* log)
      : tag_(std::move(tag)), log_(log) {}
  const char* name() const override { return tag_.c_str(); }
  void on_epoch(SimSystem& sys, const EpochFeedback&) override {
    log_->push_back(tag_ + "@" + std::to_string(sys.total_epochs()));
  }
  void on_drain(SimSystem&, Cycle) override { log_->push_back(tag_ + "@drain"); }

 private:
  std::string tag_;
  std::vector<std::string>* log_;
};

TEST(SimSystem, ObserversFireInRegistrationOrder) {
  const ExperimentConfig cfg = quick("C1", DesignSpec::baseline());
  std::vector<std::string> log;
  SimSystem sys(cfg);
  sys.build();
  sys.add_observer(std::make_unique<TaggingObserver>("first", &log));
  sys.add_observer(std::make_unique<TaggingObserver>("second", &log));
  sys.warmup(1);
  sys.measure();
  const ExperimentResult r = sys.drain();

  // One (first, second) pair per epoch boundary — warmup and measure alike —
  // plus one pair at drain, strictly in registration order.
  ASSERT_EQ(log.size(), 2 * (1 + r.epochs) + 2);
  for (u64 e = 0; e < 1 + r.epochs; ++e) {
    EXPECT_EQ(log[2 * e], "first@" + std::to_string(e + 1));
    EXPECT_EQ(log[2 * e + 1], "second@" + std::to_string(e + 1));
  }
  EXPECT_EQ(log[log.size() - 2], "first@drain");
  EXPECT_EQ(log[log.size() - 1], "second@drain");
}

TEST(SimSystem, WarmupSweepBitIdenticalAcrossJobs) {
  // The lifecycle must not disturb the sweep runner's determinism guarantee:
  // warmed runs agree bit-for-bit at any worker count.
  std::vector<ExperimentConfig> cfgs;
  for (const char* combo : {"C1", "C2", "C3", "C5"}) {
    ExperimentConfig cfg = quick(combo, DesignSpec::hydrogen_full());
    cfg.warmup_epochs = 2;
    cfgs.push_back(cfg);
  }
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions wide;
  wide.jobs = 4;
  const std::vector<SweepRun> a = run_sweep(cfgs, serial);
  const std::vector<SweepRun> b = run_sweep(cfgs, wide);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok) << a[i].error;
    ASSERT_TRUE(b[i].ok) << b[i].error;
    expect_bit_identical(a[i].result, b[i].result);
  }
}

TEST(SimSystem, SoloRunsSkipIdleGeneratorsBitIdentically) {
  // Solo runs no longer construct the idle side's synthetic generators; the
  // address map (and therefore every simulated event) must not move.
  for (const bool gpu_only : {false, true}) {
    ExperimentConfig lean = quick("C1", DesignSpec::baseline());
    lean.cpu_only = !gpu_only;
    lean.gpu_only = gpu_only;
    ExperimentConfig full = lean;
    full.build_idle_generators = true;  // the historical construct-everything path
    const ExperimentResult a = run_experiment(lean);
    const ExperimentResult b = run_experiment(full);
    expect_bit_identical(a, b);
    EXPECT_EQ(a.fast_bytes, b.fast_bytes) << "memory layout moved";
    EXPECT_EQ(a.slow_bytes, b.slow_bytes) << "memory layout moved";
  }
}

TEST(SimSystem, WayPartFractionIsItsOwnKnob) {
  // Satellite of the same PR: DesignSpec::waypart no longer piggybacks on
  // hydrogen.fixed_cpu_capacity_frac.
  const DesignSpec d = DesignSpec::waypart(0.5);
  EXPECT_DOUBLE_EQ(d.cpu_way_fraction, 0.5);
  EXPECT_DOUBLE_EQ(d.hydrogen.fixed_cpu_capacity_frac, 0.75);  // untouched

  // The knob must actually reach the policy: different fractions partition
  // the fast ways differently, so the runs diverge.
  const ExperimentResult a = run_experiment(quick("C1", DesignSpec::waypart(0.75)));
  const ExperimentResult b = run_experiment(quick("C1", DesignSpec::waypart(0.25)));
  EXPECT_TRUE(a.cpu_cycles != b.cpu_cycles || a.gpu_cycles != b.gpu_cycles ||
              a.energy_pj != b.energy_pj);
}

}  // namespace
}  // namespace h2
