// The invariant layer itself: macro semantics (evaluation gating, runtime
// clamping) and seeded violations through real subsystems — each must be
// caught with a message naming the actor, the cycle, and the quantity.
#include "check/check.h"

#include <gtest/gtest.h>

#include <string>

#include "hydrogen/token_bucket.h"
#include "mem/memory_system.h"
#include "sim/engine.h"

namespace h2 {
namespace {

using check::CheckError;
using check::ScopedThrowingHandler;

TEST(Check, CompiledLevelMatchesMacro) {
  EXPECT_EQ(check::compiled_level(), H2_CHECK_LEVEL);
}

TEST(Check, RuntimeLevelClampsToCompiledCeiling) {
  ScopedThrowingHandler guard;
  check::set_runtime_level(99);
  EXPECT_EQ(check::runtime_level(), check::compiled_level());
  check::set_runtime_level(-5);
  EXPECT_EQ(check::runtime_level(), 0);
}

TEST(Check, FailureMessageNamesSiteAndCondition) {
  if (check::compiled_level() < 1) GTEST_SKIP() << "checks compiled out";
  ScopedThrowingHandler guard;
  try {
    H2_CHECK(1, 1 + 1 == 3, "cycle %d: the %s is wrong", 7, "arithmetic");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("cycle 7: the arithmetic is wrong"), std::string::npos) << what;
  }
}

TEST(Check, ConditionNotEvaluatedWhenRuntimeDisabled) {
  if (check::compiled_level() < 1) GTEST_SKIP() << "checks compiled out";
  ScopedThrowingHandler guard;
  check::set_runtime_level(0);
  int evaluations = 0;
  auto touch = [&]() {
    ++evaluations;
    return false;
  };
  H2_CHECK(1, touch(), "must not fire");
  EXPECT_EQ(evaluations, 0);
  EXPECT_FALSE(H2_CHECK_ACTIVE(1));
}

TEST(Check, ActiveTracksRuntimeLevel) {
  ScopedThrowingHandler guard;
  check::set_runtime_level(check::compiled_level());
  EXPECT_EQ(H2_CHECK_ACTIVE(1), check::compiled_level() >= 1);
  EXPECT_EQ(H2_CHECK_ACTIVE(2), check::compiled_level() >= 2);
}

// ---- seeded violations through real subsystems ----------------------------

/// An actor that deliberately returns a non-advancing next-step cycle.
class StuckActor final : public Actor {
 public:
  Cycle step(Engine&, Cycle now) override { return now; }  // illegal: not > now
  const char* name() const override { return "stuck-actor"; }
};

TEST(CheckViolation, EngineCatchesNonAdvancingActor) {
  if (check::compiled_level() < 1) GTEST_SKIP() << "checks compiled out";
  ScopedThrowingHandler guard;
  Engine e;
  StuckActor bad;
  e.add_actor(&bad, 10);
  try {
    e.run(1000);
    FAIL() << "expected CheckError";
  } catch (const CheckError& ex) {
    const std::string what = ex.what();
    EXPECT_NE(what.find("stuck-actor"), std::string::npos) << what;
    EXPECT_NE(what.find("10"), std::string::npos) << what;
    EXPECT_NE(what.find("non-advancing"), std::string::npos) << what;
  }
}

TEST(CheckViolation, EngineCatchesWakeIntoThePast) {
  if (check::compiled_level() < 1) GTEST_SKIP() << "checks compiled out";
  ScopedThrowingHandler guard;

  class RewindActor final : public Actor {
   public:
    Cycle step(Engine& e, Cycle now) override {
      if (now >= 20) {
        e.wake(this, now - 15);  // illegal: before current time
        return kNever;
      }
      return now + 10;
    }
    const char* name() const override { return "rewind-actor"; }
  };

  Engine e;
  RewindActor bad;
  e.add_actor(&bad, 0);
  try {
    e.run(1000);
    FAIL() << "expected CheckError";
  } catch (const CheckError& ex) {
    const std::string what = ex.what();
    EXPECT_NE(what.find("rewind-actor"), std::string::npos) << what;
    EXPECT_NE(what.find("woken in the past"), std::string::npos) << what;
  }
}

TEST(CheckViolation, EngineCatchesWakeOfUnregisteredActor) {
  if (check::compiled_level() < 2) GTEST_SKIP() << "level-2 checks compiled out";
  ScopedThrowingHandler guard;
  Engine e;
  StuckActor stranger;  // never add_actor()ed
  try {
    e.wake(&stranger, 5);
    FAIL() << "expected CheckError";
  } catch (const CheckError& ex) {
    const std::string what = ex.what();
    EXPECT_NE(what.find("never add_actor()ed"), std::string::npos) << what;
  }
}

TEST(CheckViolation, MemorySystemCatchesOutOfRangeSuperchannel) {
  if (check::compiled_level() < 1) GTEST_SKIP() << "checks compiled out";
  ScopedThrowingHandler guard;
  MemorySystem mem(MemSystemConfig::table1_default());
  const u32 bogus = mem.num_fast_superchannels() + 3;
  try {
    mem.fast_access(100, bogus, 0x1000, 64, false, Requestor::Gpu);
    FAIL() << "expected CheckError";
  } catch (const CheckError& ex) {
    const std::string what = ex.what();
    EXPECT_NE(what.find("gpu"), std::string::npos) << what;
    EXPECT_NE(what.find("100"), std::string::npos) << what;
    EXPECT_NE(what.find("superchannel"), std::string::npos) << what;
  }
}

TEST(CheckViolation, MemorySystemAuditCatchesLostRequests) {
  if (check::compiled_level() < 2) GTEST_SKIP() << "level-2 checks compiled out";
  ScopedThrowingHandler guard;
  MemorySystem mem(MemSystemConfig::table1_default());
  mem.fast_access(0, 0, 0x0, 64, false, Requestor::Cpu);
  // Bypass the facade: the channel completes a request the facade never
  // issued, so the conservation audit must flag the imbalance.
  mem.fast_channel(0).request(50, 0x2000, 64, false);
  try {
    mem.audit(1000);
    FAIL() << "expected CheckError";
  } catch (const CheckError& ex) {
    const std::string what = ex.what();
    EXPECT_NE(what.find("lost requests"), std::string::npos) << what;
  }
}

TEST(CheckViolation, TokenBucketRejectsZeroPeriod) {
  if (check::compiled_level() < 1) GTEST_SKIP() << "checks compiled out";
  ScopedThrowingHandler guard;
  EXPECT_THROW(TokenBucket(100, 0), CheckError);
}

}  // namespace
}  // namespace h2
