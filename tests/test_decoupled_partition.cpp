#include "hydrogen/decoupled_partition.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace h2 {
namespace {

TEST(DecoupledPartition, ConfigClampedToLegalRange) {
  DecoupledPartition p(4, 4);
  p.set_config(0, 0);
  EXPECT_EQ(p.cap(), 1u);
  EXPECT_EQ(p.bw(), 1u);
  p.set_config(100, 100);
  EXPECT_EQ(p.cap(), 3u);
  EXPECT_EQ(p.bw(), 3u);
}

TEST(DecoupledPartition, CpuWayCountMatchesCap) {
  DecoupledPartition p(4, 4);
  for (u32 cap = 1; cap <= 3; ++cap) {
    p.set_config(cap, 1);
    for (u32 set = 0; set < 128; ++set) {
      u32 cpu_ways = 0;
      for (u32 w = 0; w < 4; ++w) cpu_ways += p.is_cpu_way(set, w);
      EXPECT_EQ(cpu_ways, cap) << "set " << set;
    }
  }
}

TEST(DecoupledPartition, DedicatedChannelCountMatchesBw) {
  DecoupledPartition p(4, 4);
  for (u32 bw = 1; bw <= 3; ++bw) {
    p.set_config(2, bw);
    u32 ded = 0;
    for (u32 ch = 0; ch < 4; ++ch) ded += p.is_dedicated_channel(ch);
    EXPECT_EQ(ded, bw);
  }
}

TEST(DecoupledPartition, CpuDedicatedChannelsServeOnlyCpuWays) {
  // Strong bandwidth isolation (Fig. 3(b)): GPU ways must never be mapped to
  // a CPU-dedicated channel as long as shared channels exist.
  DecoupledPartition p(4, 4);
  for (u32 cap = 1; cap <= 3; ++cap) {
    for (u32 bw = 1; bw <= 3; ++bw) {
      p.set_config(cap, bw);
      for (u32 set = 0; set < 256; ++set) {
        for (u32 w = 0; w < 4; ++w) {
          if (!p.is_cpu_way(set, w)) {
            EXPECT_FALSE(p.is_dedicated_channel(p.channel_of_way(set, w)))
                << "cap=" << cap << " bw=" << bw << " set=" << set << " way=" << w;
          }
        }
      }
    }
  }
}

TEST(DecoupledPartition, GpuWaysCoverAllSharedChannels) {
  // Section IV-A: GPU accesses to different sets go to different channels
  // and enjoy the full shared bandwidth.
  DecoupledPartition p(4, 4);
  p.set_config(3, 1);  // 1 GPU way per set, 3 shared channels
  std::set<u32> used;
  for (u32 set = 0; set < 64; ++set) {
    for (u32 w = 0; w < 4; ++w) {
      if (!p.is_cpu_way(set, w)) used.insert(p.channel_of_way(set, w));
    }
  }
  EXPECT_EQ(used.size(), 3u);
}

TEST(DecoupledPartition, GpuChannelLoadIsBalanced) {
  DecoupledPartition p(4, 4);
  p.set_config(3, 1);
  std::map<u32, u32> load;
  const u32 sets = 3000;
  for (u32 set = 0; set < sets; ++set) {
    for (u32 w = 0; w < 4; ++w) {
      if (!p.is_cpu_way(set, w)) load[p.channel_of_way(set, w)]++;
    }
  }
  for (const auto& [ch, n] : load) {
    (void)ch;
    EXPECT_NEAR(n / static_cast<double>(sets), 1.0 / 3, 0.05);
  }
}

TEST(DecoupledPartition, CapChangeMovesOneWayPerSet) {
  // Consistent hashing: stepping cap from 2 to 3 changes each set's CPU way
  // selection by exactly one way (minimal reconfiguration, Fig. 3(c)).
  DecoupledPartition p(4, 4);
  for (u32 set = 0; set < 512; ++set) {
    p.set_config(2, 1);
    std::set<u32> before;
    for (u32 w = 0; w < 4; ++w) {
      if (p.is_cpu_way(set, w)) before.insert(w);
    }
    p.set_config(3, 1);
    u32 newly_cpu = 0;
    for (u32 w = 0; w < 4; ++w) {
      if (p.is_cpu_way(set, w)) {
        if (!before.count(w)) newly_cpu++;
      } else {
        EXPECT_FALSE(before.count(w));  // no way flipped CPU->GPU
      }
    }
    EXPECT_EQ(newly_cpu, 1u);
  }
}

TEST(DecoupledPartition, BwChangeKeepsDedicatedSubsetNested) {
  DecoupledPartition p(4, 4);
  p.set_config(2, 1);
  std::set<u32> ded1;
  for (u32 ch = 0; ch < 4; ++ch) {
    if (p.is_dedicated_channel(ch)) ded1.insert(ch);
  }
  p.set_config(2, 2);
  for (u32 ch : ded1) EXPECT_TRUE(p.is_dedicated_channel(ch));
}

TEST(DecoupledPartition, SpillWaysAreCpuWaysOnSharedChannels) {
  DecoupledPartition p(4, 4);
  p.set_config(3, 1);  // ranks 1,2 spill to shared channels
  for (u32 set = 0; set < 128; ++set) {
    u32 spills = 0;
    for (u32 w = 0; w < 4; ++w) {
      if (p.is_cpu_spill_way(set, w)) {
        EXPECT_TRUE(p.is_cpu_way(set, w));
        EXPECT_FALSE(p.is_dedicated_channel(p.channel_of_way(set, w)));
        spills++;
      }
    }
    EXPECT_EQ(spills, 2u);  // cap(3) - bw(1)
  }
}

TEST(DecoupledPartition, DegenerateGeometries) {
  // Single channel: everything maps to channel 0.
  DecoupledPartition p1(1, 4);
  p1.set_config(2, 1);
  for (u32 set = 0; set < 16; ++set) {
    for (u32 w = 0; w < 4; ++w) EXPECT_EQ(p1.channel_of_way(set, w), 0u);
  }
  // Single way: shared by both sides, never a spill.
  DecoupledPartition p2(4, 1);
  p2.set_config(1, 2);
  for (u32 set = 0; set < 16; ++set) {
    EXPECT_TRUE(p2.is_cpu_way(set, 0));
    EXPECT_FALSE(p2.is_cpu_spill_way(set, 0));
    EXPECT_LT(p2.channel_of_way(set, 0), 4u);
  }
}

TEST(DecoupledPartition, SixteenWayGeometry) {
  // Fig. 11 scales associativity to 16; the mapping must stay legal.
  DecoupledPartition p(4, 16);
  p.set_config(12, 2);
  for (u32 set = 0; set < 64; ++set) {
    u32 cpu = 0;
    for (u32 w = 0; w < 16; ++w) {
      cpu += p.is_cpu_way(set, w);
      EXPECT_LT(p.channel_of_way(set, w), 4u);
    }
    EXPECT_EQ(cpu, 12u);
  }
}

}  // namespace
}  // namespace h2
