// Quickstart: build a Table I system, run one workload combination under the
// non-partitioned baseline and under Hydrogen, and print what changed.
//
//   $ ./quickstart [combo]        (default C1)
#include <iostream>
#include <string>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace h2;

int main(int argc, char** argv) {
  const std::string combo_name = argc > 1 ? argv[1] : "C1";
  const ComboSpec& cb = combo(combo_name);

  std::cout << "Hydrogen quickstart — combo " << cb.name << " (CPU: ";
  for (size_t i = 0; i < cb.cpu.size(); ++i) std::cout << (i ? ", " : "") << cb.cpu[i];
  std::cout << "; GPU: " << cb.gpu << ")\n\n";

  // 1. Describe the experiment: Table I system, scaled for interactive runs.
  ExperimentConfig cfg;
  cfg.combo = combo_name;
  cfg.sys = SystemConfig::table1(/*scale=*/8);
  cfg.cpu_target_instructions = 120'000;  // per CPU core
  cfg.gpu_target_instructions = 480'000;  // per GPU cluster
  cfg.epoch_cycles = 100'000;

  cfg.sys.print(std::cout);

  // 2. Run the baseline (no partitioning), then full Hydrogen.
  cfg.design = DesignSpec::baseline();
  std::cout << "\nrunning baseline ...\n";
  const ExperimentResult base = run_experiment(cfg);

  cfg.design = DesignSpec::hydrogen_full();
  std::cout << "running hydrogen ...\n";
  const ExperimentResult hydro = run_experiment(cfg);

  // 3. Compare.
  TablePrinter t("baseline vs Hydrogen", {"metric", "baseline", "hydrogen"});
  auto mcyc = [](Cycle c) { return fmt(static_cast<double>(c) / 1e6, 2) + "M"; };
  t.row({"CPU cycles to target", mcyc(base.cpu_cycles), mcyc(hydro.cpu_cycles)});
  t.row({"GPU cycles to target", mcyc(base.gpu_cycles), mcyc(hydro.gpu_cycles)});
  t.row({"CPU fast-memory hit rate", fmt_pct(base.fast_hit_rate[0]),
         fmt_pct(hydro.fast_hit_rate[0])});
  t.row({"GPU fast-memory hit rate", fmt_pct(base.fast_hit_rate[1]),
         fmt_pct(hydro.fast_hit_rate[1])});
  t.row({"GPU migrations", std::to_string(base.hmstats[1].migrations),
         std::to_string(hydro.hmstats[1].migrations)});
  t.row({"slow-tier traffic amplification", fmt(base.slow_amplification),
         fmt(hydro.slow_amplification)});
  t.row({"memory energy (mJ)", fmt(base.energy_pj / 1e9, 2), fmt(hydro.energy_pj / 1e9, 2)});
  t.print(std::cout);

  std::cout << "\nweighted speedup (CPU:GPU = 12:1): "
            << fmt(weighted_speedup(base, hydro)) << "x\n";
  std::cout << "Hydrogen converged to cap=" << hydro.final_point.cap
            << " CPU ways, bw=" << hydro.final_point.bw
            << " dedicated channels, tok level " << hydro.final_point.tok << " after "
            << hydro.reconfigurations << " reconfigurations.\n";
  return 0;
}
