// Phase adaptation: a workload whose behaviour flips between a
// capacity-hungry pointer-chasing phase and a bandwidth-hungry streaming
// phase, run under Hydrogen with and without phase-based re-exploration
// (paper Section IV-C: a new exploration phase every 500 M cycles).
//
// With restarts enabled, the hill climber re-opens its search when the
// programme's behaviour shifts and re-tunes (cap, bw, tok); without them it
// stays at whatever the first phase favoured.
#include <iostream>
#include <memory>

#include "harness/experiment.h"
#include "harness/report.h"
#include "hydrogen/hydrogen_policy.h"
#include "proc/core.h"
#include "sim/engine.h"

using namespace h2;

namespace {

PhasedGenerator::Phase make_phase(const WorkloadSpec& base, u64 accesses) {
  return PhasedGenerator::Phase{base, accesses};
}

/// Builds the two-phase CPU workload: mcf-like chasing, then lbm-like
/// streaming.
std::unique_ptr<PhasedGenerator> phased_cpu(u64 seed) {
  WorkloadSpec chase = with_scaled_footprint(cpu_workload_spec("mcf"), 1, 8);
  WorkloadSpec stream = with_scaled_footprint(cpu_workload_spec("lbm"), 1, 8);
  chase.name = "phase-chase";
  stream.name = "phase-stream";
  return std::make_unique<PhasedGenerator>(
      "phased-cpu",
      std::vector<PhasedGenerator::Phase>{make_phase(chase, 60'000),
                                          make_phase(stream, 60'000)},
      seed);
}

struct Model final : MemoryPort {
  Model(const SystemConfig& sys, PartitionPolicy* policy, u64 fast, u64 slow)
      : hierarchy(sys.hierarchy), mem(sys.mem) {
    HybridMemConfig hm_cfg = sys.hybrid;
    hm_cfg.fast_capacity_bytes = fast;
    hm_cfg.slow_capacity_bytes = slow;
    hm = std::make_unique<HybridMemory>(hm_cfg, &mem, policy);
  }
  Cycle access(Cycle now, Requestor cls, u32 unit, Addr addr, bool write) override {
    const HierarchyResult hr = cls == Requestor::Cpu
                                   ? hierarchy.cpu_access(unit, addr, write)
                                   : hierarchy.gpu_access(unit, addr, write);
    const Cycle t = now + hr.latency;
    if (!hr.memory_needed) return t;
    if (hr.writeback) hm->writeback(t, cls, hr.writeback_addr);
    return hm->access(t, cls, addr, write);
  }
  CacheHierarchy hierarchy;
  MemorySystem mem;
  std::unique_ptr<HybridMemory> hm;
};

/// Runs the phased mix under Hydrogen; returns cycles to finish.
Cycle run(bool phase_restarts) {
  SystemConfig sys = SystemConfig::table1(8);
  sys.hierarchy.cpu_cores = 2;
  sys.hierarchy.gpu_clusters = 2;

  HydrogenConfig hc;
  hc.search = true;
  hc.phase_length = phase_restarts ? 600'000 : 0;
  HydrogenPolicy policy(hc);

  const u64 slow = 96ull << 20;
  Model model(sys, &policy, slow / 8, slow);

  Engine engine;
  std::vector<std::unique_ptr<AccessGenerator>> gens;
  std::vector<std::unique_ptr<Core>> cores;

  for (u32 i = 0; i < 2; ++i) {
    gens.push_back(phased_cpu(17 + i));
    CoreParams p;
    p.cls = Requestor::Cpu;
    p.unit = i;
    p.addr_base = static_cast<Addr>(i) * (12ull << 20);
    p.mlp = 8;
    p.target_instructions = 1'200'000;
    cores.push_back(std::make_unique<Core>(p, gens.back().get(), &model));
    engine.add_actor(cores.back().get(), i);
  }
  WorkloadSpec gpu = with_scaled_footprint(gpu_workload_spec("backprop"), 1, 8);
  gpu.footprint_bytes /= 2;
  for (u32 i = 0; i < 2; ++i) {
    gens.push_back(std::make_unique<SyntheticGenerator>(gpu, 99 + i));
    CoreParams p;
    p.cls = Requestor::Gpu;
    p.unit = i;
    p.addr_base = (32ull << 20) + static_cast<Addr>(i) * (16ull << 20);
    p.mlp = 32;
    p.target_instructions = 2'000'000;
    cores.push_back(std::make_unique<Core>(p, gens.back().get(), &model));
    engine.add_actor(cores.back().get(), 10 + i);
  }

  u64 prev_cpu = 0, prev_gpu = 0;
  engine.add_periodic(40'000, [&](Cycle now) {
    u64 cpu = 0, gpu = 0;
    bool all = true;
    for (const auto& c : cores) {
      (c->cls() == Requestor::Cpu ? cpu : gpu) += c->retired_instructions();
      all = all && c->finished();
    }
    EpochFeedback fb;
    fb.now = now;
    fb.epoch_cycles = 40'000;
    fb.cpu_instructions = cpu - prev_cpu;
    fb.gpu_instructions = gpu - prev_gpu;
    fb.weighted_ipc = (12.0 * fb.cpu_instructions + fb.gpu_instructions) / 40'000.0;
    prev_cpu = cpu;
    prev_gpu = gpu;
    policy.on_epoch(fb);
    if (all) engine.stop();
  });
  engine.run(400'000'000);
  std::cout << "  reconfigurations: " << policy.reconfigurations()
            << ", final point (cap,bw,tok) = (" << policy.active_point().cap << ","
            << policy.active_point().bw << "," << policy.active_point().tok << ")\n";
  return engine.now();
}

}  // namespace

int main() {
  std::cout << "phase-adaptive workload under Hydrogen\n\n";
  std::cout << "without phase restarts (phase_length = 0):\n";
  const Cycle frozen = run(false);
  std::cout << "  finished in " << fmt(frozen / 1e6, 2) << "M cycles\n\n";
  std::cout << "with phase restarts (paper Section IV-C):\n";
  const Cycle adaptive = run(true);
  std::cout << "  finished in " << fmt(adaptive / 1e6, 2) << "M cycles\n\n";
  std::cout << "restart benefit: " << fmt(static_cast<double>(frozen) / adaptive, 3)
            << "x\n";
  std::cout << "\n(The paper's evaluated mixes are stable, so there it sets a long"
               " 500 M-cycle phase;\nthis example shows why the mechanism exists.)\n";
  return 0;
}
