// Custom policy: shows how a downstream user extends the public API with
// their own partitioning design and evaluates it against the built-ins.
//
// The example implements "StaticHalf": a decoupled-flavoured policy that
// dedicates half the channels to the CPU, splits ways 2:2, and throttles GPU
// migrations with a fixed probability — no adaptation. It plugs into the
// same PartitionPolicy seam Hydrogen uses, but the experiment harness is
// driven manually here (cores + engine), showing the full wiring.
#include <iostream>
#include <memory>

#include "harness/experiment.h"
#include "harness/report.h"
#include "hydrogen/consistent_hash.h"
#include "proc/core.h"
#include "sim/engine.h"

using namespace h2;

namespace {

/// A user-defined partitioning policy.
class StaticHalfPolicy final : public PartitionPolicy {
 public:
  const char* name() const override { return "static-half"; }

  u32 channel_of_way(u32 set, u32 way) const override {
    // CPU ways on the low half of the channels, GPU ways on the high half,
    // rotated per set for bank spread.
    const u32 half = std::max(1u, num_channels_ / 2);
    const u32 slot = (set + way) % half;
    return way_owner(set, way) == Requestor::Cpu ? slot : half + slot % (num_channels_ - half);
  }

  bool way_allowed(u32 set, u32 way, Requestor cls) const override {
    return way_owner(set, way) == cls;
  }

  Requestor way_owner(u32 set, u32 way) const override {
    if (assoc_ < 2) return Requestor::Cpu;
    // Use the library's rendezvous hashing for a balanced per-set split.
    return hrw_rank(0xCAFE, set, way, assoc_) < assoc_ / 2 ? Requestor::Cpu
                                                           : Requestor::Gpu;
  }

  bool allow_migration(const PolicyContext& ctx, bool victim_dirty) override {
    if (ctx.cls == Requestor::Cpu) return true;
    // Fixed 25% GPU migration budget, costlier when dirty.
    coin_ = splitmix64(coin_ + ctx.tag);
    const u32 gate = victim_dirty ? 8 : 4;
    return (coin_ & 15) < 16 / gate;
  }

 private:
  u64 coin_ = 0x5eed;
};

/// Minimal MemoryPort wiring (hierarchy -> hybrid memory), as the harness
/// does internally.
class SimpleModel final : public MemoryPort {
 public:
  SimpleModel(const SystemConfig& sys, PartitionPolicy* policy, u64 fast, u64 slow)
      : hierarchy_(sys.hierarchy), mem_(sys.mem) {
    HybridMemConfig hm = sys.hybrid;
    hm.fast_capacity_bytes = fast;
    hm.slow_capacity_bytes = slow;
    hm_ = std::make_unique<HybridMemory>(hm, &mem_, policy);
  }

  Cycle access(Cycle now, Requestor cls, u32 unit, Addr addr, bool write) override {
    const HierarchyResult hr = cls == Requestor::Cpu
                                   ? hierarchy_.cpu_access(unit, addr, write)
                                   : hierarchy_.gpu_access(unit, addr, write);
    const Cycle t = now + hr.latency;
    if (!hr.memory_needed) return t;
    if (hr.writeback) hm_->writeback(t, cls, hr.writeback_addr);
    return hm_->access(t, cls, addr, write);
  }

  HybridMemory& hybrid() { return *hm_; }

 private:
  CacheHierarchy hierarchy_;
  MemorySystem mem_;
  std::unique_ptr<HybridMemory> hm_;
};

}  // namespace

int main() {
  const SystemConfig sys = SystemConfig::table1(8);
  const u64 slow = 64ull << 20;
  const u64 fast = slow / 8;

  StaticHalfPolicy policy;
  SimpleModel model(sys, &policy, fast, slow);

  // Two CPU cores (mcf, gcc) + two GPU clusters (backprop) sharing the model.
  Engine engine;
  std::vector<std::unique_ptr<SyntheticGenerator>> gens;
  std::vector<std::unique_ptr<Core>> cores;
  auto add = [&](Requestor cls, u32 unit, const WorkloadSpec& spec, Addr base, u64 target) {
    gens.push_back(std::make_unique<SyntheticGenerator>(
        with_scaled_footprint(spec, 1, 8), mix_hash(7, unit + (cls == Requestor::Gpu ? 100 : 0))));
    CoreParams p;
    p.cls = cls;
    p.unit = unit;
    p.addr_base = base;
    p.mlp = cls == Requestor::Cpu ? 8 : 48;
    p.target_instructions = target;
    cores.push_back(std::make_unique<Core>(p, gens.back().get(), &model));
    engine.add_actor(cores.back().get(), unit);
  };
  add(Requestor::Cpu, 0, cpu_workload_spec("mcf"), 0, 150'000);
  add(Requestor::Cpu, 1, cpu_workload_spec("gcc"), 16ull << 20, 150'000);
  add(Requestor::Gpu, 0, gpu_workload_spec("backprop"), 32ull << 20, 400'000);
  add(Requestor::Gpu, 1, gpu_workload_spec("backprop"), 48ull << 20, 400'000);

  engine.add_periodic(100'000, [&](Cycle) {
    bool all = true;
    for (const auto& c : cores) all = all && c->finished();
    if (all) engine.stop();
  });
  engine.run(200'000'000);

  TablePrinter t("custom StaticHalf policy", {"metric", "value"});
  t.row({"simulated cycles", std::to_string(engine.now())});
  for (const auto& c : cores) {
    t.row({std::string(to_string(c->cls())) + " core retired",
           std::to_string(c->retired_instructions())});
  }
  t.row({"CPU fast hit rate", fmt_pct(model.hybrid().hit_rate(Requestor::Cpu))});
  t.row({"GPU fast hit rate", fmt_pct(model.hybrid().hit_rate(Requestor::Gpu))});
  t.row({"GPU migrations", std::to_string(model.hybrid().stats(Requestor::Gpu).migrations)});
  t.row({"GPU bypasses", std::to_string(model.hybrid().stats(Requestor::Gpu).bypasses)});
  t.print(std::cout);

  std::cout << "\nTo compare against the built-in designs, run the same combo"
               " through run_experiment()\nwith DesignSpec::baseline() /"
               " hydrogen_full() — see examples/quickstart.cpp.\n";
  return 0;
}
