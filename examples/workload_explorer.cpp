// Workload explorer: reproduce the paper's Fig. 2-style sensitivity analysis
// for ANY workload combination — how much does each side care about fast
// bandwidth, fast capacity, and slow bandwidth? This is the analysis a user
// would run before deciding whether Hydrogen helps their mix.
//
//   $ ./workload_explorer [combo]        (default C3)
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace h2;

namespace {

ExperimentConfig base_config(const std::string& combo) {
  ExperimentConfig cfg;
  cfg.combo = combo;
  cfg.sys = SystemConfig::table1(8);
  cfg.cpu_target_instructions = 80'000;
  cfg.gpu_target_instructions = 320'000;
  cfg.epoch_cycles = 100'000;
  return cfg;
}

double solo_cycles(ExperimentConfig cfg, Requestor side) {
  cfg.cpu_only = side == Requestor::Cpu;
  cfg.gpu_only = side == Requestor::Gpu;
  const auto r = run_experiment(cfg);
  return static_cast<double>(side == Requestor::Cpu ? r.cpu_cycles : r.gpu_cycles);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string combo_name = argc > 1 ? argv[1] : "C3";

  std::cout << "Sensitivity profile for " << combo_name
            << " (performance normalised to full resources; each side alone)\n";

  struct Dim {
    const char* name;
    std::vector<std::pair<std::string, double>> points;
    void (*apply)(ExperimentConfig&, double);
  };
  const std::vector<Dim> dims = {
      {"fast bandwidth",
       {{"16ch", 16}, {"8ch", 8}, {"4ch", 4}},
       [](ExperimentConfig& c, double v) { c.fast_channels = static_cast<u32>(v); }},
      {"fast capacity",
       {{"1x", 1.0}, {"1/2", 0.5}, {"1/4", 0.25}},
       [](ExperimentConfig& c, double v) { c.fast_capacity_frac = 0.125 * v; }},
      {"slow bandwidth",
       {{"4ch", 4}, {"2ch", 2}, {"1ch", 1}},
       [](ExperimentConfig& c, double v) { c.slow_channels = static_cast<u32>(v); }},
  };

  for (const auto& dim : dims) {
    TablePrinter t(std::string("sensitivity to ") + dim.name,
                   {"setting", "CPU perf", "GPU perf"});
    double cpu0 = 0, gpu0 = 0;
    for (size_t i = 0; i < dim.points.size(); ++i) {
      ExperimentConfig cfg = base_config(combo_name);
      dim.apply(cfg, dim.points[i].second);
      const double c = solo_cycles(cfg, Requestor::Cpu);
      const double g = solo_cycles(cfg, Requestor::Gpu);
      if (i == 0) {
        cpu0 = c;
        gpu0 = g;
      }
      t.row({dim.points[i].first, fmt_pct(cpu0 / c), fmt_pct(gpu0 / g)});
    }
    t.print(std::cout);
  }

  std::cout << "\nReading the profile: a mix where the CPU column falls fastest"
               " under 'fast capacity'\nand the GPU column under 'fast bandwidth'"
               " is exactly the decoupling opportunity\nHydrogen exploits"
               " (paper Insights 1-3).\n";
  return 0;
}
