// Capacity planner: sweep the static (cap, bw) partitioning grid for a
// workload combination and print the landscape — the offline version of what
// Hydrogen's hill climbing explores online. Useful for provisioning studies:
// "how much fast memory do the CPUs of this mix actually need?"
//
//   $ ./capacity_planner [combo]        (default C6)
#include <iostream>
#include <string>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace h2;

int main(int argc, char** argv) {
  const std::string combo_name = argc > 1 ? argv[1] : "C6";

  ExperimentConfig base_cfg;
  base_cfg.combo = combo_name;
  base_cfg.sys = SystemConfig::table1(8);
  base_cfg.cpu_target_instructions = 80'000;
  base_cfg.gpu_target_instructions = 320'000;
  base_cfg.epoch_cycles = 100'000;
  base_cfg.design = DesignSpec::baseline();
  std::cout << "running " << combo_name << " baseline ...\n";
  const ExperimentResult base = run_experiment(base_cfg);

  TablePrinter grid("static (cap, bw) landscape — weighted speedup vs baseline",
                    {"CPU ways \\ CPU channels", "bw=1", "bw=2", "bw=3"});
  ParamPoint best{1, 1, 3};
  double best_su = 0;
  for (u32 cap = 1; cap <= 3; ++cap) {
    std::vector<std::string> row = {"cap=" + std::to_string(cap)};
    for (u32 bw = 1; bw <= 3; ++bw) {
      ExperimentConfig cfg = base_cfg;
      cfg.design = DesignSpec::hydrogen_dp_token();
      cfg.design.hydrogen.fixed_cpu_capacity_frac = cap / 4.0;
      cfg.design.hydrogen.fixed_cpu_bw_frac = bw / 4.0;
      cfg.design.label = "cap" + std::to_string(cap) + "bw" + std::to_string(bw);
      std::cout << "running cap=" << cap << " bw=" << bw << " ...\n";
      const ExperimentResult r = run_experiment(cfg);
      const double su = weighted_speedup(base, r);
      if (su > best_su) {
        best_su = su;
        best = ParamPoint{cap, bw, 3};
      }
      row.push_back(fmt(su));
    }
    grid.row(std::move(row));
  }
  grid.print(std::cout);

  std::cout << "\nbest static point: cap=" << best.cap << ", bw=" << best.bw
            << " at " << fmt(best_su) << "x\n";

  // Compare with what the online search finds on its own.
  ExperimentConfig online = base_cfg;
  online.design = DesignSpec::hydrogen_full();
  std::cout << "running online hydrogen ...\n";
  const ExperimentResult r = run_experiment(online);
  std::cout << "online hydrogen: " << fmt(weighted_speedup(base, r)) << "x, converged to cap="
            << r.final_point.cap << ", bw=" << r.final_point.bw << ", tok level "
            << r.final_point.tok << "\n";
  return 0;
}
