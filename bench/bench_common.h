// Shared plumbing for the figure/table benches: argument parsing, the
// standard bench-sized experiment configuration, and small run helpers.
//
// Every bench accepts:
//   --quick        smaller combo subset / shorter runs (CI-friendly)
//   --full         all 12 combos where the default uses a subset
//   --csv <path>   additionally dump the printed table as CSV
//   --jobs <n>     parallel sweep workers (default: H2_JOBS env, then all
//                  hardware threads); results are bit-identical at any n
//   --check <n>    runtime invariant level (clamped to the compiled
//                  H2_CHECK_LEVEL ceiling; see TESTING.md)
//   --warmup-epochs <n>  epochs to run before the measurement window opens
//                  (SimSystem lifecycle; 0 = cold start, the default)
//   --timeline <prefix>  per-run epoch time-series CSVs at
//                  <prefix><combo>-<design>.csv
//   --compiled-check-level  print the compile-time H2_CHECK ceiling and exit
//                  (CI's recorded-number guard)
//   --backend fast|ddr  per-channel timing model (default fast; see
//                  mem/ddr_backend.h and TESTING.md's backend contract)
//   --integrated   append the coherent-NUMA `integrated` design to figures
//                  that take the Fig. 5 roster (off by default so the
//                  historical goldens stay byte-identical)
// and the crash-safety / fault flags (see src/harness/sweep.h):
//   --run-timeout <sec>  per-run watchdog budget (0 = off)
//   --retries <n>        retry transient failures up to n times
//   --strict             exit non-zero when any sweep slot failed
//   --fault <spec>       arm a fault around every run (check/fault.h grammar)
//   --journal <path>     per-run JSONL journal (default: <csv>.journal)
//   --resume             restore journaled ok runs instead of re-running
//   --journal-fsync      fsync the journal after every record (power-loss
//                        durability; H2_JOURNAL_FSYNC=1 forces it on)
//   --checkpoint <dir>   per-run epoch-boundary checkpoints at
//                        <dir>/<config_key>.ckpt (harness/checkpoint.h)
//   --checkpoint-every <n>  snapshot every nth epoch boundary (default 1)
//   --restore            resume runs whose checkpoint exists mid-flight,
//                        bit-identically (vs --resume, which skips runs the
//                        journal says already *finished*)
#pragma once

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "check/check.h"
#include "common/assert.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"

namespace h2::bench {

struct BenchArgs {
  bool quick = false;
  bool full = false;
  bool hbm3 = false;
  std::string csv_path;
  u32 jobs = 0;  ///< sweep workers; 0 = auto (H2_JOBS / hardware threads)
  int check_level = -1;  ///< runtime invariant level; -1 = leave the default
  double run_timeout = 0.0;  ///< per-run watchdog budget in seconds; 0 = off
  u32 retries = 0;           ///< transient-failure retries per run
  bool strict = false;       ///< exit non-zero when any sweep slot failed
  std::string fault_spec;    ///< --fault; "" also falls back to H2_FAULT
  std::string journal_path;  ///< --journal; "" derives <csv>.journal
  bool resume = false;       ///< restore journaled ok runs
  bool journal_fsync = false;   ///< fsync the journal per record
  std::string checkpoint_dir;   ///< --checkpoint; per-run snapshots when set
  u32 checkpoint_every = 1;     ///< --checkpoint-every; epoch stride
  bool restore_checkpoints = false;  ///< --restore; resume interrupted runs
  u32 warmup_epochs = 0;     ///< --warmup-epochs; 0 = historical cold start
  std::string timeline_prefix;  ///< --timeline; per-run CSVs when non-empty
  bool print_compiled_check_level = false;  ///< --compiled-check-level
  /// --backend; the per-channel timing model every run uses (fast = the
  /// analytic model the recorded numbers pin, ddr = mem/ddr_backend.h).
  ChannelBackendKind backend = ChannelBackendKind::Fast;
  /// --integrated; opt-in extra column for the Fig. 5 roster figures.
  bool integrated = false;

  /// Parses argv without exiting: on success fills *out and returns true; on
  /// a bad flag returns false with a diagnostic in *error. The exiting
  /// parse() wrapper below is what the bench main()s use.
  static bool try_parse(int argc, char** argv, BenchArgs* out, std::string* error) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--quick") {
        args.quick = true;
      } else if (a == "--full") {
        args.full = true;
      } else if (a == "--hbm3") {
        args.hbm3 = true;
      } else if (a == "--csv" && i + 1 < argc) {
        args.csv_path = argv[++i];
      } else if (a == "--jobs" && i + 1 < argc) {
        const std::string v = argv[++i];
        char* end = nullptr;
        const long n = std::strtol(v.c_str(), &end, 10);
        if (!end || *end != '\0' || v.empty() || n <= 0) {
          *error = "--jobs expects a positive integer, got '" + v + "'";
          return false;
        }
        args.jobs = static_cast<u32>(n);
      } else if (a == "--check" && i + 1 < argc) {
        const std::string v = argv[++i];
        char* end = nullptr;
        const long n = std::strtol(v.c_str(), &end, 10);
        if (!end || *end != '\0' || v.empty() || n < 0) {
          *error = "--check expects a non-negative integer, got '" + v + "'";
          return false;
        }
        args.check_level = static_cast<int>(n);
      } else if (a == "--run-timeout" && i + 1 < argc) {
        const std::string v = argv[++i];
        char* end = nullptr;
        const double s = std::strtod(v.c_str(), &end);
        if (!end || *end != '\0' || v.empty() || s < 0) {
          *error = "--run-timeout expects seconds >= 0, got '" + v + "'";
          return false;
        }
        args.run_timeout = s;
      } else if (a == "--retries" && i + 1 < argc) {
        const std::string v = argv[++i];
        char* end = nullptr;
        const long n = std::strtol(v.c_str(), &end, 10);
        if (!end || *end != '\0' || v.empty() || n < 0) {
          *error = "--retries expects a non-negative integer, got '" + v + "'";
          return false;
        }
        args.retries = static_cast<u32>(n);
      } else if (a == "--strict") {
        args.strict = true;
      } else if (a == "--fault" && i + 1 < argc) {
        args.fault_spec = argv[++i];
      } else if (a == "--journal" && i + 1 < argc) {
        args.journal_path = argv[++i];
      } else if (a == "--resume") {
        args.resume = true;
      } else if (a == "--journal-fsync") {
        args.journal_fsync = true;
      } else if (a == "--checkpoint" && i + 1 < argc) {
        args.checkpoint_dir = argv[++i];
      } else if (a == "--checkpoint-every" && i + 1 < argc) {
        const std::string v = argv[++i];
        char* end = nullptr;
        const long n = std::strtol(v.c_str(), &end, 10);
        if (!end || *end != '\0' || v.empty() || n <= 0) {
          *error = "--checkpoint-every expects a positive integer, got '" + v + "'";
          return false;
        }
        args.checkpoint_every = static_cast<u32>(n);
      } else if (a == "--restore") {
        args.restore_checkpoints = true;
      } else if (a == "--warmup-epochs" && i + 1 < argc) {
        const std::string v = argv[++i];
        char* end = nullptr;
        const long n = std::strtol(v.c_str(), &end, 10);
        if (!end || *end != '\0' || v.empty() || n < 0) {
          *error = "--warmup-epochs expects a non-negative integer, got '" + v + "'";
          return false;
        }
        args.warmup_epochs = static_cast<u32>(n);
      } else if (a == "--timeline" && i + 1 < argc) {
        args.timeline_prefix = argv[++i];
      } else if (a == "--compiled-check-level") {
        args.print_compiled_check_level = true;
      } else if (a == "--backend" && i + 1 < argc) {
        const std::string v = argv[++i];
        if (!parse_backend_kind(v, &args.backend)) {
          *error = "--backend expects fast or ddr, got '" + v + "'";
          return false;
        }
      } else if (a == "--integrated") {
        args.integrated = true;
      } else {
        *error = "unknown argument: " + a +
                 " (supported: --quick --full --hbm3 --csv <path> --jobs <n>"
                 " --check <n> --run-timeout <sec> --retries <n> --strict"
                 " --fault <spec> --journal <path> --resume --journal-fsync"
                 " --checkpoint <dir> --checkpoint-every <n> --restore"
                 " --warmup-epochs <n> --timeline <prefix>"
                 " --compiled-check-level --backend fast|ddr --integrated)";
        return false;
      }
    }
    *out = args;
    return true;
  }

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    std::string error;
    if (!try_parse(argc, argv, &args, &error)) {
      std::cerr << error << "\n";
      std::exit(2);
    }
    if (args.print_compiled_check_level) {
      std::cout << check::compiled_level() << "\n";
      std::exit(0);
    }
    if (args.check_level >= 0) check::set_runtime_level(args.check_level);
    return args;
  }
};

/// The bench-default experiment: Table I system at footprint scale 8,
/// instruction targets sized so one run takes a couple of seconds.
inline ExperimentConfig bench_config(const std::string& combo, DesignSpec design,
                                     const BenchArgs& args) {
  ExperimentConfig cfg;
  cfg.combo = combo;
  cfg.design = std::move(design);
  cfg.sys = args.hbm3 ? SystemConfig::table1_hbm3(8) : SystemConfig::table1(8);
  cfg.cpu_target_instructions = args.quick ? 60'000 : 120'000;
  cfg.gpu_target_instructions = args.quick ? 600'000 : 1'200'000;
  cfg.epoch_cycles = 40'000;
  cfg.max_cycles = 400'000'000;
  cfg.warmup_epochs = args.warmup_epochs;
  cfg.backend = args.backend;
  if (!args.timeline_prefix.empty()) {
    cfg.timeline_path = args.timeline_prefix + cfg.combo + "-" + cfg.design.label + ".csv";
  }
  return cfg;
}

/// Combo subsets used by geomean figures.
inline std::vector<std::string> combo_names(const BenchArgs& args, bool subset_default) {
  std::vector<std::string> all;
  for (const auto& c : table2_combos()) all.push_back(c.name);
  if (args.quick) return {"C1", "C5", "C11"};
  if (subset_default && !args.full) return {"C1", "C3", "C5", "C7", "C9", "C11"};
  return all;
}

/// The Fig. 5 design roster, in paper order. `with_integrated` appends the
/// coherent-NUMA migration design as an extra rightmost column (the
/// --integrated flag); the historical six-design roster is the default so
/// the recorded goldens stay byte-identical.
inline std::vector<DesignSpec> fig5_designs(bool with_integrated = false) {
  std::vector<DesignSpec> designs = {
      DesignSpec::hashcache(),        DesignSpec::profess(),
      DesignSpec::waypart(),          DesignSpec::hydrogen_dp(),
      DesignSpec::hydrogen_dp_token(), DesignSpec::hydrogen_full()};
  if (with_integrated) designs.push_back(DesignSpec::integrated());
  return designs;
}

/// Sweep results with per-slot failure state. Indexing mimics the old
/// vector<ExperimentResult> API so bench tables read `results[k]` unchanged,
/// but a failed slot trips an H2_ASSERT naming the run — benches that can
/// degrade gracefully (fig05) guard cells with ok(i) instead.
class SweepResultSet {
 public:
  explicit SweepResultSet(std::vector<SweepRun> runs) : runs_(std::move(runs)) {}

  size_t size() const { return runs_.size(); }
  bool ok(size_t i) const { return runs_.at(i).ok; }
  const SweepRun& run(size_t i) const { return runs_.at(i); }

  size_t failures() const {
    size_t n = 0;
    for (const SweepRun& r : runs_) n += r.ok ? 0 : 1;
    return n;
  }

  const ExperimentResult& operator[](size_t i) const {
    const SweepRun& r = runs_.at(i);
    H2_ASSERT(r.ok, "sweep run [%s / %s] %s: %s (this figure needs the cell; "
                    "re-run, or use --strict to fail the whole sweep up front)",
              r.combo.c_str(), r.design.c_str(), to_string(r.status),
              r.error.c_str());
    return r.result;
  }
  const ExperimentResult& front() const { return (*this)[0]; }
  const ExperimentResult& back() const { return (*this)[runs_.size() - 1]; }

 private:
  std::vector<SweepRun> runs_;
};

/// Fans a batch of experiments out over the sweep runner (respecting
/// --jobs / H2_JOBS / the crash-safety flags) and returns the results in
/// submission order, with progress markers on stderr (so CSV on stdout stays
/// clean). Failed slots are captured, summarised on stderr, and fail the
/// process up front only under --strict; otherwise each figure decides
/// whether it can degrade (SweepResultSet above).
inline SweepResultSet run_sweep(const std::vector<ExperimentConfig>& cfgs,
                                const BenchArgs& args) {
  SweepOptions opts;
  opts.jobs = args.jobs;
  opts.verbose = true;
  opts.run_timeout_seconds = args.run_timeout;
  opts.max_retries = args.retries;
  opts.fault_spec = args.fault_spec;
  opts.journal_path = args.journal_path;
  if (opts.journal_path.empty() && !args.csv_path.empty()) {
    opts.journal_path = args.csv_path + ".journal";  // journal rides with the CSV
  }
  opts.resume = args.resume;
  opts.journal_fsync = args.journal_fsync;
  opts.checkpoint_dir = args.checkpoint_dir;
  opts.checkpoint_every = args.checkpoint_every;
  opts.restore_checkpoints = args.restore_checkpoints;
  if (opts.resume && opts.journal_path.empty()) {
    std::cerr << "error: --resume needs --journal <path> or --csv <path>\n";
    std::exit(2);
  }
  if (opts.restore_checkpoints && opts.checkpoint_dir.empty()) {
    std::cerr << "error: --restore needs --checkpoint <dir>\n";
    std::exit(2);
  }
  std::vector<SweepRun> runs = h2::run_sweep(cfgs, opts);

  size_t failed = 0;
  for (const SweepRun& run : runs) failed += run.ok ? 0 : 1;
  if (failed > 0) {
    std::cerr << "sweep: " << failed << "/" << runs.size() << " runs failed:\n";
    for (const SweepRun& run : runs) {
      if (run.ok) continue;
      std::cerr << "  [" << run.combo << " / " << run.design << "] "
                << to_string(run.status) << " after " << run.attempts
                << " attempt(s): " << run.error << "\n";
    }
    if (args.strict) {
      std::cerr << "error: --strict and the sweep had failures\n";
      std::exit(1);
    }
  }
  return SweepResultSet(std::move(runs));
}

/// Runs one experiment through the same sweep path (same seed derivation),
/// for the few call sites that genuinely need a single result.
inline ExperimentResult run_one(const ExperimentConfig& cfg, const BenchArgs& args) {
  return run_sweep({cfg}, args).front();
}

inline void maybe_csv(const TablePrinter& table, const BenchArgs& args) {
  if (!args.csv_path.empty()) {
    table.write_csv(args.csv_path);
    std::cerr << "wrote " << args.csv_path << "\n";
  }
}

}  // namespace h2::bench
