// Shared plumbing for the figure/table benches: argument parsing, the
// standard bench-sized experiment configuration, and small run helpers.
//
// Every bench accepts:
//   --quick        smaller combo subset / shorter runs (CI-friendly)
//   --full         all 12 combos where the default uses a subset
//   --csv <path>   additionally dump the printed table as CSV
#pragma once

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"

namespace h2::bench {

struct BenchArgs {
  bool quick = false;
  bool full = false;
  bool hbm3 = false;
  std::string csv_path;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--quick") {
        args.quick = true;
      } else if (a == "--full") {
        args.full = true;
      } else if (a == "--hbm3") {
        args.hbm3 = true;
      } else if (a == "--csv" && i + 1 < argc) {
        args.csv_path = argv[++i];
      } else {
        std::cerr << "unknown argument: " << a
                  << " (supported: --quick --full --hbm3 --csv <path>)\n";
        std::exit(2);
      }
    }
    return args;
  }
};

/// The bench-default experiment: Table I system at footprint scale 8,
/// instruction targets sized so one run takes a couple of seconds.
inline ExperimentConfig bench_config(const std::string& combo, DesignSpec design,
                                     const BenchArgs& args) {
  ExperimentConfig cfg;
  cfg.combo = combo;
  cfg.design = std::move(design);
  cfg.sys = args.hbm3 ? SystemConfig::table1_hbm3(8) : SystemConfig::table1(8);
  cfg.cpu_target_instructions = args.quick ? 60'000 : 120'000;
  cfg.gpu_target_instructions = args.quick ? 600'000 : 1'200'000;
  cfg.epoch_cycles = 40'000;
  cfg.max_cycles = 400'000'000;
  return cfg;
}

/// Combo subsets used by geomean figures.
inline std::vector<std::string> combo_names(const BenchArgs& args, bool subset_default) {
  std::vector<std::string> all;
  for (const auto& c : table2_combos()) all.push_back(c.name);
  if (args.quick) return {"C1", "C5", "C11"};
  if (subset_default && !args.full) return {"C1", "C3", "C5", "C7", "C9", "C11"};
  return all;
}

/// The Fig. 5 design roster, in paper order.
inline std::vector<DesignSpec> fig5_designs() {
  return {DesignSpec::hashcache(),        DesignSpec::profess(),
          DesignSpec::waypart(),          DesignSpec::hydrogen_dp(),
          DesignSpec::hydrogen_dp_token(), DesignSpec::hydrogen_full()};
}

/// Runs and prints a short progress marker (stderr, so CSV stays clean).
inline ExperimentResult run_verbose(const ExperimentConfig& cfg) {
  std::cerr << "  [" << cfg.combo << " / " << cfg.design.label
            << (cfg.cpu_only ? " cpu-only" : cfg.gpu_only ? " gpu-only" : "")
            << "] ..." << std::flush;
  const ExperimentResult r = run_experiment(cfg);
  std::cerr << " done (" << fmt(static_cast<double>(r.end_cycle) / 1e6, 1)
            << "M cycles)\n";
  return r;
}

inline void maybe_csv(const TablePrinter& table, const BenchArgs& args) {
  if (!args.csv_path.empty()) {
    table.write_csv(args.csv_path);
    std::cerr << "wrote " << args.csv_path << "\n";
  }
}

}  // namespace h2::bench
