// Fig. 11: sensitivity to the hybrid-memory geometry — associativity
// A in {1,2,4,8,16} at B=256, and block size B in {64,128,256,512,2048} at
// A=4. Weighted speedups of HAShCache, ProFess and Hydrogen, each normalised
// to the non-partitioned baseline *of the same geometry*. HAShCache keeps
// chaining only at A=1 (its native design); at higher associativities
// chaining is disabled and tag latency added, as the paper describes.
#include <iostream>

#include "bench_common.h"

using namespace h2;

namespace {

DesignSpec scaled_hashcache() {
  DesignSpec d = DesignSpec::hashcache();
  d.hashcache_native_geometry = false;  // use the sweep's associativity
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto combos = args.quick ? std::vector<std::string>{"C1"}
                                 : std::vector<std::string>{"C1", "C5", "C11"};

  auto sweep_row = [&](u32 assoc, u64 block) {
    const std::vector<DesignSpec> designs = {
        scaled_hashcache(), DesignSpec::profess(), DesignSpec::hydrogen_full()};
    std::vector<ExperimentConfig> cfgs;
    for (const auto& combo : combos) {
      ExperimentConfig bcfg = bench::bench_config(combo, DesignSpec::baseline(), args);
      bcfg.assoc = assoc;
      bcfg.block_bytes = block;
      cfgs.push_back(std::move(bcfg));
      for (const DesignSpec& d : designs) {
        ExperimentConfig cfg = bench::bench_config(combo, d, args);
        cfg.assoc = assoc;
        cfg.block_bytes = block;
        cfgs.push_back(std::move(cfg));
      }
    }
    const auto results = bench::run_sweep(cfgs, args);
    std::map<std::string, std::vector<double>> su;
    size_t k = 0;
    for (size_t c = 0; c < combos.size(); ++c) {
      const auto& base = results[k++];
      for (const DesignSpec& d : designs) {
        su[d.label].push_back(weighted_speedup(base, results[k++]));
      }
    }
    return std::vector<std::string>{fmt(geomean(su["hashcache"])),
                                    fmt(geomean(su["profess"])),
                                    fmt(geomean(su["hydrogen"]))};
  };

  TablePrinter ta("Fig. 11 (associativity sweep, 256 B blocks)",
                  {"config", "hashcache", "profess", "hydrogen"});
  for (u32 a : {1u, 2u, 4u, 8u, 16u}) {
    auto cells = sweep_row(a, 256);
    ta.row({"A" + std::to_string(a) + "-B256", cells[0], cells[1], cells[2]});
  }
  ta.print(std::cout);
  bench::maybe_csv(ta, args);

  TablePrinter tbl("Fig. 11 (block size sweep, 4-way)",
                   {"config", "hashcache", "profess", "hydrogen"});
  for (u64 b : {64ull, 128ull, 256ull, 512ull, 2048ull}) {
    auto cells = sweep_row(4, b);
    tbl.row({"A4-B" + std::to_string(b), cells[0], cells[1], cells[2]});
  }
  tbl.print(std::cout);

  std::cout << "\nExpected shapes (paper Section VI-C): Hydrogen wins consistently"
               " except A1-B64,\n  where HAShCache's chaining gives it a slight"
               " edge; larger blocks raise migration\n  cost, which Hydrogen's"
               " token throttling absorbs better than ProFess.\n";
  return 0;
}
