// google-benchmark microbenchmarks of the simulator substrates themselves:
// how fast the building blocks run on the host. Useful when extending the
// simulator — the event loop must stay cheap for the figure benches to
// remain interactive.
#include <benchmark/benchmark.h>

#include "cache/cache.h"
#include "hybridmem/hybrid_memory.h"
#include "hybridmem/remap_table.h"
#include "hydrogen/consistent_hash.h"
#include "hydrogen/hydrogen_policy.h"
#include "mem/channel.h"
#include "policies/baseline.h"
#include "sim/engine.h"
#include "trace/workloads.h"

namespace h2 {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_SyntheticGenerator(benchmark::State& state) {
  SyntheticGenerator gen(cpu_workload_spec("mcf"), 42);
  for (auto _ : state) benchmark::DoNotOptimize(gen.next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyntheticGenerator);

void BM_ChannelRequest(benchmark::State& state) {
  Channel ch(ddr4_3200_timing(), 3.2, 0);
  Cycle t = 0;
  Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.request(t, a, 64, false));
    t += 4;
    a += 4096;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelRequest);

void BM_CacheAccess(benchmark::State& state) {
  Cache cache(CacheConfig{.name = "bm", .size_bytes = 1 << 20, .ways = 16});
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.next_below(1 << 24) * 64, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_HrwRank(benchmark::State& state) {
  u32 set = 0;
  for (auto _ : state) {
    const u32 s = set++;
    benchmark::DoNotOptimize(hrw_rank(0x5eed, s, s % 4, 4));
  }
}
BENCHMARK(BM_HrwRank);

void BM_DecoupledChannelOfWay(benchmark::State& state) {
  DecoupledPartition p(4, 4);
  p.set_config(3, 1);
  u32 set = 0;
  for (auto _ : state) {
    const u32 s = set++;
    benchmark::DoNotOptimize(p.channel_of_way(s, s % 4));
  }
}
BENCHMARK(BM_DecoupledChannelOfWay);

/// Pure DES scheduling overhead: a handful of actors ping-ponging through
/// the priority queue with one registered (never-firing within the run)
/// periodic hook, i.e. the fig05 engine loop minus the memory system.
void BM_EngineEventLoop(benchmark::State& state) {
  class SpinActor final : public Actor {
   public:
    explicit SpinActor(Cycle stride) : stride_(stride) {}
    Cycle step(Engine&, Cycle now) override { return now + stride_; }
    const char* name() const override { return "spin"; }

   private:
    Cycle stride_;
  };

  Engine engine;
  SpinActor a1(1), a2(2), a3(3), a4(5);
  engine.add_actor(&a1);
  engine.add_actor(&a2);
  engine.add_actor(&a3);
  engine.add_actor(&a4);
  engine.add_periodic(kNever / 2, [](Cycle) {});
  Cycle horizon = 0;
  for (auto _ : state) {
    horizon += 2;  // ~4 actor steps per iteration at these strides
    benchmark::DoNotOptimize(engine.run(horizon));
  }
  state.SetItemsProcessed(static_cast<i64>(engine.steps_executed()));
}
BENCHMARK(BM_EngineEventLoop);

/// Remap-table tag scan: arg 0 = always hit (resident tag), 1 = always miss,
/// 2 = chained-style probe (hit after scanning a full set whose match sits in
/// the last way).
void BM_RemapLookup(benchmark::State& state) {
  constexpr u32 kSets = 4096, kAssoc = 4;
  RemapTable table(kSets, kAssoc);
  for (u32 set = 0; set < kSets; ++set) {
    for (u32 w = 0; w < kAssoc; ++w) {
      auto rw = table.way(set, w);
      rw.valid = true;
      rw.tag = static_cast<u64>(set) * kAssoc + w;
    }
  }
  const int mode = static_cast<int>(state.range(0));
  u32 i = 0;
  for (auto _ : state) {
    const u32 set = i++ & (kSets - 1);
    u64 tag = 0;
    switch (mode) {
      case 0: tag = static_cast<u64>(set) * kAssoc + (i & (kAssoc - 1)); break;
      case 1: tag = kInvalidTag - 1; break;
      default: tag = static_cast<u64>(set) * kAssoc + (kAssoc - 1); break;
    }
    benchmark::DoNotOptimize(table.find(set, tag));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RemapLookup)->Arg(0)->Arg(1)->Arg(2)->ArgName("mode");

/// The per-access policy decision bundle exactly as HybridMemory's hit/miss
/// paths consume it, through the virtual PartitionPolicy interface.
void BM_PolicyDispatch(benchmark::State& state) {
  HydrogenPolicy hydrogen;
  PartitionPolicy* policy = &hydrogen;
  policy->bind(/*num_channels=*/8, /*assoc=*/4, /*num_sets=*/4096);
  u64 i = 0;
  u64 sum = 0;
  for (auto _ : state) {
    const u32 set = static_cast<u32>(i) & 4095u;
    const u32 way = static_cast<u32>(i) & 3u;
    const Requestor cls = (i & 4) ? Requestor::Gpu : Requestor::Cpu;
    sum += static_cast<u64>(policy->channel_of_way(set, way)) +
           (policy->way_allowed(set, way, cls) ? 1u : 0u) +
           static_cast<u64>(policy->way_owner(set, way));
    ++i;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyDispatch);

void BM_HybridAccess(benchmark::State& state) {
  MemorySystem mem(MemSystemConfig::table1_default());
  const bool hydrogen = state.range(0) != 0;
  BaselinePolicy base_pol;
  HydrogenPolicy hydro_pol;
  HybridMemConfig cfg;
  cfg.fast_capacity_bytes = 4 << 20;
  cfg.slow_capacity_bytes = 32 << 20;
  HybridMemory hm(cfg, &mem,
                  hydrogen ? static_cast<PartitionPolicy*>(&hydro_pol) : &base_pol);
  Rng rng(3);
  Cycle t = 0;
  for (auto _ : state) {
    const Requestor cls = rng.chance(0.5) ? Requestor::Cpu : Requestor::Gpu;
    benchmark::DoNotOptimize(
        hm.access(t, cls, rng.next_below(cfg.slow_capacity_bytes / 64) * 64,
                  rng.chance(0.3)));
    t += 3;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HybridAccess)->Arg(0)->Arg(1)->ArgName("hydrogen");

}  // namespace
}  // namespace h2
