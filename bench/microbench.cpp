// google-benchmark microbenchmarks of the simulator substrates themselves:
// how fast the building blocks run on the host. Useful when extending the
// simulator — the event loop must stay cheap for the figure benches to
// remain interactive.
#include <benchmark/benchmark.h>

#include "cache/cache.h"
#include "hybridmem/hybrid_memory.h"
#include "hydrogen/consistent_hash.h"
#include "hydrogen/hydrogen_policy.h"
#include "mem/channel.h"
#include "policies/baseline.h"
#include "trace/workloads.h"

namespace h2 {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_SyntheticGenerator(benchmark::State& state) {
  SyntheticGenerator gen(cpu_workload_spec("mcf"), 42);
  for (auto _ : state) benchmark::DoNotOptimize(gen.next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyntheticGenerator);

void BM_ChannelRequest(benchmark::State& state) {
  Channel ch(ddr4_3200_timing(), 3.2, 0);
  Cycle t = 0;
  Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.request(t, a, 64, false));
    t += 4;
    a += 4096;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelRequest);

void BM_CacheAccess(benchmark::State& state) {
  Cache cache(CacheConfig{.name = "bm", .size_bytes = 1 << 20, .ways = 16});
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.next_below(1 << 24) * 64, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_HrwRank(benchmark::State& state) {
  u32 set = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hrw_rank(0x5eed, set++, set % 4, 4));
  }
}
BENCHMARK(BM_HrwRank);

void BM_DecoupledChannelOfWay(benchmark::State& state) {
  DecoupledPartition p(4, 4);
  p.set_config(3, 1);
  u32 set = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.channel_of_way(set++, set % 4));
  }
}
BENCHMARK(BM_DecoupledChannelOfWay);

void BM_HybridAccess(benchmark::State& state) {
  MemorySystem mem(MemSystemConfig::table1_default());
  const bool hydrogen = state.range(0) != 0;
  BaselinePolicy base_pol;
  HydrogenPolicy hydro_pol;
  HybridMemConfig cfg;
  cfg.fast_capacity_bytes = 4 << 20;
  cfg.slow_capacity_bytes = 32 << 20;
  HybridMemory hm(cfg, &mem,
                  hydrogen ? static_cast<PartitionPolicy*>(&hydro_pol) : &base_pol);
  Rng rng(3);
  Cycle t = 0;
  for (auto _ : state) {
    const Requestor cls = rng.chance(0.5) ? Requestor::Cpu : Requestor::Gpu;
    benchmark::DoNotOptimize(
        hm.access(t, cls, rng.next_below(cfg.slow_capacity_bytes / 64) * 64,
                  rng.chance(0.3)));
    t += 3;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HybridAccess)->Arg(0)->Arg(1)->ArgName("hydrogen");

}  // namespace
}  // namespace h2
