// Fig. 10:
//  (a) impact of the user-specified CPU:GPU IPC weights (C6): higher CPU
//      weight trades GPU slowdown for CPU slowdown;
//  (b) impact of the CPU core count (with weights following the core ratio).
#include <iostream>

#include "bench_common.h"

using namespace h2;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);

  // ---- (a) IPC weights -----------------------------------------------
  // The paper sweeps C6. At this simulation scale C6's GPU kernel sits at
  // its intrinsic hit ceiling and offers the search little to trade, so the
  // bench additionally sweeps C5 (streamcluster), where the token dimension
  // trades CPU vs GPU throughput directly.
  double first_cpu = 0, last_cpu = 0, first_gpu = 0, last_gpu = 0;
  const std::vector<std::pair<double, std::string>> weights = {
      {1, "1:1"}, {4, "4:1"}, {12, "12:1"}, {32, "32:1"}};
  for (const std::string combo : {"C6", "C5"}) {
    TablePrinter ta("Fig. 10(a): CPU:GPU IPC weight sweep (" + combo + ", Hydrogen full)",
                    {"weights", "CPU slowdown vs alone", "GPU slowdown vs alone",
                     "chosen (cap,bw,tok)"});
    ExperimentConfig solo_c = bench::bench_config(combo, DesignSpec::baseline(), args);
    solo_c.cpu_only = true;
    ExperimentConfig solo_g = bench::bench_config(combo, DesignSpec::baseline(), args);
    solo_g.gpu_only = true;
    std::vector<ExperimentConfig> cfgs = {solo_c, solo_g};
    for (const auto& [w, label] : weights) {
      ExperimentConfig cfg = bench::bench_config(combo, DesignSpec::hydrogen_full(), args);
      cfg.weight_cpu = w;
      cfg.weight_gpu = 1.0;
      cfgs.push_back(std::move(cfg));
    }
    const auto results = bench::run_sweep(cfgs, args);
    const auto& rc = results[0];
    const auto& rg = results[1];

    for (size_t wi = 0; wi < weights.size(); ++wi) {
      const auto& [w, label] = weights[wi];
      const auto& r = results[2 + wi];
      const double sc = side_slowdown(rc, r, Requestor::Cpu);
      const double sg = side_slowdown(rg, r, Requestor::Gpu);
      if (combo == "C6") {
        if (first_cpu == 0) {
          first_cpu = sc;
          first_gpu = sg;
        }
        last_cpu = sc;
        last_gpu = sg;
      }
      ta.row({label, fmt(sc) + "x", fmt(sg) + "x",
              "(" + std::to_string(r.final_point.cap) + "," +
                  std::to_string(r.final_point.bw) + "," +
                  std::to_string(r.final_point.tok) + ")"});
    }
    ta.print(std::cout);
    if (combo == "C6") bench::maybe_csv(ta, args);
  }
  std::cout << "\nSummary (paper: CPU slowdown 1.61x -> 1.30x, GPU 1.06x -> 1.18x"
               " from 1:1 to 32:1):\n";
  print_check(std::cout, "CPU slowdown shrinks (1:1 / 32:1)", 1.61 / 1.30,
              first_cpu / last_cpu);
  print_check(std::cout, "GPU slowdown grows (32:1 / 1:1)", 1.18 / 1.06,
              last_gpu / first_gpu);

  // ---- (b) CPU core counts ------------------------------------------------
  TablePrinter tb("Fig. 10(b): CPU core count sweep (C1, weights = core ratio)",
                  {"CPU cores", "hydrogen speedup vs baseline"});
  const std::vector<u32> core_counts = {4, 8, 16};
  std::vector<ExperimentConfig> core_cfgs;
  for (u32 cores : core_counts) {
    ExperimentConfig bcfg = bench::bench_config("C1", DesignSpec::baseline(), args);
    bcfg.sys.cpu_cores = cores;
    bcfg.weight_cpu = 96.0 / cores;  // weights follow the core-count ratio
    ExperimentConfig hcfg = bench::bench_config("C1", DesignSpec::hydrogen_full(), args);
    hcfg.sys.cpu_cores = cores;
    hcfg.weight_cpu = 96.0 / cores;
    core_cfgs.push_back(std::move(bcfg));
    core_cfgs.push_back(std::move(hcfg));
  }
  const auto core_results = bench::run_sweep(core_cfgs, args);
  for (size_t i = 0; i < core_counts.size(); ++i) {
    tb.row({std::to_string(core_counts[i]),
            fmt(weighted_speedup(core_results[2 * i], core_results[2 * i + 1],
                                 96.0 / core_counts[i], 1.0))});
  }
  tb.print(std::cout);
  std::cout << "  expected shape: partitioning keeps helping across core counts;"
               " more CPU cores\n  raise contention but also dilute the GPU's"
               " impact (paper Section VI-C).\n";
  return 0;
}
