# Kill-and-resume crash-safety driver (ctest -P script).
#
# Proves the sweep journal's headline guarantee end to end: a figure sweep
# that is killed mid-flight and finished with --resume produces a CSV that is
# byte-identical to an uninterrupted run's. Usage:
#   cmake -DBENCH=<binary> -DREF=<reference.csv> -DOUT=<interrupted.csv>
#         [-DKILL_AFTER=<seconds>] -P resume_compare.cmake
file(REMOVE "${REF}" "${REF}.journal" "${OUT}" "${OUT}.journal")
if(NOT KILL_AFTER)
  set(KILL_AFTER 2)
endif()

# 1. The uninterrupted reference sweep.
execute_process(
  COMMAND ${BENCH} --quick --jobs 4 --csv ${REF}
  RESULT_VARIABLE ref_rc
  OUTPUT_QUIET)
if(NOT ref_rc EQUAL 0)
  message(FATAL_ERROR "reference run failed with exit code ${ref_rc}")
endif()

# 2. The same sweep, killed mid-flight (TIMEOUT terminates the process). On a
# fast machine the sweep may finish before the axe falls — then resume below
# simply restores every slot, which must still reproduce the same bytes.
execute_process(
  COMMAND ${BENCH} --quick --jobs 4 --csv ${OUT}
  TIMEOUT ${KILL_AFTER}
  RESULT_VARIABLE kill_rc
  OUTPUT_QUIET ERROR_QUIET)
message(STATUS "interrupted run ended with: ${kill_rc}")

# 3. Finish (or replay) the sweep from the journal.
execute_process(
  COMMAND ${BENCH} --quick --jobs 4 --csv ${OUT} --resume
  RESULT_VARIABLE resume_rc
  OUTPUT_QUIET)
if(NOT resume_rc EQUAL 0)
  message(FATAL_ERROR "--resume run failed with exit code ${resume_rc}")
endif()

# 4. Byte-identical or bust: the journal serialises doubles as hex-floats, so
# restored slots reproduce a fresh run's CSV exactly.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${REF} ${OUT}
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  execute_process(COMMAND diff -u ${REF} ${OUT})
  message(FATAL_ERROR
    "resumed sweep CSV differs from the uninterrupted reference - the journal"
    " did not round-trip results bit-exactly")
endif()
