# Smoke test for the perf baseline harness: run the --tiny slice, then push
# the emitted BENCH file through h2perf --print and a self-compare (a report
# diffed against itself must be all-noise with identical counters).
#
# Variables: PERFBENCH, H2PERF, OUT.

execute_process(COMMAND ${PERFBENCH} --tiny --jobs 2 --out ${OUT}
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "perfbench --tiny failed (exit ${rc})")
endif()

execute_process(COMMAND ${H2PERF} --print ${OUT} RESULT_VARIABLE rc
                OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "h2perf --print rejected the fresh BENCH file (exit ${rc})")
endif()

execute_process(COMMAND ${H2PERF} --compare ${OUT} ${OUT} RESULT_VARIABLE rc
                OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "h2perf self-compare flagged a diff (exit ${rc})")
endif()
