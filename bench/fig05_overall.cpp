// Fig. 5: the headline comparison. Weighted speedups (CPU:GPU = 12:1) of
// HAShCache, ProFess, WayPart and the Hydrogen variants (DP, DP+Token, Full)
// over the non-partitioned baseline, for C1..C12.
//   (a) HBM2E + DDR4   (default)
//   (b) HBM3 + DDR4    (--hbm3)
// --integrated appends the coherent-NUMA migration design as an extra column.
#include <iostream>
#include <map>

#include "bench_common.h"

using namespace h2;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto combos = bench::combo_names(args, /*subset_default=*/false);
  const auto designs = bench::fig5_designs(args.integrated);

  std::vector<std::string> cols = {"combo"};
  for (const auto& d : designs) cols.push_back(d.label);
  TablePrinter table(std::string("Fig. 5") + (args.hbm3 ? "(b): HBM3" : "(a): HBM2E") +
                         " weighted speedups over the non-partitioned baseline",
                     cols);

  // One sweep over every (combo, design) cell plus the per-combo baseline,
  // fanned out across --jobs workers; results come back in submission order.
  std::vector<ExperimentConfig> cfgs;
  for (const auto& combo : combos) {
    cfgs.push_back(bench::bench_config(combo, DesignSpec::baseline(), args));
    for (const auto& d : designs) cfgs.push_back(bench::bench_config(combo, d, args));
  }
  const auto results = bench::run_sweep(cfgs, args);

  std::map<std::string, std::vector<double>> speedups;
  std::map<std::string, ExperimentResult> hydro_results;
  std::vector<double> vs_profess;

  size_t k = 0;
  for (const auto& combo : combos) {
    // Degrade gracefully: a failed cell (or a failed per-combo baseline,
    // which all of the combo's speedups divide by) renders as "failed" and
    // drops out of the geomeans instead of aborting the whole figure.
    const size_t base_idx = k++;
    const bool base_ok = results.ok(base_idx);
    std::vector<std::string> row = {combo};
    double profess_su = 0.0, hydrogen_su = 0.0;
    for (const auto& d : designs) {
      const size_t idx = k++;
      if (!base_ok || !results.ok(idx)) {
        row.push_back("failed");
        continue;
      }
      const auto& r = results[idx];
      const double su = weighted_speedup(results[base_idx], r);
      speedups[d.label].push_back(su);
      row.push_back(fmt(su));
      if (d.label == "profess") profess_su = su;
      if (d.label == "hydrogen") {
        hydrogen_su = su;
        hydro_results[combo] = r;
      }
    }
    if (profess_su > 0 && hydrogen_su > 0) vs_profess.push_back(hydrogen_su / profess_su);
    table.row(std::move(row));
  }

  std::vector<std::string> gm_row = {"geomean"};
  for (const auto& d : designs) gm_row.push_back(fmt(geomean(speedups[d.label])));
  table.row(std::move(gm_row));
  table.print(std::cout);
  bench::maybe_csv(table, args);

  const double hydro_gm = geomean(speedups["hydrogen"]);
  const double dp_gm = geomean(speedups["hydrogen-dp"]);
  const double dpt_gm = geomean(speedups["hydrogen-dp+token"]);
  double hydro_max = 0, vs_profess_max = 0;
  for (double s : speedups["hydrogen"]) hydro_max = std::max(hydro_max, s);
  for (double s : vs_profess) vs_profess_max = std::max(vs_profess_max, s);

  std::cout << "\nSummary (paper Section VI-A / VI-B):\n";
  if (!args.hbm3) {
    print_check(std::cout, "Hydrogen vs baseline (avg)", 1.24, hydro_gm);
    print_check(std::cout, "Hydrogen vs baseline (max)", 1.48, hydro_max);
    print_check(std::cout, "Hydrogen vs ProFess (avg)", 1.16, geomean(vs_profess));
    print_check(std::cout, "Hydrogen vs ProFess (max)", 1.31, vs_profess_max);
    print_check(std::cout, "Hydrogen vs HAShCache (avg)", 1.47,
                hydro_gm / geomean(speedups["hashcache"]));
    print_check(std::cout, "DP-only contribution (avg)", 1.10, dp_gm);
    print_check(std::cout, "+Token over DP", 1.044, dpt_gm / dp_gm);
    print_check(std::cout, "+search over DP+Token", 1.086, hydro_gm / dpt_gm);
  } else {
    print_check(std::cout, "Hydrogen vs ProFess with HBM3 (avg)", 1.12,
                geomean(vs_profess));
    std::cout << "  expected shape: gains shrink vs HBM2E (bandwidth partitioning"
                 " matters less when fast bandwidth doubles).\n";
  }
  return 0;
}
