// Fig. 2: the motivation study.
//  (a) per-side slowdown when CPU and GPU run together vs. alone, on the
//      non-partitioned baseline, for C1..C12;
//  (b) GPU/CPU sensitivity to fast-memory bandwidth (channel count),
//  (c) to fast-memory capacity, and
//  (d) to slow-memory bandwidth — all on C1, each side run alone so the
//      sensitivity is intrinsic, as in the paper.
#include <iostream>

#include "bench_common.h"

using namespace h2;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);

  // ---- (a) slowdown of running together --------------------------------
  TablePrinter ta("Fig. 2(a): slowdown running together vs alone (baseline, no partitioning)",
                  {"combo", "CPU slowdown", "GPU slowdown"});
  std::vector<double> cpu_slow, gpu_slow;
  const auto combos = bench::combo_names(args, /*subset_default=*/false);
  std::vector<ExperimentConfig> cfgs;
  for (const auto& combo : combos) {
    ExperimentConfig together = bench::bench_config(combo, DesignSpec::baseline(), args);
    ExperimentConfig cpu_solo = together;
    cpu_solo.cpu_only = true;
    ExperimentConfig gpu_solo = together;
    gpu_solo.gpu_only = true;
    cfgs.push_back(together);
    cfgs.push_back(cpu_solo);
    cfgs.push_back(gpu_solo);
  }
  const auto results = bench::run_sweep(cfgs, args);
  size_t k = 0;
  for (const auto& combo : combos) {
    const auto& rt = results[k++];
    const auto& rc = results[k++];
    const auto& rg = results[k++];
    const double sc = side_slowdown(rc, rt, Requestor::Cpu);
    const double sg = side_slowdown(rg, rt, Requestor::Gpu);
    cpu_slow.push_back(sc);
    gpu_slow.push_back(sg);
    ta.row({combo, fmt(sc) + "x", fmt(sg) + "x"});
  }
  ta.row({"geomean", fmt(geomean(cpu_slow)) + "x", fmt(geomean(gpu_slow)) + "x"});
  ta.print(std::cout);
  print_check(std::cout, "C1 CPU slowdown", 1.94, cpu_slow[0]);
  print_check(std::cout, "C1 GPU slowdown", 1.33, gpu_slow[0]);
  std::cout << "  expected shape: CPU workloads degrade more than GPU workloads.\n";
  bench::maybe_csv(ta, args);

  // ---- (b)(c)(d) sensitivity sweeps on C1 -------------------------------
  // As in the paper, the resources are varied on the *shared* system (both
  // sides running) and each side's performance (1/cycles-to-target) is
  // normalised to the full-resource run.
  auto sweep = [&](const char* title, auto&& configure,
                   const std::vector<std::pair<std::string, double>>& points) {
    TablePrinter t(title, {"setting", "CPU perf (norm.)", "GPU perf (norm.)"});
    std::vector<ExperimentConfig> sweep_cfgs;
    for (const auto& point : points) {
      ExperimentConfig cfg = bench::bench_config("C1", DesignSpec::baseline(), args);
      configure(cfg, point.second);
      sweep_cfgs.push_back(std::move(cfg));
    }
    const auto sweep_results = bench::run_sweep(sweep_cfgs, args);
    double cpu_base = 0, gpu_base = 0;
    for (size_t i = 0; i < points.size(); ++i) {
      const auto& r = sweep_results[i];
      const double c = static_cast<double>(r.cpu_cycles);
      const double g = static_cast<double>(r.gpu_cycles);
      if (i == 0) {
        cpu_base = c;
        gpu_base = g;
      }
      t.row({points[i].first, fmt(cpu_base / c), fmt(gpu_base / g)});
    }
    t.print(std::cout);
  };

  sweep("Fig. 2(b): fast memory bandwidth sensitivity (C1, shared system)",
        [](ExperimentConfig& cfg, double v) {
          cfg.fast_channels = static_cast<u32>(v);
        },
        {{"16 channels", 16}, {"12 channels", 12}, {"8 channels", 8}, {"4 channels", 4}});
  std::cout << "  expected shape: GPU loses up to ~30%; CPU barely moves (Insight 1).\n";

  sweep("Fig. 2(c): fast memory capacity sensitivity (C1, shared system)",
        [](ExperimentConfig& cfg, double v) { cfg.fast_capacity_frac = 0.125 * v; },
        {{"1x (fast = slow/8)", 1.0}, {"1/2", 0.5}, {"1/4", 0.25}, {"1/8", 0.125}});
  std::cout << "  expected shape: CPU degrades sharply; GPU keeps ~90%+ (Insight 2).\n";

  sweep("Fig. 2(d): slow memory bandwidth sensitivity (C1, shared system)",
        [](ExperimentConfig& cfg, double v) {
          cfg.slow_channels = static_cast<u32>(v);
        },
        {{"4 channels", 4}, {"3 channels", 3}, {"2 channels", 2}, {"1 channel", 1}});
  std::cout << "  expected shape: both sides slow notably; GPU slightly more (Insight 3).\n";
  return 0;
}
