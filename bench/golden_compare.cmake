# Golden-file regression driver (ctest -P script).
#
# Runs a bench binary with --csv into a scratch file and byte-compares it to
# the checked-in golden. Usage:
#   cmake -DBENCH=<binary> -DOUT=<scratch.csv> -DGOLDEN=<golden.csv>
#         [-DEXTRA_ARGS=<args;list>] -P golden_compare.cmake
#
# EXTRA_ARGS is a semicolon-separated list appended to the fixed quick
# invocation — e.g. "--backend;ddr" selects the DDR channel backend against
# its own golden (tests/golden/fig05_quick_ddr.csv).
#
# To update a golden after an intentional model change (see TESTING.md):
#   ./bench/fig05_overall --quick --jobs 2 --csv tests/golden/fig05_quick.csv
#   ./bench/fig05_overall --quick --jobs 2 --backend ddr \
#       --csv tests/golden/fig05_quick_ddr.csv
if(NOT DEFINED EXTRA_ARGS)
  set(EXTRA_ARGS "")
endif()
execute_process(
  COMMAND ${BENCH} --quick --jobs 2 ${EXTRA_ARGS} --csv ${OUT}
  RESULT_VARIABLE run_rc
  OUTPUT_QUIET)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "bench run failed with exit code ${run_rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  execute_process(COMMAND diff -u ${GOLDEN} ${OUT})
  message(FATAL_ERROR
    "bench CSV differs from golden ${GOLDEN}.\n"
    "If the model change is intentional, regenerate with:\n"
    "  <build>/bench/fig05_overall --quick --jobs 2 [${EXTRA_ARGS}] --csv ${GOLDEN}\n"
    "and commit the diff alongside an explanation of why the numbers moved.")
endif()
