// Fig. 9: sensitivity of the full Hydrogen design to
//  (a) the exploration-phase length, and
//  (b) the sampling-epoch length.
// Geomeans of weighted speedups over the combo set. Paper values are 10M
// cycle epochs / 500M cycle phases on 5B-instruction runs; the bench uses
// proportionally scaled values for its scaled runs.
#include <iostream>

#include "bench_common.h"

using namespace h2;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto combos = bench::combo_names(args, /*subset_default=*/true);

  auto run_with = [&](Cycle epoch, Cycle phase) {
    std::vector<ExperimentConfig> cfgs;
    for (const auto& combo : combos) {
      cfgs.push_back(bench::bench_config(combo, DesignSpec::baseline(), args));
      ExperimentConfig cfg = bench::bench_config(combo, DesignSpec::hydrogen_full(), args);
      cfg.epoch_cycles = epoch;
      cfg.phase_cycles = phase;
      cfgs.push_back(std::move(cfg));
    }
    const auto results = bench::run_sweep(cfgs, args);
    std::vector<double> su;
    for (size_t i = 0; i < combos.size(); ++i) {
      su.push_back(weighted_speedup(results[2 * i], results[2 * i + 1]));
    }
    return geomean(su);
  };

  // ---- (b) epoch length --------------------------------------------------
  TablePrinter tb("Fig. 9(b): sampling epoch length (phase restarts off)",
                  {"epoch (cycles)", "paper-equivalent", "geomean speedup"});
  const std::vector<std::pair<Cycle, std::string>> epochs = {
      {12'500, "1.25M"}, {50'000, "5M"}, {100'000, "10M (default)"}, {400'000, "40M"}};
  double default_su = 0;
  for (const auto& [epoch, label] : epochs) {
    const double gm = run_with(epoch, 0);
    if (epoch == 100'000) default_su = gm;
    tb.row({std::to_string(epoch), label, fmt(gm)});
  }
  tb.print(std::cout);
  std::cout << "  expected shape: too-short epochs pay reconfiguration overheads"
               " (>5% loss in the paper);\n  too-long epochs adapt too slowly."
               " The default sits at/near the top.\n";

  // ---- (a) phase length ----------------------------------------------------
  TablePrinter ta("Fig. 9(a): exploration phase length",
                  {"phase (cycles)", "paper-equivalent", "geomean speedup"});
  const std::vector<std::pair<Cycle, std::string>> phases = {
      {400'000, "40M"}, {1'200'000, "120M"}, {5'000'000, "500M (default)"}, {0, "off"}};
  for (const auto& [phase, label] : phases) {
    ta.row({phase == 0 ? "off" : std::to_string(phase), label, fmt(run_with(100'000, phase))});
  }
  ta.print(std::cout);
  bench::maybe_csv(ta, args);
  std::cout << "  expected shape: these workloads have stable behaviour, so short"
               " phases only add\n  reconfiguration churn (paper Section VI-C);"
               " long/off phases are equivalent.\n";
  std::cout << "\n  default-epoch geomean speedup: " << fmt(default_su) << "\n";
  return 0;
}
