// Table I: the simulated system configuration. Prints the built system and
// asserts that the constructed models match the paper's parameters.
#include <iostream>

#include "bench_common.h"
#include "common/assert.h"
#include "mem/memory_system.h"
#include "sysconfig/system_config.h"

using namespace h2;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  (void)args;

  std::cout << "==============================================================\n";
  std::cout << " Table I: system configurations (paper parameters + scaling)\n";
  std::cout << "==============================================================\n\n";

  std::cout << "Native Table I parameters:\n";
  SystemConfig native = SystemConfig::table1(/*scale=*/1);
  native.hybrid.fast_capacity_bytes = 2ull << 30;   // illustrative 1/8 of 16 GB
  native.hybrid.slow_capacity_bytes = 16ull << 30;
  native.print(std::cout);

  std::cout << "\nBench configuration (footprint scale 1/8, SRAM scale 1/64):\n";
  SystemConfig bench_sys = SystemConfig::table1(/*scale=*/8);
  bench_sys.hybrid.fast_capacity_bytes = 8ull << 20;
  bench_sys.hybrid.slow_capacity_bytes = 64ull << 20;
  bench_sys.print(std::cout);

  // ---- cross-check the derived models against the paper's numbers --------
  MemorySystem mem(MemSystemConfig::table1_default());
  const double fast = mem.fast_peak_gbps();
  const double slow = mem.slow_peak_gbps();
  std::cout << "\nDerived bandwidths:\n";
  std::cout << "  fast tier (16ch HBM2E): " << fmt(fast, 1) << " GB/s\n";
  std::cout << "  slow tier (4ch DDR4)  : " << fmt(slow, 1) << " GB/s\n";
  print_check(std::cout, "fast:slow bandwidth ratio", 8.0, fast / slow);
  H2_ASSERT(fast / slow > 7.5 && fast / slow < 8.5, "bandwidth ratio drifted");

  MemorySystem hbm3(MemSystemConfig::table1_hbm3());
  print_check(std::cout, "HBM3 / HBM2E bandwidth", 2.0, hbm3.fast_peak_gbps() / fast);

  std::cout << "\nHybrid-memory defaults: 256 B blocks, 4-way cache mode, "
               "fast = slow/8, 256 kB remap cache (scaled), alloc-bit overhead "
            << fmt_pct(1.0 / (8.0 * 256.0), 3) << " (paper: 0.049%)\n";
  return 0;
}
