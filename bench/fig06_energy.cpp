// Fig. 6: memory energy (dynamic + static, both tiers) of HAShCache, ProFess
// and Hydrogen, normalised to HAShCache, for C1..C12. Energy follows the
// Table I device parameters (RD/WR pJ/bit, ACT/PRE nJ, background power).
// --integrated appends the coherent-NUMA migration design as an extra column.
#include <iostream>

#include "bench_common.h"

using namespace h2;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto combos = bench::combo_names(args, /*subset_default=*/false);

  std::vector<std::string> cols = {"combo", "hashcache", "profess", "hydrogen"};
  if (args.integrated) cols.push_back("integrated");
  TablePrinter table("Fig. 6: memory energy normalised to HAShCache",
                     std::move(cols));
  std::vector<double> profess_norm, hydrogen_norm, integrated_norm;

  // Energy must be compared over the same amount of work: all runs retire
  // the same instruction targets, so total energy per run is comparable.
  std::vector<ExperimentConfig> cfgs;
  for (const auto& combo : combos) {
    cfgs.push_back(bench::bench_config(combo, DesignSpec::hashcache(), args));
    cfgs.push_back(bench::bench_config(combo, DesignSpec::profess(), args));
    cfgs.push_back(bench::bench_config(combo, DesignSpec::hydrogen_full(), args));
    if (args.integrated) {
      cfgs.push_back(bench::bench_config(combo, DesignSpec::integrated(), args));
    }
  }
  const auto results = bench::run_sweep(cfgs, args);

  size_t k = 0;
  for (const auto& combo : combos) {
    const auto& rh = results[k++];
    const auto& rp = results[k++];
    const auto& ry = results[k++];
    const double p = rp.energy_pj / rh.energy_pj;
    const double y = ry.energy_pj / rh.energy_pj;
    profess_norm.push_back(p);
    hydrogen_norm.push_back(y);
    std::vector<std::string> row = {combo, "1.00", fmt(p), fmt(y)};
    if (args.integrated) {
      const auto& ri = results[k++];
      const double n = ri.energy_pj / rh.energy_pj;
      integrated_norm.push_back(n);
      row.push_back(fmt(n));
    }
    table.row(std::move(row));
  }
  std::vector<std::string> gm_row = {"geomean", "1.00", fmt(geomean(profess_norm)),
                                     fmt(geomean(hydrogen_norm))};
  if (args.integrated) gm_row.push_back(fmt(geomean(integrated_norm)));
  table.row(std::move(gm_row));
  table.print(std::cout);
  bench::maybe_csv(table, args);

  double best = 1.0;
  for (double y : hydrogen_norm) best = std::min(best, y);
  std::cout << "\nSummary:\n";
  print_check(std::cout, "Hydrogen energy vs HAShCache (avg reduction)", 0.69,
              geomean(hydrogen_norm));
  print_check(std::cout, "best-case reduction (paper: C11, -50%)", 0.50, best);
  return 0;
}
