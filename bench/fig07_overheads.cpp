// Fig. 7: overhead analysis (geomeans over the combo set).
//  (a) fast-memory swap methods: Ideal (free swaps), Hydrogen (default),
//      Prob (bypass half), NoSwap;
//  (b) reconfiguration: Hydrogen's consistent-hashing + lazy updates vs an
//      ideal instant (free) reconfiguration.
#include <iostream>

#include "bench_common.h"

using namespace h2;

namespace {

DesignSpec with_swap(SwapMode mode, bool ideal_cost = false) {
  DesignSpec d = DesignSpec::hydrogen_full();
  d.hydrogen.swap = mode;
  d.ideal_swap = ideal_cost;
  switch (mode) {
    case SwapMode::On: d.label = ideal_cost ? "ideal" : "hydrogen"; break;
    case SwapMode::Prob: d.label = "prob"; break;
    case SwapMode::Off: d.label = "noswap"; break;
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto combos = bench::combo_names(args, /*subset_default=*/true);

  // ---- (a) swap methods -------------------------------------------------
  const std::vector<DesignSpec> swap_designs = {
      with_swap(SwapMode::On, /*ideal_cost=*/true),  // Ideal: zero-cost swaps
      with_swap(SwapMode::On),                       // Hydrogen default
      with_swap(SwapMode::Prob),                     // bypass half the swaps
      with_swap(SwapMode::Off),                      // no swaps at all
  };

  TablePrinter ta("Fig. 7(a): fast-memory swap methods (weighted speedup vs baseline)",
                  {"combo", "ideal", "hydrogen", "prob", "noswap"});
  std::map<std::string, std::vector<double>> su;
  std::vector<ExperimentConfig> swap_cfgs;
  for (const auto& combo : combos) {
    swap_cfgs.push_back(bench::bench_config(combo, DesignSpec::baseline(), args));
    for (const auto& d : swap_designs) {
      swap_cfgs.push_back(bench::bench_config(combo, d, args));
    }
  }
  const auto swap_results = bench::run_sweep(swap_cfgs, args);
  size_t k = 0;
  for (const auto& combo : combos) {
    const auto& base = swap_results[k++];
    std::vector<std::string> row = {combo};
    for (const auto& d : swap_designs) {
      const auto& r = swap_results[k++];
      const double s = weighted_speedup(base, r);
      su[d.label].push_back(s);
      row.push_back(fmt(s));
    }
    ta.row(std::move(row));
  }
  ta.row({"geomean", fmt(geomean(su["ideal"])), fmt(geomean(su["hydrogen"])),
          fmt(geomean(su["prob"])), fmt(geomean(su["noswap"]))});
  ta.print(std::cout);
  bench::maybe_csv(ta, args);

  const double hyd = geomean(su["hydrogen"]);
  std::cout << "\nSummary (paper Section VI-B):\n";
  print_check(std::cout, "Ideal over Hydrogen", 1.045, geomean(su["ideal"]) / hyd);
  print_check(std::cout, "Prob vs Hydrogen", 0.988, geomean(su["prob"]) / hyd);
  print_check(std::cout, "NoSwap vs Hydrogen", 0.96, geomean(su["noswap"]) / hyd);

  // ---- (b) reconfiguration overheads -------------------------------------
  TablePrinter tb("Fig. 7(b): reconfiguration overhead (weighted speedup vs baseline)",
                  {"combo", "hydrogen (lazy)", "ideal reconfig"});
  std::vector<double> lazy_su, ideal_su;
  std::vector<ExperimentConfig> reconf_cfgs;
  for (const auto& combo : combos) {
    reconf_cfgs.push_back(bench::bench_config(combo, DesignSpec::baseline(), args));
    // Force frequent exploration so reconfiguration costs are visible.
    ExperimentConfig lazy_cfg = bench::bench_config(combo, DesignSpec::hydrogen_full(), args);
    lazy_cfg.phase_cycles = 800'000;
    ExperimentConfig ideal_cfg = lazy_cfg;
    ideal_cfg.design.instant_reconfig = true;
    ideal_cfg.design.label = "hydrogen-instant";
    reconf_cfgs.push_back(std::move(lazy_cfg));
    reconf_cfgs.push_back(std::move(ideal_cfg));
  }
  const auto reconf_results = bench::run_sweep(reconf_cfgs, args);
  k = 0;
  for (const auto& combo : combos) {
    const auto& base = reconf_results[k++];
    const auto& rl = reconf_results[k++];
    const auto& ri = reconf_results[k++];
    lazy_su.push_back(weighted_speedup(base, rl));
    ideal_su.push_back(weighted_speedup(base, ri));
    tb.row({combo, fmt(lazy_su.back()), fmt(ideal_su.back())});
  }
  tb.row({"geomean", fmt(geomean(lazy_su)), fmt(geomean(ideal_su))});
  tb.print(std::cout);

  std::cout << "\nSummary:\n";
  print_check(std::cout, "lazy reconfig vs ideal (paper: -3.2%)", 0.968,
              geomean(lazy_su) / geomean(ideal_su));
  return 0;
}
