// The perf baseline harness: runs fixed-iteration microbenchmarks of the
// simulator substrates plus the fixed fig05 --quick slice (the paper's main
// figure, quick subset) through the parallel sweep runner, and writes one
// machine-readable BENCH_<n>.json (harness/perfbench.h). tools/h2perf diffs
// two such files and flags regressions beyond a noise threshold.
//
// Two kinds of numbers come out:
//   - rates (ops/s, events/s): host-dependent, compared against a noise band;
//   - counters (micro checksums, engine steps, demand accesses): bit-exact
//     functions of code + config, identical at any --jobs — the comparator
//     hard-fails when they drift, which is how "faster" is proven to never
//     silently mean "different".
//
// Usage: perfbench [--out <path>] [--jobs <n>] [--tiny] [--backend fast|ddr]
//                  [--scaling]
//   --out   output BENCH file (default BENCH.json)
//   --jobs  sweep workers (default: H2_JOBS env, then all hardware threads)
//   --tiny  reduced iteration counts and a 1-combo sweep slice (test use)
//   --backend  channel timing model for the fig05 slice (micros are
//           memory-model independent); compare ddr runs against the
//           BENCH_ddr_* baselines, fast runs against BENCH_<n>
//   --scaling  replaces the default slice with the sharded big-node scaling
//           battery (configs/bignode.cfg shape): the monolithic machine,
//           then --shards 4 at 1 and at 4 worker threads. The deterministic
//           cross-check is that both sharded runs report identical summed
//           engine steps and demand accesses (bit-identity at any thread
//           count); wall-clock speedup additionally needs real hardware
//           threads — the report's hardware_threads meta says which case a
//           baseline measured. Compare against the BENCH_2 baseline.

#include <sys/utsname.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cache/cache.h"
#include "check/check.h"
#include "common/rng.h"
#include "harness/experiment.h"
#include "harness/perfbench.h"
#include "harness/sweep.h"
#include "hybridmem/remap_table.h"
#include "hydrogen/consistent_hash.h"
#include "hydrogen/hydrogen_policy.h"
#include "sim/engine.h"
#include "trace/generators.h"

namespace h2 {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs `fn(i)` for `iters` iterations, folding its u64 result into a
/// checksum (which both defeats dead-code elimination and becomes the
/// entry's deterministic counter).
template <typename Fn>
PerfEntry run_micro(const std::string& name, u64 iters, Fn&& fn) {
  u64 checksum = 0;
  const double t0 = now_seconds();
  for (u64 i = 0; i < iters; ++i) checksum += fn(i);
  const double wall = now_seconds() - t0;

  PerfEntry e;
  e.name = name;
  e.kind = "micro";
  e.iters = iters;
  e.wall_seconds = wall;
  e.rate = wall > 0.0 ? static_cast<double>(iters) / wall : 0.0;
  e.events = checksum;
  return e;
}

/// Minimal DES actor: four of these ping-ponging through the queue measure
/// pure engine scheduling overhead (pop, hook scan, push).
class SpinActor final : public Actor {
 public:
  explicit SpinActor(Cycle stride) : stride_(stride) {}
  Cycle step(Engine& engine, Cycle now) override {
    (void)engine;
    return now + stride_;
  }
  const char* name() const override { return "spin"; }

 private:
  Cycle stride_;
};

PerfEntry micro_engine_loop(u64 horizon) {
  Engine engine;
  SpinActor a1(1), a2(2), a3(3), a4(5);
  engine.add_actor(&a1);
  engine.add_actor(&a2);
  engine.add_actor(&a3);
  engine.add_actor(&a4);
  engine.add_periodic(1u << 20, [](Cycle) {});

  const double t0 = now_seconds();
  engine.run(horizon);
  const double wall = now_seconds() - t0;

  PerfEntry e;
  e.name = "micro/engine_loop";
  e.kind = "micro";
  e.iters = engine.steps_executed();
  e.wall_seconds = wall;
  e.rate = wall > 0.0 ? static_cast<double>(e.iters) / wall : 0.0;
  e.events = engine.steps_executed() + engine.now();
  return e;
}

std::vector<PerfEntry> run_micros(bool tiny) {
  // Iteration counts sized for a few hundred ms each on a current x86 core;
  // --tiny divides by 64 for test runs where only determinism matters.
  const u64 div = tiny ? 64 : 1;
  std::vector<PerfEntry> out;

  {
    Rng rng(42);
    out.push_back(run_micro("micro/rng_next", (16u << 20) / div,
                            [&](u64) { return rng.next(); }));
  }
  {
    WorkloadSpec spec;
    spec.name = "perfbench";
    spec.footprint_bytes = 32ull << 20;
    spec.mix = {1.0, 1.0, 2.0, 0.5, 0.5};
    SyntheticGenerator gen(spec, 42);
    out.push_back(run_micro("micro/generator_next", (2u << 20) / div, [&](u64) {
      const Access a = gen.next();
      return a.addr + a.gap + (a.write ? 1u : 0u);
    }));
  }
  {
    CacheConfig cfg;
    cfg.name = "perfbench-l2";
    cfg.size_bytes = 256 * 1024;
    cfg.ways = 8;
    Cache cache(cfg);
    out.push_back(run_micro("micro/cache_access", (4u << 20) / div, [&](u64 i) {
      const Addr addr = (splitmix64(i) % (4ull * cfg.size_bytes)) & ~63ull;
      return cache.access(addr, (i & 7) == 0).hit ? 1u : 0u;
    }));
  }
  {
    RemapTable table(4096, 4);
    for (u32 set = 0; set < table.num_sets(); ++set) {
      for (u32 w = 0; w < table.assoc(); ++w) {
        auto rw = table.way(set, w);
        rw.valid = true;
        rw.tag = static_cast<u64>(set) * 8 + w;  // half the probed tags hit
        rw.channel = static_cast<u8>(w);
      }
    }
    out.push_back(run_micro("micro/remap_find", (8u << 20) / div, [&](u64 i) {
      const u32 set = static_cast<u32>(i) & 4095u;
      const u64 tag = static_cast<u64>(set) * 8 + (i & 7);
      return static_cast<u64>(table.find(set, tag) + 1);
    }));
  }
  {
    out.push_back(run_micro("micro/hrw_rank", (4u << 20) / div, [&](u64 i) {
      return hrw_rank(0x4879647267656eull, static_cast<u32>(i) & 0xFFFFu,
                      static_cast<u32>(i) & 15u, 16);
    }));
  }
  {
    // Per-access policy decisions through the virtual interface, exactly as
    // HybridMemory's victim/fixup paths consume them.
    HydrogenPolicy hydrogen;
    PartitionPolicy* policy = &hydrogen;
    policy->bind(/*num_channels=*/8, /*assoc=*/4, /*num_sets=*/4096);
    out.push_back(run_micro("micro/policy_dispatch", (2u << 20) / div, [&](u64 i) {
      const u32 set = static_cast<u32>(i) & 4095u;
      const u32 way = static_cast<u32>(i) & 3u;
      const Requestor cls = (i & 4) ? Requestor::Gpu : Requestor::Cpu;
      return static_cast<u64>(policy->channel_of_way(set, way)) +
             (policy->way_allowed(set, way, cls) ? 1u : 0u) +
             static_cast<u64>(policy->way_owner(set, way));
    }));
  }
  out.push_back(micro_engine_loop((tiny ? 1u : 16u) << 20));
  return out;
}

PerfEntry run_fig05_slice(u32 jobs, bool tiny, ChannelBackendKind backend) {
  bench::BenchArgs bargs;
  bargs.quick = true;
  bargs.backend = backend;

  std::vector<ExperimentConfig> cfgs;
  const std::vector<std::string> combos =
      tiny ? std::vector<std::string>{"C1"}
           : std::vector<std::string>{"C1", "C5", "C11"};
  for (const std::string& combo : combos) {
    cfgs.push_back(bench::bench_config(combo, DesignSpec::baseline(), bargs));
    if (tiny) {
      cfgs.push_back(bench::bench_config(combo, DesignSpec::hydrogen_full(), bargs));
    } else {
      for (DesignSpec design : bench::fig5_designs()) {
        cfgs.push_back(bench::bench_config(combo, std::move(design), bargs));
      }
    }
  }

  SweepOptions opts;
  opts.jobs = jobs;

  const double t0 = now_seconds();
  const std::vector<SweepRun> runs = run_sweep(cfgs, opts);
  const double wall = now_seconds() - t0;

  u64 events = 0, accesses = 0;
  for (const SweepRun& r : runs) {
    if (!r.ok) {
      std::cerr << "perfbench: sweep run [" << r.combo << " / " << r.design
                << "] failed: " << r.error << "\n";
      std::exit(1);
    }
    events += r.result.engine_steps;
    accesses += r.result.hmstats[0].demand + r.result.hmstats[1].demand;
  }

  PerfEntry e;
  e.name = tiny ? "fig05_tiny" : "fig05_quick";
  e.kind = "sweep";
  e.iters = runs.size();
  e.wall_seconds = wall;
  e.events = events;
  e.accesses = accesses;
  e.rate = wall > 0.0 ? static_cast<double>(events) / wall : 0.0;
  e.accesses_per_sec = wall > 0.0 ? static_cast<double>(accesses) / wall : 0.0;
  return e;
}

/// The integrated-design slice: the same quick combos, baseline vs. the
/// coherent-NUMA migration design. Its counters pin first-touch placement
/// and threshold migration bit-exactly; the comparator treats the entry as
/// benign when the baseline file predates it (only-in-current).
PerfEntry run_fig05_integrated_slice(u32 jobs, bool tiny,
                                     ChannelBackendKind backend) {
  bench::BenchArgs bargs;
  bargs.quick = true;
  bargs.backend = backend;

  std::vector<ExperimentConfig> cfgs;
  const std::vector<std::string> combos =
      tiny ? std::vector<std::string>{"C1"}
           : std::vector<std::string>{"C1", "C5", "C11"};
  for (const std::string& combo : combos) {
    cfgs.push_back(bench::bench_config(combo, DesignSpec::baseline(), bargs));
    cfgs.push_back(bench::bench_config(combo, DesignSpec::integrated(), bargs));
  }

  SweepOptions opts;
  opts.jobs = jobs;

  const double t0 = now_seconds();
  const std::vector<SweepRun> runs = run_sweep(cfgs, opts);
  const double wall = now_seconds() - t0;

  u64 events = 0, accesses = 0;
  for (const SweepRun& r : runs) {
    if (!r.ok) {
      std::cerr << "perfbench: sweep run [" << r.combo << " / " << r.design
                << "] failed: " << r.error << "\n";
      std::exit(1);
    }
    events += r.result.engine_steps;
    accesses += r.result.hmstats[0].demand + r.result.hmstats[1].demand;
  }

  PerfEntry e;
  e.name = tiny ? "fig05_integrated_tiny" : "fig05_integrated";
  e.kind = "sweep";
  e.iters = runs.size();
  e.wall_seconds = wall;
  e.events = events;
  e.accesses = accesses;
  e.rate = wall > 0.0 ? static_cast<double>(events) / wall : 0.0;
  e.accesses_per_sec = wall > 0.0 ? static_cast<double>(accesses) / wall : 0.0;
  return e;
}

/// One big-node run for the scaling battery. The shape mirrors
/// configs/bignode.cfg: a 32-core, 32-fast-channel Table I scale-up — large
/// enough that the event loop dominates and sharding has something to win.
PerfEntry run_scaling_point(const std::string& name, u32 shards,
                            u32 shard_threads, bool tiny,
                            ChannelBackendKind backend) {
  ExperimentConfig cfg;
  cfg.combo = "C1";
  cfg.design = DesignSpec::hydrogen_full();
  cfg.sys = SystemConfig::table1(/*scale=*/8);
  cfg.sys.cpu_cores = 32;
  cfg.fast_channels = 32;
  cfg.slow_channels = 8;
  cfg.cpu_target_instructions = tiny ? 30'000 : 120'000;
  cfg.gpu_target_instructions = tiny ? 300'000 : 1'200'000;
  cfg.epoch_cycles = 40'000;
  cfg.backend = backend;
  cfg.shards = shards;
  cfg.shard_threads = shard_threads;

  const double t0 = now_seconds();
  const ExperimentResult r = run_experiment(cfg);
  const double wall = now_seconds() - t0;

  PerfEntry e;
  e.name = name;
  e.kind = "sweep";
  e.iters = 1;
  e.wall_seconds = wall;
  e.events = r.engine_steps;
  e.accesses = r.hmstats[0].demand + r.hmstats[1].demand;
  e.rate = wall > 0.0 ? static_cast<double>(e.events) / wall : 0.0;
  e.accesses_per_sec =
      wall > 0.0 ? static_cast<double>(e.accesses) / wall : 0.0;
  return e;
}

std::vector<PerfEntry> run_scaling(bool tiny, ChannelBackendKind backend) {
  std::vector<PerfEntry> out;
  out.push_back(run_scaling_point("scaling/bignode_mono", 1, 1, tiny, backend));
  out.push_back(
      run_scaling_point("scaling/bignode_shard4_seq", 4, 1, tiny, backend));
  out.push_back(
      run_scaling_point("scaling/bignode_shard4_t4", 4, 4, tiny, backend));
  // The determinism tripwire: the two sharded runs differ only in worker
  // count, so their summed engine steps and demand accesses must be
  // identical — a drift here means the barrier protocol leaked thread
  // scheduling into results, which no speedup excuses.
  const PerfEntry& seq = out[1];
  const PerfEntry& par = out[2];
  if (seq.events != par.events || seq.accesses != par.accesses) {
    std::cerr << "perfbench: sharded runs diverged across thread counts: "
              << "events " << seq.events << " vs " << par.events
              << ", accesses " << seq.accesses << " vs " << par.accesses
              << "\n";
    std::exit(1);
  }
  return out;
}

int run(int argc, char** argv) {
  std::string out_path = "BENCH.json";
  u32 jobs = 0;
  bool tiny = false;
  bool scaling = false;
  ChannelBackendKind backend = ChannelBackendKind::Fast;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--jobs" && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      if (n <= 0) {
        std::cerr << "--jobs expects a positive integer\n";
        return 2;
      }
      jobs = static_cast<u32>(n);
    } else if (a == "--tiny") {
      tiny = true;
    } else if (a == "--scaling") {
      scaling = true;
    } else if (a == "--backend" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (!parse_backend_kind(v, &backend)) {
        std::cerr << "--backend expects fast or ddr, got '" << v << "'\n";
        return 2;
      }
    } else {
      std::cerr << "unknown argument: " << a
                << " (supported: --out <path> --jobs <n> --tiny"
                   " --backend fast|ddr --scaling)\n";
      return 2;
    }
  }

  PerfReport report;
  {
    utsname uts{};
    uname(&uts);
    report.set_meta("host", std::string(uts.nodename) + " " + uts.sysname + " " +
                                uts.release + " " + uts.machine);
  }
  report.set_meta("compiler", __VERSION__);
#ifdef NDEBUG
  report.set_meta("build", "release");
#else
  report.set_meta("build", "debug");
#endif
  report.set_meta("check_level", std::to_string(check::compiled_level()));
  report.set_meta("jobs", std::to_string(resolve_jobs(jobs)));
  report.set_meta("hardware_threads",
                  std::to_string(std::thread::hardware_concurrency()));
  report.set_meta("slice", scaling ? (tiny ? "scaling-tiny" : "scaling")
                                   : (tiny ? "tiny" : "fig05-quick"));
  report.set_meta("backend", to_string(backend));

  if (scaling) {
    for (PerfEntry& e : run_scaling(tiny, backend)) {
      report.entries.push_back(std::move(e));
    }
  } else {
    for (PerfEntry& e : run_micros(tiny)) report.entries.push_back(std::move(e));
    report.entries.push_back(run_fig05_slice(jobs, tiny, backend));
    report.entries.push_back(run_fig05_integrated_slice(jobs, tiny, backend));
  }

  if (!save_report(report, out_path)) {
    std::cerr << "perfbench: cannot write '" << out_path << "'\n";
    return 1;
  }

  for (const PerfEntry& e : report.entries) {
    char line[256];
    std::snprintf(line, sizeof line, "%-24s %12.3e /s  (%.3fs, counter %llu)",
                  e.name.c_str(), e.rate, e.wall_seconds,
                  static_cast<unsigned long long>(e.events));
    std::cerr << line << "\n";
  }
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace h2

int main(int argc, char** argv) { return h2::run(argc, argv); }
