// Table II: the 12 CPU-GPU workload combinations, plus measured generator
// characteristics (what the synthetic substitution actually produces).
#include <iostream>
#include <set>

#include "bench_common.h"
#include "trace/workloads.h"

using namespace h2;

namespace {

struct Character {
  double write_frac;
  double dep_frac;
  double mean_gap;
  u64 distinct_lines;
};

Character measure(const WorkloadSpec& spec, u64 seed, u64 n = 50'000) {
  SyntheticGenerator gen(spec, seed);
  Character c{0, 0, 0, 0};
  std::set<Addr> lines;
  for (u64 i = 0; i < n; ++i) {
    const Access a = gen.next();
    c.write_frac += a.write;
    c.dep_frac += a.dependent;
    c.mean_gap += a.gap;
    lines.insert(a.addr / 64);
  }
  c.write_frac /= static_cast<double>(n);
  c.dep_frac /= static_cast<double>(n);
  c.mean_gap /= static_cast<double>(n);
  c.distinct_lines = lines.size();
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);

  TablePrinter combos("Table II: workload combinations",
                      {"combo", "CPU workloads", "GPU workload"});
  for (const auto& c : table2_combos()) {
    std::string cpus;
    for (size_t i = 0; i < c.cpu.size(); ++i) {
      cpus += (i ? "-" : "") + c.cpu[i];
    }
    combos.row({c.name, cpus, c.gpu});
  }
  combos.print(std::cout);

  TablePrinter chars("Measured workload-model characteristics (50k accesses each)",
                     {"workload", "side", "footprint MB", "writes", "dependent",
                      "instr/access", "distinct 64B lines"});
  for (const auto& n : cpu_workload_names()) {
    const auto& s = cpu_workload_spec(n);
    const Character c = measure(s, 1);
    chars.row({n, "cpu", fmt(s.footprint_bytes / 1048576.0, 0), fmt_pct(c.write_frac),
               fmt_pct(c.dep_frac), fmt(c.mean_gap, 1), std::to_string(c.distinct_lines)});
  }
  for (const auto& n : gpu_workload_names()) {
    const auto& s = gpu_workload_spec(n);
    const Character c = measure(s, 2);
    chars.row({n, "gpu", fmt(s.footprint_bytes / 1048576.0, 0), fmt_pct(c.write_frac),
               fmt_pct(c.dep_frac), fmt(c.mean_gap, 1), std::to_string(c.distinct_lines)});
  }
  chars.print(std::cout);
  bench::maybe_csv(chars, args);

  std::cout << "\nExpected properties (paper Section III-B): CPU models carry"
               " dependence (latency-sensitive);\nGPU models have none and issue"
               " several times more accesses per instruction (bandwidth-bound).\n";
  return 0;
}
