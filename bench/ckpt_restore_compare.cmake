# Kill-at-epoch checkpoint/restore driver (ctest -P script).
#
# Proves the checkpoint layer's headline guarantee end to end: a figure sweep
# hard-killed (_Exit, no unwinding) at a fault-chosen epoch boundary and
# finished with --restore produces a CSV *and* per-run --timeline files that
# are byte-identical to an uninterrupted run's, for every design in the
# figure's roster. Usage:
#   cmake -DBENCH=<binary> -DREF=<reference.csv> -DOUT=<interrupted.csv>
#         -DREF_TL=<ref-timeline-prefix> -DOUT_TL=<out-timeline-prefix>
#         -DCKPTS=<checkpoint-dir> [-DJOBS=<n>] [-DKILL_EPOCH=<n>]
#         [-DEXTRA_ARGS=<arg;arg...>] -P ckpt_restore_compare.cmake
if(NOT JOBS)
  set(JOBS 4)
endif()
if(NOT KILL_EPOCH)
  set(KILL_EPOCH 25)
endif()
file(REMOVE "${REF}" "${REF}.journal" "${OUT}" "${OUT}.journal")
file(GLOB stale "${REF_TL}*" "${OUT_TL}*")
if(stale)
  file(REMOVE ${stale})
endif()
file(REMOVE_RECURSE "${CKPTS}")
file(MAKE_DIRECTORY "${CKPTS}")

# 1. The uninterrupted reference sweep, timelines included.
execute_process(
  COMMAND ${BENCH} --quick --jobs ${JOBS} --csv ${REF} --timeline ${REF_TL}
          ${EXTRA_ARGS}
  RESULT_VARIABLE ref_rc
  OUTPUT_QUIET)
if(NOT ref_rc EQUAL 0)
  message(FATAL_ERROR "reference run failed with exit code ${ref_rc}")
endif()

# 2. The same sweep with per-epoch checkpoints, hard-killed when the first
# slot crosses epoch boundary KILL_EPOCH+1 (fault::kill_process is _Exit:
# no stream flushes, no atexit — the checkpoint files and the journal's
# already-flushed records are all that survives, exactly like a SIGKILL).
execute_process(
  COMMAND ${BENCH} --quick --jobs ${JOBS} --csv ${OUT} --timeline ${OUT_TL}
          --checkpoint ${CKPTS} --fault kill-at-epoch:after=${KILL_EPOCH}
          ${EXTRA_ARGS}
  RESULT_VARIABLE kill_rc
  OUTPUT_QUIET ERROR_QUIET)
if(NOT kill_rc EQUAL 137)
  message(FATAL_ERROR
    "expected the armed kill-at-epoch fault to end the sweep with status 137,"
    " got ${kill_rc} (KILL_EPOCH=${KILL_EPOCH} may exceed the epoch count)")
endif()
file(GLOB ckpt_files "${CKPTS}/*.ckpt")
list(LENGTH ckpt_files n_ckpts)
if(n_ckpts EQUAL 0)
  message(FATAL_ERROR "the killed sweep left no checkpoint files in ${CKPTS}")
endif()
message(STATUS "killed with status 137; ${n_ckpts} slot checkpoint(s) survive")

# 3. Finish the sweep: journaled complete slots restore via --resume,
# interrupted slots resume mid-flight from their checkpoints via --restore,
# untouched slots run fresh.
execute_process(
  COMMAND ${BENCH} --quick --jobs ${JOBS} --csv ${OUT} --timeline ${OUT_TL}
          --checkpoint ${CKPTS} --restore --resume ${EXTRA_ARGS}
  RESULT_VARIABLE restore_rc
  OUTPUT_QUIET)
if(NOT restore_rc EQUAL 0)
  message(FATAL_ERROR "--restore run failed with exit code ${restore_rc}")
endif()

# 4. Byte-identical or bust, CSV first.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${REF} ${OUT}
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  execute_process(COMMAND diff -u ${REF} ${OUT})
  message(FATAL_ERROR
    "restored sweep CSV differs from the uninterrupted reference - the"
    " checkpoint did not round-trip the simulator state bit-exactly")
endif()

# 5. ... then every per-run timeline: restored runs rewrite their timeline
# from the history carried in the checkpoint, so even the rows emitted before
# the kill must match the reference byte for byte.
file(GLOB ref_timelines "${REF_TL}*")
list(LENGTH ref_timelines n_timelines)
if(n_timelines EQUAL 0)
  message(FATAL_ERROR "reference run produced no --timeline files at ${REF_TL}*")
endif()
foreach(ref_tl ${ref_timelines})
  string(REPLACE "${REF_TL}" "${OUT_TL}" out_tl "${ref_tl}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${ref_tl} ${out_tl}
    RESULT_VARIABLE tl_rc)
  if(NOT tl_rc EQUAL 0)
    execute_process(COMMAND diff -u ${ref_tl} ${out_tl})
    message(FATAL_ERROR
      "timeline ${out_tl} differs from the reference ${ref_tl} after restore")
  endif()
endforeach()
message(STATUS "CSV and ${n_timelines} timeline file(s) byte-identical after kill+restore")
