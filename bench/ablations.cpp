// Ablations of design choices the paper discusses but does not plot:
//  1. per-channel vs single token counters (Section IV-B: "negligible
//     difference");
//  2. decoupled way-partitioning (Hydrogen) vs decoupled set-partitioning
//     (Section IV-F discussion);
//  3. Footprint-style sub-blocking on top of Hydrogen (Section IV-B cites it
//     as orthogonal);
//  4. cache mode vs flat mode (Section IV-F).
#include <iostream>

#include "bench_common.h"

using namespace h2;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto combos = args.quick ? std::vector<std::string>{"C1", "C5"}
                                 : std::vector<std::string>{"C1", "C3", "C5", "C11"};

  // ---- 1. single vs per-channel token counters ---------------------------
  TablePrinter t1("Ablation: single vs per-channel token counters (speedup vs baseline)",
                  {"combo", "single counter", "per-channel counters"});
  std::vector<double> single_su, perch_su;
  std::vector<ExperimentConfig> cfgs1;
  for (const auto& combo : combos) {
    DesignSpec per = DesignSpec::hydrogen_full();
    per.label = "hydrogen-perch";
    per.hydrogen.per_channel_tokens = true;
    cfgs1.push_back(bench::bench_config(combo, DesignSpec::baseline(), args));
    cfgs1.push_back(bench::bench_config(combo, DesignSpec::hydrogen_full(), args));
    cfgs1.push_back(bench::bench_config(combo, per, args));
  }
  const auto res1 = bench::run_sweep(cfgs1, args);
  for (size_t c = 0; c < combos.size(); ++c) {
    const auto& base = res1[3 * c];
    single_su.push_back(weighted_speedup(base, res1[3 * c + 1]));
    perch_su.push_back(weighted_speedup(base, res1[3 * c + 2]));
    t1.row({combos[c], fmt(single_su.back()), fmt(perch_su.back())});
  }
  t1.row({"geomean", fmt(geomean(single_su)), fmt(geomean(perch_su))});
  t1.print(std::cout);
  print_check(std::cout, "per-channel / single (paper: ~1.00, 'negligible')", 1.0,
              geomean(perch_su) / geomean(single_su));

  // ---- 2. way- vs set-partitioning ----------------------------------------
  TablePrinter t2("Ablation: decoupled way- vs set-partitioning (speedup vs baseline)",
                  {"combo", "hydrogen (way, DP+token)", "hydrogen-setpart"});
  std::vector<double> way_su, set_su;
  std::vector<ExperimentConfig> cfgs2;
  for (const auto& combo : combos) {
    cfgs2.push_back(bench::bench_config(combo, DesignSpec::baseline(), args));
    cfgs2.push_back(bench::bench_config(combo, DesignSpec::hydrogen_dp_token(), args));
    cfgs2.push_back(bench::bench_config(combo, DesignSpec::hydrogen_setpart(), args));
  }
  const auto res2 = bench::run_sweep(cfgs2, args);
  for (size_t c = 0; c < combos.size(); ++c) {
    const auto& base = res2[3 * c];
    way_su.push_back(weighted_speedup(base, res2[3 * c + 1]));
    set_su.push_back(weighted_speedup(base, res2[3 * c + 2]));
    t2.row({combos[c], fmt(way_su.back()), fmt(set_su.back())});
  }
  t2.row({"geomean", fmt(geomean(way_su)), fmt(geomean(set_su))});
  t2.print(std::cout);
  std::cout << "  expected shape: set-partitioning works but trails the way-"
               "partitioned design\n  (coupled per-set channel mapping, Section"
               " IV-F drawbacks).\n";

  // ---- 3. sub-blocking on top of Hydrogen ----------------------------------
  TablePrinter t3("Ablation: Footprint-style sub-blocking (speedup vs baseline, slow GB moved)",
                  {"combo", "hydrogen", "hydrogen+subblock", "slow MB (full)",
                   "slow MB (subblock)"});
  std::vector<ExperimentConfig> cfgs3;
  for (const auto& combo : combos) {
    ExperimentConfig full_cfg = bench::bench_config(combo, DesignSpec::hydrogen_full(), args);
    ExperimentConfig sb_cfg = full_cfg;
    sb_cfg.sys.hybrid.subblock = true;
    sb_cfg.design.label = "hydrogen-subblock";
    cfgs3.push_back(bench::bench_config(combo, DesignSpec::baseline(), args));
    cfgs3.push_back(std::move(full_cfg));
    cfgs3.push_back(std::move(sb_cfg));
  }
  const auto res3 = bench::run_sweep(cfgs3, args);
  for (size_t c = 0; c < combos.size(); ++c) {
    const auto& base = res3[3 * c];
    const auto& rf = res3[3 * c + 1];
    const auto& rs = res3[3 * c + 2];
    t3.row({combos[c], fmt(weighted_speedup(base, rf)), fmt(weighted_speedup(base, rs)),
            fmt(rf.slow_bytes / 1048576.0, 1), fmt(rs.slow_bytes / 1048576.0, 1)});
  }
  t3.print(std::cout);
  std::cout << "  expected shape: sub-blocking cuts slow-tier traffic; end"
               " performance shifts only\n  where that traffic was the"
               " bottleneck (it is orthogonal to Hydrogen).\n";

  // ---- 4. cache vs flat mode ------------------------------------------------
  TablePrinter t4("Ablation: cache vs flat mode (Hydrogen speedup vs same-mode baseline)",
                  {"combo", "cache mode", "flat mode"});
  std::vector<ExperimentConfig> cfgs4;
  for (const auto& combo : combos) {
    ExperimentConfig bc = bench::bench_config(combo, DesignSpec::baseline(), args);
    ExperimentConfig hc = bench::bench_config(combo, DesignSpec::hydrogen_full(), args);
    ExperimentConfig bf = bc;
    bf.mode = HybridMode::Flat;
    ExperimentConfig hf = hc;
    hf.mode = HybridMode::Flat;
    cfgs4.push_back(std::move(bc));
    cfgs4.push_back(std::move(hc));
    cfgs4.push_back(std::move(bf));
    cfgs4.push_back(std::move(hf));
  }
  const auto res4 = bench::run_sweep(cfgs4, args);
  for (size_t c = 0; c < combos.size(); ++c) {
    t4.row({combos[c], fmt(weighted_speedup(res4[4 * c], res4[4 * c + 1])),
            fmt(weighted_speedup(res4[4 * c + 2], res4[4 * c + 3]))});
  }
  t4.print(std::cout);
  std::cout << "  expected shape: Hydrogen helps in both modes (Section IV-F:"
               " \"most of our designs\n  directly apply to the flat mode\").\n";
  bench::maybe_csv(t4, args);
  return 0;
}
