// Fig. 8: effectiveness of the online search on C5. Exhaustively evaluates
// (cap, bw, tok) configurations with the search disabled, then compares
// Hydrogen's online hill-climbing choice against the offline optimum.
#include <algorithm>
#include <iostream>

#include "bench_common.h"

using namespace h2;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::string combo = "C5";

  struct Point {
    ParamPoint p;
    double speedup;
  };
  const std::vector<u32> tok_levels = args.quick ? std::vector<u32>{1, 3, 5}
                                                 : std::vector<u32>{0, 2, 3, 5, 7};

  // One sweep: the baseline, every exhaustive (cap, bw, tok) point, and the
  // online run, all in parallel.
  std::vector<ExperimentConfig> cfgs;
  std::vector<ParamPoint> grid_points;
  cfgs.push_back(bench::bench_config(combo, DesignSpec::baseline(), args));
  for (u32 cap = 1; cap <= 3; ++cap) {
    for (u32 bw = 1; bw <= 3; ++bw) {
      for (u32 tok : tok_levels) {
        DesignSpec d = DesignSpec::hydrogen_dp_token();  // fixed config, no search
        d.hydrogen.fixed_cpu_capacity_frac = cap / 4.0;
        d.hydrogen.fixed_cpu_bw_frac = bw / 4.0;
        d.hydrogen.fixed_tok_frac = d.hydrogen.tok_levels[tok];
        d.label = "cap" + std::to_string(cap) + "-bw" + std::to_string(bw) +
                  "-tok" + std::to_string(tok);
        cfgs.push_back(bench::bench_config(combo, d, args));
        grid_points.push_back(ParamPoint{cap, bw, tok});
      }
    }
  }
  cfgs.push_back(bench::bench_config(combo, DesignSpec::hydrogen_full(), args));
  const auto results = bench::run_sweep(cfgs, args);

  const auto& base = results.front();
  std::vector<Point> grid;
  for (size_t i = 0; i < grid_points.size(); ++i) {
    grid.push_back({grid_points[i], weighted_speedup(base, results[i + 1])});
  }
  std::sort(grid.begin(), grid.end(),
            [](const Point& a, const Point& b) { return a.speedup > b.speedup; });

  const auto& online = results.back();
  const double online_su = weighted_speedup(base, online);

  TablePrinter t("Fig. 8: exhaustive configurations vs Hydrogen's online choice (C5)",
                 {"rank", "cap (CPU ways)", "bw (CPU channels)", "tok level",
                  "speedup vs baseline"});
  for (size_t i = 0; i < grid.size(); ++i) {
    t.row({std::to_string(i + 1), std::to_string(grid[i].p.cap),
           std::to_string(grid[i].p.bw), std::to_string(grid[i].p.tok),
           fmt(grid[i].speedup)});
  }
  t.row({"online", std::to_string(online.final_point.cap),
         std::to_string(online.final_point.bw), std::to_string(online.final_point.tok),
         fmt(online_su)});
  t.print(std::cout);
  bench::maybe_csv(t, args);

  const double best = grid.front().speedup;
  const double median = grid[grid.size() / 2].speedup;
  std::cout << "\nSummary (paper Section VI-B):\n";
  print_check(std::cout, "best exhaustive / median exhaustive", 1.73, best / median);
  print_check(std::cout, "online within fraction of optimum (paper: 96.1%)", 0.961,
              online_su / best);
  print_check(std::cout, "offline best over online (paper: +5.1%)", 1.051,
              best / online_su);
  return 0;
}
