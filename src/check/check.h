// H2_CHECK: the simulator's invariant layer.
//
// Unlike H2_ASSERT (always-on argument validation), H2_CHECK guards *model*
// invariants in hot paths and is gated twice:
//
//   compile time  H2_CHECK_LEVEL (CMake cache var, default 1)
//                   0  checks compile to nothing (perf builds)
//                   1  cheap per-event invariants (orderings, ranges, bounds)
//                   2  expensive audits (table scans, conservation sums)
//   run time      check::runtime_level(), default = compile level, lowered
//                 via the --check flag or the H2_CHECK environment variable.
//
// A failing check calls the installed failure handler (tests install one that
// throws CheckError; the default prints the message and aborts). Messages are
// expected to name the actor/component, the cycle, and the quantity that went
// wrong -- a bare "invariant failed" is useless in a million-cycle run.
#pragma once

#include <cstdarg>
#include <stdexcept>
#include <string>

#ifndef H2_CHECK_LEVEL
#define H2_CHECK_LEVEL 1
#endif

namespace h2::check {

/// Thrown by the test failure handler (never by the default handler).
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

/// Compile-time ceiling: checks above this level do not exist in the binary.
constexpr int compiled_level() { return H2_CHECK_LEVEL; }

/// Current runtime level in [0, compiled_level()]. Initialised lazily from
/// the H2_CHECK environment variable (clamped to the compiled ceiling).
int runtime_level();

/// Set the runtime level (clamped to [0, compiled_level()]). Used by the
/// --check flag and by tests; thread-safe (relaxed atomic).
void set_runtime_level(int level);

/// Failure sink: receives the fully formatted message. May throw (tests) or
/// not return at all (default handler aborts). If it returns normally the
/// caller aborts anyway -- a failed invariant never resumes simulation.
using FailureHandler = void (*)(const std::string& message);

/// Install a failure handler; returns the previous one. nullptr restores the
/// default print-and-abort behaviour.
FailureHandler set_failure_handler(FailureHandler handler);

/// RAII helper for tests: installs a handler that throws CheckError and
/// restores the previous handler (and runtime level) on destruction.
class ScopedThrowingHandler {
 public:
  ScopedThrowingHandler();
  ~ScopedThrowingHandler();
  ScopedThrowingHandler(const ScopedThrowingHandler&) = delete;
  ScopedThrowingHandler& operator=(const ScopedThrowingHandler&) = delete;

 private:
  FailureHandler prev_;
  int prev_level_;
};

/// Formats and dispatches a failed check. [[noreturn]] unless the installed
/// handler throws.
[[noreturn]] void fail(const char* file, int line, const char* cond,
                       const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace h2::check

/// True when checks at `level` are both compiled in and runtime-enabled.
/// `level` folds at compile time, so H2_CHECK_ACTIVE(2) is constant-false in
/// an H2_CHECK_LEVEL=1 build and the dead branch is eliminated.
#define H2_CHECK_ACTIVE(level) \
  ((level) <= H2_CHECK_LEVEL && (level) <= ::h2::check::runtime_level())

/// Invariant check: condition is evaluated only when the level is active, so
/// an H2_CHECK_LEVEL=0 build carries neither the branch nor the operands.
#define H2_CHECK(level, cond, ...)                                \
  do {                                                            \
    if constexpr ((level) <= H2_CHECK_LEVEL) {                    \
      if ((level) <= ::h2::check::runtime_level() && !(cond)) {   \
        ::h2::check::fail(__FILE__, __LINE__, #cond, __VA_ARGS__); \
      }                                                           \
    }                                                             \
  } while (0)
