// Scripted epoch schedules: a tiny op language for driving partition
// reconfigurations deterministically from outside a policy's own search.
//
// The differential oracle (check/oracle.h), the SimSystem harness (the
// `sim.reconfig_schedule` config key) and the reconfiguration test battery
// all need the same thing: a reproducible sequence of partition changes —
// grows, shrinks, bandwidth shifts, oscillations — that can be applied
// bit-identically to two independent policy instances. A schedule is a
// comma-separated op list; epoch i applies op i mod len, so short schedules
// describe infinite oscillations ("shrink,grow" flips the partition back
// and forth forever).
//
// Grammar (parse_schedule):
//   schedule := op ("," op)*
//   op       := "hold"                 no change this epoch
//             | "grow"  | "shrink"     capacity knob +-1 (ways or set slice)
//             | "bw+"   | "bw-"        bandwidth knob +-1 (hydrogen only)
//             | "tok+"  | "tok-"       token-level knob +-1 (hydrogen only)
//             | "point=C/B/T"          absolute hydrogen (cap, bw, tok)
//             | "frac=F"               absolute capacity fraction in [0, 1]
//
// Ops are design-relative: each step reads the policy's *current* state and
// moves one knob, clamped to the design's legal range, so the same schedule
// is meaningful for hydrogen (ParamPoint steps), waypart (cpu-way steps),
// hydrogen-setpart (set-fraction steps in 0.10 increments) and integrated
// (grow/shrink ease/tighten the migration threshold, bw+/bw- shorten/
// lengthen the cooldown, point=C/B/T pins threshold=C and
// cooldown=B*kCooldownStep, frac scales the initial threshold). Designs
// without a reconfigurable partition (baseline, hashcache, profess) treat
// every op as `hold`. Because the target is computed from the policy's own
// state, two
// policies with identical histories make bit-identical transitions — the
// property the differential oracle relies on.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace h2 {

class PartitionPolicy;

enum class ScheduleOp : u8 {
  Hold,
  Grow,
  Shrink,
  BwUp,
  BwDown,
  TokUp,
  TokDown,
  Point,
  Frac,
};

struct ScheduleStep {
  ScheduleOp op = ScheduleOp::Hold;
  u32 cap = 0, bw = 0, tok = 0;  ///< Point operands
  double frac = 0.0;             ///< Frac operand
};

struct EpochSchedule {
  std::vector<ScheduleStep> steps;

  bool empty() const { return steps.empty(); }
  /// The op for epoch `epoch` (0-based). Schedules wrap, so a two-op
  /// schedule oscillates; an empty schedule holds forever.
  const ScheduleStep& at(u64 epoch) const;
};

/// Parses the grammar above. Throws std::invalid_argument naming the
/// offending op on any syntax error.
EpochSchedule parse_schedule(const std::string& text);

/// Canonical round-trip forms (parse_schedule(to_string(s)) == s); the fuzz
/// tests use them to report a failing schedule reproducibly.
std::string to_string(const ScheduleStep& step);
std::string to_string(const EpochSchedule& sched);

/// Applies one step to `policy`, dispatching on its concrete design:
/// hydrogen steps its active ParamPoint, waypart its cpu-way count, setpart
/// its set fraction (+-0.10 per grow/shrink), integrated its migration
/// threshold/cooldown; everything else holds. All targets are clamped to the
/// design's legal range. Returns true iff the configuration actually changed
/// (i.e. lazy fixups are now due somewhere — vacuously for integrated, whose
/// mapping never moves).
bool apply_schedule_step(const ScheduleStep& step, PartitionPolicy& policy);

}  // namespace h2
