#include "check/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace h2::check {
namespace {

constexpr int kUninitialised = -1;

std::atomic<int> g_level{kUninitialised};
std::atomic<FailureHandler> g_handler{nullptr};

int clamp_level(int level) {
  if (level < 0) return 0;
  if (level > compiled_level()) return compiled_level();
  return level;
}

int init_level_from_env() {
  const char* env = std::getenv("H2_CHECK");
  int level = compiled_level();
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0') level = clamp_level(static_cast<int>(parsed));
  }
  return level;
}

void throwing_handler(const std::string& message) { throw CheckError(message); }

}  // namespace

int runtime_level() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level == kUninitialised) {
    level = init_level_from_env();
    int expected = kUninitialised;
    // If another thread raced us, keep its value: first initialiser wins.
    if (!g_level.compare_exchange_strong(expected, level,
                                         std::memory_order_relaxed)) {
      level = expected;
    }
  }
  return level;
}

void set_runtime_level(int level) {
  g_level.store(clamp_level(level), std::memory_order_relaxed);
}

FailureHandler set_failure_handler(FailureHandler handler) {
  return g_handler.exchange(handler);
}

ScopedThrowingHandler::ScopedThrowingHandler()
    : prev_(set_failure_handler(&throwing_handler)),
      prev_level_(runtime_level()) {}

ScopedThrowingHandler::~ScopedThrowingHandler() {
  set_failure_handler(prev_);
  set_runtime_level(prev_level_);
}

void fail(const char* file, int line, const char* cond, const char* fmt, ...) {
  char body[768];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);

  char message[1024];
  std::snprintf(message, sizeof(message), "H2_CHECK failed at %s:%d: (%s) %s",
                file, line, cond, body);

  FailureHandler handler = g_handler.load();
  if (handler != nullptr) handler(message);  // may throw (tests)

  std::fprintf(stderr, "%s\n", message);
  std::abort();
}

}  // namespace h2::check
