#include "check/fault.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/cancel.h"

namespace h2::fault {

namespace {

constexpr const char* kKindNames[kNumKinds] = {
    "remap-flip", "dup-tag", "drop-writeback", "time-skew",
    "cursor-skew", "throw",   "throw-transient", "stall",
    "lazy-skip",  "alloc-stuck", "refresh-skip", "sched-starve",
    "ckpt-corrupt", "ckpt-truncate", "kill-at-epoch", "migrate-lost",
    "counter-stuck",
};

/// Strict base-10 u64 parse; throws on empty, non-digit, or overflow.
std::uint64_t parse_u64(const std::string& spec, const std::string& token) {
  if (token.empty())
    throw std::invalid_argument("fault spec '" + spec + "': empty number");
  std::uint64_t v = 0;
  for (char c : token) {
    if (c < '0' || c > '9')
      throw std::invalid_argument("fault spec '" + spec + "': '" + token +
                                  "' is not a number");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10)
      throw std::invalid_argument("fault spec '" + spec + "': '" + token +
                                  "' overflows u64");
    v = v * 10 + digit;
  }
  return v;
}

}  // namespace

const char* kind_name(Kind k) { return kKindNames[static_cast<int>(k)]; }

FaultSpec parse_spec(const std::string& spec) {
  const size_t colon = spec.find(':');
  const std::string kind_str = spec.substr(0, colon);

  FaultSpec out;
  bool found = false;
  for (int i = 0; i < kNumKinds; ++i) {
    if (kind_str == kKindNames[i]) {
      out.kind = static_cast<Kind>(i);
      found = true;
      break;
    }
  }
  if (!found)
    throw std::invalid_argument("fault spec '" + spec + "': unknown kind '" +
                                kind_str + "'");

  if (colon == std::string::npos) return out;

  std::string rest = spec.substr(colon + 1);
  if (rest.empty())
    throw std::invalid_argument("fault spec '" + spec +
                                "': empty option list after ':'");
  size_t pos = 0;
  while (pos <= rest.size()) {
    const size_t comma = rest.find(',', pos);
    const std::string kv =
        rest.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const size_t eq = kv.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("fault spec '" + spec + "': option '" + kv +
                                  "' is not key=value");
    const std::string key = kv.substr(0, eq);
    const std::uint64_t val = parse_u64(spec, kv.substr(eq + 1));
    if (key == "after") {
      out.after = val;
    } else if (key == "count") {
      out.count = val;
    } else if (key == "seed") {
      out.seed = val;
    } else if (key == "for") {
      out.stall_ms = val;
    } else {
      throw std::invalid_argument("fault spec '" + spec + "': unknown key '" +
                                  key + "' (supported: after count seed for)");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

void throw_synthetic(bool transient) {
  Injector* inj = current();
  std::string what = "injected synthetic fault";
  if (inj != nullptr) {
    what += " '";
    what += kind_name(inj->spec().kind);
    what += "' (seed=" + std::to_string(inj->spec().seed) + ")";
  }
  if (transient) throw TransientError(what);
  throw FaultError(what);
}

void stall() {
  Injector* inj = current();
  const std::uint64_t ms = inj != nullptr ? inj->spec().stall_ms : 50;
  for (std::uint64_t slept = 0; slept < ms; ++slept) {
    cancel::poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cancel::poll();
}

void kill_process() {
  // 128 + SIGKILL(9), the status a shell reports for a killed child.
  std::_Exit(137);
}

bool perturb_checkpoint_bytes(std::string& bytes) {
  if (bytes.empty()) return false;
  if (at(Kind::CkptCorrupt)) {
    Injector* inj = current();
    const std::uint64_t seed = inj != nullptr ? inj->spec().seed : 0;
    const std::size_t pos = static_cast<std::size_t>(seed % bytes.size());
    const unsigned bit = static_cast<unsigned>((seed / bytes.size()) % 8);
    bytes[pos] = static_cast<char>(static_cast<unsigned char>(bytes[pos]) ^
                                   (1u << bit));
    return true;
  }
  if (at(Kind::CkptTruncate)) {
    bytes.resize(bytes.size() - std::max<std::size_t>(1, bytes.size() / 2));
    return true;
  }
  return false;
}

}  // namespace h2::fault
