#include "check/epoch_schedule.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "hybridmem/policy.h"
#include "hydrogen/hydrogen_policy.h"
#include "hydrogen/setpart_policy.h"
#include "policies/integrated.h"
#include "policies/waypart.h"

namespace h2 {

namespace {

const ScheduleStep kHold{};

/// Strict base-10 u32 parse for point operands.
u32 parse_u32(const std::string& text, const std::string& token) {
  if (token.empty())
    throw std::invalid_argument("schedule '" + text + "': empty number");
  u64 v = 0;
  for (char c : token) {
    if (c < '0' || c > '9')
      throw std::invalid_argument("schedule '" + text + "': '" + token +
                                  "' is not a number");
    v = v * 10 + static_cast<u64>(c - '0');
    if (v > 0xFFFFFFFFull)
      throw std::invalid_argument("schedule '" + text + "': '" + token +
                                  "' overflows u32");
  }
  return static_cast<u32>(v);
}

ScheduleStep parse_op(const std::string& text, const std::string& op) {
  ScheduleStep s;
  if (op == "hold") {
    s.op = ScheduleOp::Hold;
  } else if (op == "grow") {
    s.op = ScheduleOp::Grow;
  } else if (op == "shrink") {
    s.op = ScheduleOp::Shrink;
  } else if (op == "bw+") {
    s.op = ScheduleOp::BwUp;
  } else if (op == "bw-") {
    s.op = ScheduleOp::BwDown;
  } else if (op == "tok+") {
    s.op = ScheduleOp::TokUp;
  } else if (op == "tok-") {
    s.op = ScheduleOp::TokDown;
  } else if (op.rfind("point=", 0) == 0) {
    s.op = ScheduleOp::Point;
    const std::string body = op.substr(6);
    const size_t s1 = body.find('/');
    const size_t s2 = s1 == std::string::npos ? std::string::npos : body.find('/', s1 + 1);
    if (s1 == std::string::npos || s2 == std::string::npos)
      throw std::invalid_argument("schedule '" + text + "': point op '" + op +
                                  "' must be point=C/B/T");
    s.cap = parse_u32(text, body.substr(0, s1));
    s.bw = parse_u32(text, body.substr(s1 + 1, s2 - s1 - 1));
    s.tok = parse_u32(text, body.substr(s2 + 1));
  } else if (op.rfind("frac=", 0) == 0) {
    s.op = ScheduleOp::Frac;
    const std::string body = op.substr(5);
    char* end = nullptr;
    s.frac = std::strtod(body.c_str(), &end);
    if (body.empty() || end == nullptr || *end != '\0' || s.frac < 0.0 || s.frac > 1.0)
      throw std::invalid_argument("schedule '" + text + "': frac op '" + op +
                                  "' needs a fraction in [0, 1]");
  } else {
    throw std::invalid_argument(
        "schedule '" + text + "': unknown op '" + op +
        "' (expected hold, grow, shrink, bw+, bw-, tok+, tok-, point=C/B/T "
        "or frac=F)");
  }
  return s;
}

/// Hydrogen: step the active ParamPoint one knob at a time, clamped to the
/// partition's legal ranges, then apply. apply_point reports change itself.
bool apply_hydrogen(const ScheduleStep& step, HydrogenPolicy& hp) {
  const DecoupledPartition& part = hp.partition();
  const u32 tok_max = static_cast<u32>(hp.config().tok_levels.size()) - 1;
  ParamPoint p = hp.active_point();
  switch (step.op) {
    case ScheduleOp::Hold:
      return false;
    case ScheduleOp::Grow:
      p.cap = std::min(p.cap + 1, part.cap_max());
      break;
    case ScheduleOp::Shrink:
      p.cap = std::max(p.cap, part.cap_min() + 1) - 1;
      break;
    case ScheduleOp::BwUp:
      p.bw = std::min(p.bw + 1, part.bw_max());
      break;
    case ScheduleOp::BwDown:
      p.bw = std::max(p.bw, part.bw_min() + 1) - 1;
      break;
    case ScheduleOp::TokUp:
      p.tok = std::min(p.tok + 1, tok_max);
      break;
    case ScheduleOp::TokDown:
      p.tok = p.tok > 0 ? p.tok - 1 : 0;
      break;
    case ScheduleOp::Point:
      p.cap = std::clamp(step.cap, part.cap_min(), part.cap_max());
      p.bw = std::clamp(step.bw, part.bw_min(), part.bw_max());
      p.tok = std::min(step.tok, tok_max);
      break;
    case ScheduleOp::Frac:
      p.cap = std::clamp(
          static_cast<u32>(std::lround(step.frac * hp.assoc())),
          part.cap_min(), part.cap_max());
      break;
  }
  return hp.apply_point(p);
}

/// WayPart: only the capacity knob exists (coupled mapping), so bandwidth
/// and token ops hold.
bool apply_waypart(const ScheduleStep& step, WayPartPolicy& wp) {
  switch (step.op) {
    case ScheduleOp::Grow:
      return wp.set_cpu_ways(wp.cpu_ways() + 1);
    case ScheduleOp::Shrink:
      return wp.set_cpu_ways(wp.cpu_ways() > 0 ? wp.cpu_ways() - 1 : 0);
    case ScheduleOp::Point:
      return wp.set_cpu_ways(step.cap);
    case ScheduleOp::Frac:
      return wp.set_cpu_ways(
          static_cast<u32>(std::lround(step.frac * wp.assoc())));
    default:
      return false;
  }
}

/// Integrated: no partition to move — the schedule steps the migration
/// knobs instead. `grow`/`shrink` ease/tighten the hotness threshold
/// (capacity role: a lower threshold admits more pages to the fast tier),
/// `bw+`/`bw-` shorten/lengthen the cooldown by kCooldownStep cycles
/// (bandwidth role: more or less migration traffic), `point=C/B/T` pins
/// threshold=C and cooldown=B*kCooldownStep, `frac=F` scales the initial
/// threshold. Token ops hold.
bool apply_integrated(const ScheduleStep& step, IntegratedPolicy& ip) {
  switch (step.op) {
    case ScheduleOp::Grow:
      return ip.set_threshold(ip.threshold() > 1 ? ip.threshold() - 1 : 1);
    case ScheduleOp::Shrink:
      return ip.set_threshold(ip.threshold() + 1);
    case ScheduleOp::BwUp:
      return ip.set_cooldown(ip.cooldown() >= IntegratedPolicy::kCooldownStep
                                 ? ip.cooldown() - IntegratedPolicy::kCooldownStep
                                 : 0);
    case ScheduleOp::BwDown:
      return ip.set_cooldown(ip.cooldown() + IntegratedPolicy::kCooldownStep);
    case ScheduleOp::Point: {
      const bool t = ip.set_threshold(std::max(1u, step.cap));
      const bool c = ip.set_cooldown(step.bw * IntegratedPolicy::kCooldownStep);
      return t || c;
    }
    case ScheduleOp::Frac:
      return ip.set_threshold(std::max<u32>(
          1, static_cast<u32>(std::lround(step.frac * ip.initial_threshold()))));
    default:
      return false;
  }
}

/// SetPart: one fraction knob; grow/shrink move it by a whole 0.10 slice so
/// a step flips a visible number of sets (set_partition clamps internally).
bool apply_setpart(const ScheduleStep& step, SetPartPolicy& sp) {
  switch (step.op) {
    case ScheduleOp::Grow:
      return sp.set_partition(sp.cpu_set_frac() + 0.10);
    case ScheduleOp::Shrink:
      return sp.set_partition(sp.cpu_set_frac() - 0.10);
    case ScheduleOp::Point:
    case ScheduleOp::Frac:
      return sp.set_partition(step.op == ScheduleOp::Frac
                                  ? step.frac
                                  : static_cast<double>(step.cap) /
                                        std::max(1u, sp.assoc()));
    default:
      return false;
  }
}

}  // namespace

const ScheduleStep& EpochSchedule::at(u64 epoch) const {
  if (steps.empty()) return kHold;
  return steps[epoch % steps.size()];
}

EpochSchedule parse_schedule(const std::string& text) {
  EpochSchedule sched;
  size_t from = 0;
  while (from <= text.size()) {
    const size_t comma = text.find(',', from);
    const std::string op =
        text.substr(from, comma == std::string::npos ? comma : comma - from);
    if (op.empty())
      throw std::invalid_argument("schedule '" + text + "': empty op");
    sched.steps.push_back(parse_op(text, op));
    if (comma == std::string::npos) break;
    from = comma + 1;
  }
  return sched;
}

std::string to_string(const ScheduleStep& step) {
  switch (step.op) {
    case ScheduleOp::Hold: return "hold";
    case ScheduleOp::Grow: return "grow";
    case ScheduleOp::Shrink: return "shrink";
    case ScheduleOp::BwUp: return "bw+";
    case ScheduleOp::BwDown: return "bw-";
    case ScheduleOp::TokUp: return "tok+";
    case ScheduleOp::TokDown: return "tok-";
    case ScheduleOp::Point:
      return "point=" + std::to_string(step.cap) + "/" + std::to_string(step.bw) +
             "/" + std::to_string(step.tok);
    case ScheduleOp::Frac: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "frac=%g", step.frac);
      return buf;
    }
  }
  return "hold";
}

std::string to_string(const EpochSchedule& sched) {
  std::string out;
  for (size_t i = 0; i < sched.steps.size(); ++i) {
    if (i) out += ',';
    out += to_string(sched.steps[i]);
  }
  return out;
}

bool apply_schedule_step(const ScheduleStep& step, PartitionPolicy& policy) {
  if (step.op == ScheduleOp::Hold) return false;
  if (auto* hp = dynamic_cast<HydrogenPolicy*>(&policy)) {
    return apply_hydrogen(step, *hp);
  }
  if (auto* wp = dynamic_cast<WayPartPolicy*>(&policy)) {
    return apply_waypart(step, *wp);
  }
  if (auto* sp = dynamic_cast<SetPartPolicy*>(&policy)) {
    return apply_setpart(step, *sp);
  }
  if (auto* ip = dynamic_cast<IntegratedPolicy*>(&policy)) {
    return apply_integrated(step, *ip);
  }
  return false;  // baseline / hashcache / profess: nothing to reconfigure
}

}  // namespace h2
