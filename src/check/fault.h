// Deterministic fault injection: the test harness for the invariant layer.
//
// H2_CHECK (check.h) and the differential oracle (oracle.h) claim to catch
// model corruption; nothing proves those detectors actually fire. This
// framework plants *seeded, reproducible* faults at fixed sites in the
// simulator -- flip a remap-table tag, duplicate a cache tag, drop a dirty
// writeback, skew a channel cursor, stall or abort a run -- so that
// tools/h2fault can assert every fault class is caught by at least one of
// {H2_CHECK level 1/2, h2check oracle, sweep failure capture}.
//
// A fault is armed per-thread via an RAII Scope around an Injector, either
// explicitly (tests, tools/h2fault) or by the sweep runner from the --fault
// flag / H2_FAULT environment variable. Unarmed, every site is a single
// thread-local null-pointer test, and the perturbing sites additionally sit
// behind the surrounding code's normal control flow -- a Release build with
// no fault armed is bit-identical to one without this header.
//
// Spec grammar (parse_spec):
//   <kind>[:key=value[,key=value...]]
//   kinds  remap-flip | dup-tag | drop-writeback | time-skew | cursor-skew
//          | throw | throw-transient | stall | lazy-skip | alloc-stuck
//          | refresh-skip | sched-starve | ckpt-corrupt | ckpt-truncate
//          | kill-at-epoch | migrate-lost | counter-stuck
//   keys   after=N   skip the first N visits to matching sites (default 0)
//          count=N   fire at most N times; 0 = unlimited     (default 1)
//          seed=N    recorded for reproducibility bookkeeping (default 0)
//          for=N     stall duration in milliseconds           (default 50)
// e.g. H2_FAULT=remap-flip:after=100,count=2
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace h2::fault {

/// Every injectable fault class, each with a designated detector:
///   RemapFlip      flip a remap-table tag after fill      -> oracle residency
///   DupTag         duplicate a remap tag into another way -> level-2 bijection
///   DropWriteback  skip a dirty eviction's slow write     -> oracle counters
///   TimeSkew       make an actor step return `now`        -> level-1 ordering
///   CursorSkew     pull a channel busy-cursor backwards   -> level-2 cursor
///   Throw          synthetic permanent failure            -> sweep capture
///   ThrowTransient synthetic transient failure            -> sweep retry
///   Stall          busy-sleep inside the run              -> sweep watchdog
///   LazySkip       drop a *due* lazy reconfiguration fixup-> epoch oracle
///   AllocStuck     the per-way alloc bit is never written  -> epoch oracle
///   RefreshSkip    silently drop a due refresh window     -> oracle refresh law
///   SchedStarve    FR-FCFS bypass ignores starvation cap  -> DDR property check
///   CkptCorrupt    flip one byte of a checkpoint at write -> checksum reject
///   CkptTruncate   drop a checkpoint's trailing bytes     -> framing reject
///   KillAtEpoch    hard process kill at an epoch boundary -> checkpoint restore
///   MigrateLost    migration charged but never installed   -> oracle migration law
///   CounterStuck   page access counter stops incrementing  -> oracle counter table
enum class Kind : std::uint8_t {
  RemapFlip,
  DupTag,
  DropWriteback,
  TimeSkew,
  CursorSkew,
  Throw,
  ThrowTransient,
  Stall,
  LazySkip,
  AllocStuck,
  RefreshSkip,
  SchedStarve,
  CkptCorrupt,
  CkptTruncate,
  KillAtEpoch,
  MigrateLost,
  CounterStuck,
};

inline constexpr int kNumKinds = 17;

/// Spec-grammar name of a kind ("remap-flip", ...).
const char* kind_name(Kind k);

struct FaultSpec {
  Kind kind = Kind::Throw;
  std::uint64_t after = 0;     ///< skip the first `after` matching site visits
  std::uint64_t count = 1;     ///< fire at most `count` times (0 = unlimited)
  std::uint64_t seed = 0;      ///< bookkeeping only; recorded in error text
  std::uint64_t stall_ms = 50; ///< `for=` key: stall duration
};

/// Parses the grammar above. Throws std::invalid_argument naming the
/// offending token on an unknown kind, unknown key, or malformed number.
FaultSpec parse_spec(const std::string& spec);

/// Thrown by throw_synthetic(): a deliberately injected run failure. The
/// sweep runner classifies it as permanent (no retry).
class FaultError : public std::runtime_error {
 public:
  explicit FaultError(const std::string& what) : std::runtime_error(what) {}
};

/// Transient flavour: the sweep runner's retry policy applies.
class TransientError : public FaultError {
 public:
  explicit TransientError(const std::string& what) : FaultError(what) {}
};

/// Per-run fault state: counts visits to matching sites and decides, from
/// the spec's after/count window alone, whether a site fires. Deterministic:
/// the same run visits sites in the same order, so the same visits fire.
/// Not thread-safe; arm one Injector per worker thread (Scope is
/// thread-local).
class Injector {
 public:
  explicit Injector(FaultSpec spec) : spec_(spec) {}
  explicit Injector(const std::string& spec) : spec_(parse_spec(spec)) {}

  /// True when `site` matches the spec's kind and the visit falls inside the
  /// [after, after+count) firing window. Advances the visit counter.
  bool should_fire(Kind site) {
    if (site != spec_.kind) return false;
    const std::uint64_t visit = seen_++;
    if (visit < spec_.after) return false;
    if (spec_.count != 0 && fired_ >= spec_.count) return false;
    fired_++;
    return true;
  }

  const FaultSpec& spec() const { return spec_; }
  std::uint64_t seen() const { return seen_; }    ///< matching-site visits
  std::uint64_t fired() const { return fired_; }  ///< times the fault fired

 private:
  FaultSpec spec_;
  std::uint64_t seen_ = 0;
  std::uint64_t fired_ = 0;
};

namespace detail {
/// The thread's armed injector (nullptr = no fault). Inline so sites inline
/// the TLS load; function-local so it is initialised on any first use.
inline Injector*& current_slot() {
  static thread_local Injector* slot = nullptr;
  return slot;
}
}  // namespace detail

/// The injector armed on this thread, or nullptr.
inline Injector* current() { return detail::current_slot(); }

/// Arms `inj` on this thread for the Scope's lifetime; restores the previous
/// injector (scopes nest) on destruction.
class Scope {
 public:
  explicit Scope(Injector& inj) : prev_(detail::current_slot()) {
    detail::current_slot() = &inj;
  }
  ~Scope() { detail::current_slot() = prev_; }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Injector* prev_;
};

/// The site predicate: true when this visit to a `site` of kind `k` should
/// perturb state. A single null test when no fault is armed.
inline bool at(Kind k) {
  Injector* inj = current();
  return inj != nullptr && inj->should_fire(k);
}

/// Throws FaultError (transient=false) or TransientError (transient=true)
/// with a message naming the armed spec.
[[noreturn]] void throw_synthetic(bool transient);

/// Sleeps for the armed spec's stall_ms in 1 ms slices, polling cooperative
/// cancellation (common/cancel.h) between slices so a sweep watchdog can cut
/// the stall short.
void stall();

/// Hard process kill (as from SIGKILL / the OOM killer): exits immediately
/// with status 137, no unwinding, no atexit, no stream flushes. Buffered
/// output is lost exactly as a real kill would lose it — the scenario the
/// checkpoint/restore machinery must survive.
[[noreturn]] void kill_process();

/// Applies the armed checkpoint-payload faults to `bytes` in place before it
/// is written: CkptCorrupt XOR-flips one bit of one byte (chosen from the
/// spec's seed, reduced modulo the payload size); CkptTruncate drops the
/// trailing half (at least one byte). No-op when neither fault is armed.
/// Returns true if the payload was perturbed.
bool perturb_checkpoint_bytes(std::string& bytes);

}  // namespace h2::fault
