// Differential oracle for the hybrid-memory mechanism.
//
// The full simulator is event-driven and timing-sensitive: a double-counted
// bus slot or an aliased remap entry shifts IPC by a few percent — the same
// magnitude as the paper's headline wins — without crashing anything. The
// oracle replays the exact same access sequence through (a) the full
// MemorySystem + HybridMemory stack and (b) an independent, non-event-driven
// reference model of the residency state (flat latency, exact per-request
// ordering, its own policy instance), then diffs *conserved quantities*
// rather than timing:
//   - per-requestor demand/hit/miss/migration/bypass/writeback counters,
//   - per-channel request counts in both tiers (including metadata fills),
//   - the final remapped-set residency (set, tag, channel, dirty).
//
// Both sides are driven with a flat synthetic clock (fixed cycle gap), so
// policy decisions that read `now` (token faucets) are bit-identical; any
// divergence is therefore a real accounting bug in the mechanism, not a
// modelling difference.
//
// Supported designs: "baseline", "hydrogen-setpart", "hashcache" (chained
// pseudo-associative lookup and insertion, reuse-filtered migration) and
// "hydrogen" (dedicated-way partitioning, token-gated migration, CPU-spill
// swaps). Between them they cover identity and non-identity set remapping,
// chaining, swaps, and stateful migration gating; only epoch reconfiguration
// (the lazy-fixup machinery) is out of scope, because no epochs are driven.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace h2 {

struct OracleConfig {
  std::string cpu_workload = "gcc";
  std::string gpu_workload = "backprop";
  /// "baseline", "hydrogen-setpart", "hashcache" or "hydrogen".
  std::string design = "baseline";
  u64 accesses = 120'000;           ///< interleaved CPU+GPU demand accesses
  u64 seed = 42;
  Cycle cycle_gap = 5;              ///< flat synthetic clock step per access
  u64 footprint_div = 8;            ///< workload footprint scale-down
};

struct OracleReport {
  std::string cpu_workload;
  std::string design;
  u64 accesses = 0;
  u64 quantities = 0;               ///< conserved quantities compared
  std::vector<std::string> diffs;   ///< human-readable mismatches (empty = ok)
  bool ok() const { return diffs.empty(); }
};

/// Runs the differential replay. Throws std::invalid_argument for unknown
/// design names (unknown workload names abort inside the workload table).
OracleReport run_oracle(const OracleConfig& cfg);

}  // namespace h2
