// Differential oracle for the hybrid-memory mechanism.
//
// The full simulator is event-driven and timing-sensitive: a double-counted
// bus slot or an aliased remap entry shifts IPC by a few percent — the same
// magnitude as the paper's headline wins — without crashing anything. The
// oracle replays the exact same access sequence through (a) the full
// MemorySystem + HybridMemory stack and (b) an independent, non-event-driven
// reference model of the residency state (flat latency, exact per-request
// ordering, its own policy instance), then diffs *conserved quantities*
// rather than timing:
//   - per-requestor demand/hit/miss/migration/bypass/writeback counters,
//     including the lazy-reconfiguration counters (lazy_invalidations and
//     lazy_moves),
//   - per-channel request counts in both tiers (including metadata fills),
//   - per-channel backend command conservation after a drain: issued ==
//     completed (row hits + misses, no pending posted writes), the
//     activation/precharge pairing law (activations == precharges +
//     open banks) and refresh windows == the arithmetic expectation for the
//     final clock — these hold for BOTH backends, so `backend` selects which
//     timing model the full side runs without changing any expected count,
//   - the final remapped-set residency (set, tag, channel, dirty),
//   - with epochs > 0: a per-epoch residency snapshot, a remap-bijection
//     scan of both tables after every reconfiguration, and (for hydrogen)
//     agreement on the active parameter point.
//
// Both sides are driven with a flat synthetic clock (fixed cycle gap), so
// policy decisions that read `now` (token faucets) are bit-identical; any
// divergence is therefore a real accounting bug in the mechanism, not a
// modelling difference.
//
// Epoch-driven replay: with `epochs` > 0 the replay is cut into epochs + 1
// equal slices and, at each boundary, both sides receive the *same*
// synthesized EpochFeedback (their policies — hill climbers, token-budget
// resizing — therefore make bit-identical decisions) followed by the same
// scripted ScheduleStep (check/epoch_schedule.h). Partition changes are
// deliberately left to the lazy path: the reference model mirrors the full
// lazy-reconfiguration semantics — the per-way side assignment (`alloc`
// bit), deferred invalidation of misplaced blocks (dirty data written back
// first) and deferred channel moves on next touch — so the machinery the
// paper's Section IV-D describes finally has an independent reference.
//
// Supported designs: "baseline", "waypart" (coupled static way partition),
// "hydrogen-setpart" (page-coloured set partition), "hashcache" (chained
// pseudo-associative lookup and insertion), "profess" (probabilistic
// migration gating with a seeded RNG — both sides draw the identical
// sequence), "hydrogen" (dedicated-way partitioning, token-gated
// migration, CPU-spill swaps) and "integrated" (coherent-NUMA flat mode:
// first-touch placement, counter-threshold block swaps — the only design
// exercising the flat-mode mechanism paths, with extra conserved quantities:
// migrations_up/migrations_down/migration_bytes, the byte-accounting law
// bytes == pages-moved x page-size, entry-by-entry equality of the two
// policies' page-stats counter tables, and the table's population identity).
// Between them they cover identity and non-identity set remapping, chaining,
// swaps, stateful migration gating, flat-mode first touch and threshold
// migration, and — under an epoch schedule — every lazy-fixup flavour
// (hashcache's constant owner function doubles as the control: its epochs
// must produce no fixups at all).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "mem/channel.h"

namespace h2 {

struct OracleConfig {
  std::string cpu_workload = "gcc";
  std::string gpu_workload = "backprop";
  /// "baseline", "waypart", "hydrogen-setpart", "hashcache", "profess",
  /// "hydrogen" or "integrated".
  std::string design = "baseline";
  /// Timing backend the full side's channels run. The reference model is
  /// timing-free, so every conserved count must agree under either backend.
  ChannelBackendKind backend = ChannelBackendKind::Fast;
  u64 accesses = 120'000;           ///< interleaved CPU+GPU demand accesses
  u64 seed = 42;
  Cycle cycle_gap = 5;              ///< flat synthetic clock step per access
  u64 footprint_div = 8;            ///< workload footprint scale-down
  /// Epoch boundaries to drive through the replay (0 = stable partition,
  /// the historical epoch-free mode). Boundary i applies schedule op
  /// i mod len to both sides after delivering identical EpochFeedback.
  u64 epochs = 0;
  /// Schedule text (check/epoch_schedule.h grammar). Empty with epochs > 0
  /// selects the default oscillation "shrink,bw+,grow,bw-", which exercises
  /// both lazy flavours (invalidations and moves) and returns to the initial
  /// partition every four epochs.
  std::string schedule;
  /// Epoch boundary index at which the full side is serialised to an
  /// in-memory checkpoint, destroyed, rebuilt from configuration and loaded
  /// back, with the reference model untouched — so the downstream conserved
  /// quantities prove the checkpoint/restore seam loses nothing. -1 = never;
  /// must be < epochs to actually fire.
  i64 restore_at_epoch = -1;
  /// Shard the replay (h2check --shards): the SAME materialised access
  /// stream is split page-granularly across `shards` independent
  /// (full stack, reference model) pairs by a ShardRouter, mirroring how the
  /// ShardGroup harness partitions the address space. Per-shard conserved
  /// quantities are diffed with an "s<i> " label prefix, and the per-class
  /// demand totals must re-sum to the stream composition — a quantity that
  /// is independent of the shard count, which is exactly what CI diffs
  /// between --shards N and --shards 1.
  u32 shards = 1;
};

struct OracleReport {
  std::string cpu_workload;
  std::string design;
  ChannelBackendKind backend = ChannelBackendKind::Fast;
  u64 accesses = 0;
  u32 shards = 1;                   ///< replay pairs the stream was split across
  u64 epochs = 0;                   ///< epoch boundaries actually driven (max over shards)
  u64 quantities = 0;               ///< conserved quantities compared
  /// Global per-class demand, summed over every shard's full side. Equals
  /// the stream composition whatever the shard count — the conserved summary
  /// h2check prints and CI compares across --shards values.
  u64 cpu_demand = 0;
  u64 gpu_demand = 0;
  std::vector<std::string> diffs;   ///< human-readable mismatches (empty = ok)
  bool ok() const { return diffs.empty(); }
};

/// Runs the differential replay. Throws std::invalid_argument for unknown
/// design names or malformed schedules (unknown workload names abort inside
/// the workload table).
OracleReport run_oracle(const OracleConfig& cfg);

}  // namespace h2
