#include "check/oracle.h"

#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <tuple>

#include "common/rng.h"
#include "harness/config_loader.h"
#include "harness/sim_system.h"
#include "hybridmem/hybrid_memory.h"
#include "hybridmem/remap_cache.h"
#include "hybridmem/remap_table.h"
#include "hydrogen/hydrogen_policy.h"
#include "hydrogen/setpart_policy.h"
#include "trace/workloads.h"

namespace h2 {

namespace {

constexpr u32 kLineBytes = 64;

/// One pre-materialised demand access, fed identically to both sides.
struct Step {
  Cycle now;
  Addr addr;
  Requestor cls;
  bool write;
};

/// Builds a policy through the harness-wide factory (harness/sim_system.h),
/// so the oracle exercises the exact wiring the simulator uses. Epoch-free
/// replay: the climber and token faucet run on their defaults and never
/// reconfigure (run_oracle drives no epochs), so the partition is stable
/// while swaps and token-gated migrations stay live. The oracle supports a
/// subset of the designs (the ones whose mechanism paths RefModel mirrors),
/// validated here before design_from_name, which aborts on unknown names.
std::unique_ptr<PartitionPolicy> oracle_policy(const std::string& design, u64 seed) {
  if (design != "baseline" && design != "hashcache" && design != "hydrogen" &&
      design != "hydrogen-setpart") {
    throw std::invalid_argument(
        "oracle: unknown design '" + design +
        "' (expected baseline, hashcache, hydrogen or hydrogen-setpart)");
  }
  DesignSpec spec = design_from_name(design);
  spec.hydrogen.seed = seed;
  return make_policy(spec);
}

/// The reference model: a plain functional replica of the cache-mode
/// residency/accounting state machine, with no event engine, no cursors and
/// no latency model. It owns its own policy, remap-table and remap-cache
/// instances so a state leak in the full stack cannot hide by being
/// mirrored. Policies are stateful (token buckets, reuse filters, swap
/// heuristics reading the attached table), so the model makes *exactly* the
/// same policy calls in the same order as HybridMemory::access does.
///
/// Scope: no epoch reconfiguration is driven, so the lazy-fixup machinery is
/// a structural no-op and is not mirrored.
class RefModel {
 public:
  RefModel(const HybridMemConfig& cfg, u32 n_super, u32 n_slow, u64 slow_block,
           std::unique_ptr<PartitionPolicy> policy)
      : cfg_(cfg),
        n_super_(n_super),
        slow_block_(slow_block),
        policy_(std::move(policy)),
        rcache_(cfg.remap_cache_bytes, cfg.assoc * 8),
        table_(cfg.num_sets(), cfg.assoc),
        fast_reqs_(n_super, 0),
        slow_reqs_(n_slow, 0) {
    policy_->bind(n_super, cfg.assoc, cfg.num_sets());
    policy_->attach_table(&table_);
  }

  struct SideStats {
    u64 demand = 0, fast_hits = 0, chain_hits = 0, misses = 0, migrations = 0,
        bypasses = 0, dirty_writebacks = 0, fast_swaps = 0, meta_misses = 0;
  };

  void access(const Step& s) {
    policy_->tick(s.now);
    const u64 tag = s.addr / cfg_.block_bytes;
    const u32 home = policy_->remap_set(
        static_cast<u32>(tag % cfg_.num_sets()), s.cls);
    SideStats& st = stats_[static_cast<u32>(s.cls)];
    st.demand++;

    // Metadata probe on the *home* set (chained probes reuse the fetched
    // entry): a remap-cache miss costs one 64 B fast-tier read.
    if (!rcache_.probe(home)) {
      st.meta_misses++;
      fast_reqs_[home % n_super_]++;
    }

    i32 way = table_.find(home, tag);
    bool chained = false;
    u32 eff_set = home;
    if (way < 0 && cfg_.chaining) {
      const u32 partner = home ^ 1u;
      if (partner < table_.num_sets()) {
        const i32 cw = table_.find(partner, tag);
        if (cw >= 0) {
          way = cw;
          eff_set = partner;
          chained = true;
        }
      }
    }

    PolicyContext ctx{s.now, s.cls, home, tag, s.write,
                      static_cast<u32>((s.addr / slow_block_) % slow_reqs_.size())};
    if (way >= 0) {
      ctx.set = eff_set;  // hits are served at the effective (chained) set
      serve_hit(ctx, static_cast<u32>(way), chained);
      return;
    }
    serve_miss(ctx);
  }

  const SideStats& stats(Requestor r) const { return stats_[static_cast<u32>(r)]; }
  u64 fast_reqs(u32 ch) const { return fast_reqs_[ch]; }
  u64 slow_reqs(u32 ch) const { return slow_reqs_[ch]; }
  const RemapTable& table() const { return table_; }

 private:
  u32 full_mask() const {
    const u32 n = static_cast<u32>(cfg_.block_bytes / 64);
    return n >= 32 ? ~0u : (1u << n) - 1;
  }

  /// Mirrors HybridMemory::pick_victim: first invalid allowed way, else the
  /// LRU allowed way.
  i32 pick_victim(u32 set, Requestor cls) const {
    i32 best = -1;
    u64 best_lru = ~0ull;
    for (u32 w = 0; w < cfg_.assoc; ++w) {
      if (!policy_->way_allowed(set, w, cls)) continue;
      const RemapWay& rw = table_.way(set, w);
      if (!rw.valid) return static_cast<i32>(w);
      if (rw.lru < best_lru) {
        best_lru = rw.lru;
        best = static_cast<i32>(w);
      }
    }
    return best;
  }

  /// Mirrors HybridMemory::fill_way (sans fault sites).
  void fill_way(u32 set, u32 way, u64 tag, bool dirty) {
    RemapWay& rw = table_.way(set, way);
    rw.tag = tag;
    rw.hits = 0;
    rw.valid = true;
    rw.dirty = dirty;
    rw.present = full_mask();
    rw.channel = static_cast<u8>(policy_->channel_of_way(set, way));
    rw.owner_cpu = policy_->way_owner(set, way) == Requestor::Cpu;
    table_.touch(set, way);
  }

  /// Mirrors HybridMemory::do_fast_swap: two reads + two writes on the
  /// *pre-swap* channels, block state (not recency) swapped, channels
  /// reattached to the ways.
  void do_swap(const PolicyContext& ctx, u32 set, u32 way_a, u32 way_b) {
    RemapWay& a = table_.way(set, way_a);
    RemapWay& b = table_.way(set, way_b);
    if (!cfg_.ideal_swap) {
      fast_reqs_[a.channel] += 2;
      fast_reqs_[b.channel] += 2;
    }
    std::swap(a.tag, b.tag);
    std::swap(a.valid, b.valid);
    std::swap(a.dirty, b.dirty);
    std::swap(a.hits, b.hits);
    std::swap(a.present, b.present);
    a.channel = static_cast<u8>(policy_->channel_of_way(set, way_a));
    b.channel = static_cast<u8>(policy_->channel_of_way(set, way_b));
    stats_[static_cast<u32>(ctx.cls)].fast_swaps++;
  }

  void serve_hit(const PolicyContext& ctx, u32 way, bool chained) {
    SideStats& st = stats_[static_cast<u32>(ctx.cls)];
    st.fast_hits++;
    if (chained) st.chain_hits++;
    RemapWay& rw = table_.way(ctx.set, way);
    fast_reqs_[rw.channel]++;  // 64 B demand line
    if (ctx.is_write) rw.dirty = true;
    if (rw.hits < 0xFFFF) rw.hits++;
    table_.touch(ctx.set, way);
    policy_->note_hit(ctx, way);
    const i32 swap_with = policy_->pick_swap_way(ctx, way);
    if (swap_with >= 0 && static_cast<u32>(swap_with) != way) {
      do_swap(ctx, ctx.set, way, static_cast<u32>(swap_with));
    }
  }

  void serve_miss(const PolicyContext& ctx) {
    SideStats& st = stats_[static_cast<u32>(ctx.cls)];
    st.misses++;

    // Chaining insertion: fill into the partner set when the home victim is
    // hotter than the partner's (HAShCache pseudo-associativity).
    u32 fill_set = ctx.set;
    if (cfg_.chaining) {
      const u32 partner = ctx.set ^ 1u;
      if (partner < table_.num_sets()) {
        const i32 home_v = pick_victim(ctx.set, ctx.cls);
        const i32 alt_v = pick_victim(partner, ctx.cls);
        if (home_v >= 0 && alt_v >= 0) {
          const RemapWay& h = table_.way(ctx.set, static_cast<u32>(home_v));
          const RemapWay& a = table_.way(partner, static_cast<u32>(alt_v));
          if (h.valid && (!a.valid || a.lru < h.lru)) fill_set = partner;
        }
      }
    }

    const i32 victim = pick_victim(fill_set, ctx.cls);
    bool victim_dirty = false;
    if (victim >= 0) {
      const RemapWay& rw = table_.way(fill_set, static_cast<u32>(victim));
      victim_dirty = rw.valid && rw.dirty;
    }
    // allow_migration / note_miss see the *home*-set context, exactly as in
    // HybridMemory::serve_miss_cache (and both are stateful).
    const bool migrate = victim >= 0 && policy_->allow_migration(ctx, victim_dirty);
    policy_->note_miss(ctx, migrate);

    if (!migrate) {
      st.bypasses++;
      slow_reqs_[ctx.slow_channel]++;  // 64 B demand line from the slow tier
      return;
    }

    st.migrations++;
    const Addr block_addr = ctx.tag * cfg_.block_bytes;
    slow_reqs_[static_cast<u32>((block_addr / slow_block_) % slow_reqs_.size())]++;
    RemapWay& rw = table_.way(fill_set, static_cast<u32>(victim));
    if (rw.valid && rw.dirty) {
      const Addr wb = rw.tag * cfg_.block_bytes;
      slow_reqs_[static_cast<u32>((wb / slow_block_) % slow_reqs_.size())]++;
      st.dirty_writebacks++;
    }
    const u32 vway = static_cast<u32>(victim);
    fast_reqs_[policy_->channel_of_way(fill_set, vway)]++;  // block fill write
    fill_way(fill_set, vway, ctx.tag, ctx.is_write);
  }

  HybridMemConfig cfg_;
  u32 n_super_;
  u64 slow_block_;
  std::unique_ptr<PartitionPolicy> policy_;
  RemapCache rcache_;
  RemapTable table_;
  std::vector<u64> fast_reqs_;
  std::vector<u64> slow_reqs_;
  SideStats stats_[2];
};

std::map<std::pair<u32, u64>, std::pair<u32, bool>> table_residency(
    const RemapTable& t) {
  std::map<std::pair<u32, u64>, std::pair<u32, bool>> r;
  for (u32 set = 0; set < t.num_sets(); ++set) {
    for (u32 w = 0; w < t.assoc(); ++w) {
      const RemapWay& rw = t.way(set, w);
      if (rw.valid) r[{set, rw.tag}] = {rw.channel, rw.dirty};
    }
  }
  return r;
}

}  // namespace

OracleReport run_oracle(const OracleConfig& ocfg) {
  OracleReport report;
  report.cpu_workload = ocfg.cpu_workload;
  report.design = ocfg.design;
  report.accesses = ocfg.accesses;

  // Geometry: a scaled-down two-tier system, small enough that the replay
  // churns the fast tier (misses, migrations, writebacks all exercised).
  MemSystemConfig mem_cfg = MemSystemConfig::table1_default();
  HybridMemConfig hm_cfg;
  hm_cfg.mode = HybridMode::Cache;
  hm_cfg.fast_capacity_bytes = 8ull << 20;
  hm_cfg.remap_cache_bytes = 64 * 1024;
  if (ocfg.design == "hashcache") {
    // HAShCache's native organisation (see harness/sim_system.cpp).
    hm_cfg.assoc = 1;
    hm_cfg.chaining = true;
  }

  MemorySystem mem(mem_cfg);
  auto sim_policy = oracle_policy(ocfg.design, ocfg.seed);
  auto ref_policy = oracle_policy(ocfg.design, ocfg.seed);
  HybridMemory hm(hm_cfg, &mem, sim_policy.get());
  RefModel ref(hm_cfg, mem.num_fast_superchannels(), mem.num_slow_channels(),
               mem_cfg.block_bytes, std::move(ref_policy));

  // Materialise one interleaved access sequence and feed it, bit-identically,
  // to both sides. The GPU side is twice as intense as the CPU side, matching
  // the bandwidth asymmetry the designs exist to manage.
  const WorkloadSpec cpu_spec = with_scaled_footprint(
      cpu_workload_spec(ocfg.cpu_workload), 1, ocfg.footprint_div);
  const WorkloadSpec gpu_spec = with_scaled_footprint(
      gpu_workload_spec(ocfg.gpu_workload), 1, ocfg.footprint_div);
  SyntheticGenerator cpu_gen(cpu_spec, mix_hash(ocfg.seed, 1));
  SyntheticGenerator gpu_gen(gpu_spec, mix_hash(ocfg.seed, 2));
  const Addr gpu_base = ((cpu_spec.footprint_bytes / hm_cfg.block_bytes) + 1) *
                        hm_cfg.block_bytes;

  std::vector<Step> steps;
  steps.reserve(ocfg.accesses);
  Cycle now = 0;
  for (u64 i = 0; i < ocfg.accesses; ++i) {
    const bool cpu = (i % 3) == 0;
    const Access a = cpu ? cpu_gen.next() : gpu_gen.next();
    now += ocfg.cycle_gap;
    steps.push_back(Step{now, (cpu ? 0 : gpu_base) + a.addr,
                         cpu ? Requestor::Cpu : Requestor::Gpu, a.write});
  }

  const bool dbg = std::getenv("H2_ORACLE_DEBUG") != nullptr;
  for (size_t si = 0; si < steps.size(); ++si) {
    const Step& s = steps[si];
    hm.access(s.now, s.cls, s.addr, s.write);
    ref.access(s);
    if (dbg && table_residency(hm.table()) != table_residency(ref.table())) {
      const u64 tag = s.addr / hm_cfg.block_bytes;
      std::fprintf(stderr,
                   "first residency divergence at step %zu: %s %s addr=%llu "
                   "tag=%llu set=%llu\n",
                   si, s.cls == Requestor::Cpu ? "cpu" : "gpu",
                   s.write ? "write" : "read",
                   static_cast<unsigned long long>(s.addr),
                   static_cast<unsigned long long>(tag),
                   static_cast<unsigned long long>(tag % hm_cfg.num_sets()));
      const auto sr = table_residency(hm.table());
      const auto rr = table_residency(ref.table());
      for (const auto& [key, val] : sr) {
        const auto it = rr.find(key);
        if (it == rr.end() || it->second != val) {
          std::fprintf(stderr, "  sim set %u tag %llu ch=%u dirty=%d\n", key.first,
                       static_cast<unsigned long long>(key.second), val.first,
                       static_cast<int>(val.second));
        }
      }
      for (const auto& [key, val] : rr) {
        const auto it = sr.find(key);
        if (it == sr.end() || it->second != val) {
          std::fprintf(stderr, "  ref set %u tag %llu ch=%u dirty=%d\n", key.first,
                       static_cast<unsigned long long>(key.second), val.first,
                       static_cast<int>(val.second));
        }
      }
      break;
    }
  }

  auto diff_u64 = [&report](const std::string& what, u64 sim, u64 oracle) {
    report.quantities++;
    if (sim != oracle) {
      char buf[256];
      std::snprintf(buf, sizeof(buf), "%s: simulator=%llu oracle=%llu",
                    what.c_str(), static_cast<unsigned long long>(sim),
                    static_cast<unsigned long long>(oracle));
      report.diffs.push_back(buf);
    }
  };

  for (u32 i = 0; i < 2; ++i) {
    const Requestor r = static_cast<Requestor>(i);
    const HybridStats& s = hm.stats(r);
    const RefModel::SideStats& o = ref.stats(r);
    const std::string who = i == 0 ? "cpu" : "gpu";
    diff_u64(who + " demand", s.demand, o.demand);
    diff_u64(who + " fast_hits", s.fast_hits, o.fast_hits);
    diff_u64(who + " chain_hits", s.chain_hits, o.chain_hits);
    diff_u64(who + " misses", s.misses, o.misses);
    diff_u64(who + " migrations", s.migrations, o.migrations);
    diff_u64(who + " bypasses", s.bypasses, o.bypasses);
    diff_u64(who + " dirty_writebacks", s.dirty_writebacks, o.dirty_writebacks);
    diff_u64(who + " fast_swaps", s.fast_swaps, o.fast_swaps);
    diff_u64(who + " meta_misses", s.meta_misses, o.meta_misses);
  }

  for (u32 ch = 0; ch < mem.num_fast_superchannels(); ++ch) {
    diff_u64("fast channel " + std::to_string(ch) + " requests",
             mem.issued_fast(ch), ref.fast_reqs(ch));
  }
  for (u32 ch = 0; ch < mem.num_slow_channels(); ++ch) {
    diff_u64("slow channel " + std::to_string(ch) + " requests",
             mem.issued_slow(ch), ref.slow_reqs(ch));
  }

  // Final residency membership: every (set, tag) must agree on presence,
  // physical channel and dirty state.
  const auto sim_res = table_residency(hm.table());
  const auto ref_res = table_residency(ref.table());
  report.quantities++;
  if (sim_res != ref_res) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "final residency differs: simulator holds %zu blocks, "
                  "oracle holds %zu",
                  sim_res.size(), ref_res.size());
    report.diffs.push_back(buf);
    u32 shown = 0;
    for (const auto& [key, val] : sim_res) {
      const auto it = ref_res.find(key);
      if (it != ref_res.end() && it->second == val) continue;
      if (shown++ >= 5) break;
      std::snprintf(buf, sizeof(buf),
                    "  set %u tag %llu: simulator (ch=%u dirty=%d) vs %s", key.first,
                    static_cast<unsigned long long>(key.second), val.first,
                    static_cast<int>(val.second),
                    it == ref_res.end() ? "absent in oracle" : "different in oracle");
      report.diffs.push_back(buf);
    }
  }

  // End-of-replay invariant audits on the full side (active at check >= 2).
  hm.audit(now, "oracle replay");
  mem.audit(now);

  return report;
}

}  // namespace h2
