#include "check/oracle.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <tuple>

#include "check/epoch_schedule.h"
#include "common/ckpt_io.h"
#include "common/rng.h"
#include "harness/config_loader.h"
#include "harness/shard_router.h"
#include "harness/sim_system.h"
#include "hybridmem/hybrid_memory.h"
#include "hybridmem/remap_cache.h"
#include "hybridmem/remap_table.h"
#include "hydrogen/hydrogen_policy.h"
#include "hydrogen/setpart_policy.h"
#include "policies/integrated.h"
#include "trace/workloads.h"

namespace h2 {

namespace {

constexpr u32 kLineBytes = 64;

/// The default epoch schedule: oscillates capacity (lazy invalidations) and
/// bandwidth (lazy moves), returning to the initial partition every 4 epochs.
constexpr const char* kDefaultSchedule = "shrink,bw+,grow,bw-";

/// One pre-materialised demand access, fed identically to both sides.
struct Step {
  Cycle now;
  Addr addr;
  Requestor cls;
  bool write;
};

/// Builds a policy through the harness-wide factory (harness/sim_system.h),
/// so the oracle exercises the exact wiring the simulator uses. Without
/// epochs the climber and token faucet run on their defaults and never
/// reconfigure; with epochs > 0, run_oracle feeds both sides identical
/// EpochFeedback and scripted schedule steps, so the partitions move in
/// lockstep and the lazy-fixup machinery goes live. The oracle supports a
/// subset of the designs (the ones whose mechanism paths RefModel mirrors),
/// validated here before design_from_name, which aborts on unknown names.
std::unique_ptr<PartitionPolicy> oracle_policy(const std::string& design, u64 seed) {
  if (design != "baseline" && design != "waypart" && design != "hashcache" &&
      design != "profess" && design != "hydrogen" &&
      design != "hydrogen-setpart" && design != "integrated") {
    throw std::invalid_argument(
        "oracle: unknown design '" + design +
        "' (expected baseline, waypart, hashcache, profess, hydrogen, "
        "hydrogen-setpart or integrated)");
  }
  DesignSpec spec = design_from_name(design);
  spec.hydrogen.seed = seed;
  return make_policy(spec);
}

/// The reference model: a plain functional replica of the cache-mode
/// residency/accounting state machine, with no event engine, no cursors and
/// no latency model. It owns its own policy, remap-table and remap-cache
/// instances so a state leak in the full stack cannot hide by being
/// mirrored. Policies are stateful (token buckets, reuse filters, swap
/// heuristics reading the attached table), so the model makes *exactly* the
/// same policy calls in the same order as HybridMemory::access does — and,
/// since the epoch-driven extension, mirrors the full lazy-reconfiguration
/// semantics: the per-way alloc bit, deferred invalidation of misplaced
/// blocks (dirty data written back first) and deferred channel moves.
class RefModel {
 public:
  RefModel(const HybridMemConfig& cfg, u32 n_super, u32 n_slow, u64 slow_block,
           std::unique_ptr<PartitionPolicy> policy)
      : cfg_(cfg),
        n_super_(n_super),
        slow_block_(slow_block),
        policy_(std::move(policy)),
        rcache_(cfg.remap_cache_bytes, cfg.assoc * 8),
        table_(cfg.num_sets(), cfg.assoc),
        fast_reqs_(n_super, 0),
        slow_reqs_(n_slow, 0) {
    policy_->bind(n_super, cfg.assoc, cfg.num_sets());
    policy_->attach_table(&table_);
  }

  struct SideStats {
    u64 demand = 0, fast_hits = 0, chain_hits = 0, misses = 0, migrations = 0,
        bypasses = 0, first_touches = 0, dirty_writebacks = 0, fast_swaps = 0,
        meta_misses = 0, lazy_invalidations = 0, lazy_moves = 0,
        flush_invalidations = 0;
  };

  void access(const Step& s) {
    policy_->tick(s.now);
    const u64 tag = s.addr / cfg_.block_bytes;
    const u32 home = policy_->remap_set(
        static_cast<u32>(tag % cfg_.num_sets()), s.cls);
    SideStats& st = stats_[static_cast<u32>(s.cls)];
    st.demand++;

    // Metadata probe on the *home* set (chained probes reuse the fetched
    // entry): a remap-cache miss costs one 64 B fast-tier read.
    if (!rcache_.probe(home)) {
      st.meta_misses++;
      fast_reqs_[home % n_super_]++;
    }

    i32 way = table_.find(home, tag);
    bool chained = false;
    u32 eff_set = home;
    if (way < 0 && cfg_.chaining) {
      const u32 partner = home ^ 1u;
      if (partner < table_.num_sets()) {
        const i32 cw = table_.find(partner, tag);
        if (cw >= 0) {
          way = cw;
          eff_set = partner;
          chained = true;
        }
      }
    }

    PolicyContext ctx{s.now, s.cls, home, tag, s.write,
                      static_cast<u32>((s.addr / slow_block_) % slow_reqs_.size())};
    if (way >= 0) {
      ctx.set = eff_set;  // hits are served at the effective (chained) set
      serve_hit(ctx, static_cast<u32>(way), chained);
      return;
    }
    if (cfg_.mode == HybridMode::Flat) {
      serve_miss_flat(ctx);
      return;
    }
    serve_miss(ctx);
  }

  /// Epoch boundary: the same feedback, then the same scripted step, that
  /// run_oracle delivers to the full side. Both policies are deterministic
  /// machines, so identical inputs give bit-identical partition decisions.
  void on_epoch(const EpochFeedback& fb, const ScheduleStep& step) {
    policy_->on_epoch(fb);
    if (apply_schedule_step(step, *policy_)) flush_stale_sets();
  }

  const SideStats& stats(Requestor r) const { return stats_[static_cast<u32>(r)]; }
  u64 fast_reqs(u32 ch) const { return fast_reqs_[ch]; }
  u64 slow_reqs(u32 ch) const { return slow_reqs_[ch]; }
  const RemapTable& table() const { return table_; }
  const PartitionPolicy& policy() const { return *policy_; }

 private:
  u32 full_mask() const {
    const u32 n = static_cast<u32>(cfg_.block_bytes / 64);
    return n >= 32 ? ~0u : (1u << n) - 1;
  }

  /// Mirrors HybridMemory::pick_victim: first invalid allowed way, else the
  /// LRU allowed way.
  i32 pick_victim(u32 set, Requestor cls) const {
    i32 best = -1;
    u64 best_lru = ~0ull;
    for (u32 w = 0; w < cfg_.assoc; ++w) {
      if (!policy_->way_allowed(set, w, cls)) continue;
      const auto rw = table_.way(set, w);
      if (!rw.valid) return static_cast<i32>(w);
      if (rw.lru < best_lru) {
        best_lru = rw.lru;
        best = static_cast<i32>(w);
      }
    }
    return best;
  }

  /// Mirrors HybridMemory::fill_way (sans fault sites).
  void fill_way(u32 set, u32 way, u64 tag, bool dirty) {
    auto rw = table_.way(set, way);
    rw.tag = tag;
    rw.hits = 0;
    rw.valid = true;
    rw.dirty = dirty;
    rw.present = full_mask();
    rw.channel = static_cast<u8>(policy_->channel_of_way(set, way));
    rw.owner_cpu = policy_->way_owner(set, way) == Requestor::Cpu;
    table_.touch(set, way);
  }

  /// Mirrors HybridMemory::do_fast_swap: two reads + two writes on the
  /// *pre-swap* channels, block state (not recency) swapped, channels and
  /// owner bits reattached to the ways.
  void do_swap(const PolicyContext& ctx, u32 set, u32 way_a, u32 way_b) {
    auto a = table_.way(set, way_a);
    auto b = table_.way(set, way_b);
    if (!cfg_.ideal_swap) {
      fast_reqs_[a.channel] += 2;
      fast_reqs_[b.channel] += 2;
    }
    std::swap(a.tag, b.tag);
    std::swap(a.valid, b.valid);
    std::swap(a.dirty, b.dirty);
    std::swap(a.hits, b.hits);
    std::swap(a.present, b.present);
    a.channel = static_cast<u8>(policy_->channel_of_way(set, way_a));
    b.channel = static_cast<u8>(policy_->channel_of_way(set, way_b));
    a.owner_cpu = policy_->way_owner(set, way_a) == Requestor::Cpu;
    b.owner_cpu = policy_->way_owner(set, way_b) == Requestor::Cpu;
    stats_[static_cast<u32>(ctx.cls)].fast_swaps++;
  }

  /// Mirrors HybridMemory::lazy_fixups (sans fault sites): a hit in a way
  /// whose recorded owner no longer matches the policy is invalidated after
  /// the access (dirty data written back to the slow tier first); same owner
  /// on a moved channel relocates lazily (one fast read + one fast write).
  /// Returns true when the entry was invalidated, in which case the caller
  /// serves the demand line from the slow tier.
  bool lazy_fixups(const PolicyContext& ctx, u32 way) {
    auto rw = table_.way(ctx.set, way);
    SideStats& st = stats_[static_cast<u32>(ctx.cls)];
    const bool want_cpu = policy_->way_owner(ctx.set, way) == Requestor::Cpu;
    if (rw.owner_cpu != want_cpu) {
      // Flat mode has no backing copy to fall back to, so a misplaced block
      // only has its owner bit repaired — it is never invalidated and dirty
      // data never moves (mirrors the mode gates in the full mechanism).
      if (rw.dirty && cfg_.mode == HybridMode::Cache) {
        const Addr wb = rw.tag * cfg_.block_bytes;
        slow_reqs_[static_cast<u32>((wb / slow_block_) % slow_reqs_.size())]++;
        st.dirty_writebacks++;
      }
      if (cfg_.mode == HybridMode::Cache) {
        rw.valid = false;
        rw.dirty = false;
        rw.tag = kInvalidTag;
      }
      rw.owner_cpu = want_cpu;
      st.lazy_invalidations++;
      return cfg_.mode == HybridMode::Cache;
    }
    const u8 want_ch = static_cast<u8>(policy_->channel_of_way(ctx.set, way));
    if (rw.channel != want_ch && rw.valid) {
      fast_reqs_[rw.channel]++;
      fast_reqs_[want_ch]++;
      rw.channel = want_ch;
      st.lazy_moves++;
    }
    return false;
  }

  /// Mirrors HybridMemory::flush_stale_sets: blocks stranded by a set
  /// repartition are unreachable and must be evicted eagerly (dirty data
  /// written back), unlike way-ownership changes which repair lazily.
  void flush_stale_sets() {
    if (cfg_.chaining) return;
    for (u32 set = 0; set < table_.num_sets(); ++set) {
      for (u32 w = 0; w < table_.assoc(); ++w) {
        auto rw = table_.way(set, w);
        if (!rw.valid) continue;
        const Requestor cls = rw.owner_cpu ? Requestor::Cpu : Requestor::Gpu;
        const u32 natural = static_cast<u32>(rw.tag % table_.num_sets());
        if (policy_->remap_set(natural, cls) == set) continue;
        SideStats& st = stats_[static_cast<u32>(cls)];
        if (rw.dirty) {
          const Addr wb = rw.tag * cfg_.block_bytes;
          slow_reqs_[static_cast<u32>((wb / slow_block_) % slow_reqs_.size())]++;
          st.dirty_writebacks++;
        }
        rw.valid = false;
        rw.dirty = false;
        rw.tag = kInvalidTag;
        st.flush_invalidations++;
      }
    }
  }

  void serve_hit(const PolicyContext& ctx, u32 way, bool chained) {
    SideStats& st = stats_[static_cast<u32>(ctx.cls)];
    st.fast_hits++;
    if (chained) st.chain_hits++;
    if (lazy_fixups(ctx, way)) {
      // The lazy fixup invalidated the block; the demand line falls back to
      // the slow tier (it will be re-migrated on a future miss).
      slow_reqs_[ctx.slow_channel]++;
      return;
    }
    auto rw = table_.way(ctx.set, way);
    fast_reqs_[rw.channel]++;  // 64 B demand line
    if (ctx.is_write) rw.dirty = true;
    if (rw.hits < 0xFFFF) rw.hits++;
    table_.touch(ctx.set, way);
    policy_->note_hit(ctx, way);
    const i32 swap_with = policy_->pick_swap_way(ctx, way);
    if (swap_with >= 0 && static_cast<u32>(swap_with) != way) {
      do_swap(ctx, ctx.set, way, static_cast<u32>(swap_with));
    }
  }

  void serve_miss(const PolicyContext& ctx) {
    SideStats& st = stats_[static_cast<u32>(ctx.cls)];
    st.misses++;

    // Chaining insertion: fill into the partner set when the home victim is
    // hotter than the partner's (HAShCache pseudo-associativity).
    u32 fill_set = ctx.set;
    if (cfg_.chaining) {
      const u32 partner = ctx.set ^ 1u;
      if (partner < table_.num_sets()) {
        const i32 home_v = pick_victim(ctx.set, ctx.cls);
        const i32 alt_v = pick_victim(partner, ctx.cls);
        if (home_v >= 0 && alt_v >= 0) {
          const auto h = table_.way(ctx.set, static_cast<u32>(home_v));
          const auto a = table_.way(partner, static_cast<u32>(alt_v));
          if (h.valid && (!a.valid || a.lru < h.lru)) fill_set = partner;
        }
      }
    }

    const i32 victim = pick_victim(fill_set, ctx.cls);
    bool victim_dirty = false;
    if (victim >= 0) {
      const auto rw = table_.way(fill_set, static_cast<u32>(victim));
      victim_dirty = rw.valid && rw.dirty;
    }
    // allow_migration / note_miss see the *home*-set context, exactly as in
    // HybridMemory::serve_miss_cache (and both are stateful).
    const bool migrate = victim >= 0 && policy_->allow_migration(ctx, victim_dirty);
    policy_->note_miss(ctx, migrate);

    if (!migrate) {
      st.bypasses++;
      slow_reqs_[ctx.slow_channel]++;  // 64 B demand line from the slow tier
      return;
    }

    st.migrations++;
    const Addr block_addr = ctx.tag * cfg_.block_bytes;
    slow_reqs_[static_cast<u32>((block_addr / slow_block_) % slow_reqs_.size())]++;
    auto rw = table_.way(fill_set, static_cast<u32>(victim));
    if (rw.valid && rw.dirty) {
      const Addr wb = rw.tag * cfg_.block_bytes;
      slow_reqs_[static_cast<u32>((wb / slow_block_) % slow_reqs_.size())]++;
      st.dirty_writebacks++;
    }
    const u32 vway = static_cast<u32>(victim);
    fast_reqs_[policy_->channel_of_way(fill_set, vway)]++;  // block fill write
    fill_way(fill_set, vway, ctx.tag, ctx.is_write);
  }

  /// Mirrors HybridMemory::serve_miss_flat: first-touch placement while the
  /// set still has invalid allowed ways, then a policy-gated block *swap*
  /// with the fast-tier victim — one block up, one block down, all four
  /// transfers charged to the channels they cross (paper Section IV-F).
  void serve_miss_flat(const PolicyContext& ctx) {
    SideStats& st = stats_[static_cast<u32>(ctx.cls)];
    st.misses++;

    const i32 victim = pick_victim(ctx.set, ctx.cls);
    if (victim >= 0 && !table_.way(ctx.set, static_cast<u32>(victim)).valid) {
      const u32 vway = static_cast<u32>(victim);
      fill_way(ctx.set, vway, ctx.tag, false);
      st.first_touches++;
      policy_->note_miss(ctx, true);
      fast_reqs_[table_.way(ctx.set, vway).channel]++;  // 64 B demand line
      return;
    }

    // Resident in the slow tier: the demand line is served from there.
    slow_reqs_[ctx.slow_channel]++;

    const bool migrate =
        victim >= 0 && policy_->allow_migration(ctx, /*victim_dirty=*/true);
    policy_->note_miss(ctx, migrate);
    if (!migrate) {
      st.bypasses++;
      return;
    }

    st.migrations++;
    const u32 vway = static_cast<u32>(victim);
    const auto rw = table_.way(ctx.set, vway);
    const Addr in_addr = ctx.tag * cfg_.block_bytes;
    const Addr out_addr = rw.tag * cfg_.block_bytes;
    slow_reqs_[static_cast<u32>((in_addr / slow_block_) % slow_reqs_.size())]++;
    fast_reqs_[rw.channel]++;
    fast_reqs_[policy_->channel_of_way(ctx.set, vway)]++;
    slow_reqs_[static_cast<u32>((out_addr / slow_block_) % slow_reqs_.size())]++;
    st.dirty_writebacks++;  // the displaced block always transfers out
    fill_way(ctx.set, vway, ctx.tag, false);
  }

  HybridMemConfig cfg_;
  u32 n_super_;
  u64 slow_block_;
  std::unique_ptr<PartitionPolicy> policy_;
  RemapCache rcache_;
  RemapTable table_;
  std::vector<u64> fast_reqs_;
  std::vector<u64> slow_reqs_;
  SideStats stats_[2];
};

std::map<std::pair<u32, u64>, std::pair<u32, bool>> table_residency(
    const RemapTable& t) {
  std::map<std::pair<u32, u64>, std::pair<u32, bool>> r;
  for (u32 set = 0; set < t.num_sets(); ++set) {
    for (u32 w = 0; w < t.assoc(); ++w) {
      const auto rw = t.way(set, w);
      if (rw.valid) r[{set, rw.tag}] = {rw.channel, rw.dirty};
    }
  }
  return r;
}

/// Remap bijection: no block may be resident in two ways at once. Returns
/// the duplicated tag, or kInvalidTag when the table is a bijection.
u64 first_duplicate_tag(const RemapTable& t) {
  std::set<u64> seen;
  for (u32 set = 0; set < t.num_sets(); ++set) {
    for (u32 w = 0; w < t.assoc(); ++w) {
      const auto rw = t.way(set, w);
      if (rw.valid && !seen.insert(rw.tag).second) return rw.tag;
    }
  }
  return kInvalidTag;
}

/// Replays one pre-materialised access stream through a fresh (full stack,
/// reference model) pair and diffs every conserved quantity into `report`,
/// labels prefixed with `prefix` ("s<i> " for shard substreams, "" for the
/// monolithic replay). Returns the number of epoch boundaries driven.
u64 replay_pair(const OracleConfig& ocfg, const std::vector<Step>& steps,
                const std::string& prefix, OracleReport& report) {
  auto diff_u64 = [&report, &prefix](const std::string& what, u64 sim, u64 oracle) {
    report.quantities++;
    if (sim != oracle) {
      char buf[256];
      std::snprintf(buf, sizeof(buf), "%s: simulator=%llu oracle=%llu",
                    (prefix + what).c_str(), static_cast<unsigned long long>(sim),
                    static_cast<unsigned long long>(oracle));
      report.diffs.push_back(buf);
    }
  };

  // Geometry: a scaled-down two-tier system, small enough that the replay
  // churns the fast tier (misses, migrations, writebacks all exercised).
  MemSystemConfig mem_cfg = MemSystemConfig::table1_default();
  mem_cfg.backend = ocfg.backend;
  HybridMemConfig hm_cfg;
  hm_cfg.mode = HybridMode::Cache;
  hm_cfg.fast_capacity_bytes = 8ull << 20;
  hm_cfg.remap_cache_bytes = 64 * 1024;
  if (ocfg.design == "hashcache") {
    // HAShCache's native organisation (see harness/sim_system.cpp).
    hm_cfg.assoc = 1;
    hm_cfg.chaining = true;
  }
  if (ocfg.design == "integrated") {
    // Coherent-NUMA flat space: no cache organisation (see SimSystem::build).
    // The fast tier is shrunk so it fills within even a --quick replay —
    // otherwise every miss is a first touch and the migration conservation
    // laws (and the migrate-lost fault site) are only exercised vacuously.
    hm_cfg.mode = HybridMode::Flat;
    hm_cfg.fast_capacity_bytes = 1ull << 20;
  }

  // The full side lives on the heap so the restore_at_epoch boundary can
  // tear it down and rebuild it from configuration mid-replay.
  auto mem = std::make_unique<MemorySystem>(mem_cfg);
  auto sim_policy = oracle_policy(ocfg.design, ocfg.seed);
  auto ref_policy = oracle_policy(ocfg.design, ocfg.seed);
  auto hm = std::make_unique<HybridMemory>(hm_cfg, mem.get(), sim_policy.get());
  RefModel ref(hm_cfg, mem->num_fast_superchannels(), mem->num_slow_channels(),
               mem_cfg.block_bytes, std::move(ref_policy));

  // The scripted reconfiguration sequence (parsed up front so a malformed
  // schedule fails fast, before any simulation work).
  const EpochSchedule schedule = parse_schedule(
      ocfg.schedule.empty() ? kDefaultSchedule : ocfg.schedule);
  // Epoch boundaries slice *this* stream; for a shard substream the slices
  // are proportionally shorter, and both sides of the pair see the same cuts.
  const u64 epoch_steps =
      ocfg.epochs > 0 ? std::max<u64>(1, steps.size() / (ocfg.epochs + 1)) : 0;
  // The substream carries the original flat clock; drain and the refresh
  // expectation run against its final value.
  const Cycle end_clock = steps.empty() ? 0 : steps.back().now;

  // Cumulative-counter snapshots differenced into the synthesized
  // EpochFeedback (mirrors SimSystem::on_epoch_boundary's delta logic; the
  // instruction surrogate only feeds the policies' smoothed estimates, and
  // both sides receive the identical value).
  u64 prev_cpu_hits = 0, prev_gpu_hits = 0;
  u64 prev_cpu_miss = 0, prev_gpu_miss = 0, prev_gpu_migr = 0;
  u64 epoch_idx = 0;

  const bool dbg = std::getenv("H2_ORACLE_DEBUG") != nullptr;
  for (size_t si = 0; si < steps.size(); ++si) {
    const Step& s = steps[si];
    hm->access(s.now, s.cls, s.addr, s.write);
    ref.access(s);
    if (dbg && table_residency(hm->table()) != table_residency(ref.table())) {
      const u64 tag = s.addr / hm_cfg.block_bytes;
      std::fprintf(stderr,
                   "first residency divergence at step %zu (epoch %llu): %s %s "
                   "addr=%llu tag=%llu set=%llu\n",
                   si, static_cast<unsigned long long>(epoch_idx),
                   s.cls == Requestor::Cpu ? "cpu" : "gpu",
                   s.write ? "write" : "read",
                   static_cast<unsigned long long>(s.addr),
                   static_cast<unsigned long long>(tag),
                   static_cast<unsigned long long>(tag % hm_cfg.num_sets()));
      const auto sr = table_residency(hm->table());
      const auto rr = table_residency(ref.table());
      for (const auto& [key, val] : sr) {
        const auto it = rr.find(key);
        if (it == rr.end() || it->second != val) {
          std::fprintf(stderr, "  sim set %u tag %llu ch=%u dirty=%d\n", key.first,
                       static_cast<unsigned long long>(key.second), val.first,
                       static_cast<int>(val.second));
        }
      }
      for (const auto& [key, val] : rr) {
        const auto it = sr.find(key);
        if (it == sr.end() || it->second != val) {
          std::fprintf(stderr, "  ref set %u tag %llu ch=%u dirty=%d\n", key.first,
                       static_cast<unsigned long long>(key.second), val.first,
                       static_cast<int>(val.second));
        }
      }
      break;
    }

    // Epoch boundary: identical feedback, then the identical scripted step,
    // to both sides; then the per-epoch conserved quantities are diffed.
    if (epoch_steps > 0 && epoch_idx < ocfg.epochs &&
        si + 1 == (epoch_idx + 1) * epoch_steps) {
      const HybridStats& sc = hm->stats(Requestor::Cpu);
      const HybridStats& sg = hm->stats(Requestor::Gpu);
      EpochFeedback fb;
      fb.now = s.now + 1;  // strictly increasing, before the next access
      fb.epoch_cycles = epoch_steps * ocfg.cycle_gap;
      fb.cpu_instructions = (sc.fast_hits - prev_cpu_hits) * 4;
      fb.gpu_instructions = (sg.fast_hits - prev_gpu_hits) * 4;
      fb.weighted_ipc =
          (12.0 * static_cast<double>(fb.cpu_instructions) +
           static_cast<double>(fb.gpu_instructions)) /
          static_cast<double>(fb.epoch_cycles);
      fb.cpu_misses = sc.misses - prev_cpu_miss;
      fb.gpu_misses = sg.misses - prev_gpu_miss;
      fb.gpu_migrations = sg.migrations - prev_gpu_migr;
      prev_cpu_hits = sc.fast_hits;
      prev_gpu_hits = sg.fast_hits;
      prev_cpu_miss = sc.misses;
      prev_gpu_miss = sg.misses;
      prev_gpu_migr = sg.migrations;

      const ScheduleStep& op = schedule.at(epoch_idx);
      sim_policy->on_epoch(fb);
      if (apply_schedule_step(op, *sim_policy)) hm->flush_stale_sets(fb.now);
      ref.on_epoch(fb, op);

      const std::string tagp =
          prefix + "epoch " + std::to_string(epoch_idx) + " (" + to_string(op) + ") ";

      // Reconfiguration is lazy: the boundary itself moves no data, so the
      // residency snapshots must still agree — and each table must remain a
      // bijection after the partition change.
      report.quantities++;
      if (table_residency(hm->table()) != table_residency(ref.table())) {
        report.diffs.push_back(tagp + "residency snapshot differs");
      }
      report.quantities++;
      if (const u64 dup = first_duplicate_tag(hm->table()); dup != kInvalidTag) {
        report.diffs.push_back(tagp + "simulator remap not a bijection (tag " +
                               std::to_string(dup) + " resident twice)");
      }
      report.quantities++;
      if (const u64 dup = first_duplicate_tag(ref.table()); dup != kInvalidTag) {
        report.diffs.push_back(tagp + "oracle remap not a bijection (tag " +
                               std::to_string(dup) + " resident twice)");
      }
      if (ocfg.design == "hydrogen") {
        const auto& sp = static_cast<const HydrogenPolicy&>(*sim_policy);
        const auto& rp = static_cast<const HydrogenPolicy&>(ref.policy());
        report.quantities++;
        if (!(sp.active_point() == rp.active_point())) {
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "%sactive point differs: simulator (%u,%u,%u) vs "
                        "oracle (%u,%u,%u)",
                        tagp.c_str(), sp.active_point().cap,
                        sp.active_point().bw, sp.active_point().tok,
                        rp.active_point().cap, rp.active_point().bw,
                        rp.active_point().tok);
          report.diffs.push_back(buf);
        }
      }
      if (ocfg.design == "integrated") {
        // The integrated design's schedule-steppable knobs and its counter
        // table must track in lockstep — the per-epoch table-identity check
        // is what catches a counter that sticks on only one side.
        const std::string ep =
            "epoch " + std::to_string(epoch_idx) + " (" + to_string(op) + ") ";
        const auto& sp = static_cast<const IntegratedPolicy&>(*sim_policy);
        const auto& rp = static_cast<const IntegratedPolicy&>(ref.policy());
        diff_u64(ep + "threshold", sp.threshold(), rp.threshold());
        diff_u64(ep + "cooldown", sp.cooldown(), rp.cooldown());
        report.quantities++;
        if (!(sp.stats() == rp.stats())) {
          report.diffs.push_back(tagp + "page-stats counter table differs");
        }
      }

      // Checkpoint/restore boundary: serialise the full side to an in-memory
      // checkpoint, destroy it, rebuild it from configuration alone and load
      // the snapshot back. The reference model is untouched, so every
      // conserved quantity diffed from here on also proves the checkpoint
      // seam loses nothing — independently of the harness's own
      // restore-equality tests.
      if (static_cast<i64>(epoch_idx) == ocfg.restore_at_epoch) {
        ckpt::CkptWriter w;
        w.begin_section("memory-system");
        mem->save(w);
        w.end_section();
        w.begin_section("hybrid-memory");
        hm->save(w);
        w.end_section();
        w.begin_section("policy");
        sim_policy->save_state(w);
        w.end_section();
        std::string bytes = w.finish();

        hm.reset();  // holds pointers into mem and sim_policy; dies first
        sim_policy.reset();
        mem.reset();
        mem = std::make_unique<MemorySystem>(mem_cfg);
        sim_policy = oracle_policy(ocfg.design, ocfg.seed);
        hm = std::make_unique<HybridMemory>(hm_cfg, mem.get(), sim_policy.get());

        ckpt::CkptReader r(std::move(bytes), "<oracle in-memory checkpoint>");
        r.enter_section("memory-system");
        mem->load(r);
        r.leave_section();
        r.enter_section("hybrid-memory");
        hm->load(r);
        r.leave_section();
        r.enter_section("policy");
        sim_policy->restore_state(r);
        r.leave_section();
        r.finish();
      }
      epoch_idx++;
    }
  }

  for (u32 i = 0; i < 2; ++i) {
    const Requestor r = static_cast<Requestor>(i);
    const HybridStats& s = hm->stats(r);
    const RefModel::SideStats& o = ref.stats(r);
    const std::string who = i == 0 ? "cpu" : "gpu";
    diff_u64(who + " demand", s.demand, o.demand);
    diff_u64(who + " fast_hits", s.fast_hits, o.fast_hits);
    diff_u64(who + " chain_hits", s.chain_hits, o.chain_hits);
    diff_u64(who + " misses", s.misses, o.misses);
    diff_u64(who + " migrations", s.migrations, o.migrations);
    diff_u64(who + " bypasses", s.bypasses, o.bypasses);
    diff_u64(who + " first_touches", s.first_touches, o.first_touches);
    diff_u64(who + " dirty_writebacks", s.dirty_writebacks, o.dirty_writebacks);
    diff_u64(who + " fast_swaps", s.fast_swaps, o.fast_swaps);
    diff_u64(who + " meta_misses", s.meta_misses, o.meta_misses);
    diff_u64(who + " lazy_invalidations", s.lazy_invalidations,
             o.lazy_invalidations);
    diff_u64(who + " lazy_moves", s.lazy_moves, o.lazy_moves);
    diff_u64(who + " flush_invalidations", s.flush_invalidations,
             o.flush_invalidations);
  }
  report.cpu_demand += hm->stats(Requestor::Cpu).demand;
  report.gpu_demand += hm->stats(Requestor::Gpu).demand;

  if (ocfg.design == "integrated") {
    // Migration-conservation laws for the counter-threshold design. The
    // sim-vs-reference diffs catch one side losing a migration or a stuck
    // counter; the within-simulator laws tie the policy's books to the
    // mechanism's (every threshold migration is exactly one block swap, and
    // the bytes charged are exactly pages-moved x page-size).
    const auto& sp = static_cast<const IntegratedPolicy&>(*sim_policy);
    const auto& rp = static_cast<const IntegratedPolicy&>(ref.policy());
    diff_u64("integrated migrations_up", sp.migrations_up(), rp.migrations_up());
    diff_u64("integrated migrations_down", sp.migrations_down(),
             rp.migrations_down());
    diff_u64("integrated migration_bytes", sp.migration_bytes(),
             rp.migration_bytes());
    diff_u64("integrated up/down symmetry", sp.migrations_up(),
             sp.migrations_down());
    diff_u64("integrated byte accounting", sp.migration_bytes(),
             (sp.migrations_up() + sp.migrations_down()) * hm_cfg.block_bytes);
    diff_u64("integrated mechanism/policy migrations",
             hm->stats(Requestor::Cpu).migrations +
                 hm->stats(Requestor::Gpu).migrations,
             sp.migrations_up());
    report.quantities++;
    if (!(sp.stats() == rp.stats())) {
      report.diffs.push_back(prefix + "final page-stats counter table differs");
    }
    report.quantities++;
    if (!sp.stats().audit()) {
      report.diffs.push_back(prefix +
                             "simulator page-stats population identity violated");
    }
    report.quantities++;
    if (!rp.stats().audit()) {
      report.diffs.push_back(prefix +
                             "oracle page-stats population identity violated");
    }
  }

  // Drain the backends (posted writes completed, refresh caught up to the
  // final clock) so the command-conservation laws below are exact. The
  // reference model has no timing state, so this moves nothing on its side.
  mem->drain_backends(end_clock);

  for (u32 ch = 0; ch < mem->num_fast_superchannels(); ++ch) {
    diff_u64("fast channel " + std::to_string(ch) + " requests",
             mem->issued_fast(ch), ref.fast_reqs(ch));
  }
  for (u32 ch = 0; ch < mem->num_slow_channels(); ++ch) {
    diff_u64("slow channel " + std::to_string(ch) + " requests",
             mem->issued_slow(ch), ref.slow_reqs(ch));
  }

  // Backend command conservation, per channel and per tier. Each law holds
  // for both timing backends, which is what makes the oracle a differential
  // check on the DDR controller model as well as the analytic one:
  //  - issued == completed: every request the facade accepted produced
  //    exactly one column command (row hit or miss) and nothing is left
  //    buffered after the drain;
  //  - activation/precharge pairing: every ACT is eventually closed by a PRE
  //    (explicit, or implicit in an all-bank refresh) or the bank still
  //    holds the row open;
  //  - refresh windows: the catch-up loop applied exactly the number of
  //    tREFI windows the flat clock implies — a skipped window (the
  //    refresh-skip fault class) breaks this count without touching any
  //    residency or request counter.
  const auto diff_channel = [&](const std::string& tier, u32 idx, Channel& ch,
                                u64 issued) {
    const std::string tagc = tier + " channel " + std::to_string(idx) + " ";
    diff_u64(tagc + "issued vs completed", issued,
             ch.row_hits() + ch.row_misses());
    diff_u64(tagc + "pending after drain", ch.pending(), 0);
    diff_u64(tagc + "act/pre pairing", ch.activations(),
             ch.precharges() + ch.open_banks());
    diff_u64(tagc + "refresh windows", ch.refresh_windows(),
             ch.expected_refresh_windows(end_clock));
  };
  for (u32 ch = 0; ch < mem->num_fast_superchannels(); ++ch) {
    diff_channel("fast", ch, mem->fast_channel(ch), mem->issued_fast(ch));
  }
  for (u32 ch = 0; ch < mem->num_slow_channels(); ++ch) {
    diff_channel("slow", ch, mem->slow_channel(ch), mem->issued_slow(ch));
  }

  // Final residency membership: every (set, tag) must agree on presence,
  // physical channel and dirty state.
  const auto sim_res = table_residency(hm->table());
  const auto ref_res = table_residency(ref.table());
  report.quantities++;
  if (sim_res != ref_res) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%sfinal residency differs: simulator holds %zu blocks, "
                  "oracle holds %zu",
                  prefix.c_str(), sim_res.size(), ref_res.size());
    report.diffs.push_back(buf);
    u32 shown = 0;
    for (const auto& [key, val] : sim_res) {
      const auto it = ref_res.find(key);
      if (it != ref_res.end() && it->second == val) continue;
      if (shown++ >= 5) break;
      std::snprintf(buf, sizeof(buf),
                    "  set %u tag %llu: simulator (ch=%u dirty=%d) vs %s", key.first,
                    static_cast<unsigned long long>(key.second), val.first,
                    static_cast<int>(val.second),
                    it == ref_res.end() ? "absent in oracle" : "different in oracle");
      report.diffs.push_back(buf);
    }
  }

  // End-of-replay invariant audits on the full side (active at check >= 2).
  hm->audit(end_clock, "oracle replay");
  mem->audit(end_clock);

  return epoch_idx;
}

}  // namespace

OracleReport run_oracle(const OracleConfig& ocfg) {
  OracleReport report;
  report.cpu_workload = ocfg.cpu_workload;
  report.design = ocfg.design;
  report.backend = ocfg.backend;
  report.accesses = ocfg.accesses;
  report.shards = ocfg.shards == 0 ? 1 : ocfg.shards;

  // Materialise one interleaved access sequence — identical for EVERY shard
  // count — and feed it, bit-identically, to both sides of each replay pair.
  // The GPU side is twice as intense as the CPU side, matching the bandwidth
  // asymmetry the designs exist to manage.
  const WorkloadSpec cpu_spec = with_scaled_footprint(
      cpu_workload_spec(ocfg.cpu_workload), 1, ocfg.footprint_div);
  const WorkloadSpec gpu_spec = with_scaled_footprint(
      gpu_workload_spec(ocfg.gpu_workload), 1, ocfg.footprint_div);
  SyntheticGenerator cpu_gen(cpu_spec, mix_hash(ocfg.seed, 1));
  SyntheticGenerator gpu_gen(gpu_spec, mix_hash(ocfg.seed, 2));
  constexpr u64 kBlockBytes = 256;  // HybridMemConfig default, as in replay_pair
  const Addr gpu_base =
      ((cpu_spec.footprint_bytes / kBlockBytes) + 1) * kBlockBytes;

  std::vector<Step> steps;
  steps.reserve(ocfg.accesses);
  Cycle now = 0;
  u64 expected_cpu = 0, expected_gpu = 0;
  for (u64 i = 0; i < ocfg.accesses; ++i) {
    const bool cpu = (i % 3) == 0;
    const Access a = cpu ? cpu_gen.next() : gpu_gen.next();
    now += ocfg.cycle_gap;
    steps.push_back(Step{now, (cpu ? 0 : gpu_base) + a.addr,
                         cpu ? Requestor::Cpu : Requestor::Gpu, a.write});
    (cpu ? expected_cpu : expected_gpu)++;
  }

  if (report.shards == 1) {
    report.epochs = replay_pair(ocfg, steps, "", report);
    return report;
  }

  // Sharded replay: split the stream page-granularly with the same
  // rendezvous router the ShardGroup harness partitions addresses with, and
  // run one fully independent (full stack, reference model) pair per shard.
  ShardRouter router(report.shards, report.shards * 8,
                     mix_hash(ocfg.seed, 0x4F524143ull));  // "ORAC"
  router.bind_span(gpu_base + gpu_spec.footprint_bytes);
  std::vector<std::vector<Step>> parts(report.shards);
  for (const Step& s : steps) {
    parts[router.shard_of_addr(s.addr)].push_back(s);
  }
  for (u32 i = 0; i < report.shards; ++i) {
    report.epochs = std::max(
        report.epochs,
        replay_pair(ocfg, parts[i], "s" + std::to_string(i) + " ", report));
  }

  // Global conservation across the partition: the per-class demand totals
  // must re-sum to the stream composition, which is a pure function of the
  // access sequence — independent of the shard count. CI diffs exactly this
  // summary between --shards N and --shards 1.
  report.quantities += 2;
  auto conserve = [&report](const char* what, u64 got, u64 expected) {
    if (got != expected) {
      char buf[192];
      std::snprintf(buf, sizeof(buf), "global %s demand conservation: %llu != %llu",
                    what, static_cast<unsigned long long>(got),
                    static_cast<unsigned long long>(expected));
      report.diffs.push_back(buf);
    }
  };
  conserve("cpu", report.cpu_demand, expected_cpu);
  conserve("gpu", report.gpu_demand, expected_gpu);
  return report;
}

}  // namespace h2
