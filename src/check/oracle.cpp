#include "check/oracle.h"

#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <tuple>

#include "common/rng.h"
#include "hybridmem/hybrid_memory.h"
#include "hybridmem/remap_cache.h"
#include "hydrogen/setpart_policy.h"
#include "policies/baseline.h"
#include "trace/workloads.h"

namespace h2 {

namespace {

constexpr u32 kLineBytes = 64;

/// One pre-materialised demand access, fed identically to both sides.
struct Step {
  Cycle now;
  Addr addr;
  Requestor cls;
  bool write;
};

std::unique_ptr<PartitionPolicy> make_policy(const std::string& design, u64 seed) {
  if (design == "baseline") return std::make_unique<BaselinePolicy>();
  if (design == "hydrogen-setpart") {
    SetPartConfig cfg;
    cfg.seed = seed;
    return std::make_unique<SetPartPolicy>(cfg);
  }
  throw std::invalid_argument("oracle: unknown design '" + design +
                              "' (expected baseline or hydrogen-setpart)");
}

/// The reference model: a plain functional replica of the cache-mode
/// residency/accounting state machine, with no event engine, no cursors and
/// no latency model. It owns its own policy and remap-cache instances so a
/// state leak in the full stack cannot hide by being mirrored.
class RefModel {
 public:
  RefModel(const HybridMemConfig& cfg, u32 n_super, u32 n_slow, u64 slow_block,
           std::unique_ptr<PartitionPolicy> policy)
      : cfg_(cfg),
        n_super_(n_super),
        slow_block_(slow_block),
        policy_(std::move(policy)),
        rcache_(cfg.remap_cache_bytes, cfg.assoc * 8),
        ways_(static_cast<size_t>(cfg.num_sets()) * cfg.assoc),
        fast_reqs_(n_super, 0),
        slow_reqs_(n_slow, 0) {
    policy_->bind(n_super, cfg.assoc, cfg.num_sets());
  }

  struct Way {
    u64 tag = 0;
    u64 lru = 0;
    u16 hits = 0;
    u8 channel = 0;
    bool valid = false;
    bool dirty = false;
  };

  struct SideStats {
    u64 demand = 0, fast_hits = 0, misses = 0, migrations = 0, bypasses = 0,
        dirty_writebacks = 0, meta_misses = 0;
  };

  void access(const Step& s) {
    policy_->tick(s.now);
    const u64 tag = s.addr / cfg_.block_bytes;
    const u32 set = policy_->remap_set(
        static_cast<u32>(tag % cfg_.num_sets()), s.cls);
    SideStats& st = stats_[static_cast<u32>(s.cls)];
    st.demand++;

    // Metadata probe: a remap-cache miss costs one 64 B fast-tier read on
    // the set's home superchannel.
    if (!rcache_.probe(set)) {
      st.meta_misses++;
      fast_reqs_[set % n_super_]++;
    }

    Way* base = &ways_[static_cast<size_t>(set) * cfg_.assoc];
    i32 way = -1;
    for (u32 w = 0; w < cfg_.assoc; ++w) {
      if (base[w].valid && base[w].tag == tag) { way = static_cast<i32>(w); break; }
    }

    if (way >= 0) {
      Way& rw = base[way];
      st.fast_hits++;
      fast_reqs_[rw.channel]++;  // 64 B demand line
      rw.dirty |= s.write;
      if (rw.hits < 0xFFFF) rw.hits++;
      rw.lru = ++stamp_;
      return;
    }

    st.misses++;
    // Victim selection: first invalid allowed way, else LRU allowed way —
    // must match HybridMemory::pick_victim exactly.
    i32 victim = -1;
    u64 best_lru = ~0ull;
    bool victim_free = false;
    for (u32 w = 0; w < cfg_.assoc; ++w) {
      if (!policy_->way_allowed(set, w, s.cls)) continue;
      if (!base[w].valid) { victim = static_cast<i32>(w); victim_free = true; break; }
      if (base[w].lru < best_lru) { best_lru = base[w].lru; victim = static_cast<i32>(w); }
    }
    const bool victim_dirty = victim >= 0 && !victim_free && base[victim].dirty;

    PolicyContext ctx{s.now, s.cls, set, tag, s.write,
                      static_cast<u32>((s.addr / slow_block_) % slow_reqs_.size())};
    const bool migrate = victim >= 0 && policy_->allow_migration(ctx, victim_dirty);

    if (!migrate) {
      st.bypasses++;
      slow_reqs_[ctx.slow_channel]++;  // 64 B demand line from the slow tier
      return;
    }

    st.migrations++;
    const Addr block_addr = tag * cfg_.block_bytes;
    slow_reqs_[static_cast<u32>((block_addr / slow_block_) % slow_reqs_.size())]++;
    Way& rw = base[victim];
    if (rw.valid && rw.dirty) {
      const Addr wb = rw.tag * cfg_.block_bytes;
      slow_reqs_[static_cast<u32>((wb / slow_block_) % slow_reqs_.size())]++;
      st.dirty_writebacks++;
    }
    const u32 ch = policy_->channel_of_way(set, static_cast<u32>(victim));
    fast_reqs_[ch]++;  // block fill write
    rw.tag = tag;
    rw.valid = true;
    rw.dirty = s.write;
    rw.hits = 0;
    rw.channel = static_cast<u8>(ch);
    rw.lru = ++stamp_;
  }

  const SideStats& stats(Requestor r) const { return stats_[static_cast<u32>(r)]; }
  u64 fast_reqs(u32 ch) const { return fast_reqs_[ch]; }
  u64 slow_reqs(u32 ch) const { return slow_reqs_[ch]; }

  /// Final residency as (set, tag) -> (channel, dirty).
  std::map<std::pair<u32, u64>, std::pair<u32, bool>> residency() const {
    std::map<std::pair<u32, u64>, std::pair<u32, bool>> r;
    for (u32 set = 0; set < cfg_.num_sets(); ++set) {
      const Way* base = &ways_[static_cast<size_t>(set) * cfg_.assoc];
      for (u32 w = 0; w < cfg_.assoc; ++w) {
        if (base[w].valid) r[{set, base[w].tag}] = {base[w].channel, base[w].dirty};
      }
    }
    return r;
  }

 private:
  HybridMemConfig cfg_;
  u32 n_super_;
  u64 slow_block_;
  std::unique_ptr<PartitionPolicy> policy_;
  RemapCache rcache_;
  std::vector<Way> ways_;
  std::vector<u64> fast_reqs_;
  std::vector<u64> slow_reqs_;
  SideStats stats_[2];
  u64 stamp_ = 0;
};

std::map<std::pair<u32, u64>, std::pair<u32, bool>> table_residency(
    const RemapTable& t) {
  std::map<std::pair<u32, u64>, std::pair<u32, bool>> r;
  for (u32 set = 0; set < t.num_sets(); ++set) {
    for (u32 w = 0; w < t.assoc(); ++w) {
      const RemapWay& rw = t.way(set, w);
      if (rw.valid) r[{set, rw.tag}] = {rw.channel, rw.dirty};
    }
  }
  return r;
}

}  // namespace

OracleReport run_oracle(const OracleConfig& ocfg) {
  OracleReport report;
  report.cpu_workload = ocfg.cpu_workload;
  report.design = ocfg.design;
  report.accesses = ocfg.accesses;

  // Geometry: a scaled-down two-tier system, small enough that the replay
  // churns the fast tier (misses, migrations, writebacks all exercised).
  MemSystemConfig mem_cfg = MemSystemConfig::table1_default();
  HybridMemConfig hm_cfg;
  hm_cfg.mode = HybridMode::Cache;
  hm_cfg.fast_capacity_bytes = 8ull << 20;
  hm_cfg.remap_cache_bytes = 64 * 1024;

  MemorySystem mem(mem_cfg);
  auto sim_policy = make_policy(ocfg.design, ocfg.seed);
  auto ref_policy = make_policy(ocfg.design, ocfg.seed);
  HybridMemory hm(hm_cfg, &mem, sim_policy.get());
  RefModel ref(hm_cfg, mem.num_fast_superchannels(), mem.num_slow_channels(),
               mem_cfg.block_bytes, std::move(ref_policy));

  // Materialise one interleaved access sequence and feed it, bit-identically,
  // to both sides. The GPU side is twice as intense as the CPU side, matching
  // the bandwidth asymmetry the designs exist to manage.
  const WorkloadSpec cpu_spec = with_scaled_footprint(
      cpu_workload_spec(ocfg.cpu_workload), 1, ocfg.footprint_div);
  const WorkloadSpec gpu_spec = with_scaled_footprint(
      gpu_workload_spec(ocfg.gpu_workload), 1, ocfg.footprint_div);
  SyntheticGenerator cpu_gen(cpu_spec, mix_hash(ocfg.seed, 1));
  SyntheticGenerator gpu_gen(gpu_spec, mix_hash(ocfg.seed, 2));
  const Addr gpu_base = ((cpu_spec.footprint_bytes / hm_cfg.block_bytes) + 1) *
                        hm_cfg.block_bytes;

  std::vector<Step> steps;
  steps.reserve(ocfg.accesses);
  Cycle now = 0;
  for (u64 i = 0; i < ocfg.accesses; ++i) {
    const bool cpu = (i % 3) == 0;
    const Access a = cpu ? cpu_gen.next() : gpu_gen.next();
    now += ocfg.cycle_gap;
    steps.push_back(Step{now, (cpu ? 0 : gpu_base) + a.addr,
                         cpu ? Requestor::Cpu : Requestor::Gpu, a.write});
  }

  for (const Step& s : steps) {
    hm.access(s.now, s.cls, s.addr, s.write);
    ref.access(s);
  }

  auto diff_u64 = [&report](const std::string& what, u64 sim, u64 oracle) {
    report.quantities++;
    if (sim != oracle) {
      char buf[256];
      std::snprintf(buf, sizeof(buf), "%s: simulator=%llu oracle=%llu",
                    what.c_str(), static_cast<unsigned long long>(sim),
                    static_cast<unsigned long long>(oracle));
      report.diffs.push_back(buf);
    }
  };

  for (u32 i = 0; i < 2; ++i) {
    const Requestor r = static_cast<Requestor>(i);
    const HybridStats& s = hm.stats(r);
    const RefModel::SideStats& o = ref.stats(r);
    const std::string who = i == 0 ? "cpu" : "gpu";
    diff_u64(who + " demand", s.demand, o.demand);
    diff_u64(who + " fast_hits", s.fast_hits, o.fast_hits);
    diff_u64(who + " misses", s.misses, o.misses);
    diff_u64(who + " migrations", s.migrations, o.migrations);
    diff_u64(who + " bypasses", s.bypasses, o.bypasses);
    diff_u64(who + " dirty_writebacks", s.dirty_writebacks, o.dirty_writebacks);
    diff_u64(who + " meta_misses", s.meta_misses, o.meta_misses);
  }

  for (u32 ch = 0; ch < mem.num_fast_superchannels(); ++ch) {
    diff_u64("fast channel " + std::to_string(ch) + " requests",
             mem.issued_fast(ch), ref.fast_reqs(ch));
  }
  for (u32 ch = 0; ch < mem.num_slow_channels(); ++ch) {
    diff_u64("slow channel " + std::to_string(ch) + " requests",
             mem.issued_slow(ch), ref.slow_reqs(ch));
  }

  // Final residency membership: every (set, tag) must agree on presence,
  // physical channel and dirty state.
  const auto sim_res = table_residency(hm.table());
  const auto ref_res = ref.residency();
  report.quantities++;
  if (sim_res != ref_res) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "final residency differs: simulator holds %zu blocks, "
                  "oracle holds %zu",
                  sim_res.size(), ref_res.size());
    report.diffs.push_back(buf);
    u32 shown = 0;
    for (const auto& [key, val] : sim_res) {
      const auto it = ref_res.find(key);
      if (it != ref_res.end() && it->second == val) continue;
      if (shown++ >= 5) break;
      std::snprintf(buf, sizeof(buf),
                    "  set %u tag %llu: simulator (ch=%u dirty=%d) vs %s", key.first,
                    static_cast<unsigned long long>(key.second), val.first,
                    static_cast<int>(val.second),
                    it == ref_res.end() ? "absent in oracle" : "different in oracle");
      report.diffs.push_back(buf);
    }
  }

  // End-of-replay invariant audits on the full side (active at check >= 2).
  hm.audit(now, "oracle replay");
  mem.audit(now);

  return report;
}

}  // namespace h2
