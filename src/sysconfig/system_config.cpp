#include "sysconfig/system_config.h"

#include <iomanip>

namespace h2 {

SystemConfig SystemConfig::table1(u32 scale) {
  SystemConfig cfg;
  cfg.scale = scale;
  // On-chip caches shrink 4x harder than the workload footprints: the
  // footprints are already scaled-down representations (tens of MB instead
  // of GBs), so preserving the paper's fast-memory : LLC capacity ratio
  // (~128x) requires compressing the SRAM hierarchy much further than the
  // footprint scale alone would.
  cfg.hierarchy = HierarchyConfig{}.scaled(scale * 8);
  cfg.mem = MemSystemConfig::table1_default();
  cfg.hybrid = HybridMemConfig{};
  cfg.hybrid.remap_cache_bytes = std::max<u64>(256 * 1024 / scale, 16 * 1024);
  return cfg;
}

SystemConfig SystemConfig::table1_hbm3(u32 scale) {
  SystemConfig cfg = table1(scale);
  cfg.mem = MemSystemConfig::table1_hbm3();
  return cfg;
}

void SystemConfig::print(std::ostream& os) const {
  const auto mb = [](u64 bytes) { return static_cast<double>(bytes) / (1 << 20); };
  os << "System configuration (Table I, scale 1/" << scale << "):\n";
  os << "  CPU         : " << cpu_cores << " cores, base IPC " << cpu_base_ipc
     << ", " << cpu_mlp << " MSHRs\n";
  os << "  CPU L1      : " << hierarchy.cpu_l1.ways << "-way, " << std::fixed
     << std::setprecision(2) << mb(hierarchy.cpu_l1.size_bytes) << " MB/core, "
     << hierarchy.cpu_l1.line_bytes << " B lines, LRU\n";
  os << "  CPU L2      : " << hierarchy.cpu_l2.ways << "-way, "
     << mb(hierarchy.cpu_l2.size_bytes) << " MB/core, " << hierarchy.cpu_l2.latency
     << "-cycle latency, LRU\n";
  os << "  GPU         : " << gpu_eus << " execution units (" << gpu_clusters()
     << " clusters), " << gpu_mlp << " outstanding/cluster\n";
  os << "  GPU L1      : " << mb(hierarchy.gpu_l1.size_bytes) << " MB per "
     << gpu_eus_per_cluster << " units\n";
  os << "  Shared LLC  : " << hierarchy.llc.ways << "-way, " << mb(hierarchy.llc.size_bytes)
     << " MB shared, " << hierarchy.llc.latency << "-cycle latency, LRU\n";
  os << "  Fast memory : " << mem.fast_channel_timing.name << ", " << mem.fast_channels
     << " channels (" << mem.fast_channels / mem.fast_group << " superchannels), "
     << mem.fast_channel_timing.device_mhz << " MHz, RCD-CAS-RP "
     << mem.fast_channel_timing.t_rcd << "-" << mem.fast_channel_timing.t_cas << "-"
     << mem.fast_channel_timing.t_rp << ", RD/WR "
     << mem.fast_channel_timing.rd_pj_per_bit << " pJ/bit\n";
  os << "  Slow memory : " << mem.slow_channel_timing.name << ", " << mem.slow_channels
     << " channels x " << mem.slow_channel_timing.ranks << " ranks x "
     << mem.slow_channel_timing.banks_per_rank << " banks, RCD-CAS-RP "
     << mem.slow_channel_timing.t_rcd << "-" << mem.slow_channel_timing.t_cas << "-"
     << mem.slow_channel_timing.t_rp << ", RD/WR "
     << mem.slow_channel_timing.rd_pj_per_bit << " pJ/bit\n";
  os << "  Hybrid      : " << (hybrid.mode == HybridMode::Cache ? "cache" : "flat")
     << " mode, " << hybrid.block_bytes << " B blocks, " << hybrid.assoc
     << "-way, fast capacity " << mb(hybrid.fast_capacity_bytes) << " MB, slow capacity "
     << mb(hybrid.slow_capacity_bytes) << " MB\n";
}

}  // namespace h2
