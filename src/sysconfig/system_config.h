// The full simulated system of paper Table I: an 8-core CPU + 96-EU GPU
// heterogeneous processor with its cache hierarchy, attached to a
// HBM2E + DDR4 hybrid memory. `table1()` builds the default; the harness
// derives capacities from the workload footprints (fast = slow / 8, as in
// the paper's methodology).
#pragma once

#include <ostream>
#include <string>

#include "cache/hierarchy.h"
#include "hybridmem/hybrid_memory.h"
#include "mem/memory_system.h"

namespace h2 {

struct SystemConfig {
  // --- processor ---------------------------------------------------------
  u32 cpu_cores = 8;
  u32 gpu_eus = 96;
  u32 gpu_eus_per_cluster = 16;
  double cpu_base_ipc = 2.0;
  u32 cpu_mlp = 8;          ///< MSHRs per CPU core (latency-sensitive)
  u32 cpu_write_buffer = 16;
  double gpu_base_ipc = 2.0;  ///< warp-instructions per cycle per cluster
  u32 gpu_mlp = 32;         ///< outstanding requests per cluster (latency-tolerant)
  u32 gpu_write_buffer = 64;
  double core_ghz = 3.2;

  // --- memory ------------------------------------------------------------
  HierarchyConfig hierarchy;
  MemSystemConfig mem = MemSystemConfig::table1_default();
  HybridMemConfig hybrid;

  /// Footprint/cache scale divisor applied relative to native Table I sizes
  /// (1 = native). All evaluation numbers are ratios, so the scaled system
  /// preserves the contention phenomena at a fraction of the cost.
  u32 scale = 8;

  u32 gpu_clusters() const { return gpu_eus / gpu_eus_per_cluster; }

  /// Table I system with caches scaled by `scale`.
  static SystemConfig table1(u32 scale = 8);
  /// Same, with HBM3 as the fast tier (paper Fig. 5(b)).
  static SystemConfig table1_hbm3(u32 scale = 8);

  void print(std::ostream& os) const;
};

}  // namespace h2
