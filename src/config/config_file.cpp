#include "config/config_file.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/assert.h"

namespace h2 {

namespace {

std::string trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) b++;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) e--;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Strips a trailing comment that is not inside quotes.
std::string strip_comment(const std::string& s) {
  bool quoted = false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"') quoted = !quoted;
    if (!quoted && (s[i] == '#' || s[i] == ';')) return s.substr(0, i);
  }
  return s;
}

}  // namespace

bool ConfigFile::load(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) return false;
  std::stringstream ss;
  ss << f.rdbuf();
  parse(ss.str(), path);
  return true;
}

void ConfigFile::parse(const std::string& text, const std::string& origin) {
  std::istringstream in(text);
  std::string line;
  std::string section;
  u32 lineno = 0;
  while (std::getline(in, line)) {
    lineno++;
    line = trim(strip_comment(line));
    if (line.empty()) continue;

    if (line.front() == '[') {
      H2_ASSERT(line.back() == ']', "%s:%u: unterminated section header", origin.c_str(),
                lineno);
      section = trim(line.substr(1, line.size() - 2));
      continue;
    }

    const size_t eq = line.find('=');
    H2_ASSERT(eq != std::string::npos, "%s:%u: expected key = value", origin.c_str(),
              lineno);
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    H2_ASSERT(!key.empty(), "%s:%u: empty key", origin.c_str(), lineno);
    if (!value.empty() && value.front() == '"' && value.back() == '"' && value.size() >= 2) {
      value = value.substr(1, value.size() - 2);
    }
    const std::string full = section.empty() ? key : section + "." + key;
    if (!values_.count(full)) order_.push_back(full);
    values_[full] = value;  // later assignments win, like the artifact's cfg
    where_[full] = origin + ":" + std::to_string(lineno);
    section_[full] = section;
    used_[full] = false;
  }
}

const std::string* ConfigFile::find(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return nullptr;
  used_[key] = true;
  return &it->second;
}

bool ConfigFile::has(const std::string& key) const { return find(key) != nullptr; }

std::string ConfigFile::get_string(const std::string& key, const std::string& def) const {
  const std::string* v = find(key);
  return v ? *v : def;
}

i64 ConfigFile::get_int(const std::string& key, i64 def) const {
  const std::string* v = find(key);
  if (!v) return def;
  char* end = nullptr;
  const i64 out = std::strtoll(v->c_str(), &end, 0);
  H2_ASSERT(end && *end == '\0', "%s: config key %s: '%s' is not an integer",
            where(key).c_str(), key.c_str(), v->c_str());
  return out;
}

u64 ConfigFile::get_u64(const std::string& key, u64 def) const {
  const std::string* v = find(key);
  if (!v) return def;
  return parse_size(*v, where(key) + ": config key " + key);
}

double ConfigFile::get_double(const std::string& key, double def) const {
  const std::string* v = find(key);
  if (!v) return def;
  char* end = nullptr;
  const double out = std::strtod(v->c_str(), &end);
  H2_ASSERT(end && *end == '\0', "%s: config key %s: '%s' is not a number",
            where(key).c_str(), key.c_str(), v->c_str());
  return out;
}

bool ConfigFile::get_bool(const std::string& key, bool def) const {
  const std::string* v = find(key);
  if (!v) return def;
  const std::string s = lower(*v);
  if (s == "true" || s == "yes" || s == "on" || s == "1") return true;
  if (s == "false" || s == "no" || s == "off" || s == "0") return false;
  H2_ASSERT(false, "%s: config key %s: '%s' is not a boolean", where(key).c_str(),
            key.c_str(), v->c_str());
  return def;
}

std::vector<std::string> ConfigFile::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& k : order_) {
    auto it = used_.find(k);
    if (it != used_.end() && !it->second) out.push_back(k);
  }
  return out;
}

std::vector<std::string> ConfigFile::keys() const { return order_; }

std::string ConfigFile::where(const std::string& key) const {
  auto it = where_.find(key);
  return it != where_.end() ? it->second : "<unknown>";
}

std::string ConfigFile::section_of(const std::string& key) const {
  auto it = section_.find(key);
  return it != section_.end() ? it->second : "";
}

u64 ConfigFile::parse_size(const std::string& text, const std::string& where) {
  const std::string at = where.empty() ? "" : where + ": ";
  const std::string s = trim(text);
  H2_ASSERT(!s.empty(), "%sempty size value", at.c_str());
  char* end = nullptr;
  const double base = std::strtod(s.c_str(), &end);
  H2_ASSERT(end != s.c_str(), "%s'%s' is not a size", at.c_str(), s.c_str());
  const std::string suffix = lower(trim(end));
  double mult = 1;
  if (suffix == "" || suffix == "b") {
    mult = 1;
  } else if (suffix == "kb" || suffix == "k" || suffix == "kib") {
    mult = 1024;
  } else if (suffix == "mb" || suffix == "m" || suffix == "mib") {
    mult = 1024.0 * 1024;
  } else if (suffix == "gb" || suffix == "g" || suffix == "gib") {
    mult = 1024.0 * 1024 * 1024;
  } else {
    H2_ASSERT(false, "%sunknown size suffix '%s'", at.c_str(), suffix.c_str());
  }
  return static_cast<u64>(base * mult);
}

}  // namespace h2
