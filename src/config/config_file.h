// A small INI-style configuration-file reader for the simulator driver
// (tools/h2sim). The paper's artifact drives zsim with libconfig files
// (sims/<design>/zsim.cfg); this is the equivalent interface for this
// reproduction, so experiments are reproducible from checked-in text files.
//
// Format:
//   # comment / ; comment
//   [section]
//   key = value            # values: string, integer, double, bool
//   other.key = 12         # dots allowed inside key names
//
// Keys are addressed as "section.key". Unknown keys are detectable via
// unused_keys() so drivers can reject typos instead of silently ignoring
// them (a classic simulator footgun).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace h2 {

class ConfigFile {
 public:
  ConfigFile() = default;

  /// Parses a file; aborts with a message naming the offending line on
  /// malformed input. Returns false if the file cannot be opened.
  bool load(const std::string& path);

  /// Parses configuration text directly (used by tests).
  void parse(const std::string& text, const std::string& origin = "<string>");

  bool has(const std::string& key) const;

  /// Typed getters with defaults; abort on un-convertible values.
  std::string get_string(const std::string& key, const std::string& def = "") const;
  i64 get_int(const std::string& key, i64 def = 0) const;
  u64 get_u64(const std::string& key, u64 def = 0) const;
  double get_double(const std::string& key, double def = 0.0) const;
  bool get_bool(const std::string& key, bool def = false) const;

  /// Keys present in the file but never read — for strict drivers.
  std::vector<std::string> unused_keys() const;

  /// All keys, in file order.
  std::vector<std::string> keys() const;

  /// "origin:line" of the assignment that produced `key`'s value (the last
  /// one, since later assignments win), or "<unknown>" for absent keys.
  /// Getter/driver diagnostics lead with this so a typo is a click away.
  std::string where(const std::string& key) const;

  /// The `[section]` a key was declared under ("" for top-level keys).
  /// Needed by strict drivers because key names may themselves contain dots,
  /// so splitting the full key on '.' cannot recover the section.
  std::string section_of(const std::string& key) const;

  /// Size suffix parser: "64MB", "256kB", "2GB", plain bytes otherwise.
  /// A non-empty `where` ("file:line") prefixes any error message.
  static u64 parse_size(const std::string& text, const std::string& where = "");

 private:
  const std::string* find(const std::string& key) const;

  std::vector<std::string> order_;
  std::map<std::string, std::string> values_;
  std::map<std::string, std::string> where_;    ///< key -> "origin:line"
  std::map<std::string, std::string> section_;  ///< key -> declaring section
  mutable std::map<std::string, bool> used_;
};

}  // namespace h2
