#include "trace/workloads.h"

#include <map>

#include "common/assert.h"

namespace h2 {

namespace {

constexpr u64 MB = 1ull << 20;

// CPU workloads: latency-sensitive, locality-rich, capacity-loving.
// mix = {stream, stride, random, chase, stencil}
std::map<std::string, WorkloadSpec> make_cpu_specs() {
  std::map<std::string, WorkloadSpec> m;
  auto add = [&](WorkloadSpec s) { m[s.name] = std::move(s); };

  add({.name = "gcc", .footprint_bytes = 24 * MB,
       .mix = {0.30, 0.20, 0.40, 0.10, 0.0}, .stride_bytes = 512,
       .write_frac = 0.25, .hot_frac = 0.22, .hot_prob = 0.85, .zipf_s = 0.9,
       .mean_gap = 25, .dep_prob = 0.15});
  add({.name = "mcf", .footprint_bytes = 48 * MB,
       .mix = {0.0, 0.0, 0.50, 0.50, 0.0}, .stride_bytes = 256,
       .write_frac = 0.20, .hot_frac = 0.18, .hot_prob = 0.70, .zipf_s = 0.7,
       .mean_gap = 12, .dep_prob = 0.35});
  add({.name = "lbm", .footprint_bytes = 48 * MB,
       .mix = {0.90, 0.10, 0.0, 0.0, 0.0}, .stride_bytes = 1024,
       .write_frac = 0.45, .hot_frac = 0.10, .hot_prob = 0.5, .zipf_s = 0.0,
       .mean_gap = 10, .dep_prob = 0.02});
  add({.name = "roms", .footprint_bytes = 40 * MB,
       .mix = {0.70, 0.20, 0.10, 0.0, 0.0}, .stride_bytes = 2048,
       .write_frac = 0.35, .hot_frac = 0.20, .hot_prob = 0.7, .zipf_s = 0.6,
       .mean_gap = 12, .dep_prob = 0.05});
  add({.name = "omnetpp", .footprint_bytes = 20 * MB,
       .mix = {0.0, 0.10, 0.50, 0.40, 0.0}, .stride_bytes = 256,
       .write_frac = 0.30, .hot_frac = 0.28, .hot_prob = 0.85, .zipf_s = 1.0,
       .mean_gap = 18, .dep_prob = 0.30});
  add({.name = "xz", .footprint_bytes = 32 * MB,
       .mix = {0.30, 0.10, 0.60, 0.0, 0.0}, .stride_bytes = 512,
       .write_frac = 0.30, .hot_frac = 0.30, .hot_prob = 0.90, .zipf_s = 1.1,
       .mean_gap = 16, .dep_prob = 0.10});
  add({.name = "deepsjeng", .footprint_bytes = 12 * MB,
       .mix = {0.0, 0.0, 0.80, 0.20, 0.0}, .stride_bytes = 256,
       .write_frac = 0.25, .hot_frac = 0.40, .hot_prob = 0.92, .zipf_s = 1.0,
       .mean_gap = 22, .dep_prob = 0.20});
  add({.name = "cactusBSSN", .footprint_bytes = 36 * MB,
       .mix = {0.20, 0.0, 0.10, 0.0, 0.70}, .stencil_streams = 9,
       .write_frac = 0.35, .hot_frac = 0.15, .hot_prob = 0.6, .zipf_s = 0.5,
       .mean_gap = 14, .dep_prob = 0.05});
  add({.name = "fotonik3d", .footprint_bytes = 40 * MB,
       .mix = {0.60, 0.0, 0.10, 0.0, 0.30}, .stencil_streams = 7,
       .write_frac = 0.30, .hot_frac = 0.15, .hot_prob = 0.6, .zipf_s = 0.5,
       .mean_gap = 11, .dep_prob = 0.04});
  add({.name = "bwaves", .footprint_bytes = 44 * MB,
       .mix = {0.50, 0.0, 0.10, 0.0, 0.40}, .stencil_streams = 5,
       .write_frac = 0.30, .hot_frac = 0.15, .hot_prob = 0.6, .zipf_s = 0.5,
       .mean_gap = 10, .dep_prob = 0.04});
  return m;
}

// Fixups applied to each spec to mark workload class conventions.
std::map<std::string, WorkloadSpec> make_gpu_specs() {
  std::map<std::string, WorkloadSpec> m;
  auto add = [&](WorkloadSpec s) { m[s.name] = std::move(s); };

  // GPU kernels: bandwidth-hungry and latency-tolerant (dep ~ 0). Most
  // kernels iterate over a small hot working window (tiles, frontiers,
  // weight blocks) on top of compulsory streaming — so their fast-tier hit
  // rate is high and nearly capacity-independent (paper Insight 2), while
  // their access *rate* taxes fast-memory bandwidth (Insight 1).
  // streamcluster is the exception: a pure large stream with almost no
  // reuse, whose migrations flood the slow tier (the paper's Section VI-B
  // token case study on C5).
  add({.name = "backprop", .footprint_bytes = 96 * MB,
       .mix = {0.15, 0.10, 0.75, 0.0, 0.0}, .stride_bytes = 64,
       .write_frac = 0.22, .hot_frac = 0.004, .hot_prob = 0.95, .zipf_s = 0.6,
       .mean_gap = 24, .dep_prob = 0.0});
  add({.name = "hotspot", .footprint_bytes = 80 * MB,
       .mix = {0.0, 0.0, 0.75, 0.0, 0.25}, .stencil_streams = 5,
       .write_frac = 0.22, .hot_frac = 0.004, .hot_prob = 0.95, .zipf_s = 0.6,
       .mean_gap = 24, .dep_prob = 0.0});
  add({.name = "lud", .footprint_bytes = 48 * MB,
       .mix = {0.0, 0.20, 0.80, 0.0, 0.0}, .stride_bytes = 64,
       .write_frac = 0.20, .hot_frac = 0.005, .hot_prob = 0.95, .zipf_s = 0.7,
       .mean_gap = 26, .dep_prob = 0.0});
  add({.name = "streamcluster", .footprint_bytes = 192 * MB,
       .mix = {0.75, 0.0, 0.25, 0.0, 0.0}, .stride_bytes = 1024,
       .write_frac = 0.10, .hot_frac = 0.02, .hot_prob = 0.45, .zipf_s = 0.0,
       .mean_gap = 36, .dep_prob = 0.0});
  add({.name = "pathfinder", .footprint_bytes = 96 * MB,
       .mix = {0.25, 0.0, 0.75, 0.0, 0.0}, .stride_bytes = 64,
       .write_frac = 0.22, .hot_frac = 0.004, .hot_prob = 0.95, .zipf_s = 0.6,
       .mean_gap = 24, .dep_prob = 0.0});
  add({.name = "needle", .footprint_bytes = 64 * MB,
       .mix = {0.0, 0.25, 0.75, 0.0, 0.0}, .stride_bytes = 64,
       .write_frac = 0.20, .hot_frac = 0.005, .hot_prob = 0.90, .zipf_s = 0.6,
       .mean_gap = 26, .dep_prob = 0.0});
  add({.name = "bfs", .footprint_bytes = 168 * MB,
       .mix = {0.20, 0.0, 0.80, 0.0, 0.0}, .stride_bytes = 256,
       .write_frac = 0.20, .hot_frac = 0.005, .hot_prob = 0.88, .zipf_s = 1.0,
       .mean_gap = 26, .dep_prob = 0.0});
  add({.name = "srad", .footprint_bytes = 80 * MB,
       .mix = {0.0, 0.0, 0.72, 0.0, 0.28}, .stencil_streams = 6,
       .write_frac = 0.22, .hot_frac = 0.004, .hot_prob = 0.95, .zipf_s = 0.6,
       .mean_gap = 24, .dep_prob = 0.0});
  add({.name = "bert", .footprint_bytes = 160 * MB,
       .mix = {0.15, 0.15, 0.70, 0.0, 0.0}, .stride_bytes = 64,
       .write_frac = 0.22, .hot_frac = 0.005, .hot_prob = 0.95, .zipf_s = 0.6,
       .mean_gap = 22, .dep_prob = 0.0});
  return m;
}

const std::map<std::string, WorkloadSpec>& cpu_specs() {
  static const std::map<std::string, WorkloadSpec> m = make_cpu_specs();
  return m;
}

const std::map<std::string, WorkloadSpec>& gpu_specs() {
  static const std::map<std::string, WorkloadSpec> m = make_gpu_specs();
  return m;
}

}  // namespace

const WorkloadSpec& cpu_workload_spec(const std::string& name) {
  auto it = cpu_specs().find(name);
  H2_ASSERT(it != cpu_specs().end(), "unknown CPU workload: %s", name.c_str());
  return it->second;
}

const WorkloadSpec& gpu_workload_spec(const std::string& name) {
  auto it = gpu_specs().find(name);
  H2_ASSERT(it != gpu_specs().end(), "unknown GPU workload: %s", name.c_str());
  return it->second;
}

std::vector<std::string> cpu_workload_names() {
  std::vector<std::string> names;
  for (const auto& [k, _] : cpu_specs()) names.push_back(k);
  return names;
}

std::vector<std::string> gpu_workload_names() {
  std::vector<std::string> names;
  for (const auto& [k, _] : gpu_specs()) names.push_back(k);
  return names;
}

const std::vector<ComboSpec>& table2_combos() {
  static const std::vector<ComboSpec> combos = {
      {"C1", {"gcc", "mcf", "lbm", "roms"}, "backprop"},
      {"C2", {"omnetpp", "lbm", "gcc", "xz"}, "backprop"},
      {"C3", {"roms", "mcf", "deepsjeng", "cactusBSSN"}, "hotspot"},
      {"C4", {"lbm", "fotonik3d", "deepsjeng", "omnetpp"}, "lud"},
      {"C5", {"roms", "lbm", "deepsjeng", "fotonik3d"}, "streamcluster"},
      {"C6", {"omnetpp", "xz", "roms", "deepsjeng"}, "pathfinder"},
      {"C7", {"bwaves", "gcc", "xz", "fotonik3d"}, "needle"},
      {"C8", {"fotonik3d", "gcc", "omnetpp", "deepsjeng"}, "bfs"},
      {"C9", {"mcf", "cactusBSSN", "roms", "deepsjeng"}, "srad"},
      {"C10", {"deepsjeng", "xz", "roms", "bwaves"}, "pathfinder"},
      {"C11", {"omnetpp", "gcc", "fotonik3d", "lbm"}, "bert"},
      {"C12", {"mcf", "gcc", "cactusBSSN", "omnetpp"}, "bert"},
  };
  return combos;
}

const ComboSpec& combo(const std::string& name) {
  for (const auto& c : table2_combos()) {
    if (c.name == name) return c;
  }
  H2_ASSERT(false, "unknown combo: %s", name.c_str());
  return table2_combos().front();  // unreachable
}

WorkloadSpec with_scaled_footprint(const WorkloadSpec& spec, u64 num, u64 den) {
  H2_ASSERT(num > 0 && den > 0, "bad footprint scale %llu/%llu",
            static_cast<unsigned long long>(num), static_cast<unsigned long long>(den));
  WorkloadSpec s = spec;
  s.footprint_bytes = std::max<u64>(64 * 1024, s.footprint_bytes * num / den);
  return s;
}

}  // namespace h2
