// Binary trace recording and replay (mirrors the artifact's T1 stage, where
// traces are generated once and fed to many simulations). Format: a small
// header followed by packed fixed-width records; fully deterministic.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "trace/access.h"
#include "trace/generators.h"

namespace h2 {

/// Thrown by the trace reader/writer on I/O failures and malformed files
/// (bad magic, unsupported version, truncation, garbage records). Trace
/// files cross the process boundary, so unlike internal invariants these
/// are recoverable errors, not aborts.
class TraceError : public std::runtime_error {
 public:
  explicit TraceError(const std::string& what) : std::runtime_error(what) {}
};

/// Writes `count` accesses drawn from `gen` to `path`. Returns bytes written.
/// Throws TraceError if the file cannot be opened or a write fails.
u64 record_trace(AccessGenerator& gen, u64 count, const std::string& path);

/// Loads a trace file previously written by record_trace. If `footprint_out`
/// is non-null, receives the recorded footprint. Throws TraceError on
/// malformed files.
std::vector<Access> load_trace(const std::string& path, u64* footprint_out = nullptr);

/// Convenience: load a recorded trace as a ReplayGenerator; the footprint is
/// taken from the file header.
ReplayGenerator replay_from_file(const std::string& name, const std::string& path);

}  // namespace h2
