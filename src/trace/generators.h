// Synthetic access-pattern generators.
//
// The paper drives its simulator with Pin/GPU traces of SPEC CPU2017,
// Rodinia and MLPerf BERT. Those inputs are not redistributable, so this
// reproduction models each workload as a parameterised mixture of the access
// patterns that determine hybrid-memory behaviour: sequential streaming,
// strided walks, (zipf-)random accesses to a hot region, dependent pointer
// chases, and multi-stream stencils. DESIGN.md Section 1 argues why this
// substitution preserves the phenomena under study.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/ckpt_fwd.h"
#include "common/rng.h"
#include "common/types.h"
#include "trace/access.h"

namespace h2 {

/// Relative weights of the pattern components (need not sum to 1).
struct PatternMix {
  double stream = 0.0;
  double stride = 0.0;
  double random = 0.0;
  double chase = 0.0;
  double stencil = 0.0;
};

/// Full parameterisation of one synthetic workload.
struct WorkloadSpec {
  std::string name;
  u64 footprint_bytes = 32ull << 20;
  PatternMix mix{1.0, 0.0, 0.0, 0.0, 0.0};
  u32 stride_bytes = 1024;
  u32 stencil_streams = 5;   ///< parallel offset streams for stencil patterns
  double write_frac = 0.3;
  double hot_frac = 0.1;     ///< fraction of footprint forming the hot region
  double hot_prob = 0.7;     ///< probability a random access hits the hot region
  double zipf_s = 0.8;       ///< skew of random accesses inside a region
  double mean_gap = 20.0;    ///< mean instructions between memory accesses
  double dep_prob = 0.1;     ///< extra probability an access is dependent
};

/// Interface shared by synthetic and replayed traces.
class AccessGenerator {
 public:
  virtual ~AccessGenerator() = default;
  virtual Access next() = 0;
  virtual u64 footprint_bytes() const = 0;
  virtual const std::string& name() const = 0;
  virtual void reset() = 0;

  /// Checkpoint support: every generator must round-trip its replay
  /// position (pure virtual on purpose — a generator that forgets its
  /// cursor would silently replay the wrong stream after a restore).
  virtual void save_state(ckpt::CkptWriter& w) const = 0;
  virtual void load_state(ckpt::CkptReader& r) = 0;
};

/// Deterministic generator realising a WorkloadSpec. Two generators with the
/// same spec and seed produce identical streams.
class SyntheticGenerator final : public AccessGenerator {
 public:
  SyntheticGenerator(WorkloadSpec spec, u64 seed);

  Access next() override;
  u64 footprint_bytes() const override { return spec_.footprint_bytes; }
  const std::string& name() const override { return spec_.name; }
  void reset() override;
  const WorkloadSpec& spec() const { return spec_; }

  void save_state(ckpt::CkptWriter& w) const override;
  void load_state(ckpt::CkptReader& r) override;

 private:
  enum class Pattern : u8 { Stream, Stride, Random, Chase, Stencil };
  Pattern pick_pattern();
  Addr gen_addr(Pattern p, bool& dependent);

  WorkloadSpec spec_;
  u64 seed_;
  Rng rng_;
  double cum_[5];  ///< cumulative pattern weights
  Addr stream_pos_ = 0;
  Addr stride_pos_ = 0;
  Addr chase_pos_ = 0;
  std::vector<Addr> stencil_pos_;
  u32 stencil_next_ = 0;
};

/// A workload whose behaviour changes over time: a cyclic sequence of
/// (spec, access-count) phases. This is what the paper's phase-based
/// re-exploration (Section IV-C, 500 M-cycle phases) exists for — the
/// evaluated SPEC/Rodinia mixes are stable, but programs with distinct
/// phases need the search reopened when behaviour shifts.
class PhasedGenerator final : public AccessGenerator {
 public:
  struct Phase {
    WorkloadSpec spec;
    u64 accesses;  ///< accesses before moving to the next phase
  };

  PhasedGenerator(std::string name, std::vector<Phase> phases, u64 seed);

  Access next() override;
  u64 footprint_bytes() const override { return footprint_; }
  const std::string& name() const override { return name_; }
  void reset() override;

  u32 current_phase() const { return current_; }
  u32 phase_switches() const { return switches_; }

  void save_state(ckpt::CkptWriter& w) const override;
  void load_state(ckpt::CkptReader& r) override;

 private:
  std::string name_;
  std::vector<Phase> phase_specs_;
  std::vector<std::unique_ptr<SyntheticGenerator>> gens_;
  u64 footprint_ = 0;
  u32 current_ = 0;
  u64 remaining_ = 0;
  u32 switches_ = 0;
};

/// Replays a recorded trace (see trace/trace_io.h), looping at the end.
class ReplayGenerator final : public AccessGenerator {
 public:
  ReplayGenerator(std::string name, std::vector<Access> accesses, u64 footprint);

  Access next() override;
  u64 footprint_bytes() const override { return footprint_; }
  const std::string& name() const override { return name_; }
  void reset() override { pos_ = 0; }
  size_t size() const { return accesses_.size(); }

  void save_state(ckpt::CkptWriter& w) const override;
  void load_state(ckpt::CkptReader& r) override;

 private:
  std::string name_;
  std::vector<Access> accesses_;
  u64 footprint_;
  size_t pos_ = 0;
};

}  // namespace h2
