// A single memory access in a workload trace.
#pragma once

#include "common/types.h"

namespace h2 {

struct Access {
  Addr addr = 0;       ///< byte address (within the generator's footprint base)
  u32 gap = 0;         ///< instructions executed since the previous access
  bool write = false;
  bool dependent = false;  ///< must wait for the previous load (pointer chase)
};

}  // namespace h2
