#include "trace/trace_io.h"

#include <cstdio>
#include <memory>

#include "common/assert.h"

namespace h2 {

namespace {

constexpr u32 kMagic = 0x48325452;  // "H2TR"
constexpr u32 kVersion = 1;

struct Header {
  u32 magic;
  u32 version;
  u64 count;
  u64 footprint;
};

#pragma pack(push, 1)
struct Record {
  u64 addr;
  u32 gap;
  u8 flags;  // bit0 = write, bit1 = dependent
};
#pragma pack(pop)

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

u64 record_trace(AccessGenerator& gen, u64 count, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  H2_ASSERT(f != nullptr, "cannot open %s for writing", path.c_str());
  Header h{kMagic, kVersion, count, gen.footprint_bytes()};
  H2_ASSERT(std::fwrite(&h, sizeof(h), 1, f.get()) == 1, "header write failed");
  u64 bytes = sizeof(h);
  // Buffered in chunks to keep the write fast without holding the whole trace.
  constexpr u64 kChunk = 1 << 14;
  std::vector<Record> buf;
  buf.reserve(kChunk);
  for (u64 i = 0; i < count; ++i) {
    const Access a = gen.next();
    buf.push_back(Record{a.addr, a.gap,
                         static_cast<u8>((a.write ? 1u : 0u) | (a.dependent ? 2u : 0u))});
    if (buf.size() == kChunk || i + 1 == count) {
      H2_ASSERT(std::fwrite(buf.data(), sizeof(Record), buf.size(), f.get()) == buf.size(),
                "record write failed");
      bytes += buf.size() * sizeof(Record);
      buf.clear();
    }
  }
  return bytes;
}

std::vector<Access> load_trace(const std::string& path, u64* footprint_out) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  H2_ASSERT(f != nullptr, "cannot open %s for reading", path.c_str());
  Header h{};
  H2_ASSERT(std::fread(&h, sizeof(h), 1, f.get()) == 1, "header read failed");
  H2_ASSERT(h.magic == kMagic, "%s is not a Hydrogen trace", path.c_str());
  H2_ASSERT(h.version == kVersion, "unsupported trace version %u", h.version);
  if (footprint_out) *footprint_out = h.footprint;
  std::vector<Access> out;
  out.reserve(h.count);
  std::vector<Record> buf(1 << 14);
  u64 remaining = h.count;
  while (remaining > 0) {
    const u64 want = std::min<u64>(remaining, buf.size());
    const u64 got = std::fread(buf.data(), sizeof(Record), want, f.get());
    H2_ASSERT(got == want, "trace truncated: %s", path.c_str());
    for (u64 i = 0; i < got; ++i) {
      out.push_back(Access{buf[i].addr, buf[i].gap, (buf[i].flags & 1) != 0,
                           (buf[i].flags & 2) != 0});
    }
    remaining -= got;
  }
  return out;
}

ReplayGenerator replay_from_file(const std::string& name, const std::string& path) {
  u64 footprint = 0;
  std::vector<Access> accesses = load_trace(path, &footprint);
  return ReplayGenerator(name, std::move(accesses), footprint);
}

}  // namespace h2
