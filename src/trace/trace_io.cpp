#include "trace/trace_io.h"

#include <cstdio>
#include <memory>

namespace h2 {

namespace {

constexpr u32 kMagic = 0x48325452;  // "H2TR"
constexpr u32 kVersion = 1;

struct Header {
  u32 magic;
  u32 version;
  u64 count;
  u64 footprint;
};

#pragma pack(push, 1)
struct Record {
  u64 addr;
  u32 gap;
  u8 flags;  // bit0 = write, bit1 = dependent
};
#pragma pack(pop)

constexpr u8 kKnownFlags = 0x3;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

[[noreturn]] void trace_fail(const std::string& path, const std::string& why) {
  throw TraceError(path + ": " + why);
}

/// Byte size of the file, via seek-to-end (the files are small enough that
/// an extra seek beats platform-specific stat plumbing).
u64 file_size(std::FILE* f, const std::string& path) {
  if (std::fseek(f, 0, SEEK_END) != 0) trace_fail(path, "seek failed");
  const long end = std::ftell(f);
  if (end < 0) trace_fail(path, "tell failed");
  if (std::fseek(f, 0, SEEK_SET) != 0) trace_fail(path, "seek failed");
  return static_cast<u64>(end);
}

}  // namespace

u64 record_trace(AccessGenerator& gen, u64 count, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) trace_fail(path, "cannot open for writing");
  Header h{kMagic, kVersion, count, gen.footprint_bytes()};
  if (std::fwrite(&h, sizeof(h), 1, f.get()) != 1) {
    trace_fail(path, "header write failed");
  }
  u64 bytes = sizeof(h);
  // Buffered in chunks to keep the write fast without holding the whole trace.
  constexpr u64 kChunk = 1 << 14;
  std::vector<Record> buf;
  buf.reserve(kChunk);
  for (u64 i = 0; i < count; ++i) {
    const Access a = gen.next();
    buf.push_back(Record{a.addr, a.gap,
                         static_cast<u8>((a.write ? 1u : 0u) | (a.dependent ? 2u : 0u))});
    if (buf.size() == kChunk || i + 1 == count) {
      if (std::fwrite(buf.data(), sizeof(Record), buf.size(), f.get()) != buf.size()) {
        trace_fail(path, "record write failed");
      }
      bytes += buf.size() * sizeof(Record);
      buf.clear();
    }
  }
  return bytes;
}

std::vector<Access> load_trace(const std::string& path, u64* footprint_out) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) trace_fail(path, "cannot open for reading");
  const u64 size = file_size(f.get(), path);
  Header h{};
  if (size < sizeof(h) || std::fread(&h, sizeof(h), 1, f.get()) != 1) {
    trace_fail(path, "truncated header (file is " + std::to_string(size) +
                         " bytes, header needs " + std::to_string(sizeof(h)) + ")");
  }
  if (h.magic != kMagic) trace_fail(path, "not a Hydrogen trace (bad magic)");
  if (h.version != kVersion) {
    trace_fail(path, "unsupported trace version " + std::to_string(h.version));
  }
  // Validate the record count against the actual file size *before* reserving
  // memory for it: a corrupted count would otherwise turn into a multi-GiB
  // allocation (or an overflowing reserve) instead of a clean error.
  const u64 payload = size - sizeof(h);
  if (payload % sizeof(Record) != 0) {
    trace_fail(path, "trailing partial record (" +
                         std::to_string(payload % sizeof(Record)) + " stray bytes)");
  }
  const u64 available = payload / sizeof(Record);
  if (h.count != available) {
    trace_fail(path, "truncated: header promises " + std::to_string(h.count) +
                         " records but the file holds " + std::to_string(available));
  }
  if (footprint_out) *footprint_out = h.footprint;
  std::vector<Access> out;
  out.reserve(h.count);
  std::vector<Record> buf(1 << 14);
  u64 remaining = h.count;
  while (remaining > 0) {
    const u64 want = std::min<u64>(remaining, buf.size());
    const u64 got = std::fread(buf.data(), sizeof(Record), want, f.get());
    if (got != want) trace_fail(path, "read failed mid-trace");
    for (u64 i = 0; i < got; ++i) {
      if ((buf[i].flags & ~kKnownFlags) != 0) {
        trace_fail(path, "garbage record " +
                             std::to_string(h.count - remaining + i) +
                             ": undefined flag bits 0x" +
                             std::to_string(buf[i].flags & ~kKnownFlags));
      }
      out.push_back(Access{buf[i].addr, buf[i].gap, (buf[i].flags & 1) != 0,
                           (buf[i].flags & 2) != 0});
    }
    remaining -= got;
  }
  return out;
}

ReplayGenerator replay_from_file(const std::string& name, const std::string& path) {
  u64 footprint = 0;
  std::vector<Access> accesses = load_trace(path, &footprint);
  return ReplayGenerator(name, std::move(accesses), footprint);
}

}  // namespace h2
