// Named workload models and the paper's Table II workload combinations.
//
// CPU workloads model the memory-intensive SPEC CPU2017 subset used by the
// paper; GPU workloads model the Rodinia kernels and MLPerf BERT inference.
// Each is a WorkloadSpec tuned to the workload's published memory character
// (footprint, pattern mix, write ratio, intensity, dependence). Footprints
// are scaled-down from native sizes; all evaluation numbers are ratios, so
// only the relative geometry matters (see DESIGN.md Section 1).
#pragma once

#include <string>
#include <vector>

#include "trace/generators.h"

namespace h2 {

/// Lookup by name; aborts on unknown names (the test suite enumerates all).
const WorkloadSpec& cpu_workload_spec(const std::string& name);
const WorkloadSpec& gpu_workload_spec(const std::string& name);

std::vector<std::string> cpu_workload_names();
std::vector<std::string> gpu_workload_names();

/// One row of Table II: four CPU workloads (run rate-2 on 8 cores) plus one
/// GPU kernel.
struct ComboSpec {
  std::string name;                 ///< "C1" .. "C12"
  std::vector<std::string> cpu;     ///< four CPU workload names
  std::string gpu;                  ///< one GPU workload name
};

const std::vector<ComboSpec>& table2_combos();
const ComboSpec& combo(const std::string& name);

/// Returns a copy of `spec` with the footprint multiplied by num/den
/// (used by sensitivity sweeps and fast test configurations).
WorkloadSpec with_scaled_footprint(const WorkloadSpec& spec, u64 num, u64 den);

}  // namespace h2
