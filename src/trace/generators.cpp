#include "trace/generators.h"

#include <algorithm>

#include "common/assert.h"
#include "common/ckpt_io.h"

namespace h2 {

namespace {
constexpr u32 kLineBytes = 64;
}

SyntheticGenerator::SyntheticGenerator(WorkloadSpec spec, u64 seed)
    : spec_(std::move(spec)), seed_(seed), rng_(seed) {
  H2_ASSERT(spec_.footprint_bytes >= kLineBytes * 16, "footprint too small: %s",
            spec_.name.c_str());
  const double w[5] = {spec_.mix.stream, spec_.mix.stride, spec_.mix.random,
                       spec_.mix.chase, spec_.mix.stencil};
  double total = 0;
  for (double x : w) {
    H2_ASSERT(x >= 0.0, "negative pattern weight in %s", spec_.name.c_str());
    total += x;
  }
  H2_ASSERT(total > 0.0, "all-zero pattern mix in %s", spec_.name.c_str());
  double acc = 0;
  for (u32 i = 0; i < 5; ++i) {
    acc += w[i] / total;
    cum_[i] = acc;
  }
  reset();
}

void SyntheticGenerator::reset() {
  rng_.reseed(seed_);
  // Seed-dependent stream phase: parallel instances of the same workload
  // (e.g. GPU clusters decomposing one kernel) start at different offsets.
  stream_pos_ = rng_.next_below(spec_.footprint_bytes / kLineBytes) * kLineBytes;
  stride_pos_ = rng_.next_below(spec_.footprint_bytes / kLineBytes) * kLineBytes;
  chase_pos_ = 0;
  stencil_pos_.assign(spec_.stencil_streams, 0);
  const u64 lane =
      (spec_.footprint_bytes / std::max<u32>(1, spec_.stencil_streams)) & ~static_cast<u64>(kLineBytes - 1);
  for (u32 i = 0; i < spec_.stencil_streams; ++i) stencil_pos_[i] = lane * i;
  stencil_next_ = 0;
}

SyntheticGenerator::Pattern SyntheticGenerator::pick_pattern() {
  const double u = rng_.next_double();
  for (u32 i = 0; i < 5; ++i) {
    if (u < cum_[i]) return static_cast<Pattern>(i);
  }
  return Pattern::Stencil;
}

Addr SyntheticGenerator::gen_addr(Pattern p, bool& dependent) {
  const u64 fp = spec_.footprint_bytes;
  switch (p) {
    case Pattern::Stream: {
      const Addr a = stream_pos_;
      stream_pos_ = (stream_pos_ + kLineBytes) % fp;
      return a;
    }
    case Pattern::Stride: {
      const Addr a = stride_pos_;
      stride_pos_ = (stride_pos_ + spec_.stride_bytes) % fp;
      return a;
    }
    case Pattern::Random: {
      const bool hot = rng_.chance(spec_.hot_prob);
      const u64 region = hot ? std::max<u64>(kLineBytes * 16,
                                             static_cast<u64>(fp * spec_.hot_frac))
                             : fp;
      const u64 lines = region / kLineBytes;
      const u64 line = spec_.zipf_s > 0.0 ? rng_.next_zipf(lines, spec_.zipf_s)
                                          : rng_.next_below(lines);
      if (hot) {
        // The hot working set is a contiguous region at the base of the
        // footprint (a table, frontier or tile in real workloads), so its
        // blocks spread one-per-set over consecutive hybrid-memory sets.
        return line * kLineBytes;
      }
      // Cold accesses scatter uniformly over the whole footprint.
      const u64 scrambled = splitmix64(line) % lines;
      return scrambled * kLineBytes;
    }
    case Pattern::Chase: {
      dependent = true;
      // A pseudo-random walk confined to the hot region: the next address is
      // a deterministic hash of the current one, modelling linked structures.
      const u64 region = std::max<u64>(kLineBytes * 64,
                                       static_cast<u64>(fp * spec_.hot_frac));
      const u64 lines = region / kLineBytes;
      chase_pos_ = splitmix64(chase_pos_ + 0x9e37) % lines;
      return chase_pos_ * kLineBytes;
    }
    case Pattern::Stencil: {
      Addr& pos = stencil_pos_[stencil_next_];
      stencil_next_ = (stencil_next_ + 1) % static_cast<u32>(stencil_pos_.size());
      const Addr a = pos;
      pos = (pos + kLineBytes) % fp;
      return a;
    }
  }
  return 0;
}

Access SyntheticGenerator::next() {
  Access acc;
  bool dependent = false;
  const Pattern p = pick_pattern();
  acc.addr = gen_addr(p, dependent);
  acc.gap = static_cast<u32>(rng_.next_gap(spec_.mean_gap, 1));
  acc.write = rng_.chance(spec_.write_frac);
  acc.dependent = dependent || rng_.chance(spec_.dep_prob);
  return acc;
}

void SyntheticGenerator::save_state(ckpt::CkptWriter& w) const {
  rng_.save(w);
  w.put_u64(stream_pos_);
  w.put_u64(stride_pos_);
  w.put_u64(chase_pos_);
  w.put_pod_vec(stencil_pos_);
  w.put_u32(stencil_next_);
}

void SyntheticGenerator::load_state(ckpt::CkptReader& r) {
  rng_.load(r);
  stream_pos_ = r.get_u64();
  stride_pos_ = r.get_u64();
  chase_pos_ = r.get_u64();
  r.get_pod_vec_exact(stencil_pos_);
  stencil_next_ = r.get_u32();
  if (stencil_next_ >= stencil_pos_.size()) {
    r.fail("generator " + spec_.name + ": stencil cursor out of range");
  }
}

PhasedGenerator::PhasedGenerator(std::string name, std::vector<Phase> phases, u64 seed)
    : name_(std::move(name)), phase_specs_(std::move(phases)) {
  H2_ASSERT(!phase_specs_.empty(), "phased workload %s needs phases", name_.c_str());
  for (size_t i = 0; i < phase_specs_.size(); ++i) {
    H2_ASSERT(phase_specs_[i].accesses > 0, "phase %zu of %s has zero length", i,
              name_.c_str());
    gens_.push_back(std::make_unique<SyntheticGenerator>(
        phase_specs_[i].spec, splitmix64(seed + i)));
    footprint_ = std::max(footprint_, phase_specs_[i].spec.footprint_bytes);
  }
  reset();
}

void PhasedGenerator::reset() {
  for (auto& g : gens_) g->reset();
  current_ = 0;
  remaining_ = phase_specs_[0].accesses;
  switches_ = 0;
}

Access PhasedGenerator::next() {
  if (remaining_ == 0) {
    current_ = (current_ + 1) % static_cast<u32>(gens_.size());
    remaining_ = phase_specs_[current_].accesses;
    switches_++;
  }
  remaining_--;
  return gens_[current_]->next();
}

ReplayGenerator::ReplayGenerator(std::string name, std::vector<Access> accesses,
                                 u64 footprint)
    : name_(std::move(name)), accesses_(std::move(accesses)), footprint_(footprint) {
  H2_ASSERT(!accesses_.empty(), "empty replay trace %s", name_.c_str());
}

void PhasedGenerator::save_state(ckpt::CkptWriter& w) const {
  for (const auto& g : gens_) g->save_state(w);
  w.put_u32(current_);
  w.put_u64(remaining_);
  w.put_u32(switches_);
}

void PhasedGenerator::load_state(ckpt::CkptReader& r) {
  for (auto& g : gens_) g->load_state(r);
  current_ = r.get_u32();
  remaining_ = r.get_u64();
  switches_ = r.get_u32();
  if (current_ >= gens_.size()) {
    r.fail("phased workload " + name_ + ": phase cursor out of range");
  }
}

Access ReplayGenerator::next() {
  const Access a = accesses_[pos_];
  pos_ = (pos_ + 1) % accesses_.size();
  return a;
}

void ReplayGenerator::save_state(ckpt::CkptWriter& w) const {
  w.put_u64(pos_);
}

void ReplayGenerator::load_state(ckpt::CkptReader& r) {
  pos_ = r.get_u64();
  if (pos_ >= accesses_.size()) {
    r.fail("replay trace " + name_ + ": position out of range");
  }
}

}  // namespace h2
