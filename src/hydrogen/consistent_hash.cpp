#include "hydrogen/consistent_hash.h"

#include <algorithm>

#include "common/assert.h"
#include "common/rng.h"

namespace h2 {

u64 hrw_score(u64 salt, u32 set, u32 item) {
  return mix_hash(salt, (static_cast<u64>(set) << 20) | item, 0x48325748ull);
}

std::vector<u32> hrw_top(u64 salt, u32 set, u32 k, u32 n) {
  H2_ASSERT(k <= n, "hrw_top: k=%u > n=%u", k, n);
  std::vector<u32> items(n);
  for (u32 i = 0; i < n; ++i) items[i] = i;
  std::sort(items.begin(), items.end(), [&](u32 a, u32 b) {
    const u64 sa = hrw_score(salt, set, a);
    const u64 sb = hrw_score(salt, set, b);
    return sa != sb ? sa > sb : a < b;
  });
  items.resize(k);
  return items;
}

u32 hrw_rank(u64 salt, u32 set, u32 item, u32 n) {
  H2_ASSERT(item < n, "hrw_rank: item out of range");
  const u64 mine = hrw_score(salt, set, item);
  u32 rank = 0;
  for (u32 i = 0; i < n; ++i) {
    if (i == item) continue;
    const u64 s = hrw_score(salt, set, i);
    if (s > mine || (s == mine && i < item)) rank++;
  }
  return rank;
}

bool hrw_selected(u64 salt, u32 set, u32 item, u32 k, u32 n) {
  return hrw_rank(salt, set, item, n) < k;
}

std::vector<u32> hrw_rank_all(u64 salt, u32 set, u32 n) {
  // Sorting by (score desc, index asc) places item i at position
  // hrw_rank(salt, set, i, n): the pairwise tie-break in hrw_rank
  // (s > mine || (s == mine && i < item)) is exactly this ordering.
  std::vector<u32> order(n);
  for (u32 i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](u32 a, u32 b) {
    const u64 sa = hrw_score(salt, set, a);
    const u64 sb = hrw_score(salt, set, b);
    return sa != sb ? sa > sb : a < b;
  });
  std::vector<u32> rank(n);
  for (u32 pos = 0; pos < n; ++pos) rank[order[pos]] = pos;
  return rank;
}

void HrwRankTable::configure(u64 salt, u32 n) {
  salt_ = salt;
  n_ = n;
  rows_.clear();
}

void HrwRankTable::invalidate() { rows_.clear(); }

const std::vector<u32>& HrwRankTable::ranks(u32 set) const {
  H2_ASSERT(n_ > 0, "HrwRankTable: ranks() before configure()");
  for (const auto& row : rows_)
    if (row.first == set) return row.second;
  rows_.emplace_back(set, hrw_rank_all(salt_, set, n_));
  return rows_.back().second;
}

}  // namespace h2
