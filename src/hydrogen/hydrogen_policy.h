// The full Hydrogen partitioning policy (paper Section IV), combining
//  - decoupled fast-memory capacity/bandwidth partitioning (IV-A),
//  - token-based GPU migration throttling (IV-B),
//  - epoch-based hill-climbing search over (cap, bw, tok) with phase
//    restarts (IV-C),
//  - consistent-hashing way selection + lazy reconfiguration (IV-D; the
//    lazy mechanics live in HybridMemory, driven by this policy's
//    way_owner/channel_of_way functions).
//
// Variants (paper Fig. 5): `DP` enables only decoupled partitioning with the
// fixed heuristic split; `DP+Token` adds the migration throttle at a fixed
// 15 % level; `Full` adds the online search.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "hybridmem/policy.h"
#include "hydrogen/decoupled_partition.h"
#include "hydrogen/hill_climb.h"
#include "hydrogen/token_bucket.h"

namespace h2 {

/// Fast-memory swap variants evaluated in Fig. 7(a). (The `Ideal` variant is
/// a mechanism knob: HybridMemConfig::ideal_swap.)
enum class SwapMode : u8 {
  On,    ///< Hydrogen default: promote hot CPU blocks into dedicated channels
  Prob,  ///< probabilistically bypass half of the swaps
  Off,   ///< never swap
};

struct HydrogenConfig {
  bool decoupled = true;  ///< IV-A (off = coupled WayPart-style mapping)
  bool token = true;      ///< IV-B
  bool search = true;     ///< IV-C
  /// Separate token counters per slow channel instead of one global counter.
  /// The paper tried this and found "negligible difference" (Section IV-B);
  /// the ablation bench verifies that claim.
  bool per_channel_tokens = false;

  // Fixed heuristic configuration used when `search` is off: 75 % capacity
  // to the CPU, 25 % of the channels CPU-dedicated, 15 % migration budget.
  double fixed_cpu_capacity_frac = 0.75;
  double fixed_cpu_bw_frac = 0.25;
  double fixed_tok_frac = 0.15;

  /// Token budget levels as fractions of the recent GPU miss rate (the tok
  /// search dimension indexes this table).
  std::vector<double> tok_levels = {0.025, 0.05, 0.10, 0.15, 0.25, 0.40, 0.70, 1.0};

  Cycle faucet_period = 100'000;  ///< token faucet period (paper: 1 M cycles)
  Cycle phase_length = 0;         ///< 0 = no phase restarts (paper: 500 M cycles)

  SwapMode swap = SwapMode::On;
  double swap_prob = 0.5;  ///< bypass probability in Prob mode

  u64 seed = 0x48796472ull;
};

class HydrogenPolicy final : public PartitionPolicy {
 public:
  explicit HydrogenPolicy(const HydrogenConfig& cfg = {});

  const char* name() const override { return "hydrogen"; }

  void bind(u32 num_channels, u32 assoc, u32 num_sets) override;

  u32 channel_of_way(u32 set, u32 way) const override;
  bool way_allowed(u32 set, u32 way, Requestor cls) const override;
  Requestor way_owner(u32 set, u32 way) const override;
  bool allow_migration(const PolicyContext& ctx, bool victim_dirty) override;
  i32 pick_swap_way(const PolicyContext& ctx, u32 hit_way) override;
  void tick(Cycle now) override { tokens_.advance(now); }
  bool on_epoch(const EpochFeedback& fb) override;
  /// Reported-counter reset only: the climber, partition, token state and
  /// the epoch-ordering watermark (time stays monotonic across a warmup
  /// reset) are all preserved.
  void reset_measurement() override { reconfigurations_ = 0; }

  const DecoupledPartition& partition() const { return partition_; }
  const TokenBucket& tokens() const { return tokens_; }
  const HillClimber* climber() const { return climber_.get(); }
  const HydrogenConfig& config() const { return cfg_; }
  ParamPoint active_point() const { return active_; }
  u64 reconfigurations() const { return reconfigurations_; }

  /// Applies an explicit parameter point (used by the exhaustive-search
  /// bench of Fig. 8 and by tests). Returns true if anything changed.
  bool apply_point(const ParamPoint& p);

  void save_state(ckpt::CkptWriter& w) const override;

 protected:
  void load_state(ckpt::CkptReader& r) override;

 private:
  u64 token_budget_for(double frac) const;

  HydrogenConfig cfg_;
  DecoupledPartition partition_;
  TokenBucket tokens_;
  std::vector<TokenBucket> channel_tokens_;  ///< used when per_channel_tokens
  std::unique_ptr<HillClimber> climber_;
  Rng rng_;
  ParamPoint active_;
  double gpu_miss_rate_ = 0.0;  ///< misses per cycle, exponentially smoothed
  Cycle next_phase_ = 0;
  bool settling_ = false;  ///< discard the epoch right after a reconfiguration
  u64 reconfigurations_ = 0;
  Cycle last_epoch_now_ = 0;  ///< epoch-ordering invariant (H2_CHECK)
};

}  // namespace h2
