// Decoupled set-partitioning (paper Section IV-F "Discussion").
//
// The alternative to Hydrogen's way-partitioning: cache sets are statically
// interleaved across the fast channels; the sets living on `bw` dedicated
// channels hold CPU data only, and OS page colouring steers each side's
// pages into its designated sets (modelled by the remap_set hook). Capacity
// decoupling picks additional CPU sets on the shared channels by a
// consistent threshold hash, so — like the way-partitioned design — stepping
// the capacity knob only flips an incremental slice of sets.
//
// The paper notes this variant "inherits the typical drawbacks such as high
// repartitioning overheads and OS-level modifications": repartitioning flips
// whole sets (every resident block in a flipped set is misplaced at once),
// which the ablation bench quantifies against way-partitioned Hydrogen.
#pragma once

#include <vector>

#include "hybridmem/policy.h"
#include "hydrogen/token_bucket.h"

namespace h2 {

struct SetPartConfig {
  double cpu_set_frac = 0.75;  ///< capacity share (fraction of all sets)
  double cpu_bw_frac = 0.25;   ///< fraction of channels dedicated to CPU sets
  bool token = true;           ///< reuse Hydrogen's migration throttle
  double tok_frac = 0.15;
  Cycle faucet_period = 100'000;
  u64 seed = 0x5e7ca57ull;
};

class SetPartPolicy final : public PartitionPolicy {
 public:
  explicit SetPartPolicy(const SetPartConfig& cfg = {});

  const char* name() const override { return "hydrogen-setpart"; }

  void bind(u32 num_channels, u32 assoc, u32 num_sets) override;

  u32 remap_set(u32 natural_set, Requestor cls) const override;
  u32 channel_of_way(u32 set, u32 way) const override;
  bool way_allowed(u32 set, u32 way, Requestor cls) const override;
  Requestor way_owner(u32 set, u32 way) const override;
  bool allow_migration(const PolicyContext& ctx, bool victim_dirty) override;
  void tick(Cycle now) override { tokens_.advance(now); }
  bool on_epoch(const EpochFeedback& fb) override;

  /// Which side owns a set under the current configuration.
  Requestor set_owner(u32 set) const;
  /// Re-partitions the set space (the expensive operation the paper warns
  /// about). Returns true if ownership changed anywhere.
  bool set_partition(double cpu_set_frac);
  u32 cpu_set_count() const { return static_cast<u32>(cpu_sets_.size()); }
  /// The clamped fraction currently in force (scripted epoch schedules step
  /// it relative to this value).
  double cpu_set_frac() const { return cfg_.cpu_set_frac; }

  void save_state(ckpt::CkptWriter& w) const override;

 protected:
  void load_state(ckpt::CkptReader& r) override;

 private:
  bool channel_dedicated(u32 ch) const;
  void rebuild_side_lists();

  SetPartConfig cfg_;
  TokenBucket tokens_;
  u32 threshold_ = 0;  ///< shared-channel sets with hash < threshold are CPU
  std::vector<u32> cpu_sets_;
  std::vector<u32> gpu_sets_;
  // Dedicated-channel flags, precomputed at bind(): set_owner() consults
  // channel_dedicated() on every access and rebuild_side_lists() on every
  // set, so the per-call HRW rank scan is hoisted into one hrw_rank_all()
  // pass (the membership depends only on seed/bw_frac/geometry, all fixed
  // after bind).
  std::vector<u8> ded_flag_;
  double gpu_miss_rate_ = 0.0;
};

}  // namespace h2
