#include "hydrogen/hydrogen_policy.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "check/check.h"
#include "common/assert.h"
#include "common/ckpt_io.h"

namespace h2 {

HydrogenPolicy::HydrogenPolicy(const HydrogenConfig& cfg)
    : cfg_(cfg),
      partition_(4, 4),
      tokens_(/*budget=*/1'000'000'000, cfg.faucet_period),
      rng_(cfg.seed) {
  H2_ASSERT(!cfg.tok_levels.empty(), "need at least one token level");
}

void HydrogenPolicy::bind(u32 num_channels, u32 assoc, u32 num_sets) {
  PartitionPolicy::bind(num_channels, assoc, num_sets);
  partition_ = DecoupledPartition(num_channels, assoc, cfg_.seed);

  // Fixed heuristic starting point (also the DP / DP+Token configuration).
  const u32 cap = static_cast<u32>(std::lround(cfg_.fixed_cpu_capacity_frac * assoc));
  const u32 bw = static_cast<u32>(std::lround(cfg_.fixed_cpu_bw_frac * num_channels));
  partition_.set_config(cap, bw);

  u32 tok_idx = 0;
  double best_delta = 1e9;
  for (u32 i = 0; i < cfg_.tok_levels.size(); ++i) {
    const double d = std::abs(cfg_.tok_levels[i] - cfg_.fixed_tok_frac);
    if (d < best_delta) {
      best_delta = d;
      tok_idx = i;
    }
  }
  active_ = ParamPoint{partition_.cap(), partition_.bw(), tok_idx};

  if (cfg_.search) {
    ParamRanges ranges;
    ranges.cap_min = partition_.cap_min();
    ranges.cap_max = partition_.cap_max();
    ranges.bw_min = partition_.bw_min();
    ranges.bw_max = partition_.bw_max();
    ranges.tok_min = 0;
    ranges.tok_max = static_cast<u32>(cfg_.tok_levels.size()) - 1;
    climber_ = std::make_unique<HillClimber>(active_, ranges);
  }
  next_phase_ = cfg_.phase_length;

  // Until the first epoch establishes a GPU miss rate, leave the bucket
  // effectively unthrottled (the paper initialises conservatively too).
  tokens_.set_budget(cfg_.token ? 1'000'000'000 : ~0ull);
}

u32 HydrogenPolicy::channel_of_way(u32 set, u32 way) const {
  if (!cfg_.decoupled) return way % num_channels_;  // coupled mapping
  return partition_.channel_of_way(set, way);
}

bool HydrogenPolicy::way_allowed(u32 set, u32 way, Requestor cls) const {
  if (assoc_ < 2) return true;
  const bool cpu_way = partition_.is_cpu_way(set, way);
  return cls == Requestor::Cpu ? cpu_way : !cpu_way;
}

Requestor HydrogenPolicy::way_owner(u32 set, u32 way) const {
  if (assoc_ < 2) return Requestor::Cpu;
  return partition_.is_cpu_way(set, way) ? Requestor::Cpu : Requestor::Gpu;
}

bool HydrogenPolicy::allow_migration(const PolicyContext& ctx, bool victim_dirty) {
  if (ctx.cls == Requestor::Cpu) return true;
  if (!cfg_.token) return true;
  // 1 token per refill, 2 when a dirty writeback (or flat-mode swap, which
  // the mechanism reports as victim_dirty) doubles the slow traffic.
  const u64 cost = victim_dirty ? 2 : 1;
  if (cfg_.per_channel_tokens) {
    // Lazily sized: one bucket per observed slow channel, each with an even
    // share of the global budget.
    while (channel_tokens_.size() <= ctx.slow_channel) {
      channel_tokens_.emplace_back(tokens_.budget(), cfg_.faucet_period);
    }
    return channel_tokens_[ctx.slow_channel].try_consume(ctx.now, cost);
  }
  return tokens_.try_consume(ctx.now, cost);
}

i32 HydrogenPolicy::pick_swap_way(const PolicyContext& ctx, u32 hit_way) {
  if (cfg_.swap == SwapMode::Off || !cfg_.decoupled) return -1;
  if (ctx.cls != Requestor::Cpu) return -1;
  if (!partition_.is_cpu_spill_way(ctx.set, hit_way)) return -1;
  if (cfg_.swap == SwapMode::Prob && rng_.chance(cfg_.swap_prob)) return -1;
  H2_ASSERT(table_ != nullptr, "policy not attached to a remap table");

  // Only promote blocks with demonstrated re-reference ("the hottest CPU
  // data", Section IV-A) — a single hit is not evidence of hotness and
  // swapping on it would churn the dedicated channels.
  if (table_->way(ctx.set, hit_way).hits < 2) return -1;

  // Promote the hot block: swap with the LRU CPU block that sits in a
  // dedicated channel. Only swap if that block is colder (older stamp) than
  // the hit block.
  const u64 hit_lru = table_->way(ctx.set, hit_way).lru;
  i32 best = -1;
  u64 best_lru = hit_lru;
  for (u32 w = 0; w < assoc_; ++w) {
    if (w == hit_way) continue;
    if (!partition_.is_cpu_way(ctx.set, w)) continue;
    if (partition_.is_cpu_spill_way(ctx.set, w)) continue;  // not dedicated
    const auto rw = table_->way(ctx.set, w);
    if (!rw.valid) return static_cast<i32>(w);  // free dedicated slot: take it
    if (rw.lru < best_lru) {
      best_lru = rw.lru;
      best = static_cast<i32>(w);
    }
  }
  return best;
}

u64 HydrogenPolicy::token_budget_for(double frac) const {
  // Budget = frac x (GPU misses expected per faucet period).
  const double per_period = gpu_miss_rate_ * static_cast<double>(cfg_.faucet_period);
  return std::max<u64>(1, static_cast<u64>(frac * per_period));
}

bool HydrogenPolicy::apply_point(const ParamPoint& p) {
  H2_CHECK(1, p.cap >= partition_.cap_min() && p.cap <= partition_.cap_max() &&
               p.bw >= partition_.bw_min() && p.bw <= partition_.bw_max() &&
               p.tok < cfg_.tok_levels.size(),
           "hydrogen: parameter point (cap=%u, bw=%u, tok=%u) outside legal "
           "ranges cap[%u,%u] bw[%u,%u] tok[0,%zu)",
           p.cap, p.bw, p.tok, partition_.cap_min(), partition_.cap_max(),
           partition_.bw_min(), partition_.bw_max(), cfg_.tok_levels.size());
  const bool changed = !(p == active_);
  active_ = p;
  partition_.set_config(p.cap, p.bw);
  invalidate_mapping();
  if (cfg_.token) {
    const u64 budget = token_budget_for(
        cfg_.tok_levels[std::min<size_t>(p.tok, cfg_.tok_levels.size() - 1)]);
    tokens_.set_budget(budget);
    // Per-channel buckets split the budget evenly.
    if (!channel_tokens_.empty()) {
      const u64 share = std::max<u64>(1, budget / channel_tokens_.size());
      for (auto& tb : channel_tokens_) tb.set_budget(share);
    }
  }
  return changed;
}

void HydrogenPolicy::save_state(ckpt::CkptWriter& w) const {
  // The partition's rings/memos are deterministic functions of (cap, bw);
  // set_config() on load rebuilds them bit-identically.
  w.put_u32(partition_.cap());
  w.put_u32(partition_.bw());
  tokens_.save(w);
  w.put_u32(static_cast<u32>(channel_tokens_.size()));
  for (const TokenBucket& tb : channel_tokens_) tb.save(w);
  w.put_bool(climber_ != nullptr);
  if (climber_) climber_->save(w);
  rng_.save(w);
  w.put_u32(active_.cap);
  w.put_u32(active_.bw);
  w.put_u32(active_.tok);
  w.put_f64(gpu_miss_rate_);
  w.put_u64(next_phase_);
  w.put_bool(settling_);
  w.put_u64(reconfigurations_);
  w.put_u64(last_epoch_now_);
}

void HydrogenPolicy::load_state(ckpt::CkptReader& r) {
  const u32 cap = r.get_u32();
  const u32 bw = r.get_u32();
  if (cap < partition_.cap_min() || cap > partition_.cap_max() ||
      bw < partition_.bw_min() || bw > partition_.bw_max())
    r.fail("hydrogen partition (cap, bw) outside the geometry's legal ranges");
  partition_.set_config(cap, bw);
  tokens_.load(r);
  const u32 n_channel_buckets = r.get_u32();
  if (n_channel_buckets > 4096) r.fail("implausible per-channel token bucket count");
  channel_tokens_.clear();
  for (u32 i = 0; i < n_channel_buckets; ++i) {
    channel_tokens_.emplace_back(0, cfg_.faucet_period);
    channel_tokens_.back().load(r);
  }
  const bool have_climber = r.get_bool();
  if (have_climber != (climber_ != nullptr))
    r.fail("checkpoint and configuration disagree on the search climber");
  if (climber_) climber_->load(r);
  rng_.load(r);
  active_.cap = r.get_u32();
  active_.bw = r.get_u32();
  active_.tok = r.get_u32();
  if (active_.tok >= cfg_.tok_levels.size())
    r.fail("hydrogen active token level out of range");
  gpu_miss_rate_ = r.get_f64();
  next_phase_ = r.get_u64();
  settling_ = r.get_bool();
  reconfigurations_ = r.get_u64();
  last_epoch_now_ = r.get_u64();
}

bool HydrogenPolicy::on_epoch(const EpochFeedback& fb) {
  // Reconfiguration happens only here, at epoch boundaries, and the epochs
  // themselves must arrive in strictly increasing cycle order.
  H2_CHECK(1, last_epoch_now_ == 0 || fb.now > last_epoch_now_,
           "hydrogen: epoch feedback out of order (now=%llu after %llu)",
           static_cast<unsigned long long>(fb.now),
           static_cast<unsigned long long>(last_epoch_now_));
  last_epoch_now_ = fb.now;

  // Refresh the GPU miss-rate estimate used to size token budgets.
  if (fb.epoch_cycles > 0) {
    const double rate =
        static_cast<double>(fb.gpu_misses) / static_cast<double>(fb.epoch_cycles);
    gpu_miss_rate_ = gpu_miss_rate_ == 0.0 ? rate : 0.5 * gpu_miss_rate_ + 0.5 * rate;
  }

  if (!cfg_.token && !cfg_.search) return false;

  if (!cfg_.search) {
    // DP+Token: keep the fixed token fraction but re-size the absolute
    // budget as the miss rate moves.
    const u64 budget = token_budget_for(cfg_.fixed_tok_frac);
    tokens_.set_budget(budget);
    if (!channel_tokens_.empty()) {
      const u64 share = std::max<u64>(1, budget / channel_tokens_.size());
      for (auto& tb : channel_tokens_) tb.set_budget(share);
    }
    return false;
  }

  // Phase restart (paper: every 500 M cycles start a fresh exploration).
  if (cfg_.phase_length > 0 && fb.now >= next_phase_) {
    climber_->restart();
    next_phase_ += cfg_.phase_length;
  }

  // The epoch right after a reconfiguration is polluted by lazy fixups and
  // cold partitions; discard it so the climber compares steady-state
  // throughput, not transition noise.
  if (settling_) {
    settling_ = false;
    return false;
  }

  const ParamPoint next = climber_->observe(fb.weighted_ipc);
  const bool changed = apply_point(next);
  if (changed) {
    settling_ = true;
    reconfigurations_++;
  }
  return changed;
}

}  // namespace h2
