#include "hydrogen/setpart_policy.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/ckpt_io.h"
#include "common/rng.h"
#include "hydrogen/consistent_hash.h"

namespace h2 {

namespace {
constexpr u32 kHashSpace = 1u << 16;
}

SetPartPolicy::SetPartPolicy(const SetPartConfig& cfg)
    : cfg_(cfg), tokens_(~0ull, cfg.faucet_period) {}

bool SetPartPolicy::channel_dedicated(u32 ch) const {
  if (num_channels_ < 2) return true;
  return ded_flag_[ch] != 0;
}

void SetPartPolicy::bind(u32 num_channels, u32 assoc, u32 num_sets) {
  PartitionPolicy::bind(num_channels, assoc, num_sets);
  // Hoisted HRW selection: one rank pass at bind instead of a rank scan per
  // channel_dedicated() call (which set_owner() makes on every access).
  ded_flag_.assign(num_channels_, 1);
  if (num_channels_ >= 2) {
    const u32 ded = std::clamp<u32>(
        static_cast<u32>(std::lround(cfg_.cpu_bw_frac * num_channels_)), 1,
        num_channels_ - 1);
    const std::vector<u32> ranks = hrw_rank_all(cfg_.seed ^ 1, 0xC01u, num_channels_);
    for (u32 ch = 0; ch < num_channels_; ++ch) ded_flag_[ch] = ranks[ch] < ded ? 1 : 0;
  }
  set_partition(cfg_.cpu_set_frac);
  tokens_.set_budget(cfg_.token ? ~0ull : ~0ull);
}

bool SetPartPolicy::set_partition(double cpu_set_frac) {
  cpu_set_frac = std::clamp(cpu_set_frac, 0.05, 0.95);
  // Dedicated-channel sets are always CPU; top up on the shared channels to
  // reach the requested overall fraction. The threshold hash makes the
  // selection consistent: raising the fraction only adds sets.
  double ded_frac = 0;
  for (u32 ch = 0; ch < num_channels_; ++ch) ded_frac += channel_dedicated(ch) ? 1 : 0;
  ded_frac /= std::max(1u, num_channels_);
  const double extra =
      ded_frac < 1.0 ? std::clamp((cpu_set_frac - ded_frac) / (1.0 - ded_frac), 0.0, 1.0)
                     : 0.0;
  const u32 new_threshold = static_cast<u32>(extra * kHashSpace);
  const bool changed = new_threshold != threshold_ || cpu_sets_.empty();
  threshold_ = new_threshold;
  cfg_.cpu_set_frac = cpu_set_frac;
  rebuild_side_lists();
  invalidate_mapping();
  return changed;
}

Requestor SetPartPolicy::set_owner(u32 set) const {
  if (channel_dedicated(set % std::max(1u, num_channels_))) return Requestor::Cpu;
  const u32 h = static_cast<u32>(mix_hash(cfg_.seed, set) % kHashSpace);
  return h < threshold_ ? Requestor::Cpu : Requestor::Gpu;
}

void SetPartPolicy::rebuild_side_lists() {
  cpu_sets_.clear();
  gpu_sets_.clear();
  for (u32 s = 0; s < num_sets_; ++s) {
    (set_owner(s) == Requestor::Cpu ? cpu_sets_ : gpu_sets_).push_back(s);
  }
  // Degenerate guard: both sides always get at least one set.
  if (cpu_sets_.empty()) cpu_sets_.push_back(0);
  if (gpu_sets_.empty()) gpu_sets_.push_back(num_sets_ - 1);
}

u32 SetPartPolicy::remap_set(u32 natural_set, Requestor cls) const {
  if (set_owner(natural_set) == cls) return natural_set;
  // Page colouring: the OS would have placed this page in one of the
  // requestor's own sets; pick deterministically by address hash.
  const auto& own = cls == Requestor::Cpu ? cpu_sets_ : gpu_sets_;
  return own[mix_hash(cfg_.seed ^ 2, natural_set) % own.size()];
}

u32 SetPartPolicy::channel_of_way(u32 set, u32 way) const {
  (void)way;
  // Whole sets are interleaved across channels; all ways of a set live on
  // the set's channel (this coupling is the variant's inherent limitation).
  return set % std::max(1u, num_channels_);
}

bool SetPartPolicy::way_allowed(u32 set, u32 way, Requestor cls) const {
  (void)way;
  return set_owner(set) == cls;
}

Requestor SetPartPolicy::way_owner(u32 set, u32 way) const {
  (void)way;
  return set_owner(set);
}

bool SetPartPolicy::allow_migration(const PolicyContext& ctx, bool victim_dirty) {
  if (ctx.cls == Requestor::Cpu || !cfg_.token) return true;
  return tokens_.try_consume(ctx.now, victim_dirty ? 2 : 1);
}

bool SetPartPolicy::on_epoch(const EpochFeedback& fb) {
  if (!cfg_.token) return false;
  if (fb.epoch_cycles > 0) {
    const double rate =
        static_cast<double>(fb.gpu_misses) / static_cast<double>(fb.epoch_cycles);
    gpu_miss_rate_ = gpu_miss_rate_ == 0.0 ? rate : 0.5 * gpu_miss_rate_ + 0.5 * rate;
  }
  const double per_period = gpu_miss_rate_ * static_cast<double>(cfg_.faucet_period);
  tokens_.set_budget(std::max<u64>(1, static_cast<u64>(cfg_.tok_frac * per_period)));
  return false;
}

void SetPartPolicy::save_state(ckpt::CkptWriter& w) const {
  // The side lists are a deterministic function of (threshold, geometry);
  // rebuild_side_lists() on load reproduces them bit-identically.
  w.put_f64(cfg_.cpu_set_frac);
  w.put_u32(threshold_);
  tokens_.save(w);
  w.put_f64(gpu_miss_rate_);
}

void SetPartPolicy::load_state(ckpt::CkptReader& r) {
  cfg_.cpu_set_frac = r.get_f64();
  threshold_ = r.get_u32();
  if (threshold_ > kHashSpace) r.fail("set-partition threshold beyond the hash space");
  tokens_.load(r);
  gpu_miss_rate_ = r.get_f64();
  rebuild_side_lists();
}

}  // namespace h2
