#include "hydrogen/decoupled_partition.h"

#include <algorithm>

#include "check/check.h"
#include "common/assert.h"
#include "hydrogen/consistent_hash.h"

namespace h2 {

namespace {
// Channel selection uses a fixed pseudo-set key so it is global (the same
// dedicated channels for every set), while way selection is per set.
constexpr u32 kChannelKey = 0xC0FFEEu;
}  // namespace

DecoupledPartition::DecoupledPartition(u32 num_channels, u32 assoc, u64 salt)
    : channels_(num_channels), assoc_(assoc), salt_(salt) {
  H2_ASSERT(num_channels >= 1 && assoc >= 1, "bad partition geometry");
  set_config(assoc >= 2 ? assoc - 1 : assoc, 1);
}

void DecoupledPartition::set_config(u32 cap, u32 bw) {
  cap_ = std::clamp(cap, cap_min(), cap_max());
  bw_ = std::clamp(bw, bw_min(), bw_max());
  if (H2_CHECK_ACTIVE(2)) audit();
}

void DecoupledPartition::audit(u32 sample_sets) const {
  if (!H2_CHECK_ACTIVE(2)) return;
  // Channel ring: the HRW selection must dedicate exactly bw channels.
  if (channels_ >= 2) {
    u32 dedicated = 0;
    for (u32 ch = 0; ch < channels_; ++ch) dedicated += is_dedicated_channel(ch) ? 1 : 0;
    H2_CHECK(2, dedicated == bw_,
             "decoupled partition: HRW channel ring dedicates %u of %u "
             "channels, configured bw=%u",
             dedicated, channels_, bw_);
  }
  // Way ring: every sampled set must be fully covered — each way classified,
  // exactly cap of them CPU, and every way mapped to a real channel.
  for (u32 set = 0; set < sample_sets; ++set) {
    u32 cpu_ways = 0;
    for (u32 w = 0; w < assoc_; ++w) {
      cpu_ways += is_cpu_way(set, w) ? 1 : 0;
      const u32 ch = channel_of_way(set, w);
      H2_CHECK(2, ch < channels_,
               "decoupled partition: set %u way %u mapped to channel %u of %u",
               set, w, ch, channels_);
    }
    if (assoc_ >= 2) {
      H2_CHECK(2, cpu_ways == cap_,
               "decoupled partition: set %u has %u CPU ways, configured cap=%u "
               "(HRW ring does not cover the set)",
               set, cpu_ways, cap_);
    }
  }
}

bool DecoupledPartition::is_cpu_way(u32 set, u32 way) const {
  if (assoc_ < 2) return true;  // degenerate: the single way is shared
  return hrw_rank(salt_, set, way, assoc_) < cap_;
}

u32 DecoupledPartition::way_rank(u32 set, u32 way) const {
  return hrw_rank(salt_, set, way, assoc_);
}

bool DecoupledPartition::is_dedicated_channel(u32 ch) const {
  if (channels_ < 2) return true;
  return hrw_rank(salt_ ^ 1, kChannelKey, ch, channels_) < bw_;
}

u32 DecoupledPartition::nth_dedicated(u32 idx) const {
  u32 seen = 0;
  for (u32 ch = 0; ch < channels_; ++ch) {
    if (is_dedicated_channel(ch)) {
      if (seen == idx) return ch;
      seen++;
    }
  }
  H2_ASSERT(false, "nth_dedicated(%u) with bw=%u", idx, bw_);
  return 0;
}

u32 DecoupledPartition::nth_shared(u32 idx) const {
  u32 seen = 0;
  for (u32 ch = 0; ch < channels_; ++ch) {
    if (!is_dedicated_channel(ch)) {
      if (seen == idx) return ch;
      seen++;
    }
  }
  H2_ASSERT(false, "nth_shared(%u) with bw=%u", idx, bw_);
  return 0;
}

u32 DecoupledPartition::channel_of_way(u32 set, u32 way) const {
  if (channels_ < 2) return 0;
  const u32 n_shared = channels_ - bw_;
  const u32 rank = way_rank(set, way);

  if (assoc_ >= 2 && rank < cap_) {
    // CPU way: the first `bw` ranks live in the dedicated channels, the
    // remaining spill ways rotate across the shared channels.
    if (rank < bw_) return nth_dedicated((set + rank) % bw_);
    if (n_shared == 0) return nth_dedicated((set + rank) % bw_);
    return nth_shared((set + (rank - bw_)) % n_shared);
  }

  // GPU way (or degenerate single-way set): rotate across all shared
  // channels per set so GPU streams touch every shared channel.
  const u32 gpu_idx = assoc_ >= 2 ? rank - cap_ : way;
  if (n_shared == 0) return nth_dedicated((set + gpu_idx) % bw_);
  return nth_shared((set + gpu_idx) % n_shared);
}

bool DecoupledPartition::is_cpu_spill_way(u32 set, u32 way) const {
  if (assoc_ < 2 || channels_ < 2) return false;
  const u32 rank = way_rank(set, way);
  return rank < cap_ && rank >= bw_ && channels_ - bw_ > 0;
}

}  // namespace h2
