#include "hydrogen/decoupled_partition.h"

#include <algorithm>

#include "check/check.h"
#include "common/assert.h"
#include "hydrogen/consistent_hash.h"

namespace h2 {

namespace {
// Channel selection uses a fixed pseudo-set key so it is global (the same
// dedicated channels for every set), while way selection is per set.
constexpr u32 kChannelKey = 0xC0FFEEu;
}  // namespace

DecoupledPartition::DecoupledPartition(u32 num_channels, u32 assoc, u64 salt)
    : channels_(num_channels), assoc_(assoc), salt_(salt) {
  H2_ASSERT(num_channels >= 1 && assoc >= 1, "bad partition geometry");
  channel_ranks_.configure(salt_ ^ 1, channels_);
  memo_set_.assign(kRankMemoSlots, ~0u);
  memo_rank_.resize(static_cast<size_t>(kRankMemoSlots) * assoc_);
  set_config(assoc >= 2 ? assoc - 1 : assoc, 1);
}

void DecoupledPartition::set_config(u32 cap, u32 bw) {
  cap_ = std::clamp(cap, cap_min(), cap_max());
  bw_ = std::clamp(bw, bw_min(), bw_max());
  rebuild_channel_ring();
  if (H2_CHECK_ACTIVE(2)) audit();
}

void DecoupledPartition::rebuild_channel_ring() {
  ded_flag_.assign(channels_, 0);
  ded_list_.clear();
  shared_list_.clear();
  const std::vector<u32>& ranks = channel_ranks_.ranks(kChannelKey);
  for (u32 ch = 0; ch < channels_; ++ch) {
    const bool ded = channels_ < 2 || ranks[ch] < bw_;
    ded_flag_[ch] = ded ? 1 : 0;
    (ded ? ded_list_ : shared_list_).push_back(ch);
  }
}

const u32* DecoupledPartition::set_ranks(u32 set) const {
  const u32 slot = set & (kRankMemoSlots - 1);
  u32* ranks = memo_rank_.data() + static_cast<size_t>(slot) * assoc_;
  if (memo_set_[slot] != set) {
    // Reproduce hrw_rank() for every way of the set in one pass: n hashes,
    // then the same (score, index) comparison it uses per pair.
    u64 scores[64];
    std::vector<u64> big;
    u64* s = scores;
    if (assoc_ > 64) {
      big.resize(assoc_);
      s = big.data();
    }
    for (u32 w = 0; w < assoc_; ++w) s[w] = hrw_score(salt_, set, w);
    for (u32 w = 0; w < assoc_; ++w) {
      u32 rank = 0;
      for (u32 i = 0; i < assoc_; ++i) {
        if (i == w) continue;
        if (s[i] > s[w] || (s[i] == s[w] && i < w)) rank++;
      }
      ranks[w] = rank;
    }
    memo_set_[slot] = set;
  }
  return ranks;
}

void DecoupledPartition::audit(u32 sample_sets) const {
  if (!H2_CHECK_ACTIVE(2)) return;
  // Channel ring: the HRW selection must dedicate exactly bw channels.
  if (channels_ >= 2) {
    u32 dedicated = 0;
    for (u32 ch = 0; ch < channels_; ++ch) dedicated += is_dedicated_channel(ch) ? 1 : 0;
    H2_CHECK(2, dedicated == bw_,
             "decoupled partition: HRW channel ring dedicates %u of %u "
             "channels, configured bw=%u",
             dedicated, channels_, bw_);
  }
  // Way ring: every sampled set must be fully covered — each way classified,
  // exactly cap of them CPU, and every way mapped to a real channel. The
  // rank memo must also agree with the uncached hrw_rank it replicates.
  for (u32 set = 0; set < sample_sets; ++set) {
    u32 cpu_ways = 0;
    for (u32 w = 0; w < assoc_; ++w) {
      cpu_ways += is_cpu_way(set, w) ? 1 : 0;
      const u32 ch = channel_of_way(set, w);
      H2_CHECK(2, ch < channels_,
               "decoupled partition: set %u way %u mapped to channel %u of %u",
               set, w, ch, channels_);
      H2_CHECK(2, way_rank(set, w) == hrw_rank(salt_, set, w, assoc_),
               "decoupled partition: memoised rank of set %u way %u diverges "
               "from hrw_rank (%u != %u)",
               set, w, way_rank(set, w), hrw_rank(salt_, set, w, assoc_));
    }
    if (assoc_ >= 2) {
      H2_CHECK(2, cpu_ways == cap_,
               "decoupled partition: set %u has %u CPU ways, configured cap=%u "
               "(HRW ring does not cover the set)",
               set, cpu_ways, cap_);
    }
  }
}

bool DecoupledPartition::is_cpu_way(u32 set, u32 way) const {
  if (assoc_ < 2) return true;  // degenerate: the single way is shared
  return set_ranks(set)[way] < cap_;
}

u32 DecoupledPartition::way_rank(u32 set, u32 way) const {
  return set_ranks(set)[way];
}

bool DecoupledPartition::is_dedicated_channel(u32 ch) const {
  if (channels_ < 2) return true;
  return ded_flag_[ch] != 0;
}

u32 DecoupledPartition::nth_dedicated(u32 idx) const {
  H2_ASSERT(idx < ded_list_.size(), "nth_dedicated(%u) with bw=%u", idx, bw_);
  return ded_list_[idx];
}

u32 DecoupledPartition::nth_shared(u32 idx) const {
  H2_ASSERT(idx < shared_list_.size(), "nth_shared(%u) with bw=%u", idx, bw_);
  return shared_list_[idx];
}

u32 DecoupledPartition::channel_of_way(u32 set, u32 way) const {
  if (channels_ < 2) return 0;
  const u32 n_shared = channels_ - bw_;
  const u32 rank = way_rank(set, way);

  if (assoc_ >= 2 && rank < cap_) {
    // CPU way: the first `bw` ranks live in the dedicated channels, the
    // remaining spill ways rotate across the shared channels.
    if (rank < bw_) return nth_dedicated((set + rank) % bw_);
    if (n_shared == 0) return nth_dedicated((set + rank) % bw_);
    return nth_shared((set + (rank - bw_)) % n_shared);
  }

  // GPU way (or degenerate single-way set): rotate across all shared
  // channels per set so GPU streams touch every shared channel.
  const u32 gpu_idx = assoc_ >= 2 ? rank - cap_ : way;
  if (n_shared == 0) return nth_dedicated((set + gpu_idx) % bw_);
  return nth_shared((set + gpu_idx) % n_shared);
}

bool DecoupledPartition::is_cpu_spill_way(u32 set, u32 way) const {
  if (assoc_ < 2 || channels_ < 2) return false;
  const u32 rank = way_rank(set, way);
  return rank < cap_ && rank >= bw_ && channels_ - bw_ > 0;
}

}  // namespace h2
