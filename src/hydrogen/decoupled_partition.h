// Decoupled capacity/bandwidth partitioning of the fast memory
// (paper Section IV-A + Fig. 3(b)).
//
// Two independent knobs:
//   cap — how many ways per set belong to the CPU (capacity split);
//   bw  — how many superchannels are CPU-dedicated (bandwidth split).
// CPU ways are chosen per set by rendezvous hashing (consistent across cap
// changes); dedicated channels are chosen globally the same way. The mapping
// places the highest-ranked CPU ways in the dedicated channels (where the
// hot CPU data live, maintained by fast-memory swaps) and spills the rest
// into the shared channels; GPU ways rotate across all shared channels per
// set so GPU streams enjoy the full shared bandwidth.
//
// The HRW evaluations are cached: the global channel ring (dedicated/shared
// membership and enumeration order) is precomputed at every set_config(),
// and per-set way ranks are memoised one set at a time — the mechanism's
// victim/swap scans query all ways of one set back to back, so a single-set
// memo converts O(assoc) hashes per query into O(assoc) hashes per set
// visit. Both caches reproduce hrw_rank() exactly; results are bit-identical
// to the uncached implementation.
#pragma once

#include <vector>

#include "common/types.h"
#include "hydrogen/consistent_hash.h"

namespace h2 {

class DecoupledPartition {
 public:
  DecoupledPartition(u32 num_channels, u32 assoc, u64 salt = 0x4879647267656eull);

  /// Sets the configuration. `cap` is clamped to [1, assoc-1] and `bw` to
  /// [1, channels-1] where the geometry allows a real split; degenerate
  /// geometries (assoc or channels == 1) collapse gracefully.
  void set_config(u32 cap, u32 bw);

  u32 cap() const { return cap_; }
  u32 bw() const { return bw_; }
  u32 num_channels() const { return channels_; }
  u32 assoc() const { return assoc_; }

  /// Whether (set, way) is a CPU way under the current cap.
  bool is_cpu_way(u32 set, u32 way) const;

  /// Rank of `way` among the set's ways by HRW score (0 = first CPU pick).
  u32 way_rank(u32 set, u32 way) const;

  /// Whether a channel is CPU-dedicated under the current bw.
  bool is_dedicated_channel(u32 ch) const;

  /// The channel serving (set, way); the core of the decoupled mapping.
  u32 channel_of_way(u32 set, u32 way) const;

  /// True when the CPU way `way` of `set` is mapped to a *shared* channel —
  /// i.e. it is a spill way whose hot blocks should be swapped into the
  /// dedicated channels (fast-memory swap, Section IV-A).
  bool is_cpu_spill_way(u32 set, u32 way) const;

  /// Consistent-hash coverage audit (H2_CHECK level 2): exactly `bw`
  /// channels are dedicated, every sampled set has exactly `cap` CPU ways,
  /// and every (set, way) maps to a channel in range. Runs automatically at
  /// each set_config(); `sample_sets` bounds the per-set scan.
  void audit(u32 sample_sets = 64) const;

  /// Clamped legal ranges for the search (used by the hill climber).
  u32 cap_min() const { return assoc_ >= 2 ? 1 : assoc_; }
  u32 cap_max() const { return assoc_ >= 2 ? assoc_ - 1 : assoc_; }
  u32 bw_min() const { return channels_ >= 2 ? 1 : channels_; }
  u32 bw_max() const { return channels_ >= 2 ? channels_ - 1 : channels_; }

 private:
  u32 nth_dedicated(u32 idx) const;  ///< idx-th dedicated channel (HRW order)
  u32 nth_shared(u32 idx) const;     ///< idx-th shared channel (HRW order)

  void rebuild_channel_ring();
  const u32* set_ranks(u32 set) const;  ///< memoised way ranks of one set

  u32 channels_;
  u32 assoc_;
  u64 salt_;
  u32 cap_ = 1;
  u32 bw_ = 1;

  // Channel rank row, hoisted out of rebuild_channel_ring(): the HRW ranks
  // depend only on (salt, channels), both fixed at construction, so the ring
  // rebuild on every set_config() — the hill climber calls it per epoch —
  // reuses one cached row instead of re-hashing O(channels^2).
  HrwRankTable channel_ranks_;

  // Channel ring caches, rebuilt on every set_config (bw-dependent).
  std::vector<u8> ded_flag_;       ///< per channel: CPU-dedicated?
  std::vector<u32> ded_list_;      ///< dedicated channels in index order
  std::vector<u32> shared_list_;   ///< shared channels in index order

  // Way-rank memo (ranks depend on salt/assoc only, so cap/bw changes do
  // not invalidate it). Direct-mapped over the low set bits so interleaved
  // lookups across sets — the hot-loop access pattern — stop thrashing the
  // O(assoc^2) refill; every slot is filled by the same hrw_rank
  // reproduction, so the served ranks are bit-identical to recomputing.
  static constexpr u32 kRankMemoSlots = 256;
  mutable std::vector<u32> memo_set_;   ///< per slot: cached set (~0u = empty)
  mutable std::vector<u32> memo_rank_;  ///< slot-major, assoc_ ranks per slot
};

}  // namespace h2
