// Epoch-based online hill climbing over the three partitioning parameters
// (paper Section IV-C): cap (CPU ways), bw (CPU-dedicated channels) and tok
// (GPU migration budget level). Each sampling epoch measures the weighted
// IPC of the currently-active point; the climber proposes single-step
// neighbours and greedily ascends, converging after a full neighbourhood
// sweep without improvement (the paper reports ~20 steps). Every phase
// (e.g. 500 M cycles) the search restarts from the incumbent to track
// program behaviour changes.
#pragma once

#include "common/ckpt_fwd.h"
#include "common/types.h"

namespace h2 {

struct ParamPoint {
  u32 cap = 3;  ///< CPU ways per set
  u32 bw = 1;   ///< CPU-dedicated channels
  u32 tok = 3;  ///< index into the token-budget level table

  bool operator==(const ParamPoint&) const = default;
};

struct ParamRanges {
  u32 cap_min = 1, cap_max = 3;
  u32 bw_min = 1, bw_max = 3;
  u32 tok_min = 0, tok_max = 7;
};

class HillClimber {
 public:
  HillClimber(ParamPoint start, ParamRanges ranges, double improve_eps = 0.005);

  /// The point that should be active for the current epoch.
  const ParamPoint& current() const { return current_; }

  /// Reports the measured objective (higher is better) of current().
  /// Returns the point to activate for the next epoch.
  ParamPoint observe(double objective);

  bool converged() const { return converged_; }
  const ParamPoint& best() const { return best_; }
  double best_objective() const { return best_score_; }
  u32 steps() const { return steps_; }

  /// Begins a new exploration phase from the incumbent best point.
  void restart();

  /// Checkpoint support: the search cursor and incumbent (ranges and eps are
  /// configuration, rebuilt by the constructor).
  void save(ckpt::CkptWriter& w) const;
  void load(ckpt::CkptReader& r);

 private:
  /// Advances (dim_, dir_) to the next untried neighbour and returns it;
  /// sets converged_ when the whole neighbourhood has been exhausted.
  ParamPoint propose_next();
  u32 get_dim(const ParamPoint& p, u32 dim) const;
  ParamPoint with_dim(ParamPoint p, u32 dim, u32 value) const;
  bool dim_in_range(u32 dim, i64 value) const;

  ParamRanges ranges_;
  double eps_;
  ParamPoint best_;
  ParamPoint current_;
  double best_score_ = -1.0;
  bool have_baseline_ = false;
  bool converged_ = false;
  u32 dim_ = 0;       ///< dimension currently being explored
  i32 dir_ = +1;      ///< step direction
  u32 failures_ = 0;  ///< consecutive non-improving proposals
  u32 steps_ = 0;
};

}  // namespace h2
