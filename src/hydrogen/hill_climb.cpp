#include "hydrogen/hill_climb.h"

#include "common/assert.h"
#include "common/ckpt_io.h"

namespace h2 {

namespace {
constexpr u32 kDims = 3;
constexpr u32 kNeighbourhood = kDims * 2;  // each dim, both directions
}  // namespace

HillClimber::HillClimber(ParamPoint start, ParamRanges ranges, double improve_eps)
    : ranges_(ranges), eps_(improve_eps), best_(start), current_(start) {
  H2_ASSERT(ranges.cap_min <= ranges.cap_max && ranges.bw_min <= ranges.bw_max &&
                ranges.tok_min <= ranges.tok_max,
            "empty parameter ranges");
}

u32 HillClimber::get_dim(const ParamPoint& p, u32 dim) const {
  switch (dim) {
    case 0: return p.cap;
    case 1: return p.bw;
    default: return p.tok;
  }
}

ParamPoint HillClimber::with_dim(ParamPoint p, u32 dim, u32 value) const {
  switch (dim) {
    case 0: p.cap = value; break;
    case 1: p.bw = value; break;
    default: p.tok = value; break;
  }
  return p;
}

bool HillClimber::dim_in_range(u32 dim, i64 value) const {
  switch (dim) {
    case 0: return value >= ranges_.cap_min && value <= ranges_.cap_max;
    case 1: return value >= ranges_.bw_min && value <= ranges_.bw_max;
    default: return value >= ranges_.tok_min && value <= ranges_.tok_max;
  }
}

ParamPoint HillClimber::propose_next() {
  // Try neighbours in (dim, dir) order, skipping out-of-range steps. The
  // failure counter covers the full neighbourhood; once it wraps with no
  // improvement, the search has converged on a local optimum.
  for (u32 attempt = 0; attempt < kNeighbourhood; ++attempt) {
    const i64 value = static_cast<i64>(get_dim(best_, dim_)) + dir_;
    const u32 this_dim = dim_;
    const i32 this_dir = dir_;
    // Advance the cursor for next time.
    if (dir_ == +1) {
      dir_ = -1;
    } else {
      dir_ = +1;
      dim_ = (dim_ + 1) % kDims;
    }
    if (dim_in_range(this_dim, value)) {
      (void)this_dir;
      return with_dim(best_, this_dim, static_cast<u32>(value));
    }
    failures_++;
    if (failures_ >= kNeighbourhood) {
      converged_ = true;
      return best_;
    }
  }
  converged_ = true;
  return best_;
}

ParamPoint HillClimber::observe(double objective) {
  steps_++;
  if (converged_) {
    // Track slow drift of the incumbent's score so a later restart compares
    // against fresh conditions rather than a stale optimum.
    best_score_ = objective;
    current_ = best_;
    return current_;
  }

  if (!have_baseline_) {
    have_baseline_ = true;
    best_score_ = objective;
    current_ = propose_next();
    return current_;
  }

  if (objective > best_score_ * (1.0 + eps_)) {
    // Accept: the proposal becomes the incumbent; reset the neighbourhood
    // sweep so all directions are retried around the new point.
    best_ = current_;
    best_score_ = objective;
    failures_ = 0;
  } else {
    failures_++;
    if (failures_ >= kNeighbourhood) {
      converged_ = true;
      current_ = best_;
      return current_;
    }
  }
  current_ = propose_next();
  return current_;
}

namespace {
void save_point(ckpt::CkptWriter& w, const ParamPoint& p) {
  w.put_u32(p.cap);
  w.put_u32(p.bw);
  w.put_u32(p.tok);
}
ParamPoint load_point(ckpt::CkptReader& r) {
  ParamPoint p;
  p.cap = r.get_u32();
  p.bw = r.get_u32();
  p.tok = r.get_u32();
  return p;
}
}  // namespace

void HillClimber::save(ckpt::CkptWriter& w) const {
  save_point(w, best_);
  save_point(w, current_);
  w.put_f64(best_score_);
  w.put_bool(have_baseline_);
  w.put_bool(converged_);
  w.put_u32(dim_);
  w.put_i32(dir_);
  w.put_u32(failures_);
  w.put_u32(steps_);
}

void HillClimber::load(ckpt::CkptReader& r) {
  best_ = load_point(r);
  current_ = load_point(r);
  best_score_ = r.get_f64();
  have_baseline_ = r.get_bool();
  converged_ = r.get_bool();
  dim_ = r.get_u32();
  dir_ = r.get_i32();
  failures_ = r.get_u32();
  steps_ = r.get_u32();
  if (dim_ >= kDims) r.fail("hill-climb search dimension out of range");
  if (dir_ != 1 && dir_ != -1) r.fail("hill-climb step direction must be +/-1");
}

void HillClimber::restart() {
  converged_ = false;
  have_baseline_ = false;
  failures_ = 0;
  dim_ = 0;
  dir_ = +1;
  current_ = best_;
}

}  // namespace h2
