// Consistent selection via rendezvous (highest-random-weight, HRW) hashing
// (paper Section IV-D, citing Karger et al.).
//
// Hydrogen must pick `k` of `n` ways per set for the CPU (and `b` of `N`
// channels as CPU-dedicated) such that changing `k` by one changes the
// selected subset by exactly one element — that is what keeps
// reconfiguration data movement minimal. Rendezvous hashing gives this
// property for free: score every candidate with a set-keyed hash and select
// the top-k; the top-k and top-(k±1) sets differ by exactly one element,
// and different sets get independent selections (diverse way->channel
// spreading, Section IV-A).
#pragma once

#include <vector>

#include "common/types.h"

namespace h2 {

/// Deterministic score of candidate `item` under key (`salt`, `set`).
u64 hrw_score(u64 salt, u32 set, u32 item);

/// The `k` highest-scored items of [0, n), ordered by descending score.
std::vector<u32> hrw_top(u64 salt, u32 set, u32 k, u32 n);

/// True iff `item` is among the `k` highest-scored items of [0, n).
bool hrw_selected(u64 salt, u32 set, u32 item, u32 k, u32 n);

/// Rank of `item` by descending score among all n items (0 = highest).
u32 hrw_rank(u64 salt, u32 set, u32 item, u32 n);

}  // namespace h2
