// Consistent selection via rendezvous (highest-random-weight, HRW) hashing
// (paper Section IV-D, citing Karger et al.).
//
// Hydrogen must pick `k` of `n` ways per set for the CPU (and `b` of `N`
// channels as CPU-dedicated) such that changing `k` by one changes the
// selected subset by exactly one element — that is what keeps
// reconfiguration data movement minimal. Rendezvous hashing gives this
// property for free: score every candidate with a set-keyed hash and select
// the top-k; the top-k and top-(k±1) sets differ by exactly one element,
// and different sets get independent selections (diverse way->channel
// spreading, Section IV-A).
#pragma once

#include <vector>

#include "common/types.h"

namespace h2 {

/// Deterministic score of candidate `item` under key (`salt`, `set`).
u64 hrw_score(u64 salt, u32 set, u32 item);

/// The `k` highest-scored items of [0, n), ordered by descending score.
std::vector<u32> hrw_top(u64 salt, u32 set, u32 k, u32 n);

/// True iff `item` is among the `k` highest-scored items of [0, n).
bool hrw_selected(u64 salt, u32 set, u32 item, u32 k, u32 n);

/// Rank of `item` by descending score among all n items (0 = highest).
u32 hrw_rank(u64 salt, u32 set, u32 item, u32 n);

/// Ranks of all n items at once: `result[item] == hrw_rank(salt, set, item, n)`
/// for every item. One sort instead of n pairwise passes.
std::vector<u32> hrw_rank_all(u64 salt, u32 set, u32 n);

/// Memoised per-set rank rows. Reconfigure paths (channel rings, dedicated
/// channel masks, the shard router) consult the same (salt, set) ranks in
/// bursts; this caches each row on first use instead of rebuilding it per
/// lookup. Rows are built lazily, so `invalidate()` is cheap and callers can
/// drop everything whenever the backing membership changes.
class HrwRankTable {
 public:
  HrwRankTable() = default;

  /// (Re)binds the table to a (salt, n) universe and drops every cached row.
  void configure(u64 salt, u32 n);

  /// Drops all cached rows; they rebuild lazily on the next `ranks()` call.
  void invalidate();

  /// Rank row for `set` (result[item] == hrw_rank(salt, set, item, n)),
  /// built on first use and cached until invalidated.
  const std::vector<u32>& ranks(u32 set) const;

  /// Convenience: cached equivalent of hrw_rank(salt, set, item, n).
  u32 rank(u32 set, u32 item) const { return ranks(set)[item]; }

  u32 items() const { return n_; }
  u64 salt() const { return salt_; }

 private:
  u64 salt_ = 0;
  u32 n_ = 0;
  // Sparse row store: (set, row) pairs, linearly scanned. Reconfigure bursts
  // touch a handful of distinct sets, so a flat store beats a hash map.
  mutable std::vector<std::pair<u32, std::vector<u32>>> rows_;
};

}  // namespace h2
