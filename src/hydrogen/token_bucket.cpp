#include "hydrogen/token_bucket.h"

// TokenBucket is header-only; this TU anchors the library target.
