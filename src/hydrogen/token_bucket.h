// Token-based migration throttling for the slow-memory bandwidth
// (paper Section IV-B).
//
// A hardware counter holds migration tokens. Each GPU-induced migration
// consumes 1 token for the refill and 1 more when it also causes a dirty
// writeback or a flat-mode swap. When the counter is empty, further GPU
// migrations are suppressed (the demand line is served from slow memory
// without refill). A "token faucet" re-fills the counter to the period
// budget every `period` cycles; the budget is the knob (`tok`) tuned by the
// epoch-based search.
#pragma once

#include "check/check.h"
#include "common/ckpt_io.h"
#include "common/types.h"

namespace h2 {

class TokenBucket {
 public:
  TokenBucket(u64 budget_per_period, Cycle period)
      : budget_(budget_per_period), period_(period), tokens_(budget_per_period) {
    // A zero period would make advance() spin forever on the first call.
    H2_CHECK(1, period > 0, "token bucket period must be > 0 (budget=%llu)",
             static_cast<unsigned long long>(budget_per_period));
  }

  /// Changes the per-period budget (applies from the next faucet refill;
  /// the paper notes a new `tok` takes effect in the next epoch).
  void set_budget(u64 budget) { budget_ = budget; }
  u64 budget() const { return budget_; }
  Cycle period() const { return period_; }

  /// Advances the faucet to `now` (refilling on period boundaries).
  void advance(Cycle now) {
    while (now >= next_refill_) {
      tokens_ = budget_;
      burst_ = budget_;  // a lowered budget only takes effect at this refill
      next_refill_ += period_;
      refills_++;
    }
    H2_CHECK(1, tokens_ <= burst_,
             "token bucket cycle %llu: %llu tokens exceed burst %llu",
             static_cast<unsigned long long>(now),
             static_cast<unsigned long long>(tokens_),
             static_cast<unsigned long long>(burst_));
  }

  /// Consumes `n` tokens if available; returns whether the migration may
  /// proceed. Call advance(now) first (or use try_consume(now, n)).
  bool try_consume(u64 n) {
    if (tokens_ < n) {
      suppressed_++;
      return false;
    }
    tokens_ -= n;
    consumed_ += n;
    return true;
  }

  bool try_consume(Cycle now, u64 n) {
    advance(now);
    return try_consume(n);
  }

  u64 tokens() const { return tokens_; }
  u64 consumed() const { return consumed_; }
  u64 suppressed() const { return suppressed_; }
  u64 refills() const { return refills_; }

  /// Checkpoint support: the full faucet state (budget included — it may
  /// have been retuned since construction).
  void save(ckpt::CkptWriter& w) const {
    w.put_u64(budget_);
    w.put_u64(period_);
    w.put_u64(tokens_);
    w.put_u64(burst_);
    w.put_u64(next_refill_);
    w.put_u64(consumed_);
    w.put_u64(suppressed_);
    w.put_u64(refills_);
  }
  void load(ckpt::CkptReader& r) {
    budget_ = r.get_u64();
    period_ = r.get_u64();
    tokens_ = r.get_u64();
    burst_ = r.get_u64();
    next_refill_ = r.get_u64();
    consumed_ = r.get_u64();
    suppressed_ = r.get_u64();
    refills_ = r.get_u64();
    if (period_ == 0) r.fail("token bucket period must be > 0");
    if (tokens_ > burst_) r.fail("token bucket tokens exceed the burst bound");
  }

 private:
  u64 budget_;
  Cycle period_;
  u64 tokens_;
  u64 burst_ = budget_;  ///< budget in force at the last refill (check bound)
  Cycle next_refill_ = 0;
  u64 consumed_ = 0;
  u64 suppressed_ = 0;
  u64 refills_ = 0;
};

}  // namespace h2
