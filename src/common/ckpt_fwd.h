// Forward declarations for the checkpoint writer/reader, so stateful
// subsystem headers can declare save()/load() without pulling in the full
// ckpt_io.h (only the .cpp files need the definitions).
#pragma once

namespace h2::ckpt {
class CkptWriter;
class CkptReader;
}  // namespace h2::ckpt
