// Lightweight always-on assertion macro used across the simulator.
//
// Simulator invariants guard against silent mis-modelling (a wrong channel
// index corrupts results, it does not crash), so they stay enabled in release
// builds. The cost is negligible relative to the event loop.
#pragma once

#include <cstdio>
#include <cstdlib>

#define H2_ASSERT(cond, ...)                                          \
  do {                                                                \
    if (!(cond)) [[unlikely]] {                                       \
      std::fprintf(stderr, "H2_ASSERT failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, #cond);                        \
      std::fprintf(stderr, "  " __VA_ARGS__);                         \
      std::fprintf(stderr, "\n");                                     \
      std::abort();                                                   \
    }                                                                 \
  } while (0)
