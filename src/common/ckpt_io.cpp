#include "common/ckpt_io.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace h2::ckpt {

namespace {

constexpr char kMagic[8] = {'H', '2', 'C', 'K', 'P', 'T', '\r', '\n'};

void append_pod(std::string& out, const void* p, std::size_t n) {
  out.append(static_cast<const char*>(p), n);
}

[[noreturn]] void raise(const std::string& label, const std::string& section,
                        std::size_t offset, const std::string& what) {
  throw CheckpointError("checkpoint error in " + label + ", section '" +
                        section + "', offset " + std::to_string(offset) + ": " +
                        what);
}

}  // namespace

u64 fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  u64 h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// --------------------------------------------------------------------------
// CkptWriter

void CkptWriter::begin_section(const std::string& name) {
  if (in_section_) {
    throw CheckpointError("ckpt writer: begin_section('" + name +
                          "') inside open section '" + sections_.back().name +
                          "'");
  }
  sections_.push_back(Section{name, {}});
  in_section_ = true;
}

void CkptWriter::end_section() {
  if (!in_section_) throw CheckpointError("ckpt writer: end_section without begin");
  in_section_ = false;
}

void CkptWriter::put_bytes(const void* p, std::size_t n) {
  if (!in_section_) throw CheckpointError("ckpt writer: put outside a section");
  if (n) sections_.back().payload.append(static_cast<const char*>(p), n);
}

void CkptWriter::put_bool_vec(const std::vector<bool>& v) {
  put_u64(v.size());
  for (const bool b : v) put_u8(b ? 1 : 0);
}

std::string CkptWriter::finish() {
  if (in_section_) {
    throw CheckpointError("ckpt writer: finish with open section '" +
                          sections_.back().name + "'");
  }
  std::string out;
  out.append(kMagic, sizeof kMagic);
  const u32 version = kFormatVersion;
  append_pod(out, &version, sizeof version);
  const u32 count = static_cast<u32>(sections_.size());
  append_pod(out, &count, sizeof count);
  for (const Section& s : sections_) {
    const u32 name_len = static_cast<u32>(s.name.size());
    append_pod(out, &name_len, sizeof name_len);
    out.append(s.name);
    const u64 payload_len = s.payload.size();
    append_pod(out, &payload_len, sizeof payload_len);
    out.append(s.payload);
    const u64 sum = fnv1a(s.payload.data(), s.payload.size());
    append_pod(out, &sum, sizeof sum);
  }
  sections_.clear();
  return out;
}

// --------------------------------------------------------------------------
// CkptReader

CkptReader::CkptReader(std::string bytes, std::string label)
    : bytes_(std::move(bytes)), label_(std::move(label)) {
  std::size_t off = 0;
  const auto need = [&](std::size_t n, const char* what) {
    if (bytes_.size() - off < n) raise(label_, "<container>", off, what);
  };
  const auto read_pod = [&](void* dst, std::size_t n, const char* what) {
    need(n, what);
    std::memcpy(dst, bytes_.data() + off, n);
    off += n;
  };

  need(sizeof kMagic, "file shorter than the 8-byte magic");
  if (std::memcmp(bytes_.data(), kMagic, sizeof kMagic) != 0) {
    raise(label_, "<container>", 0, "bad magic (not a checkpoint file, or mangled in transit)");
  }
  off += sizeof kMagic;

  u32 version = 0;
  read_pod(&version, sizeof version, "truncated before format version");
  if (version != kFormatVersion) {
    raise(label_, "<container>", off - sizeof version,
          "unsupported format version " + std::to_string(version) +
              " (this build reads version " + std::to_string(kFormatVersion) + ")");
  }

  u32 count = 0;
  read_pod(&count, sizeof count, "truncated before section count");
  sections_.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    u32 name_len = 0;
    read_pod(&name_len, sizeof name_len, "truncated in section name length");
    need(name_len, "truncated in section name");
    Section s;
    s.name.assign(bytes_.data() + off, name_len);
    off += name_len;
    u64 payload_len = 0;
    read_pod(&payload_len, sizeof payload_len, "truncated in section payload length");
    if (bytes_.size() - off < payload_len) {
      raise(label_, s.name, off, "truncated in section payload");
    }
    s.begin = off;
    s.size = payload_len;
    off += payload_len;
    u64 stored_sum = 0;
    if (bytes_.size() - off < sizeof stored_sum) {
      raise(label_, s.name, off, "truncated before section checksum");
    }
    std::memcpy(&stored_sum, bytes_.data() + off, sizeof stored_sum);
    off += sizeof stored_sum;
    const u64 actual = fnv1a(bytes_.data() + s.begin, s.size);
    if (actual != stored_sum) {
      raise(label_, s.name, s.begin, "checksum mismatch (payload corrupted)");
    }
    sections_.push_back(std::move(s));
  }
  if (off != bytes_.size()) {
    raise(label_, "<container>", off,
          std::to_string(bytes_.size() - off) + " trailing byte(s) after the last section");
  }
}

void CkptReader::enter_section(const std::string& expected_name) {
  if (in_section_) {
    raise(label_, sections_[next_section_ - 1].name, cursor_,
          "enter_section('" + expected_name + "') inside an open section");
  }
  if (next_section_ >= sections_.size()) {
    raise(label_, expected_name, bytes_.size(),
          "expected section is missing (checkpoint ends after " +
              std::to_string(sections_.size()) + " section(s))");
  }
  const Section& s = sections_[next_section_];
  if (s.name != expected_name) {
    raise(label_, s.name, s.begin,
          "expected section '" + expected_name + "' here (layout mismatch)");
  }
  in_section_ = true;
  cursor_ = s.begin;
  end_ = s.begin + s.size;
  next_section_++;
}

void CkptReader::leave_section() {
  if (!in_section_) {
    raise(label_, "<container>", cursor_, "leave_section without enter");
  }
  if (cursor_ != end_) {
    raise(label_, sections_[next_section_ - 1].name, cursor_,
          std::to_string(end_ - cursor_) + " unconsumed byte(s) at section end");
  }
  in_section_ = false;
}

void CkptReader::finish() const {
  if (in_section_) {
    raise(label_, sections_[next_section_ - 1].name, cursor_,
          "finish with a section still open");
  }
  if (next_section_ != sections_.size()) {
    raise(label_, sections_[next_section_].name, sections_[next_section_].begin,
          "unread section at end of load");
  }
}

void CkptReader::get_bytes(void* dst, std::size_t n) {
  if (!in_section_) {
    raise(label_, "<container>", cursor_, "read outside a section");
  }
  if (end_ - cursor_ < n) {
    raise(label_, sections_[next_section_ - 1].name, cursor_,
          "read of " + std::to_string(n) + " byte(s) overruns section payload");
  }
  if (n) std::memcpy(dst, bytes_.data() + cursor_, n);
  cursor_ += n;
}

bool CkptReader::get_bool() {
  const u8 v = get_u8();
  if (v > 1) fail("boolean byte holds " + std::to_string(v));
  return v != 0;
}

std::string CkptReader::get_str() {
  const u64 n = get_u64();
  if (n > remaining()) {
    fail("string length " + std::to_string(n) + " exceeds section payload");
  }
  std::string s(n, '\0');
  get_bytes(s.data(), n);
  return s;
}

void CkptReader::get_bool_vec(std::vector<bool>& v) {
  const u64 n = get_u64();
  if (n != v.size()) {
    fail("bool-vector length " + std::to_string(n) +
         " does not match live size " + std::to_string(v.size()));
  }
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = get_bool();
}

std::size_t CkptReader::remaining() const {
  return in_section_ ? end_ - cursor_ : 0;
}

void CkptReader::fail(const std::string& what) const {
  raise(label_,
        in_section_ ? sections_[next_section_ - 1].name : "<container>",
        cursor_, what);
}

// --------------------------------------------------------------------------
// Durability helpers

bool fsync_stream(std::FILE* f) {
  if (std::fflush(f) != 0) return false;
  const int fd = fileno(f);
  if (fd < 0) return false;
  return ::fsync(fd) == 0;
}

void write_file_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    throw CheckpointError("checkpoint write failed: cannot open " + tmp + ": " +
                          std::strerror(errno));
  }
  const bool wrote =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool synced = wrote && fsync_stream(f);
  const int err = errno;
  std::fclose(f);
  if (!wrote || !synced) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint write failed: " + tmp + ": " +
                          std::strerror(err));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int rerr = errno;
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint publish failed: rename " + tmp + " -> " +
                          path + ": " + std::strerror(rerr));
  }
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    throw CheckpointError("cannot open checkpoint " + path + ": " +
                          std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) {
    throw CheckpointError("read error on checkpoint " + path);
  }
  return out;
}

}  // namespace h2::ckpt
