// Deterministic pseudo-random number generation.
//
// The whole simulator is seed-reproducible: every workload generator and
// stochastic policy owns its own Rng so that module-level changes never
// perturb unrelated random streams. xoshiro256** is used for speed; seeding
// goes through splitmix64 as recommended by the xoshiro authors.
#pragma once

#include <array>

#include "common/ckpt_fwd.h"
#include "common/types.h"

namespace h2 {

/// splitmix64 step; also useful as a cheap 64-bit mixing/hash function.
constexpr u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Mixes several values into one hash; used by consistent hashing and
/// set-index scrambling.
constexpr u64 mix_hash(u64 a, u64 b, u64 c = 0) {
  return splitmix64(splitmix64(a ^ 0x517cc1b727220a95ull) + splitmix64(b) * 0x2545f4914f6cdd1dull + c);
}

/// xoshiro256** generator (public-domain algorithm by Blackman & Vigna).
class Rng {
 public:
  explicit Rng(u64 seed = 0x5eed5eed5eedull) { reseed(seed); }

  void reseed(u64 seed);

  /// Uniform 64-bit value.
  u64 next();

  /// Uniform in [0, bound); bound must be non-zero.
  u64 next_below(u64 bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial.
  bool chance(double p) { return next_double() < p; }

  /// Geometric-ish integer gap with the given mean (>= min_value).
  /// Used for instruction gaps between memory accesses.
  u64 next_gap(double mean, u64 min_value = 0);

  /// Zipf-distributed rank in [0, n) with skew `s` (approximate, via
  /// rejection-inversion-lite; adequate for workload hot-set modelling).
  u64 next_zipf(u64 n, double s);

  /// Checkpoint support: only the xoshiro state words travel — the Zipf
  /// memo is a pure cache of (n, s) and refills bit-identically on demand.
  void save(ckpt::CkptWriter& w) const;
  void load(ckpt::CkptReader& r);

 private:
  std::array<u64, 4> s_{};

  // One-entry memo for the Zipf CDF normaliser, which depends only on
  // (n, s) — a generator draws from one distribution millions of times, and
  // std::pow dominates the sampler. Filled with the exact expression
  // next_zipf() used to evaluate inline, so the draws are bit-identical.
  u64 zipf_n_ = 0;
  double zipf_s_ = 0.0;
  double zipf_norm_ = 0.0;
};

}  // namespace h2
