#include "common/rng.h"

#include <cmath>

#include "common/assert.h"
#include "common/ckpt_io.h"

namespace h2 {

namespace {
constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::reseed(u64 seed) {
  u64 x = seed;
  for (auto& word : s_) {
    x = splitmix64(x);
    word = x;
  }
  // xoshiro must not start from the all-zero state.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

u64 Rng::next() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::next_below(u64 bound) {
  H2_ASSERT(bound != 0, "next_below(0)");
  // Lemire-style multiply-shift; bias is negligible for simulator purposes.
  return static_cast<u64>((static_cast<unsigned __int128>(next()) * bound) >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

u64 Rng::next_gap(double mean, u64 min_value) {
  if (mean <= static_cast<double>(min_value)) return min_value;
  // Exponential with the residual mean, floored.
  const double residual = mean - static_cast<double>(min_value);
  const double u = 1.0 - next_double();  // avoid log(0)
  const double e = -residual * std::log(u);
  return min_value + static_cast<u64>(e);
}

void Rng::save(ckpt::CkptWriter& w) const {
  for (const u64 word : s_) w.put_u64(word);
}

void Rng::load(ckpt::CkptReader& r) {
  for (u64& word : s_) word = r.get_u64();
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) {
    r.fail("all-zero xoshiro state is unreachable");
  }
}

u64 Rng::next_zipf(u64 n, double s) {
  H2_ASSERT(n != 0, "next_zipf(0)");
  if (n == 1) return 0;
  // Approximate inversion of the Zipf CDF via the continuous bounding
  // distribution (Gray et al. style). Accurate enough for locality modelling.
  if (s == 1.0) s = 1.0001;  // avoid the harmonic special case
  const double exp1 = 1.0 - s;
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    const double nd = static_cast<double>(n);
    zipf_norm_ = (std::pow(nd, exp1) - 1.0) / exp1;
  }
  const double norm = zipf_norm_;
  const double u = next_double();
  const double x = std::pow(u * norm * exp1 + 1.0, 1.0 / exp1);
  u64 rank = static_cast<u64>(x) - (x >= 1.0 ? 1 : 0);
  if (rank >= n) rank = n - 1;
  return rank;
}

}  // namespace h2
