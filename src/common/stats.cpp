#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/assert.h"
#include "common/ckpt_io.h"

namespace h2 {

void Histogram::record(u64 value) {
  const u32 b = value == 0 ? 0 : std::min<u32>(kBuckets - 1, static_cast<u32>(std::bit_width(value)));
  buckets_[b]++;
  count_++;
  sum_ += value;
  max_ = std::max(max_, value);
}

u64 Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  const u64 target = static_cast<u64>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  u64 seen = 0;
  for (u32 i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) return i == 0 ? 0 : (1ull << i) - 1;  // bucket upper bound
  }
  return max_;
}

void Histogram::reset() {
  for (auto& b : buckets_) b = 0;
  count_ = sum_ = max_ = 0;
}

void Histogram::save(ckpt::CkptWriter& w) const {
  for (const u64 b : buckets_) w.put_u64(b);
  w.put_u64(count_);
  w.put_u64(sum_);
  w.put_u64(max_);
}

void Histogram::load(ckpt::CkptReader& r) {
  for (u64& b : buckets_) b = r.get_u64();
  count_ = r.get_u64();
  sum_ = r.get_u64();
  max_ = r.get_u64();
}

Counter& StatGroup::counter(const std::string& key) { return counters_[key]; }

void StatGroup::set_gauge(const std::string& key, double value) { gauges_[key] = value; }

double StatGroup::gauge(const std::string& key) const {
  auto it = gauges_.find(key);
  return it == gauges_.end() ? 0.0 : it->second;
}

u64 StatGroup::counter_value(const std::string& key) const {
  auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second.value();
}

void StatGroup::reset() {
  for (auto& [_, c] : counters_) c.reset();
  gauges_.clear();
}

void StatGroup::print(std::ostream& os) const {
  os << "[" << name_ << "]\n";
  for (const auto& [k, c] : counters_) os << "  " << k << " = " << c.value() << "\n";
  for (const auto& [k, g] : gauges_) os << "  " << k << " = " << g << "\n";
}

namespace {
bool needs_quotes(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}
}  // namespace

CsvWriter& CsvWriter::cell(const std::string& s) {
  if (row_started_) os_ << ",";
  row_started_ = true;
  if (needs_quotes(s)) {
    os_ << '"';
    for (char c : s) {
      if (c == '"') os_ << '"';
      os_ << c;
    }
    os_ << '"';
  } else {
    os_ << s;
  }
  return *this;
}

CsvWriter& CsvWriter::cell(double v) {
  if (row_started_) os_ << ",";
  row_started_ = true;
  os_ << v;
  return *this;
}

CsvWriter& CsvWriter::cell(u64 v) {
  if (row_started_) os_ << ",";
  row_started_ = true;
  os_ << v;
  return *this;
}

void CsvWriter::end_row() {
  os_ << "\n";
  row_started_ = false;
}

double geomean(const std::vector<double>& xs) {
  H2_ASSERT(!xs.empty(), "geomean of empty vector");
  double log_sum = 0.0;
  for (double x : xs) {
    H2_ASSERT(x > 0.0, "geomean needs positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace h2
