// Fundamental type aliases shared by every Hydrogen subsystem.
#pragma once

#include <cstdint>
#include <cstddef>
#include <limits>

namespace h2 {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Global simulated time, counted in core clock cycles (3.2 GHz by default).
using Cycle = u64;

/// Byte address in the unified physical address space.
using Addr = u64;

/// Sentinel for "never" / "no pending event".
inline constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

/// Which side of the heterogeneous processor issued a request.
enum class Requestor : u8 { Cpu = 0, Gpu = 1 };

inline constexpr u32 kNumRequestors = 2;

inline constexpr const char* to_string(Requestor r) {
  return r == Requestor::Cpu ? "cpu" : "gpu";
}

/// Memory tier of the hybrid memory.
enum class Tier : u8 { Fast = 0, Slow = 1 };

inline constexpr const char* to_string(Tier t) {
  return t == Tier::Fast ? "fast" : "slow";
}

/// Organisation mode of the hybrid memory (Section II-A of the paper).
enum class HybridMode : u8 {
  Cache,  ///< fast memory is a hardware-managed cache in front of slow memory
  Flat,   ///< both tiers form one flat physical space; migration swaps blocks
};

}  // namespace h2
