// Cooperative cancellation for long-running simulations.
//
// The sweep runner's watchdog cannot kill a worker thread (C++ has no safe
// thread cancellation), so cancellation is cooperative: the watchdog sets a
// Token's flag, and the engine's event loop polls it every few thousand
// steps via cancel::poll(), which throws CancelledError on the worker's own
// stack. The run unwinds cleanly through run_experiment (destructors run,
// no state leaks into the next attempt) and the sweep classifies the slot
// as timed out.
//
// Arming mirrors fault::Scope: a thread-local Token pointer set by an RAII
// Scope. Unarmed, poll() is a thread-local null test -- the engine can
// afford it unconditionally, so Release-build timeouts work too.
#pragma once

#include <atomic>
#include <stdexcept>

namespace h2::cancel {

/// Thrown by poll() on the cancelled thread; caught by the sweep runner and
/// reported as a timed-out slot.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("run cancelled by watchdog") {}
};

/// One cancellation flag, shared between the watchdog (writer) and the
/// worker (reader). Outlives the run it guards: the sweep keeps one Token
/// per worker slot and reset()s it between attempts.
class Token {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  void reset() { cancelled_.store(false, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

namespace detail {
inline Token*& current_slot() {
  static thread_local Token* slot = nullptr;
  return slot;
}
}  // namespace detail

/// The token armed on this thread, or nullptr.
inline Token* current() { return detail::current_slot(); }

/// True when the armed token (if any) has been cancelled.
inline bool requested() {
  Token* t = current();
  return t != nullptr && t->cancelled();
}

/// Throws CancelledError when the armed token has been cancelled; otherwise
/// a thread-local null test plus (when armed) one relaxed atomic load.
inline void poll() {
  if (requested()) throw CancelledError();
}

/// Arms `token` on this thread for the Scope's lifetime; restores the
/// previous token (scopes nest) on destruction.
class Scope {
 public:
  explicit Scope(Token& token) : prev_(detail::current_slot()) {
    detail::current_slot() = &token;
  }
  ~Scope() { detail::current_slot() = prev_; }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Token* prev_;
};

}  // namespace h2::cancel
