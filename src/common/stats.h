// Statistics collection: named counters, scalar gauges, histograms, and a
// registry that can render itself as a table or CSV. Every simulator
// component exposes its measurements through a StatGroup so the harness can
// dump uniform reports (mirrors the paper artifact's extract_performance.py).
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/ckpt_fwd.h"
#include "common/types.h"

namespace h2 {

/// Monotonic event counter.
class Counter {
 public:
  void inc(u64 by = 1) { value_ += by; }
  u64 value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  u64 value_ = 0;
};

/// Power-of-two bucketed histogram (bucket i holds values in [2^i, 2^(i+1))).
/// Used for latency and reuse-distance distributions.
class Histogram {
 public:
  static constexpr u32 kBuckets = 40;

  void record(u64 value);
  u64 count() const { return count_; }
  u64 total() const { return sum_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0; }
  u64 max() const { return max_; }
  /// Approximate p-th percentile (p in [0,100]) from bucket boundaries.
  u64 percentile(double p) const;
  u64 bucket(u32 i) const { return buckets_[i]; }
  void reset();

  void save(ckpt::CkptWriter& w) const;
  void load(ckpt::CkptReader& r);

 private:
  u64 buckets_[kBuckets] = {};
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 max_ = 0;
};

/// A named bundle of counters/gauges with stable iteration order.
class StatGroup {
 public:
  explicit StatGroup(std::string name) : name_(std::move(name)) {}

  Counter& counter(const std::string& key);
  void set_gauge(const std::string& key, double value);
  double gauge(const std::string& key) const;
  u64 counter_value(const std::string& key) const;
  bool has_counter(const std::string& key) const { return counters_.count(key) != 0; }

  const std::string& name() const { return name_; }
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }

  void reset();
  void print(std::ostream& os) const;

 private:
  std::string name_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, double> gauges_;
};

/// Writes rows of (string|double) cells as CSV; quotes only when needed.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  CsvWriter& cell(const std::string& s);
  CsvWriter& cell(double v);
  CsvWriter& cell(u64 v);
  void end_row();

 private:
  std::ostream& os_;
  bool row_started_ = false;
};

/// Geometric mean of a non-empty vector of positive values.
double geomean(const std::vector<double>& xs);

}  // namespace h2
