// Checkpoint byte-stream plumbing: a primitive writer/reader over named,
// checksummed sections, plus the durability helpers (fsync, atomic
// tmp+rename publication) shared by the checkpoint driver and the sweep
// journal.
//
// Container layout (version 1), all integers little-endian native:
//
//   8-byte magic "H2CKPT\r\n" | u32 format version | u32 section count
//   then, per section:
//     u32 name length | name bytes
//     u64 payload length | payload bytes
//     u64 FNV-1a(payload)
//
// The reader parses and validates the whole container up front: magic,
// version, every section bound and every section checksum, and finally that
// no bytes trail the last section. Every load-side primitive is
// bounds-checked against its section payload and leave_section() requires
// the payload to be consumed exactly. FNV-1a over a fixed-length suffix is
// injective in any single byte (xor-then-multiply-by-odd-prime steps are
// bijections of the accumulator), so a one-byte mutation of a payload is
// *guaranteed* to fail its checksum; mutations of the framing fail the
// magic/version/bounds/name checks instead. test_checkpoint fuzzes this.
//
// The magic deliberately embeds "\r\n" so a file that went through any
// text-mode translation fails loudly at the first eight bytes.
#pragma once

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "common/types.h"

namespace h2::ckpt {

inline constexpr u32 kFormatVersion = 1;

/// FNV-1a 64-bit over a byte range.
u64 fnv1a(const void* data, std::size_t n);

/// Raised by every load-side validation failure. The message always names
/// the file, the section (or "<container>" for framing errors) and the
/// absolute byte offset at which the problem was detected.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what) : std::runtime_error(what) {}
};

/// Accumulates named sections of primitive values and assembles the final
/// container bytes. Purely in-memory; publication is the caller's problem
/// (see write_file_atomic below).
class CkptWriter {
 public:
  void begin_section(const std::string& name);
  void end_section();

  void put_bytes(const void* p, std::size_t n);
  void put_u8(u8 v) { put_bytes(&v, sizeof v); }
  void put_u16(u16 v) { put_bytes(&v, sizeof v); }
  void put_u32(u32 v) { put_bytes(&v, sizeof v); }
  void put_u64(u64 v) { put_bytes(&v, sizeof v); }
  void put_i32(i32 v) { put_bytes(&v, sizeof v); }
  void put_i64(i64 v) { put_bytes(&v, sizeof v); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  /// Bit-exact: the double's object representation, not a decimal render.
  void put_f64(double v) {
    u64 bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_u64(bits);
  }
  void put_str(const std::string& s) {
    put_u64(s.size());
    put_bytes(s.data(), s.size());
  }
  template <class T>
  void put_pod_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_u64(v.size());
    put_bytes(v.data(), v.size() * sizeof(T));
  }
  /// vector<bool> has no contiguous storage; stored one byte per element.
  void put_bool_vec(const std::vector<bool>& v);

  /// Assembles magic + version + all sections. The writer is spent after.
  std::string finish();

 private:
  struct Section {
    std::string name;
    std::string payload;
  };
  std::vector<Section> sections_;
  bool in_section_ = false;
};

/// Validating reader over container bytes. The constructor verifies the
/// whole frame (magic, version, bounds, per-section checksums, no trailing
/// bytes); enter_section() then hands out sections strictly in stored order,
/// refusing a name mismatch.
class CkptReader {
 public:
  /// `label` names the source in errors (a file path, or e.g. "<memory>").
  CkptReader(std::string bytes, std::string label);

  void enter_section(const std::string& expected_name);
  /// Requires the current section's payload to be consumed exactly.
  void leave_section();
  /// Requires every stored section to have been entered and left.
  void finish() const;

  void get_bytes(void* dst, std::size_t n);
  u8 get_u8() { return get_pod<u8>(); }
  u16 get_u16() { return get_pod<u16>(); }
  u32 get_u32() { return get_pod<u32>(); }
  u64 get_u64() { return get_pod<u64>(); }
  i32 get_i32() { return get_pod<i32>(); }
  i64 get_i64() { return get_pod<i64>(); }
  bool get_bool();
  double get_f64() {
    const u64 bits = get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string get_str();
  /// Restores into a vector whose size is fixed by the live geometry: the
  /// stored element count must match v.size() exactly.
  template <class T>
  void get_pod_vec_exact(std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const u64 n = get_u64();
    if (n != v.size()) {
      fail("vector length " + std::to_string(n) + " does not match live size " +
           std::to_string(v.size()));
    }
    get_bytes(v.data(), v.size() * sizeof(T));
  }
  /// Restores into a vector sized by the checkpoint (bounded sanity cap).
  template <class T>
  void get_pod_vec(std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const u64 n = get_u64();
    if (n > remaining() / sizeof(T)) {
      fail("vector length " + std::to_string(n) + " exceeds section payload");
    }
    v.resize(n);
    get_bytes(v.data(), v.size() * sizeof(T));
  }
  void get_bool_vec(std::vector<bool>& v);

  const std::string& label() const { return label_; }
  /// Bytes left in the current section payload.
  std::size_t remaining() const;
  /// Reports a semantic validation failure with file/section/offset context.
  [[noreturn]] void fail(const std::string& what) const;

 private:
  template <class T>
  T get_pod() {
    T v;
    get_bytes(&v, sizeof v);
    return v;
  }

  struct Section {
    std::string name;
    std::size_t begin = 0;  ///< absolute offset of the payload's first byte
    std::size_t size = 0;
  };

  std::string bytes_;
  std::string label_;
  std::vector<Section> sections_;
  std::size_t next_section_ = 0;
  bool in_section_ = false;
  std::size_t cursor_ = 0;  ///< absolute offset within the current payload
  std::size_t end_ = 0;     ///< absolute end of the current payload
};

// ---------------------------------------------------------------------------
// Durability helpers (also used by the sweep journal's opt-in fsync mode).

/// Flushes stdio buffers and forces the kernel to push the file to stable
/// storage. Returns false (with errno set) on failure.
bool fsync_stream(std::FILE* f);

/// Publishes `bytes` at `path` atomically: writes `path + ".tmp"`, fsyncs
/// it, then rename(2)s over the destination, so a crash at any instant
/// leaves either the old file or the new one — never a torn mix. Throws
/// CheckpointError on any I/O failure.
void write_file_atomic(const std::string& path, const std::string& bytes);

/// Reads a whole file; throws CheckpointError (naming the path) on failure.
std::string read_file(const std::string& path);

}  // namespace h2::ckpt
