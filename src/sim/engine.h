// Discrete-event simulation engine.
//
// The engine owns a set of Actors (cores, periodic controllers). Each actor
// reports the next cycle at which it has work; the engine repeatedly advances
// simulated time to the earliest such cycle and lets that actor step. An
// actor's step returns the next cycle it wants to run (kNever to go idle —
// it can be re-armed via Engine::wake).
//
// This structure gives O(log n) scheduling with n = number of actors (tens),
// while the expensive part of each step (walking the memory hierarchy and
// reserving DRAM bank/bus slots) is plain straight-line code. Requests are
// processed in global time order, so resource reservations are consistent.
#pragma once

#include <functional>
#include <vector>

#include "check/check.h"
#include "common/assert.h"
#include "common/ckpt_fwd.h"
#include "common/types.h"

#if H2_CHECK_LEVEL >= 2
#include <unordered_set>
#endif

namespace h2 {

class Engine;

/// A simulation participant. Actors are owned by the caller and must outlive
/// the engine run.
class Actor {
 public:
  virtual ~Actor() = default;

  /// Performs work at cycle `now`; returns the next cycle at which the actor
  /// wants to step again (> now), or kNever to go idle.
  virtual Cycle step(Engine& engine, Cycle now) = 0;

  /// Debug name.
  virtual const char* name() const { return "actor"; }
};

/// Periodic hook descriptor: `fn(now)` fires every `period` cycles.
struct PeriodicHook {
  Cycle period;
  std::function<void(Cycle)> fn;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers an actor; it first runs at cycle `start`.
  void add_actor(Actor* actor, Cycle start = 0);

  /// Registers a periodic hook; first firing at `period`.
  void add_periodic(Cycle period, std::function<void(Cycle)> fn);

  /// Re-arms an idle actor to run at `when` (>= current cycle).
  void wake(Actor* actor, Cycle when);

  /// Runs until no actor has pending work, `stop()` is called, or the cycle
  /// limit is exceeded. Returns the final cycle. Stopping (from a hook or at
  /// the horizon) leaves the event queue intact, so a subsequent run() call
  /// resumes bit-identically — the SimSystem warmup/measure split relies on
  /// this pause/resume property.
  Cycle run(Cycle max_cycles = kNever);

  /// Requests termination from inside a step or hook.
  void stop() { stopped_ = true; }

  Cycle now() const { return now_; }
  u64 steps_executed() const { return steps_; }

  /// Checkpoint support: serializes the clock, the sequence counter, the
  /// periodic-hook cursors and the event heap — each entry as a
  /// (when, seq, actor-ordinal) triple in heap-array order, so load()
  /// reproduces the exact internal layout and the pop sequence stays
  /// bit-identical. Actor ordinals index the add_actor() registration
  /// order, which the harness reproduces deterministically (same config,
  /// same build path) before calling load().
  void save(ckpt::CkptWriter& w) const;
  void load(ckpt::CkptReader& r);

 private:
  struct Entry {
    Cycle when;
    u64 seq;  // tie-break for determinism
    Actor* actor;
  };

  // The event queue is a hand-rolled binary min-heap ordered by (when, seq).
  // seq is unique, so (when, seq) is a total order and the pop sequence —
  // hence the whole simulation — is independent of the heap's internal
  // layout; any correct heap implementation is bit-identical to the
  // std::priority_queue it replaced. Rolling our own buys the run() hot loop
  // two tricks std::priority_queue cannot express:
  //   - deferred pop: peek the root, step the actor, then *replace* the root
  //     with its next entry (one sift-down instead of a pop + a push);
  //   - stale-root pushes: wakes issued during the step are >= (now, seq of
  //     the root) so their sift-up provably stops below the stale root.
  // The replace-top shortcut is only legal when no periodic hook fires before
  // the event — hooks run at hook_next_ <= e.when and may wake actors at
  // cycles earlier than the stale root — so run() takes a real pop on the
  // hook path (guarded by next_hook_due_, the cached min of hook_next_).
  static bool entry_less(const Entry& a, const Entry& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }
  void heap_push(Entry e);
  void heap_pop_root();
  void heap_replace_root(Entry e);
  void heap_sift_down(size_t i);
  void refresh_next_hook_due();

  std::vector<Entry> heap_;
  std::vector<Actor*> actors_;  // registration order; checkpoint ordinals
  std::vector<PeriodicHook> hooks_;
  std::vector<Cycle> hook_next_;
  Cycle next_hook_due_ = kNever;
#if H2_CHECK_LEVEL >= 2
  std::unordered_set<const Actor*> registered_;  // wake() targets must be known
#endif
  Cycle now_ = 0;
  u64 seq_ = 0;
  u64 steps_ = 0;
  bool stopped_ = false;
};

}  // namespace h2
