#include "sim/engine.h"

#include <algorithm>

#include "check/fault.h"
#include "common/cancel.h"

namespace h2 {

void Engine::add_actor(Actor* actor, Cycle start) {
  H2_ASSERT(actor != nullptr, "null actor");
#if H2_CHECK_LEVEL >= 2
  registered_.insert(actor);
#endif
  queue_.push(Entry{start, seq_++, actor});
}

void Engine::add_periodic(Cycle period, std::function<void(Cycle)> fn) {
  H2_ASSERT(period > 0, "periodic hook needs period > 0");
  hooks_.push_back(PeriodicHook{period, std::move(fn)});
  hook_next_.push_back(period);
}

void Engine::wake(Actor* actor, Cycle when) {
  H2_CHECK(1, when >= now_, "actor %s woken in the past: when=%llu < now=%llu",
           actor != nullptr ? actor->name() : "(null)",
           static_cast<unsigned long long>(when),
           static_cast<unsigned long long>(now_));
#if H2_CHECK_LEVEL >= 2
  H2_CHECK(2, registered_.count(actor) != 0,
           "wake target %s at cycle %llu was never add_actor()ed",
           actor != nullptr ? actor->name() : "(null)",
           static_cast<unsigned long long>(when));
#endif
  queue_.push(Entry{when, seq_++, actor});
}

Cycle Engine::run(Cycle max_cycles) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (e.when > max_cycles) {
      // Past the horizon: put the entry back (same seq, so heap order is
      // unchanged) and stop. A follow-up run() resumes bit-identically.
      queue_.push(e);
      now_ = max_cycles;
      break;
    }

    // Fire any periodic hooks scheduled strictly before this event.
    for (size_t i = 0; i < hooks_.size(); ++i) {
      while (hook_next_[i] <= e.when) {
        now_ = hook_next_[i];
        hooks_[i].fn(now_);
        hook_next_[i] += hooks_[i].period;
        if (stopped_) {
          // A hook paused the run between events: the popped entry has not
          // executed yet, so re-queue it (same seq) — a later run() picks it
          // up exactly where this one left off. hook_next_ was already
          // advanced, so the boundary that stopped us does not fire twice.
          queue_.push(e);
          return now_;
        }
      }
    }

    H2_CHECK(1, e.when >= now_,
             "time ran backwards: actor %s queued at cycle %llu, now=%llu",
             e.actor->name(), static_cast<unsigned long long>(e.when),
             static_cast<unsigned long long>(now_));
    now_ = e.when;
    steps_++;
    // Cooperative cancellation for the sweep watchdog: a relaxed flag test
    // every 1024 events. Unarmed (no Token in scope) it is a thread-local
    // null test, cheap enough to keep in Release builds so --run-timeout
    // works at H2_CHECK_LEVEL=0 too.
    if ((steps_ & 0x3FFu) == 0) cancel::poll();
    Cycle next = e.actor->step(*this, now_);
    if (next != kNever && fault::at(fault::Kind::TimeSkew)) next = now_;
    if (next != kNever) {
      H2_CHECK(1, next > now_,
               "actor %s scheduled non-advancing step: next=%llu <= now=%llu",
               e.actor->name(), static_cast<unsigned long long>(next),
               static_cast<unsigned long long>(now_));
      queue_.push(Entry{next, seq_++, e.actor});
    }
  }
  return now_;
}

}  // namespace h2
