#include "sim/engine.h"

#include <algorithm>

#include "check/fault.h"
#include "common/cancel.h"
#include "common/ckpt_io.h"

namespace h2 {

void Engine::heap_push(Entry e) {
  size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!entry_less(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Engine::heap_sift_down(size_t i) {
  const size_t n = heap_.size();
  for (;;) {
    const size_t l = 2 * i + 1;
    const size_t r = l + 1;
    size_t m = i;
    if (l < n && entry_less(heap_[l], heap_[m])) m = l;
    if (r < n && entry_less(heap_[r], heap_[m])) m = r;
    if (m == i) break;
    std::swap(heap_[i], heap_[m]);
    i = m;
  }
}

void Engine::heap_pop_root() {
  H2_ASSERT(!heap_.empty(), "pop from empty event heap");
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) heap_sift_down(0);
}

void Engine::heap_replace_root(Entry e) {
  H2_ASSERT(!heap_.empty(), "replace root of empty event heap");
  heap_[0] = e;
  heap_sift_down(0);
}

void Engine::refresh_next_hook_due() {
  next_hook_due_ = kNever;
  for (const Cycle c : hook_next_) next_hook_due_ = std::min(next_hook_due_, c);
}

void Engine::add_actor(Actor* actor, Cycle start) {
  H2_ASSERT(actor != nullptr, "null actor");
#if H2_CHECK_LEVEL >= 2
  registered_.insert(actor);
#endif
  actors_.push_back(actor);
  heap_push(Entry{start, seq_++, actor});
}

void Engine::add_periodic(Cycle period, std::function<void(Cycle)> fn) {
  H2_ASSERT(period > 0, "periodic hook needs period > 0");
  hooks_.push_back(PeriodicHook{period, std::move(fn)});
  hook_next_.push_back(period);
  next_hook_due_ = std::min(next_hook_due_, period);
}

void Engine::wake(Actor* actor, Cycle when) {
  H2_CHECK(1, when >= now_, "actor %s woken in the past: when=%llu < now=%llu",
           actor != nullptr ? actor->name() : "(null)",
           static_cast<unsigned long long>(when),
           static_cast<unsigned long long>(now_));
#if H2_CHECK_LEVEL >= 2
  H2_CHECK(2, registered_.count(actor) != 0,
           "wake target %s at cycle %llu was never add_actor()ed",
           actor != nullptr ? actor->name() : "(null)",
           static_cast<unsigned long long>(when));
#endif
  heap_push(Entry{when, seq_++, actor});
}

void Engine::save(ckpt::CkptWriter& w) const {
  w.put_u64(now_);
  w.put_u64(seq_);
  w.put_u64(steps_);
  w.put_pod_vec(hook_next_);
  w.put_u64(heap_.size());
  for (const Entry& e : heap_) {
    std::size_t ord = actors_.size();
    for (std::size_t i = 0; i < actors_.size(); ++i) {
      if (actors_[i] == e.actor) {
        ord = i;
        break;
      }
    }
    H2_ASSERT(ord < actors_.size(), "heap entry references unregistered actor");
    w.put_u64(e.when);
    w.put_u64(e.seq);
    w.put_u64(ord);
  }
}

void Engine::load(ckpt::CkptReader& r) {
  now_ = r.get_u64();
  seq_ = r.get_u64();
  steps_ = r.get_u64();
  // The harness rebuilt this engine from the same config before calling
  // load(), so the hook set and actor registration order already match; the
  // exact-size restore below is the cross-check.
  r.get_pod_vec_exact(hook_next_);
  const u64 n = r.get_u64();
  heap_.clear();
  heap_.reserve(n);
  for (u64 i = 0; i < n; ++i) {
    Entry e;
    e.when = r.get_u64();
    e.seq = r.get_u64();
    const u64 ord = r.get_u64();
    if (ord >= actors_.size()) {
      r.fail("event-heap actor ordinal " + std::to_string(ord) +
             " out of range (engine has " + std::to_string(actors_.size()) +
             " actors)");
    }
    e.actor = actors_[ord];
    // Stored in heap-array order, so plain append reproduces the layout.
    heap_.push_back(e);
  }
  stopped_ = false;
  refresh_next_hook_due();
}

Cycle Engine::run(Cycle max_cycles) {
  stopped_ = false;
  refresh_next_hook_due();
  while (!stopped_ && !heap_.empty()) {
    const Entry e = heap_[0];  // peek — the pop is deferred on the fast path
    if (e.when > max_cycles) {
      // Past the horizon: leave the entry queued and stop. A follow-up run()
      // resumes bit-identically.
      now_ = max_cycles;
      break;
    }

    bool popped = false;
    if (e.when >= next_hook_due_) {
      // A hook fires at or before this event. Hook functions may wake actors
      // at cycles earlier than the stale root, so take a real pop first.
      heap_pop_root();
      popped = true;
      // Fire any periodic hooks scheduled strictly before this event.
      for (size_t i = 0; i < hooks_.size(); ++i) {
        while (hook_next_[i] <= e.when) {
          now_ = hook_next_[i];
          hooks_[i].fn(now_);
          hook_next_[i] += hooks_[i].period;
          if (stopped_) {
            // A hook paused the run between events: the popped entry has not
            // executed yet, so re-queue it (same seq) — a later run() picks it
            // up exactly where this one left off. hook_next_ was already
            // advanced, so the boundary that stopped us does not fire twice.
            refresh_next_hook_due();
            heap_push(e);
            return now_;
          }
        }
      }
      refresh_next_hook_due();
    }

    H2_CHECK(1, e.when >= now_,
             "time ran backwards: actor %s queued at cycle %llu, now=%llu",
             e.actor->name(), static_cast<unsigned long long>(e.when),
             static_cast<unsigned long long>(now_));
    now_ = e.when;
    steps_++;
    // Cooperative cancellation for the sweep watchdog: a relaxed flag test
    // every 1024 events. Unarmed (no Token in scope) it is a thread-local
    // null test, cheap enough to keep in Release builds so --run-timeout
    // works at H2_CHECK_LEVEL=0 too.
    if ((steps_ & 0x3FFu) == 0) cancel::poll();
    Cycle next = e.actor->step(*this, now_);
    if (next != kNever && fault::at(fault::Kind::TimeSkew)) next = now_;
    if (next != kNever) {
      H2_CHECK(1, next > now_,
               "actor %s scheduled non-advancing step: next=%llu <= now=%llu",
               e.actor->name(), static_cast<unsigned long long>(next),
               static_cast<unsigned long long>(now_));
      const Entry fresh{next, seq_++, e.actor};
      if (popped) {
        heap_push(fresh);
      } else {
        // Wakes pushed during the step are >= (now_, e.seq), so the stale
        // root is still at index 0; swap it for the actor's next entry.
        heap_replace_root(fresh);
      }
    } else if (!popped) {
      heap_pop_root();
    }
  }
  return now_;
}

}  // namespace h2
