#include "sim/engine.h"

#include <algorithm>

namespace h2 {

void Engine::add_actor(Actor* actor, Cycle start) {
  H2_ASSERT(actor != nullptr, "null actor");
  queue_.push(Entry{start, seq_++, actor});
}

void Engine::add_periodic(Cycle period, std::function<void(Cycle)> fn) {
  H2_ASSERT(period > 0, "periodic hook needs period > 0");
  hooks_.push_back(PeriodicHook{period, std::move(fn)});
  hook_next_.push_back(period);
}

void Engine::wake(Actor* actor, Cycle when) {
  H2_ASSERT(when >= now_, "wake in the past (%llu < %llu)",
            static_cast<unsigned long long>(when),
            static_cast<unsigned long long>(now_));
  queue_.push(Entry{when, seq_++, actor});
}

Cycle Engine::run(Cycle max_cycles) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (e.when > max_cycles) {
      // Past the horizon: leave the entry consumed; the caller decided this
      // run is over. Remaining actors can be re-added for a follow-up run.
      now_ = max_cycles;
      break;
    }

    // Fire any periodic hooks scheduled strictly before this event.
    for (size_t i = 0; i < hooks_.size(); ++i) {
      while (hook_next_[i] <= e.when) {
        now_ = hook_next_[i];
        hooks_[i].fn(now_);
        hook_next_[i] += hooks_[i].period;
        if (stopped_) return now_;
      }
    }

    now_ = e.when;
    steps_++;
    const Cycle next = e.actor->step(*this, now_);
    if (next != kNever) {
      H2_ASSERT(next > now_, "actor %s scheduled non-advancing step", e.actor->name());
      queue_.push(Entry{next, seq_++, e.actor});
    }
  }
  return now_;
}

}  // namespace h2
