// The remap table: per-set, per-way metadata of the set-associative hybrid
// memory layout (paper Section III-A). Both tiers are divided into the same
// number of sets; each set has `assoc` fast-memory ways. The table is the
// ground truth for which blocks currently reside in fast memory, where they
// physically sit (superchannel), and which side each way is allocated to
// (the paper's one-bit-per-way `alloc` metadata for lazy reconfiguration).
#pragma once

#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace h2 {

inline constexpr u64 kInvalidTag = ~0ull;

struct RemapWay {
  u64 tag = kInvalidTag;  ///< global block id cached in this way
  u64 lru = 0;            ///< recency stamp
  u32 present = 0;        ///< bitmask of resident 64 B sub-blocks (sub-blocking)
  u16 hits = 0;           ///< hits since fill (re-reference hotness)
  u8 channel = 0;         ///< fast superchannel where the data physically live
  bool valid = false;
  bool dirty = false;
  bool owner_cpu = false;  ///< the `alloc` bit: which side this way served
};

class RemapTable {
 public:
  RemapTable(u32 num_sets, u32 assoc)
      : num_sets_(num_sets), assoc_(assoc),
        ways_(static_cast<size_t>(num_sets) * assoc) {
    H2_ASSERT(num_sets >= 1 && assoc >= 1, "bad remap geometry");
  }

  u32 num_sets() const { return num_sets_; }
  u32 assoc() const { return assoc_; }

  RemapWay& way(u32 set, u32 w) {
    H2_ASSERT(set < num_sets_ && w < assoc_, "remap index out of range");
    return ways_[static_cast<size_t>(set) * assoc_ + w];
  }
  const RemapWay& way(u32 set, u32 w) const {
    return const_cast<RemapTable*>(this)->way(set, w);
  }

  /// Index of the way holding `tag`, or -1.
  i32 find(u32 set, u64 tag) const {
    for (u32 w = 0; w < assoc_; ++w) {
      const RemapWay& rw = way(set, w);
      if (rw.valid && rw.tag == tag) return static_cast<i32>(w);
    }
    return -1;
  }

  /// Number of valid ways in a set.
  u32 occupancy(u32 set) const {
    u32 n = 0;
    for (u32 w = 0; w < assoc_; ++w) n += way(set, w).valid ? 1 : 0;
    return n;
  }

  u64 touch(u32 set, u32 w) {
    RemapWay& rw = way(set, w);
    rw.lru = ++stamp_;
    return rw.lru;
  }

  /// Metadata storage overhead of the alloc bits, as a fraction of data
  /// capacity (paper Section IV-F reports 0.049 %).
  double alloc_bit_overhead(u64 block_bytes) const {
    // One bit per way; a remap entry additionally holds tag+state, but only
    // the alloc bit is Hydrogen-specific.
    return 1.0 / (8.0 * static_cast<double>(block_bytes));
  }

 private:
  u32 num_sets_;
  u32 assoc_;
  std::vector<RemapWay> ways_;
  u64 stamp_ = 0;
};

}  // namespace h2
