// The remap table: per-set, per-way metadata of the set-associative hybrid
// memory layout (paper Section III-A). Both tiers are divided into the same
// number of sets; each set has `assoc` fast-memory ways. The table is the
// ground truth for which blocks currently reside in fast memory, where they
// physically sit (superchannel), and which side each way is allocated to
// (the paper's one-bit-per-way `alloc` metadata for lazy reconfiguration).
//
// Storage is struct-of-arrays: the tag scan in find() — executed once or
// twice per demand access — reads only the tag/valid arrays, and the LRU
// victim scan only valid/lru, instead of striding over 32-byte entry
// structs. way() hands out reference proxies (RemapWayRef / RemapWayCRef)
// whose members alias the arrays; both convert to the plain RemapWay value
// struct for snapshotting. The layout change is representation-only: every
// observable ordering (find's first-match way, LRU tie-breaks via the
// monotone stamp) is bit-identical to the array-of-structs table.
#pragma once

#include <vector>

#include "common/assert.h"
#include "common/ckpt_fwd.h"
#include "common/types.h"

namespace h2 {

inline constexpr u64 kInvalidTag = ~0ull;

/// Value snapshot of one way's metadata (tests and audits copy these).
struct RemapWay {
  u64 tag = kInvalidTag;  ///< global block id cached in this way
  u64 lru = 0;            ///< recency stamp
  u32 present = 0;        ///< bitmask of resident 64 B sub-blocks (sub-blocking)
  u16 hits = 0;           ///< hits since fill (re-reference hotness)
  u8 channel = 0;         ///< fast superchannel where the data physically live
  bool valid = false;
  bool dirty = false;
  bool owner_cpu = false;  ///< the `alloc` bit: which side this way served
};

/// Mutable view of one way, aliasing the table's arrays. Boolean fields are
/// u8-backed (0/1); assigning a bool works as expected.
struct RemapWayRef {
  u64& tag;
  u64& lru;
  u32& present;
  u16& hits;
  u8& channel;
  u8& valid;
  u8& dirty;
  u8& owner_cpu;

  operator RemapWay() const {
    return RemapWay{tag, lru, present, hits, channel, valid != 0, dirty != 0,
                    owner_cpu != 0};
  }
};

/// Read-only view of one way.
struct RemapWayCRef {
  const u64& tag;
  const u64& lru;
  const u32& present;
  const u16& hits;
  const u8& channel;
  const u8& valid;
  const u8& dirty;
  const u8& owner_cpu;

  operator RemapWay() const {
    return RemapWay{tag, lru, present, hits, channel, valid != 0, dirty != 0,
                    owner_cpu != 0};
  }
};

class RemapTable {
 public:
  RemapTable(u32 num_sets, u32 assoc)
      : num_sets_(num_sets), assoc_(assoc) {
    H2_ASSERT(num_sets >= 1 && assoc >= 1, "bad remap geometry");
    const size_t n = static_cast<size_t>(num_sets) * assoc;
    tag_.resize(n, kInvalidTag);
    lru_.resize(n, 0);
    present_.resize(n, 0);
    hits_.resize(n, 0);
    channel_.resize(n, 0);
    valid_.resize(n, 0);
    dirty_.resize(n, 0);
    owner_cpu_.resize(n, 0);
  }

  u32 num_sets() const { return num_sets_; }
  u32 assoc() const { return assoc_; }

  RemapWayRef way(u32 set, u32 w) {
    const size_t i = index(set, w);
    return RemapWayRef{tag_[i],     lru_[i],   present_[i], hits_[i],
                       channel_[i], valid_[i], dirty_[i],   owner_cpu_[i]};
  }
  RemapWayCRef way(u32 set, u32 w) const {
    const size_t i = index(set, w);
    return RemapWayCRef{tag_[i],     lru_[i],   present_[i], hits_[i],
                        channel_[i], valid_[i], dirty_[i],   owner_cpu_[i]};
  }

  /// Index of the way holding `tag`, or -1.
  i32 find(u32 set, u64 tag) const {
    const size_t base = static_cast<size_t>(set) * assoc_;
    for (u32 w = 0; w < assoc_; ++w) {
      if (valid_[base + w] && tag_[base + w] == tag) return static_cast<i32>(w);
    }
    return -1;
  }

  /// Number of valid ways in a set.
  u32 occupancy(u32 set) const {
    const size_t base = static_cast<size_t>(set) * assoc_;
    u32 n = 0;
    for (u32 w = 0; w < assoc_; ++w) n += valid_[base + w] ? 1 : 0;
    return n;
  }

  u64 touch(u32 set, u32 w) {
    lru_[index(set, w)] = ++stamp_;
    return lru_[index(set, w)];
  }

  /// Direct array access for hot victim scans (valid/lru only).
  const u8* valid_row(u32 set) const { return &valid_[static_cast<size_t>(set) * assoc_]; }
  const u64* lru_row(u32 set) const { return &lru_[static_cast<size_t>(set) * assoc_]; }

  /// Metadata storage overhead of the alloc bits, as a fraction of data
  /// capacity (paper Section IV-F reports 0.049 %).
  double alloc_bit_overhead(u64 block_bytes) const {
    // One bit per way; a remap entry additionally holds tag+state, but only
    // the alloc bit is Hydrogen-specific.
    return 1.0 / (8.0 * static_cast<double>(block_bytes));
  }

  /// Checkpoint support: all eight SoA columns plus the LRU stamp
  /// (geometry is rebuilt from config; sizes are cross-checked on load).
  void save(ckpt::CkptWriter& w) const;
  void load(ckpt::CkptReader& r);

 private:
  size_t index(u32 set, u32 w) const {
    H2_ASSERT(set < num_sets_ && w < assoc_, "remap index out of range");
    return static_cast<size_t>(set) * assoc_ + w;
  }

  u32 num_sets_;
  u32 assoc_;
  std::vector<u64> tag_;
  std::vector<u64> lru_;
  std::vector<u32> present_;
  std::vector<u16> hits_;
  std::vector<u8> channel_;
  std::vector<u8> valid_;
  std::vector<u8> dirty_;
  std::vector<u8> owner_cpu_;
  u64 stamp_ = 0;
};

}  // namespace h2
