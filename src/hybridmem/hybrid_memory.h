// The hybrid memory controller: the mechanism layer shared by every design.
//
// It owns the set-associative layout over the fast tier (remap table), the
// on-chip remap cache, and the migration engine, and it charges every data
// and metadata movement to the DRAM channel models. All design-specific
// decisions (mapping, allocation rights, migration gating, swaps,
// adaptation) are delegated to a PartitionPolicy.
//
// Cache mode: the slow tier backs the whole physical space; fast-memory ways
// cache 256 B blocks; a miss may *migrate* (refill) the block, costing a
// 256 B slow read (+ a 256 B slow write if the victim is dirty) — the traffic
// amplification of paper Fig. 4. Flat mode: blocks initially fill fast
// memory (first touch); a migration swaps the missed block with a fast-tier
// victim, costing two block transfers in each tier.
#pragma once

#include <memory>

#include "common/stats.h"
#include "common/types.h"
#include "hybridmem/policy.h"
#include "hybridmem/remap_cache.h"
#include "hybridmem/remap_table.h"
#include "mem/memory_system.h"

namespace h2 {

struct HybridMemConfig {
  HybridMode mode = HybridMode::Cache;
  u64 block_bytes = 256;
  u32 assoc = 4;
  u64 fast_capacity_bytes = 32ull << 20;
  u64 slow_capacity_bytes = 256ull << 20;
  u64 remap_cache_bytes = 256 * 1024;
  u32 mc_overhead = 10;      ///< fixed controller cycles per demand access
  bool chaining = false;     ///< HAShCache pseudo-associativity (assoc == 1)
  u32 chain_latency = 18;    ///< extra probe latency for a chained hit
  bool ideal_swap = false;   ///< Fig. 7(a) "Ideal": fast-memory swaps are free
  bool instant_reconfig = false;  ///< Fig. 7(b): reconfiguration applies instantly, free

  /// Footprint-cache-style sub-blocking (paper Section IV-B cites it as an
  /// orthogonal migration-cost optimisation [33][41]): migrations fetch only
  /// `subblock_fetch` 64 B sub-blocks (the demanded one plus spatial
  /// neighbours); absent sub-blocks are filled on demand from the slow tier,
  /// and dirty writebacks transfer only resident sub-blocks. Cache mode only.
  bool subblock = false;
  u32 subblock_fetch = 2;

  u32 num_sets() const {
    return static_cast<u32>(fast_capacity_bytes / (static_cast<u64>(assoc) * block_bytes));
  }
};

/// Per-requestor counters exposed for analysis and epoch feedback.
struct HybridStats {
  u64 demand = 0;        ///< demand accesses from the LLC miss path
  u64 fast_hits = 0;
  u64 chain_hits = 0;
  u64 misses = 0;
  u64 migrations = 0;    ///< block refills/swaps into fast memory
  u64 bypasses = 0;      ///< misses served from slow memory without migration
  u64 first_touches = 0; ///< flat mode: blocks placed in fast memory for free
  u64 dirty_writebacks = 0;  ///< 256 B victim blocks written to slow memory
  u64 fast_swaps = 0;    ///< Hydrogen fast-memory swaps performed
  u64 lazy_invalidations = 0;
  u64 lazy_moves = 0;
  u64 flush_invalidations = 0;  ///< blocks flushed by set repartitioning
  u64 llc_writebacks = 0;
  u64 meta_misses = 0;      ///< remap-cache misses (fast-tier metadata reads)
  u64 meta_wait_cycles = 0; ///< cycles spent on those metadata reads
  u64 subfills = 0;         ///< on-demand fetches of absent sub-blocks
};

class HybridMemory {
 public:
  HybridMemory(const HybridMemConfig& cfg, MemorySystem* mem, PartitionPolicy* policy);

  /// Demand access (LLC miss) for a 64 B line. Returns the cycle at which
  /// the demanded data are available.
  Cycle access(Cycle now, Requestor cls, Addr addr, bool is_write);

  /// Dirty 64 B LLC victim arriving at the memory controller.
  void writeback(Cycle now, Requestor cls, Addr addr);

  /// Applies the policy's current mapping to all resident blocks at zero
  /// cost (the idealised reconfiguration of Fig. 7(b)).
  void run_instant_reconfig();

  /// Flushes blocks stranded by a *set*-granular repartition: a block whose
  /// remapped set no longer matches the set it resides in is unreachable by
  /// lookups (they resolve to the new set), so — unlike way-ownership changes,
  /// which the lazy-fixup path repairs on next touch — it must be evicted
  /// eagerly, dirty data written back to the slow tier first. This is the
  /// sweep that makes set-granular reconfiguration expensive (paper Section
  /// IV-F) and why Hydrogen partitions ways instead. No-op for identity /
  /// way-partitioned mappings and for chained layouts (whose partner-set
  /// residents are legitimately reachable). Returns the number of blocks
  /// flushed; counts them under flush_invalidations.
  u64 flush_stale_sets(Cycle now);

  // --- geometry helpers --------------------------------------------------
  u32 num_sets() const { return table_.num_sets(); }
  u32 assoc() const { return table_.assoc(); }
  u64 block_of(Addr addr) const { return addr / cfg_.block_bytes; }
  u32 set_of(Addr addr) const { return static_cast<u32>(block_of(addr) % table_.num_sets()); }

  const HybridStats& stats(Requestor r) const { return stats_[static_cast<u32>(r)]; }
  const RemapTable& table() const { return table_; }
  RemapCache& remap_cache() { return remap_cache_; }
  const HybridMemConfig& config() const { return cfg_; }
  PartitionPolicy& policy() { return *policy_; }
  MemorySystem& memory() { return *mem_; }

  /// Zeroes the per-requestor counters (and the remap cache's hit/miss
  /// tallies) while preserving all architectural state: residency (remap
  /// table), remap-cache contents and the attached policy are untouched.
  /// Both sides of every conservation audit reset together — demand ==
  /// hits + misses and the per-channel issue counters hold trivially at
  /// zero — so audit_counters()/audit() stay valid across the reset. Part
  /// of the SimSystem warmup -> measure transition (harness/sim_system.h),
  /// which also calls MemorySystem::reset_stats() so the channel counters
  /// the audits compare against reset in the same cascade.
  void reset_measurement() {
    stats_[0] = HybridStats{};
    stats_[1] = HybridStats{};
    remap_cache_.reset_stats();
  }

  /// Hit rate over demand accesses for one side.
  double hit_rate(Requestor r) const {
    const HybridStats& s = stats(r);
    return s.demand ? static_cast<double>(s.fast_hits) / static_cast<double>(s.demand) : 0.0;
  }

  /// Cheap counter-conservation audit (H2_CHECK level 2, O(1)): demand ==
  /// hits + misses and misses == migrations + bypasses + first-touches, per
  /// requestor. Suitable for epoch boundaries.
  void audit_counters(Cycle now) const;

  /// Full structural audit (H2_CHECK level 2, O(sets * assoc)): residency is
  /// a bijection (no block in two ways), every way's channel is in range,
  /// sub-block masks fit the geometry, remap-cache contents are a subset of
  /// the table's set range, and capacity accounting sums to the configured
  /// fast-tier size. `where` names the call site in failure messages.
  void audit(Cycle now, const char* where) const;

  /// Victim choice for an allocation by `cls` in `set`: first invalid
  /// allowed way, else the minimum-lru allowed way (strict <, so the lowest
  /// index wins ties). Reads the flat permission masks and the table's
  /// SoA valid/lru rows; public so tests can pin it against an independent
  /// walk of the virtual policy interface.
  i32 pick_victim(u32 set, Requestor cls) const;

  /// Checkpoint support: remap table, remap cache and both stat blocks.
  /// The attached policy serializes separately (the harness owns it).
  void save(ckpt::CkptWriter& w) const;
  void load(ckpt::CkptReader& r);

 private:
  struct Lookup {
    Cycle ready;   ///< when metadata resolution completed
    i32 way;       ///< hit way or -1
    u32 set;       ///< set after chain resolution
    bool chained;  ///< hit found in the chain partner set
  };

  Lookup lookup(Cycle now, Requestor cls, Addr addr, u64 tag, u32 set);
  Cycle serve_hit(const PolicyContext& ctx, const Lookup& lk, Addr addr);
  Cycle serve_miss_cache(const PolicyContext& ctx, const Lookup& lk, Addr addr);
  Cycle serve_miss_flat(const PolicyContext& ctx, const Lookup& lk, Addr addr);
  void do_fast_swap(const PolicyContext& ctx, u32 set, u32 way_a, u32 way_b);
  void lazy_fixups(const PolicyContext& ctx, u32 set, u32 way, Cycle t);
  void fill_way(u32 set, u32 way, u64 tag, bool dirty, Requestor cls,
                u32 present_mask = ~0u);
  u32 sub_blocks() const { return static_cast<u32>(cfg_.block_bytes / 64); }
  u32 full_mask() const {
    const u32 n = sub_blocks();
    return n >= 32 ? ~0u : (1u << n) - 1;
  }

  HybridStats& st(Requestor r) { return stats_[static_cast<u32>(r)]; }

  HybridMemConfig cfg_;
  MemorySystem* mem_;
  PartitionPolicy* policy_;
  RemapTable table_;
  RemapCache remap_cache_;
  HybridStats stats_[2];
};

}  // namespace h2
