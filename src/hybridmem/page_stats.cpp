#include "hybridmem/page_stats.h"

#include "common/assert.h"
#include "common/ckpt_io.h"
#include "common/rng.h"
#include "check/fault.h"

namespace h2 {

namespace {
constexpr bool is_pow2(u32 v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

PageStatsTable::PageStatsTable(const PageStatsConfig& cfg) : cfg_(cfg) {
  H2_ASSERT(is_pow2(cfg_.coarse_slots), "page_stats: coarse_slots must be a power of two");
  H2_ASSERT(is_pow2(cfg_.hot_slots), "page_stats: hot_slots must be a power of two");
  H2_ASSERT(cfg_.probe_window >= 1 && cfg_.probe_window <= cfg_.hot_slots,
            "page_stats: probe_window must be in [1, hot_slots]");
  H2_ASSERT(cfg_.promote_threshold >= 1 && cfg_.promote_threshold <= cfg_.coarse_max,
            "page_stats: promote_threshold must be in [1, coarse_max]");
  coarse_.assign(cfg_.coarse_slots, 0);
  hot_.assign(cfg_.hot_slots, HotSlot{});
}

u32 PageStatsTable::coarse_index(u64 tag) const {
  return static_cast<u32>(mix_hash(tag, 0x9e3779b97f4a7c15ull) & (cfg_.coarse_slots - 1));
}

u32 PageStatsTable::hot_home(u64 tag) const {
  return static_cast<u32>(mix_hash(tag, 0xc2b2ae3d27d4eb4full) & (cfg_.hot_slots - 1));
}

i64 PageStatsTable::find_hot(u64 tag) const {
  const u32 home = hot_home(tag);
  for (u32 p = 0; p < cfg_.probe_window; ++p) {
    const u32 i = (home + p) & (cfg_.hot_slots - 1);
    if (hot_[i].valid && hot_[i].tag == tag) return static_cast<i64>(i);
  }
  return -1;
}

u32 PageStatsTable::record(u64 tag, Cycle now) {
  // Fault site: a stuck access counter silently stops incrementing. The
  // observable state (counts, promotions) freezes while the access stream
  // keeps flowing — exactly what the oracle's table-identity diff exists to
  // catch when only one side's counter sticks.
  if (fault::at(fault::Kind::CounterStuck)) return value(tag);

  const i64 found = find_hot(tag);
  if (found >= 0) {
    HotSlot& s = hot_[static_cast<u32>(found)];
    if (s.count < cfg_.hot_max) s.count++;
    s.last_touch = now;
    return s.count;
  }

  // Cold path: bump the coarse filter and check for promotion.
  u8& c = coarse_[coarse_index(tag)];
  if (c < cfg_.coarse_max) c++;
  if (c < cfg_.promote_threshold) return 0;

  // Promotion: claim an invalid slot in the window, else demote the coldest
  // entry no hotter than the carried coarse count. Ties break to the lowest
  // probe offset so the decision is a pure function of table state.
  const u32 home = hot_home(tag);
  i64 free_slot = -1;
  i64 victim = -1;
  u32 victim_count = 0;
  u64 victim_touch = 0;
  for (u32 p = 0; p < cfg_.probe_window; ++p) {
    const u32 i = (home + p) & (cfg_.hot_slots - 1);
    const HotSlot& s = hot_[i];
    if (!s.valid) {
      free_slot = static_cast<i64>(i);
      break;
    }
    const bool colder =
        victim < 0 || s.count < victim_count ||
        (s.count == victim_count && s.last_touch < victim_touch);
    if (colder) {
      victim = static_cast<i64>(i);
      victim_count = s.count;
      victim_touch = s.last_touch;
    }
  }

  const u32 carried = c;
  i64 slot = free_slot;
  if (slot < 0) {
    if (victim_count > carried) return 0;  // window full of hotter pages
    // Demote the victim: it falls back to the coarse level and must re-earn
    // a slot (its exact count is forgotten by design — the filter is lossy).
    slot = victim;
    tracked_--;
  }
  HotSlot& s = hot_[static_cast<u32>(slot)];
  s.tag = tag;
  s.count = carried;
  s.last_touch = now;
  s.valid = 1;
  tracked_++;
  c = 0;  // the exact count now lives in the hot level
  return s.count;
}

u32 PageStatsTable::value(u64 tag) const {
  const i64 found = find_hot(tag);
  return found >= 0 ? hot_[static_cast<u32>(found)].count : 0;
}

void PageStatsTable::clear(u64 tag) {
  const i64 found = find_hot(tag);
  if (found >= 0) {
    hot_[static_cast<u32>(found)] = HotSlot{};
    tracked_--;
  }
  coarse_[coarse_index(tag)] = 0;
}

u64 PageStatsTable::total_hot_count() const {
  u64 sum = 0;
  for (const HotSlot& s : hot_)
    if (s.valid) sum += s.count;
  return sum;
}

bool PageStatsTable::audit() const {
  u64 valid_count = 0;
  for (u32 i = 0; i < cfg_.hot_slots; ++i) {
    const HotSlot& s = hot_[i];
    if (!s.valid) continue;
    valid_count++;
    // Entry must sit inside its own probe window...
    const u32 home = hot_home(s.tag);
    const u32 offset = (i - home) & (cfg_.hot_slots - 1);
    if (offset >= cfg_.probe_window) return false;
    if (s.count > cfg_.hot_max) return false;
    // ...and be the only slot holding its tag (scan the rest of the window).
    for (u32 p = offset + 1; p < cfg_.probe_window; ++p) {
      const u32 j = (home + p) & (cfg_.hot_slots - 1);
      if (hot_[j].valid && hot_[j].tag == s.tag) return false;
    }
  }
  return valid_count == tracked_;
}

bool PageStatsTable::operator==(const PageStatsTable& other) const {
  if (cfg_.coarse_slots != other.cfg_.coarse_slots ||
      cfg_.hot_slots != other.cfg_.hot_slots ||
      cfg_.probe_window != other.cfg_.probe_window)
    return false;
  if (tracked_ != other.tracked_) return false;
  if (coarse_ != other.coarse_) return false;
  for (u32 i = 0; i < cfg_.hot_slots; ++i) {
    const HotSlot& a = hot_[i];
    const HotSlot& b = other.hot_[i];
    if (a.valid != b.valid) return false;
    if (a.valid && (a.tag != b.tag || a.count != b.count || a.last_touch != b.last_touch))
      return false;
  }
  return true;
}

void PageStatsTable::save(ckpt::CkptWriter& w) const {
  w.put_u32(cfg_.coarse_slots);
  w.put_u32(cfg_.hot_slots);
  w.put_u32(cfg_.probe_window);
  w.put_u64(tracked_);
  w.put_pod_vec(coarse_);
  for (const HotSlot& s : hot_) {
    w.put_u64(s.tag);
    w.put_u64(s.last_touch);
    w.put_u32(s.count);
    w.put_u8(s.valid);
  }
}

void PageStatsTable::load(ckpt::CkptReader& r) {
  const u32 coarse_slots = r.get_u32();
  const u32 hot_slots = r.get_u32();
  const u32 probe_window = r.get_u32();
  if (coarse_slots != cfg_.coarse_slots || hot_slots != cfg_.hot_slots ||
      probe_window != cfg_.probe_window)
    r.fail("page_stats geometry mismatch");
  tracked_ = r.get_u64();
  r.get_pod_vec_exact(coarse_);
  for (HotSlot& s : hot_) {
    s.tag = r.get_u64();
    s.last_touch = r.get_u64();
    s.count = r.get_u32();
    s.valid = r.get_u8();
    if (s.valid > 1) r.fail("page_stats slot valid flag out of range");
  }
  if (!audit()) r.fail("page_stats population identity violated after load");
}

}  // namespace h2
