// Multi-level per-page access-counter table for the `integrated`
// coherent-NUMA design (policies/integrated.h).
//
// A single flat array of exact per-page counters over a large address space
// would dwarf the structure it manages, and almost all of it would count
// pages touched once. The table therefore filters through two levels, the
// PageStatsTable idiom from page-granular hot-page trackers:
//
//   coarse level  a small power-of-two array of saturating u8 counters
//                 indexed by hash(tag). Cold pages live (and alias) here;
//                 the level is lossy by design — it only has to answer
//                 "has this hash bucket seen enough traffic to be worth an
//                 exact slot?".
//   hot level     a bounded open-addressed slot array of exact
//                 {tag, count, last_touch} entries with a fixed linear
//                 probe window. A tag is *promoted* when its coarse bucket
//                 reaches `promote_threshold`; on a full window the coldest
//                 in-window entry is *demoted* (evicted) to make room, but
//                 never an entry hotter than the candidate.
//
// Determinism contract: every operation is a pure function of the call
// sequence — no randomness, no wall clock — so two tables fed identical
// access streams hold bit-identical state. The differential oracle diffs
// the simulator policy's table against the reference policy's entry by
// entry, and the population audit (every tracked tag exactly once, inside
// its probe window) backs the level-2 structural checks.
//
// The counter-stuck fault site (check/fault.h, Kind::CounterStuck) lives in
// record(): an armed fault freezes the counters for that visit, which the
// oracle's table-identity diff must catch.
#pragma once

#include <vector>

#include "common/ckpt_fwd.h"
#include "common/types.h"

namespace h2 {

struct PageStatsConfig {
  u32 coarse_slots = 4096;   ///< power of two; u8 saturating filter counters
  u32 hot_slots = 1024;      ///< power of two; exact open-addressed entries
  u32 probe_window = 8;      ///< linear-probe window length in the hot level
  u32 promote_threshold = 2; ///< coarse count at which a tag earns a hot slot
  u32 coarse_max = 15;       ///< coarse saturation cap
  u32 hot_max = 0xFFFF;      ///< hot-count saturation cap
};

class PageStatsTable {
 public:
  explicit PageStatsTable(const PageStatsConfig& cfg = {});

  /// Records one access to `tag` at `now` and returns the tag's exact count
  /// after recording, or 0 while the tag is still cold (coarse-only). Handles
  /// promotion (coarse bucket reached the threshold) and demotion (coldest
  /// in-window entry evicted for a hotter candidate) internally.
  u32 record(u64 tag, Cycle now);

  /// The tag's exact count, or 0 if it holds no hot slot. Never perturbs.
  u32 value(u64 tag) const;

  /// Forgets `tag` entirely: frees its hot slot and zeroes its coarse
  /// bucket, so it must re-earn promotion from scratch. The integrated
  /// policy's post-migration hysteresis.
  void clear(u64 tag);

  /// Number of live hot entries.
  u64 tracked() const { return tracked_; }
  /// Sum of all live hot counts (a cheap conserved quantity).
  u64 total_hot_count() const;

  const PageStatsConfig& config() const { return cfg_; }

  /// Population identity: every valid entry sits inside its own probe
  /// window, no tag occupies two slots, and tracked() matches the valid
  /// count. Returns false (naming nothing — callers report) on violation.
  bool audit() const;

  /// Entry-by-entry equality (the oracle's table-identity diff).
  bool operator==(const PageStatsTable& other) const;

  /// Checkpoint round-trip. load() validates geometry against the live
  /// config and re-checks the population identity, failing through
  /// r.fail() on any mismatch.
  void save(ckpt::CkptWriter& w) const;
  void load(ckpt::CkptReader& r);

 private:
  struct HotSlot {
    u64 tag = 0;
    u64 last_touch = 0;
    u32 count = 0;
    u8 valid = 0;
  };

  u32 coarse_index(u64 tag) const;
  u32 hot_home(u64 tag) const;
  /// The slot holding `tag`, or -1. Probes the fixed window only.
  i64 find_hot(u64 tag) const;

  PageStatsConfig cfg_;
  std::vector<u8> coarse_;
  std::vector<HotSlot> hot_;
  u64 tracked_ = 0;
};

}  // namespace h2
