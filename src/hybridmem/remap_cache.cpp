#include "hybridmem/remap_cache.h"

namespace h2 {

namespace {
CacheConfig remap_cache_config(u64 capacity_bytes) {
  CacheConfig cfg;
  cfg.name = "remap_cache";
  cfg.size_bytes = capacity_bytes;
  cfg.ways = 8;
  cfg.line_bytes = 64;
  cfg.latency = 2;
  return cfg;
}
}  // namespace

RemapCache::RemapCache(u64 capacity_bytes, u32 bytes_per_set, u32 hit_latency)
    : bytes_per_set_(bytes_per_set),
      hit_latency_(hit_latency),
      cache_(remap_cache_config(capacity_bytes)) {}

bool RemapCache::probe(u32 set) {
  return cache_.access(set_addr(set), /*is_write=*/false).hit;
}

void RemapCache::invalidate(u32 set) { cache_.invalidate(set_addr(set)); }

}  // namespace h2
