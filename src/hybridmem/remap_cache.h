// On-chip SRAM remap cache (paper Section III-A): caches remap-table entries
// so that most metadata probes avoid touching fast memory. Modelled as a
// set-associative cache over set-IDs; a miss costs one 64 B fast-memory read
// (charged by the hybrid memory controller).
#pragma once

#include "cache/cache.h"
#include "common/types.h"

namespace h2 {

class RemapCache {
 public:
  /// `capacity_bytes` on-chip SRAM; each hybrid-memory set's metadata is
  /// `bytes_per_set` (assoc * ~8 B packed entries).
  RemapCache(u64 capacity_bytes, u32 bytes_per_set, u32 hit_latency = 2);

  /// Probes the metadata for `set`. Returns true on SRAM hit; on miss the
  /// entry is installed (the fast-memory fill is charged by the caller).
  bool probe(u32 set);

  /// Invalidate the cached metadata of a set (after reconfiguration sweeps).
  void invalidate(u32 set);

  u32 hit_latency() const { return hit_latency_; }
  u32 bytes_per_set() const { return bytes_per_set_; }
  /// Underlying SRAM array (audit access: resident_addrs/audit).
  const Cache& sram() const { return cache_; }
  u64 hits() const { return cache_.hits(); }
  u64 misses() const { return cache_.misses(); }
  double hit_rate() const { return cache_.hit_rate(); }
  void reset_stats() { cache_.reset_stats(); }

  /// Checkpoint support: the SRAM array is the only state.
  void save(ckpt::CkptWriter& w) const { cache_.save(w); }
  void load(ckpt::CkptReader& r) { cache_.load(r); }

 private:
  Addr set_addr(u32 set) const { return static_cast<Addr>(set) * bytes_per_set_; }

  u32 bytes_per_set_;
  u32 hit_latency_;
  Cache cache_;
};

}  // namespace h2
