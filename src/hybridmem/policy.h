// The partitioning-policy interface: the seam between the hybrid-memory
// *mechanism* (remap table, migration engine, DRAM accesses — owned by
// HybridMemory) and a partitioning *design* (Baseline, WayPart, HAShCache,
// ProFess, Hydrogen). A policy decides
//   - where each (set, way) physically lives (fast superchannel mapping),
//   - which ways each requestor may allocate into,
//   - whether a miss is allowed to migrate its block to fast memory,
//   - whether a hit should trigger a fast-memory swap (Hydrogen IV-A),
// and it adapts at epoch boundaries from aggregate feedback.
#pragma once

#include <vector>

#include "common/assert.h"
#include "common/ckpt_fwd.h"
#include "common/types.h"
#include "hybridmem/remap_table.h"

namespace h2 {

class HybridMemory;

/// Per-access context handed to policy decision points.
struct PolicyContext {
  Cycle now = 0;
  Requestor cls = Requestor::Cpu;
  u32 set = 0;
  u64 tag = 0;
  bool is_write = false;
  u32 slow_channel = 0;  ///< slow channel the block's address maps to
};

/// Aggregate measurements over one sampling epoch, used for online
/// adaptation (paper Section IV-C).
struct EpochFeedback {
  Cycle now = 0;
  Cycle epoch_cycles = 0;
  u64 cpu_instructions = 0;  ///< retired this epoch
  u64 gpu_instructions = 0;
  double weighted_ipc = 0.0;  ///< user-weighted throughput objective
  u64 cpu_misses = 0;         ///< fast-memory misses this epoch
  u64 gpu_misses = 0;
  u64 gpu_migrations = 0;
  Cycle slow_backlog = 0;  ///< congestion signal from the slow channels
};

class PartitionPolicy {
 public:
  virtual ~PartitionPolicy() = default;

  virtual const char* name() const = 0;

  /// Called once when attached; `num_channels`, `assoc` and `num_sets` give
  /// the geometry the mapping functions must cover.
  virtual void bind(u32 num_channels, u32 assoc, u32 num_sets) {
    num_channels_ = num_channels;
    assoc_ = assoc;
    num_sets_ = num_sets;
    flat_rows_.assign(num_sets, FlatRow{});
    flat_channel_.assign(static_cast<size_t>(num_sets) * assoc, 0);
    map_gen_ = 1;
  }

  /// Gives the policy read access to the remap table (for swap-candidate
  /// selection and occupancy inspection). Called by HybridMemory.
  void attach_table(const RemapTable* table) { table_ = table; }

  /// Page-coloring hook (decoupled *set*-partitioning, paper Section IV-F):
  /// maps a block's natural set to the set the OS/GPU-runtime would have
  /// coloured its page into. Way-partitioning designs keep the identity.
  virtual u32 remap_set(u32 natural_set, Requestor cls) const {
    (void)cls;
    return natural_set;
  }

  /// Fast superchannel serving (set, way). Must be < num_channels.
  virtual u32 channel_of_way(u32 set, u32 way) const = 0;

  /// Whether `cls` may allocate (choose a victim) in (set, way).
  virtual bool way_allowed(u32 set, u32 way, Requestor cls) const = 0;

  /// The side the current configuration assigns this way to. Used by lazy
  /// reconfiguration: a resident block whose recorded owner differs is
  /// misplaced and gets invalidated/moved on its next access.
  virtual Requestor way_owner(u32 set, u32 way) const = 0;

  /// Gate on migrating a missed block into fast memory. `victim_dirty`
  /// reports whether the migration would also cost a dirty writeback.
  virtual bool allow_migration(const PolicyContext& ctx, bool victim_dirty) = 0;

  /// Hydrogen's fast-memory swap: promote a CPU block that hit in a shared
  /// channel into a CPU-dedicated channel. Returns the way to swap with, or
  /// -1 for no swap.
  virtual i32 pick_swap_way(const PolicyContext& ctx, u32 hit_way) {
    (void)ctx;
    (void)hit_way;
    return -1;
  }

  /// Cheap per-access tick (token faucet refill checks etc.).
  virtual void tick(Cycle now) { (void)now; }

  /// Epoch-boundary adaptation. Returns true if the configuration changed
  /// (the mechanism then performs lazy — or instant, if configured —
  /// reconfiguration).
  virtual bool on_epoch(const EpochFeedback& fb) {
    (void)fb;
    return false;
  }

  /// Bookkeeping notifications.
  virtual void note_hit(const PolicyContext& ctx, u32 way) { (void)ctx; (void)way; }
  virtual void note_miss(const PolicyContext& ctx, bool migrated) { (void)ctx; (void)migrated; }

  /// Zeroes measurement counters (reconfiguration tallies and the like)
  /// while preserving adaptive state — the active partition, token-bucket
  /// fill, climber history and smoothed miss rates all survive, so the
  /// policy keeps behaving as warmed up. Policies without reported counters
  /// inherit the no-op. Part of the SimSystem warmup -> measure transition.
  virtual void reset_measurement() {}

  /// Checkpoint support. save_state writes the policy's adaptive state
  /// (active partition, token-bucket fill, climber cursor, smoothed
  /// signals); stateless policies inherit the no-op. restore_state wraps
  /// load_state and then invalidates the flat-mapping cache — flat_rows_ /
  /// flat_channel_ / map_gen_ are lazily refreshed pure caches of the
  /// virtual mapping functions, so they rebuild bit-identically on demand
  /// and are never serialized.
  virtual void save_state(ckpt::CkptWriter& w) const { (void)w; }
  void restore_state(ckpt::CkptReader& r) {
    load_state(r);
    invalidate_mapping();
  }

  u32 num_channels() const { return num_channels_; }
  u32 assoc() const { return assoc_; }
  u32 num_sets() const { return num_sets_; }

  // --- Flattened mapping reads (devirtualised per-access dispatch) -------
  //
  // The mechanism's hot loops (victim scan, lazy fixups, fills, swaps)
  // consume the way->channel / way->owner / way->permission mapping through
  // these non-virtual accessors. They are backed by a lazily refreshed
  // per-set cache OF the virtual functions: a refresh calls the virtuals,
  // so the cached values are identical by construction, and a generation
  // counter keeps rows coherent. Every reconfiguration entry point
  // (set_config/apply_point/set_cpu_ways/set_partition) must call
  // invalidate_mapping(); HybridMemory::audit() cross-checks cache vs
  // virtuals at H2_CHECK level 2. Geometries with assoc > 32 bypass the
  // cache (the masks are 32-bit) and fall through to the virtual calls.

  u32 flat_channel_of_way(u32 set, u32 way) const {
    if (!flat_usable()) return channel_of_way(set, way);
    refresh_row(set);
    return flat_channel_[static_cast<size_t>(set) * assoc_ + way];
  }
  bool flat_owner_is_cpu(u32 set, u32 way) const {
    if (!flat_usable()) return way_owner(set, way) == Requestor::Cpu;
    refresh_row(set);
    return (flat_rows_[set].owner_cpu_mask >> way) & 1u;
  }
  bool flat_way_allowed(u32 set, u32 way, Requestor cls) const {
    if (!flat_usable()) return way_allowed(set, way, cls);
    refresh_row(set);
    const FlatRow& r = flat_rows_[set];
    const u32 m = cls == Requestor::Cpu ? r.allowed_cpu_mask : r.allowed_gpu_mask;
    return (m >> way) & 1u;
  }

  /// Invalidates every cached row; rows refresh on next access. Cheap (one
  /// counter bump), so reconfiguration paths can call it unconditionally.
  void invalidate_mapping() { map_gen_++; }

 protected:
  virtual void load_state(ckpt::CkptReader& r) { (void)r; }

  struct FlatRow {
    u32 gen = 0;  ///< generation this row was refreshed at (0 = never)
    u32 owner_cpu_mask = 0;
    u32 allowed_cpu_mask = 0;
    u32 allowed_gpu_mask = 0;
  };

  /// The cache needs bind() to have sized it and 32-bit way masks to fit.
  bool flat_usable() const { return assoc_ <= 32 && !flat_rows_.empty(); }

  void refresh_row(u32 set) const {
    FlatRow& r = flat_rows_[set];
    if (r.gen == map_gen_) return;
    u32 owner = 0, cpu_ok = 0, gpu_ok = 0;
    u8* ch_row = &flat_channel_[static_cast<size_t>(set) * assoc_];
    for (u32 w = 0; w < assoc_; ++w) {
      const u32 ch = channel_of_way(set, w);
      H2_ASSERT(ch < 256, "channel %u does not fit the flat cache", ch);
      ch_row[w] = static_cast<u8>(ch);
      owner |= (way_owner(set, w) == Requestor::Cpu ? 1u : 0u) << w;
      cpu_ok |= (way_allowed(set, w, Requestor::Cpu) ? 1u : 0u) << w;
      gpu_ok |= (way_allowed(set, w, Requestor::Gpu) ? 1u : 0u) << w;
    }
    r.owner_cpu_mask = owner;
    r.allowed_cpu_mask = cpu_ok;
    r.allowed_gpu_mask = gpu_ok;
    r.gen = map_gen_;
  }

  u32 num_channels_ = 4;
  u32 assoc_ = 4;
  u32 num_sets_ = 1;
  const RemapTable* table_ = nullptr;
  mutable std::vector<FlatRow> flat_rows_;
  mutable std::vector<u8> flat_channel_;
  u32 map_gen_ = 1;
};

}  // namespace h2
