#include "hybridmem/hybrid_memory.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <unordered_set>

#include "check/check.h"
#include "check/fault.h"
#include "common/assert.h"
#include "common/ckpt_io.h"

namespace h2 {

namespace {
constexpr u32 kLineBytes = 64;
/// Metadata lives in a reserved region of fast memory; the offset only
/// influences bank mapping inside the channel model.
constexpr Addr kMetaBase = 1ull << 40;
}  // namespace

HybridMemory::HybridMemory(const HybridMemConfig& cfg, MemorySystem* mem,
                           PartitionPolicy* policy)
    : cfg_(cfg),
      mem_(mem),
      policy_(policy),
      table_(cfg.num_sets(), cfg.assoc),
      remap_cache_(cfg.remap_cache_bytes, /*bytes_per_set=*/cfg.assoc * 8) {
  H2_ASSERT(mem != nullptr && policy != nullptr, "hybrid memory needs mem + policy");
  H2_ASSERT(cfg.num_sets() >= 1, "fast capacity too small for geometry");
  H2_ASSERT(!cfg.chaining || cfg.assoc == 1, "chaining requires a direct-mapped layout");
  policy_->bind(mem->num_fast_superchannels(), cfg.assoc, cfg.num_sets());
  policy_->attach_table(&table_);
}

HybridMemory::Lookup HybridMemory::lookup(Cycle now, Requestor cls, Addr addr,
                                          u64 tag, u32 set) {
  (void)addr;
  Cycle t = now + cfg_.mc_overhead;
  if (remap_cache_.probe(set)) {
    t += remap_cache_.hit_latency();
  } else {
    // Metadata fill: one 64 B read from the fast tier.
    const u32 meta_ch = set % mem_->num_fast_superchannels();
    const auto res = mem_->fast_access(now, meta_ch, kMetaBase + static_cast<Addr>(set) * 64,
                                       kLineBytes, /*is_write=*/false, cls, /*earliest=*/t);
    st(cls).meta_misses++;
    st(cls).meta_wait_cycles += res.first_data - t;
    t = res.first_data;
  }

  i32 way = table_.find(set, tag);
  bool chained = false;
  u32 eff_set = set;
  if (way < 0 && cfg_.chaining) {
    // Chaining probes are sequential: the partner-set walk costs extra
    // latency whether it hits or not (HAShCache's pseudo-associativity).
    t += cfg_.chain_latency;
    const u32 partner = set ^ 1u;
    if (partner < table_.num_sets()) {
      const i32 cw = table_.find(partner, tag);
      if (cw >= 0) {
        way = cw;
        eff_set = partner;
        chained = true;
      }
    }
  }
  return Lookup{t, way, eff_set, chained};
}

i32 HybridMemory::pick_victim(u32 set, Requestor cls) const {
  // Hot victim scan: flattened policy dispatch + direct valid/lru rows
  // (identical choice to the way()-proxy walk over virtual way_allowed).
  const u8* valid = table_.valid_row(set);
  const u64* lru = table_.lru_row(set);
  i32 best = -1;
  u64 best_lru = ~0ull;
  for (u32 w = 0; w < table_.assoc(); ++w) {
    if (!policy_->flat_way_allowed(set, w, cls)) continue;
    if (!valid[w]) return static_cast<i32>(w);
    if (lru[w] < best_lru) {
      best_lru = lru[w];
      best = static_cast<i32>(w);
    }
  }
  return best;
}

void HybridMemory::fill_way(u32 set, u32 way, u64 tag, bool dirty, Requestor cls,
                            u32 present_mask) {
  auto rw = table_.way(set, way);
  rw.tag = tag;
  rw.hits = 0;
  rw.valid = true;
  rw.dirty = dirty;
  rw.present = present_mask & full_mask();
  rw.channel = static_cast<u8>(policy_->flat_channel_of_way(set, way));
  // Fault site `alloc-stuck` (check/fault.h): the alloc bit keeps whatever
  // stale value the way carried, so the next hit's lazy fixup misfires.
  if (!fault::at(fault::Kind::AllocStuck)) {
    rw.owner_cpu = policy_->flat_owner_is_cpu(set, way);
  }
  H2_CHECK(1, rw.channel < mem_->num_fast_superchannels(),
           "policy %s placed set %u way %u on fast superchannel %u, "
           "but only %u superchannels exist",
           policy_->name(), set, way, rw.channel,
           mem_->num_fast_superchannels());
  // Fault-injection sites (check/fault.h): corrupt the freshly written remap
  // entry so the residency oracle / bijection audit must notice. No-ops (a
  // thread-local null test) unless a matching fault is armed.
  if (fault::at(fault::Kind::RemapFlip)) rw.tag ^= 1;
  if (fault::at(fault::Kind::DupTag)) {
    const u32 dup_set = cfg_.assoc > 1 ? set : (set + 1) % table_.num_sets();
    const u32 dup_way = cfg_.assoc > 1 ? (way + 1) % cfg_.assoc : 0;
    auto dup = table_.way(dup_set, dup_way);
    dup.tag = rw.tag;
    dup.valid = true;
  }
  (void)cls;
  table_.touch(set, way);
}

void HybridMemory::do_fast_swap(const PolicyContext& ctx, u32 set, u32 way_a, u32 way_b) {
  auto a = table_.way(set, way_a);
  auto b = table_.way(set, way_b);
  if (!cfg_.ideal_swap) {
    // Read both blocks and write them back to the opposite ways' channels;
    // off the critical path but consuming fast-tier bandwidth.
    const Addr addr_a = a.valid ? a.tag * cfg_.block_bytes : kMetaBase;
    const Addr addr_b = b.valid ? b.tag * cfg_.block_bytes : kMetaBase;
    const u32 bytes = static_cast<u32>(cfg_.block_bytes);
    mem_->fast_access(ctx.now, a.channel, addr_a, bytes, false, ctx.cls);
    mem_->fast_access(ctx.now, b.channel, addr_b, bytes, false, ctx.cls);
    mem_->fast_access(ctx.now, b.channel, addr_a, bytes, true, ctx.cls);
    mem_->fast_access(ctx.now, a.channel, addr_b, bytes, true, ctx.cls);
  }
  std::swap(a.tag, b.tag);
  std::swap(a.valid, b.valid);
  std::swap(a.dirty, b.dirty);
  std::swap(a.hits, b.hits);
  std::swap(a.present, b.present);  // sub-block residency follows the block
  // Channels and owner bits stay attached to the ways; both entries now sit
  // on their way's configured channel with its configured owner. The owner
  // bit must be refreshed too: a never-filled way still carries the
  // default-constructed bit, and leaving it stale makes the next hit's lazy
  // fixup spuriously invalidate the freshly promoted block.
  a.channel = static_cast<u8>(policy_->flat_channel_of_way(set, way_a));
  b.channel = static_cast<u8>(policy_->flat_channel_of_way(set, way_b));
  // Fault site `alloc-stuck`: skipping this refresh deterministically
  // reintroduces the historical stale-owner-bit bug described above.
  if (!fault::at(fault::Kind::AllocStuck)) {
    a.owner_cpu = policy_->flat_owner_is_cpu(set, way_a);
    b.owner_cpu = policy_->flat_owner_is_cpu(set, way_b);
  }
  st(ctx.cls).fast_swaps++;
}

void HybridMemory::lazy_fixups(const PolicyContext& ctx, u32 set, u32 way, Cycle t) {
  auto rw = table_.way(set, way);
  const bool want_cpu = policy_->flat_owner_is_cpu(set, way);
  const u8 want_ch = static_cast<u8>(policy_->flat_channel_of_way(set, way));
  // Fault site `lazy-skip` (check/fault.h): drop a fixup that is actually
  // due — the block stays misplaced, which the epoch-driven oracle must see
  // as a residency/counter divergence. Visiting the site only when a fixup
  // is due keeps `after=`/`count=` windows meaningful.
  const bool due =
      rw.owner_cpu != want_cpu || (rw.valid && rw.channel != want_ch);
  if (due && fault::at(fault::Kind::LazySkip)) return;
  if (rw.owner_cpu != want_cpu) {
    // Misplaced after a reconfiguration: invalidate after the access (paper
    // Section IV-D). Dirty data must be written back to the slow tier first.
    if (rw.dirty && cfg_.mode == HybridMode::Cache) {
      const u32 wb_bytes =
          cfg_.subblock
              ? std::max<u32>(64, 64 * std::popcount(rw.present & full_mask()))
              : static_cast<u32>(cfg_.block_bytes);
      mem_->slow_access(ctx.now, rw.tag * cfg_.block_bytes, wb_bytes,
                        /*is_write=*/true, ctx.cls, /*earliest=*/t);
      st(ctx.cls).dirty_writebacks++;
    }
    if (cfg_.mode == HybridMode::Cache) {
      rw.valid = false;
      rw.dirty = false;
      rw.tag = kInvalidTag;
    }
    // Fault site `alloc-stuck`: the invalidated way keeps its stale alloc
    // bit, so every future hit in it re-triggers a spurious invalidation.
    if (!fault::at(fault::Kind::AllocStuck)) rw.owner_cpu = want_cpu;
    st(ctx.cls).lazy_invalidations++;
    return;
  }
  if (rw.channel != want_ch && rw.valid) {
    // Same owner but the way moved to a different channel: relocate the
    // block lazily (one fast read + one fast write, off the critical path).
    const Addr a = rw.tag * cfg_.block_bytes;
    const u32 bytes = static_cast<u32>(cfg_.block_bytes);
    mem_->fast_access(ctx.now, rw.channel, a, bytes, false, ctx.cls, /*earliest=*/t);
    mem_->fast_access(ctx.now, want_ch, a, bytes, true, ctx.cls, /*earliest=*/t);
    rw.channel = want_ch;
    st(ctx.cls).lazy_moves++;
  }
}

Cycle HybridMemory::serve_hit(const PolicyContext& ctx, const Lookup& lk, Addr addr) {
  const u32 set = lk.set;
  const u32 way = static_cast<u32>(lk.way);
  HybridStats& s = st(ctx.cls);
  s.fast_hits++;
  if (lk.chained) s.chain_hits++;

  lazy_fixups(ctx, set, way, lk.ready);
  auto rw = table_.way(set, way);
  if (!rw.valid) {
    // The lazy fixup invalidated the block; fall back to the slow tier for
    // the demand line (it will be re-migrated on a future miss).
    const auto res = mem_->slow_access(ctx.now, addr, kLineBytes, ctx.is_write,
                                       ctx.cls, /*earliest=*/lk.ready);
    return res.first_data;
  }

  // Sub-blocking: a hit to an absent 64 B sub-block fills it from the slow
  // tier on demand (Footprint-cache behaviour).
  Cycle served;
  const u32 sub = static_cast<u32>((addr % cfg_.block_bytes) / 64);
  if (cfg_.subblock && cfg_.mode == HybridMode::Cache &&
      (rw.present & (1u << sub)) == 0) {
    const auto res = mem_->slow_access(ctx.now, addr, kLineBytes, ctx.is_write,
                                       ctx.cls, /*earliest=*/lk.ready);
    mem_->fast_access(ctx.now, rw.channel, addr, kLineBytes, /*is_write=*/true,
                      ctx.cls, /*earliest=*/lk.ready);
    rw.present |= 1u << sub;
    s.subfills++;
    served = res.first_data;
  } else {
    const auto res = mem_->fast_access(ctx.now, rw.channel, addr, kLineBytes,
                                       ctx.is_write, ctx.cls, /*earliest=*/lk.ready);
    served = res.first_data;
  }
  if (ctx.is_write) rw.dirty = true;
  if (rw.hits < std::numeric_limits<u16>::max()) rw.hits++;
  table_.touch(set, way);
  policy_->note_hit(ctx, way);

  const i32 swap_with = policy_->pick_swap_way(ctx, way);
  if (swap_with >= 0 && static_cast<u32>(swap_with) != way) {
    do_fast_swap(ctx, set, way, static_cast<u32>(swap_with));
  }
  return served;
}

Cycle HybridMemory::serve_miss_cache(const PolicyContext& ctx, const Lookup& lk, Addr addr) {
  HybridStats& s = st(ctx.cls);
  s.misses++;

  // Chaining insertion (HAShCache pseudo-associativity): when the home way
  // holds a hotter block than the chain partner's, fill into the partner set
  // instead of evicting hot data.
  PolicyContext fill_ctx = ctx;
  if (cfg_.chaining) {
    const u32 partner = ctx.set ^ 1u;
    if (partner < table_.num_sets()) {
      const i32 home = pick_victim(ctx.set, ctx.cls);
      const i32 alt = pick_victim(partner, ctx.cls);
      if (home >= 0 && alt >= 0) {
        const auto h = table_.way(ctx.set, static_cast<u32>(home));
        const auto a = table_.way(partner, static_cast<u32>(alt));
        if (h.valid && (!a.valid || a.lru < h.lru)) fill_ctx.set = partner;
      }
    }
  }

  const i32 victim = pick_victim(fill_ctx.set, ctx.cls);
  bool victim_dirty = false;
  if (victim >= 0) {
    const auto rw = table_.way(fill_ctx.set, static_cast<u32>(victim));
    victim_dirty = rw.valid && rw.dirty;
  }
  const bool migrate = victim >= 0 && policy_->allow_migration(ctx, victim_dirty);
  policy_->note_miss(ctx, migrate);

  if (!migrate) {
    s.bypasses++;
    const auto res = mem_->slow_access(ctx.now, addr, kLineBytes, ctx.is_write,
                                       ctx.cls, /*earliest=*/lk.ready);
    return res.first_data;
  }

  // Refill: read the block from the slow tier; the demand line is the
  // critical first transfer (Fig. 4). With sub-blocking, only the demanded
  // sub-block plus spatial neighbours are fetched.
  s.migrations++;
  const u32 block_bytes = static_cast<u32>(cfg_.block_bytes);
  const Addr block_addr = ctx.tag * cfg_.block_bytes;
  u32 fetch_bytes = block_bytes;
  Addr fetch_addr = block_addr;
  u32 present_mask = ~0u;
  if (cfg_.subblock) {
    const u32 nsub = sub_blocks();
    const u32 demanded = static_cast<u32>((addr % cfg_.block_bytes) / 64);
    const u32 fetch = std::min(cfg_.subblock_fetch, nsub);
    present_mask = 0;
    for (u32 i = 0; i < fetch; ++i) present_mask |= 1u << ((demanded + i) % nsub);
    fetch_bytes = fetch * 64;
    fetch_addr = block_addr + demanded * 64;  // demand-first order
  }
  const auto refill = mem_->slow_access(ctx.now, fetch_addr, fetch_bytes,
                                        /*is_write=*/false, ctx.cls, /*earliest=*/lk.ready);

  // Off-critical-path transfers (dirty writeback, fast fill) are charged at
  // the issue cycle rather than chained behind the refill completion: a real
  // controller would service interleaving demand traffic first, but our
  // cursor-based reservation cannot reorder, so far-future reservations
  // would punch schedule holes that later same-channel demands spuriously
  // wait behind. Charging at issue keeps bandwidth accounting exact and
  // cursors monotone with simulation time.
  const u32 vway = static_cast<u32>(victim);
  auto rw = table_.way(fill_ctx.set, vway);
  if (rw.valid && rw.dirty && !fault::at(fault::Kind::DropWriteback)) {
    // Dirty writebacks transfer only resident sub-blocks.
    const u32 wb_bytes =
        cfg_.subblock ? std::max<u32>(64, 64 * std::popcount(rw.present & full_mask()))
                      : block_bytes;
    mem_->slow_access(ctx.now, rw.tag * cfg_.block_bytes, wb_bytes,
                      /*is_write=*/true, ctx.cls, /*earliest=*/lk.ready);
    s.dirty_writebacks++;
  }
  const u32 ch = policy_->flat_channel_of_way(fill_ctx.set, vway);
  mem_->fast_access(ctx.now, ch, fetch_addr, fetch_bytes, /*is_write=*/true, ctx.cls,
                    /*earliest=*/lk.ready);
  fill_way(fill_ctx.set, vway, ctx.tag, ctx.is_write, ctx.cls, present_mask);

  return refill.first_data;
}

Cycle HybridMemory::serve_miss_flat(const PolicyContext& ctx, const Lookup& lk, Addr addr) {
  HybridStats& s = st(ctx.cls);
  s.misses++;

  // First-touch placement: while the set has free allowed ways, new blocks
  // materialise directly in fast memory.
  const i32 victim = pick_victim(ctx.set, ctx.cls);
  if (victim >= 0 && !table_.way(ctx.set, static_cast<u32>(victim)).valid) {
    const u32 vway = static_cast<u32>(victim);
    fill_way(ctx.set, vway, ctx.tag, false, ctx.cls);
    s.first_touches++;
    policy_->note_miss(ctx, true);
    const auto res = mem_->fast_access(ctx.now, table_.way(ctx.set, vway).channel,
                                       addr, kLineBytes, ctx.is_write, ctx.cls,
                                       /*earliest=*/lk.ready);
    return res.first_data;
  }

  // Resident in the slow tier: serve the demand line from there.
  const auto demand = mem_->slow_access(ctx.now, addr, kLineBytes, ctx.is_write,
                                        ctx.cls, /*earliest=*/lk.ready);

  // Optionally swap the block with a fast-tier victim. A flat-mode swap
  // always moves two blocks in both tiers (paper Section IV-F).
  const bool migrate = victim >= 0 && policy_->allow_migration(ctx, /*victim_dirty=*/true);
  policy_->note_miss(ctx, migrate);
  if (migrate) {
    s.migrations++;
    const u32 vway = static_cast<u32>(victim);
    auto rw = table_.way(ctx.set, vway);
    const u32 block_bytes = static_cast<u32>(cfg_.block_bytes);
    const Addr in_addr = ctx.tag * cfg_.block_bytes;
    const Addr out_addr = rw.tag * cfg_.block_bytes;
    // All four swap transfers are charged at issue time (see the comment in
    // serve_miss_cache about future-reservation holes).
    mem_->slow_access(ctx.now, in_addr, block_bytes, false, ctx.cls, /*earliest=*/lk.ready);
    mem_->fast_access(ctx.now, rw.channel, out_addr, block_bytes, false, ctx.cls,
                      /*earliest=*/lk.ready);
    mem_->fast_access(ctx.now, policy_->flat_channel_of_way(ctx.set, vway), in_addr,
                      block_bytes, true, ctx.cls, /*earliest=*/lk.ready);
    mem_->slow_access(ctx.now, out_addr, block_bytes, true, ctx.cls, /*earliest=*/lk.ready);
    s.dirty_writebacks++;  // the displaced block always transfers out
    // Fault site: a lost migration charges all four transfers and evicts the
    // victim's identity from the books, but the migrated block is never
    // installed — the residency/migration conservation laws the oracle
    // enforces for the integrated design are exactly what breaks.
    if (!fault::at(fault::Kind::MigrateLost))
      fill_way(ctx.set, vway, ctx.tag, false, ctx.cls);
  } else {
    s.bypasses++;
  }
  return demand.first_data;
}

Cycle HybridMemory::access(Cycle now, Requestor cls, Addr addr, bool is_write) {
  policy_->tick(now);
  const u64 tag = block_of(addr);
  const u32 set = policy_->remap_set(set_of(addr), cls);
  H2_CHECK(1, set < table_.num_sets(),
           "policy %s cycle %llu: remapped set %u out of range [0, %u)",
           policy_->name(), static_cast<unsigned long long>(now), set,
           table_.num_sets());
  HybridStats& s = st(cls);
  s.demand++;

  PolicyContext ctx{now, cls, set, tag, is_write, mem_->slow_channel_of(addr)};
  Lookup lk = lookup(now, cls, addr, tag, set);
  if (lk.way >= 0) {
    ctx.set = lk.set;
    return serve_hit(ctx, lk, addr);
  }
  return cfg_.mode == HybridMode::Cache ? serve_miss_cache(ctx, lk, addr)
                                        : serve_miss_flat(ctx, lk, addr);
}

void HybridMemory::writeback(Cycle now, Requestor cls, Addr addr) {
  const u64 tag = block_of(addr);
  const u32 set = policy_->remap_set(set_of(addr), cls);
  st(cls).llc_writebacks++;
  i32 way = table_.find(set, tag);
  u32 eff_set = set;
  if (way < 0 && cfg_.chaining) {
    const u32 partner = set ^ 1u;
    if (partner < table_.num_sets()) {
      way = table_.find(partner, tag);
      if (way >= 0) eff_set = partner;
    }
  }
  if (way >= 0) {
    auto rw = table_.way(eff_set, static_cast<u32>(way));
    mem_->fast_access(now, rw.channel, addr, kLineBytes, /*is_write=*/true, cls);
    if (cfg_.mode == HybridMode::Cache) rw.dirty = true;
  } else {
    mem_->slow_access(now, addr, kLineBytes, /*is_write=*/true, cls);
  }
}

void HybridMemory::audit_counters(Cycle now) const {
  if (!H2_CHECK_ACTIVE(2)) return;
  for (u32 i = 0; i < 2; ++i) {
    const HybridStats& s = stats_[i];
    const char* who = i == 0 ? "cpu" : "gpu";
    H2_CHECK(2, s.demand == s.fast_hits + s.misses,
             "hybrid memory cycle %llu: %s demand accesses not conserved "
             "(demand=%llu != fast_hits=%llu + misses=%llu)",
             static_cast<unsigned long long>(now), who,
             static_cast<unsigned long long>(s.demand),
             static_cast<unsigned long long>(s.fast_hits),
             static_cast<unsigned long long>(s.misses));
    H2_CHECK(2, s.misses == s.migrations + s.bypasses + s.first_touches,
             "hybrid memory cycle %llu: %s misses not conserved "
             "(misses=%llu != migrations=%llu + bypasses=%llu + first_touches=%llu)",
             static_cast<unsigned long long>(now), who,
             static_cast<unsigned long long>(s.misses),
             static_cast<unsigned long long>(s.migrations),
             static_cast<unsigned long long>(s.bypasses),
             static_cast<unsigned long long>(s.first_touches));
    H2_CHECK(2, s.chain_hits <= s.fast_hits,
             "hybrid memory cycle %llu: %s chain_hits=%llu exceed fast_hits=%llu",
             static_cast<unsigned long long>(now), who,
             static_cast<unsigned long long>(s.chain_hits),
             static_cast<unsigned long long>(s.fast_hits));
  }
}

void HybridMemory::audit(Cycle now, const char* where) const {
  if (!H2_CHECK_ACTIVE(2)) return;
  audit_counters(now);

  // Residency bijection + per-way structural invariants.
  std::unordered_set<u64> resident;
  resident.reserve(static_cast<size_t>(table_.num_sets()) * table_.assoc());
  for (u32 set = 0; set < table_.num_sets(); ++set) {
    for (u32 w = 0; w < table_.assoc(); ++w) {
      const auto rw = table_.way(set, w);
      if (!rw.valid) continue;
      H2_CHECK(2, resident.insert(rw.tag).second,
               "%s cycle %llu: remap not a bijection — block %llu resident "
               "twice (second copy at set %u way %u)",
               where, static_cast<unsigned long long>(now),
               static_cast<unsigned long long>(rw.tag), set, w);
      H2_CHECK(2, rw.channel < mem_->num_fast_superchannels(),
               "%s cycle %llu: set %u way %u on superchannel %u of %u",
               where, static_cast<unsigned long long>(now), set, w, rw.channel,
               mem_->num_fast_superchannels());
      H2_CHECK(2, (rw.present & ~full_mask()) == 0,
               "%s cycle %llu: set %u way %u sub-block mask %#x exceeds "
               "geometry mask %#x",
               where, static_cast<unsigned long long>(now), set, w, rw.present,
               full_mask());
    }
  }

  // Capacity accounting: the table must cover exactly the configured fast
  // capacity (whole sets; any remainder smaller than one set is unusable).
  const u64 covered =
      static_cast<u64>(table_.num_sets()) * table_.assoc() * cfg_.block_bytes;
  H2_CHECK(2, table_.num_sets() == cfg_.num_sets() &&
               covered <= cfg_.fast_capacity_bytes &&
               cfg_.fast_capacity_bytes - covered <
                   static_cast<u64>(table_.assoc()) * cfg_.block_bytes,
           "%s cycle %llu: capacity accounting broken — %u sets x %u ways x "
           "%llu B = %llu B vs configured %llu B",
           where, static_cast<unsigned long long>(now), table_.num_sets(),
           table_.assoc(), static_cast<unsigned long long>(cfg_.block_bytes),
           static_cast<unsigned long long>(covered),
           static_cast<unsigned long long>(cfg_.fast_capacity_bytes));

  // The flattened policy-mapping cache must agree with the virtual mapping
  // functions for every (set, way) — this is the contract that lets the hot
  // loops (victim scan, fills, swaps, lazy fixups) read the cache instead of
  // dispatching through the vtable.
  for (u32 set = 0; set < table_.num_sets(); ++set) {
    for (u32 w = 0; w < table_.assoc(); ++w) {
      H2_CHECK(2, policy_->flat_channel_of_way(set, w) ==
                      policy_->channel_of_way(set, w),
               "%s cycle %llu: flat mapping cache stale — set %u way %u "
               "cached channel %u != virtual %u",
               where, static_cast<unsigned long long>(now), set, w,
               policy_->flat_channel_of_way(set, w),
               policy_->channel_of_way(set, w));
      H2_CHECK(2, policy_->flat_owner_is_cpu(set, w) ==
                      (policy_->way_owner(set, w) == Requestor::Cpu),
               "%s cycle %llu: flat mapping cache stale — set %u way %u "
               "cached owner disagrees with way_owner",
               where, static_cast<unsigned long long>(now), set, w);
      for (const Requestor cls : {Requestor::Cpu, Requestor::Gpu}) {
        H2_CHECK(2, policy_->flat_way_allowed(set, w, cls) ==
                        policy_->way_allowed(set, w, cls),
                 "%s cycle %llu: flat mapping cache stale — set %u way %u "
                 "cached %s permission disagrees with way_allowed",
                 where, static_cast<unsigned long long>(now), set, w,
                 cls == Requestor::Cpu ? "cpu" : "gpu");
      }
    }
  }

  // Remap-cache contents must be a subset of the table's set range.
  const Addr meta_limit =
      static_cast<Addr>(table_.num_sets()) * remap_cache_.bytes_per_set();
  for (const Addr a : remap_cache_.sram().resident_addrs()) {
    H2_CHECK(2, a < meta_limit,
             "%s cycle %llu: remap cache holds metadata at %llu beyond the "
             "table (limit %llu, %u sets)",
             where, static_cast<unsigned long long>(now),
             static_cast<unsigned long long>(a),
             static_cast<unsigned long long>(meta_limit), table_.num_sets());
  }
  remap_cache_.sram().audit();
}

u64 HybridMemory::flush_stale_sets(Cycle now) {
  if (cfg_.chaining) return 0;  // partner-set residents are reachable
  u64 flushed = 0;
  for (u32 set = 0; set < table_.num_sets(); ++set) {
    for (u32 w = 0; w < table_.assoc(); ++w) {
      auto rw = table_.way(set, w);
      if (!rw.valid) continue;
      const Requestor cls = rw.owner_cpu ? Requestor::Cpu : Requestor::Gpu;
      const u32 natural = static_cast<u32>(rw.tag % table_.num_sets());
      if (policy_->remap_set(natural, cls) == set) continue;
      // In flat mode the fast-tier copy is the only one, so it always
      // transfers out; in cache mode only dirty data needs the writeback.
      if (cfg_.mode == HybridMode::Flat || rw.dirty) {
        const u32 wb_bytes =
            cfg_.subblock
                ? std::max<u32>(64, 64 * std::popcount(rw.present & full_mask()))
                : static_cast<u32>(cfg_.block_bytes);
        mem_->slow_access(now, rw.tag * cfg_.block_bytes, wb_bytes,
                          /*is_write=*/true, cls);
        st(cls).dirty_writebacks++;
      }
      rw.valid = false;
      rw.dirty = false;
      rw.tag = kInvalidTag;
      st(cls).flush_invalidations++;
      flushed++;
    }
  }
  return flushed;
}

void HybridMemory::run_instant_reconfig() {
  for (u32 set = 0; set < table_.num_sets(); ++set) {
    for (u32 w = 0; w < table_.assoc(); ++w) {
      auto rw = table_.way(set, w);
      const bool want_cpu = policy_->way_owner(set, w) == Requestor::Cpu;
      if (rw.owner_cpu != want_cpu) {
        rw.owner_cpu = want_cpu;
        if (cfg_.mode == HybridMode::Cache) {
          rw.valid = false;
          rw.dirty = false;
          rw.tag = kInvalidTag;
        }
      }
      rw.channel = static_cast<u8>(policy_->channel_of_way(set, w));
    }
  }
}

void RemapTable::save(ckpt::CkptWriter& w) const {
  w.put_pod_vec(tag_);
  w.put_pod_vec(lru_);
  w.put_pod_vec(present_);
  w.put_pod_vec(hits_);
  w.put_pod_vec(channel_);
  w.put_pod_vec(valid_);
  w.put_pod_vec(dirty_);
  w.put_pod_vec(owner_cpu_);
  w.put_u64(stamp_);
}

void RemapTable::load(ckpt::CkptReader& r) {
  r.get_pod_vec_exact(tag_);
  r.get_pod_vec_exact(lru_);
  r.get_pod_vec_exact(present_);
  r.get_pod_vec_exact(hits_);
  r.get_pod_vec_exact(channel_);
  r.get_pod_vec_exact(valid_);
  r.get_pod_vec_exact(dirty_);
  r.get_pod_vec_exact(owner_cpu_);
  stamp_ = r.get_u64();
  const size_t n = static_cast<size_t>(num_sets_) * assoc_;
  for (size_t i = 0; i < n; ++i) {
    if (valid_[i] > 1 || dirty_[i] > 1 || owner_cpu_[i] > 1)
      r.fail("remap table boolean column holds a non-0/1 value");
    if (lru_[i] > stamp_) r.fail("remap table lru stamp exceeds the global stamp");
  }
}

namespace {
void save_stats(ckpt::CkptWriter& w, const HybridStats& s) {
  w.put_u64(s.demand);
  w.put_u64(s.fast_hits);
  w.put_u64(s.chain_hits);
  w.put_u64(s.misses);
  w.put_u64(s.migrations);
  w.put_u64(s.bypasses);
  w.put_u64(s.first_touches);
  w.put_u64(s.dirty_writebacks);
  w.put_u64(s.fast_swaps);
  w.put_u64(s.lazy_invalidations);
  w.put_u64(s.lazy_moves);
  w.put_u64(s.flush_invalidations);
  w.put_u64(s.llc_writebacks);
  w.put_u64(s.meta_misses);
  w.put_u64(s.meta_wait_cycles);
  w.put_u64(s.subfills);
}

void load_stats(ckpt::CkptReader& r, HybridStats& s) {
  s.demand = r.get_u64();
  s.fast_hits = r.get_u64();
  s.chain_hits = r.get_u64();
  s.misses = r.get_u64();
  s.migrations = r.get_u64();
  s.bypasses = r.get_u64();
  s.first_touches = r.get_u64();
  s.dirty_writebacks = r.get_u64();
  s.fast_swaps = r.get_u64();
  s.lazy_invalidations = r.get_u64();
  s.lazy_moves = r.get_u64();
  s.flush_invalidations = r.get_u64();
  s.llc_writebacks = r.get_u64();
  s.meta_misses = r.get_u64();
  s.meta_wait_cycles = r.get_u64();
  s.subfills = r.get_u64();
}
}  // namespace

void HybridMemory::save(ckpt::CkptWriter& w) const {
  table_.save(w);
  remap_cache_.save(w);
  save_stats(w, stats_[0]);
  save_stats(w, stats_[1]);
}

void HybridMemory::load(ckpt::CkptReader& r) {
  table_.load(r);
  remap_cache_.load(r);
  load_stats(r, stats_[0]);
  load_stats(r, stats_[1]);
}

}  // namespace h2
