#include "proc/core.h"

#include <algorithm>
#include <cmath>

#include "check/check.h"
#include "common/assert.h"
#include "common/ckpt_io.h"

namespace h2 {

namespace {
constexpr u32 kGapMemoSize = 1024;
}

Core::Core(const CoreParams& params, AccessGenerator* gen, MemoryPort* port)
    : params_(params), gen_(gen), port_(port) {
  H2_ASSERT(gen != nullptr && port != nullptr, "core needs a generator and a port");
  H2_ASSERT(params.base_ipc > 0 && params.mlp > 0, "bad core parameters");
  gap_cycles_memo_.resize(kGapMemoSize);
  for (u32 g = 0; g < kGapMemoSize; ++g) {
    gap_cycles_memo_[g] = static_cast<Cycle>(std::ceil(g / params_.base_ipc));
  }
}

Cycle Core::gap_cycles(u32 gap) const {
  if (gap < kGapMemoSize) return gap_cycles_memo_[gap];
  return static_cast<Cycle>(std::ceil(gap / params_.base_ipc));
}

void Core::reset_measurement() {
  retired_ = 0;
  done_cycle_ = kNever;
  reads_issued_ = 0;
  writes_issued_ = 0;
  stall_cycles_ = 0;
  read_latency_.reset();
}

void Core::drain(Cycle now) {
  reads_.drain(now);
  writes_.drain(now);
}

void Core::CompletionBuf::save(ckpt::CkptWriter& w) const {
  w.put_u64(size());
  for (size_t i = head_; i < buf_.size(); ++i) w.put_u64(buf_[i]);
}

void Core::CompletionBuf::load(ckpt::CkptReader& r) {
  const u64 n = r.get_u64();
  buf_.clear();
  head_ = 0;
  buf_.reserve(n);
  Cycle prev = 0;
  for (u64 i = 0; i < n; ++i) {
    const Cycle c = r.get_u64();
    if (c < prev) r.fail("completion buffer not ascending");
    buf_.push_back(c);
    prev = c;
  }
}

void Core::save(ckpt::CkptWriter& w) const {
  reads_.save(w);
  writes_.save(w);
  w.put_u64(last_read_done_);
  w.put_bool(has_pending_);
  w.put_u64(pending_.addr);
  w.put_u32(pending_.gap);
  w.put_bool(pending_.write);
  w.put_bool(pending_.dependent);
  w.put_u64(compute_done_);
  w.put_u64(retired_);
  w.put_u64(done_cycle_);
  w.put_u64(reads_issued_);
  w.put_u64(writes_issued_);
  w.put_u64(stall_cycles_);
  read_latency_.save(w);
}

void Core::load(ckpt::CkptReader& r) {
  reads_.load(r);
  writes_.load(r);
  last_read_done_ = r.get_u64();
  has_pending_ = r.get_bool();
  pending_.addr = r.get_u64();
  pending_.gap = r.get_u32();
  pending_.write = r.get_bool();
  pending_.dependent = r.get_bool();
  compute_done_ = r.get_u64();
  retired_ = r.get_u64();
  done_cycle_ = r.get_u64();
  reads_issued_ = r.get_u64();
  writes_issued_ = r.get_u64();
  stall_cycles_ = r.get_u64();
  read_latency_.load(r);
}

Cycle Core::step(Engine& engine, Cycle now) {
  (void)engine;
  // Issue as many accesses as are ready at `now`; return the next stall/ready
  // point. Bounded per step to keep single steps short. Draining once up
  // front is enough: every completion pushed while issuing has done > now
  // (asserted below), so nothing new becomes drainable within this step.
  drain(now);
  for (u32 issued = 0; issued < 64; ++issued) {
    if (!has_pending_) {
      pending_ = gen_->next();
      pending_.addr = params_.addr_base + pending_.addr;
      compute_done_ += gap_cycles(pending_.gap);
      if (compute_done_ < now) compute_done_ = now;  // idle catch-up
      has_pending_ = true;
    }

    Cycle ready = std::max(now, compute_done_);
    if (pending_.dependent && last_read_done_ > ready) ready = last_read_done_;
    if (!pending_.write && reads_.size() >= params_.mlp) {
      ready = std::max(ready, reads_.top());
    }
    if (pending_.write && writes_.size() >= params_.write_buffer) {
      ready = std::max(ready, writes_.top());
    }

    if (ready > now) {
      stall_cycles_ += ready - std::max(now, compute_done_) > 0
                           ? ready - std::max(now, compute_done_)
                           : 0;
      return ready;
    }

    // Issue at `now`.
    const Cycle done = port_->access(now, params_.cls, params_.unit,
                                     pending_.addr, pending_.write);
    H2_ASSERT(done > now, "memory access must take time");
    if (pending_.write) {
      writes_.push(done);
      writes_issued_++;
      H2_CHECK(1, writes_.size() <= params_.write_buffer,
               "core %s cycle %llu: write buffer overflow (%zu > %u slots)",
               name(), static_cast<unsigned long long>(now), writes_.size(),
               params_.write_buffer);
    } else {
      reads_.push(done);
      last_read_done_ = done;
      reads_issued_++;
      read_latency_.record(done - now);
      H2_CHECK(1, reads_.size() <= params_.mlp,
               "core %s cycle %llu: MSHR overflow (%zu outstanding > mlp=%u)",
               name(), static_cast<unsigned long long>(now), reads_.size(),
               params_.mlp);
    }

    retired_ += pending_.gap + 1;
    compute_done_ = now;
    has_pending_ = false;

    if (done_cycle_ == kNever && retired_ >= params_.target_instructions) {
      done_cycle_ = now;
      // Keep running (replaying) to preserve contention for the other side;
      // the harness decides when the whole simulation stops.
    }
  }
  return now + 1;
}

}  // namespace h2
