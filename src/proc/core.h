// Trace-driven processor models.
//
// One Core object models either a CPU core or a GPU cluster (16 EUs); the
// difference is parameterisation: CPU cores have few MSHRs and frequent
// dependent loads (latency-sensitive), GPU clusters keep dozens of requests
// in flight and almost never stall on a single load (bandwidth-sensitive,
// latency-tolerant). This contrast is precisely the property the paper's
// Insights 1 & 2 build on.
//
// A core consumes its AccessGenerator sequentially: each entry executes
// `gap` instructions (gap / base_ipc cycles) and then issues the access
// through a MemoryPort. Issue stalls when (a) the MSHRs are full, (b) the
// entry is dependent and the previous load has not returned, or (c) the
// write buffer is full (for stores). Instructions are credited at issue, so
// IPC directly reflects memory stalls.
#pragma once

#include <cstddef>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "sim/engine.h"
#include "trace/generators.h"

namespace h2 {

/// How a core reaches memory. Implemented by the system model in the harness
/// (cache hierarchy + hybrid memory + DRAM).
class MemoryPort {
 public:
  virtual ~MemoryPort() = default;

  /// Issues an access at `now`; returns the cycle at which the demanded data
  /// are available (for writes: when the store is accepted). `unit` names the
  /// issuing CPU core or GPU cluster for private-cache lookup.
  virtual Cycle access(Cycle now, Requestor cls, u32 unit, Addr addr, bool write) = 0;
};

struct CoreParams {
  Requestor cls = Requestor::Cpu;
  u32 unit = 0;            ///< core index (CPU) or cluster index (GPU)
  Addr addr_base = 0;      ///< address-space offset for this core's footprint
  double base_ipc = 2.0;   ///< retire rate when not memory-stalled
  u32 mlp = 8;             ///< max outstanding demand reads (MSHRs)
  u32 write_buffer = 16;   ///< max outstanding stores
  u64 target_instructions = 1'000'000;  ///< when this core is "finished"
};

class Core final : public Actor {
 public:
  Core(const CoreParams& params, AccessGenerator* gen, MemoryPort* port);

  Cycle step(Engine& engine, Cycle now) override;
  const char* name() const override { return gen_->name().c_str(); }

  u64 retired_instructions() const { return retired_; }
  bool finished() const { return done_cycle_ != kNever; }
  /// Cycle at which the target instruction count was first reached.
  Cycle done_cycle() const { return done_cycle_; }
  Requestor cls() const { return params_.cls; }

  u64 reads_issued() const { return reads_issued_; }
  u64 writes_issued() const { return writes_issued_; }
  u64 stall_cycles() const { return stall_cycles_; }
  /// Distribution of demand-read completion latencies (issue to data).
  const Histogram& read_latency() const { return read_latency_; }
  const CoreParams& params() const { return params_; }

  /// Zeroes the measurement counters (retired/issued/stall tallies, the
  /// latency histogram, the finished marker) while preserving architectural
  /// state: in-flight read/write completion times, the pending access and
  /// the generator's replay position all survive, so the core continues the
  /// same instruction stream and re-earns its target from zero. Part of the
  /// SimSystem warmup -> measure transition (harness/sim_system.h).
  void reset_measurement();

  /// Checkpoint support: in-flight completion times, the pending access and
  /// every measurement counter. The generator serializes separately (the
  /// harness owns it); the gap-cycles memo is ctor-derived.
  void save(ckpt::CkptWriter& w) const;
  void load(ckpt::CkptReader& r);

 private:
  void drain(Cycle now);
  Cycle gap_cycles(u32 gap) const;

  CoreParams params_;
  AccessGenerator* gen_;
  MemoryPort* port_;

  // Memoised ceil(gap / base_ipc) for the short gaps that dominate traces.
  // Filled in the constructor with the exact expression gap_cycles() falls
  // back to, so the table is bit-identical to computing it every time.
  std::vector<Cycle> gap_cycles_memo_;

  // Multiset of outstanding completion times with O(1) min and a pointer-walk
  // drain. Replaces a std::priority_queue: the stored values are identical (a
  // multiset is a multiset), so every size()/top() stall decision is
  // bit-identical; only the container layout changed. Occupancy is bounded by
  // mlp / write_buffer, so the sorted-insert shift touches a few dozen bytes
  // at most.
  class CompletionBuf {
   public:
    void push(Cycle c) {
      size_t i = buf_.size();
      buf_.push_back(c);
      while (i > head_ && buf_[i - 1] > c) {
        buf_[i] = buf_[i - 1];
        --i;
      }
      buf_[i] = c;
    }
    /// Removes every completion time <= now.
    void drain(Cycle now) {
      while (head_ < buf_.size() && buf_[head_] <= now) ++head_;
      if (head_ == buf_.size()) {
        buf_.clear();
        head_ = 0;
      } else if (head_ >= 64) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
      }
    }
    bool empty() const { return head_ == buf_.size(); }
    size_t size() const { return buf_.size() - head_; }
    Cycle top() const { return buf_[head_]; }

    /// Only the live entries travel; the drained prefix is dead weight and
    /// restoring with head_ = 0 is an invisible layout change.
    void save(ckpt::CkptWriter& w) const;
    void load(ckpt::CkptReader& r);

   private:
    std::vector<Cycle> buf_;  ///< ascending from head_ (drained prefix before)
    size_t head_ = 0;
  };

  CompletionBuf reads_;
  CompletionBuf writes_;
  Cycle last_read_done_ = 0;

  bool has_pending_ = false;
  Access pending_{};
  Cycle compute_done_ = 0;  ///< when the gap preceding `pending_` finishes

  u64 retired_ = 0;
  Cycle done_cycle_ = kNever;
  u64 reads_issued_ = 0;
  u64 writes_issued_ = 0;
  u64 stall_cycles_ = 0;
  Histogram read_latency_;
};

}  // namespace h2
