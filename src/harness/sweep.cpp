#include "harness/sweep.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <mutex>
#include <thread>

#include "common/rng.h"
#include "harness/report.h"

namespace h2 {

u64 hash_str(const std::string& s) {
  u64 h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (const char c : s) {
    h ^= static_cast<u8>(c);
    h *= 0x100000001b3ull;  // FNV prime
  }
  return h;
}

u64 derive_seed(u64 base_seed, const std::string& combo,
                const std::string& design_label) {
  return base_seed ^ mix_hash(hash_str(combo), hash_str(design_label));
}

u32 resolve_jobs(u32 requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("H2_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end && *end == '\0' && v > 0) return static_cast<u32>(v);
    std::cerr << "warning: ignoring invalid H2_JOBS='" << env << "'\n";
  }
  const u32 hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::vector<SweepRun> run_sweep(const std::vector<ExperimentConfig>& configs,
                                const SweepOptions& opts,
                                const ExperimentRunner& runner) {
  const ExperimentRunner& run =
      runner ? runner : ExperimentRunner(&run_experiment);

  std::vector<SweepRun> runs(configs.size());
  std::vector<ExperimentConfig> prepared = configs;
  for (size_t i = 0; i < prepared.size(); ++i) {
    ExperimentConfig& cfg = prepared[i];
    if (opts.derive_seeds) {
      cfg.seed = derive_seed(cfg.seed, cfg.combo, cfg.design.label);
    }
    runs[i].combo = cfg.combo;
    runs[i].design = cfg.design.label;
    runs[i].seed = cfg.seed;
  }

  std::atomic<size_t> next{0};
  std::atomic<size_t> completed{0};
  std::mutex io_mutex;

  auto worker = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= prepared.size()) return;
      SweepRun& slot = runs[i];
      const auto t0 = std::chrono::steady_clock::now();
      try {
        slot.result = run(prepared[i]);
        slot.ok = true;
      } catch (const std::exception& e) {
        slot.error = e.what();
      } catch (...) {
        slot.error = "unknown exception";
      }
      slot.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const size_t done = completed.fetch_add(1, std::memory_order_relaxed) + 1;
      if (opts.verbose) {
        std::lock_guard<std::mutex> lock(io_mutex);
        std::cerr << "  [" << done << "/" << prepared.size() << " " << slot.combo
                  << " / " << slot.design << "] ";
        if (slot.ok) {
          std::cerr << "done ("
                    << fmt(static_cast<double>(slot.result.end_cycle) / 1e6, 1)
                    << "M cycles, " << fmt(slot.wall_seconds, 1) << "s)\n";
        } else {
          std::cerr << "FAILED: " << slot.error << "\n";
        }
      }
    }
  };

  const size_t pool =
      std::min<size_t>(resolve_jobs(opts.jobs), std::max<size_t>(prepared.size(), 1));
  if (pool <= 1) {
    worker();
    return runs;
  }
  std::vector<std::thread> threads;
  threads.reserve(pool);
  for (size_t t = 0; t < pool; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  return runs;
}

}  // namespace h2
