#include "harness/sweep.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "check/fault.h"
#include "common/assert.h"
#include "common/cancel.h"
#include "common/rng.h"
#include "harness/checkpoint.h"
#include "harness/journal.h"
#include "harness/report.h"

namespace h2 {

u64 hash_str(const std::string& s) {
  u64 h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (const char c : s) {
    h ^= static_cast<u8>(c);
    h *= 0x100000001b3ull;  // FNV prime
  }
  return h;
}

u64 derive_seed(u64 base_seed, const std::string& combo,
                const std::string& design_label) {
  return base_seed ^ mix_hash(hash_str(combo), hash_str(design_label));
}

u32 resolve_jobs(u32 requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("H2_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end && *end == '\0' && v > 0) return static_cast<u32>(v);
    std::cerr << "warning: ignoring invalid H2_JOBS='" << env << "'\n";
  }
  const u32 hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

const char* to_string(RunStatus s) {
  switch (s) {
    case RunStatus::Ok: return "ok";
    case RunStatus::Failed: return "failed";
    case RunStatus::TimedOut: return "timeout";
  }
  return "?";
}

namespace {

i64 steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-worker watchdog state. The Token outlives every run on the worker
/// (the watchdog thread holds a reference), so there is never a window where
/// it could flip a dangling flag; the worker reset()s it between attempts.
struct WatchSlot {
  cancel::Token token;
  std::atomic<i64> deadline_ms{-1};  ///< steady_ms() cutoff; -1 = inactive
};

JournalEntry make_entry(const SweepRun& slot, const std::string& key) {
  JournalEntry e;
  e.key = key;
  e.combo = slot.combo;
  e.design = slot.design;
  e.seed = slot.seed;
  e.status = to_string(slot.status);
  e.attempts = slot.attempts;
  e.error = slot.error;
  e.wall_seconds = slot.wall_seconds;
  if (slot.ok) e.result = slot.result;
  return e;
}

void restore_from_entry(SweepRun& slot, const JournalEntry& e) {
  slot.status = RunStatus::Ok;
  slot.ok = true;
  slot.error.clear();
  slot.attempts = e.attempts;
  slot.from_journal = true;
  slot.wall_seconds = e.wall_seconds;
  slot.result = e.result;
}

}  // namespace

std::vector<SweepRun> run_sweep(const std::vector<ExperimentConfig>& configs,
                                const SweepOptions& opts,
                                const ExperimentRunner& runner) {
  const ExperimentRunner& run =
      runner ? runner : ExperimentRunner(&run_experiment);

  std::vector<SweepRun> runs(configs.size());
  std::vector<ExperimentConfig> prepared = configs;
  for (size_t i = 0; i < prepared.size(); ++i) {
    ExperimentConfig& cfg = prepared[i];
    if (opts.derive_seeds) {
      cfg.seed = derive_seed(cfg.seed, cfg.combo, cfg.design.label);
    }
    runs[i].combo = cfg.combo;
    runs[i].design = cfg.design.label;
    runs[i].seed = cfg.seed;
    if (!opts.checkpoint_dir.empty()) {
      // Keyed like the journal (post seed derivation): the file can only ever
      // be restored into the exact config that wrote it, and load_checkpoint
      // double-checks the key stored in the header anyway.
      cfg.checkpoint_path =
          opts.checkpoint_dir + "/" + config_key(cfg) + ".ckpt";
      cfg.checkpoint_every = opts.checkpoint_every;
      if (opts.restore_checkpoints && peek_checkpoint(cfg.checkpoint_path)) {
        cfg.restore_path = cfg.checkpoint_path;
      }
    }
  }

  // Resolve and pre-validate the fault spec so a typo aborts the sweep up
  // front (std::invalid_argument) instead of failing every slot.
  std::string fault_spec = opts.fault_spec;
  if (fault_spec.empty()) {
    if (const char* env = std::getenv("H2_FAULT")) fault_spec = env;
  }
  if (!fault_spec.empty()) (void)fault::parse_spec(fault_spec);

  // Journal/resume: keys are computed on the *prepared* configs (post seed
  // derivation), so an entry can never feed a slot that would have run with
  // a different effective seed.
  std::vector<std::string> keys;
  if (!opts.journal_path.empty()) {
    keys.resize(prepared.size());
    for (size_t i = 0; i < prepared.size(); ++i) keys[i] = config_key(prepared[i]);
  }
  std::vector<char> done(prepared.size(), 0);
  if (opts.resume) {
    H2_ASSERT(!opts.journal_path.empty(), "resume requires a journal path");
    const auto journaled = load_journal(opts.journal_path);
    size_t resumed = 0;
    for (size_t i = 0; i < prepared.size(); ++i) {
      const auto it = journaled.find(keys[i]);
      if (it != journaled.end() && it->second.status == "ok") {
        restore_from_entry(runs[i], it->second);
        done[i] = 1;
        resumed++;
      }
    }
    if (opts.verbose && resumed > 0) {
      std::cerr << "  resume: " << resumed << "/" << prepared.size()
                << " runs restored from " << opts.journal_path << "\n";
    }
  }
  std::unique_ptr<Journal> journal;
  if (!opts.journal_path.empty()) {
    journal = std::make_unique<Journal>(opts.journal_path, opts.journal_fsync);
  }

  const size_t pool =
      std::min<size_t>(resolve_jobs(opts.jobs), std::max<size_t>(prepared.size(), 1));

  // Watchdog: one persistent cancellation slot per worker; a single scanner
  // thread flips a slot's Token when its deadline passes. The worker clears
  // the deadline *before* resetting the token between attempts, so a stale
  // deadline can never cancel a fresh attempt.
  std::vector<WatchSlot> watch(std::max<size_t>(pool, 1));
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog;
  if (opts.run_timeout_seconds > 0) {
    watchdog = std::thread([&] {
      while (!watchdog_stop.load(std::memory_order_relaxed)) {
        const i64 now = steady_ms();
        for (auto& w : watch) {
          const i64 dl = w.deadline_ms.load(std::memory_order_acquire);
          if (dl >= 0 && now >= dl) w.token.cancel();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  std::atomic<size_t> next{0};
  std::atomic<size_t> completed{0};
  std::mutex io_mutex;

  auto worker = [&](size_t wi) {
    WatchSlot& w = watch[wi];
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= prepared.size()) return;
      if (done[i]) continue;  // restored from the journal
      SweepRun& slot = runs[i];

      // One injector per slot, persisting across retries: a
      // throw-transient:count=1 fault fails the first attempt and lets the
      // retry succeed, exactly like a real transient.
      std::optional<fault::Injector> injector;
      if (!fault_spec.empty()) injector.emplace(fault_spec);

      const u32 max_attempts = 1 + opts.max_retries;
      u32 backoff_ms = opts.retry_backoff_ms;
      const auto t0 = std::chrono::steady_clock::now();
      for (u32 attempt = 1; attempt <= max_attempts; ++attempt) {
        slot.attempts = attempt;
        bool transient = false;
        w.token.reset();
        if (opts.run_timeout_seconds > 0) {
          w.deadline_ms.store(
              steady_ms() + static_cast<i64>(opts.run_timeout_seconds * 1000.0),
              std::memory_order_release);
        }
        try {
          cancel::Scope cancel_scope(w.token);
          std::optional<fault::Scope> fault_scope;
          if (injector) fault_scope.emplace(*injector);
          slot.result = run(prepared[i]);
          slot.status = RunStatus::Ok;
          slot.ok = true;
          slot.error.clear();
        } catch (const cancel::CancelledError&) {
          slot.status = RunStatus::TimedOut;
          slot.error = "exceeded run timeout (" +
                       fmt(opts.run_timeout_seconds, 1) + "s, attempt " +
                       std::to_string(attempt) + ")";
          transient = true;
        } catch (const fault::TransientError& e) {
          slot.status = RunStatus::Failed;
          slot.error = e.what();
          transient = true;
        } catch (const std::exception& e) {
          slot.status = RunStatus::Failed;
          slot.error = e.what();
        } catch (...) {
          slot.status = RunStatus::Failed;
          slot.error = "unknown exception";
        }
        w.deadline_ms.store(-1, std::memory_order_release);
        if (slot.ok || !transient || attempt == max_attempts) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = backoff_ms < 0x40000000u ? backoff_ms * 2 : backoff_ms;
      }
      slot.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (!slot.ok && !prepared[i].checkpoint_path.empty()) {
        // Tell h2report "resumable from epoch K" apart from "lost everything".
        // Label the slot by design/combo, not just the raw config_key-named
        // path: a sharded sweep emits many near-identical paths, and the
        // resumable-vs-lost listing has to stay readable by eye.
        if (const auto info = peek_checkpoint(prepared[i].checkpoint_path)) {
          slot.error += "; last checkpoint [" + slot.combo + " / " + slot.design +
                        "]: " + prepared[i].checkpoint_path + " (epoch " +
                        std::to_string(info->epoch) + ")";
        } else {
          slot.error += "; no checkpoint recovered [" + slot.combo + " / " +
                        slot.design + "]";
        }
      }
      if (journal) journal->append(make_entry(slot, keys[i]));
      const size_t done_count = completed.fetch_add(1, std::memory_order_relaxed) + 1;
      if (opts.verbose) {
        std::lock_guard<std::mutex> lock(io_mutex);
        std::cerr << "  [" << done_count << "/" << prepared.size() << " "
                  << slot.combo << " / " << slot.design << "] ";
        if (slot.ok) {
          std::cerr << "done ("
                    << fmt(static_cast<double>(slot.result.end_cycle) / 1e6, 1)
                    << "M cycles, " << fmt(slot.wall_seconds, 1) << "s";
          if (slot.attempts > 1) std::cerr << ", attempt " << slot.attempts;
          std::cerr << ")\n";
        } else {
          std::cerr << (slot.status == RunStatus::TimedOut ? "TIMEOUT: " : "FAILED: ")
                    << slot.error << "\n";
        }
      }
    }
  };

  if (pool <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (size_t t = 0; t < pool; ++t) threads.emplace_back(worker, t);
    for (auto& t : threads) t.join();
  }

  if (watchdog.joinable()) {
    watchdog_stop.store(true, std::memory_order_relaxed);
    watchdog.join();
  }
  return runs;
}

}  // namespace h2
