#include "harness/config_loader.h"

#include <iostream>
#include <set>

#include "common/assert.h"

namespace h2 {

DesignSpec design_from_name(const std::string& name) {
  if (name == "baseline") return DesignSpec::baseline();
  if (name == "waypart") return DesignSpec::waypart();
  if (name == "hashcache") return DesignSpec::hashcache();
  if (name == "profess") return DesignSpec::profess();
  if (name == "hydrogen") return DesignSpec::hydrogen_full();
  if (name == "hydrogen-dp") return DesignSpec::hydrogen_dp();
  if (name == "hydrogen-dp+token") return DesignSpec::hydrogen_dp_token();
  if (name == "hydrogen-setpart") return DesignSpec::hydrogen_setpart();
  if (name == "integrated") return DesignSpec::integrated();
  H2_ASSERT(false, "unknown design '%s'", name.c_str());
  return DesignSpec::baseline();
}

ExperimentConfig experiment_from_config(const ConfigFile& cfg) {
  ExperimentConfig ec;

  // --- system -------------------------------------------------------------
  const u32 scale = static_cast<u32>(cfg.get_int("system.scale", 8));
  ec.sys = cfg.get_bool("system.hbm3", false) ? SystemConfig::table1_hbm3(scale)
                                              : SystemConfig::table1(scale);
  ec.sys.cpu_cores = static_cast<u32>(cfg.get_int("system.cpu_cores", ec.sys.cpu_cores));

  // --- simulation ----------------------------------------------------------
  ec.combo = cfg.get_string("sim.combo", "C1");
  ec.design = design_from_name(cfg.get_string("sim.design", "hydrogen"));
  ec.seed = cfg.get_u64("sim.seed", 42);
  const std::string mode = cfg.get_string("sim.mode", "cache");
  H2_ASSERT(mode == "cache" || mode == "flat", "%s: sim.mode must be cache or flat, got '%s'",
            cfg.where("sim.mode").c_str(), mode.c_str());
  ec.mode = mode == "cache" ? HybridMode::Cache : HybridMode::Flat;
  ec.cpu_target_instructions =
      cfg.get_u64("sim.cpu_target_instructions", 120'000);
  ec.gpu_target_instructions =
      cfg.get_u64("sim.gpu_target_instructions", 1'200'000);
  ec.epoch_cycles = cfg.get_u64("sim.epoch_cycles", 40'000);
  ec.phase_cycles = cfg.get_u64("sim.phase_cycles", 0);
  ec.max_cycles = cfg.get_u64("sim.max_cycles", 400'000'000);
  ec.weight_cpu = cfg.get_double("sim.weight_cpu", 12.0);
  ec.weight_gpu = cfg.get_double("sim.weight_gpu", 1.0);
  ec.cpu_only = cfg.get_bool("sim.cpu_only", false);
  ec.gpu_only = cfg.get_bool("sim.gpu_only", false);
  ec.trace_dir = cfg.get_string("sim.trace_dir", "");
  ec.warmup_epochs = static_cast<u32>(cfg.get_int("sim.warmup_epochs", 0));
  ec.timeline_path = cfg.get_string("sim.timeline", "");
  ec.reconfig_schedule = cfg.get_string("sim.reconfig_schedule", "");
  ec.shards = static_cast<u32>(cfg.get_int("sim.shards", 1));
  ec.shard_threads = static_cast<u32>(cfg.get_int("sim.shard_threads", 0));
  H2_ASSERT(ec.shards >= 1, "%s: sim.shards must be >= 1",
            cfg.where("sim.shards").c_str());

  // --- hybrid memory geometry ----------------------------------------------
  ec.assoc = static_cast<u32>(cfg.get_int("hybrid.assoc", 4));
  ec.block_bytes = cfg.get_u64("hybrid.block_bytes", 256);
  ec.fast_capacity_frac = cfg.get_double("hybrid.fast_capacity_frac", 0.125);
  ec.fast_capacity_override = cfg.get_u64("hybrid.fast_capacity", 0);
  ec.fast_channels = static_cast<u32>(cfg.get_int("hybrid.fast_channels", 0));
  ec.slow_channels = static_cast<u32>(cfg.get_int("hybrid.slow_channels", 0));

  // --- memory backend -------------------------------------------------------
  const std::string backend = cfg.get_string("mem.backend", "fast");
  H2_ASSERT(parse_backend_kind(backend, &ec.backend),
            "%s: mem.backend must be fast or ddr, got '%s'",
            cfg.where("mem.backend").c_str(), backend.c_str());
  ec.ddr.frfcfs_cap = static_cast<u32>(cfg.get_int("ddr.frfcfs_cap", ec.ddr.frfcfs_cap));
  ec.ddr.wq_depth = static_cast<u32>(cfg.get_int("ddr.wq_depth", ec.ddr.wq_depth));
  ec.ddr.wq_high = static_cast<u32>(cfg.get_int("ddr.wq_high", ec.ddr.wq_high));
  ec.ddr.wq_low = static_cast<u32>(cfg.get_int("ddr.wq_low", ec.ddr.wq_low));
  ec.ddr.t_ras = static_cast<u32>(cfg.get_int("ddr.t_ras", 0));
  ec.ddr.t_ccd_s = static_cast<u32>(cfg.get_int("ddr.t_ccd_s", 0));
  ec.ddr.t_ccd_l = static_cast<u32>(cfg.get_int("ddr.t_ccd_l", 0));
  ec.ddr.bank_groups = static_cast<u32>(cfg.get_int("ddr.bank_groups", 0));
  ec.ddr.t_refi = static_cast<u32>(cfg.get_int("ddr.t_refi", 0));
  ec.ddr.t_rfc = static_cast<u32>(cfg.get_int("ddr.t_rfc", 0));
  H2_ASSERT(ec.ddr.frfcfs_cap >= 1, "%s: ddr.frfcfs_cap must be >= 1",
            cfg.where("ddr.frfcfs_cap").c_str());
  H2_ASSERT(ec.ddr.wq_low < ec.ddr.wq_high && ec.ddr.wq_high <= ec.ddr.wq_depth,
            "%s: write-drain watermarks must satisfy wq_low < wq_high <= "
            "wq_depth (low=%u high=%u depth=%u)",
            cfg.where("ddr.wq_high").c_str(), ec.ddr.wq_low, ec.ddr.wq_high,
            ec.ddr.wq_depth);

  // --- WayPart's knob --------------------------------------------------------
  // waypart.cpu_way_fraction is the canonical key; hydrogen.cpu_capacity_frac
  // is accepted as an alias because WayPart historically piggybacked on that
  // HydrogenConfig field. The waypart key wins when both are present.
  if (ec.design.kind == DesignSpec::Kind::WayPart) {
    double frac = cfg.get_double("hydrogen.cpu_capacity_frac", ec.design.cpu_way_fraction);
    frac = cfg.get_double("waypart.cpu_way_fraction", frac);
    ec.design.cpu_way_fraction = frac;
  }

  // --- Hydrogen-specific knobs ----------------------------------------------
  // SetPart builds its policy from the same HydrogenConfig fields
  // (make_policy in harness/sim_system.cpp), so it accepts the same keys.
  if (ec.design.kind == DesignSpec::Kind::Hydrogen ||
      ec.design.kind == DesignSpec::Kind::SetPart) {
    HydrogenConfig& h = ec.design.hydrogen;
    h.decoupled = cfg.get_bool("hydrogen.decoupled", h.decoupled);
    h.token = cfg.get_bool("hydrogen.token", h.token);
    h.search = cfg.get_bool("hydrogen.search", h.search);
    h.fixed_cpu_capacity_frac =
        cfg.get_double("hydrogen.cpu_capacity_frac", h.fixed_cpu_capacity_frac);
    h.fixed_cpu_bw_frac = cfg.get_double("hydrogen.cpu_bw_frac", h.fixed_cpu_bw_frac);
    h.fixed_tok_frac = cfg.get_double("hydrogen.tok_frac", h.fixed_tok_frac);
    h.faucet_period = cfg.get_u64("hydrogen.faucet_period", h.faucet_period);
    const std::string swap = cfg.get_string("hydrogen.swap", "on");
    if (swap == "on") {
      h.swap = SwapMode::On;
    } else if (swap == "prob") {
      h.swap = SwapMode::Prob;
    } else if (swap == "off") {
      h.swap = SwapMode::Off;
    } else {
      H2_ASSERT(false, "%s: hydrogen.swap must be on|prob|off, got '%s'",
                cfg.where("hydrogen.swap").c_str(), swap.c_str());
    }
  }

  // --- Integrated (coherent-NUMA) knobs -------------------------------------
  if (ec.design.kind == DesignSpec::Kind::Integrated) {
    IntegratedConfig& ic = ec.design.integrated_cfg;
    ic.threshold = static_cast<u32>(cfg.get_int("integrated.threshold", ic.threshold));
    ic.cooldown = cfg.get_u64("integrated.cooldown", ic.cooldown);
    ic.stats.coarse_slots =
        static_cast<u32>(cfg.get_int("integrated.coarse_slots", ic.stats.coarse_slots));
    ic.stats.hot_slots =
        static_cast<u32>(cfg.get_int("integrated.hot_slots", ic.stats.hot_slots));
    ic.stats.probe_window =
        static_cast<u32>(cfg.get_int("integrated.probe_window", ic.stats.probe_window));
    ic.stats.promote_threshold = static_cast<u32>(
        cfg.get_int("integrated.promote_threshold", ic.stats.promote_threshold));
    H2_ASSERT(ic.threshold >= 1, "%s: integrated.threshold must be >= 1",
              cfg.where("integrated.threshold").c_str());
  }
  return ec;
}

ExperimentConfig experiment_from_file(const std::string& path, bool strict) {
  ConfigFile cfg;
  H2_ASSERT(cfg.load(path), "cannot open config file %s", path.c_str());
  ExperimentConfig ec = experiment_from_config(cfg);
  if (strict) {
    // Two classes of typo, each reported with the offending file:line.
    // An unknown section: every key under it is wrong for the same reason,
    // so it is diagnosed as a section (and excluded from the unused list).
    static const std::set<std::string> known_sections = {
        "sim", "system", "hybrid", "hydrogen", "waypart", "integrated", "mem", "ddr"};
    size_t errors = 0;
    std::set<std::string> in_bad_section;
    for (const auto& k : cfg.keys()) {
      const std::string section = cfg.section_of(k);
      if (known_sections.count(section)) continue;
      in_bad_section.insert(k);
      ++errors;
      if (section.empty()) {
        std::cerr << "error: " << cfg.where(k) << ": key '" << k
                  << "' outside any section (known sections: sim, system,"
                     " hybrid, hydrogen, waypart, integrated, mem, ddr)\n";
      } else {
        std::cerr << "error: " << cfg.where(k) << ": unknown section '[" << section
                  << "]' (known sections: sim, system, hybrid, hydrogen,"
                     " waypart, integrated, mem, ddr)\n";
      }
    }
    for (const auto& k : cfg.unused_keys()) {
      if (in_bad_section.count(k)) continue;
      ++errors;
      std::cerr << "error: " << cfg.where(k) << ": unknown config key '" << k << "'\n";
    }
    H2_ASSERT(errors == 0, "config file %s has %zu unknown key(s)/section(s)",
              path.c_str(), errors);
  }
  return ec;
}

}  // namespace h2
