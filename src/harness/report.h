// Table / CSV reporting helpers shared by the figure benches and examples.
// Each bench prints the same rows/series its paper figure reports, plus a
// paper-vs-measured summary line where the paper states a headline number.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"

namespace h2 {

struct ExperimentConfig;
struct SweepRun;

/// Fixed-precision formatting for table cells.
std::string fmt(double v, int precision = 2);
std::string fmt_pct(double v, int precision = 1);  ///< 0.317 -> "31.7%"

/// Aligned text table accumulated row by row.
class TablePrinter {
 public:
  TablePrinter(std::string title, std::vector<std::string> columns);

  void row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Also dumps the table as CSV (artifact-style perf.csv companions).
  void write_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// One "paper vs measured" check line, printed by every figure bench.
void print_check(std::ostream& os, const std::string& what, double paper,
                 double measured, int precision = 2);

/// Appends one sweep slot to an h2sim/h2report results CSV, writing the
/// header when the file does not exist yet. Ok slots carry full metrics;
/// failed/timed-out slots become explicit status!=ok rows with empty metric
/// cells, so an aggregator sees that the cell was attempted and lost rather
/// than silently missing.
void append_result_csv(const std::string& path, const SweepRun& run,
                       const ExperimentConfig& cfg);

}  // namespace h2
