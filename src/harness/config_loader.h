// Builds an ExperimentConfig from an INI-style configuration file — the
// equivalent of the artifact's per-design zsim.cfg files (sims/baseline,
// sims/hashcache, sims/profess, sims/hydrogen). Checked-in examples live in
// configs/.
#pragma once

#include <string>

#include "config/config_file.h"
#include "harness/experiment.h"

namespace h2 {

/// Resolves a design name ("baseline", "waypart", "hashcache", "profess",
/// "hydrogen", "hydrogen-dp", "hydrogen-dp+token", "hydrogen-setpart")
/// to its DesignSpec. Aborts on unknown names.
DesignSpec design_from_name(const std::string& name);

/// Builds an experiment from a parsed config. Recognised keys (all optional,
/// defaults are the bench-standard Table I setup):
///   sim.combo, sim.design, sim.seed, sim.mode (cache|flat)
///   sim.cpu_target_instructions, sim.gpu_target_instructions, sim.trace_dir
///   sim.epoch_cycles, sim.phase_cycles, sim.max_cycles
///   sim.weight_cpu, sim.weight_gpu, sim.cpu_only, sim.gpu_only
///   sim.warmup_epochs, sim.timeline (per-epoch CSV path)
///   system.scale, system.cpu_cores, system.hbm3
///   hybrid.assoc, hybrid.block_bytes, hybrid.fast_capacity_frac,
///   hybrid.fast_capacity (size with suffix), hybrid.fast_channels,
///   hybrid.slow_channels
///   waypart.cpu_way_fraction (alias: hydrogen.cpu_capacity_frac, kept for
///   configs predating the dedicated [waypart] section; the waypart key wins)
///   hydrogen.decoupled, hydrogen.token, hydrogen.search,
///   hydrogen.cpu_capacity_frac, hydrogen.cpu_bw_frac, hydrogen.tok_frac,
///   hydrogen.faucet_period, hydrogen.swap (on|prob|off)
ExperimentConfig experiment_from_config(const ConfigFile& cfg);

/// Convenience: load + build; in strict mode (the default) aborts if the
/// file is missing, has unknown keys, or declares sections other than
/// [sim]/[system]/[hybrid]/[hydrogen]/[waypart] — every diagnostic names the
/// offending file:line, so a typo is a click away.
ExperimentConfig experiment_from_file(const std::string& path, bool strict = true);

}  // namespace h2
