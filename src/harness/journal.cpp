#include "harness/journal.h"

#include <cinttypes>
#include <cstdlib>
#include <cstring>

#include "common/assert.h"
#include "common/ckpt_io.h"
#include "harness/sweep.h"

namespace h2 {

namespace {

void append_hex_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  out += buf;
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

/// Builder for the flat all-strings JSON object serialize_entry emits.
struct ObjWriter {
  std::string out = "{";
  bool first = true;

  void key(const char* k) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += k;
    out += "\":\"";
  }
  void str(const char* k, const std::string& v) {
    key(k);
    append_json_escaped(out, v);
    out += '"';
  }
  void num(const char* k, u64 v) {
    key(k);
    out += std::to_string(v);
    out += '"';
  }
  void dbl(const char* k, double v) {
    key(k);
    append_hex_double(out, v);
    out += '"';
  }
  std::string finish() {
    out += '}';
    return std::move(out);
  }
};

constexpr const char* kHmFields[15] = {
    "demand",          "fast_hits",  "chain_hits",      "misses",
    "migrations",      "bypasses",   "first_touches",   "dirty_writebacks",
    "fast_swaps",      "lazy_invalidations", "lazy_moves", "llc_writebacks",
    "meta_misses",     "meta_wait_cycles",   "subfills",
};

u64* hm_slot(HybridStats& s, int i) {
  u64* slots[15] = {
      &s.demand,          &s.fast_hits,  &s.chain_hits,      &s.misses,
      &s.migrations,      &s.bypasses,   &s.first_touches,   &s.dirty_writebacks,
      &s.fast_swaps,      &s.lazy_invalidations, &s.lazy_moves, &s.llc_writebacks,
      &s.meta_misses,     &s.meta_wait_cycles,   &s.subfills,
  };
  return slots[i];
}

/// Minimal parser for the object ObjWriter emits: {"k":"v",...} where every
/// value is a string. Returns false on any structural surprise.
bool parse_flat_object(const std::string& line, std::map<std::string, std::string>& out) {
  size_t i = 0;
  const size_t n = line.size();
  auto skip_ws = [&] {
    while (i < n && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) i++;
  };
  auto read_string = [&](std::string& s) -> bool {
    if (i >= n || line[i] != '"') return false;
    i++;
    s.clear();
    while (i < n && line[i] != '"') {
      if (line[i] == '\\') {
        i++;
        if (i >= n || (line[i] != '"' && line[i] != '\\')) return false;
      }
      s += line[i++];
    }
    if (i >= n) return false;  // unterminated: truncated journal tail
    i++;
    return true;
  };

  skip_ws();
  if (i >= n || line[i] != '{') return false;
  i++;
  skip_ws();
  if (i < n && line[i] == '}') {
    i++;
  } else {
    while (true) {
      std::string k, v;
      skip_ws();
      if (!read_string(k)) return false;
      skip_ws();
      if (i >= n || line[i] != ':') return false;
      i++;
      skip_ws();
      if (!read_string(v)) return false;
      out[k] = v;
      skip_ws();
      if (i < n && line[i] == ',') {
        i++;
        continue;
      }
      if (i < n && line[i] == '}') {
        i++;
        break;
      }
      return false;
    }
  }
  skip_ws();
  return i == n;
}

/// Field extractors: each returns false when the key is missing or the value
/// does not parse exactly (trailing garbage counts as corrupt).
bool take_str(const std::map<std::string, std::string>& m, const char* k, std::string& dst) {
  auto it = m.find(k);
  if (it == m.end()) return false;
  dst = it->second;
  return true;
}

bool take_u64(const std::map<std::string, std::string>& m, const char* k, u64& dst) {
  auto it = m.find(k);
  if (it == m.end() || it->second.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  dst = static_cast<u64>(v);
  return true;
}

bool take_dbl(const std::map<std::string, std::string>& m, const char* k, double& dst) {
  auto it = m.find(k);
  if (it == m.end() || it->second.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  dst = v;
  return true;
}

bool take_bool(const std::map<std::string, std::string>& m, const char* k, bool& dst) {
  u64 v = 0;
  if (!take_u64(m, k, v) || v > 1) return false;
  dst = v != 0;
  return true;
}

}  // namespace

std::string config_key(const ExperimentConfig& cfg) {
  // Canonical dump: every field below feeds the hash, '\x1f'-separated so
  // adjacent fields cannot alias. Doubles are rendered as hex-floats.
  std::string c;
  auto s = [&](const std::string& v) {
    c += v;
    c += '\x1f';
  };
  auto u = [&](u64 v) {
    c += std::to_string(v);
    c += '\x1f';
  };
  auto d = [&](double v) {
    append_hex_double(c, v);
    c += '\x1f';
  };

  s(cfg.combo);
  s(cfg.design.label);
  u(static_cast<u64>(cfg.design.kind));
  const HydrogenConfig& h = cfg.design.hydrogen;
  u(h.decoupled);
  u(h.token);
  u(h.search);
  u(h.per_channel_tokens);
  d(h.fixed_cpu_capacity_frac);
  d(h.fixed_cpu_bw_frac);
  d(h.fixed_tok_frac);
  for (double t : h.tok_levels) d(t);
  u(h.faucet_period);
  u(h.phase_length);
  u(static_cast<u64>(h.swap));
  d(h.swap_prob);
  u(h.seed);
  d(cfg.design.cpu_way_fraction);
  u(cfg.design.ideal_swap);
  u(cfg.design.instant_reconfig);
  u(cfg.design.hashcache_native_geometry);

  u(static_cast<u64>(cfg.mode));
  u(cfg.assoc);
  u(cfg.block_bytes);
  d(cfg.fast_capacity_frac);
  u(cfg.fast_capacity_override);
  u(cfg.fast_channels);
  u(cfg.slow_channels);
  u(cfg.cpu_target_instructions);
  u(cfg.gpu_target_instructions);
  d(cfg.weight_cpu);
  d(cfg.weight_gpu);
  u(cfg.epoch_cycles);
  u(cfg.phase_cycles);
  u(cfg.max_cycles);
  u(cfg.warmup_epochs);
  u(cfg.cpu_only);
  u(cfg.gpu_only);
  u(cfg.seed);
  s(cfg.trace_dir);
  s(cfg.reconfig_schedule);
  u(static_cast<u64>(cfg.backend));
  u(cfg.ddr.frfcfs_cap);
  u(cfg.ddr.wq_depth);
  u(cfg.ddr.wq_high);
  u(cfg.ddr.wq_low);
  u(cfg.ddr.t_ras);
  u(cfg.ddr.t_ccd_s);
  u(cfg.ddr.t_ccd_l);
  u(cfg.ddr.bank_groups);
  u(cfg.ddr.t_refi);
  u(cfg.ddr.t_rfc);

  const SystemConfig& sys = cfg.sys;
  u(sys.cpu_cores);
  u(sys.gpu_eus);
  u(sys.gpu_eus_per_cluster);
  d(sys.cpu_base_ipc);
  u(sys.cpu_mlp);
  u(sys.cpu_write_buffer);
  d(sys.gpu_base_ipc);
  u(sys.gpu_mlp);
  u(sys.gpu_write_buffer);
  d(sys.core_ghz);
  u(sys.scale);
  s(sys.mem.fast_channel_timing.name);
  s(sys.mem.slow_channel_timing.name);
  u(sys.mem.fast_channels);
  u(sys.mem.fast_group);
  u(sys.mem.slow_channels);
  u(sys.mem.cpu_priority);
  u(sys.mem.block_bytes);
  u(sys.hybrid.remap_cache_bytes);
  u(sys.hybrid.mc_overhead);
  u(sys.hybrid.chaining);
  u(sys.hybrid.chain_latency);
  u(sys.hybrid.subblock);
  u(sys.hybrid.subblock_fetch);
  u(cfg.shards);

  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, hash_str(c));
  return buf;
}

std::string serialize_entry(const JournalEntry& e) {
  ObjWriter w;
  w.str("key", e.key);
  w.str("combo", e.combo);
  w.str("design", e.design);
  w.num("seed", e.seed);
  w.str("status", e.status);
  w.num("attempts", e.attempts);
  w.str("error", e.error);
  w.dbl("wall_seconds", e.wall_seconds);

  const ExperimentResult& r = e.result;
  w.num("cpu_cycles", r.cpu_cycles);
  w.num("gpu_cycles", r.gpu_cycles);
  w.num("end_cycle", r.end_cycle);
  w.num("cpu_finished", r.cpu_finished);
  w.num("gpu_finished", r.gpu_finished);
  w.num("cpu_instructions", r.cpu_instructions);
  w.num("gpu_instructions", r.gpu_instructions);
  w.dbl("cpu_ipc", r.cpu_ipc);
  w.dbl("gpu_ipc", r.gpu_ipc);
  w.dbl("weighted_ipc", r.weighted_ipc);
  w.dbl("energy_pj", r.energy_pj);
  w.num("fast_bytes", r.fast_bytes);
  w.num("slow_bytes", r.slow_bytes);
  for (int side = 0; side < 2; ++side) {
    const char* pre = side == 0 ? "hm_cpu_" : "hm_gpu_";
    HybridStats hs = r.hmstats[side];
    for (int i = 0; i < 15; ++i)
      w.num((std::string(pre) + kHmFields[i]).c_str(), *hm_slot(hs, i));
  }
  w.dbl("fast_hit_rate_cpu", r.fast_hit_rate[0]);
  w.dbl("fast_hit_rate_gpu", r.fast_hit_rate[1]);
  w.dbl("llc_hit_rate_cpu", r.llc_hit_rate[0]);
  w.dbl("llc_hit_rate_gpu", r.llc_hit_rate[1]);
  w.dbl("remap_cache_hit_rate", r.remap_cache_hit_rate);
  w.dbl("slow_amplification", r.slow_amplification);
  w.dbl("read_latency_mean_cpu", r.read_latency_mean[0]);
  w.dbl("read_latency_mean_gpu", r.read_latency_mean[1]);
  w.num("read_latency_p99_cpu", r.read_latency_p99[0]);
  w.num("read_latency_p99_gpu", r.read_latency_p99[1]);
  w.num("final_cap", r.final_point.cap);
  w.num("final_bw", r.final_point.bw);
  w.num("final_tok", r.final_point.tok);
  w.num("reconfigurations", r.reconfigurations);
  w.num("epochs", r.epochs);
  w.num("engine_steps", r.engine_steps);
  return w.finish();
}

std::optional<JournalEntry> parse_entry(const std::string& line) {
  std::map<std::string, std::string> m;
  if (!parse_flat_object(line, m)) return std::nullopt;

  JournalEntry e;
  bool ok = true;
  u64 tmp = 0;
  ok = ok && take_str(m, "key", e.key) && !e.key.empty();
  ok = ok && take_str(m, "combo", e.combo);
  ok = ok && take_str(m, "design", e.design);
  ok = ok && take_u64(m, "seed", e.seed);
  ok = ok && take_str(m, "status", e.status);
  ok = ok && (e.status == "ok" || e.status == "failed" || e.status == "timeout");
  ok = ok && take_u64(m, "attempts", tmp);
  e.attempts = static_cast<u32>(tmp);
  ok = ok && take_str(m, "error", e.error);
  ok = ok && take_dbl(m, "wall_seconds", e.wall_seconds);

  ExperimentResult& r = e.result;
  ok = ok && take_u64(m, "cpu_cycles", r.cpu_cycles);
  ok = ok && take_u64(m, "gpu_cycles", r.gpu_cycles);
  ok = ok && take_u64(m, "end_cycle", r.end_cycle);
  ok = ok && take_bool(m, "cpu_finished", r.cpu_finished);
  ok = ok && take_bool(m, "gpu_finished", r.gpu_finished);
  ok = ok && take_u64(m, "cpu_instructions", r.cpu_instructions);
  ok = ok && take_u64(m, "gpu_instructions", r.gpu_instructions);
  ok = ok && take_dbl(m, "cpu_ipc", r.cpu_ipc);
  ok = ok && take_dbl(m, "gpu_ipc", r.gpu_ipc);
  ok = ok && take_dbl(m, "weighted_ipc", r.weighted_ipc);
  ok = ok && take_dbl(m, "energy_pj", r.energy_pj);
  ok = ok && take_u64(m, "fast_bytes", r.fast_bytes);
  ok = ok && take_u64(m, "slow_bytes", r.slow_bytes);
  for (int side = 0; side < 2; ++side) {
    const char* pre = side == 0 ? "hm_cpu_" : "hm_gpu_";
    for (int i = 0; i < 15; ++i)
      ok = ok && take_u64(m, (std::string(pre) + kHmFields[i]).c_str(),
                          *hm_slot(r.hmstats[side], i));
  }
  ok = ok && take_dbl(m, "fast_hit_rate_cpu", r.fast_hit_rate[0]);
  ok = ok && take_dbl(m, "fast_hit_rate_gpu", r.fast_hit_rate[1]);
  ok = ok && take_dbl(m, "llc_hit_rate_cpu", r.llc_hit_rate[0]);
  ok = ok && take_dbl(m, "llc_hit_rate_gpu", r.llc_hit_rate[1]);
  ok = ok && take_dbl(m, "remap_cache_hit_rate", r.remap_cache_hit_rate);
  ok = ok && take_dbl(m, "slow_amplification", r.slow_amplification);
  ok = ok && take_dbl(m, "read_latency_mean_cpu", r.read_latency_mean[0]);
  ok = ok && take_dbl(m, "read_latency_mean_gpu", r.read_latency_mean[1]);
  ok = ok && take_u64(m, "read_latency_p99_cpu", r.read_latency_p99[0]);
  ok = ok && take_u64(m, "read_latency_p99_gpu", r.read_latency_p99[1]);
  ok = ok && take_u64(m, "final_cap", tmp);
  r.final_point.cap = static_cast<u32>(tmp);
  ok = ok && take_u64(m, "final_bw", tmp);
  r.final_point.bw = static_cast<u32>(tmp);
  ok = ok && take_u64(m, "final_tok", tmp);
  r.final_point.tok = static_cast<u32>(tmp);
  ok = ok && take_u64(m, "reconfigurations", r.reconfigurations);
  ok = ok && take_u64(m, "epochs", r.epochs);
  ok = ok && take_u64(m, "engine_steps", r.engine_steps);
  if (!ok) return std::nullopt;

  r.combo = e.combo;
  r.design = e.design;
  return e;
}

std::map<std::string, JournalEntry> load_journal(const std::string& path) {
  std::map<std::string, JournalEntry> out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  std::string line;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, f) != nullptr) {
    line += buf;
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      if (auto e = parse_entry(line)) out[e->key] = std::move(*e);
      line.clear();
    }
  }
  // A trailing line without '\n' is a record cut short by a crash; parse it
  // anyway (it fails cleanly if truncated mid-object).
  if (!line.empty()) {
    if (auto e = parse_entry(line)) out[e->key] = std::move(*e);
  }
  std::fclose(f);
  return out;
}

Journal::Journal(const std::string& path, bool fsync_each_record)
    : path_(path), fsync_(fsync_each_record) {
  if (const char* env = std::getenv("H2_JOURNAL_FSYNC")) {
    if (env[0] != '\0' && std::strcmp(env, "0") != 0) fsync_ = true;
  }
  f_ = std::fopen(path.c_str(), "ab");
  H2_ASSERT(f_ != nullptr, "cannot open sweep journal '%s' for append",
            path.c_str());
}

Journal::~Journal() {
  if (f_ != nullptr) std::fclose(f_);
}

void Journal::append(const JournalEntry& e) {
  const std::string line = serialize_entry(e);
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), f_);
  std::fputc('\n', f_);
  std::fflush(f_);
  if (fsync_) {
    H2_ASSERT(ckpt::fsync_stream(f_),
              "fsync of sweep journal '%s' failed", path_.c_str());
  }
}

}  // namespace h2
