// ShardGroup: N hybrid-memory shards behind one facade, bit-reproducible at
// any worker-thread count.
//
// plan_slices() partitions the simulated machine deterministically: CPU cores
// and GPU clusters are routed to shards by two ShardRouters (rendezvous
// hashing with exact load headroom, so unit counts per shard differ by at
// most one), fast superchannels and slow channels are split contiguously, and
// each member SimSystem packs its cores' footprints into a private address
// space with a proportional LLC and hybrid-memory capacity slice. Cores keep
// their *global* identities — workload pick, RNG seed, engine stagger — so
// the union of the members' access streams partitions exactly the workload
// set the monolithic system would run.
//
// Between epoch boundaries the members are completely independent discrete
// event simulations; the group runs them on up to `shard_threads` worker
// threads. At each boundary every member pauses with a local EpochFeedback
// snapshot (SimSystem member protocol); the group then, single-threaded and
// in shard order:
//   1. merges the snapshots into one global EpochFeedback (sums of the
//      per-shard deltas; the weighted-IPC objective recomputed from the
//      summed instruction counts),
//   2. visits the group-level fault sites (throw/stall/kill — exactly the
//      sites FaultSiteObserver owns in the monolithic system),
//   3. broadcasts the merged snapshot to every member's observers (policy
//      adaptation, scripted schedule, audits) via apply_epoch(),
//   4. appends the group timeline row and, on the checkpoint cadence,
//      snapshots the whole group into one container.
// Thread assignment only decides *when* a member reaches its barrier, never
// what it computes or observes: merge order, observer order and all policy
// inputs are functions of shard index alone. Hence the contract gated by
// tests/test_shard_group.cpp — results are bit-identical for every
// --shard-threads value, including 1.
#pragma once

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/ckpt_fwd.h"
#include "harness/sim_system.h"

namespace h2 {

class ShardGroup {
 public:
  using Phase = SimSystem::Phase;

  explicit ShardGroup(const ExperimentConfig& cfg);
  ~ShardGroup();
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  /// The deterministic machine partition for `cfg` (cfg.shards slices).
  /// Exposed so tests can pin the unit-balance and channel-split properties
  /// without building the systems.
  static std::vector<ShardSlice> plan_slices(const ExperimentConfig& cfg);

  /// Builds every member (cfg.shards >= 2; one shard is just a SimSystem).
  void build();

  /// The monolithic lifecycle, group-sequenced: warmup() runs `epochs`
  /// group boundaries with adaptation live, then resets every member's
  /// measurement counters and opens the window; measure() runs it to
  /// completion; drain() merges the members' results into the one
  /// ExperimentResult run_experiment reports.
  void warmup(u32 epochs);
  void measure();
  ExperimentResult drain();

  // --- checkpoint/restore (harness/checkpoint.h group overloads) ----------

  /// Serializes the group cursors plus every member (sections "s<i>/...")
  /// into one container. Taken at a group boundary with all engines paused.
  void save(ckpt::CkptWriter& w) const;
  /// Restores a save() into a freshly build()-ed group; follow with resume().
  void load(ckpt::CkptReader& r);
  /// Continues an interrupted run after load(), finishing the paused phase.
  void resume();

  const ExperimentConfig& config() const { return cfg_; }
  Phase phase() const { return phase_; }
  u32 num_shards() const { return static_cast<u32>(members_.size()); }
  SimSystem& member(u32 i) { return *members_[i]; }
  u64 total_epochs() const { return total_epochs_; }
  u64 epochs_this_phase() const { return epochs_this_phase_; }
  /// Engine cycle of the group (member engines agree at every barrier).
  Cycle now() const;

 private:
  void begin_measure();
  void run_phase();
  void end_phase();
  bool phase_done() const;
  /// Runs every member to its next epoch boundary, on up to
  /// cfg.shard_threads workers. Returns true when *all* members paused at
  /// the boundary; false when any ran past the horizon or out of events.
  bool run_members_to_boundary();
  EpochFeedback merge_feedback() const;
  void write_timeline_row(const EpochFeedback& fb);
  void emit_timeline(const char* text);
  void do_checkpoint();

  ExperimentConfig cfg_;
  Phase phase_ = Phase::Unbuilt;
  bool measured_ = false;
  std::vector<std::unique_ptr<SimSystem>> members_;

  u32 warmup_target_ = 0;
  u64 epochs_this_phase_ = 0;
  u64 total_epochs_ = 0;
  Cycle measure_start_ = 0;
  Cycle end_cycle_ = 0;

  // Group timeline (one row per *group* boundary; members write none). The
  // byte history rides in the checkpoint so a restored run rewrites the file
  // byte-identically, mirroring the monolithic TimelineObserver.
  std::string timeline_history_;
  std::ofstream timeline_out_;
};

}  // namespace h2
