// The parallel sweep runner: fans a batch of experiments out across a pool
// of worker threads and returns the results in submission order. Every
// figure/table of the paper's evaluation is such a sweep over (workload
// combo, design) pairs, and each run_experiment call is independent, so the
// whole evaluation parallelises embarrassingly.
//
// Reproducibility contract (the Ramulator 2.0 re-evaluation lesson: parallel
// reruns are only trustworthy when they are bit-reproducible):
//   - each run's RNG seed is derived from the config alone
//     (seed = base_seed ^ hash(combo, design label)), never from worker
//     identity or completion order, so results are independent of scheduling;
//   - results come back indexed by submission order, not completion order;
//   - a failed run is captured per-slot and does not abort the sweep.
//
// Crash-safety contract (this layer's robustness half):
//   - with a journal_path, every completed slot is appended to a JSONL
//     journal (harness/journal.h) as it finishes, flushed immediately;
//   - with resume, journaled ok slots are restored instead of re-run, and
//     the restored results are bit-identical to a fresh run's (the journal
//     round-trips doubles exactly);
//   - with run_timeout_seconds, a watchdog thread cancels overlong runs via
//     cooperative polling in the engine loop (common/cancel.h);
//   - transient failures (timeouts, fault::TransientError) are retried up to
//     max_retries times with doubling backoff; permanent failures are not.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace h2 {

struct SweepOptions {
  /// Worker threads. 0 = take H2_JOBS from the environment, falling back to
  /// std::thread::hardware_concurrency().
  u32 jobs = 0;
  bool verbose = false;      ///< per-run progress markers on stderr
  /// Derive each run's seed as cfg.seed ^ hash(combo, design label). Off,
  /// configs run with exactly the seed they carry (tools/h2sim honours
  /// explicit sim.seed values this way).
  bool derive_seeds = true;

  /// Per-run wall-clock budget. 0 = no watchdog. A run that exceeds it is
  /// cancelled at the next engine poll, classified TimedOut (transient) and
  /// retried per the policy below.
  double run_timeout_seconds = 0.0;
  /// Extra attempts after a *transient* failure (timeout or
  /// fault::TransientError). Permanent failures never retry.
  u32 max_retries = 0;
  /// Sleep before the first retry; doubles on each further retry.
  u32 retry_backoff_ms = 100;

  /// Fault spec (check/fault.h grammar) armed around every run; "" falls
  /// back to the H2_FAULT environment variable, and if that is empty too no
  /// fault is armed. One Injector per slot, persisting across that slot's
  /// retries, so e.g. throw-transient:count=1 fails once and then succeeds.
  std::string fault_spec;

  /// Append-only JSONL journal written as runs complete ("" = none).
  std::string journal_path;
  /// Restore status=ok journal entries instead of re-running them (requires
  /// journal_path). Failed/timed-out entries are re-run.
  bool resume = false;
  /// fsync the journal after every appended record (harness/journal.h). Off,
  /// records survive a process crash but not a power loss.
  bool journal_fsync = false;

  /// Directory for per-run epoch-boundary checkpoints ("" = none). Each slot
  /// writes <dir>/<config_key>.ckpt, keyed exactly like its journal entry,
  /// so a checkpoint can never feed a slot with a different effective config.
  std::string checkpoint_dir;
  /// Snapshot every Nth epoch boundary (harness/checkpoint.h).
  u32 checkpoint_every = 1;
  /// Restore slots whose checkpoint file exists (with a readable header)
  /// instead of starting them from scratch. Unlike journal --resume, which
  /// skips *finished* runs, this resumes *interrupted* ones mid-flight.
  bool restore_checkpoints = false;
};

/// Terminal classification of one sweep slot.
enum class RunStatus : u8 {
  Ok,        ///< result is valid
  Failed,    ///< the run threw; error holds the description
  TimedOut,  ///< cancelled by the watchdog on its final attempt
};

const char* to_string(RunStatus s);

/// One slot of a sweep, in submission order.
struct SweepRun {
  std::string combo;          ///< labels copied from the config (valid even on failure)
  std::string design;
  u64 seed = 0;               ///< the seed the run actually used
  bool ok = false;            ///< == (status == RunStatus::Ok)
  RunStatus status = RunStatus::Failed;
  std::string error;          ///< failure description when !ok
  u32 attempts = 0;           ///< attempts consumed (>1 = retried)
  bool from_journal = false;  ///< restored by --resume, not re-run
  double wall_seconds = 0.0;  ///< per-run wall time on its worker
  ExperimentResult result;    ///< meaningful only when ok
};

/// FNV-1a 64-bit hash of a string; the seed-derivation building block.
u64 hash_str(const std::string& s);

/// Scheduling-independent per-run seed: base ^ hash(combo, design label).
u64 derive_seed(u64 base_seed, const std::string& combo,
                const std::string& design_label);

/// Resolves a worker count: an explicit request wins, else the H2_JOBS
/// environment variable, else hardware_concurrency(). Always >= 1.
u32 resolve_jobs(u32 requested);

/// The function a sweep applies to each config; injectable so tests can
/// exercise failure capture, timeouts, retries and resume without real
/// simulations.
using ExperimentRunner = std::function<ExperimentResult(const ExperimentConfig&)>;

/// Runs every config through `runner` (default: run_experiment) on a pool of
/// resolve_jobs(opts.jobs) threads. Exceptions thrown by a run are captured
/// in its slot; the sweep always returns configs.size() entries. Throws
/// std::invalid_argument up front on a malformed opts.fault_spec / H2_FAULT.
std::vector<SweepRun> run_sweep(const std::vector<ExperimentConfig>& configs,
                                const SweepOptions& opts = {},
                                const ExperimentRunner& runner = {});

}  // namespace h2
