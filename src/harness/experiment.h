// The experiment harness: builds a complete system (cores + caches + hybrid
// memory + DRAM) for one (workload combo, design) pair, runs it to
// completion, and reports the metrics the paper's figures are built from.
// This mirrors the artifact's T2 (simulate) + T3 (extract) stages.
#pragma once

#include <string>
#include <vector>

#include "hybridmem/hybrid_memory.h"
#include "hydrogen/hydrogen_policy.h"
#include "policies/integrated.h"
#include "sysconfig/system_config.h"
#include "trace/workloads.h"

namespace h2 {

/// A named design under evaluation (one bar group of Fig. 5).
struct DesignSpec {
  std::string label = "baseline";
  enum class Kind : u8 {
    Baseline,
    WayPart,
    HAShCache,
    Profess,
    Hydrogen,
    SetPart,
    Integrated,
  } kind = Kind::Baseline;
  HydrogenConfig hydrogen;  ///< used when kind == Hydrogen (and, via
                            ///< make_policy, the SetPart knob source)
  /// Knobs for the coherent-NUMA `integrated` design (kind == Integrated).
  /// SimSystem forces HybridMode::Flat for this design regardless of the
  /// experiment's configured mode.
  IntegratedConfig integrated_cfg;
  /// WayPart's own knob: the fraction of LLC-side fast-memory ways reserved
  /// for the CPU. Previously piggybacked on hydrogen.fixed_cpu_capacity_frac.
  double cpu_way_fraction = 0.75;
  bool ideal_swap = false;        ///< Fig. 7(a) Ideal
  bool instant_reconfig = false;  ///< Fig. 7(b) ideal reconfiguration
  /// HAShCache's native organisation is direct-mapped + chaining; Fig. 11
  /// scales it to other associativities with chaining disabled and extra tag
  /// latency, which this flag selects.
  bool hashcache_native_geometry = true;

  static DesignSpec baseline();
  static DesignSpec waypart(double cpu_way_fraction = 0.75);
  static DesignSpec hashcache();
  static DesignSpec profess();
  /// Hydrogen variants of Fig. 5: DP only, DP+Token, and the full design.
  static DesignSpec hydrogen_dp();
  static DesignSpec hydrogen_dp_token();
  static DesignSpec hydrogen_full();
  /// The decoupled set-partitioning alternative of Section IV-F.
  static DesignSpec hydrogen_setpart();
  /// Coherent-NUMA integrated memory (Grace-Hopper mode): flat address
  /// space, first-touch placement, counter-threshold migration.
  static DesignSpec integrated();
};

struct ExperimentConfig {
  std::string combo = "C1";
  DesignSpec design = DesignSpec::hydrogen_full();
  SystemConfig sys = SystemConfig::table1();
  HybridMode mode = HybridMode::Cache;

  u32 assoc = 4;
  u64 block_bytes = 256;
  double fast_capacity_frac = 0.125;  ///< fast = frac * slow (paper: 1/8)
  u64 fast_capacity_override = 0;     ///< explicit fast capacity (0 = derive)
  u32 fast_channels = 0;              ///< physical channels; 0 = Table I default
  u32 slow_channels = 0;

  u64 cpu_target_instructions = 2'000'000;  ///< per CPU core
  u64 gpu_target_instructions = 1'500'000;  ///< per GPU cluster
  double weight_cpu = 12.0;  ///< IPC weights (paper default 12:1)
  double weight_gpu = 1.0;

  Cycle epoch_cycles = 250'000;  ///< sampling epoch (paper: 10 M, scaled)
  Cycle phase_cycles = 0;        ///< exploration phase restart (0 = off)
  Cycle max_cycles = 300'000'000;

  /// Epochs to simulate — with adaptation, audits and fault sites live —
  /// before the measurement window opens. At the warmup -> measure boundary
  /// every stats-bearing layer is zeroed (SimSystem::reset_measurement)
  /// while architectural state (residency, remap tables, row buffers,
  /// in-flight requests, policy adaptation) is preserved, so recorded
  /// numbers reflect steady-state behaviour. 0 = measure from cold (the
  /// historical default; bit-identical to the pre-lifecycle harness).
  u32 warmup_epochs = 0;
  /// If non-empty, a per-epoch time-series CSV (one row per epoch boundary,
  /// warmup and measure phases tagged) is written here — the `--timeline`
  /// flag of h2sim and the benches. See harness/sim_system.h.
  std::string timeline_path;
  /// If non-empty, a scripted reconfiguration schedule in the
  /// check/epoch_schedule.h grammar (e.g. "shrink,bw+,grow,bw-"): epoch
  /// boundary i applies op i mod len to the partition policy, after the
  /// policy's own on_epoch adaptation. Part of config_key — two runs that
  /// differ only in schedule never share journal entries.
  std::string reconfig_schedule;

  /// Per-channel timing backend (mem.backend = fast|ddr, --backend flag).
  /// `fast` is the analytic cursor model the paper numbers were recorded
  /// with; `ddr` enables the command-legality model (mem/ddr_backend.h).
  ChannelBackendKind backend = ChannelBackendKind::Fast;
  /// DDR-backend scheduler knobs + timing overrides ([ddr] config section).
  DdrParams ddr;

  bool cpu_only = false;  ///< Fig. 2(a) "running alone" runs
  bool gpu_only = false;
  /// Solo runs skip constructing the idle side's synthetic generators while
  /// keeping the address map identical. This test-only escape hatch restores
  /// the historical construct-everything behaviour so the bit-identity of
  /// the two paths can be asserted.
  bool build_idle_generators = false;
  u64 seed = 42;

  /// Number of address-space shards (sim.shards, --shards). 1 = the
  /// monolithic single-engine system, byte-identical to the pre-sharding
  /// harness. N > 1 partitions cores, channels and hybrid-memory capacity
  /// across N member systems behind a ShardGroup facade
  /// (harness/shard_group.h), coupled only at epoch boundaries. Part of
  /// config_key — the partition changes every simulated address.
  u32 shards = 1;
  /// Worker threads driving the shards between barriers (--shard-threads).
  /// 0 = one thread per shard. NOT part of config_key: like the checkpoint
  /// fields, the thread count is an execution detail — results are
  /// bit-identical for every value, which tests/test_shard_group.cpp gates.
  u32 shard_threads = 0;

  /// If non-empty, cores replay recorded traces from
  /// `<trace_dir>/<workload>.trace` (written by tools/h2trace) instead of
  /// running the synthetic generators — the artifact's T1 -> T2 pipeline.
  std::string trace_dir;

  // --- checkpoint/restore (harness/checkpoint.h) -------------------------
  // None of these fields participates in config_key(): a checkpointed run
  // and an uninterrupted one are the same experiment (checkpoint writes are
  // pure reads at a paused engine), and a restore must land in the same
  // journal slot as the run it resumes.

  /// If non-empty, write a full-state checkpoint here at every
  /// checkpoint_every-th epoch boundary (atomic tmp + rename; the previous
  /// file is only ever replaced by a complete new one).
  std::string checkpoint_path;
  u32 checkpoint_every = 1;
  /// If non-empty, load simulator state from this checkpoint after build()
  /// and continue — refusing mismatched config_key headers — instead of
  /// starting from cycle 0.
  std::string restore_path;
};

struct ExperimentResult {
  std::string combo;
  std::string design;
  Cycle cpu_cycles = 0;  ///< cycle at which the CPU side reached its target
  Cycle gpu_cycles = 0;
  Cycle end_cycle = 0;
  bool cpu_finished = false;
  bool gpu_finished = false;
  u64 cpu_instructions = 0;
  u64 gpu_instructions = 0;
  double cpu_ipc = 0.0;
  double gpu_ipc = 0.0;
  double weighted_ipc = 0.0;
  double energy_pj = 0.0;
  u64 fast_bytes = 0;
  u64 slow_bytes = 0;
  HybridStats hmstats[2];
  double fast_hit_rate[2] = {0.0, 0.0};
  double llc_hit_rate[2] = {0.0, 0.0};
  double remap_cache_hit_rate = 0.0;
  double slow_amplification = 0.0;  ///< slow-tier bytes per demand byte
  double read_latency_mean[2] = {0.0, 0.0};  ///< per side, cycles
  u64 read_latency_p99[2] = {0, 0};
  ParamPoint final_point;           ///< Hydrogen only
  u64 reconfigurations = 0;
  u64 epochs = 0;
  /// Total DES events executed by the engine over the experiment's lifetime
  /// (warmup included — the engine's step counter never resets). A pure
  /// function of the config, so perfbench uses it as the deterministic
  /// "events" counter that optimisations must not change.
  u64 engine_steps = 0;
};

/// Builds and runs one experiment. Deterministic for a given config.
ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// Weighted speedup of `x` over `base` (paper T3: per-side cycle ratios,
/// combined with normalised weights).
double weighted_speedup(const ExperimentResult& base, const ExperimentResult& x,
                        double weight_cpu = 12.0, double weight_gpu = 1.0);

/// Per-side slowdown of a shared run vs. a solo run (Fig. 2(a)).
double side_slowdown(const ExperimentResult& solo, const ExperimentResult& shared,
                     Requestor side);

}  // namespace h2
