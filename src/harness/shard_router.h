// ShardRouter: deterministic, balanced partition of an address space (or any
// indexed region set) across N shards, built on the same rendezvous hashing
// as Hydrogen's way/channel selection (hydrogen/consistent_hash.h).
//
// Each region ranks the shards by HRW score; the assignment pass walks the
// regions in index order and gives each to its highest-preference shard that
// still has headroom. Headroom is exact: with R regions and N shards every
// shard ends with floor(R/N) or floor(R/N)+1 regions, so the max/min load
// ratio is bounded by 2.0 whenever R >= N — the bound the routing property
// test pins. Because preference comes from per-region HRW rank rows, the
// assignment inherits HRW's consistency (it is a pure function of
// (salt, R, N)) and the rank rows are served by the memoised HrwRankTable,
// so reconfigure bursts do not re-hash per lookup; invalidate() drops the
// cached rows and the next lookup rebuilds assignment lazily.
//
// Two consumers:
//   - ShardGroup routes *unit* regions (one region per CPU core / GPU
//     cluster) to pick which member simulates which core;
//   - the differential oracle and tests route page-granular address regions
//     via bind_span() + shard_of_addr() to split a recorded access stream.
#pragma once

#include <vector>

#include "common/types.h"
#include "hydrogen/consistent_hash.h"

namespace h2 {

class ShardRouter {
 public:
  /// Page granularity of address routing (bind_span rounds regions up to it).
  static constexpr u64 kPageBytes = 4096;

  /// Partitions `num_regions` regions across `num_shards` shards.
  ShardRouter(u32 num_shards, u32 num_regions, u64 salt = 0x53485244ull);

  u32 num_shards() const { return num_shards_; }
  u32 num_regions() const { return num_regions_; }

  /// The shard owning `region` (assignment built lazily after invalidate()).
  u32 shard_of_region(u32 region) const;

  /// Binds an address span: the span is cut into num_regions page-aligned
  /// regions of equal size (the last one absorbs the page-rounding tail).
  /// Required before shard_of_addr()/shard_of_page().
  void bind_span(u64 span_bytes);
  u64 region_bytes() const { return region_bytes_; }

  /// The shard owning the page/address (bind_span() must have been called).
  u32 shard_of_page(u64 page) const;
  u32 shard_of_addr(Addr addr) const { return shard_of_page(addr / kPageBytes); }

  /// Regions per shard under the current assignment.
  std::vector<u32> region_loads() const;

  /// Drops the cached HRW rank rows and the assignment; both rebuild lazily
  /// on the next lookup. The hook the sharded reconfigure paths call instead
  /// of reconstructing the router (satellite fix: rank tables used to be
  /// rebuilt per lookup burst).
  void invalidate();

 private:
  void ensure_assigned() const;

  u32 num_shards_;
  u32 num_regions_;
  u64 region_bytes_ = 0;  ///< 0 until bind_span()
  HrwRankTable ranks_;    ///< per-region shard rank rows, memoised
  mutable std::vector<u32> region_shard_;  ///< empty until first lookup
};

}  // namespace h2
