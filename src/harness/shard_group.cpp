#include "harness/shard_group.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "check/fault.h"
#include "common/assert.h"
#include "common/cancel.h"
#include "common/ckpt_io.h"
#include "common/rng.h"
#include "harness/checkpoint.h"
#include "harness/shard_router.h"

namespace h2 {

namespace {

constexpr const char* kTimelineHeader =
    "epoch,phase,cycle,cpu_instructions,gpu_instructions,weighted_ipc,"
    "cpu_misses,gpu_misses,gpu_migrations,slow_backlog,"
    "reconfigurations,cap,bw,tok\n";

void add_stats(HybridStats& into, const HybridStats& from) {
  into.demand += from.demand;
  into.fast_hits += from.fast_hits;
  into.chain_hits += from.chain_hits;
  into.misses += from.misses;
  into.migrations += from.migrations;
  into.bypasses += from.bypasses;
  into.first_touches += from.first_touches;
  into.dirty_writebacks += from.dirty_writebacks;
  into.fast_swaps += from.fast_swaps;
  into.lazy_invalidations += from.lazy_invalidations;
  into.lazy_moves += from.lazy_moves;
  into.flush_invalidations += from.flush_invalidations;
  into.llc_writebacks += from.llc_writebacks;
  into.meta_misses += from.meta_misses;
  into.meta_wait_cycles += from.meta_wait_cycles;
  into.subfills += from.subfills;
}

}  // namespace

ShardGroup::ShardGroup(const ExperimentConfig& cfg) : cfg_(cfg) {}

ShardGroup::~ShardGroup() = default;

std::vector<ShardSlice> ShardGroup::plan_slices(const ExperimentConfig& cfg) {
  const u32 n = cfg.shards;
  H2_ASSERT(n >= 1, "plan_slices() needs at least one shard");
  const u32 n_cpu = cfg.sys.cpu_cores;
  const u32 n_gpu = cfg.sys.gpu_clusters();
  const u32 fast_ch = cfg.fast_channels ? cfg.fast_channels : cfg.sys.mem.fast_channels;
  const u32 slow_ch = cfg.slow_channels ? cfg.slow_channels : cfg.sys.mem.slow_channels;
  const u32 group = cfg.sys.mem.fast_group;
  H2_ASSERT(group > 0 && fast_ch % group == 0,
            "fast channels (%u) must be whole superchannels of %u", fast_ch, group);
  const u32 supers = fast_ch / group;
  // Every shard needs at least one active core per simulated side and one
  // channel per tier; configs that shard finer than the machine are rejected
  // up front rather than producing degenerate members.
  if (!cfg.gpu_only) {
    H2_ASSERT(n_cpu >= n, "sim.shards=%u exceeds the %u CPU cores", n, n_cpu);
  }
  if (!cfg.cpu_only) {
    H2_ASSERT(n_gpu >= n, "sim.shards=%u exceeds the %u GPU clusters", n, n_gpu);
  }
  H2_ASSERT(supers >= n, "sim.shards=%u exceeds the %u fast superchannels", n, supers);
  H2_ASSERT(slow_ch >= n, "sim.shards=%u exceeds the %u slow channels", n, slow_ch);

  std::vector<ShardSlice> slices(n);
  for (u32 i = 0; i < n; ++i) {
    slices[i].shard = i;
    slices[i].num_shards = n;
  }
  // Rendezvous-routed unit assignment: per-shard core counts differ by at
  // most one, and the mapping is a pure function of (seed, machine, N) —
  // resharding moves units consistently instead of reshuffling everything.
  ShardRouter cpu_router(n, n_cpu, mix_hash(cfg.seed, 0x53435055ull));  // "SCPU"
  for (u32 g = 0; g < n_cpu; ++g) {
    slices[cpu_router.shard_of_region(g)].cpu_cores.push_back(g);
  }
  ShardRouter gpu_router(n, n_gpu, mix_hash(cfg.seed, 0x53475055ull));  // "SGPU"
  for (u32 g = 0; g < n_gpu; ++g) {
    slices[gpu_router.shard_of_region(g)].gpu_clusters.push_back(g);
  }
  // Channels split contiguously in whole fast superchannels (interleaving
  // happens inside a member's MemorySystem, never across members).
  for (u32 i = 0; i < n; ++i) {
    slices[i].fast_channels = (supers / n + (i < supers % n ? 1 : 0)) * group;
    slices[i].slow_channels = slow_ch / n + (i < slow_ch % n ? 1 : 0);
  }
  return slices;
}

void ShardGroup::build() {
  H2_ASSERT(phase_ == Phase::Unbuilt, "build() must be called exactly once");
  H2_ASSERT(cfg_.shards >= 2,
            "ShardGroup needs sim.shards >= 2 (one shard is just a SimSystem)");
  const std::vector<ShardSlice> slices = plan_slices(cfg_);
  members_.reserve(slices.size());
  for (const ShardSlice& slice : slices) {
    members_.push_back(std::make_unique<SimSystem>(cfg_));
    members_.back()->build(slice);
  }
  if (!cfg_.timeline_path.empty()) {
    timeline_out_.open(cfg_.timeline_path, std::ios::trunc);
    if (!timeline_out_.is_open()) {
      throw std::runtime_error("cannot open timeline CSV '" + cfg_.timeline_path + "'");
    }
    emit_timeline(kTimelineHeader);
  }
  phase_ = Phase::Built;
}

Cycle ShardGroup::now() const { return members_[0]->engine().now(); }

bool ShardGroup::phase_done() const {
  if (phase_ == Phase::Warmup) return epochs_this_phase_ >= warmup_target_;
  for (const auto& m : members_) {
    if (!m->all_cores_finished()) return false;
  }
  return true;
}

bool ShardGroup::run_members_to_boundary() {
  const u32 n = num_shards();
  const u32 threads = cfg_.shard_threads == 0 ? n : std::min(cfg_.shard_threads, n);
  std::vector<u8> at_boundary(n, 0);
  std::vector<std::exception_ptr> errors(n);
  auto run_one = [&](u32 i) {
    try {
      at_boundary[i] = members_[i]->run_to_boundary() ? 1 : 0;
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };
  if (threads <= 1) {
    for (u32 i = 0; i < n; ++i) run_one(i);
  } else {
    std::atomic<u32> next{0};
    cancel::Token* token = cancel::current();
    auto worker = [&] {
      // Re-arm the coordinator's cancellation token so the sweep watchdog
      // can cut member engines short. Fault injectors stay deliberately
      // unarmed here: every fault site is group-level or coordinator-driven,
      // so firing order never depends on thread scheduling.
      std::optional<cancel::Scope> scope;
      if (token != nullptr) scope.emplace(*token);
      for (;;) {
        const u32 i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        run_one(i);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (u32 t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  // Rethrow the lowest shard's failure — a deterministic pick when several
  // members fail in the same round, whatever the thread interleaving was.
  for (u32 i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
  for (const u8 b : at_boundary) {
    if (!b) return false;
  }
  return true;
}

EpochFeedback ShardGroup::merge_feedback() const {
  EpochFeedback merged;
  merged.now = members_[0]->pending_feedback().now;
  merged.epoch_cycles = cfg_.epoch_cycles;
  for (const auto& m : members_) {
    const EpochFeedback& fb = m->pending_feedback();
    H2_ASSERT(fb.now == merged.now,
              "shard barrier skew: boundary at cycle %llu vs %llu",
              static_cast<unsigned long long>(fb.now),
              static_cast<unsigned long long>(merged.now));
    merged.cpu_instructions += fb.cpu_instructions;
    merged.gpu_instructions += fb.gpu_instructions;
    merged.cpu_misses += fb.cpu_misses;
    merged.gpu_misses += fb.gpu_misses;
    merged.gpu_migrations += fb.gpu_migrations;
    merged.slow_backlog += fb.slow_backlog;
  }
  merged.weighted_ipc =
      (cfg_.weight_cpu * static_cast<double>(merged.cpu_instructions) +
       cfg_.weight_gpu * static_cast<double>(merged.gpu_instructions)) /
      static_cast<double>(cfg_.epoch_cycles);
  return merged;
}

void ShardGroup::run_phase() {
  // One group round per epoch: run all members to the barrier, merge their
  // local snapshots, and apply the merged global view in shard order. The
  // ordering below mirrors the monolithic observer list exactly — fault
  // sites first, then policy/schedule/audits (inside apply_epoch), then the
  // timeline row, then the checkpoint — so a sharded boundary has the same
  // externally visible side-effect sequence as a monolithic one. As in the
  // monolithic run loop, the checkpoint is written *before* the termination
  // test so a snapshot at the final boundary still lands on disk.
  for (;;) {
    if (phase_done()) {
      end_phase();
      return;
    }
    if (!run_members_to_boundary()) {
      // Horizon reached or a workload ran dry inside some member: the phase
      // ends without a group boundary.
      end_phase();
      return;
    }
    epochs_this_phase_++;
    total_epochs_++;
    const EpochFeedback merged = merge_feedback();
    if (fault::at(fault::Kind::Throw)) fault::throw_synthetic(false);
    if (fault::at(fault::Kind::ThrowTransient)) fault::throw_synthetic(true);
    if (fault::at(fault::Kind::Stall)) fault::stall();
    if (fault::at(fault::Kind::KillAtEpoch)) fault::kill_process();
    for (auto& m : members_) m->apply_epoch(merged);
    if (timeline_out_.is_open()) write_timeline_row(merged);
    if (!cfg_.checkpoint_path.empty()) {
      const u32 every = cfg_.checkpoint_every == 0 ? 1 : cfg_.checkpoint_every;
      if (total_epochs_ % every == 0) do_checkpoint();
    }
  }
}

void ShardGroup::end_phase() {
  end_cycle_ = 0;
  for (auto& m : members_) {
    m->member_end_phase();
    end_cycle_ = std::max(end_cycle_, m->engine().now());
  }
}

void ShardGroup::begin_measure() {
  phase_ = Phase::Measure;
  epochs_this_phase_ = 0;
  for (auto& m : members_) m->member_begin_measure();
  measure_start_ = now();
}

void ShardGroup::warmup(u32 epochs) {
  H2_ASSERT(phase_ == Phase::Built, "warmup() must directly follow build()");
  if (epochs > 0) {
    phase_ = Phase::Warmup;
    warmup_target_ = epochs;
    epochs_this_phase_ = 0;
    for (auto& m : members_) m->member_begin_warmup(epochs);
    run_phase();
  }
  begin_measure();
}

void ShardGroup::measure() {
  H2_ASSERT(phase_ == Phase::Measure && !measured_,
            "measure() must follow warmup() — call warmup(0) for a cold start");
  measured_ = true;
  run_phase();
}

void ShardGroup::resume() {
  H2_ASSERT(phase_ == Phase::Warmup || phase_ == Phase::Measure,
            "resume() requires a load()ed checkpoint (phase warmup or measure)");
  if (phase_ == Phase::Warmup) {
    run_phase();
    begin_measure();
  }
  measured_ = true;
  run_phase();
}

ExperimentResult ShardGroup::drain() {
  H2_ASSERT(phase_ == Phase::Measure && measured_, "drain() must follow measure()");
  phase_ = Phase::Drained;

  std::vector<ExperimentResult> parts;
  parts.reserve(members_.size());
  for (auto& m : members_) parts.push_back(m->drain());
  if (timeline_out_.is_open()) timeline_out_.flush();

  // Merge the per-member results the way the quantities compose physically:
  // extensive counters (instructions, energy, tier traffic, hybrid stats,
  // engine steps) sum; cycle counts take the max over members (the group
  // finishes when its slowest shard does); rates are recomputed from the
  // merged raw counters rather than averaged — a mean of per-shard rates
  // would weight shards equally regardless of traffic.
  ExperimentResult res;
  res.combo = cfg_.combo;
  res.design = parts[0].design;
  res.epochs = epochs_this_phase_;
  res.cpu_finished = true;
  res.gpu_finished = true;
  for (const ExperimentResult& p : parts) {
    res.end_cycle = std::max(res.end_cycle, p.end_cycle);
    res.cpu_cycles = std::max(res.cpu_cycles, p.cpu_cycles);
    res.gpu_cycles = std::max(res.gpu_cycles, p.gpu_cycles);
    res.cpu_finished = res.cpu_finished && p.cpu_finished;
    res.gpu_finished = res.gpu_finished && p.gpu_finished;
    res.cpu_instructions += p.cpu_instructions;
    res.gpu_instructions += p.gpu_instructions;
    res.energy_pj += p.energy_pj;
    res.fast_bytes += p.fast_bytes;
    res.slow_bytes += p.slow_bytes;
    res.engine_steps += p.engine_steps;
    for (u32 s = 0; s < 2; ++s) add_stats(res.hmstats[s], p.hmstats[s]);
  }
  if (res.cpu_cycles > 0) {
    res.cpu_ipc = static_cast<double>(res.cpu_instructions) /
                  static_cast<double>(res.cpu_cycles);
  }
  if (res.gpu_cycles > 0) {
    res.gpu_ipc = static_cast<double>(res.gpu_instructions) /
                  static_cast<double>(res.gpu_cycles);
  }
  res.weighted_ipc = cfg_.weight_cpu * res.cpu_ipc + cfg_.weight_gpu * res.gpu_ipc;
  for (u32 s = 0; s < 2; ++s) {
    res.fast_hit_rate[s] =
        res.hmstats[s].demand
            ? static_cast<double>(res.hmstats[s].fast_hits) /
                  static_cast<double>(res.hmstats[s].demand)
            : 0.0;
  }
  {
    u64 hits[2] = {0, 0}, accesses[2] = {0, 0};
    u64 rc_hits = 0, rc_misses = 0;
    for (auto& m : members_) {
      for (u32 s = 0; s < 2; ++s) {
        const Requestor r = static_cast<Requestor>(s);
        hits[s] += m->hierarchy().llc_hits(r);
        accesses[s] += m->hierarchy().llc_accesses(r);
      }
      rc_hits += m->hybrid().remap_cache().hits();
      rc_misses += m->hybrid().remap_cache().misses();
    }
    for (u32 s = 0; s < 2; ++s) {
      res.llc_hit_rate[s] =
          accesses[s] ? static_cast<double>(hits[s]) / static_cast<double>(accesses[s])
                      : 0.0;
    }
    res.remap_cache_hit_rate =
        rc_hits + rc_misses
            ? static_cast<double>(rc_hits) / static_cast<double>(rc_hits + rc_misses)
            : 0.0;
  }
  {
    u64 n[2] = {0, 0}, sum[2] = {0, 0}, p99[2] = {0, 0};
    for (auto& m : members_) {
      for (const auto& c : m->cores()) {
        const u32 i = static_cast<u32>(c->cls());
        n[i] += c->read_latency().count();
        sum[i] += c->read_latency().total();
        p99[i] = std::max(p99[i], c->read_latency().percentile(99));
      }
    }
    for (u32 i = 0; i < 2; ++i) {
      res.read_latency_mean[i] = n[i] ? static_cast<double>(sum[i]) / n[i] : 0.0;
      res.read_latency_p99[i] = p99[i];
    }
  }
  const u64 demand = res.hmstats[0].demand + res.hmstats[1].demand;
  if (demand > 0) {
    res.slow_amplification =
        static_cast<double>(res.slow_bytes) / (static_cast<double>(demand) * 64.0);
  }
  // Every member feeds the identical merged snapshot to an identical policy
  // replica, so the replicas cannot diverge — a cheap tripwire for the whole
  // determinism argument. Report shard 0's adaptation state.
  for (const ExperimentResult& p : parts) {
    H2_ASSERT(p.reconfigurations == parts[0].reconfigurations,
              "policy replicas diverged (%llu vs %llu reconfigurations)",
              static_cast<unsigned long long>(p.reconfigurations),
              static_cast<unsigned long long>(parts[0].reconfigurations));
  }
  res.final_point = parts[0].final_point;
  res.reconfigurations = parts[0].reconfigurations;
  return res;
}

void ShardGroup::write_timeline_row(const EpochFeedback& fb) {
  u64 reconfigurations = 0, cap = 0, bw = 0, tok = 0;
  if (members_[0]->design().kind == DesignSpec::Kind::Hydrogen) {
    const auto& hp = static_cast<const HydrogenPolicy&>(members_[0]->policy());
    reconfigurations = hp.reconfigurations();
    const ParamPoint p = hp.active_point();
    cap = p.cap;
    bw = p.bw;
    tok = p.tok;
  }
  char row[320];
  std::snprintf(row, sizeof(row),
                "%llu,%s,%llu,%llu,%llu,%.6f,%llu,%llu,%llu,%llu,%llu,%llu,"
                "%llu,%llu\n",
                static_cast<unsigned long long>(total_epochs_),
                phase_ == Phase::Warmup ? "warmup" : "measure",
                static_cast<unsigned long long>(fb.now),
                static_cast<unsigned long long>(fb.cpu_instructions),
                static_cast<unsigned long long>(fb.gpu_instructions),
                fb.weighted_ipc,
                static_cast<unsigned long long>(fb.cpu_misses),
                static_cast<unsigned long long>(fb.gpu_misses),
                static_cast<unsigned long long>(fb.gpu_migrations),
                static_cast<unsigned long long>(fb.slow_backlog),
                static_cast<unsigned long long>(reconfigurations),
                static_cast<unsigned long long>(cap),
                static_cast<unsigned long long>(bw),
                static_cast<unsigned long long>(tok));
  emit_timeline(row);
}

void ShardGroup::emit_timeline(const char* text) {
  timeline_history_ += text;
  timeline_out_ << text;
}

void ShardGroup::do_checkpoint() { save_checkpoint(*this, cfg_.checkpoint_path); }

void ShardGroup::save(ckpt::CkptWriter& w) const {
  w.begin_section("shard-group");
  w.put_u8(static_cast<u8>(phase_));
  w.put_u32(warmup_target_);
  w.put_u64(epochs_this_phase_);
  w.put_u64(total_epochs_);
  w.put_u64(measure_start_);
  w.put_u64(end_cycle_);
  w.put_str(timeline_history_);
  w.end_section();
  for (u32 i = 0; i < members_.size(); ++i) {
    members_[i]->save(w, "s" + std::to_string(i) + "/");
  }
}

void ShardGroup::load(ckpt::CkptReader& r) {
  H2_ASSERT(phase_ == Phase::Built, "load() requires a freshly built group");
  r.enter_section("shard-group");
  const u8 phase_tag = r.get_u8();
  if (phase_tag != static_cast<u8>(Phase::Warmup) &&
      phase_tag != static_cast<u8>(Phase::Measure)) {
    r.fail("checkpoint phase tag " + std::to_string(phase_tag) +
           " is not an epoch-boundary phase (warmup/measure)");
  }
  phase_ = static_cast<Phase>(phase_tag);
  warmup_target_ = r.get_u32();
  epochs_this_phase_ = r.get_u64();
  total_epochs_ = r.get_u64();
  measure_start_ = r.get_u64();
  end_cycle_ = r.get_u64();
  const std::string history = r.get_str();
  r.leave_section();
  if (timeline_out_.is_open()) {
    // Rewrite the file from the checkpointed history: byte-identical to an
    // uninterrupted run even though the killed process lost its tail.
    timeline_history_ = history;
    timeline_out_.close();
    timeline_out_.open(cfg_.timeline_path, std::ios::trunc);
    if (!timeline_out_.is_open()) {
      throw std::runtime_error("cannot reopen timeline CSV '" + cfg_.timeline_path + "'");
    }
    timeline_out_ << timeline_history_;
  }
  for (u32 i = 0; i < members_.size(); ++i) {
    members_[i]->load(r, "s" + std::to_string(i) + "/");
  }
}

}  // namespace h2
