#include "harness/perfbench.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace h2 {

namespace {

void append_hex_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  out += buf;
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

void append_kv(std::string& out, const char* indent, const std::string& k,
               const std::string& v, bool last) {
  out += indent;
  out += '"';
  append_json_escaped(out, k);
  out += "\": \"";
  append_json_escaped(out, v);
  out += '"';
  if (!last) out += ',';
  out += '\n';
}

/// Character-level parser for the subset serialize_report emits: objects,
/// arrays, and string values. Any structural surprise aborts the parse.
struct Parser {
  const std::string& s;
  size_t i = 0;

  explicit Parser(const std::string& text) : s(text) {}

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r'))
      i++;
  }
  bool eat(char c) {
    skip_ws();
    if (i >= s.size() || s[i] != c) return false;
    i++;
    return true;
  }
  bool peek(char c) {
    skip_ws();
    return i < s.size() && s[i] == c;
  }
  bool read_string(std::string& out) {
    skip_ws();
    if (i >= s.size() || s[i] != '"') return false;
    i++;
    out.clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        i++;
        if (i >= s.size() || (s[i] != '"' && s[i] != '\\')) return false;
      }
      out += s[i++];
    }
    if (i >= s.size()) return false;
    i++;
    return true;
  }
  /// {"k":"v",...} with string values only.
  bool read_flat_object(std::vector<std::pair<std::string, std::string>>& out) {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    while (true) {
      std::string k, v;
      if (!read_string(k) || !eat(':') || !read_string(v)) return false;
      out.emplace_back(std::move(k), std::move(v));
      if (eat(',')) continue;
      return eat('}');
    }
  }
};

bool take_str(const std::vector<std::pair<std::string, std::string>>& m,
              const char* k, std::string& dst) {
  for (const auto& [key, value] : m) {
    if (key == k) {
      dst = value;
      return true;
    }
  }
  return false;
}

bool take_u64(const std::vector<std::pair<std::string, std::string>>& m,
              const char* k, u64& dst) {
  std::string v;
  if (!take_str(m, k, v) || v.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  dst = static_cast<u64>(x);
  return true;
}

bool take_dbl(const std::vector<std::pair<std::string, std::string>>& m,
              const char* k, double& dst) {
  std::string v;
  if (!take_str(m, k, v) || v.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  dst = x;
  return true;
}

std::string u64_str(u64 v) { return std::to_string(v); }

std::string dbl_str(double v) {
  std::string out;
  append_hex_double(out, v);
  return out;
}

}  // namespace

void PerfReport::set_meta(const std::string& key, const std::string& value) {
  for (auto& [k, v] : meta) {
    if (k == key) {
      v = value;
      return;
    }
  }
  meta.emplace_back(key, value);
}

const std::string* PerfReport::find_meta(const std::string& key) const {
  for (const auto& [k, v] : meta) {
    if (k == key) return &v;
  }
  return nullptr;
}

const PerfEntry* PerfReport::find(const std::string& name) const {
  for (const PerfEntry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::string serialize_report(const PerfReport& report) {
  std::string out = "{\n";
  append_kv(out, "  ", "schema", kPerfSchema, false);

  out += "  \"meta\": {\n";
  for (size_t i = 0; i < report.meta.size(); ++i) {
    append_kv(out, "    ", report.meta[i].first, report.meta[i].second,
              i + 1 == report.meta.size());
  }
  out += "  },\n";

  out += "  \"benchmarks\": [\n";
  for (size_t i = 0; i < report.entries.size(); ++i) {
    const PerfEntry& e = report.entries[i];
    out += "    {\n";
    append_kv(out, "      ", "name", e.name, false);
    append_kv(out, "      ", "kind", e.kind, false);
    append_kv(out, "      ", "iters", u64_str(e.iters), false);
    append_kv(out, "      ", "wall_seconds", dbl_str(e.wall_seconds), false);
    append_kv(out, "      ", "rate", dbl_str(e.rate), false);
    append_kv(out, "      ", "events", u64_str(e.events), false);
    append_kv(out, "      ", "accesses", u64_str(e.accesses), false);
    append_kv(out, "      ", "accesses_per_sec", dbl_str(e.accesses_per_sec), true);
    out += i + 1 == report.entries.size() ? "    }\n" : "    },\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::optional<PerfReport> parse_report(const std::string& text) {
  Parser p(text);
  PerfReport report;
  if (!p.eat('{')) return std::nullopt;

  std::string key;
  bool saw_schema = false, saw_meta = false, saw_benchmarks = false;
  while (true) {
    if (!p.read_string(key) || !p.eat(':')) return std::nullopt;
    if (key == "schema") {
      std::string v;
      if (!p.read_string(v) || v != kPerfSchema) return std::nullopt;
      saw_schema = true;
    } else if (key == "meta") {
      if (!p.read_flat_object(report.meta)) return std::nullopt;
      saw_meta = true;
    } else if (key == "benchmarks") {
      if (!p.eat('[')) return std::nullopt;
      if (!p.eat(']')) {
        while (true) {
          std::vector<std::pair<std::string, std::string>> fields;
          if (!p.read_flat_object(fields)) return std::nullopt;
          PerfEntry e;
          bool ok = take_str(fields, "name", e.name) && !e.name.empty();
          ok = ok && take_str(fields, "kind", e.kind);
          ok = ok && take_u64(fields, "iters", e.iters);
          ok = ok && take_dbl(fields, "wall_seconds", e.wall_seconds);
          ok = ok && take_dbl(fields, "rate", e.rate);
          ok = ok && take_u64(fields, "events", e.events);
          ok = ok && take_u64(fields, "accesses", e.accesses);
          ok = ok && take_dbl(fields, "accesses_per_sec", e.accesses_per_sec);
          if (!ok) return std::nullopt;
          report.entries.push_back(std::move(e));
          if (p.eat(',')) continue;
          if (p.eat(']')) break;
          return std::nullopt;
        }
      }
      saw_benchmarks = true;
    } else {
      return std::nullopt;  // unknown top-level key
    }
    if (p.eat(',')) continue;
    if (p.eat('}')) break;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.i != p.s.size()) return std::nullopt;
  if (!saw_schema || !saw_meta || !saw_benchmarks) return std::nullopt;
  return report;
}

std::optional<PerfReport> load_report(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_report(text);
}

bool save_report(const PerfReport& report, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string text = serialize_report(report);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

const char* to_string(PerfDelta d) {
  switch (d) {
    case PerfDelta::Noise: return "noise";
    case PerfDelta::Improvement: return "improvement";
    case PerfDelta::Regression: return "regression";
    case PerfDelta::CounterMismatch: return "counter-mismatch";
    case PerfDelta::OnlyInBaseline: return "only-in-baseline";
    case PerfDelta::OnlyInCurrent: return "only-in-current";
  }
  return "?";
}

CompareReport compare_reports(const PerfReport& base, const PerfReport& cur,
                              double threshold) {
  CompareReport out;
  for (const PerfEntry& b : base.entries) {
    PerfComparison row;
    row.name = b.name;
    row.base_rate = b.rate;
    const PerfEntry* c = cur.find(b.name);
    if (c == nullptr) {
      row.cls = PerfDelta::OnlyInBaseline;
      row.detail = "benchmark disappeared";
      out.regressions++;
      out.rows.push_back(std::move(row));
      continue;
    }
    row.cur_rate = c->rate;
    row.ratio = b.rate > 0.0 ? c->rate / b.rate : 0.0;
    if (b.events != c->events || b.accesses != c->accesses) {
      row.cls = PerfDelta::CounterMismatch;
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "events %llu -> %llu, accesses %llu -> %llu",
                    static_cast<unsigned long long>(b.events),
                    static_cast<unsigned long long>(c->events),
                    static_cast<unsigned long long>(b.accesses),
                    static_cast<unsigned long long>(c->accesses));
      row.detail = buf;
      out.counter_mismatches++;
    } else if (row.ratio >= 1.0 + threshold) {
      row.cls = PerfDelta::Improvement;
      out.improvements++;
    } else if (row.ratio <= 1.0 - threshold) {
      row.cls = PerfDelta::Regression;
      out.regressions++;
    } else {
      row.cls = PerfDelta::Noise;
    }
    out.rows.push_back(std::move(row));
  }
  for (const PerfEntry& c : cur.entries) {
    if (base.find(c.name) != nullptr) continue;
    PerfComparison row;
    row.name = c.name;
    row.cur_rate = c.rate;
    row.cls = PerfDelta::OnlyInCurrent;
    out.rows.push_back(std::move(row));
  }
  return out;
}

}  // namespace h2
