// Epoch-boundary checkpoint/restore of a complete simulation.
//
// A checkpoint is a versioned, checksummed container (common/ckpt_io.h)
// holding every stateful layer of a SimSystem — lifecycle cursors, the
// engine's event heap, generator RNG streams, cores, caches, the remap
// table + SRAM remap cache, policy adaptation state and both channel
// backends — prefixed by a header naming the producing configuration via
// config_key(). Snapshots are taken between engine events at epoch
// boundaries, so the saved state is exactly the state an uninterrupted run
// passes through: a killed run restored from its last checkpoint produces
// byte-identical CSV and --timeline output (bench/ckpt_restore_compare.cmake
// proves this for every design on both channel backends).
//
// Files are published atomically (tmp + fsync + rename): a crash mid-write
// leaves the previous checkpoint intact, never a torn file. Restore refuses
// — with a CheckpointError naming file, section and offset — anything
// corrupt, truncated, version-skewed, or written by a different config.
#pragma once

#include <optional>
#include <string>

#include "common/types.h"

namespace h2 {

class SimSystem;
class ShardGroup;

/// Cheap identity peek at a checkpoint file's header (used by the sweep
/// watchdog capture to report "resumable from epoch K").
struct CheckpointInfo {
  std::string config_key;  ///< config_key() of the producing run
  u64 epoch = 0;           ///< epoch boundaries completed at the snapshot
  Cycle cycle = 0;         ///< engine cycle at the snapshot
};

/// Serializes the full state of `sys` (which must be paused between engine
/// events — the checkpoint observer guarantees this) and publishes it
/// atomically at `path`. The armed ckpt-corrupt / ckpt-truncate faults
/// perturb the composed bytes just before publication, exercising the
/// load-side rejection paths.
void save_checkpoint(SimSystem& sys, const std::string& path);

/// Restores `path` into a freshly build()-ed `sys` of the same
/// configuration; follow with sys.resume(). Throws ckpt::CheckpointError on
/// a bad magic/version/checksum, on truncation, and on a config_key header
/// that does not match sys.config().
void load_checkpoint(SimSystem& sys, const std::string& path);

/// Group overloads: the whole ShardGroup — group cursors plus every member's
/// prefixed state sections — snapshots into ONE container with the same
/// identity header (config_key() covers sim.shards, so a monolithic
/// checkpoint can never restore into a sharded run or vice versa).
void save_checkpoint(ShardGroup& group, const std::string& path);
void load_checkpoint(ShardGroup& group, const std::string& path);

/// Reads just the identity header. Returns nullopt instead of throwing when
/// the file is missing, torn or unreadable — callers use this to decide
/// whether a failed run left anything worth resuming.
std::optional<CheckpointInfo> peek_checkpoint(const std::string& path);

}  // namespace h2
