#include "harness/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/assert.h"
#include "common/stats.h"
#include "harness/experiment.h"
#include "harness/sweep.h"

namespace h2 {

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
  return buf;
}

TablePrinter::TablePrinter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TablePrinter::row(std::vector<std::string> cells) {
  H2_ASSERT(cells.size() == columns_.size(), "row width %zu != header width %zu",
            cells.size(), columns_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<size_t> width(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& r : rows_) {
    for (size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }

  os << "\n== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (size_t c = 0; c < r.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << r[c];
      for (size_t pad = r[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << "\n";
  };
  emit_row(columns_);
  size_t total = columns_.size() - 1;
  for (size_t w : width) total += w + 1;
  os << std::string(total, '-') << "\n";
  for (const auto& r : rows_) emit_row(r);
}

void TablePrinter::write_csv(const std::string& path) const {
  std::ofstream f(path);
  H2_ASSERT(f.good(), "cannot write %s", path.c_str());
  CsvWriter csv(f);
  for (const auto& c : columns_) csv.cell(c);
  csv.end_row();
  for (const auto& r : rows_) {
    for (const auto& c : r) csv.cell(c);
    csv.end_row();
  }
}

void append_result_csv(const std::string& path, const SweepRun& run,
                       const ExperimentConfig& cfg) {
  const bool fresh = !std::ifstream(path).good();
  std::ofstream f(path, std::ios::app);
  H2_ASSERT(f.good(), "cannot open %s for appending", path.c_str());
  CsvWriter csv(f);
  if (fresh) {
    for (const char* col :
         {"combo", "design", "mode", "status", "attempts", "error", "cpu_cycles",
          "gpu_cycles", "cpu_instructions", "gpu_instructions", "cpu_ipc",
          "gpu_ipc", "weighted_ipc", "energy_pj", "fast_bytes", "slow_bytes",
          "cpu_hit_rate", "gpu_hit_rate", "slow_amplification", "gpu_migrations",
          "reconfigurations"}) {
      csv.cell(std::string(col));
    }
    csv.end_row();
  }
  csv.cell(run.combo)
      .cell(run.design)
      .cell(std::string(cfg.mode == HybridMode::Cache ? "cache" : "flat"))
      .cell(std::string(to_string(run.status)))
      .cell(static_cast<u64>(run.attempts))
      .cell(run.error);
  if (run.ok) {
    const ExperimentResult& r = run.result;
    csv.cell(r.cpu_cycles)
        .cell(r.gpu_cycles)
        .cell(r.cpu_instructions)
        .cell(r.gpu_instructions)
        .cell(r.cpu_ipc)
        .cell(r.gpu_ipc)
        .cell(r.weighted_ipc)
        .cell(r.energy_pj)
        .cell(r.fast_bytes)
        .cell(r.slow_bytes)
        .cell(r.fast_hit_rate[0])
        .cell(r.fast_hit_rate[1])
        .cell(r.slow_amplification)
        .cell(r.hmstats[1].migrations)
        .cell(r.reconfigurations);
  } else {
    for (int i = 0; i < 15; ++i) csv.cell(std::string());  // one per metric column
  }
  csv.end_row();
}

void print_check(std::ostream& os, const std::string& what, double paper,
                 double measured, int precision) {
  os << "  [paper vs measured] " << what << ": paper=" << fmt(paper, precision)
     << " measured=" << fmt(measured, precision) << "\n";
}

}  // namespace h2
