#include "harness/experiment.h"

#include "common/assert.h"
#include "harness/checkpoint.h"
#include "harness/shard_group.h"
#include "harness/sim_system.h"

namespace h2 {

DesignSpec DesignSpec::baseline() {
  DesignSpec d;
  d.label = "baseline";
  d.kind = Kind::Baseline;
  return d;
}

DesignSpec DesignSpec::waypart(double cpu_way_fraction) {
  DesignSpec d;
  d.label = "waypart";
  d.kind = Kind::WayPart;
  d.cpu_way_fraction = cpu_way_fraction;
  return d;
}

DesignSpec DesignSpec::hashcache() {
  DesignSpec d;
  d.label = "hashcache";
  d.kind = Kind::HAShCache;
  return d;
}

DesignSpec DesignSpec::profess() {
  DesignSpec d;
  d.label = "profess";
  d.kind = Kind::Profess;
  return d;
}

DesignSpec DesignSpec::hydrogen_dp() {
  DesignSpec d;
  d.label = "hydrogen-dp";
  d.kind = Kind::Hydrogen;
  d.hydrogen.decoupled = true;
  d.hydrogen.token = false;
  d.hydrogen.search = false;
  return d;
}

DesignSpec DesignSpec::hydrogen_dp_token() {
  DesignSpec d = hydrogen_dp();
  d.label = "hydrogen-dp+token";
  d.hydrogen.token = true;
  return d;
}

DesignSpec DesignSpec::hydrogen_full() {
  DesignSpec d;
  d.label = "hydrogen";
  d.kind = Kind::Hydrogen;
  d.hydrogen.decoupled = true;
  d.hydrogen.token = true;
  d.hydrogen.search = true;
  return d;
}

DesignSpec DesignSpec::hydrogen_setpart() {
  DesignSpec d;
  d.label = "hydrogen-setpart";
  d.kind = Kind::SetPart;
  // SetPartPolicy historically used its own default seed; make_policy now
  // derives SetPartConfig (seed included) from the hydrogen fields, so the
  // spec carries that default explicitly to keep behaviour identical.
  d.hydrogen.seed = 0x5e7ca57ull;
  return d;
}

DesignSpec DesignSpec::integrated() {
  DesignSpec d;
  d.label = "integrated";
  d.kind = Kind::Integrated;
  return d;
}

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  if (cfg.shards > 1) {
    // Sharded run: N member systems behind the ShardGroup facade, coupled
    // only at epoch boundaries. The monolithic path below is untouched, so
    // --shards 1 stays byte-identical to the pre-sharding harness.
    ShardGroup group(cfg);
    group.build();
    if (!cfg.restore_path.empty()) {
      load_checkpoint(group, cfg.restore_path);
      group.resume();
    } else {
      group.warmup(cfg.warmup_epochs);
      group.measure();
    }
    return group.drain();
  }
  SimSystem sys(cfg);
  sys.build();
  if (!cfg.restore_path.empty()) {
    // Resume a checkpointed run: the snapshot replaces the warmup/measure
    // prologue entirely and the run continues from the saved epoch boundary.
    load_checkpoint(sys, cfg.restore_path);
    sys.resume();
  } else {
    sys.warmup(cfg.warmup_epochs);
    sys.measure();
  }
  return sys.drain();
}

double weighted_speedup(const ExperimentResult& base, const ExperimentResult& x,
                        double weight_cpu, double weight_gpu) {
  double num = 0.0, den = 0.0;
  if (base.cpu_cycles > 0 && x.cpu_cycles > 0) {
    num += weight_cpu * static_cast<double>(base.cpu_cycles) /
           static_cast<double>(x.cpu_cycles);
    den += weight_cpu;
  }
  if (base.gpu_cycles > 0 && x.gpu_cycles > 0) {
    num += weight_gpu * static_cast<double>(base.gpu_cycles) /
           static_cast<double>(x.gpu_cycles);
    den += weight_gpu;
  }
  H2_ASSERT(den > 0, "weighted_speedup with no comparable sides");
  return num / den;
}

double side_slowdown(const ExperimentResult& solo, const ExperimentResult& shared,
                     Requestor side) {
  const Cycle s = side == Requestor::Cpu ? solo.cpu_cycles : solo.gpu_cycles;
  const Cycle t = side == Requestor::Cpu ? shared.cpu_cycles : shared.gpu_cycles;
  H2_ASSERT(s > 0, "solo run did not execute the %s side", to_string(side));
  return static_cast<double>(t) / static_cast<double>(s);
}

}  // namespace h2
