#include "harness/experiment.h"

#include <algorithm>
#include <memory>

#include "check/check.h"
#include "check/fault.h"
#include "common/assert.h"
#include "hydrogen/setpart_policy.h"
#include "policies/baseline.h"
#include "policies/hashcache.h"
#include "policies/profess.h"
#include "policies/waypart.h"
#include "proc/core.h"
#include "trace/trace_io.h"
#include "sim/engine.h"

namespace h2 {

DesignSpec DesignSpec::baseline() {
  DesignSpec d;
  d.label = "baseline";
  d.kind = Kind::Baseline;
  return d;
}

DesignSpec DesignSpec::waypart(double cpu_way_fraction) {
  DesignSpec d;
  d.label = "waypart";
  d.kind = Kind::WayPart;
  d.hydrogen.fixed_cpu_capacity_frac = cpu_way_fraction;  // reused as the fraction knob
  return d;
}

DesignSpec DesignSpec::hashcache() {
  DesignSpec d;
  d.label = "hashcache";
  d.kind = Kind::HAShCache;
  return d;
}

DesignSpec DesignSpec::profess() {
  DesignSpec d;
  d.label = "profess";
  d.kind = Kind::Profess;
  return d;
}

DesignSpec DesignSpec::hydrogen_dp() {
  DesignSpec d;
  d.label = "hydrogen-dp";
  d.kind = Kind::Hydrogen;
  d.hydrogen.decoupled = true;
  d.hydrogen.token = false;
  d.hydrogen.search = false;
  return d;
}

DesignSpec DesignSpec::hydrogen_dp_token() {
  DesignSpec d = hydrogen_dp();
  d.label = "hydrogen-dp+token";
  d.hydrogen.token = true;
  return d;
}

DesignSpec DesignSpec::hydrogen_full() {
  DesignSpec d;
  d.label = "hydrogen";
  d.kind = Kind::Hydrogen;
  d.hydrogen.decoupled = true;
  d.hydrogen.token = true;
  d.hydrogen.search = true;
  return d;
}

DesignSpec DesignSpec::hydrogen_setpart() {
  DesignSpec d;
  d.label = "hydrogen-setpart";
  d.kind = Kind::SetPart;
  return d;
}

namespace {

std::unique_ptr<PartitionPolicy> make_policy(const DesignSpec& design) {
  switch (design.kind) {
    case DesignSpec::Kind::Baseline:
      return std::make_unique<BaselinePolicy>();
    case DesignSpec::Kind::WayPart:
      return std::make_unique<WayPartPolicy>(design.hydrogen.fixed_cpu_capacity_frac);
    case DesignSpec::Kind::HAShCache:
      return std::make_unique<HAShCachePolicy>();
    case DesignSpec::Kind::Profess:
      return std::make_unique<ProfessPolicy>();
    case DesignSpec::Kind::Hydrogen:
      return std::make_unique<HydrogenPolicy>(design.hydrogen);
    case DesignSpec::Kind::SetPart: {
      SetPartConfig cfg;
      cfg.cpu_set_frac = design.hydrogen.fixed_cpu_capacity_frac;
      cfg.cpu_bw_frac = design.hydrogen.fixed_cpu_bw_frac;
      cfg.token = design.hydrogen.token;
      cfg.tok_frac = design.hydrogen.fixed_tok_frac;
      cfg.faucet_period = design.hydrogen.faucet_period;
      return std::make_unique<SetPartPolicy>(cfg);
    }
  }
  H2_ASSERT(false, "unknown design kind");
  return nullptr;
}

/// The MemoryPort implementation wiring the cache hierarchy to the hybrid
/// memory controller.
class SystemModel final : public MemoryPort {
 public:
  SystemModel(const HierarchyConfig& hier_cfg, const MemSystemConfig& mem_cfg,
              const HybridMemConfig& hm_cfg, std::unique_ptr<PartitionPolicy> policy)
      : hierarchy_(hier_cfg),
        mem_(mem_cfg),
        policy_(std::move(policy)),
        hm_(hm_cfg, &mem_, policy_.get()) {}

  Cycle access(Cycle now, Requestor cls, u32 unit, Addr addr, bool write) override {
    const HierarchyResult hr = cls == Requestor::Cpu
                                   ? hierarchy_.cpu_access(unit, addr, write)
                                   : hierarchy_.gpu_access(unit, addr, write);
    const Cycle t = now + hr.latency;
    if (!hr.memory_needed) return t;
    if (hr.writeback) hm_.writeback(t, cls, hr.writeback_addr);
    return hm_.access(t, cls, addr, write);
  }

  CacheHierarchy& hierarchy() { return hierarchy_; }
  MemorySystem& memory() { return mem_; }
  HybridMemory& hybrid() { return hm_; }
  PartitionPolicy& policy() { return *policy_; }

 private:
  CacheHierarchy hierarchy_;
  MemorySystem mem_;
  std::unique_ptr<PartitionPolicy> policy_;
  HybridMemory hm_;
};

u64 round_up(u64 v, u64 to) { return (v + to - 1) / to * to; }

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  H2_ASSERT(!(cfg.cpu_only && cfg.gpu_only), "cpu_only and gpu_only are exclusive");
  const ComboSpec& cb = combo(cfg.combo);

  // ---- workload layout: 8 CPU cores run the 4 workloads rate-2; all GPU
  // clusters decompose the single kernel over a shared footprint. ----------
  SystemConfig sys = cfg.sys;
  // The private-cache arrays must match the processor configuration (core
  // count sweeps adjust sys.cpu_cores after building the SystemConfig).
  sys.hierarchy.cpu_cores = sys.cpu_cores;
  sys.hierarchy.gpu_clusters = sys.gpu_clusters();
  const u32 n_cpu = cfg.cpu_only || !cfg.gpu_only ? sys.cpu_cores : 0;
  const u32 n_gpu = cfg.gpu_only || !cfg.cpu_only ? sys.gpu_clusters() : 0;

  std::vector<std::unique_ptr<AccessGenerator>> gens;
  std::vector<Addr> bases;
  Addr cursor = 0;

  // Replay support: when trace_dir is set, cores consume recorded traces
  // (tools/h2trace output) instead of live synthetic generators.
  auto make_generator = [&](const WorkloadSpec& spec, u64 seed,
                            u64* footprint) -> std::unique_ptr<AccessGenerator> {
    if (!cfg.trace_dir.empty()) {
      const std::string path = cfg.trace_dir + "/" + spec.name + ".trace";
      auto replay = std::make_unique<ReplayGenerator>(replay_from_file(spec.name, path));
      *footprint = replay->footprint_bytes();
      return replay;
    }
    *footprint = spec.footprint_bytes;
    return std::make_unique<SyntheticGenerator>(spec, seed);
  };

  for (u32 i = 0; i < sys.cpu_cores; ++i) {
    const WorkloadSpec& spec =
        cpu_workload_spec(cb.cpu[(i / 2) % cb.cpu.size()]);
    const WorkloadSpec scaled = with_scaled_footprint(spec, 1, sys.scale);
    u64 footprint = 0;
    gens.push_back(make_generator(scaled, mix_hash(cfg.seed, 0x1000 + i), &footprint));
    bases.push_back(cursor);
    cursor += round_up(footprint, cfg.block_bytes);
  }
  // The GPU kernel's footprint is partitioned across clusters, mirroring how
  // workgroup scheduling assigns disjoint data tiles to different subslices:
  // each cluster streams its own slice, so GPU block reuse is short-range
  // and compulsory-dominated (the paper's Insight 2 — GPUs barely need fast
  // capacity — depends on this property).
  std::vector<Addr> gpu_bases;
  {
    const WorkloadSpec scaled =
        with_scaled_footprint(gpu_workload_spec(cb.gpu), 1, sys.scale);
    WorkloadSpec slice = scaled;
    slice.footprint_bytes = std::max<u64>(
        256 * 1024, scaled.footprint_bytes / sys.gpu_clusters());
    for (u32 i = 0; i < sys.gpu_clusters(); ++i) {
      u64 footprint = 0;
      gens.push_back(make_generator(slice, mix_hash(cfg.seed, 0x2000 + i), &footprint));
      gpu_bases.push_back(cursor);
      cursor += round_up(footprint, cfg.block_bytes);
    }
  }

  // ---- memory geometry ----------------------------------------------------
  const u64 slow_capacity = round_up(cursor, cfg.block_bytes);
  u64 fast_capacity = cfg.fast_capacity_override
                          ? cfg.fast_capacity_override
                          : static_cast<u64>(cfg.fast_capacity_frac *
                                             static_cast<double>(slow_capacity));
  const u64 set_bytes = static_cast<u64>(cfg.assoc) * cfg.block_bytes;
  fast_capacity = std::max(set_bytes * 16, round_up(fast_capacity, set_bytes));

  MemSystemConfig mem_cfg = sys.mem;
  if (cfg.fast_channels) mem_cfg.fast_channels = cfg.fast_channels;
  if (cfg.slow_channels) mem_cfg.slow_channels = cfg.slow_channels;
  mem_cfg.block_bytes = cfg.block_bytes;
  mem_cfg.core_ghz = sys.core_ghz;

  HybridMemConfig hm_cfg = sys.hybrid;
  hm_cfg.mode = cfg.mode;
  hm_cfg.block_bytes = cfg.block_bytes;
  hm_cfg.assoc = cfg.assoc;
  hm_cfg.fast_capacity_bytes = fast_capacity;
  hm_cfg.slow_capacity_bytes = slow_capacity;
  hm_cfg.ideal_swap = cfg.design.ideal_swap;
  hm_cfg.instant_reconfig = cfg.design.instant_reconfig;

  DesignSpec design = cfg.design;
  if (design.kind == DesignSpec::Kind::HAShCache) {
    mem_cfg.cpu_priority = true;
    if (design.hashcache_native_geometry) {
      hm_cfg.assoc = 1;
      hm_cfg.chaining = true;
    } else if (hm_cfg.assoc == 1) {
      hm_cfg.chaining = true;
    } else {
      hm_cfg.chaining = false;
      hm_cfg.mc_overhead += 8;  // tag-walk latency for scaled associativity
    }
  }
  if (design.kind == DesignSpec::Kind::Hydrogen) {
    design.hydrogen.phase_length = cfg.phase_cycles;
  }

  SystemModel model(sys.hierarchy, mem_cfg, hm_cfg, make_policy(design));

  // ---- cores ---------------------------------------------------------------
  Engine engine;
  std::vector<std::unique_ptr<Core>> cores;
  auto add_core = [&](Requestor cls, u32 unit, Addr base, AccessGenerator* gen,
                      u64 target) {
    CoreParams p;
    p.cls = cls;
    p.unit = unit;
    p.addr_base = base;
    p.base_ipc = cls == Requestor::Cpu ? sys.cpu_base_ipc : sys.gpu_base_ipc;
    p.mlp = cls == Requestor::Cpu ? sys.cpu_mlp : sys.gpu_mlp;
    p.write_buffer = cls == Requestor::Cpu ? sys.cpu_write_buffer : sys.gpu_write_buffer;
    p.target_instructions = target;
    cores.push_back(std::make_unique<Core>(p, gen, &model));
    engine.add_actor(cores.back().get(), /*start=*/unit);  // stagger starts
  };

  if (n_cpu) {
    for (u32 i = 0; i < sys.cpu_cores; ++i) {
      add_core(Requestor::Cpu, i, bases[i], gens[i].get(), cfg.cpu_target_instructions);
    }
  }
  if (n_gpu) {
    for (u32 i = 0; i < sys.gpu_clusters(); ++i) {
      add_core(Requestor::Gpu, i, gpu_bases[i], gens[sys.cpu_cores + i].get(),
               cfg.gpu_target_instructions);
    }
  }
  H2_ASSERT(!cores.empty(), "no cores to run");

  // ---- epoch hook: feedback, adaptation, termination ------------------------
  ExperimentResult res;
  res.combo = cfg.combo;
  res.design = design.label;

  u64 prev_cpu_instr = 0, prev_gpu_instr = 0;
  u64 prev_cpu_miss = 0, prev_gpu_miss = 0, prev_gpu_migr = 0;

  engine.add_periodic(cfg.epoch_cycles, [&](Cycle now) {
    // Harness fault sites (check/fault.h): synthetic failures and stalls at
    // an epoch boundary, exercising the sweep runner's capture/retry/watchdog
    // paths. No-ops unless a matching fault is armed on this thread.
    if (fault::at(fault::Kind::Throw)) fault::throw_synthetic(false);
    if (fault::at(fault::Kind::ThrowTransient)) fault::throw_synthetic(true);
    if (fault::at(fault::Kind::Stall)) fault::stall();
    res.epochs++;
    u64 cpu_instr = 0, gpu_instr = 0;
    bool all_done = true;
    for (const auto& c : cores) {
      if (c->cls() == Requestor::Cpu) {
        cpu_instr += c->retired_instructions();
      } else {
        gpu_instr += c->retired_instructions();
      }
      all_done = all_done && c->finished();
    }

    const HybridStats& sc = model.hybrid().stats(Requestor::Cpu);
    const HybridStats& sg = model.hybrid().stats(Requestor::Gpu);

    EpochFeedback fb;
    fb.now = now;
    fb.epoch_cycles = cfg.epoch_cycles;
    fb.cpu_instructions = cpu_instr - prev_cpu_instr;
    fb.gpu_instructions = gpu_instr - prev_gpu_instr;
    fb.weighted_ipc = (cfg.weight_cpu * static_cast<double>(fb.cpu_instructions) +
                       cfg.weight_gpu * static_cast<double>(fb.gpu_instructions)) /
                      static_cast<double>(cfg.epoch_cycles);
    fb.cpu_misses = sc.misses - prev_cpu_miss;
    fb.gpu_misses = sg.misses - prev_gpu_miss;
    fb.gpu_migrations = sg.migrations - prev_gpu_migr;
    fb.slow_backlog = model.memory().slow_backlog(now);

    prev_cpu_instr = cpu_instr;
    prev_gpu_instr = gpu_instr;
    prev_cpu_miss = sc.misses;
    prev_gpu_miss = sg.misses;
    prev_gpu_migr = sg.migrations;

    const bool changed = model.policy().on_epoch(fb);
    if (changed && hm_cfg.instant_reconfig) model.hybrid().run_instant_reconfig();

    // Cheap O(1) counter-conservation audit at each epoch boundary; the full
    // structural audit runs once at drain below.
    if (H2_CHECK_ACTIVE(2)) model.hybrid().audit_counters(now);

    if (all_done) engine.stop();
  });

  const Cycle end = engine.run(cfg.max_cycles);
  res.end_cycle = end;

  if (H2_CHECK_ACTIVE(2)) {
    model.hybrid().audit(end, "end of experiment");
    model.memory().audit(end);
  }

  // ---- extract metrics -------------------------------------------------------
  // Instruction counts are capped at the target: a side that finished early
  // keeps replaying to preserve contention, but those extra instructions
  // must not inflate its IPC (they retired after its recorded cycle count).
  res.cpu_finished = true;
  res.gpu_finished = true;
  for (const auto& c : cores) {
    const Cycle done = c->finished() ? c->done_cycle() : end;
    const u64 instructions =
        std::min(c->retired_instructions(), c->params().target_instructions);
    if (c->cls() == Requestor::Cpu) {
      res.cpu_cycles = std::max(res.cpu_cycles, done);
      res.cpu_instructions += instructions;
      res.cpu_finished = res.cpu_finished && c->finished();
    } else {
      res.gpu_cycles = std::max(res.gpu_cycles, done);
      res.gpu_instructions += instructions;
      res.gpu_finished = res.gpu_finished && c->finished();
    }
  }
  if (res.cpu_cycles > 0) {
    res.cpu_ipc = static_cast<double>(res.cpu_instructions) /
                  static_cast<double>(res.cpu_cycles);
  }
  if (res.gpu_cycles > 0) {
    res.gpu_ipc = static_cast<double>(res.gpu_instructions) /
                  static_cast<double>(res.gpu_cycles);
  }
  res.weighted_ipc = cfg.weight_cpu * res.cpu_ipc + cfg.weight_gpu * res.gpu_ipc;

  res.energy_pj = model.memory().total_energy_pj(end);
  res.fast_bytes = model.memory().tier_bytes(Tier::Fast);
  res.slow_bytes = model.memory().tier_bytes(Tier::Slow);
  res.hmstats[0] = model.hybrid().stats(Requestor::Cpu);
  res.hmstats[1] = model.hybrid().stats(Requestor::Gpu);
  res.fast_hit_rate[0] = model.hybrid().hit_rate(Requestor::Cpu);
  res.fast_hit_rate[1] = model.hybrid().hit_rate(Requestor::Gpu);
  res.llc_hit_rate[0] = model.hierarchy().llc_hit_rate(Requestor::Cpu);
  res.llc_hit_rate[1] = model.hierarchy().llc_hit_rate(Requestor::Gpu);
  res.remap_cache_hit_rate = model.hybrid().remap_cache().hit_rate();
  {
    // Merge per-core read-latency distributions into per-side summaries.
    u64 n[2] = {0, 0}, sum[2] = {0, 0}, p99[2] = {0, 0};
    for (const auto& c : cores) {
      const u32 i = static_cast<u32>(c->cls());
      n[i] += c->read_latency().count();
      sum[i] += c->read_latency().total();
      p99[i] = std::max(p99[i], c->read_latency().percentile(99));
    }
    for (u32 i = 0; i < 2; ++i) {
      res.read_latency_mean[i] = n[i] ? static_cast<double>(sum[i]) / n[i] : 0.0;
      res.read_latency_p99[i] = p99[i];
    }
  }
  const u64 demand = res.hmstats[0].demand + res.hmstats[1].demand;
  if (demand > 0) {
    res.slow_amplification =
        static_cast<double>(res.slow_bytes) / (static_cast<double>(demand) * 64.0);
  }
  if (design.kind == DesignSpec::Kind::Hydrogen) {
    const auto& hp = static_cast<const HydrogenPolicy&>(model.policy());
    res.final_point = hp.active_point();
    res.reconfigurations = hp.reconfigurations();
  }
  return res;
}

double weighted_speedup(const ExperimentResult& base, const ExperimentResult& x,
                        double weight_cpu, double weight_gpu) {
  double num = 0.0, den = 0.0;
  if (base.cpu_cycles > 0 && x.cpu_cycles > 0) {
    num += weight_cpu * static_cast<double>(base.cpu_cycles) /
           static_cast<double>(x.cpu_cycles);
    den += weight_cpu;
  }
  if (base.gpu_cycles > 0 && x.gpu_cycles > 0) {
    num += weight_gpu * static_cast<double>(base.gpu_cycles) /
           static_cast<double>(x.gpu_cycles);
    den += weight_gpu;
  }
  H2_ASSERT(den > 0, "weighted_speedup with no comparable sides");
  return num / den;
}

double side_slowdown(const ExperimentResult& solo, const ExperimentResult& shared,
                     Requestor side) {
  const Cycle s = side == Requestor::Cpu ? solo.cpu_cycles : solo.gpu_cycles;
  const Cycle t = side == Requestor::Cpu ? shared.cpu_cycles : shared.gpu_cycles;
  H2_ASSERT(s > 0, "solo run did not execute the %s side", to_string(side));
  return static_cast<double>(t) / static_cast<double>(s);
}

}  // namespace h2
