// The sweep journal: crash-safe, append-only record of completed runs.
//
// A multi-hour figure sweep must survive a crash, a kill, or an OOM without
// throwing away every completed run (the Ramulator 2.0 re-evaluation lesson:
// long campaigns are only trustworthy when they are recoverable *and*
// reruns reproduce the same bytes). The sweep runner appends one JSONL
// record per *completed* slot — flushed immediately, so a record is either
// wholly present or wholly absent — and `--resume` pre-fills journaled slots
// instead of re-running them.
//
// Records are keyed by config_key(), a hash of every config field that
// determines a run's output, so a journal never silently feeds a slot from
// a different experiment. Numeric values are serialised losslessly (u64 as
// decimal, doubles as C99 hex-floats), so a resumed sweep's final CSV is
// byte-identical to an uninterrupted run's.
#pragma once

#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "harness/experiment.h"

namespace h2 {

/// Stable identity of one sweep slot: FNV-1a over a canonical dump of every
/// ExperimentConfig / DesignSpec / HydrogenConfig / system field that can
/// change a run's output, rendered as 16 hex digits. Hash the config *after*
/// seed derivation so a journal entry never resumes a run with a different
/// effective seed.
std::string config_key(const ExperimentConfig& cfg);

/// One journal record: the final outcome of a sweep slot.
struct JournalEntry {
  std::string key;        ///< config_key() of the slot's config
  std::string combo;
  std::string design;
  u64 seed = 0;
  std::string status;     ///< "ok" | "failed" | "timeout"
  u32 attempts = 1;
  std::string error;      ///< failure description when status != ok
  double wall_seconds = 0.0;
  ExperimentResult result;  ///< meaningful only when status == ok
};

/// Renders an entry as one flat JSON object (no newline). Every value is a
/// JSON string: u64 in decimal, doubles as hex-floats ("%a") for exact
/// round-trips, text fields with `"` and `\` escaped.
std::string serialize_entry(const JournalEntry& e);

/// Parses one journal line. Returns nullopt on anything malformed — a
/// truncated tail from a crash, an empty line, a record missing its key —
/// rather than throwing: resume treats unreadable lines as never-completed
/// runs.
std::optional<JournalEntry> parse_entry(const std::string& line);

/// Loads a journal file into a key -> entry map. Missing file = empty map.
/// Corrupt lines are skipped; duplicate keys keep the *last* record (a
/// re-run after a failure supersedes the failure).
std::map<std::string, JournalEntry> load_journal(const std::string& path);

/// Append-side handle. Opens the file in append mode and flushes after every
/// record, so a crash loses at most the record being written — and a partial
/// final line is exactly what parse_entry tolerates.
class Journal {
 public:
  /// Opens (creating if needed) `path` for append. H2_ASSERTs on I/O failure
  /// — an unwritable journal would silently disable crash-safety.
  /// `fsync_each_record` additionally fsyncs after every append, hardening
  /// the journal against power loss (not just process death) at the cost of
  /// one disk round-trip per record. The H2_JOURNAL_FSYNC environment
  /// variable (any non-empty value except "0") forces it on.
  explicit Journal(const std::string& path, bool fsync_each_record = false);
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Thread-safe: serialises, appends one line, flushes (and fsyncs when
  /// durability was requested).
  void append(const JournalEntry& e);

  const std::string& path() const { return path_; }
  bool fsync_enabled() const { return fsync_; }

 private:
  std::string path_;
  std::mutex mu_;
  std::FILE* f_ = nullptr;
  bool fsync_ = false;
};

}  // namespace h2
