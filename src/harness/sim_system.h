// SimSystem: the single place where a complete simulated system is wired
// together, with an explicit measurement lifecycle.
//
//   SimSystem sys(cfg);
//   sys.build();               // assemble cores + caches + memory + policy
//   sys.warmup(N);             // N epochs of adaptation, then stats reset
//   sys.measure();             // run the measurement window to completion
//   ExperimentResult r = sys.drain();   // final audits + metric extraction
//
// The paper's methodology (SC'24) measures steady-state behaviour — warmed
// caches, settled hill-climb partitions, token buckets in regime — which a
// cold-start harness cannot produce. warmup(N) runs the first N epochs with
// adaptation live, then reset_measurement() cascades through every
// stats-bearing layer (Core counters/latency histograms, Cache/
// CacheHierarchy hit counters, Channel/MemorySystem energy + request
// counters, HybridMemory per-requestor stats, policy reconfiguration
// tallies), zeroing counters while preserving architectural state:
// residency, remap tables, remap-cache contents, row buffers, in-flight
// requests and all policy adaptation survive. Each layer resets both sides
// of its conservation invariants together, so the H2_CHECK level-1/2 audits
// stay valid across the reset. warmup(0) is bit-identical to the historical
// cold-start harness.
//
// Epoch boundaries are delivered to EpochObservers in registration order.
// build() registers the default set — fault sites, policy adaptation,
// check audits, and (when cfg.timeline_path is set) a per-epoch time-series
// recorder — which together replace the monolithic epoch lambda the old
// run_experiment carried. run_experiment itself is now a four-line driver
// over this class, and the oracle (check/oracle.cpp) builds its policies
// through the same make_policy, so design wiring exists exactly once.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.h"
#include "common/ckpt_fwd.h"
#include "harness/experiment.h"
#include "hybridmem/hybrid_memory.h"
#include "mem/memory_system.h"
#include "proc/core.h"
#include "sim/engine.h"
#include "trace/generators.h"

namespace h2 {

/// Instantiates the PartitionPolicy a DesignSpec names. The one shared
/// factory behind run_experiment, the differential oracle and tests; SetPart
/// derives its SetPartConfig (including the RNG seed) from the spec's
/// hydrogen fields, WayPart reads spec.cpu_way_fraction.
std::unique_ptr<PartitionPolicy> make_policy(const DesignSpec& design);

class SimSystem;

/// The slice of a sharded system one member SimSystem owns
/// (harness/shard_group.h). Unit lists carry *global* identities: workload
/// selection, generator RNG seeds and engine stagger offsets are functions
/// of the global core/cluster index, so the union of every member's streams
/// partitions exactly the workload set the monolithic system would run —
/// no stream is duplicated or invented by resharding.
struct ShardSlice {
  u32 shard = 0;       ///< this member's index in the group
  u32 num_shards = 1;  ///< group size
  std::vector<u32> cpu_cores;     ///< global CPU core ids owned here
  std::vector<u32> gpu_clusters;  ///< global GPU cluster ids owned here
  u32 fast_channels = 0;  ///< physical fast channels of this member
  u32 slow_channels = 0;  ///< slow channels of this member
};

/// Observes epoch boundaries. on_epoch fires at every boundary — warmup and
/// measure phases alike, after the feedback snapshot is taken and before the
/// phase-termination decision — strictly in registration order, which makes
/// observer side effects deterministic at any sweep --jobs count. on_drain
/// fires once, from drain(), after the engine has stopped for good.
class EpochObserver {
 public:
  virtual ~EpochObserver() = default;
  virtual const char* name() const = 0;
  virtual void on_epoch(SimSystem& sys, const EpochFeedback& fb) = 0;
  virtual void on_drain(SimSystem& sys, Cycle end) {
    (void)sys;
    (void)end;
  }
  /// Checkpoint hooks: observers with run state of their own (the schedule
  /// cursor, the timeline history) serialize it here; stateless observers
  /// inherit the no-ops. Called in registration order, which build() makes
  /// deterministic for a given config.
  virtual void save_state(ckpt::CkptWriter& w) const { (void)w; }
  virtual void load_state(ckpt::CkptReader& r) { (void)r; }
};

class SimSystem final : public MemoryPort {
 public:
  /// Lifecycle: Unbuilt -> (build) -> Built -> (warmup, possibly 0 epochs)
  /// -> Measure -> (measure + drain) -> Drained. warmup() is transiently in
  /// Warmup while its epochs run.
  enum class Phase : u8 { Unbuilt, Built, Warmup, Measure, Drained };

  explicit SimSystem(const ExperimentConfig& cfg);
  ~SimSystem() override;
  SimSystem(const SimSystem&) = delete;
  SimSystem& operator=(const SimSystem&) = delete;

  /// Assembles the full system — workload layout, memory geometry, policy,
  /// hybrid memory, cores, the epoch hook — and registers the default
  /// observers. Must be called exactly once.
  void build();

  /// Member-mode build: assembles the slice of a sharded system this member
  /// owns — its cores (with global workload identities), a proportional LLC
  /// slice, its own channel subset and hybrid-memory capacity — and registers
  /// only the member observers (policy adaptation, schedule, audits). Fault
  /// sites, timeline and checkpointing live at the ShardGroup, which also
  /// drives the lifecycle through the member_* protocol below instead of
  /// warmup()/measure().
  void build(const ShardSlice& slice);

  /// Registers an additional observer behind the defaults. Valid any time
  /// after build() and before drain().
  void add_observer(std::unique_ptr<EpochObserver> obs);

  /// Runs `epochs` epoch boundaries with adaptation live, then calls
  /// reset_measurement() and opens the measurement window. epochs == 0 opens
  /// the window immediately (cold start, historical behaviour).
  void warmup(u32 epochs);

  /// Runs the measurement window: until every core reached its target (seen
  /// at an epoch boundary) or cfg.max_cycles.
  void measure();

  /// Final audits (via observers) + metric extraction. All cycle counts and
  /// energies in the result are measurement-window-relative.
  ExperimentResult drain();

  // --- checkpoint/restore (harness/checkpoint.h drives these) ------------

  /// Serializes the complete run state — lifecycle cursors, engine event
  /// heap, generators, cores, caches, hybrid memory, channels, policy and
  /// stateful observers — as named sections of `w`. Pure reads at a paused
  /// engine: a run that checkpoints is bit-identical to one that doesn't.
  /// `section_prefix` namespaces the sections ("s<i>/" for shard members, so
  /// a whole ShardGroup checkpoints into one container).
  void save(ckpt::CkptWriter& w, const std::string& section_prefix = "") const;
  /// Restores state saved by save() into a freshly build()-ed system of the
  /// same configuration. Follow with resume().
  void load(ckpt::CkptReader& r, const std::string& section_prefix = "");
  /// Continues an interrupted run after load(): finishes the phase the
  /// checkpoint paused (warmup included, with the measurement window opening
  /// exactly as in an uninterrupted run), leaving the system ready to
  /// drain(). Replaces the warmup()+measure() calls of a cold start.
  void resume();
  /// Called by the checkpoint observer at a qualifying epoch boundary:
  /// pauses the engine between events so the run loop can take a snapshot,
  /// then continue.
  void request_checkpoint() {
    ckpt_requested_ = true;
    engine_.stop();
  }

  /// The cross-layer stats reset behind the warmup -> measure transition;
  /// public so tests can assert exactly what it clears and what survives.
  void reset_measurement();

  // MemoryPort: cache hierarchy walk, then the hybrid-memory controller.
  Cycle access(Cycle now, Requestor cls, u32 unit, Addr addr, bool write) override;

  const ExperimentConfig& config() const { return cfg_; }
  /// The effective design (after HAShCache geometry / phase-length fixups).
  const DesignSpec& design() const { return design_; }
  Phase phase() const { return phase_; }
  Engine& engine() { return engine_; }
  CacheHierarchy& hierarchy() { return *hierarchy_; }
  MemorySystem& memory() { return *mem_; }
  HybridMemory& hybrid() { return *hm_; }
  PartitionPolicy& policy() { return *policy_; }
  const std::vector<std::unique_ptr<Core>>& cores() const { return cores_; }

  // --- shard-member barrier protocol (driven by ShardGroup) ---------------
  // Between barriers a member advances its own engine with zero cross-shard
  // interaction; at each epoch boundary it pauses with a pending local
  // EpochFeedback. The group merges all members' feedback deterministically
  // in shard order and broadcasts the merged snapshot back via apply_epoch,
  // so every member's policy replica sees the identical global view at the
  // identical boundary — the whole run is a pure function of the config,
  // independent of how many worker threads drive the members.

  bool is_member() const { return member_; }
  const ShardSlice& slice() const { return slice_; }
  /// Runs the engine to the next epoch boundary. Returns true when paused at
  /// the boundary with feedback pending; false when the member ran past the
  /// horizon or out of events (the phase ends without a boundary).
  bool run_to_boundary();
  bool paused_at_boundary() const { return boundary_pause_; }
  /// The local feedback snapshot taken at the pausing boundary.
  const EpochFeedback& pending_feedback() const { return pending_fb_; }
  /// Delivers the group-merged feedback to this member's observers (policy
  /// adaptation, scripted schedule, audits) in registration order.
  void apply_epoch(const EpochFeedback& merged);
  /// Lifecycle transitions, group-sequenced instead of warmup()/measure().
  void member_begin_warmup(u32 epochs);
  void member_begin_measure();
  void member_end_phase();

  /// First cycle of the measurement window (0 when warmup_epochs == 0).
  Cycle measure_start() const { return measure_start_; }
  /// Epoch boundaries seen in the current phase / since build().
  u64 epochs_this_phase() const { return epochs_this_phase_; }
  u64 total_epochs() const { return total_epochs_; }
  /// True once every core reached its target (sampled at epoch boundaries).
  bool all_cores_finished() const { return all_cores_finished_; }

 private:
  void on_epoch_boundary(Cycle now);
  /// Runs the engine until the current phase terminates, pausing to write a
  /// checkpoint whenever the checkpoint observer requests one.
  void run_phase();
  /// Whether the current phase's termination condition (sampled at the last
  /// epoch boundary) already holds.
  bool phase_done() const;
  void do_checkpoint();

  ExperimentConfig cfg_;
  DesignSpec design_;
  SystemConfig sys_;
  Phase phase_ = Phase::Unbuilt;
  bool measured_ = false;
  bool member_ = false;  ///< built via build(ShardSlice)
  ShardSlice slice_;
  bool boundary_pause_ = false;
  EpochFeedback pending_fb_;

  Engine engine_;
  std::vector<std::unique_ptr<AccessGenerator>> gens_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::unique_ptr<CacheHierarchy> hierarchy_;
  std::unique_ptr<MemorySystem> mem_;
  std::unique_ptr<PartitionPolicy> policy_;
  std::unique_ptr<HybridMemory> hm_;
  std::vector<std::unique_ptr<EpochObserver>> observers_;

  // Epoch-feedback deltas (zeroed by reset_measurement together with the
  // layer counters they difference against).
  u64 prev_cpu_instr_ = 0, prev_gpu_instr_ = 0;
  u64 prev_cpu_miss_ = 0, prev_gpu_miss_ = 0, prev_gpu_migr_ = 0;
  bool all_cores_finished_ = false;

  u32 warmup_target_ = 0;
  u64 epochs_this_phase_ = 0;
  u64 total_epochs_ = 0;
  Cycle measure_start_ = 0;
  Cycle end_cycle_ = 0;
  bool ckpt_requested_ = false;
};

}  // namespace h2
