#include "harness/checkpoint.h"

#include "check/fault.h"
#include "common/ckpt_io.h"
#include "harness/journal.h"
#include "harness/shard_group.h"
#include "harness/sim_system.h"

namespace h2 {

namespace {
// The header rides in its own leading section so peek_checkpoint() can read
// the identity without touching the (much larger) state sections.
constexpr const char* kHeaderSection = "h2-checkpoint";
}  // namespace

void save_checkpoint(SimSystem& sys, const std::string& path) {
  ckpt::CkptWriter w;
  w.begin_section(kHeaderSection);
  w.put_str(config_key(sys.config()));
  w.put_u64(sys.total_epochs());
  w.put_u64(sys.engine().now());
  w.end_section();
  sys.save(w);

  std::string bytes = w.finish();
  fault::perturb_checkpoint_bytes(bytes);
  ckpt::write_file_atomic(path, bytes);
}

void load_checkpoint(SimSystem& sys, const std::string& path) {
  ckpt::CkptReader r(ckpt::read_file(path), path);
  r.enter_section(kHeaderSection);
  const std::string stored_key = r.get_str();
  const std::string live_key = config_key(sys.config());
  if (stored_key != live_key) {
    r.fail("config mismatch: checkpoint was written by config " + stored_key +
           ", this run is " + live_key +
           " — restoring across configs would silently produce wrong results");
  }
  r.get_u64();  // epoch: informational, re-derived from the lifecycle section
  r.get_u64();  // cycle: restored with the engine state
  r.leave_section();
  sys.load(r);
  r.finish();
}

void save_checkpoint(ShardGroup& group, const std::string& path) {
  ckpt::CkptWriter w;
  w.begin_section(kHeaderSection);
  w.put_str(config_key(group.config()));
  w.put_u64(group.total_epochs());
  w.put_u64(group.now());
  w.end_section();
  group.save(w);

  std::string bytes = w.finish();
  fault::perturb_checkpoint_bytes(bytes);
  ckpt::write_file_atomic(path, bytes);
}

void load_checkpoint(ShardGroup& group, const std::string& path) {
  ckpt::CkptReader r(ckpt::read_file(path), path);
  r.enter_section(kHeaderSection);
  const std::string stored_key = r.get_str();
  const std::string live_key = config_key(group.config());
  if (stored_key != live_key) {
    r.fail("config mismatch: checkpoint was written by config " + stored_key +
           ", this run is " + live_key +
           " — restoring across configs would silently produce wrong results");
  }
  r.get_u64();  // epoch: informational, re-derived from the group section
  r.get_u64();  // cycle: restored with the member engine states
  r.leave_section();
  group.load(r);
  r.finish();
}

std::optional<CheckpointInfo> peek_checkpoint(const std::string& path) {
  try {
    ckpt::CkptReader r(ckpt::read_file(path), path);
    r.enter_section(kHeaderSection);
    CheckpointInfo info;
    info.config_key = r.get_str();
    info.epoch = r.get_u64();
    info.cycle = r.get_u64();
    r.leave_section();
    return info;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace h2
