// Machine-readable performance baselines (`BENCH_<n>.json`) and their
// comparator.
//
// A BENCH file records one perfbench session: host/compiler metadata plus a
// list of benchmark entries, each carrying wall-clock throughput *and*
// deterministic work counters. The split matters: rates are noisy (host,
// load, governor), so the comparator classifies them against a fractional
// noise band, while the counters (engine events, demand accesses, micro
// checksums) are pure functions of code + config — any drift there means an
// "optimisation" changed behaviour, which is always a hard failure.
//
// Serialisation follows the journal idiom (harness/journal.cpp): every value
// is a JSON string; u64s are decimal, doubles are C99 hex-floats ("%a") so a
// load/save cycle round-trips bit-exactly.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace h2 {

inline constexpr const char* kPerfSchema = "h2-perfbench-v1";

/// One measured benchmark inside a BENCH report.
struct PerfEntry {
  std::string name;  ///< e.g. "micro/rng_next", "fig05_quick"
  std::string kind;  ///< "micro" (fixed-iteration loop) or "sweep"
  u64 iters = 0;     ///< micro: loop iterations; sweep: experiment count
  double wall_seconds = 0.0;
  double rate = 0.0;  ///< primary throughput per second (ops/s or events/s)

  /// Deterministic counters. Micro loops store their fold checksum in
  /// `events`; the sweep stores total engine steps in `events` and total
  /// demand accesses in `accesses`. Bit-stable across hosts and --jobs.
  u64 events = 0;
  u64 accesses = 0;
  double accesses_per_sec = 0.0;  ///< sweep only (0 for micro entries)
};

struct PerfReport {
  /// Ordered so serialisation is deterministic and diffs stay readable.
  std::vector<std::pair<std::string, std::string>> meta;
  std::vector<PerfEntry> entries;

  void set_meta(const std::string& key, const std::string& value);
  const std::string* find_meta(const std::string& key) const;
  const PerfEntry* find(const std::string& name) const;
};

/// Pretty-printed nested JSON (schema + meta object + benchmarks array).
std::string serialize_report(const PerfReport& report);

/// Strict parse of serialize_report output: wrong schema, missing fields or
/// structural surprises all yield nullopt.
std::optional<PerfReport> parse_report(const std::string& text);

std::optional<PerfReport> load_report(const std::string& path);
bool save_report(const PerfReport& report, const std::string& path);

/// Classification of one benchmark's delta between two reports.
enum class PerfDelta : u8 {
  Noise,            ///< rate moved within the noise band
  Improvement,      ///< rate up beyond the band
  Regression,       ///< rate down beyond the band
  CounterMismatch,  ///< deterministic counters drifted: behaviour changed
  OnlyInBaseline,   ///< benchmark disappeared (treated as a regression)
  OnlyInCurrent,    ///< new benchmark, informational
};

const char* to_string(PerfDelta d);

struct PerfComparison {
  std::string name;
  PerfDelta cls = PerfDelta::Noise;
  double base_rate = 0.0;
  double cur_rate = 0.0;
  double ratio = 0.0;  ///< cur_rate / base_rate (0 when a side is missing)
  std::string detail;  ///< human-readable note (counter values on mismatch)
};

struct CompareReport {
  std::vector<PerfComparison> rows;  ///< baseline order, then new entries
  u32 improvements = 0;
  u32 regressions = 0;        ///< includes OnlyInBaseline
  u32 counter_mismatches = 0;
};

/// Compares entry-by-entry (matched by name). `threshold` is the fractional
/// noise band: ratio >= 1 + threshold is an improvement, <= 1 - threshold a
/// regression, anything between is noise.
CompareReport compare_reports(const PerfReport& base, const PerfReport& cur,
                              double threshold);

}  // namespace h2
