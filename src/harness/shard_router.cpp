#include "harness/shard_router.h"

#include <algorithm>

#include "common/assert.h"

namespace h2 {

ShardRouter::ShardRouter(u32 num_shards, u32 num_regions, u64 salt)
    : num_shards_(num_shards), num_regions_(num_regions) {
  H2_ASSERT(num_shards >= 1, "ShardRouter needs at least one shard");
  H2_ASSERT(num_regions >= 1, "ShardRouter needs at least one region");
  ranks_.configure(salt, num_shards);
}

void ShardRouter::invalidate() {
  ranks_.invalidate();
  region_shard_.clear();
}

void ShardRouter::ensure_assigned() const {
  if (!region_shard_.empty()) return;
  // Exact-headroom greedy walk: every shard takes floor(R/N) regions; the
  // first `extra` shards to run out of floor-headroom get one promotion
  // each, so final loads are floor(R/N) or floor(R/N)+1. Regions go in index
  // order and each picks the highest-HRW-preference shard with headroom —
  // consistent (pure function of salt/R/N) and deterministic.
  const u32 lo = num_regions_ / num_shards_;
  u32 promotions = num_regions_ % num_shards_;
  std::vector<u32> load(num_shards_, 0);
  region_shard_.assign(num_regions_, 0);
  for (u32 region = 0; region < num_regions_; ++region) {
    const std::vector<u32>& rank = ranks_.ranks(region);
    // rank[shard] = preference position; invert to walk shards by preference.
    std::vector<u32> pref(num_shards_);
    for (u32 s = 0; s < num_shards_; ++s) pref[rank[s]] = s;
    u32 chosen = num_shards_;
    for (const u32 s : pref) {
      if (load[s] < lo) {
        chosen = s;
        break;
      }
    }
    if (chosen == num_shards_) {
      // All shards at floor capacity: promote the most-preferred shard still
      // at exactly floor (one exists while promotions remain — see header).
      H2_ASSERT(promotions > 0, "shard assignment overflow");
      for (const u32 s : pref) {
        if (load[s] == lo) {
          chosen = s;
          break;
        }
      }
      H2_ASSERT(chosen < num_shards_, "no promotable shard found");
      promotions--;
    }
    load[chosen]++;
    region_shard_[region] = chosen;
  }
}

u32 ShardRouter::shard_of_region(u32 region) const {
  H2_ASSERT(region < num_regions_, "region %u out of %u", region, num_regions_);
  ensure_assigned();
  return region_shard_[region];
}

void ShardRouter::bind_span(u64 span_bytes) {
  H2_ASSERT(span_bytes > 0, "bind_span() needs a non-empty span");
  const u64 pages = (span_bytes + kPageBytes - 1) / kPageBytes;
  const u64 pages_per_region = std::max<u64>(1, (pages + num_regions_ - 1) / num_regions_);
  region_bytes_ = pages_per_region * kPageBytes;
}

u32 ShardRouter::shard_of_page(u64 page) const {
  H2_ASSERT(region_bytes_ > 0, "shard_of_page() before bind_span()");
  const u64 region = page * kPageBytes / region_bytes_;
  return shard_of_region(
      static_cast<u32>(std::min<u64>(region, num_regions_ - 1)));
}

std::vector<u32> ShardRouter::region_loads() const {
  ensure_assigned();
  std::vector<u32> load(num_shards_, 0);
  for (const u32 s : region_shard_) load[s]++;
  return load;
}

}  // namespace h2
